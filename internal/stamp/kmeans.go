package stamp

import (
	"fmt"

	"seer"
	"seer/internal/tmds"
)

// Kmeans models STAMP's clustering benchmark: each iteration assigns a
// point to its nearest centroid (pure computation on thread-private data)
// and then transactionally folds the point into that centroid's
// accumulator (count, sum). There is a single atomic block; contention is
// set by the cluster count — the "high" variant uses few clusters so
// updates collide often, the "low" variant many clusters.
type Kmeans struct {
	name      string
	totalOps  int
	nClusters int
	dims      int

	// Each cluster accumulator occupies one cache line:
	// [count, sum0, sum1, sum2, ...].
	clusters *tmds.Counters
}

func init() {
	Register("kmeans-high", func(scale float64) Workload {
		return NewKmeans("kmeans-high", scaled(12800, scale, 128), 6)
	})
	Register("kmeans-low", func(scale float64) Workload {
		return NewKmeans("kmeans-low", scaled(12800, scale, 128), 64)
	})
}

// NewKmeans builds a kmeans instance with the given op count and cluster
// count.
func NewKmeans(name string, totalOps, nClusters int) *Kmeans {
	return &Kmeans{name: name, totalOps: totalOps, nClusters: nClusters, dims: 3}
}

// Name implements Workload.
func (w *Kmeans) Name() string { return w.name }

// NumAtomicBlocks implements Workload.
func (w *Kmeans) NumAtomicBlocks() int { return 1 }

// MemWords implements Workload.
func (w *Kmeans) MemWords() int { return w.nClusters*8 + 1<<12 }

// Setup implements Workload.
func (w *Kmeans) Setup(sys *seer.System) error {
	w.clusters = tmds.NewCounters(sys.Memory(), w.nClusters)
	return nil
}

// Workers implements Workload.
func (w *Kmeans) Workers(nThreads int) []seer.Worker {
	parts := split(w.totalOps, nThreads)
	workers := make([]seer.Worker, nThreads)
	for i := range workers {
		ops := parts[i]
		workers[i] = func(t *seer.Thread) {
			rng := t.Rand()
			for n := 0; n < ops; n++ {
				// Distance computation over all clusters (private); the
				// jitter models per-point variance and prevents the
				// deterministic engine from phase-locking threads.
				t.Work(uint64(10*w.nClusters + rng.Intn(2*w.nClusters+1)))
				c := rng.Intn(w.nClusters)
				point := rng.Uint64() % 1000
				base := w.clusters.Addr(c)
				// The cluster index is the natural object identity:
				// with the object-granular extension enabled, Seer
				// serializes only same-cluster updates.
				t.AtomicObj(0, uint64(c), func(a seer.Access) {
					a.Work(40)                    // accumulate coordinates
					a.Store(base, a.Load(base)+1) // membership count
					for d := 0; d < w.dims; d++ {
						off := base + seer.Addr(1+d)
						a.Store(off, a.Load(off)+point+uint64(d))
					}
				})
			}
		}
	}
	return workers
}

// Validate implements Workload.
func (w *Kmeans) Validate(sys *seer.System) error {
	var count uint64
	for c := 0; c < w.nClusters; c++ {
		count += sys.Peek(w.clusters.Addr(c))
	}
	if count != uint64(w.totalOps) {
		return fmt.Errorf("%s: cluster memberships sum to %d, want %d", w.name, count, w.totalOps)
	}
	return nil
}

// SSCA2 models STAMP's graph kernel (Scalable Synthetic Compact
// Applications 2, kernel 1: graph construction). Each operation adds one
// directed edge: a tiny transaction appending to the target node's
// adjacency record. With many nodes the conflict probability is low and
// transactions are minimal — the regime where HTM overhead itself (and
// the fall-back) dominates.
type SSCA2 struct {
	totalOps int
	nNodes   int
	adjCap   int

	adj seer.Addr // per node, one line: [degree, e0..e6]
}

func init() {
	Register("ssca2", func(scale float64) Workload { return NewSSCA2(scale) })
}

// NewSSCA2 builds an ssca2 instance at the given scale.
func NewSSCA2(scale float64) *SSCA2 {
	return &SSCA2{
		totalOps: scaled(16000, scale, 160),
		nNodes:   scaled(4096, scale, 64),
		adjCap:   6,
	}
}

// Name implements Workload.
func (w *SSCA2) Name() string { return "ssca2" }

// NumAtomicBlocks implements Workload.
func (w *SSCA2) NumAtomicBlocks() int { return 1 }

// MemWords implements Workload.
func (w *SSCA2) MemWords() int { return w.nNodes*8 + 1<<12 }

// Setup implements Workload.
func (w *SSCA2) Setup(sys *seer.System) error {
	w.adj = sys.AllocLines(w.nNodes)
	return nil
}

func (w *SSCA2) nodeAddr(n int) seer.Addr { return w.adj + seer.Addr(n*8) }

// Workers implements Workload.
func (w *SSCA2) Workers(nThreads int) []seer.Worker {
	parts := split(w.totalOps, nThreads)
	workers := make([]seer.Worker, nThreads)
	for i := range workers {
		ops := parts[i]
		workers[i] = func(t *seer.Thread) {
			rng := t.Rand()
			for n := 0; n < ops; n++ {
				src := rng.Intn(w.nNodes)
				dst := uint64(rng.Intn(w.nNodes))
				base := w.nodeAddr(src)
				t.Atomic(0, func(a seer.Access) {
					a.Work(20) // edge weight computation
					deg := a.Load(base)
					slot := deg % uint64(w.adjCap) // ring of edge slots
					a.Store(base+1+seer.Addr(slot), dst)
					a.Store(base, deg+1)
				})
				t.Work(160)
			}
		}
	}
	return workers
}

// Validate implements Workload.
func (w *SSCA2) Validate(sys *seer.System) error {
	var degrees uint64
	for n := 0; n < w.nNodes; n++ {
		degrees += sys.Peek(w.nodeAddr(n))
	}
	if degrees != uint64(w.totalOps) {
		return fmt.Errorf("ssca2: degrees sum to %d, want %d", degrees, w.totalOps)
	}
	return nil
}
