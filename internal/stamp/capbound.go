package stamp

import (
	"fmt"

	"seer"
)

// capBoundLines is the write-set size of every capacity-bound operation:
// comfortably above the simulated L1's 64-line write budget (and any
// sibling-divided fraction of it), so a hardware attempt can never
// commit regardless of retries. It is a structural constant, not a
// scaled parameter — shrinking it below the budget would change the
// workload's character entirely.
const capBoundLines = 96

// CapBound is the capacity-bound workload of the phased-TM exhibit:
// every thread owns a private, disjoint region of capBoundLines cache
// lines and each operation increments all of them. The write set
// overflows the hardware write budget on every attempt, so HTM-only
// policies serialize the whole run through the single global lock,
// while a phased runtime routes the blocks to its software commit path
// where the disjoint regions commit concurrently. The workload is fully
// deterministic (no RNG) and validated by exact per-line counts.
type CapBound struct {
	totalOps int
	regions  []seer.Addr // one region of capBoundLines lines per thread
}

func init() {
	Register("capbound", func(scale float64) Workload { return NewCapBound(scale) })
}

// NewCapBound builds the capacity-bound instance at the given scale.
func NewCapBound(scale float64) *CapBound {
	return &CapBound{totalOps: scaled(768, scale, 32)}
}

// Name implements Workload.
func (w *CapBound) Name() string { return "capbound" }

// NumAtomicBlocks implements Workload.
func (w *CapBound) NumAtomicBlocks() int { return 1 }

// MemWords implements Workload.
func (w *CapBound) MemWords() int {
	// Sized for the widest harness shape; Setup allocates per logical
	// thread, eight words per line.
	return 256*capBoundLines*8 + 1<<12
}

// Setup implements Workload.
func (w *CapBound) Setup(sys *seer.System) error {
	n := sys.Config().Threads
	w.regions = make([]seer.Addr, n)
	for i := range w.regions {
		w.regions[i] = sys.AllocLines(capBoundLines)
	}
	return nil
}

// Workers implements Workload.
func (w *CapBound) Workers(nThreads int) []seer.Worker {
	parts := split(w.totalOps, nThreads)
	workers := make([]seer.Worker, nThreads)
	for i := range workers {
		ops, base := parts[i], w.regions[i]
		workers[i] = func(t *seer.Thread) {
			for n := 0; n < ops; n++ {
				t.Atomic(0, func(a seer.Access) {
					for j := 0; j < capBoundLines; j++ {
						p := base + seer.Addr(j*8)
						a.Store(p, a.Load(p)+1)
					}
				})
				t.Work(40)
			}
		}
	}
	return workers
}

// Validate implements Workload.
func (w *CapBound) Validate(sys *seer.System) error {
	parts := split(w.totalOps, len(w.regions))
	for i, base := range w.regions {
		want := uint64(parts[i])
		for j := 0; j < capBoundLines; j++ {
			p := base + seer.Addr(j*8)
			if got := sys.Peek(p); got != want {
				return fmt.Errorf("capbound: thread %d line %d count %d, want %d",
					i, j, got, want)
			}
		}
	}
	return nil
}
