package stamp

import (
	"fmt"

	"seer"
	"seer/internal/tmds"
)

// Labyrinth models STAMP's Lee-routing benchmark: threads claim routing
// requests from a shared priority queue (shortest estimated route first)
// and transactionally mark an entire path of grid cells. Path
// transactions touch dozens to hundreds of cache lines, so on best-effort
// HTM most of them exceed the write-set budget and deterministically fall
// back to the lock — which is exactly why the paper EXCLUDES labyrinth
// from its evaluation ("most of its transactions exceed TSX capacity").
// It is implemented and registered here for completeness but is not part
// of stamp.Suite.
//
//	block 0 (route): read+write every cell of an L-shaped path
//	block 1 (claim): pop the next request from the priority queue
type Labyrinth struct {
	totalOps   int
	gridDim    int
	queueSlots int // 0 means totalOps+1 (always sufficient)

	grid   seer.Addr // gridDim × gridDim cells, one line each
	queue  *tmds.Heap
	routed threadStats // cells marked by committed routes
	claims threadStats // requests claimed
}

func init() {
	Register("labyrinth", func(scale float64) Workload { return NewLabyrinth(scale) })
}

// NewLabyrinth builds a labyrinth instance at the given scale.
func NewLabyrinth(scale float64) *Labyrinth {
	return &Labyrinth{
		totalOps: scaled(600, scale, 12),
		gridDim:  48,
	}
}

// Name implements Workload.
func (w *Labyrinth) Name() string { return "labyrinth" }

// NumAtomicBlocks implements Workload.
func (w *Labyrinth) NumAtomicBlocks() int { return 2 }

// MemWords implements Workload.
func (w *Labyrinth) MemWords() int {
	return w.gridDim*w.gridDim*8 + w.totalOps*4 + 1<<13
}

func (w *Labyrinth) cell(x, y int) seer.Addr {
	return w.grid + seer.Addr((y*w.gridDim+x)*8)
}

// Setup implements Workload.
func (w *Labyrinth) Setup(sys *seer.System) error {
	m := sys.Memory()
	w.grid = sys.AllocLines(w.gridDim * w.gridDim)
	slots := w.queueSlots
	if slots == 0 {
		slots = w.totalOps + 1
	}
	w.queue = tmds.NewHeap(m, slots)
	w.routed = newThreadStats(sys)
	w.claims = newThreadStats(sys)
	// Pre-plan the routing requests: value encodes the endpoints,
	// priority is the Manhattan-distance estimate (shortest first).
	acc := rawSys{sys}
	rng := seededRand(1234)
	for i := 0; i < w.totalOps; i++ {
		x1 := int(rng.Uint64() % uint64(w.gridDim))
		y1 := int(rng.Uint64() % uint64(w.gridDim))
		x2 := int(rng.Uint64() % uint64(w.gridDim))
		y2 := int(rng.Uint64() % uint64(w.gridDim))
		val := uint64(x1)<<24 | uint64(y1)<<16 | uint64(x2)<<8 | uint64(y2)
		dist := abs(x1-x2) + abs(y1-y2)
		if !w.queue.Push(acc, uint64(dist), val) {
			return fmt.Errorf("labyrinth: %d requests for %d slots: %w",
				w.totalOps, slots, ErrQueueTooSmall)
		}
	}
	return nil
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// pathLen returns the number of cells of the L-shaped route of a request.
func pathLen(val uint64) int {
	x1, y1 := int(val>>24&0xFF), int(val>>16&0xFF)
	x2, y2 := int(val>>8&0xFF), int(val&0xFF)
	return abs(x1-x2) + abs(y1-y2) + 1
}

// Workers implements Workload.
func (w *Labyrinth) Workers(nThreads int) []seer.Worker {
	parts := split(w.totalOps, nThreads)
	workers := make([]seer.Worker, nThreads)
	for i := range workers {
		ops := parts[i]
		workers[i] = func(t *seer.Thread) {
			for n := 0; n < ops; n++ {
				// Claim the next request (hot, small).
				var req uint64
				var ok bool
				t.Atomic(1, func(a seer.Access) {
					_, req, ok = w.queue.Pop(a)
					if ok {
						w.claims.add(a, 1)
					}
				})
				if !ok {
					return
				}
				t.Work(25)

				// Route: mark every cell of the L-shaped path. The
				// whole path is one atomic region, as in Lee routing.
				x1, y1 := int(req>>24&0xFF), int(req>>16&0xFF)
				x2, y2 := int(req>>8&0xFF), int(req&0xFF)
				t.Atomic(0, func(a seer.Access) {
					marked := uint64(0)
					step := func(x, y int) {
						c := w.cell(x, y)
						a.Store(c, a.Load(c)+1)
						marked++
					}
					x := x1
					for ; x != x2; x += sign(x2 - x) {
						step(x, y1)
					}
					for y := y1; y != y2; y += sign(y2 - y) {
						step(x2, y)
					}
					step(x2, y2)
					a.Work(uint64(30 + 2*marked)) // expansion cost
					w.routed.add(a, marked)
				})
				t.Work(20)
			}
		}
	}
	return workers
}

func sign(v int) int {
	if v < 0 {
		return -1
	}
	return 1
}

// Validate implements Workload.
func (w *Labyrinth) Validate(sys *seer.System) error {
	if claims := w.claims.sum(sys); claims != uint64(w.totalOps) {
		return fmt.Errorf("labyrinth: %d requests claimed, want %d", claims, w.totalOps)
	}
	var marks uint64
	for y := 0; y < w.gridDim; y++ {
		for x := 0; x < w.gridDim; x++ {
			marks += sys.Peek(w.cell(x, y))
		}
	}
	if routed := w.routed.sum(sys); marks != routed {
		return fmt.Errorf("labyrinth: grid marks %d != routed cells %d", marks, routed)
	}
	return nil
}
