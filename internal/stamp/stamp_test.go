package stamp_test

import (
	"testing"
	"testing/quick"

	"seer"
	"seer/internal/harness"
	"seer/internal/stamp"
)

// TestAllWorkloadsAllPolicies runs every registered workload under every
// policy at a small scale and checks the workload's own invariants — the
// end-to-end correctness test of the whole stack (engine, memory, HTM,
// locks, scheduler, data structures).
func TestAllWorkloadsAllPolicies(t *testing.T) {
	policies := []seer.PolicyKind{
		seer.PolicyHLE, seer.PolicyRTM, seer.PolicySCM, seer.PolicySeer,
	}
	for _, name := range stamp.Names() {
		for _, pol := range policies {
			name, pol := name, pol
			t.Run(name+"/"+string(pol), func(t *testing.T) {
				res, err := harness.RunOne(harness.Spec{
					Workload: name,
					Scale:    0.12,
					Policy:   pol,
					Threads:  8,
					Runs:     1,
					Seed:     7,
				})
				if err != nil {
					t.Fatal(err)
				}
				rep := res.Reports[0]
				if rep.Commits() == 0 {
					t.Fatalf("no commits recorded")
				}
				if rep.MakespanCycles == 0 {
					t.Fatalf("zero makespan")
				}
			})
		}
	}
}

// TestWorkloadsSequential checks every workload's invariants after a
// plain sequential run, isolating workload-logic bugs from concurrency.
func TestWorkloadsSequential(t *testing.T) {
	for _, name := range stamp.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			if _, err := harness.RunOne(harness.Spec{
				Workload: name, Scale: 0.12, Policy: seer.PolicySeq,
				Threads: 1, Runs: 1, Seed: 3,
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWorkloadThreadSweep exercises partitioning across 1..8 threads for
// one queue-driven (exact-partitioning-sensitive) workload.
func TestWorkloadThreadSweep(t *testing.T) {
	for th := 1; th <= 8; th++ {
		if _, err := harness.RunOne(harness.Spec{
			Workload: "intruder", Scale: 0.1, Policy: seer.PolicyRTM,
			Threads: th, Runs: 1, Seed: 11,
		}); err != nil {
			t.Fatalf("threads=%d: %v", th, err)
		}
	}
}

// TestDeterministicRuns checks that the same Spec yields identical
// makespans (whole-system determinism through the stamp layer).
func TestDeterministicRuns(t *testing.T) {
	spec := harness.Spec{
		Workload: "genome", Scale: 0.1, Policy: seer.PolicySeer,
		Threads: 8, Runs: 1, Seed: 13,
	}
	a, err := harness.RunOne(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := harness.RunOne(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Reports[0].MakespanCycles != b.Reports[0].MakespanCycles {
		t.Fatalf("nondeterministic makespan: %d vs %d",
			a.Reports[0].MakespanCycles, b.Reports[0].MakespanCycles)
	}
}

// TestRegistry checks the factory registry and suite listing.
func TestRegistry(t *testing.T) {
	if _, err := stamp.New("no-such-benchmark", 1); err == nil {
		t.Fatalf("expected error for unknown workload")
	}
	names := stamp.Names()
	want := map[string]bool{}
	// Suite + the §5.3 microbenchmark + the two workloads the paper
	// excludes from its evaluation (implemented for completeness) + the
	// adversarial conflict-graph generators (registered by the harness's
	// adversary import) + the capacity-bound phased-TM stressor.
	for _, n := range append(append([]string{}, stamp.Suite...),
		"hashmap", "bayes", "labyrinth", "synth", "capbound",
		"adv-ring", "adv-star", "adv-bipartite", "adv-clique", "adv-phase") {
		want[n] = true
	}
	if len(names) != len(want) {
		t.Fatalf("registry has %v, want %v", names, stamp.Suite)
	}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("unexpected workload %q", n)
		}
		wl, err := stamp.New(n, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if wl.Name() != n {
			t.Fatalf("workload %q reports name %q", n, wl.Name())
		}
		if wl.NumAtomicBlocks() <= 0 || wl.MemWords() <= 0 {
			t.Fatalf("workload %q has degenerate sizing", n)
		}
	}
}

// TestSynthCustomParameterization exercises a hand-built Synth instance
// (overlapping hot sets, three blocks) under Seer.
func TestSynthCustomParameterization(t *testing.T) {
	wl := &stamp.Synth{
		Blocks:     3,
		Share:      []float64{0.3, 0.3, 0.4},
		HotLines:   []int{16, 16, 16},
		ReadLines:  []int{3, 1, 2},
		WriteLines: []int{2, 2, 1},
		TxWork:     []uint64{80, 40, 60},
		GapWork:    8,
		Overlap:    true,
		TotalOps:   1200,
	}
	cfg := seer.DefaultConfig()
	cfg.Threads = 8
	cfg.HWThreads = harness.MachineHWThreads
	cfg.PhysCores = harness.MachinePhysCores
	cfg.Policy = seer.PolicySeer
	cfg.NumAtomicBlocks = wl.NumAtomicBlocks()
	cfg.MemWords = wl.MemWords() + (1 << 14)
	cfg.MaxCycles = 1 << 34
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wl.Setup(sys)
	if _, err := sys.Run(wl.Workers(8)); err != nil {
		t.Fatal(err)
	}
	if err := wl.Validate(sys); err != nil {
		t.Fatal(err)
	}
}

// TestSynthRejectsBadParameters: inconsistent parameterizations panic at
// Setup rather than corrupting a run.
func TestSynthRejectsBadParameters(t *testing.T) {
	wl := &stamp.Synth{
		Blocks:     2,
		Share:      []float64{1.0}, // wrong length
		HotLines:   []int{4, 4},
		ReadLines:  []int{1, 1},
		WriteLines: []int{1, 1},
		TxWork:     []uint64{10, 10},
		TotalOps:   10,
	}
	cfg := seer.DefaultConfig()
	cfg.Threads = 1
	cfg.NumAtomicBlocks = 2
	cfg.MemWords = 1 << 12
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("bad parameterization not rejected")
		}
	}()
	wl.Setup(sys)
}

// TestSynthQuickRandomConfigs fuzzes the synthetic workload: random valid
// parameterizations must run and validate under every policy.
func TestSynthQuickRandomConfigs(t *testing.T) {
	f := func(seed int64, b8, hot8, share8 uint8) bool {
		blocks := int(b8%3) + 1
		wl := &stamp.Synth{
			Blocks:   blocks,
			TotalOps: 240,
			GapWork:  5,
			Overlap:  seed%2 == 0,
		}
		rest := 1.0
		for b := 0; b < blocks; b++ {
			share := rest / float64(blocks-b)
			if b == blocks-1 {
				share = rest
			}
			rest -= share
			wl.Share = append(wl.Share, share)
			hot := int(hot8%12) + 2
			wl.HotLines = append(wl.HotLines, hot)
			wl.ReadLines = append(wl.ReadLines, 1+int(share8)%hot)
			wl.WriteLines = append(wl.WriteLines, 1+int(hot8)%hot)
			wl.TxWork = append(wl.TxWork, uint64(20+10*b))
		}
		for _, pol := range []seer.PolicyKind{seer.PolicyRTM, seer.PolicySeer, seer.PolicyATS} {
			cfg := seer.DefaultConfig()
			cfg.Threads = 4
			cfg.HWThreads = harness.MachineHWThreads
			cfg.PhysCores = harness.MachinePhysCores
			cfg.Seed = seed
			cfg.Policy = pol
			cfg.NumAtomicBlocks = wl.NumAtomicBlocks()
			cfg.MemWords = wl.MemWords() + (1 << 14)
			cfg.MaxCycles = 1 << 33
			sys, err := seer.NewSystem(cfg)
			if err != nil {
				t.Log(err)
				return false
			}
			fresh := *wl // fresh addresses per system
			fresh.Share = append([]float64{}, wl.Share...)
			fresh.HotLines = append([]int{}, wl.HotLines...)
			fresh.ReadLines = append([]int{}, wl.ReadLines...)
			fresh.WriteLines = append([]int{}, wl.WriteLines...)
			fresh.TxWork = append([]uint64{}, wl.TxWork...)
			fresh.Setup(sys)
			if _, err := sys.Run(fresh.Workers(4)); err != nil {
				t.Log(err)
				return false
			}
			if err := fresh.Validate(sys); err != nil {
				t.Log(err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
