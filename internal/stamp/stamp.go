// Package stamp provides Go ports of the STAMP benchmarks used in the
// paper's evaluation (genome, intruder, kmeans high/low, ssca2, vacation
// high/low, yada — bayes and labyrinth are excluded exactly as in the
// paper), plus the low-contention hash-map microbenchmark of §5.3.
//
// The ports run on the simulated transactional memory through the public
// API (package seer) and preserve what the scheduler can observe of the
// originals: the number and identity of atomic blocks, their relative
// frequencies, read/write-set footprints, and the conflict structure
// between blocks. Absolute instruction counts are scaled down so a full
// parameter sweep runs in seconds of wall-clock time; DESIGN.md records
// the substitution argument.
//
// Workload implementations must respect the retry discipline of best-
// effort HTM: atomic-block bodies touch only simulated memory via the
// Access parameter (they may run several times), and all Go-side
// bookkeeping happens outside Atomic or is assign-only.
package stamp

import (
	"errors"
	"fmt"
	"sort"

	"seer"
	"seer/internal/tmds"
)

// Workload is one benchmark instance. The lifecycle is:
// New... → MemWords/NumAtomicBlocks (to size the system) → Setup →
// Workers → (System.Run) → Validate.
type Workload interface {
	// Name is the benchmark's display name (matches the paper's
	// figures, e.g. "kmeans-high").
	Name() string
	// NumAtomicBlocks is the count of static atomic blocks, i.e. the
	// dimension of Seer's statistics matrices.
	NumAtomicBlocks() int
	// MemWords returns the simulated-memory size the workload needs.
	MemWords() int
	// Setup allocates and initializes shared state on sys. It returns an
	// error when the instance cannot be built at this size (for example
	// ErrQueueTooSmall) rather than panicking.
	Setup(sys *seer.System) error
	// Workers returns one worker body per thread, partitioning the
	// workload's total operations across nThreads.
	Workers(nThreads int) []seer.Worker
	// Validate checks post-run invariants on the simulated state,
	// returning an error describing any violation.
	Validate(sys *seer.System) error
}

// Factory builds a fresh workload instance at the given scale (1.0 is the
// default size; the harness uses smaller scales for quick runs). Each run
// needs a fresh instance because workloads hold simulated addresses.
type Factory func(scale float64) Workload

var registry = map[string]Factory{}

// Register installs a workload factory under its canonical name.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("stamp: duplicate workload %q", name))
	}
	registry[name] = f
}

// New builds workload name at the given scale.
func New(name string, scale float64) (Workload, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("stamp: unknown workload %q (have %v)", name, Names())
	}
	if scale <= 0 {
		scale = 1
	}
	return f(scale), nil
}

// Names lists the registered workloads in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Suite is the STAMP subset of the paper's Figure 3 / Table 3, in the
// paper's presentation order.
var Suite = []string{
	"genome", "intruder", "kmeans-high", "kmeans-low",
	"ssca2", "vacation-high", "vacation-low", "yada",
}

// FullSuite is Suite plus the two workloads the paper excludes from its
// evaluation (bayes for nondeterministic structure-learning run times,
// labyrinth for transactions exceeding TSX capacity). Opt-in via the
// harness -full-suite flag; they have goldens of their own.
var FullSuite = append(append([]string{}, Suite...), "bayes", "labyrinth")

// ErrQueueTooSmall reports a workload whose operation pre-plan outgrew
// its fixed-capacity transactional queue — a sizing error in the
// instance parameters, returned by Setup instead of panicking.
var ErrQueueTooSmall = errors.New("stamp: queue sized too small")

// arenaSlack returns the fixed arena headroom of the legacy 8-thread
// testbed plus two refill chunks for every additional hardware thread:
// each thread parks up to one partially filled chunk, and the rest keeps
// the master cursor from running dry on wide machines. At 8 or fewer
// hardware threads it is exactly the historical 8192 words, which pins
// pre-topology arena layouts (and so the exhibits) byte-for-byte.
func arenaSlack(sys *seer.System) int {
	const base = 8192
	if hw := sys.HWThreads(); hw > 8 {
		return base + (hw-8)*2*tmds.ChunkWords
	}
	return base
}

// split partitions total operations across n workers, giving earlier
// workers the remainder (deterministic).
func split(total, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = total / n
	}
	for i := 0; i < total%n; i++ {
		out[i]++
	}
	return out
}

// scaled returns base scaled, with a floor of lo.
func scaled(base int, scale float64, lo int) int {
	v := int(float64(base) * scale)
	if v < lo {
		return lo
	}
	return v
}

// minStatLines is the historical floor of the per-thread stat arrays.
// Machines up to 64 threads keep exactly this allocation so simulated
// memory layouts — and therefore all pre-topology exhibit outputs —
// are unchanged; larger machines grow the array to one line per thread.
const minStatLines = 64

// threadStats is a per-hardware-thread padded counter in simulated
// memory: workload bookkeeping that must not become a cross-thread
// conflict hotspot (the analogue of STAMP's thread-local statistics).
type threadStats struct {
	base seer.Addr
	n    int // allocated slots
}

func newThreadStats(sys *seer.System) threadStats {
	n := minStatLines
	if hw := sys.HWThreads(); hw > n {
		n = hw
	}
	return threadStats{base: sys.AllocLines(n), n: n}
}

func (s threadStats) slot(a seer.Access) seer.Addr {
	return s.base + seer.Addr(a.ThreadID()*8)
}

// add bumps the calling thread's slot by d (inside a transaction this is
// conflict-free: the line is private to the thread).
func (s threadStats) add(a seer.Access, d uint64) {
	p := s.slot(a)
	a.Store(p, a.Load(p)+d)
}

// sum folds all slots (post-run, outside transactions). Wrapping
// arithmetic makes mixed add/subtract bookkeeping sum to the correct net
// value.
func (s threadStats) sum(sys *seer.System) uint64 {
	var total uint64
	for i := 0; i < s.n; i++ {
		total += sys.Peek(s.base + seer.Addr(i*8))
	}
	return total
}
