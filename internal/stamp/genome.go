package stamp

import (
	"fmt"

	"seer"
	"seer/internal/tmds"
)

// Genome models STAMP's gene-sequencing benchmark. The original has three
// transactional phases: deduplicating DNA segments into a hash set,
// removing matched segments from a "starts" pool, and linking overlapping
// segments into growing chains. The port keeps the three atomic blocks
// and their footprints:
//
//	block 0 (dedup):  PutIfAbsent into a large hash set — long-ish
//	                  transactions, low conflict probability.
//	block 1 (match):  claim an entry in a bounded pool of chain "construction
//	                  sites" and extend it — moderate, localized conflicts.
//	block 2 (link):   splice two chains, updating shared chain metadata —
//	                  high self-conflict (the hotspot Seer learns).
type Genome struct {
	scale    float64
	totalOps int
	segSpace uint64
	buckets  int
	sites    int

	set      *tmds.HashMap
	siteTab  *tmds.Counters // per-site chain length (padded)
	chainLen seer.Addr      // global chain metadata line (hotspot)
	inserted threadStats
}

func init() {
	Register("genome", func(scale float64) Workload { return NewGenome(scale) })
}

// NewGenome builds a genome instance at the given scale.
func NewGenome(scale float64) *Genome {
	return &Genome{
		scale:    scale,
		totalOps: scaled(9600, scale, 96),
		segSpace: uint64(scaled(8192, scale, 128)),
		buckets:  scaled(1024, scale, 64),
		sites:    48,
	}
}

// Name implements Workload.
func (g *Genome) Name() string { return "genome" }

// NumAtomicBlocks implements Workload.
func (g *Genome) NumAtomicBlocks() int { return 3 }

// MemWords implements Workload.
func (g *Genome) MemWords() int {
	return g.buckets + 8*g.sites + int(g.segSpace)*4 + 1<<15
}

// Setup implements Workload.
func (g *Genome) Setup(sys *seer.System) error {
	arena := tmds.NewArena(sys.Memory(), int(g.segSpace)*3+arenaSlack(sys), sys.HWThreads())
	g.set = tmds.NewHashMap(sys.Memory(), g.buckets, arena)
	g.siteTab = tmds.NewCounters(sys.Memory(), g.sites)
	g.chainLen = sys.AllocLines(1)
	g.inserted = newThreadStats(sys)
	return nil
}

// Workers implements Workload.
func (g *Genome) Workers(nThreads int) []seer.Worker {
	parts := split(g.totalOps, nThreads)
	workers := make([]seer.Worker, nThreads)
	for i := range workers {
		ops := parts[i]
		workers[i] = func(t *seer.Thread) {
			rng := t.Rand()
			for n := 0; n < ops; n++ {
				switch r := rng.Intn(100); {
				case r < 62:
					// Dedup a random segment.
					seg := rng.Uint64() % g.segSpace
					t.Atomic(0, func(a seer.Access) {
						present := g.set.Contains(a, seg)
						a.Work(130) // segment comparison
						if !present {
							g.set.PutIfAbsent(a, seg, seg)
							g.inserted.add(a, 1)
						}
					})
					t.Work(10)
				case r < 80:
					// Extend a construction site: lookup + localized
					// update.
					seg := rng.Uint64() % g.segSpace
					site := rng.Intn(g.sites)
					t.Atomic(1, func(a seer.Access) {
						_, _ = g.set.Get(a, seg)
						_ = a.Load(g.chainLen) // consult chain metadata
						a.Work(90)             // overlap matching
						g.siteTab.Add(a, site, 1)
					})
					t.Work(10)
				default:
					// Splice chains: hotspot on the global chain
					// metadata.
					site := rng.Intn(g.sites)
					t.Atomic(2, func(a seer.Access) {
						// Read the chain metadata up front: the read
						// set is held for the whole splice, as in the
						// original's chain-walk transactions.
						cur := a.Load(g.chainLen)
						n2 := a.Load(g.chainLen + 1)
						sl := g.siteTab.Get(a, site)
						a.Work(150) // chain splicing
						a.Store(g.chainLen, cur+sl%7+1)
						a.Store(g.chainLen+1, n2+1)
					})
					t.Work(uint64(4 + rng.Intn(9)))
				}
			}
		}
	}
	return workers
}

// Validate implements Workload.
func (g *Genome) Validate(sys *seer.System) error {
	acc := rawSys{sys}
	size := g.set.Size(acc)
	ins := g.inserted.sum(sys)
	if size != ins {
		return fmt.Errorf("genome: set size %d != committed inserts %d", size, ins)
	}
	if size > g.segSpace {
		return fmt.Errorf("genome: set size %d exceeds segment space %d", size, g.segSpace)
	}
	// Every stored key must be a valid, unique segment.
	keys := g.set.Keys(acc, nil)
	seen := make(map[uint64]bool, len(keys))
	for _, k := range keys {
		if k >= g.segSpace {
			return fmt.Errorf("genome: stored segment %d out of range", k)
		}
		if seen[k] {
			return fmt.Errorf("genome: duplicate segment %d survived dedup", k)
		}
		seen[k] = true
	}
	return nil
}

// rawSys adapts a System's Peek/Poke to mem.Access for validation walks.
type rawSys struct{ sys *seer.System }

func (r rawSys) Load(a seer.Addr) uint64     { return r.sys.Peek(a) }
func (r rawSys) Store(a seer.Addr, v uint64) { r.sys.Poke(a, v) }
func (r rawSys) Work(n uint64)               {}
func (r rawSys) ThreadID() int               { return 0 }
