package stamp

import (
	"fmt"

	"seer"
	"seer/internal/tmds"
)

// Vacation models STAMP's travel-reservation system: four red-black-tree
// tables (cars, flights, rooms, customers) queried and updated by three
// kinds of client transactions. The high-contention variant concentrates
// queries on a narrow key range and does more work per transaction; the
// low variant spreads them out.
//
//	block 0 (reserve): read availability of several random items across
//	                   the tables and decrement one (medium footprint)
//	block 1 (delete):  remove a customer and release its reservation
//	block 2 (update):  add or restock items (table maintenance)
type Vacation struct {
	name                  string
	totalOps              int
	nItems                int
	queries               int
	rangePct              int // percentage of the key space queries touch
	reservePct, deletePct int

	cars, flights, rooms, customers *tmds.RBTree
	booked                          threadStats // successful reservations
	stock                           threadStats // stock adjustments
}

func init() {
	Register("vacation-high", func(scale float64) Workload {
		return NewVacation("vacation-high", scaled(4800, scale, 48), 256, 4, 8, 90, 5)
	})
	Register("vacation-low", func(scale float64) Workload {
		return NewVacation("vacation-low", scaled(4800, scale, 48), 256, 3, 15, 90, 5)
	})
}

// NewVacation builds a vacation instance.
func NewVacation(name string, totalOps, nItems, queries, rangePct, reservePct, deletePct int) *Vacation {
	return &Vacation{
		name: name, totalOps: totalOps, nItems: nItems,
		queries: queries, rangePct: rangePct,
		reservePct: reservePct, deletePct: deletePct,
	}
}

// Name implements Workload.
func (w *Vacation) Name() string { return w.name }

// NumAtomicBlocks implements Workload.
func (w *Vacation) NumAtomicBlocks() int { return 3 }

// MemWords implements Workload.
func (w *Vacation) MemWords() int {
	return w.nItems*4*8 + w.totalOps*10 + 1<<15
}

// Setup implements Workload.
func (w *Vacation) Setup(sys *seer.System) error {
	m := sys.Memory()
	arena := tmds.NewArena(m, (w.nItems*4+w.totalOps/2)*8+arenaSlack(sys), sys.HWThreads())
	w.cars = tmds.NewRBTree(m, arena)
	w.flights = tmds.NewRBTree(m, arena)
	w.rooms = tmds.NewRBTree(m, arena)
	w.customers = tmds.NewRBTree(m, arena)
	w.booked = newThreadStats(sys)
	w.stock = newThreadStats(sys)
	acc := rawSys{sys}
	for i := 0; i < w.nItems; i++ {
		k := uint64(i)
		w.cars.Insert(acc, k, 100)
		w.flights.Insert(acc, k, 100)
		w.rooms.Insert(acc, k, 100)
	}
	for i := 0; i < w.nItems/2; i++ {
		w.customers.Insert(acc, uint64(i), 0)
	}
	return nil
}

// tables returns the reservation tables for round-robin access.
func (w *Vacation) tables() []*tmds.RBTree {
	return []*tmds.RBTree{w.cars, w.flights, w.rooms}
}

// hotKey picks a key within the contended range.
func (w *Vacation) hotKey(rng *seer.Rand) uint64 {
	span := w.nItems * w.rangePct / 100
	if span < 1 {
		span = 1
	}
	return uint64(rng.Intn(span))
}

// Workers implements Workload.
func (w *Vacation) Workers(nThreads int) []seer.Worker {
	parts := split(w.totalOps, nThreads)
	tables := w.tables()
	workers := make([]seer.Worker, nThreads)
	for i := range workers {
		ops := parts[i]
		workers[i] = func(t *seer.Thread) {
			rng := t.Rand()
			for n := 0; n < ops; n++ {
				r := rng.Intn(100)
				switch {
				case r < w.reservePct:
					// Reserve: query `queries` random items, book the
					// cheapest available one.
					keys := make([]uint64, w.queries)
					for q := range keys {
						keys[q] = w.hotKey(rng)
					}
					tab := tables[rng.Intn(len(tables))]
					t.Atomic(0, func(a seer.Access) {
						bestKey, bestVal := uint64(0), uint64(0)
						found := false
						for _, k := range keys {
							if v, ok := tab.Get(a, k); ok && v > 0 && (!found || v > bestVal) {
								bestKey, bestVal, found = k, v, true
							}
						}
						a.Work(110) // pricing and itinerary checks
						if found {
							tab.Update(a, bestKey, bestVal-1)
							w.booked.add(a, 1)
						}
					})
					t.Work(10)
				case r < w.reservePct+w.deletePct:
					// Delete customer (tree structural change).
					cust := uint64(rng.Intn(w.nItems))
					t.Atomic(1, func(a seer.Access) {
						a.Work(70) // customer record bookkeeping
						if w.customers.Delete(a, cust) {
							w.stock.add(a, 1)
						} else {
							w.customers.Insert(a, cust, 0)
						}
					})
					t.Work(10)
				default:
					// Update tables: restock an item.
					tab := tables[rng.Intn(len(tables))]
					k := uint64(rng.Intn(w.nItems))
					t.Atomic(2, func(a seer.Access) {
						v, ok := tab.Get(a, k)
						a.Work(60) // table maintenance
						if ok {
							tab.Update(a, k, v+1)
							w.stock.add(a, 1)
						}
					})
					t.Work(10)
				}
			}
		}
	}
	return workers
}

// Validate implements Workload.
func (w *Vacation) Validate(sys *seer.System) error {
	acc := rawSys{sys}
	// Stock conservation: initial stock − bookings + restocks(table part)
	// must equal the sum of remaining availability.
	var remaining uint64
	var restocks uint64
	booked := w.booked.sum(sys)
	for _, tab := range w.tables() {
		if msg := tab.CheckInvariants(acc); msg != "" {
			return fmt.Errorf("%s: red-black invariants violated: %s", w.name, msg)
		}
		for _, k := range tab.Keys(acc, nil) {
			v, _ := tab.Get(acc, k)
			remaining += v
		}
	}
	if msg := w.customers.CheckInvariants(acc); msg != "" {
		return fmt.Errorf("%s: customers tree invalid: %s", w.name, msg)
	}
	initial := uint64(3 * w.nItems * 100)
	// stock counter counts customer deletes + restocks; recompute restocks
	// by inverting the identity below is impossible without separating
	// them, so check the weaker but still discriminating identity:
	// remaining + booked >= initial (restocks only add).
	if remaining+booked < initial {
		return fmt.Errorf("%s: stock leak: remaining %d + booked %d < initial %d",
			w.name, remaining, booked, initial)
	}
	restocks = remaining + booked - initial
	if restocks > w.stock.sum(sys) {
		return fmt.Errorf("%s: restocks (%d) exceed stock-counter bound (%d)",
			w.name, restocks, w.stock.sum(sys))
	}
	return nil
}
