package stamp

import (
	"fmt"

	"seer"
)

// Synth is a fully parameterized synthetic workload for exploring the
// scheduler outside the STAMP configurations: every contention knob the
// other ports hard-code is explicit here. It registers as "synth" with a
// default parameterization (not part of stamp.Suite); library users build
// custom instances by filling the struct directly (see
// examples/contention).
//
// Each atomic block b owns a hot set of HotLines[b] cache lines; an
// operation of block b reads ReadLines[b] random lines of that set,
// computes for TxWork[b] cycles, and writes WriteLines[b] of them.
// Blocks sharing a hot set (Overlap) conflict across blocks.
type Synth struct {
	// Blocks is the number of atomic blocks.
	Blocks int
	// Share[b] is block b's fraction of operations (must sum to ~1).
	Share []float64
	// HotLines[b] is the size of block b's hot set in cache lines.
	HotLines []int
	// ReadLines / WriteLines per operation of block b.
	ReadLines, WriteLines []int
	// TxWork[b] is in-transaction computation; GapWork is between ops.
	TxWork  []uint64
	GapWork uint64
	// Overlap makes all blocks address one shared hot set (sized by
	// HotLines[0]) instead of disjoint per-block sets.
	Overlap bool
	// TotalOps across all threads.
	TotalOps int

	sets []seer.Addr
	done threadStats
}

func init() {
	Register("synth", func(scale float64) Workload {
		return DefaultSynth(scale)
	})
}

// DefaultSynth returns a two-block instance with one hot self-conflicting
// block (20 %) and one wide, calm block (80 %) — the canonical scenario
// Seer exploits.
func DefaultSynth(scale float64) *Synth {
	return &Synth{
		Blocks:     2,
		Share:      []float64{0.2, 0.8},
		HotLines:   []int{4, 512},
		ReadLines:  []int{2, 2},
		WriteLines: []int{2, 1},
		TxWork:     []uint64{120, 50},
		GapWork:    10,
		TotalOps:   scaled(6400, scale, 64),
	}
}

// Name implements Workload.
func (w *Synth) Name() string { return "synth" }

// NumAtomicBlocks implements Workload.
func (w *Synth) NumAtomicBlocks() int { return w.Blocks }

// MemWords implements Workload.
func (w *Synth) MemWords() int {
	words := 0
	for _, h := range w.HotLines {
		words += h * 8
	}
	return words + 1<<13
}

// check panics on inconsistent parameterizations (programming errors).
func (w *Synth) check() {
	if w.Blocks <= 0 || len(w.Share) != w.Blocks || len(w.HotLines) != w.Blocks ||
		len(w.ReadLines) != w.Blocks || len(w.WriteLines) != w.Blocks || len(w.TxWork) != w.Blocks {
		panic("stamp: inconsistent Synth parameterization")
	}
	for b := 0; b < w.Blocks; b++ {
		if w.ReadLines[b] > w.HotLines[b] || w.WriteLines[b] > w.HotLines[b] {
			panic("stamp: Synth accesses exceed the hot set")
		}
	}
}

// Setup implements Workload.
func (w *Synth) Setup(sys *seer.System) error {
	w.check()
	w.sets = make([]seer.Addr, w.Blocks)
	for b := 0; b < w.Blocks; b++ {
		if w.Overlap && b > 0 {
			w.sets[b] = w.sets[0]
			continue
		}
		w.sets[b] = sys.AllocLines(w.HotLines[b])
	}
	w.done = newThreadStats(sys)
	return nil
}

// pick selects an operation's block by the configured shares.
func (w *Synth) pick(r float64) int {
	acc := 0.0
	for b := 0; b < w.Blocks; b++ {
		acc += w.Share[b]
		if r < acc {
			return b
		}
	}
	return w.Blocks - 1
}

// Workers implements Workload.
func (w *Synth) Workers(nThreads int) []seer.Worker {
	parts := split(w.TotalOps, nThreads)
	workers := make([]seer.Worker, nThreads)
	for i := range workers {
		ops := parts[i]
		workers[i] = func(t *seer.Thread) {
			rng := t.Rand()
			for n := 0; n < ops; n++ {
				b := w.pick(rng.Float64())
				hot := w.HotLines[b]
				if w.Overlap {
					hot = w.HotLines[0]
				}
				set := w.sets[b]
				// Choose the lines outside the body (stable across
				// hardware retries).
				reads := make([]seer.Addr, w.ReadLines[b])
				for j := range reads {
					reads[j] = set + seer.Addr(rng.Intn(hot)*8)
				}
				writes := make([]seer.Addr, w.WriteLines[b])
				for j := range writes {
					writes[j] = set + seer.Addr(rng.Intn(hot)*8)
				}
				work := w.TxWork[b]
				t.AtomicObj(b, uint64(n), func(a seer.Access) {
					var sum uint64
					for _, r := range reads {
						sum += a.Load(r)
					}
					a.Work(work)
					for _, wr := range writes {
						a.Store(wr, a.Load(wr)+1)
					}
					w.done.add(a, 1)
					_ = sum
				})
				if w.GapWork > 0 {
					t.Work(w.GapWork + uint64(rng.Intn(int(w.GapWork)+1)))
				}
			}
		}
	}
	return workers
}

// Validate implements Workload.
func (w *Synth) Validate(sys *seer.System) error {
	if done := w.done.sum(sys); done != uint64(w.TotalOps) {
		return fmt.Errorf("synth: %d operations committed, want %d", done, w.TotalOps)
	}
	// The per-block write counts are not retained post-run per op (the
	// lines are chosen randomly), so check the weaker invariant that the
	// increments sum over all sets matches total writes committed; since
	// every op of block b performs exactly WriteLines[b] increments, and
	// shares are random, recompute from the per-block op counts is not
	// possible without extra state — instead verify that the total mass
	// is within the op-count bounds.
	var mass uint64
	seen := map[seer.Addr]bool{}
	for b := 0; b < w.Blocks; b++ {
		if seen[w.sets[b]] {
			continue
		}
		seen[w.sets[b]] = true
		hot := w.HotLines[b]
		if w.Overlap {
			hot = w.HotLines[0]
		}
		for l := 0; l < hot; l++ {
			mass += sys.Peek(w.sets[b] + seer.Addr(l*8))
		}
	}
	minW, maxW := w.WriteLines[0], w.WriteLines[0]
	for _, wl := range w.WriteLines {
		if wl < minW {
			minW = wl
		}
		if wl > maxW {
			maxW = wl
		}
	}
	lo := uint64(w.TotalOps) * uint64(minW)
	hi := uint64(w.TotalOps) * uint64(maxW)
	if mass < lo || mass > hi {
		return fmt.Errorf("synth: hot-set increments %d outside [%d, %d]", mass, lo, hi)
	}
	return nil
}
