package stamp

import (
	"fmt"

	"seer"
	"seer/internal/tmds"
)

// HashMapBench is the low-contention microbenchmark of §5.3: a hash map
// with 4k elements and 1k buckets under a read-dominated mix, used to
// bound Seer's profiling overhead in the most overhead-sensitive regime
// (where there is nothing for the scheduler to gain).
type HashMapBench struct {
	totalOps int
	elements int
	buckets  int

	table   *tmds.HashMap
	balance threadStats // net inserts − deletes (wrapping)
}

func init() {
	Register("hashmap", func(scale float64) Workload { return NewHashMapBench(scale) })
}

// NewHashMapBench builds the 4k-element / 1k-bucket map of the paper.
func NewHashMapBench(scale float64) *HashMapBench {
	return &HashMapBench{
		totalOps: scaled(12800, scale, 128),
		elements: scaled(4096, scale, 64),
		buckets:  scaled(1024, scale, 16),
	}
}

// Name implements Workload.
func (w *HashMapBench) Name() string { return "hashmap" }

// NumAtomicBlocks implements Workload.
func (w *HashMapBench) NumAtomicBlocks() int { return 1 }

// MemWords implements Workload.
func (w *HashMapBench) MemWords() int {
	return w.buckets + (w.elements+w.totalOps/4)*4 + 1<<15
}

// Setup implements Workload.
func (w *HashMapBench) Setup(sys *seer.System) error {
	m := sys.Memory()
	arena := tmds.NewArena(m, (w.elements+w.totalOps/4)*3+arenaSlack(sys), sys.HWThreads())
	w.table = tmds.NewHashMap(m, w.buckets, arena)
	w.balance = newThreadStats(sys)
	acc := rawSys{sys}
	for i := 0; i < w.elements; i++ {
		w.table.Put(acc, uint64(i), uint64(i))
	}
	return nil
}

// Workers implements Workload.
func (w *HashMapBench) Workers(nThreads int) []seer.Worker {
	parts := split(w.totalOps, nThreads)
	keySpace := uint64(w.elements * 2)
	workers := make([]seer.Worker, nThreads)
	for i := range workers {
		ops := parts[i]
		workers[i] = func(t *seer.Thread) {
			rng := t.Rand()
			for n := 0; n < ops; n++ {
				k := rng.Uint64() % keySpace
				switch r := rng.Intn(100); {
				case r < 90:
					t.Atomic(0, func(a seer.Access) {
						a.Work(120)
						_, _ = w.table.Get(a, k)
					})
				case r < 95:
					t.Atomic(0, func(a seer.Access) {
						a.Work(120)
						if w.table.PutIfAbsent(a, k, k) {
							w.balance.add(a, 1)
						}
					})
				default:
					t.Atomic(0, func(a seer.Access) {
						a.Work(120)
						if w.table.Delete(a, k) {
							w.balance.add(a, ^uint64(0)) // -1, wrapping
						}
					})
				}
				t.Work(uint64(100 + rng.Intn(41)))
			}
		}
	}
	return workers
}

// Validate implements Workload.
func (w *HashMapBench) Validate(sys *seer.System) error {
	acc := rawSys{sys}
	want := uint64(w.elements) + w.balance.sum(sys) // two's-complement add
	if got := w.table.Size(acc); got != want {
		return fmt.Errorf("hashmap: size %d, want %d (initial %d %+d)",
			got, want, w.elements, int64(w.balance.sum(sys)))
	}
	return nil
}
