package stamp

import (
	"fmt"

	"seer"
	"seer/internal/tmds"
)

// Intruder models STAMP's network-intrusion-detection benchmark. The
// original pipeline has three transactional stages per packet: capture
// (pop from a shared packet queue), reassembly (insert the fragment into
// a shared session dictionary), and flagging completed nSessions into a
// detection queue. The two queue stages hammer a single queue header each
// (short, very conflict-prone transactions); reassembly is moderate.
//
//	block 0 (capture):    pop from the packet queue (hot)
//	block 1 (reassemble): session-map insert/update (moderate)
//	block 2 (flag):       push to the detection queue (hot)
type Intruder struct {
	scale     float64
	totalOps  int
	nSessions int
	buckets   int

	packets    *tmds.Queue
	flagged    *tmds.Queue
	sessionTab *tmds.HashMap
	popped     threadStats // successful pops
	pushed     threadStats // successful flag pushes
}

func init() {
	Register("intruder", func(scale float64) Workload { return NewIntruder(scale) })
}

// NewIntruder builds an intruder instance at the given scale.
func NewIntruder(scale float64) *Intruder {
	return &Intruder{
		scale:    scale,
		totalOps: scaled(7200, scale, 72),
		// The session table's size is contention-critical and therefore
		// scale-invariant: chains stay ~32 entries long, so reassembly
		// transactions collide at the same rate at every scale.
		nSessions: 384,
		buckets:   12,
	}
}

// Name implements Workload.
func (w *Intruder) Name() string { return "intruder" }

// NumAtomicBlocks implements Workload.
func (w *Intruder) NumAtomicBlocks() int { return 3 }

// MemWords implements Workload.
func (w *Intruder) MemWords() int {
	return w.totalOps*6 + w.buckets + w.nSessions*6 + 1<<15
}

// Setup implements Workload.
func (w *Intruder) Setup(sys *seer.System) error {
	m := sys.Memory()
	w.packets = tmds.NewQueue(m, w.totalOps+2)
	w.flagged = tmds.NewQueue(m, w.totalOps+2)
	arena := tmds.NewArena(m, w.totalOps*4+arenaSlack(sys), sys.HWThreads())
	w.sessionTab = tmds.NewHashMap(m, w.buckets, arena)
	w.popped = newThreadStats(sys)
	w.pushed = newThreadStats(sys)
	// Pre-capture the packet trace: every op pops exactly one packet.
	acc := rawSys{sys}
	rng := seededRand(42)
	for i := 0; i < w.totalOps; i++ {
		sess := rng.Uint64() % uint64(w.nSessions)
		frag := rng.Uint64() % 16
		if !w.packets.Push(acc, sess<<8|frag) {
			panic("intruder: packet queue sized too small")
		}
	}
	return nil
}

// Workers implements Workload.
func (w *Intruder) Workers(nThreads int) []seer.Worker {
	parts := split(w.totalOps, nThreads)
	workers := make([]seer.Worker, nThreads)
	for i := range workers {
		ops := parts[i]
		workers[i] = func(t *seer.Thread) {
			rng := t.Rand()
			for n := 0; n < ops; n++ {
				// Capture: pop one packet.
				var pkt uint64
				var ok bool
				t.Atomic(0, func(a seer.Access) {
					pkt, ok = w.packets.Pop(a)
					a.Work(8) // header checks
					if ok {
						w.popped.add(a, 1)
					}
				})
				if !ok {
					// Trace exhausted (only possible through races
					// in partitioning; never expected).
					return
				}
				t.Work(uint64(22 + rng.Intn(17))) // decode outside the capture txn

				// Reassembly: account the fragment to its session.
				sess := pkt >> 8
				var complete bool
				t.Atomic(1, func(a seer.Access) {
					cnt, _ := w.sessionTab.Get(a, sess)
					a.Work(200) // fragment reassembly
					cnt++
					complete = cnt%8 == 0
					if complete {
						// Completed session: remove it from the resident
						// table (the unlink rewrites the bucket chain,
						// conflicting with concurrent walkers) and carry
						// the count in the flag queue entry instead.
						w.sessionTab.Delete(a, sess)
					} else {
						w.sessionTab.Put(a, sess, cnt)
					}
				})
				t.Work(uint64(6 + rng.Intn(9)))

				// Detection: flag completed sessions.
				if complete {
					t.Atomic(2, func(a seer.Access) {
						a.Work(30) // signature check
						if w.flagged.Push(a, sess<<8|8) {
							w.pushed.add(a, 1)
						}
					})
					t.Work(5)
				}
			}
		}
	}
	return workers
}

// Validate implements Workload.
func (w *Intruder) Validate(sys *seer.System) error {
	acc := rawSys{sys}
	popped := w.popped.sum(sys)
	if popped != uint64(w.totalOps) {
		return fmt.Errorf("intruder: popped %d packets, want %d", popped, w.totalOps)
	}
	if !w.packets.Empty(acc) {
		return fmt.Errorf("intruder: packet queue not drained (%d left)", w.packets.Len(acc))
	}
	// Fragment conservation: residual session counters plus the
	// fragments carried by completed (deleted) sessions must sum to the
	// trace size.
	var sum uint64
	for _, k := range w.sessionTab.Keys(acc, nil) {
		v, _ := w.sessionTab.Get(acc, k)
		sum += v
	}
	for i := 0; i < w.flagged.Len(acc); i++ {
		sum += 8 // each flagged entry accounts for 8 reassembled fragments
	}
	if sum != uint64(w.totalOps) {
		return fmt.Errorf("intruder: session fragments sum to %d, want %d", sum, w.totalOps)
	}
	if got := uint64(w.flagged.Len(acc)); got != w.pushed.sum(sys) {
		return fmt.Errorf("intruder: flagged queue has %d, pushed counter says %d",
			got, w.pushed.sum(sys))
	}
	return nil
}

// seededRand builds a deterministic PRNG for setup-time trace generation.
func seededRand(seed uint64) *setupRand { return &setupRand{state: seed} }

type setupRand struct{ state uint64 }

func (r *setupRand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}
