package stamp

import (
	"fmt"

	"seer"
)

// Yada models STAMP's Delaunay mesh refinement: transactions grow a
// "cavity" around a bad triangle, touching a large neighbourhood of mesh
// elements, then retriangulate it — very large read/write sets and high
// conflict probability. On best-effort HTM these transactions frequently
// exceed capacity (especially with hyperthread siblings sharing the L1)
// and conflict with overlapping cavities, so every policy stays below
// sequential speed (paper Figure 3h); Seer merely degrades least.
//
//	block 0 (refine):  read-modify-write a contiguous region of the mesh
//	                   (cavity), large footprint
//	block 1 (queue):   take/return work from the bad-triangle counter
type Yada struct {
	totalOps  int
	nCells    int
	cavityMin int
	cavityMax int

	mesh     seer.Addr   // one line per cell
	workHead seer.Addr   // bad-triangle work counter (hot by design)
	refined  threadStats // total cells rewritten (conservation check)
}

func init() {
	Register("yada", func(scale float64) Workload { return NewYada(scale) })
}

// NewYada builds a yada instance at the given scale.
func NewYada(scale float64) *Yada {
	return &Yada{
		totalOps: scaled(900, scale, 18),
		nCells:   scaled(4096, scale, 256),
		// Cavities fit a solo thread's write budget (64 lines) but the
		// larger ones exceed the budget once a hyperthread sibling is
		// transactional (32 lines) — the capacity pathology core locks
		// address.
		cavityMin: 24,
		cavityMax: 72,
	}
}

// Name implements Workload.
func (w *Yada) Name() string { return "yada" }

// NumAtomicBlocks implements Workload.
func (w *Yada) NumAtomicBlocks() int { return 2 }

// MemWords implements Workload.
func (w *Yada) MemWords() int { return w.nCells*8 + 1<<12 }

// Setup implements Workload.
func (w *Yada) Setup(sys *seer.System) error {
	w.mesh = sys.AllocLines(w.nCells)
	w.workHead = sys.AllocLines(1)
	w.refined = newThreadStats(sys)
	return nil
}

// Workers implements Workload.
func (w *Yada) Workers(nThreads int) []seer.Worker {
	parts := split(w.totalOps, nThreads)
	workers := make([]seer.Worker, nThreads)
	for i := range workers {
		ops := parts[i]
		workers[i] = func(t *seer.Thread) {
			rng := t.Rand()
			for n := 0; n < ops; n++ {
				// Claim work.
				t.Atomic(1, func(a seer.Access) {
					a.Work(10)
					a.Store(w.workHead, a.Load(w.workHead)+1)
				})
				t.Work(uint64(6 + rng.Intn(9)))

				// Refine a cavity: a contiguous cell region drawn from
				// the sliding "active front" of the mesh, so concurrent
				// cavities overlap with high probability (as refinement
				// work clusters around bad triangles).
				size := w.cavityMin + rng.Intn(w.cavityMax-w.cavityMin+1)
				window := 96
				if window > w.nCells-w.cavityMax {
					window = w.nCells - w.cavityMax
				}
				// The refinement front is a function of global virtual
				// time, so all threads work the same mesh region
				// concurrently (bad triangles cluster); deriving it from
				// the per-thread iteration count would let threads drift
				// into disjoint regions and anneal the conflicts away.
				front := int(t.Clock()/700*97) % (w.nCells - window + 1)
				start := front + rng.Intn(window-size+1)
				t.Atomic(0, func(a seer.Access) {
					// Read the whole cavity first (the read set is held
					// for the entire refinement), retriangulate, then
					// write the new elements back.
					vals := make([]uint64, size)
					for c := 0; c < size; c++ {
						vals[c] = a.Load(w.mesh + seer.Addr((start+c)*8))
					}
					a.Work(160) // retriangulation geometry
					for c := 0; c < size; c++ {
						a.Store(w.mesh+seer.Addr((start+c)*8), vals[c]+1)
					}
					w.refined.add(a, uint64(size))
				})
				t.Work(uint64(12 + rng.Intn(17)))
			}
		}
	}
	return workers
}

// Validate implements Workload.
func (w *Yada) Validate(sys *seer.System) error {
	var sum uint64
	for c := 0; c < w.nCells; c++ {
		sum += sys.Peek(w.mesh + seer.Addr(c*8))
	}
	if refined := w.refined.sum(sys); sum != refined {
		return fmt.Errorf("yada: mesh increments %d != refined counter %d", sum, refined)
	}
	if head := sys.Peek(w.workHead); head != uint64(w.totalOps) {
		return fmt.Errorf("yada: work counter %d, want %d", head, w.totalOps)
	}
	return nil
}
