package stamp_test

// Failure-injection tests: every workload's Validate must detect
// deliberately corrupted simulated state. A validator that cannot fail
// proves nothing when it passes.

import (
	"strings"
	"testing"

	"seer"
	"seer/internal/harness"
	"seer/internal/stamp"
)

// runAndCorrupt runs a workload sequentially, then lets corrupt mangle
// the simulated memory, and returns Validate's error.
func runAndCorrupt(t *testing.T, name string, corrupt func(sys *seer.System)) error {
	t.Helper()
	wl, err := stamp.New(name, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := seer.DefaultConfig()
	cfg.Threads = 2
	cfg.HWThreads = harness.MachineHWThreads
	cfg.PhysCores = harness.MachinePhysCores
	cfg.Policy = seer.PolicyRTM
	cfg.NumAtomicBlocks = wl.NumAtomicBlocks()
	cfg.MemWords = wl.MemWords() + (1 << 14)
	cfg.MaxCycles = 1 << 34
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wl.Setup(sys)
	if _, err := sys.Run(wl.Workers(2)); err != nil {
		t.Fatal(err)
	}
	if err := wl.Validate(sys); err != nil {
		t.Fatalf("pre-corruption validation failed: %v", err)
	}
	corrupt(sys)
	return wl.Validate(sys)
}

// smashHigh flips a swath of words near the end of the allocated
// region (per-thread stats, trailing structures).
func smashHigh(sys *seer.System) {
	hi := sys.Config().MemWords - sys.FreeWords()
	for a := hi - 256; a < hi-128; a++ {
		if a > 0 {
			sys.Poke(seer.Addr(a), sys.Peek(seer.Addr(a))+3)
		}
	}
}

// smashLow flips words in the early workload allocations (tree nodes,
// cluster accumulators); runtime lock words it also hits are inert after
// the run.
func smashLow(sys *seer.System) {
	for a := 16; a < 900; a++ {
		sys.Poke(seer.Addr(a), sys.Peek(seer.Addr(a))+3)
	}
}

// TestSequentialVsTMResults: for the two paper-excluded workloads, a
// sequential run and a transactional run must produce the same committed
// work (every proposed operation commits exactly one atomic block, so
// the commit totals are thread-count invariant) and both must validate.
func TestSequentialVsTMResults(t *testing.T) {
	for _, name := range []string{"bayes", "labyrinth"} {
		name := name
		t.Run(name, func(t *testing.T) {
			seq, err := harness.RunOne(harness.Spec{
				Workload: name, Scale: 0.1, Policy: seer.PolicySeq,
				Threads: 1, Runs: 1, Seed: 5,
			})
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			for _, pol := range []seer.PolicyKind{seer.PolicyRTM, seer.PolicyBackoff, seer.PolicySeer} {
				tm, err := harness.RunOne(harness.Spec{
					Workload: name, Scale: 0.1, Policy: pol,
					Threads: 4, Runs: 1, Seed: 5,
				})
				if err != nil {
					t.Fatalf("%s: %v", pol, err)
				}
				if got, want := tm.Reports[0].Commits(), seq.Reports[0].Commits(); got != want {
					t.Fatalf("%s commits %d != sequential commits %d", pol, got, want)
				}
			}
		})
	}
}

func TestValidatorsDetectCorruption(t *testing.T) {
	// Workloads whose validated state lives in the early allocations.
	lowRegion := map[string]bool{
		"kmeans-high": true, "kmeans-low": true,
		"vacation-high": true, "vacation-low": true,
	}
	// For each workload, a targeted corruption the validator must catch.
	for _, name := range append(append([]string{}, stamp.Suite...), "hashmap", "bayes", "labyrinth") {
		name := name
		t.Run(name, func(t *testing.T) {
			corrupt := smashHigh
			if lowRegion[name] {
				corrupt = smashLow
			}
			err := runAndCorrupt(t, name, corrupt)
			if err == nil {
				t.Fatalf("%s: validator accepted corrupted state", name)
			}
			if !strings.Contains(err.Error(), name[:4]) && !strings.Contains(err.Error(), ":") {
				t.Fatalf("%s: unhelpful validation error %q", name, err)
			}
		})
	}
}
