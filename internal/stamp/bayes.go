package stamp

import (
	"fmt"

	"seer"
	"seer/internal/tmds"
)

// Bayes models STAMP's Bayesian-network structure learner: threads
// repeatedly propose a dependency edge between two variables, score the
// candidate against cached sufficient statistics, and — if it improves
// the network — insert it, keeping per-variable parent lists and a global
// score. The amount of scoring work depends on the (random) parent sets,
// so execution times are highly variable between runs; this is why the
// paper EXCLUDES bayes from its evaluation ("given its non-deterministic
// executions"). It is implemented and registered for completeness but is
// not part of stamp.Suite.
//
//	block 0 (score+insert): read both variables' parent lists, compute
//	                        the score delta, insert the edge
//	block 1 (query):        adtree-style read of a variable's statistics
type Bayes struct {
	totalOps  int
	nVars     int
	maxParent int

	// Per variable, one line: [0] parent count, [1..6] parent ids.
	vars  seer.Addr
	edges *tmds.HashMap // (u<<16|v) → 1, the inserted edge set
	score seer.Addr     // global network score (hot)
	ins   threadStats   // committed insertions
}

func init() {
	Register("bayes", func(scale float64) Workload { return NewBayes(scale) })
}

// NewBayes builds a bayes instance at the given scale.
func NewBayes(scale float64) *Bayes {
	return &Bayes{
		totalOps:  scaled(2400, scale, 48),
		nVars:     48,
		maxParent: 6,
	}
}

// Name implements Workload.
func (w *Bayes) Name() string { return "bayes" }

// NumAtomicBlocks implements Workload.
func (w *Bayes) NumAtomicBlocks() int { return 2 }

// MemWords implements Workload.
func (w *Bayes) MemWords() int {
	return w.nVars*8 + w.totalOps*4 + 1<<13
}

func (w *Bayes) varAddr(v int) seer.Addr { return w.vars + seer.Addr(v*8) }

// Setup implements Workload.
func (w *Bayes) Setup(sys *seer.System) error {
	m := sys.Memory()
	w.vars = sys.AllocLines(w.nVars)
	arena := tmds.NewArena(m, w.totalOps*3+arenaSlack(sys), sys.HWThreads())
	w.edges = tmds.NewHashMap(m, 128, arena)
	w.score = sys.AllocLines(1)
	w.ins = newThreadStats(sys)
	return nil
}

// Workers implements Workload.
func (w *Bayes) Workers(nThreads int) []seer.Worker {
	parts := split(w.totalOps, nThreads)
	workers := make([]seer.Worker, nThreads)
	for i := range workers {
		ops := parts[i]
		workers[i] = func(t *seer.Thread) {
			rng := t.Rand()
			for n := 0; n < ops; n++ {
				u := rng.Intn(w.nVars)
				v := rng.Intn(w.nVars)
				if u == v {
					v = (v + 1) % w.nVars
				}
				if rng.Bool(0.6) {
					// Propose edge u→v: read both parent lists, score
					// (cost grows with the parent sets — the source of
					// bayes' run-to-run variance), then maybe insert.
					key := uint64(u)<<16 | uint64(v)
					t.Atomic(0, func(a seer.Access) {
						pu := a.Load(w.varAddr(u))
						pv := a.Load(w.varAddr(v))
						// Scoring cost scales with the parent sets.
						a.Work(40 + 25*(pu+pv))
						if pv < uint64(w.maxParent) && !w.edges.Contains(a, key) {
							w.edges.Put(a, key, 1)
							a.Store(w.varAddr(v)+1+seer.Addr(pv), uint64(u))
							a.Store(w.varAddr(v), pv+1)
							a.Store(w.score, a.Load(w.score)+pu+1)
							w.ins.add(a, 1)
						}
					})
				} else {
					// Query sufficient statistics (read-mostly).
					t.Atomic(1, func(a seer.Access) {
						p := a.Load(w.varAddr(u))
						var sum uint64
						for j := uint64(0); j < p; j++ {
							sum += a.Load(w.varAddr(u) + 1 + seer.Addr(j))
						}
						a.Work(30 + 10*p)
						_ = sum
					})
				}
				t.Work(uint64(8 + rng.Intn(9)))
			}
		}
	}
	return workers
}

// Validate implements Workload.
func (w *Bayes) Validate(sys *seer.System) error {
	acc := rawSys{sys}
	inserted := w.ins.sum(sys)
	if got := w.edges.Size(acc); got != inserted {
		return fmt.Errorf("bayes: edge set has %d, committed inserts %d", got, inserted)
	}
	// Parent counts must sum to the edge count and stay within bounds.
	var parents uint64
	for v := 0; v < w.nVars; v++ {
		p := sys.Peek(w.varAddr(v))
		if p > uint64(w.maxParent) {
			return fmt.Errorf("bayes: variable %d has %d parents (max %d)", v, p, w.maxParent)
		}
		parents += p
	}
	if parents != inserted {
		return fmt.Errorf("bayes: parent slots %d != inserted edges %d", parents, inserted)
	}
	return nil
}
