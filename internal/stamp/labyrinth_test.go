package stamp

import (
	"errors"
	"testing"

	"seer"
)

// TestLabyrinthQueueTooSmall: an undersized request queue is a named,
// wrapped error from Setup — not a panic.
func TestLabyrinthQueueTooSmall(t *testing.T) {
	w := NewLabyrinth(0.1)
	w.queueSlots = w.totalOps / 2
	cfg := seer.DefaultConfig()
	cfg.Threads = 1
	cfg.NumAtomicBlocks = w.NumAtomicBlocks()
	cfg.MemWords = w.MemWords() + (1 << 14)
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Setup(sys)
	if err == nil {
		t.Fatal("undersized queue accepted")
	}
	if !errors.Is(err, ErrQueueTooSmall) {
		t.Fatalf("error %v does not wrap ErrQueueTooSmall", err)
	}
}

// TestLabyrinthQueueDefaultSufficient: the default sizing always holds
// every pre-planned request.
func TestLabyrinthQueueDefaultSufficient(t *testing.T) {
	w := NewLabyrinth(0.1)
	cfg := seer.DefaultConfig()
	cfg.Threads = 1
	cfg.NumAtomicBlocks = w.NumAtomicBlocks()
	cfg.MemWords = w.MemWords() + (1 << 14)
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(sys); err != nil {
		t.Fatal(err)
	}
}
