// Package trace provides an optional, bounded event log for the TM
// runtime: transaction begins, commits, aborts (with status), lock
// acquisitions and scheme updates, each stamped with the virtual time and
// hardware thread. It exists for debugging scheduler behaviour and for
// the seerstat inspector's timeline view; tracing off (the default) costs
// a single nil check per event.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Kind classifies trace events.
type Kind uint8

// Event kinds.
const (
	EvBegin    Kind = iota // hardware attempt started
	EvCommit               // hardware transaction committed
	EvAbort                // hardware transaction aborted
	EvFallback             // single-global-lock path taken
	EvLockAcq              // scheduler lock acquired
	EvLockRel              // scheduler lock released
	EvWait                 // cooperative wait started
	EvScheme               // locking scheme recomputed
	EvTune                 // thresholds re-tuned
	EvDoom                 // abort attributed: Detail=conflicting line, Detail2=packed aborter hw/block
	EvPhase                // phased-TM mode transition: Detail=new mode, Detail2=old mode
)

// String returns the event kind's mnemonic.
func (k Kind) String() string {
	switch k {
	case EvBegin:
		return "begin"
	case EvCommit:
		return "commit"
	case EvAbort:
		return "abort"
	case EvFallback:
		return "fallback"
	case EvLockAcq:
		return "lock+"
	case EvLockRel:
		return "lock-"
	case EvWait:
		return "wait"
	case EvScheme:
		return "scheme"
	case EvTune:
		return "tune"
	case EvDoom:
		return "doom"
	case EvPhase:
		return "phase"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one timeline entry.
type Event struct {
	Cycle   uint64 // virtual time
	HW      int16  // hardware thread
	Kind    Kind
	TxID    int16  // atomic block (-1 when not applicable)
	Detail  uint32 // kind-specific payload (abort status, lock id, ...)
	Detail2 uint32 // second payload (EvTune carries Θ₂ here as float32 bits)
}

// String renders an event as one log line.
func (e Event) String() string {
	s := fmt.Sprintf("%10d t%-2d %-8s tx=%-3d detail=%#x",
		e.Cycle, e.HW, e.Kind, e.TxID, e.Detail)
	if e.Detail2 != 0 {
		s += fmt.Sprintf(" detail2=%#x", e.Detail2)
	}
	return s
}

// Log is a bounded ring buffer of events. A nil *Log is a valid,
// disabled log: every method is a no-op, so call sites need no
// conditionals.
type Log struct {
	events []Event
	next   int
	wrap   bool
	total  uint64
}

// New creates a log retaining the most recent capacity events.
func New(capacity int) *Log {
	if capacity <= 0 {
		capacity = 1
	}
	return &Log{events: make([]Event, capacity)}
}

// Add appends an event (no-op on a nil log).
func (l *Log) Add(e Event) {
	if l == nil {
		return
	}
	l.events[l.next] = e
	l.next++
	l.total++
	if l.next == len(l.events) {
		l.next = 0
		l.wrap = true
	}
}

// Record is Add with the fields spread, for terse call sites.
func (l *Log) Record(cycle uint64, hw int, kind Kind, txID int, detail uint32) {
	if l == nil {
		return
	}
	l.Add(Event{Cycle: cycle, HW: int16(hw), Kind: kind, TxID: int16(txID), Detail: detail})
}

// Record2 is Record with both payload fields (EvTune carries Θ₁/Θ₂ as
// float32 bits in Detail/Detail2).
func (l *Log) Record2(cycle uint64, hw int, kind Kind, txID int, detail, detail2 uint32) {
	if l == nil {
		return
	}
	l.Add(Event{Cycle: cycle, HW: int16(hw), Kind: kind, TxID: int16(txID), Detail: detail, Detail2: detail2})
}

// Total returns the number of events ever recorded (including evicted).
func (l *Log) Total() uint64 {
	if l == nil {
		return 0
	}
	return l.total
}

// Events returns the retained events in chronological order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	if !l.wrap {
		out := make([]Event, l.next)
		copy(out, l.events[:l.next])
		return out
	}
	out := make([]Event, 0, len(l.events))
	out = append(out, l.events[l.next:]...)
	out = append(out, l.events[:l.next]...)
	return out
}

// Dump writes the retained timeline to w, optionally filtered by kind
// (pass nil for all).
func (l *Log) Dump(w io.Writer, kinds map[Kind]bool) {
	for _, e := range l.Events() {
		if kinds != nil && !kinds[e.Kind] {
			continue
		}
		fmt.Fprintln(w, e.String())
	}
}

// Summary returns per-kind counts over the retained window.
func (l *Log) Summary() map[Kind]int {
	out := map[Kind]int{}
	for _, e := range l.Events() {
		out[e.Kind]++
	}
	return out
}

// FormatSummary renders Summary in a stable order (ascending kind). It
// iterates over the kinds actually retained rather than a hard-coded
// range, so events of kinds added in the future are never dropped.
func (l *Log) FormatSummary() string {
	s := l.Summary()
	kinds := make([]Kind, 0, len(s))
	for k := range s {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	var b strings.Builder
	for _, k := range kinds {
		fmt.Fprintf(&b, "%s=%d ", k, s[k])
	}
	return strings.TrimSpace(b.String())
}

// knownKinds lists every defined kind, for name-based lookups.
var knownKinds = []Kind{
	EvBegin, EvCommit, EvAbort, EvFallback,
	EvLockAcq, EvLockRel, EvWait, EvScheme, EvTune, EvDoom, EvPhase,
}

// ParseKinds parses a comma-separated list of kind mnemonics (as printed
// by Kind.String, e.g. "abort,lock+") into a Dump filter set. An empty
// spec returns nil (no filtering).
func ParseKinds(spec string) (map[Kind]bool, error) {
	if spec == "" {
		return nil, nil
	}
	byName := make(map[string]Kind, len(knownKinds))
	for _, k := range knownKinds {
		byName[k.String()] = k
	}
	out := map[Kind]bool{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		k, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("trace: unknown event kind %q (known: %s)", name, kindNames())
		}
		out[k] = true
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// kindNames renders the known mnemonics for error messages.
func kindNames() string {
	names := make([]string, len(knownKinds))
	for i, k := range knownKinds {
		names[i] = k.String()
	}
	return strings.Join(names, ",")
}
