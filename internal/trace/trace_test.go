package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNilLogIsNoOp(t *testing.T) {
	var l *Log
	l.Add(Event{}) // must not panic
	l.Record(1, 2, EvBegin, 0, 0)
	if l.Total() != 0 || l.Events() != nil {
		t.Fatalf("nil log retained state")
	}
}

func TestChronologicalOrder(t *testing.T) {
	l := New(8)
	for i := 0; i < 5; i++ {
		l.Record(uint64(i*10), 0, EvBegin, 0, 0)
	}
	evs := l.Events()
	if len(evs) != 5 {
		t.Fatalf("events = %d, want 5", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Cycle < evs[i-1].Cycle {
			t.Fatalf("out of order at %d: %v", i, evs)
		}
	}
}

func TestRingEviction(t *testing.T) {
	l := New(4)
	for i := 0; i < 10; i++ {
		l.Record(uint64(i), 0, EvCommit, 0, 0)
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	if evs[0].Cycle != 6 || evs[3].Cycle != 9 {
		t.Fatalf("wrong window: %v", evs)
	}
	if l.Total() != 10 {
		t.Fatalf("total = %d, want 10", l.Total())
	}
}

func TestSummaryAndDump(t *testing.T) {
	l := New(16)
	l.Record(1, 0, EvBegin, 0, 0)
	l.Record(2, 0, EvAbort, 0, 4)
	l.Record(3, 0, EvBegin, 0, 0)
	l.Record(4, 0, EvCommit, 0, 0)
	s := l.Summary()
	if s[EvBegin] != 2 || s[EvAbort] != 1 || s[EvCommit] != 1 {
		t.Fatalf("summary = %v", s)
	}
	if fs := l.FormatSummary(); !strings.Contains(fs, "begin=2") {
		t.Fatalf("FormatSummary = %q", fs)
	}
	var b strings.Builder
	l.Dump(&b, map[Kind]bool{EvAbort: true})
	out := b.String()
	if strings.Count(out, "\n") != 1 || !strings.Contains(out, "abort") {
		t.Fatalf("filtered dump wrong:\n%s", out)
	}
}

func TestKindStrings(t *testing.T) {
	for k := EvBegin; k <= EvTune; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Fatalf("kind %d missing mnemonic", k)
		}
	}
	if !strings.HasPrefix(Kind(200).String(), "kind(") {
		t.Fatalf("unknown kind must render numerically")
	}
}

// TestQuickRingInvariant: the retained window is always the last
// min(total, capacity) events in order.
func TestQuickRingInvariant(t *testing.T) {
	f := func(cap8 uint8, n uint16) bool {
		capacity := int(cap8%32) + 1
		l := New(capacity)
		for i := 0; i < int(n%500); i++ {
			l.Record(uint64(i), 0, EvBegin, 0, 0)
		}
		evs := l.Events()
		total := int(n % 500)
		want := total
		if want > capacity {
			want = capacity
		}
		if len(evs) != want {
			return false
		}
		for i, e := range evs {
			if e.Cycle != uint64(total-want+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestFutureKindRetained: Summary and FormatSummary must count kinds that
// do not exist yet (added by later versions) instead of dropping them.
func TestFutureKindRetained(t *testing.T) {
	l := New(8)
	future := Kind(99)
	l.Record(1, 0, EvBegin, 0, 0)
	l.Add(Event{Cycle: 2, Kind: future})
	s := l.Summary()
	if s[future] != 1 {
		t.Fatalf("future kind dropped from Summary: %v", s)
	}
	fs := l.FormatSummary()
	if !strings.Contains(fs, "kind(99)=1") {
		t.Fatalf("future kind missing from FormatSummary: %q", fs)
	}
	// Stable order: known kinds sort before the future one.
	if strings.Index(fs, "begin=1") > strings.Index(fs, "kind(99)=1") {
		t.Fatalf("FormatSummary order unstable: %q", fs)
	}
}

func TestRecord2Detail2(t *testing.T) {
	l := New(4)
	l.Record2(7, 1, EvTune, -1, 0xAAAA, 0xBBBB)
	evs := l.Events()
	if len(evs) != 1 || evs[0].Detail != 0xAAAA || evs[0].Detail2 != 0xBBBB {
		t.Fatalf("Record2 round-trip failed: %+v", evs)
	}
	if !strings.Contains(evs[0].String(), "detail2=0xbbbb") {
		t.Fatalf("String omits detail2: %q", evs[0].String())
	}
	l.Record(8, 1, EvCommit, 0, 0)
	if s := l.Events()[1].String(); strings.Contains(s, "detail2") {
		t.Fatalf("String shows zero detail2: %q", s)
	}
}

// TestWideHWThreadIDs: HW is int16, so hardware thread ids beyond int8's
// range must survive the Record fast path.
func TestWideHWThreadIDs(t *testing.T) {
	l := New(2)
	l.Record(1, 300, EvBegin, 0, 0)
	if hw := l.Events()[0].HW; hw != 300 {
		t.Fatalf("HW = %d, want 300", hw)
	}
}

func TestParseKinds(t *testing.T) {
	m, err := ParseKinds("abort, lock+,tune")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 || !m[EvAbort] || !m[EvLockAcq] || !m[EvTune] {
		t.Fatalf("ParseKinds = %v", m)
	}
	if m, err := ParseKinds(""); err != nil || m != nil {
		t.Fatalf("empty spec: %v, %v", m, err)
	}
	if m, err := ParseKinds(" , "); err != nil || m != nil {
		t.Fatalf("blank spec: %v, %v", m, err)
	}
	if _, err := ParseKinds("abort,bogus"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown kind accepted: %v", err)
	}
}

// TestParseKindsEdges pins down the less obvious contract points:
// duplicates collapse, every known mnemonic round-trips (including doom,
// added with the attribution subsystem), names are case-sensitive, inner
// whitespace survives trimming, and the error names the known kinds.
func TestParseKindsEdges(t *testing.T) {
	if m, err := ParseKinds("abort,abort, abort "); err != nil || len(m) != 1 || !m[EvAbort] {
		t.Fatalf("duplicates must collapse: %v, %v", m, err)
	}
	for _, k := range knownKinds {
		m, err := ParseKinds(k.String())
		if err != nil || len(m) != 1 || !m[k] {
			t.Fatalf("mnemonic %q does not round-trip: %v, %v", k.String(), m, err)
		}
	}
	if m, err := ParseKinds("doom"); err != nil || !m[EvDoom] {
		t.Fatalf("doom not accepted: %v, %v", m, err)
	}
	if _, err := ParseKinds("Abort"); err == nil {
		t.Fatal("mnemonics must be case-sensitive")
	}
	if m, err := ParseKinds("\tabort ,\n lock+"); err != nil || len(m) != 2 || !m[EvAbort] || !m[EvLockAcq] {
		t.Fatalf("whitespace trimming: %v, %v", m, err)
	}
	if _, err := ParseKinds("nope"); err == nil || !strings.Contains(err.Error(), "doom") {
		t.Fatalf("error must list known kinds: %v", err)
	}
	if m, err := ParseKinds(",,,"); err != nil || m != nil {
		t.Fatalf("commas-only spec must be nil: %v, %v", m, err)
	}
}
