package mem

// Buffers holds a Memory's large backing arrays — the word store and the
// sharded conflict-registry table — between replica lifetimes. The
// harness's grid executor keeps one Buffers per worker: every cell the
// worker runs builds its simulator replica on the worker's own arrays
// (NewRecycled) and returns them on completion (Release), so a sweep of
// hundreds of cells allocates the multi-megabyte state once per worker
// instead of once per cell, and two workers never share a byte of
// mutable engine state.
//
// The zero value is ready to use: the first NewRecycled allocates.
type Buffers struct {
	words []uint64
	lines []lineState
}

// NewRecycled creates a memory like NewSharded, drawing the backing
// arrays from buf when their capacity suffices (resetting them in place)
// and allocating fresh ones otherwise. buf's arrays are owned by the
// returned Memory until Release hands them back; a nil buf is exactly
// NewSharded. A recycled Memory is indistinguishable from a fresh one:
// all words zero, all registry entries empty, allocation watermark at
// word 1.
func NewRecycled(words, shards int, buf *Buffers) *Memory {
	if words < LineWords {
		words = LineWords
	}
	nLines := (words + LineWords - 1) / LineWords
	m := &Memory{nLines: nLines, brk: 1} // reserve word 0 as Nil
	m.setShards(shards)
	nWords := nLines * LineWords
	nSlots := int(m.stride) << m.shardShift
	if buf != nil && cap(buf.words) >= nWords && cap(buf.lines) >= nSlots {
		m.words = buf.words[:nWords]
		clear(m.words)
		m.lines = buf.lines[:nSlots]
		buf.words, buf.lines = nil, nil
	} else {
		m.words = make([]uint64, nWords)
		m.lines = make([]lineState, nSlots)
	}
	for i := range m.lines {
		m.lines[i] = lineState{writer: -1}
	}
	return m
}

// Release returns the memory's backing arrays to buf for the next
// replica built on it. The Memory must not be used afterwards.
func (m *Memory) Release(buf *Buffers) {
	if cap(m.words) > cap(buf.words) {
		buf.words = m.words
	}
	if cap(m.lines) > cap(buf.lines) {
		buf.lines = m.lines
	}
	m.words, m.lines = nil, nil
}
