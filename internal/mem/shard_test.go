package mem

import (
	"fmt"
	"testing"
)

// TestShardedGeometry: the stride-interleaved layout must give every
// line a distinct slot whatever the shard count — sharding is a pure
// permutation of the registry, never an aliasing of two lines.
func TestShardedGeometry(t *testing.T) {
	const words = 1 << 12
	for _, shards := range []int{1, 2, 4, 8, 16, 64} {
		m := NewSharded(words, shards)
		if got := m.Shards(); got != shards {
			t.Fatalf("shards=%d: Shards() = %d", shards, got)
		}
		seen := make(map[uint32]Line, m.nLines)
		for ln := Line(0); ln < Line(m.nLines); ln++ {
			s := m.slot(ln)
			if prev, dup := seen[s]; dup {
				t.Fatalf("shards=%d: lines %d and %d share slot %d", shards, prev, ln, s)
			}
			seen[s] = ln
		}
	}
}

// shardTrace drives a fixed pseudo-random register/unregister sequence
// against m from 128 hardware threads and returns a digest of every
// return value, every doom notification, and the final per-line
// registry state.
func shardTrace(t *testing.T, m *Memory, d *recordingDoomer) string {
	t.Helper()
	const hwThreads = 128
	base := m.AllocLines(64)
	rng := uint64(0x9e3779b97f4a7c15)
	next := func(mod uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % mod
	}
	var out []byte
	held := make([][]Line, hwThreads)
	for step := 0; step < 4096; step++ {
		hw := int(next(hwThreads))
		a := base + Addr(next(64))*LineWords + Addr(next(LineWords))
		switch next(5) {
		case 0, 1:
			grew, own := m.RegisterRead(hw, a)
			if grew {
				held[hw] = append(held[hw], LineOf(a))
			}
			out = fmt.Appendf(out, "r%d:%v%v;", step, grew, own)
		case 2, 3:
			grew, wasReader := m.RegisterWrite(hw, a)
			if grew {
				held[hw] = append(held[hw], LineOf(a))
			}
			out = fmt.Appendf(out, "w%d:%v%v;", step, grew, wasReader)
		case 4:
			m.Unregister(hw, held[hw])
			held[hw] = held[hw][:0]
			out = fmt.Appendf(out, "u%d;", step)
		}
	}
	for ln := LineOf(base); ln < LineOf(base)+64; ln++ {
		out = fmt.Appendf(out, "L%d:%x/%d;", ln, m.LineReaders(ln).W, m.LineWriter(ln))
	}
	out = fmt.Appendf(out, "dooms:%x/%v/%v", d.doomedReaders, d.doomedWriters, d.lines)
	return string(out)
}

// TestShardedRegistryEquivalence: the shard count is pure data layout.
// An identical access sequence must produce identical return values,
// doom notifications and final registry state at every count — the
// property that lets the engine pick a shard count by machine shape
// without perturbing schedules.
func TestShardedRegistryEquivalence(t *testing.T) {
	ref := ""
	for _, shards := range []int{1, 2, 8, 64} {
		m := NewSharded(1<<12, shards)
		d := &recordingDoomer{}
		m.SetDoomer(d)
		got := shardTrace(t, m, d)
		if shards == 1 {
			ref = got
			continue
		}
		if got != ref {
			t.Fatalf("shards=%d: trace diverges from unsharded registry", shards)
		}
	}
}

// TestShardedRegistryZeroAllocs: registry accesses are the innermost
// loop of every transactional load/store and must stay off the heap at
// wide-machine width — 128 threads on a sharded registry, where the
// reader sets span all four topology.Set words.
func TestShardedRegistryZeroAllocs(t *testing.T) {
	m := NewSharded(1<<12, 8)
	d := &recordingDoomer{}
	m.SetDoomer(d)
	base := m.AllocLines(4)
	lines := []Line{LineOf(base), LineOf(base) + 1}
	if avg := testing.AllocsPerRun(200, func() {
		for hw := 0; hw < 128; hw++ {
			m.RegisterRead(hw, base+Addr(hw%64))
		}
		m.RegisterWrite(3, base+LineWords)
		for hw := 0; hw < 128; hw++ {
			m.Unregister(hw, lines)
		}
	}); avg != 0 {
		t.Fatalf("sharded registry ops allocate %.1f allocs/op, want 0", avg)
	}
}
