package mem

import (
	"testing"
	"testing/quick"

	"seer/internal/topology"
)

// recordingDoomer records doom notifications for assertions.
type recordingDoomer struct {
	doomedReaders []uint64
	doomedWriters []int
	lines         []Line
}

func (d *recordingDoomer) DoomReaders(readers topology.Set, self int, ln Line) {
	if self >= 0 {
		readers.Remove(self)
	}
	d.doomedReaders = append(d.doomedReaders, readers.W[0])
	d.lines = append(d.lines, ln)
}

func (d *recordingDoomer) DoomWriter(writer, self int, ln Line) {
	if writer != self {
		d.doomedWriters = append(d.doomedWriters, writer)
		d.lines = append(d.lines, ln)
	}
}

func newTestMem(words int) (*Memory, *recordingDoomer) {
	m := New(words)
	d := &recordingDoomer{}
	m.SetDoomer(d)
	return m, d
}

func TestAllocBasics(t *testing.T) {
	m, _ := newTestMem(1024)
	a := m.Alloc(10)
	if a == Nil {
		t.Fatalf("Alloc returned Nil (word 0 must stay reserved)")
	}
	b := m.Alloc(1)
	if b != a+10 {
		t.Fatalf("bump allocation not contiguous: %d then %d", a, b)
	}
	c := m.AllocLines(2)
	if c%LineWords != 0 {
		t.Fatalf("AllocLines not aligned: %d", c)
	}
	d := m.AllocAligned(3)
	if d%LineWords != 0 {
		t.Fatalf("AllocAligned not aligned: %d", d)
	}
	if m.Free() <= 0 {
		t.Fatalf("Free() = %d", m.Free())
	}
}

func TestAllocExhaustion(t *testing.T) {
	m, _ := newTestMem(64)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on exhaustion")
		}
	}()
	m.Alloc(1000)
}

func TestAllocRejectsNonPositive(t *testing.T) {
	m, _ := newTestMem(64)
	for _, f := range []func(){
		func() { m.Alloc(0) },
		func() { m.AllocLines(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPeekPoke(t *testing.T) {
	m, _ := newTestMem(128)
	a := m.Alloc(4)
	m.Poke(a+2, 0xDEADBEEF)
	if got := m.Peek(a + 2); got != 0xDEADBEEF {
		t.Fatalf("Peek = %#x", got)
	}
	if got := m.Peek(a); got != 0 {
		t.Fatalf("fresh word = %#x, want 0", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m, _ := newTestMem(64)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on out-of-range access")
		}
	}()
	m.Peek(Addr(1 << 20))
}

func TestLineOf(t *testing.T) {
	if LineOf(0) != 0 || LineOf(7) != 0 || LineOf(8) != 1 || LineOf(17) != 2 {
		t.Fatalf("LineOf mapping wrong: %d %d %d %d", LineOf(0), LineOf(7), LineOf(8), LineOf(17))
	}
}

func TestRegisterReadTracksReaders(t *testing.T) {
	m, d := newTestMem(256)
	a := m.AllocLines(1)
	if grew, _ := m.RegisterRead(3, a); !grew {
		t.Fatalf("first RegisterRead should grow the read set")
	}
	if grew, _ := m.RegisterRead(3, a); grew {
		t.Fatalf("repeated RegisterRead of same line should not grow")
	}
	if grew, _ := m.RegisterRead(5, a+1); !grew { // same line, different word, other thread
		t.Fatalf("second thread should register")
	}
	ln := LineOf(a)
	if m.LineReaders(ln).W[0] != (1<<3 | 1<<5) {
		t.Fatalf("readers = %#x", m.LineReaders(ln).W)
	}
	if len(d.doomedReaders) != 0 || len(d.doomedWriters) != 0 {
		t.Fatalf("read-read sharing must not doom anyone")
	}
}

func TestRegisterWriteDoomsReadersAndWriter(t *testing.T) {
	m, d := newTestMem(256)
	a := m.AllocLines(1)
	m.RegisterRead(1, a)
	m.RegisterRead(2, a)
	if grew, _ := m.RegisterWrite(4, a); !grew {
		t.Fatalf("RegisterWrite should grow the write set")
	}
	if len(d.doomedReaders) != 1 || d.doomedReaders[0] != (1<<1|1<<2) {
		t.Fatalf("doomedReaders = %v, want [0b110]", d.doomedReaders)
	}
	if m.LineWriter(LineOf(a)) != 4 {
		t.Fatalf("writer = %d, want 4", m.LineWriter(LineOf(a)))
	}
	// A second writer dooms the first (requester wins).
	m.RegisterWrite(6, a)
	if len(d.doomedWriters) != 1 || d.doomedWriters[0] != 4 {
		t.Fatalf("doomedWriters = %v, want [4]", d.doomedWriters)
	}
	if m.LineWriter(LineOf(a)) != 6 {
		t.Fatalf("writer = %d, want 6", m.LineWriter(LineOf(a)))
	}
}

func TestRegisterReadDoomsWriter(t *testing.T) {
	m, d := newTestMem(256)
	a := m.AllocLines(1)
	m.RegisterWrite(2, a)
	m.RegisterRead(7, a)
	if len(d.doomedWriters) != 1 || d.doomedWriters[0] != 2 {
		t.Fatalf("doomedWriters = %v, want [2]", d.doomedWriters)
	}
}

func TestOwnWriteThenReadNoDoom(t *testing.T) {
	m, d := newTestMem(256)
	a := m.AllocLines(1)
	m.RegisterWrite(3, a)
	m.RegisterRead(3, a)
	m.RegisterWrite(3, a+1)
	if len(d.doomedWriters) != 0 && len(d.doomedReaders) != 0 {
		t.Fatalf("own accesses doomed self: %v %v", d.doomedWriters, d.doomedReaders)
	}
}

// TestRegisterReturnFlags: the grew/ownWrite/wasReader returns are what
// let the HTM keep exact footprint counters without membership maps.
func TestRegisterReturnFlags(t *testing.T) {
	m, _ := newTestMem(256)
	a := m.AllocLines(1)
	// Write first, then read the same line: the read grows the reader
	// bitmask but reports ownWrite, so it must not count against the
	// read budget.
	if grew, wasReader := m.RegisterWrite(3, a); !grew || wasReader {
		t.Fatalf("fresh write: grew=%v wasReader=%v, want true,false", grew, wasReader)
	}
	if grew, ownWrite := m.RegisterRead(3, a); !grew || !ownWrite {
		t.Fatalf("read of own written line: grew=%v ownWrite=%v, want true,true", grew, ownWrite)
	}
	// Read first, then write on a fresh line: the write reports
	// wasReader, so the line must not be recorded twice.
	b := m.AllocLines(1)
	if grew, ownWrite := m.RegisterRead(4, b); !grew || ownWrite {
		t.Fatalf("fresh read: grew=%v ownWrite=%v, want true,false", grew, ownWrite)
	}
	if grew, wasReader := m.RegisterWrite(4, b); !grew || !wasReader {
		t.Fatalf("write of own read line: grew=%v wasReader=%v, want true,true", grew, wasReader)
	}
	// Repeated write: the write set does not grow again.
	if grew, wasReader := m.RegisterWrite(4, b); grew || !wasReader {
		t.Fatalf("repeated write: grew=%v wasReader=%v, want false,true", grew, wasReader)
	}
}

func TestUnregisterClearsState(t *testing.T) {
	m, _ := newTestMem(256)
	a := m.AllocLines(1)
	b := m.AllocLines(1)
	m.RegisterRead(1, a)
	m.RegisterWrite(1, b)
	m.Unregister(1, []Line{LineOf(a), LineOf(b)})
	if !m.LineReaders(LineOf(a)).Empty() {
		t.Fatalf("readers not cleared")
	}
	if m.LineWriter(LineOf(b)) != -1 {
		t.Fatalf("writer not cleared")
	}
	// Unregister must not clear someone else's writership.
	m.RegisterWrite(2, b)
	m.Unregister(1, []Line{LineOf(b)})
	if m.LineWriter(LineOf(b)) != 2 {
		t.Fatalf("unregister clobbered another thread's writership")
	}
}

func TestDirectStoreStrongIsolation(t *testing.T) {
	m, d := newTestMem(256)
	a := m.AllocLines(1)
	m.RegisterRead(1, a)
	m.RegisterWrite(2, a+1) // same line
	m.DirectStore(5, a, 42)
	if m.Peek(a) != 42 {
		t.Fatalf("direct store did not land")
	}
	if len(d.doomedReaders) == 0 {
		t.Fatalf("direct store must doom transactional readers")
	}
	if len(d.doomedWriters) == 0 {
		t.Fatalf("direct store must doom the transactional writer")
	}
}

func TestDirectLoadDoomsOnlyWriter(t *testing.T) {
	m, d := newTestMem(256)
	a := m.AllocLines(1)
	m.RegisterRead(1, a)
	m.RegisterWrite(2, a) // dooms reader 1 as part of setup
	d.doomedReaders = nil
	d.doomedWriters = nil
	_ = m.DirectLoad(5, a)
	if len(d.doomedWriters) == 0 {
		t.Fatalf("direct load must doom the transactional writer")
	}
	if len(d.doomedReaders) != 0 {
		t.Fatalf("direct load must not doom readers")
	}
}

func TestDirectAccessorCosts(t *testing.T) {
	m, _ := newTestMem(256)
	a := m.AllocLines(1)
	var clock uint64
	d := NewDirect(m, 0, func(c uint64) { clock += c }, 2, 3, 1)
	d.Store(a, 9)
	if clock != 3 {
		t.Fatalf("store cost = %d, want 3", clock)
	}
	if d.Load(a) != 9 {
		t.Fatalf("load returned wrong value")
	}
	if clock != 5 {
		t.Fatalf("load cost = %d, want 2 (total 5)", clock-3)
	}
	d.Work(4)
	if clock != 9 {
		t.Fatalf("work cost = %d, want 4", clock-5)
	}
	if d.ThreadID() != 0 {
		t.Fatalf("ThreadID = %d", d.ThreadID())
	}
}

// TestQuickRegistryConsistency drives the registry with random operations
// and checks invariants: a line has at most one writer; unregistered
// threads leave no residue.
func TestQuickRegistryConsistency(t *testing.T) {
	f := func(ops []uint16) bool {
		m, _ := newTestMem(1024)
		base := m.AllocLines(8)
		registered := map[int]map[Line]bool{}
		for _, op := range ops {
			hw := int(op % 8)
			line := Line(int(LineOf(base)) + int(op/8)%8)
			a := Addr(line) * LineWords
			if registered[hw] == nil {
				registered[hw] = map[Line]bool{}
			}
			switch (op / 64) % 3 {
			case 0:
				m.RegisterRead(hw, a)
				registered[hw][line] = true
			case 1:
				m.RegisterWrite(hw, a)
				registered[hw][line] = true
			case 2:
				var lines []Line
				for ln := range registered[hw] {
					lines = append(lines, ln)
				}
				m.Unregister(hw, lines)
				registered[hw] = map[Line]bool{}
			}
		}
		// Invariant: each line's writer, if set, is within range.
		for ln := LineOf(base); ln < LineOf(base)+8; ln++ {
			w := m.LineWriter(ln)
			if w < -1 || w > 7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
