package mem

import "testing"

// TestDirectAccessZeroAllocs is the regression guard for the
// non-transactional fast path: Direct loads, stores and work units must
// never touch the heap (DirectStore dooms via the registry without
// recording anything per access).
func TestDirectAccessZeroAllocs(t *testing.T) {
	m, _ := newTestMem(1 << 10)
	a := m.AllocLines(2)
	var elapsed uint64
	d := NewDirect(m, 0, func(cost uint64) { elapsed += cost }, 2, 3, 1)

	allocs := testing.AllocsPerRun(100, func() {
		d.Store(a, d.Load(a)+1)
		d.Store(a+LineWords, 7)
		d.Work(4)
	})
	if allocs != 0 {
		t.Errorf("direct access allocates %.1f times per run, want 0", allocs)
	}
	if elapsed == 0 {
		t.Fatalf("tick function never invoked")
	}
}
