// Package mem implements the simulated word-addressable shared memory of
// the virtual machine, including the per-cache-line registry used by the
// simulated HTM (internal/htm) for conflict detection.
//
// Memory is an array of 64-bit words grouped into 64-byte cache lines
// (8 words). Each line tracks which hardware threads currently hold it in
// a transactional read set (a bitmask) and which single thread, if any,
// holds it in a transactional write set. The HTM consults and updates this
// registry on every transactional access; non-transactional (direct)
// accesses also consult it to provide the strong isolation of real
// hardware TM: a plain store dooms every transaction that has the line in
// its read or write set, and a plain load dooms a transactional writer.
//
// All methods are called only between engine scheduling points, so the
// package needs no synchronization (see internal/machine).
package mem

import (
	"fmt"

	"seer/internal/topology"
)

// LineWords is the number of 64-bit words per cache line (64-byte lines).
const LineWords = 8

// Addr is a word address in simulated memory.
type Addr uint32

// Nil is the null address. Word 0 is reserved so data structures can use
// Nil as a null pointer.
const Nil Addr = 0

// Line is a cache-line index.
type Line uint32

// Access is the uniform accessor through which workload code touches
// simulated memory. It is implemented both by hardware transactions
// (htm.Tx) and by the non-transactional Direct accessor, so a transaction
// body runs unmodified on the HTM path and on the single-global-lock
// fall-back path.
type Access interface {
	Load(Addr) uint64
	Store(Addr, uint64)
	// Work simulates n units of in-critical-section computation.
	Work(n uint64)
	// ThreadID identifies the hardware thread performing the accesses;
	// sharded allocators use it to avoid cross-thread hotspots.
	ThreadID() int
}

// LineOf returns the cache line containing a word address.
func LineOf(a Addr) Line { return Line(a / LineWords) }

// Doomer is implemented by the HTM unit: the memory calls it to abort
// transactions whose read/write sets are invalidated by a conflicting
// access. ln is the contended cache line — the ground truth the
// attribution subsystem (internal/txtrace) records, which real hardware
// never reveals.
type Doomer interface {
	// DoomReaders dooms every transaction in the readers set except the
	// one running on hardware thread self (pass self = -1 to doom all).
	// The set is passed by value on purpose: dooming a reader clears its
	// registry bits, so the callee must iterate a snapshot.
	DoomReaders(readers topology.Set, self int, ln Line)
	// DoomWriter dooms the transaction running on hardware thread
	// writer unless writer == self.
	DoomWriter(writer int, self int, ln Line)
}

// AccessCostFunc returns extra virtual cycles for hardware thread hw
// touching cache line ln — the hook the topology layer uses to charge
// cross-socket (NUMA) accesses more than local ones. It must be pure:
// the same (hw, ln) always costs the same, or determinism breaks.
type AccessCostFunc func(hw int, ln Line) uint64

// lineState is the conflict registry entry for one cache line.
type lineState struct {
	readers topology.Set // hardware threads with the line in a read set
	writer  int16        // hardware thread with the line in a write set, -1 if none
}

// shardAlign is the shard-boundary alignment of the line-state table, in
// lineState entries. Eight 40-byte entries are 320 bytes — a whole number
// of 64-byte cache lines — so rounding each shard's stride up to a
// multiple of shardAlign keeps every shard starting on its own cache
// line: two shards never share a line of the registry itself.
const shardAlign = 8

// MaxRegistryShards caps the shard count of the conflict registry.
const MaxRegistryShards = 64

// Memory is the simulated shared memory.
//
// The conflict registry is a sharded table: cache line ln's state lives
// in shard ln & shardMask (a power-of-two hash on the low line bits) at
// slot ln >> shardShift. The shards are carved out of one flat backing
// array with a cache-line-aligned stride, so the mapping costs one
// multiply-add per access, stays allocation-free, and — because adjacent
// simulated lines land in different shards — the registry entries of a
// hot contiguous region stop sharing hardware cache lines with each
// other. With one shard (the default for narrow machines) the mapping
// degenerates to the identity and the table is exactly the old flat
// layout.
type Memory struct {
	words      []uint64
	lines      []lineState // sharded backing; index via slot()
	shardMask  uint32      // nShards - 1
	shardShift uint32      // log2(nShards)
	stride     uint32      // slots per shard (shardAlign-aligned)
	nLines     int
	brk        Addr // bump-allocation watermark
	doomer     Doomer
	access     AccessCostFunc // nil = uniform memory

	// specBarrier, when set, is invoked before every Peek. Peek is the one
	// shared read with no scheduling point of its own (spinlock.LockedFast
	// funnels through it), so under speculative quanta it must close the
	// running thread's quantum first: a speculated Peek would otherwise
	// read lock words before earlier-virtual-time threads have run. The
	// hook is nil unless speculation is enabled (see machine.Engine
	// SpecBarrier), and a no-op when no speculating thread is running.
	specBarrier func()
}

// slot maps a cache line to its index in the sharded line-state table.
func (m *Memory) slot(ln Line) uint32 {
	return (uint32(ln)&m.shardMask)*m.stride + uint32(ln)>>m.shardShift
}

// line returns the conflict-registry entry of a cache line.
func (m *Memory) line(ln Line) *lineState {
	return &m.lines[m.slot(ln)]
}

// New creates a memory of the given size in words, rounded up to a whole
// number of cache lines, with a single-shard (flat) conflict registry.
// Word 0 is reserved (Nil).
func New(words int) *Memory {
	return NewSharded(words, 1)
}

// NewSharded creates a memory whose conflict registry is split into the
// given number of cache-line-padded shards (rounded up to a power of
// two, clamped to [1, MaxRegistryShards]). The shard count is pure data
// layout: every registry operation behaves identically — and every
// schedule is bit-for-bit identical — whatever the count (the registry
// is consulted between engine scheduling points only, so the mapping is
// invisible to simulated programs).
func NewSharded(words, shards int) *Memory {
	return NewRecycled(words, shards, nil)
}

// setShards fixes the shard geometry for nLines. shards is rounded up to
// a power of two and clamped to [1, MaxRegistryShards].
func (m *Memory) setShards(shards int) {
	if shards < 1 {
		shards = 1
	}
	if shards > MaxRegistryShards {
		shards = MaxRegistryShards
	}
	shift := uint32(0)
	for 1<<shift < shards {
		shift++
	}
	n := uint32(1) << shift
	m.shardMask = n - 1
	m.shardShift = shift
	// Slots per shard: enough for the highest slot index any line maps
	// to, rounded up so each shard starts on its own cache line.
	stride := (uint32(m.nLines-1) >> shift) + 1
	m.stride = (stride + shardAlign - 1) &^ (shardAlign - 1)
}

// Shards returns the conflict registry's shard count.
func (m *Memory) Shards() int { return int(m.shardMask) + 1 }

// SetDoomer installs the HTM unit that receives conflict notifications.
// It must be called before any transactional line registration.
func (m *Memory) SetDoomer(d Doomer) { m.doomer = d }

// SetAccessCost installs (or clears, with nil) the per-access extra-cost
// hook. Accessors consult it on every load and store, so with the hook
// unset the overhead is one nil check.
func (m *Memory) SetAccessCost(fn AccessCostFunc) { m.access = fn }

// AccessCost returns the extra virtual cycles the installed hook charges
// hardware thread hw for touching the line of address a (0 when no hook
// is installed).
func (m *Memory) AccessCost(hw int, a Addr) uint64 {
	if m.access == nil {
		return 0
	}
	return m.access(hw, LineOf(a))
}

// Words returns the memory size in words.
func (m *Memory) Words() int { return len(m.words) }

// Alloc bump-allocates n words and returns the address of the first.
// It panics when the memory is exhausted: simulated workloads size their
// memory up front.
func (m *Memory) Alloc(n int) Addr {
	if n <= 0 {
		panic("mem: Alloc with non-positive size")
	}
	a := m.brk
	if int(a)+n > len(m.words) {
		panic(fmt.Sprintf("mem: out of simulated memory (%d words requested, %d free)",
			n, len(m.words)-int(a)))
	}
	m.brk += Addr(n)
	return a
}

// AllocLines allocates n whole cache lines, aligned to a line boundary.
// Data structures use it to avoid unintended false sharing.
func (m *Memory) AllocLines(n int) Addr {
	if n <= 0 {
		panic("mem: AllocLines with non-positive size")
	}
	// Align brk up to a line boundary.
	rem := m.brk % LineWords
	if rem != 0 {
		m.brk += LineWords - rem
	}
	return m.Alloc(n * LineWords)
}

// AllocAligned allocates n words starting at a line boundary.
func (m *Memory) AllocAligned(n int) Addr {
	lines := (n + LineWords - 1) / LineWords
	return m.AllocLines(lines)
}

// Free returns the number of unallocated words remaining.
func (m *Memory) Free() int { return len(m.words) - int(m.brk) }

// checkAddr panics on out-of-range addresses: simulated programs have no
// MMU, so this is the closest analogue of a segmentation fault.
func (m *Memory) checkAddr(a Addr) {
	if int(a) >= len(m.words) {
		panic(fmt.Sprintf("mem: address %d out of range (%d words)", a, len(m.words)))
	}
}

// --- Raw access (simulator-internal; no coherence side effects) ---

// SetSpecBarrier installs the speculation barrier consulted by Peek (see
// the field comment). Pass nil to remove it.
func (m *Memory) SetSpecBarrier(fn func()) { m.specBarrier = fn }

// Peek reads a word without any conflict-registry side effects. It is for
// simulator components and tests, not for simulated programs — and for
// tickless polling reads like spinlock.LockedFast, which is why it carries
// the speculation barrier.
func (m *Memory) Peek(a Addr) uint64 {
	if m.specBarrier != nil {
		m.specBarrier()
	}
	m.checkAddr(a)
	return m.words[a]
}

// Poke writes a word without any conflict-registry side effects.
func (m *Memory) Poke(a Addr, v uint64) {
	m.checkAddr(a)
	m.words[a] = v
}

// --- Direct (non-transactional) access with strong isolation ---

// DirectLoad performs a non-transactional load. A transactional writer of
// the line is doomed (its write buffer was never globally visible, so the
// value returned is the committed one).
func (m *Memory) DirectLoad(self int, a Addr) uint64 {
	m.checkAddr(a)
	ln := LineOf(a)
	ls := m.line(ln)
	if ls.writer >= 0 && int(ls.writer) != self {
		m.doomer.DoomWriter(int(ls.writer), self, ln)
	}
	return m.words[a]
}

// DirectStore performs a non-transactional store, dooming every
// transaction holding the line in its read or write set (strong
// isolation, as in real best-effort HTM).
func (m *Memory) DirectStore(self int, a Addr, v uint64) {
	m.checkAddr(a)
	ln := LineOf(a)
	ls := m.line(ln)
	if !ls.readers.Empty() {
		m.doomer.DoomReaders(ls.readers, self, ln)
	}
	if ls.writer >= 0 && int(ls.writer) != self {
		m.doomer.DoomWriter(int(ls.writer), self, ln)
	}
	m.words[a] = v
}

// --- Transactional line registry (called by internal/htm) ---

// RegisterRead adds hardware thread hw as a reader of the line holding a,
// dooming a conflicting transactional writer (requester wins). It returns
// grew = true if the line was not yet in hw's read set (i.e. the read set
// got bigger), and ownWrite = true if hw itself holds the line in its
// write set — such lines are already accounted for by the write-set budget
// and must not count against the read budget a second time.
//
// The two booleans exist so the HTM can maintain exact read/write line
// counters without any per-transaction membership map: the registry entry
// itself is the authoritative set representation.
func (m *Memory) RegisterRead(hw int, a Addr) (grew, ownWrite bool) {
	m.checkAddr(a)
	ln := LineOf(a)
	ls := m.line(ln)
	if ls.writer >= 0 && int(ls.writer) != hw {
		m.doomer.DoomWriter(int(ls.writer), hw, ln)
	}
	ownWrite = int(ls.writer) == hw
	if ls.readers.Has(hw) {
		return false, ownWrite
	}
	ls.readers.Add(hw)
	return true, ownWrite
}

// RegisterWrite makes hardware thread hw the transactional writer of the
// line holding a, dooming conflicting readers and a conflicting writer
// (requester wins). It returns grew = true if the line was not yet in hw's
// write set, and wasReader = true if hw already holds the line in its read
// set — such lines are already recorded in the transaction's line list and
// must not be recorded again.
func (m *Memory) RegisterWrite(hw int, a Addr) (grew, wasReader bool) {
	m.checkAddr(a)
	ln := LineOf(a)
	ls := m.line(ln)
	otherReaders := ls.readers // value copy; safe to pass while doom mutates ls
	otherReaders.Remove(hw)
	if !otherReaders.Empty() {
		m.doomer.DoomReaders(otherReaders, hw, ln)
	}
	if ls.writer >= 0 && int(ls.writer) != hw {
		m.doomer.DoomWriter(int(ls.writer), hw, ln)
	}
	wasReader = ls.readers.Has(hw)
	if int(ls.writer) == hw {
		return false, wasReader
	}
	ls.writer = int16(hw)
	return true, wasReader
}

// Unregister removes hardware thread hw from the registry entries of the
// given lines (both reader bit and writership). Called by the HTM when a
// transaction commits or aborts.
func (m *Memory) Unregister(hw int, lines []Line) {
	for _, ln := range lines {
		ls := m.line(ln)
		ls.readers.Remove(hw)
		if int(ls.writer) == hw {
			ls.writer = -1
		}
	}
}

// LineReaders returns the reader set of a line (for tests and invariant
// checks).
func (m *Memory) LineReaders(ln Line) topology.Set { return m.line(ln).readers }

// LineWriter returns the writer of a line, or -1 (for tests and invariant
// checks).
func (m *Memory) LineWriter(ln Line) int { return int(m.line(ln).writer) }

// Direct is a non-transactional accessor bound to one hardware thread,
// implementing the same Access interface as a hardware transaction so that
// workload code can run on either path (HTM or single-global-lock
// fall-back).
type Direct struct {
	m        *Memory
	hw       int
	tick     func(cost uint64)
	workTick func(cost uint64)
	cost     struct{ load, store, work uint64 }
}

// NewDirect creates a direct accessor for hardware thread hw. tick is the
// thread's virtual-time advance function; loadCost/storeCost come from the
// machine's cost model. Work ticks use the same function until
// SetWorkTick installs a dedicated one.
func NewDirect(m *Memory, hw int, tick func(uint64), loadCost, storeCost, workCost uint64) *Direct {
	d := &Direct{m: m, hw: hw, tick: tick, workTick: tick}
	d.cost.load = loadCost
	d.cost.store = storeCost
	d.cost.work = workCost
	return d
}

// SetWorkTick installs a dedicated virtual-time advance for Work ticks.
// Work touches no shared simulator state, so its ticks are pure in the
// engine's sense: the policy layer points this at machine.Ctx.TickPure,
// making non-transactional compute stretches eligible for speculative
// multi-tick quanta while loads and stores keep the plain (impure) tick.
func (d *Direct) SetWorkTick(fn func(uint64)) { d.workTick = fn }

// Load reads a word non-transactionally. Cross-socket lines may carry
// an extra access cost (see SetAccessCost).
func (d *Direct) Load(a Addr) uint64 {
	d.tick(d.cost.load + d.m.AccessCost(d.hw, a))
	return d.m.DirectLoad(d.hw, a)
}

// Store writes a word non-transactionally.
func (d *Direct) Store(a Addr, v uint64) {
	d.tick(d.cost.store + d.m.AccessCost(d.hw, a))
	d.m.DirectStore(d.hw, a, v)
}

// Work simulates n units of computation on the owning thread.
func (d *Direct) Work(n uint64) {
	if n > 0 {
		d.workTick(n * d.cost.work)
	}
}

// ThreadID returns the owning hardware thread.
func (d *Direct) ThreadID() int { return d.hw }

// Compile-time check: Direct satisfies Access.
var _ Access = (*Direct)(nil)
