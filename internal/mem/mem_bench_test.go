package mem

import "testing"

// BenchmarkDirectAccess measures the non-transactional load/store path —
// the fall-back mode's inner loop — including the strong-isolation
// registry checks.
func BenchmarkDirectAccess(b *testing.B) {
	m, _ := newTestMem(1 << 12)
	a := m.AllocLines(1)
	var elapsed uint64
	d := NewDirect(m, 0, func(cost uint64) { elapsed += cost }, 2, 3, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Store(a, d.Load(a)+1)
	}
	_ = elapsed
}

// BenchmarkRegistry measures the transactional conflict-registry
// operations that every htm.Tx access performs.
func BenchmarkRegistry(b *testing.B) {
	m, _ := newTestMem(1 << 12)
	a := m.AllocLines(1)
	lines := []Line{LineOf(a)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RegisterRead(1, a)
		m.RegisterWrite(1, a)
		m.Unregister(1, lines)
	}
}
