// Package adversary synthesizes worst-case conflict graphs for stressing
// contention managers: rings, stars, bipartite hot-spots, cliques, and
// phase-shifting mixes that flip the conflict graph mid-run to defeat
// learned schemes. Each graph instantiates as a stamp.Workload whose
// realized conflict structure (observable through the txtrace ground
// truth) matches the declared edges exactly: atomic block b writes one
// shared per-block line (so every block self-conflicts) plus one shared
// line per incident edge of the current phase (so exactly the declared
// pairs cross-conflict).
//
// These are the adversarial instances of the transactional conflict
// problem: the ring is the sparse cycle where pairwise serialization
// chains, the star is the single hot object, the bipartite hot-spot
// models few writers against many readers, the clique is the dense
// worst case, and the phase shift invalidates any learned locking
// scheme halfway through the run.
package adversary

import "fmt"

// Edge is one undirected conflict between two atomic blocks.
type Edge struct{ A, B int }

// Graph declares a conflict structure over atomic blocks. Phases holds
// one edge set per phase; a run divides each worker's operation sequence
// evenly across phases, switching edge sets at the boundaries. A
// single-phase graph has a static conflict structure.
type Graph struct {
	Name   string
	Blocks int
	Phases [][]Edge
}

// Ring returns the n-cycle: block i conflicts with block (i+1) mod n.
func Ring(n int) Graph {
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{A: i, B: (i + 1) % n})
	}
	return normalized(Graph{Name: "ring", Blocks: n, Phases: [][]Edge{edges}})
}

// Star returns the n-block star: block 0 is the hub conflicting with
// every other block; the spokes do not conflict with each other.
func Star(n int) Graph {
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{A: 0, B: i})
	}
	return normalized(Graph{Name: "star", Blocks: n, Phases: [][]Edge{edges}})
}

// Bipartite returns the complete bipartite hot-spot K(l,r): the first l
// blocks (hot writers) each conflict with all of the last r blocks.
func Bipartite(l, r int) Graph {
	edges := make([]Edge, 0, l*r)
	for i := 0; i < l; i++ {
		for j := 0; j < r; j++ {
			edges = append(edges, Edge{A: i, B: l + j})
		}
	}
	return normalized(Graph{Name: "bipartite", Blocks: l + r, Phases: [][]Edge{edges}})
}

// Clique returns the complete graph K(n): every pair of blocks conflicts.
func Clique(n int) Graph {
	edges := make([]Edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, Edge{A: i, B: j})
		}
	}
	return normalized(Graph{Name: "clique", Blocks: n, Phases: [][]Edge{edges}})
}

// PhaseShift returns a two-phase graph over n blocks (n even) whose
// conflict structure flips completely at the midpoint: phase 0 is the
// perfect matching {(0,1), (2,3), ...}, phase 1 the shifted matching
// {(1,2), (3,4), ..., (n-1,0)}. No edge survives the flip, so a locking
// scheme learned in phase 0 serializes exactly the pairs that no longer
// conflict — the adversarial input for history-based schedulers.
func PhaseShift(n int) Graph {
	if n%2 != 0 {
		n++
	}
	p0 := make([]Edge, 0, n/2)
	p1 := make([]Edge, 0, n/2)
	for i := 0; i < n; i += 2 {
		p0 = append(p0, Edge{A: i, B: i + 1})
		p1 = append(p1, Edge{A: i + 1, B: (i + 2) % n})
	}
	return normalized(Graph{Name: "phase", Blocks: n, Phases: [][]Edge{p0, p1}})
}

// maxBlocks bounds normalized graphs; Seer's statistics matrices are
// quadratic in the block count, so adversarial instances stay small.
const maxBlocks = 32

// Normalize folds an arbitrary Graph description into a well-formed one:
// Blocks clamped to [2, maxBlocks], at least one phase, every edge folded
// into range with A < B, self-edges dropped, duplicates within a phase
// merged. The result is deterministic in the input. Fuzzed inputs go
// through here before instantiating a workload.
func (g Graph) Normalize() Graph { return normalized(g) }

func normalized(g Graph) Graph {
	if g.Blocks < 2 {
		g.Blocks = 2
	}
	if g.Blocks > maxBlocks {
		g.Blocks = maxBlocks
	}
	if len(g.Phases) == 0 {
		g.Phases = [][]Edge{nil}
	}
	out := make([][]Edge, len(g.Phases))
	for p, edges := range g.Phases {
		seen := make(map[Edge]bool, len(edges))
		keep := make([]Edge, 0, len(edges))
		for _, e := range edges {
			a := ((e.A % g.Blocks) + g.Blocks) % g.Blocks
			b := ((e.B % g.Blocks) + g.Blocks) % g.Blocks
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			c := Edge{A: a, B: b}
			if seen[c] {
				continue
			}
			seen[c] = true
			keep = append(keep, c)
		}
		out[p] = keep
	}
	g.Phases = out
	return g
}

// wellFormed reports whether the graph satisfies the Normalize
// invariants (used by the fuzz target as the structural oracle).
func (g Graph) wellFormed() error {
	if g.Blocks < 2 || g.Blocks > maxBlocks {
		return fmt.Errorf("blocks %d outside [2, %d]", g.Blocks, maxBlocks)
	}
	if len(g.Phases) == 0 {
		return fmt.Errorf("no phases")
	}
	for p, edges := range g.Phases {
		seen := map[Edge]bool{}
		for _, e := range edges {
			if e.A < 0 || e.B >= g.Blocks || e.A >= e.B {
				return fmt.Errorf("phase %d: edge %v not canonical for %d blocks", p, e, g.Blocks)
			}
			if seen[e] {
				return fmt.Errorf("phase %d: duplicate edge %v", p, e)
			}
			seen[e] = true
		}
	}
	return nil
}

// Edges returns the total edge count across phases.
func (g Graph) Edges() int {
	n := 0
	for _, p := range g.Phases {
		n += len(p)
	}
	return n
}

// Pairs returns the declared conflict-pair set as a Blocks×Blocks
// victim-major boolean matrix: every block self-conflicts (the shared
// per-block line), and each edge of any phase conflicts both ways.
func (g Graph) Pairs() []bool {
	n := g.Blocks
	m := make([]bool, n*n)
	for b := 0; b < n; b++ {
		m[b*n+b] = true
	}
	for _, phase := range g.Phases {
		for _, e := range phase {
			m[e.A*n+e.B] = true
			m[e.B*n+e.A] = true
		}
	}
	return m
}
