package adversary

import (
	"testing"

	"seer"
)

// runGraph builds a system, runs workload w under pol, validates, and
// returns the system for post-run inspection.
func runGraph(t testing.TB, w *Workload, pol seer.PolicyKind, threads int, seed int64, attribution bool) *seer.System {
	t.Helper()
	cfg := seer.DefaultConfig()
	cfg.Threads = threads
	cfg.HWThreads = 8
	cfg.PhysCores = 4
	cfg.Seed = seed
	cfg.Policy = pol
	cfg.NumAtomicBlocks = w.NumAtomicBlocks()
	cfg.MemWords = w.MemWords() + (1 << 14)
	cfg.MaxCycles = 1 << 33
	cfg.AttributionCounters = attribution
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Setup(sys)
	if _, err := sys.Run(w.Workers(threads)); err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(sys); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestGraphShapes pins the edge counts and well-formedness of every
// constructor.
func TestGraphShapes(t *testing.T) {
	cases := []struct {
		g      Graph
		blocks int
		edges  int
		phases int
	}{
		{Ring(8), 8, 8, 1},
		{Star(8), 8, 7, 1},
		{Bipartite(2, 6), 8, 12, 1},
		{Clique(6), 6, 15, 1},
		{PhaseShift(8), 8, 8, 2},
	}
	for _, c := range cases {
		if err := c.g.wellFormed(); err != nil {
			t.Errorf("%s: %v", c.g.Name, err)
		}
		if c.g.Blocks != c.blocks {
			t.Errorf("%s: %d blocks, want %d", c.g.Name, c.g.Blocks, c.blocks)
		}
		if c.g.Edges() != c.edges {
			t.Errorf("%s: %d edges, want %d", c.g.Name, c.g.Edges(), c.edges)
		}
		if len(c.g.Phases) != c.phases {
			t.Errorf("%s: %d phases, want %d", c.g.Name, len(c.g.Phases), c.phases)
		}
	}
}

// TestPhaseShiftDisjoint: the phase flip must invalidate every learned
// edge — no conflict pair survives the midpoint.
func TestPhaseShiftDisjoint(t *testing.T) {
	g := PhaseShift(8)
	in0 := map[Edge]bool{}
	for _, e := range g.Phases[0] {
		in0[e] = true
	}
	for _, e := range g.Phases[1] {
		if in0[e] {
			t.Fatalf("edge %v present in both phases", e)
		}
	}
}

// TestNormalize folds hostile descriptions into canonical form.
func TestNormalize(t *testing.T) {
	g := Graph{
		Name:   "hostile",
		Blocks: 1000,
		Phases: [][]Edge{{
			{A: -3, B: 5}, {A: 5, B: -3}, // duplicate after folding
			{A: 7, B: 7},                 // self edge
			{A: 9, B: 2},                 // reversed
			{A: 131, B: 4},               // out of range
		}},
	}.Normalize()
	if err := g.wellFormed(); err != nil {
		t.Fatal(err)
	}
	if g.Blocks != maxBlocks {
		t.Fatalf("blocks %d, want clamp to %d", g.Blocks, maxBlocks)
	}
	if got := (Graph{}).Normalize(); got.Blocks != 2 || len(got.Phases) != 1 {
		t.Fatalf("empty graph normalized to %+v", got)
	}
}

// TestAdversaryAllGraphsRTM runs every constructor under RTM and checks
// the workload invariants end to end.
func TestAdversaryAllGraphsRTM(t *testing.T) {
	for _, g := range []Graph{Ring(8), Star(8), Bipartite(2, 6), Clique(6), PhaseShift(8)} {
		g := g
		t.Run(g.Name, func(t *testing.T) {
			runGraph(t, New(g, 800), seer.PolicyRTM, 4, 7, false)
		})
	}
}

// TestRealizedConflictsMatchDeclared: under attribution, every realized
// ground-truth conflict pair of a clique run must be a declared pair
// (self pairs and edges), and a contended run must realize at least one
// cross-block conflict.
func TestRealizedConflictsMatchDeclared(t *testing.T) {
	g := Clique(6)
	w := New(g, 1600)
	w.TxWork = 200 // widen the conflict windows
	sys := runGraph(t, w, seer.PolicyRTM, 8, 11, true)
	truth := sys.TxTrace().TruthMatrix()
	declared := g.Pairs()
	n := g.Blocks
	cross := uint64(0)
	for v := 0; v < n; v++ {
		for a := 0; a < n; a++ {
			c := truth[v*n+a]
			if c > 0 && !declared[v*n+a] {
				t.Errorf("undeclared conflict pair (%d<-%d) realized %d times", v, a, c)
			}
			if v != a {
				cross += c
			}
		}
	}
	if cross == 0 {
		t.Fatalf("clique run realized no cross-block conflicts")
	}
}

// FuzzAdversaryGraph: arbitrary shape parameters must normalize to a
// well-formed graph whose workload runs, validates, and — via the
// txtrace ground truth — realizes only declared conflict pairs.
func FuzzAdversaryGraph(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(1), []byte{0, 1, 1, 2, 2, 3})
	f.Add(int64(2), uint8(3), uint8(2), []byte{0xFF, 0x01, 0x80, 0x7F})
	f.Add(int64(3), uint8(0), uint8(0), []byte{})
	f.Fuzz(func(t *testing.T, seed int64, blocks, phases uint8, edgeData []byte) {
		nPhases := 1 + int(phases%2)
		raw := Graph{Name: "fuzz", Blocks: int(int8(blocks)), Phases: make([][]Edge, nPhases)}
		if len(edgeData) > 64 {
			edgeData = edgeData[:64]
		}
		for i := 0; i+1 < len(edgeData); i += 2 {
			e := Edge{A: int(int8(edgeData[i])), B: int(int8(edgeData[i+1]))}
			p := (i / 2) % nPhases
			raw.Phases[p] = append(raw.Phases[p], e)
		}
		g := raw.Normalize()
		if err := g.wellFormed(); err != nil {
			t.Fatalf("normalized graph not well-formed: %v", err)
		}
		w := New(g, 200)
		sys := runGraph(t, w, seer.PolicyRTM, 4, seed, true)
		truth := sys.TxTrace().TruthMatrix()
		declared := g.Pairs()
		n := g.Blocks
		for v := 0; v < n; v++ {
			for a := 0; a < n; a++ {
				if truth[v*n+a] > 0 && !declared[v*n+a] {
					t.Fatalf("undeclared conflict pair (%d<-%d) realized", v, a)
				}
			}
		}
	})
}
