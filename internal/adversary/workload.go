package adversary

import (
	"fmt"

	"seer"
	"seer/internal/stamp"
)

// Workload instantiates a conflict Graph as a runnable benchmark. One
// shared cache line per block realizes the self-conflicts; one shared
// line per (phase, edge) realizes exactly the declared cross-block
// conflicts — an edge present in two phases gets distinct lines, so a
// phase flip retargets the memory traffic completely. Every op picks a
// uniform random block, increments its block line and each incident edge
// line of the current phase, and does TxWork cycles of in-transaction
// computation. A worker's operation sequence is divided evenly across
// the graph's phases.
type Workload struct {
	G Graph
	// TotalOps across all threads.
	TotalOps int
	// TxWork is in-transaction computation per op; GapWork between ops.
	TxWork, GapWork uint64

	blockLines []seer.Addr   // one shared line per block (self conflicts)
	edgeLines  [][]seer.Addr // [phase][edge]: one shared line per edge
	incident   [][][]int     // [phase][block]: incident edge indices
	done       stats         // committed ops
	edgeMass   stats         // committed edge-line increments
}

// New builds a workload for graph g. The graph is normalized first, so
// arbitrary (fuzzed) descriptions are safe.
func New(g Graph, totalOps int) *Workload {
	if totalOps < 1 {
		totalOps = 1
	}
	return &Workload{G: g.Normalize(), TotalOps: totalOps, TxWork: 80, GapWork: 10}
}

func init() {
	reg := func(name string, g Graph) {
		stamp.Register(name, func(scale float64) stamp.Workload {
			ops := int(6400 * scale)
			if ops < 64 {
				ops = 64
			}
			return New(g, ops)
		})
	}
	reg("adv-ring", Ring(8))
	reg("adv-star", Star(8))
	reg("adv-bipartite", Bipartite(2, 6))
	reg("adv-clique", Clique(6))
	reg("adv-phase", PhaseShift(8))
}

// Name implements stamp.Workload.
func (w *Workload) Name() string { return "adv-" + w.G.Name }

// NumAtomicBlocks implements stamp.Workload.
func (w *Workload) NumAtomicBlocks() int { return w.G.Blocks }

// MemWords implements stamp.Workload: block lines, edge lines, and the
// same fixed slack the stamp ports use (covers the two per-thread
// counters).
func (w *Workload) MemWords() int {
	return (w.G.Blocks+w.G.Edges())*8 + 1<<13
}

// Setup implements stamp.Workload.
func (w *Workload) Setup(sys *seer.System) error {
	w.blockLines = make([]seer.Addr, w.G.Blocks)
	for b := range w.blockLines {
		w.blockLines[b] = sys.AllocLines(1)
	}
	w.edgeLines = make([][]seer.Addr, len(w.G.Phases))
	w.incident = make([][][]int, len(w.G.Phases))
	for p, edges := range w.G.Phases {
		w.edgeLines[p] = make([]seer.Addr, len(edges))
		w.incident[p] = make([][]int, w.G.Blocks)
		for i, e := range edges {
			w.edgeLines[p][i] = sys.AllocLines(1)
			w.incident[p][e.A] = append(w.incident[p][e.A], i)
			w.incident[p][e.B] = append(w.incident[p][e.B], i)
		}
	}
	w.done = newStats(sys)
	w.edgeMass = newStats(sys)
	return nil
}

// Workers implements stamp.Workload.
func (w *Workload) Workers(nThreads int) []seer.Worker {
	parts := split(w.TotalOps, nThreads)
	phases := len(w.G.Phases)
	workers := make([]seer.Worker, nThreads)
	for i := range workers {
		ops := parts[i]
		workers[i] = func(t *seer.Thread) {
			rng := t.Rand()
			for n := 0; n < ops; n++ {
				// Phase by position in this worker's sequence: all
				// workers flip at (nearly) the same operation count.
				p := n * phases / ops
				b := rng.Intn(w.G.Blocks)
				blockLine := w.blockLines[b]
				edges := w.incident[p][b]
				lines := w.edgeLines[p]
				work := w.TxWork
				t.AtomicObj(b, uint64(b), func(a seer.Access) {
					a.Store(blockLine, a.Load(blockLine)+1)
					for _, ei := range edges {
						el := lines[ei]
						a.Store(el, a.Load(el)+1)
					}
					a.Work(work)
					w.done.add(a, 1)
					w.edgeMass.add(a, uint64(len(edges)))
				})
				if w.GapWork > 0 {
					t.Work(w.GapWork + uint64(rng.Intn(int(w.GapWork)+1)))
				}
			}
		}
	}
	return workers
}

// Validate implements stamp.Workload: every committed op incremented
// exactly one block line, and the edge-line mass matches the in-tx
// bookkeeping — partial (aborted) increments would break either sum.
func (w *Workload) Validate(sys *seer.System) error {
	var blockSum uint64
	for _, bl := range w.blockLines {
		blockSum += sys.Peek(bl)
	}
	if blockSum != uint64(w.TotalOps) {
		return fmt.Errorf("%s: block-line increments %d, want %d ops", w.Name(), blockSum, w.TotalOps)
	}
	var edgeSum uint64
	for _, phase := range w.edgeLines {
		for _, el := range phase {
			edgeSum += sys.Peek(el)
		}
	}
	if mass := w.edgeMass.sum(sys); edgeSum != mass {
		return fmt.Errorf("%s: edge-line increments %d, want %d", w.Name(), edgeSum, mass)
	}
	if done := w.done.sum(sys); done != uint64(w.TotalOps) {
		return fmt.Errorf("%s: %d operations committed, want %d", w.Name(), done, w.TotalOps)
	}
	return nil
}

// stats is a per-hardware-thread padded counter in simulated memory
// (the local analogue of stamp's unexported threadStats): bookkeeping
// that must not become a cross-thread conflict hotspot.
type stats struct {
	base seer.Addr
	n    int
}

func newStats(sys *seer.System) stats {
	n := 64
	if hw := sys.HWThreads(); hw > n {
		n = hw
	}
	return stats{base: sys.AllocLines(n), n: n}
}

func (s stats) add(a seer.Access, d uint64) {
	p := s.base + seer.Addr(a.ThreadID()*8)
	a.Store(p, a.Load(p)+d)
}

func (s stats) sum(sys *seer.System) uint64 {
	var total uint64
	for i := 0; i < s.n; i++ {
		total += sys.Peek(s.base + seer.Addr(i*8))
	}
	return total
}

// split partitions total operations across n workers, giving earlier
// workers the remainder (deterministic; mirrors stamp's split).
func split(total, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = total / n
	}
	for i := 0; i < total%n; i++ {
		out[i]++
	}
	return out
}
