package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"seer/internal/topology"
)

func TestNilRecorderAndShardAreNoOps(t *testing.T) {
	var r *Recorder
	if r.Interval() != 0 || r.Shard(3) != nil || r.Snapshots() != nil {
		t.Fatalf("nil recorder leaked state")
	}
	r.SetProbe(func() (float64, float64, int, uint64) { return 1, 2, 3, 4 })
	r.BeginRun()
	r.OnTick(1 << 20)
	r.Flush(1 << 20)

	var s *Shard
	s.IncMode(ModeSGL)
	s.IncAttempt()
	s.IncAbort(CauseConflict)
	s.IncFallback()
	s.AddLockWait(10)
	s.AddParkSkipped(5)
}

func TestNilShardZeroAllocs(t *testing.T) {
	var s *Shard
	allocs := testing.AllocsPerRun(1000, func() {
		s.IncMode(ModeHTM)
		s.IncAttempt()
		s.IncAbort(CauseCapacity)
		s.IncFallback()
		s.AddLockWait(7)
		s.AddParkSkipped(3)
	})
	if allocs != 0 {
		t.Fatalf("nil shard allocated %.1f per op, want 0", allocs)
	}
}

func TestZeroIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("New(0, ...) did not panic")
		}
	}()
	New(0, 4)
}

func TestIntervalBoundaries(t *testing.T) {
	r := New(100, 2)
	r.BeginRun()
	r.Shard(0).IncMode(ModeHTM)
	r.OnTick(50) // inside first interval: no snapshot yet
	if got := len(r.Snapshots()); got != 0 {
		t.Fatalf("early snapshot: %d", got)
	}
	r.Shard(1).IncMode(ModeHTM)
	r.OnTick(100) // boundary reached
	snaps := r.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %d, want 1", len(snaps))
	}
	s := snaps[0]
	if s.StartCycle != 0 || s.EndCycle != 100 || s.Commits != 2 || s.Modes[ModeHTM] != 2 {
		t.Fatalf("bad first snapshot: %+v", s)
	}
}

// TestMultiIntervalSkip: one tick jumping several intervals ahead must
// cut one snapshot per elapsed interval, not one total.
func TestMultiIntervalSkip(t *testing.T) {
	r := New(10, 1)
	r.BeginRun()
	r.Shard(0).IncAttempt()
	r.OnTick(35)
	snaps := r.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("snapshots = %d, want 3", len(snaps))
	}
	for i, s := range snaps {
		if s.Index != i || s.StartCycle != uint64(i*10) || s.EndCycle != uint64((i+1)*10) {
			t.Fatalf("snapshot %d boundaries wrong: %+v", i, s)
		}
	}
	// All activity lands in the first interval; the skipped ones are empty.
	if snaps[0].Attempts != 1 || snaps[1].Attempts != 0 || snaps[2].Attempts != 0 {
		t.Fatalf("attempts misattributed: %+v", snaps)
	}
}

func TestFlushShortRun(t *testing.T) {
	r := New(1000, 1)
	r.BeginRun()
	r.Shard(0).IncMode(ModeSGL)
	r.Flush(42) // run far shorter than one interval
	snaps := r.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %d, want 1", len(snaps))
	}
	if s := snaps[0]; s.StartCycle != 0 || s.EndCycle != 42 || s.Commits != 1 {
		t.Fatalf("bad trailing snapshot: %+v", s)
	}
	// Flushing again at the same cycle must not duplicate the snapshot.
	r.Flush(42)
	if got := len(r.Snapshots()); got != 1 {
		t.Fatalf("re-flush duplicated: %d", got)
	}
}

func TestFlushPartialTail(t *testing.T) {
	r := New(100, 1)
	r.BeginRun()
	r.Flush(250) // 2 full intervals + partial [200,250)
	snaps := r.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("snapshots = %d, want 3", len(snaps))
	}
	last := snaps[2]
	if last.StartCycle != 200 || last.EndCycle != 250 || last.Cycles() != 50 {
		t.Fatalf("partial tail wrong: %+v", last)
	}
}

func TestProbeSampledPerSnapshot(t *testing.T) {
	r := New(10, 1)
	calls := 0
	r.SetProbe(func() (float64, float64, int, uint64) {
		calls++
		// The reuse counter is cumulative at the probe (3, 6, 9, ...); the
		// recorder diffs it per interval.
		return float64(calls), 2 * float64(calls), calls, uint64(3 * calls)
	})
	r.BeginRun()
	r.OnTick(20)
	snaps := r.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("snapshots = %d, want 2", len(snaps))
	}
	if snaps[0].Th1 != 1 || snaps[1].Th1 != 2 || snaps[1].Th2 != 4 || snaps[1].SchemePairs != 2 {
		t.Fatalf("probe values wrong: %+v", snaps)
	}
	if snaps[0].SchemeReuse != 3 || snaps[1].SchemeReuse != 3 {
		t.Fatalf("scheme-reuse diffs wrong: %d, %d", snaps[0].SchemeReuse, snaps[1].SchemeReuse)
	}
}

// TestParkSkippedDiffedPerInterval: the shard counter is cumulative; each
// snapshot must carry only the interval's delta.
func TestParkSkippedDiffedPerInterval(t *testing.T) {
	r := New(10, 2)
	r.BeginRun()
	r.Shard(0).AddParkSkipped(100)
	r.OnTick(10)
	r.Shard(1).AddParkSkipped(40)
	r.OnTick(20)
	snaps := r.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("snapshots = %d, want 2", len(snaps))
	}
	if snaps[0].ParkSkipped != 100 || snaps[1].ParkSkipped != 40 {
		t.Fatalf("park-skipped diffs wrong: %d, %d", snaps[0].ParkSkipped, snaps[1].ParkSkipped)
	}
}

// TestBeginRunAcrossRuns: the engine clock resets per run while counters
// accumulate; interval diffs must stay correct across the rewind.
func TestBeginRunAcrossRuns(t *testing.T) {
	r := New(100, 1)
	r.BeginRun()
	r.Shard(0).IncMode(ModeHTM)
	r.Flush(100)
	r.BeginRun() // clock rewinds to 0 for run 2
	r.Shard(0).IncMode(ModeHTM)
	r.Shard(0).IncMode(ModeHTM)
	r.Flush(100)
	snaps := r.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("snapshots = %d, want 2", len(snaps))
	}
	if snaps[0].Commits != 1 || snaps[1].Commits != 2 {
		t.Fatalf("cross-run diffs wrong: %+v", snaps)
	}
	if snaps[1].StartCycle != 0 {
		t.Fatalf("BeginRun did not rewind: %+v", snaps[1])
	}
}

func TestCSVHeaderMatchesRecord(t *testing.T) {
	h := CSVHeader()
	rec := CSVRecord(Snapshot{})
	if len(h) != len(rec) {
		t.Fatalf("header has %d columns, record has %d", len(h), len(rec))
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []Snapshot{{Index: 0, EndCycle: 10}}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV lines = %d, want 2", len(lines))
	}
}

// TestPerSocketBreakdown: on a multi-socket topology the recorder must
// shard interval counters by socket, diff them per interval, and have
// the shards sum to the machine-wide aggregates; single-socket
// topologies must keep Sockets nil so old timelines stay byte-identical.
func TestPerSocketBreakdown(t *testing.T) {
	topo := topology.Multi(2, 2, 2) // 8 threads: 0-1,4-5 socket 0; 2-3,6-7 socket 1
	r := New(100, topo.Threads())
	r.SetTopology(topo)
	r.BeginRun()
	r.Shard(0).IncMode(ModeHTM) // socket 0
	r.Shard(0).IncAttempt()
	r.Shard(6).IncMode(ModeSGL) // socket 1
	r.Shard(6).IncAttempt()
	r.Shard(6).IncAbort(CauseConflict)
	r.Shard(6).AddLockWait(40)
	r.OnTick(100)
	r.Shard(4).IncMode(ModeHTM) // socket 0, interval 2
	r.Flush(150)

	snaps := r.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("%d snapshots, want 2", len(snaps))
	}
	first, second := snaps[0], snaps[1]
	want := []SocketCounters{
		{Socket: 0, Commits: 1, Attempts: 1},
		{Socket: 1, Commits: 1, Attempts: 1, Aborts: 1, LockWait: 40},
	}
	if len(first.Sockets) != 2 || first.Sockets[0] != want[0] || first.Sockets[1] != want[1] {
		t.Fatalf("interval 1 sockets = %+v, want %+v", first.Sockets, want)
	}
	// Second interval must hold only the diff, not cumulative totals.
	want = []SocketCounters{{Socket: 0, Commits: 1}, {Socket: 1}}
	if len(second.Sockets) != 2 || second.Sockets[0] != want[0] || second.Sockets[1] != want[1] {
		t.Fatalf("interval 2 sockets = %+v, want %+v", second.Sockets, want)
	}
	for _, s := range snaps {
		var commits, attempts uint64
		for _, sc := range s.Sockets {
			commits += sc.Commits
			attempts += sc.Attempts
		}
		if commits != s.Commits || attempts != s.Attempts {
			t.Fatalf("interval %d: socket shards (%d commits, %d attempts) != totals (%d, %d)",
				s.Index, commits, attempts, s.Commits, s.Attempts)
		}
	}

	// Single-socket machines must not grow a Sockets slice.
	r2 := New(100, 8)
	r2.SetTopology(topology.SMT2(4))
	r2.BeginRun()
	r2.Shard(0).IncMode(ModeHTM)
	r2.Flush(50)
	if s := r2.Snapshots()[0]; s.Sockets != nil {
		t.Fatalf("single-socket snapshot carries Sockets = %+v, want nil", s.Sockets)
	}
}

// TestPerSocketAsymmetricTopology: with an odd core count per socket
// (2s3c2t), hyperthread siblings are Cores()=6 apart, so the
// socket-of-thread mapping is no longer a contiguous halving of the id
// space: threads 0-2 and 6-8 share socket 0 while 3-5 and 9-11 share
// socket 1. The recorder must group shard counters by topology.SocketOf,
// not by any id-range shortcut.
func TestPerSocketAsymmetricTopology(t *testing.T) {
	topo := topology.Multi(2, 3, 2)
	if topo.Threads() != 12 {
		t.Fatalf("2s3c2t has %d threads, want 12", topo.Threads())
	}
	r := New(100, topo.Threads())
	r.SetTopology(topo)
	r.BeginRun()
	// One commit per hardware thread; aborts only on socket-1 threads,
	// including the sibling range 9-11 that a naive split would place in
	// the "upper half = socket 1, lower half = socket 0" pattern wrongly
	// for threads 6-8.
	for hw := 0; hw < topo.Threads(); hw++ {
		r.Shard(hw).IncMode(ModeHTM)
		r.Shard(hw).IncAttempt()
		if topo.SocketOf(hw) == 1 {
			r.Shard(hw).IncAbort(CauseConflict)
		}
	}
	r.Flush(100)

	snaps := r.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("%d snapshots, want 1", len(snaps))
	}
	socks := snaps[0].Sockets
	if len(socks) != 2 {
		t.Fatalf("sockets = %+v, want 2 entries", socks)
	}
	for i, sc := range socks {
		if sc.Socket != i || sc.Commits != 6 || sc.Attempts != 6 {
			t.Fatalf("socket %d counters = %+v, want 6 commits/attempts", i, sc)
		}
	}
	if socks[0].Aborts != 0 || socks[1].Aborts != 6 {
		t.Fatalf("aborts misattributed across sockets: %+v", socks)
	}
	// Spot-check the sibling ranges directly against the topology.
	for _, hw := range []int{6, 7, 8} {
		if topo.SocketOf(hw) != 0 {
			t.Fatalf("thread %d on socket %d, want 0", hw, topo.SocketOf(hw))
		}
	}
	for _, hw := range []int{9, 10, 11} {
		if topo.SocketOf(hw) != 1 {
			t.Fatalf("thread %d on socket %d, want 1", hw, topo.SocketOf(hw))
		}
	}
}
