// Package telemetry provides the runtime's interval-metrics layer: a
// per-thread-sharded, single-writer set of counters that the machine's
// tick loop samples on a fixed virtual-time interval. Because sampling is
// driven by the deterministic simulator clock, the resulting timeline is
// bit-for-bit reproducible for a fixed seed, which makes it usable both
// for observing a live run (seerstat -timeline) and for regression-testing
// scheduler dynamics.
//
// The layer is built so that disabling it costs nothing on the hot path:
// every mutator is a method on a possibly-nil *Shard (one predictable
// branch, no allocation), mirroring the trace.Log convention.
package telemetry

import "seer/internal/topology"

// Commit-mode slots mirrored from internal/policy. telemetry sits below
// policy in the import graph, so the indices are declared here and policy
// asserts (in its tests) that they line up with its Mode enum.
const (
	ModeHTM = iota
	ModeHTMAux
	ModeHTMTx
	ModeHTMCore
	ModeHTMTxCore
	ModeSGL
	ModeSTM
	NumModes
	// MaxModes fixes the array size so adding a mode is a compile-time
	// event here rather than a silent truncation.
	MaxModes = 8
)

// ModeNames are the CSV/JSONL column names per mode slot.
var ModeNames = [NumModes]string{"htm", "htm_aux", "htm_tx", "htm_core", "htm_tx_core", "sgl", "stm"}

// Cause classifies hardware aborts for the per-interval breakdown,
// mirroring the priority order of htm's counter accounting.
type Cause int

// Abort causes.
const (
	CauseConflict Cause = iota
	CauseCapacity
	CauseExplicit
	CauseSpurious
	CauseOther
	NumCauses
)

// CauseNames are the CSV/JSONL column names per abort cause.
var CauseNames = [NumCauses]string{"conflict", "capacity", "explicit", "spurious", "other"}

// Shard is one hardware thread's counter block. Exactly one thread writes
// it (the engine serializes execution), and the recorder reads all shards
// only at scheduling points, so no synchronization is needed. A nil *Shard
// is a valid, disabled shard: every mutator is a no-op.
type Shard struct {
	Modes       [MaxModes]uint64
	Attempts    uint64
	Aborts      [NumCauses]uint64
	Fallbacks   uint64
	LockWait    uint64 // cycles spent spinning on locks (SGL, tx, core)
	ParkSkipped uint64 // lock-wait cycles fast-forwarded by parking (subset of LockWait)

	// BackoffWaits and BackoffCycles count the randomized backoff sleeps
	// of the Backoff policy (waits issued, total cycles slept). Zero for
	// every other policy.
	BackoffWaits  uint64
	BackoffCycles uint64
}

// IncMode counts a commit in mode slot m.
func (s *Shard) IncMode(m int) {
	if s == nil {
		return
	}
	s.Modes[m]++
}

// IncAttempt counts an issued hardware transaction.
func (s *Shard) IncAttempt() {
	if s == nil {
		return
	}
	s.Attempts++
}

// IncAbort counts a hardware abort by cause.
func (s *Shard) IncAbort(c Cause) {
	if s == nil {
		return
	}
	s.Aborts[c]++
}

// IncFallback counts a single-global-lock acquisition.
func (s *Shard) IncFallback() {
	if s == nil {
		return
	}
	s.Fallbacks++
}

// AddLockWait adds cycles spent waiting on locks.
func (s *Shard) AddLockWait(cycles uint64) {
	if s == nil {
		return
	}
	s.LockWait += cycles
}

// AddBackoff counts one randomized backoff wait of the given length.
func (s *Shard) AddBackoff(cycles uint64) {
	if s == nil {
		return
	}
	s.BackoffWaits++
	s.BackoffCycles += cycles
}

// AddParkSkipped adds lock-wait cycles that the engine fast-forwarded by
// parking the thread instead of simulating its spin iterations. These
// cycles are a subset of LockWait: they still elapse on the virtual clock,
// but cost no host time.
func (s *Shard) AddParkSkipped(cycles uint64) {
	if s == nil {
		return
	}
	s.ParkSkipped += cycles
}

// SocketCounters is one socket's share of a Snapshot, populated only on
// multi-socket topologies (see Recorder.SetTopology).
type SocketCounters struct {
	Socket   int    `json:"socket"`
	Commits  uint64 `json:"commits"`
	Attempts uint64 `json:"attempts"`
	Aborts   uint64 `json:"aborts"`
	LockWait uint64 `json:"lock_wait_cycles"`
}

// Snapshot is the aggregate over one sampling interval, plus the
// scheduler's control state at the interval boundary.
type Snapshot struct {
	Index      int    `json:"index"`
	StartCycle uint64 `json:"start_cycle"`
	EndCycle   uint64 `json:"end_cycle"`

	Commits     uint64            `json:"commits"`
	Modes       [MaxModes]uint64  `json:"modes"`
	Attempts    uint64            `json:"attempts"`
	Aborts      [NumCauses]uint64 `json:"aborts"`
	Fallbacks   uint64            `json:"fallbacks"`
	LockWait    uint64            `json:"lock_wait_cycles"`
	ParkSkipped uint64            `json:"park_skipped_cycles"`

	// BackoffWaits and BackoffCycles mirror the Backoff policy's
	// randomized sleeps in the interval; always zero (and omitted from
	// JSON) under every other policy, keeping pre-backoff timeline
	// outputs byte-identical.
	BackoffWaits  uint64 `json:"backoff_waits,omitempty"`
	BackoffCycles uint64 `json:"backoff_cycles,omitempty"`

	// Quantum* mirror the engine's speculative-quantum activity in the
	// interval (machine.Engine.QuantumCounters, diffed by the recorder):
	// quanta granted, pure ticks journaled, rollbacks, and journaled ticks
	// discarded by rollbacks. All zero — and omitted from JSON — unless
	// speculation is enabled and a quantum probe is installed, keeping
	// pre-quantum timeline outputs byte-identical.
	QuantumGrants        uint64 `json:"quantum_grants,omitempty"`
	QuantumTicks         uint64 `json:"quantum_ticks,omitempty"`
	QuantumRollbacks     uint64 `json:"quantum_rollbacks,omitempty"`
	QuantumRollbackTicks uint64 `json:"quantum_rollback_ticks,omitempty"`

	// Phase* mirror the phased-TM runtime's global execution mode over
	// the interval: mode transitions that happened in it, and how the
	// interval's cycles split across the HW/SW/GLOCK phases (diffed from
	// the policy's cumulative occupancy by the recorder). All zero — and
	// omitted from JSON — unless the Phased policy installed a phase
	// probe, keeping pre-phase timeline outputs byte-identical.
	PhaseTransitions uint64 `json:"phase_transitions,omitempty"`
	PhaseHWCycles    uint64 `json:"phase_hw_cycles,omitempty"`
	PhaseSWCycles    uint64 `json:"phase_sw_cycles,omitempty"`
	PhaseGLOCKCycles uint64 `json:"phase_glock_cycles,omitempty"`

	// Sockets breaks the interval down per socket on multi-socket
	// machines; nil (and omitted from JSON) on single-socket machines,
	// which keeps pre-topology timeline outputs byte-identical.
	Sockets []SocketCounters `json:"sockets,omitempty"`

	// ConflictPairs are the interval's heaviest ground-truth conflict
	// edges (victim block ← aborter block, by doom count) and CascadeHist
	// its abort cascade-depth histogram (trailing zeroes trimmed). Both
	// are nil — and omitted from JSON — unless the attribution subsystem
	// is on (Config.AttributionCounters), keeping pre-attribution
	// timeline outputs byte-identical.
	ConflictPairs []PairCount `json:"conflict_pairs,omitempty"`
	CascadeHist   []uint64    `json:"cascade_hist,omitempty"`

	// Scheduler state sampled at EndCycle (zero unless a probe is set,
	// i.e. for non-Seer policies).
	Th1         float64 `json:"th1"`
	Th2         float64 `json:"th2"`
	SchemePairs int     `json:"scheme_pairs"`
	// SchemeReuse counts scheme updates in the interval that completed
	// without growing any row (the allocation-free steady state).
	SchemeReuse uint64 `json:"scheme_reuse_hits"`
}

// Cycles returns the interval's length in virtual cycles.
func (s Snapshot) Cycles() uint64 { return s.EndCycle - s.StartCycle }

// Throughput returns commits per 1000 virtual cycles in the interval.
func (s Snapshot) Throughput() float64 {
	if s.EndCycle == s.StartCycle {
		return 0
	}
	return 1000 * float64(s.Commits) / float64(s.Cycles())
}

// AbortRate returns hardware aborts per issued hardware transaction in
// the interval.
func (s Snapshot) AbortRate() float64 {
	if s.Attempts == 0 {
		return 0
	}
	var aborts uint64
	for _, a := range s.Aborts {
		aborts += a
	}
	return float64(aborts) / float64(s.Attempts)
}

// totals is the cumulative sum over shards, used to diff intervals.
type totals struct {
	modes         [MaxModes]uint64
	attempts      uint64
	aborts        [NumCauses]uint64
	fallbacks     uint64
	lockWait      uint64
	parkSkipped   uint64
	backoffWaits  uint64
	backoffCycles uint64
}

// Probe supplies the scheduler's control state at snapshot time: the
// current thresholds, the locking scheme's pair count, and the cumulative
// scheme-update reuse-hit counter (diffed per interval by the recorder).
type Probe func() (th1, th2 float64, schemePairs int, schemeReuse uint64)

// PairCount is one victim←aborter conflict edge with its doom count
// (mirrors txtrace.PairCount; telemetry sits below txtrace in the import
// graph, so the shape is declared in both and asserted equal in tests).
type PairCount struct {
	Victim  int    `json:"victim"`
	Aborter int    `json:"aborter"`
	Count   uint64 `json:"count"`
}

// QuantumProbe supplies the engine's cumulative speculative-quantum
// counters at snapshot time (machine.Engine.QuantumCounters); the
// recorder diffs them per interval.
type QuantumProbe func() (grants, ticks, rollbacks, rollbackTicks uint64)

// PhaseProbe supplies the phased-TM runtime's cumulative mode state as
// of virtual time now: total mode transitions and per-phase occupancy
// cycles (HW, SW, GLOCK — with the currently open phase segment credited
// up to now). The recorder diffs both per interval.
type PhaseProbe func(now uint64) (transitions uint64, occupancy [3]uint64)

// AttrProbe supplies the attribution subsystem's cumulative state at
// snapshot time: the flat victim-major ground-truth conflict matrix
// (borrowed view, nBlocks×nBlocks) and the cumulative cascade-depth
// histogram. The recorder diffs both per interval.
type AttrProbe func() (truth []uint64, nBlocks int, cascade []uint64)

// topConflictPairs is the number of conflict edges retained per snapshot.
const topConflictPairs = 4

// Recorder owns the shards and cuts snapshots at interval boundaries. A
// nil *Recorder is a valid, disabled recorder.
type Recorder struct {
	interval uint64
	shards   []Shard
	probe    Probe

	// socketOf maps each shard (hardware thread) to its socket; nil on
	// single-socket machines, where per-socket breakdowns are skipped.
	socketOf []int
	sockets  int
	prevSock []SocketCounters // cumulative per-socket totals at the last snapshot

	snaps     []Snapshot
	prev      totals
	prevReuse uint64 // probe's cumulative reuse counter at the last snapshot
	start     uint64 // start cycle of the interval being accumulated

	// Speculative-quantum probe state: the engine's cumulative counters at
	// the last snapshot, for interval diffs.
	quantumProbe QuantumProbe
	prevQuantum  [4]uint64

	// Phase probe state: the phased policy's cumulative transition count
	// and per-phase occupancy at the last snapshot, for interval diffs.
	phaseProbe    PhaseProbe
	prevPhase     [3]uint64
	prevPhaseTran uint64

	// Attribution probe state: cumulative truth matrix and cascade
	// histogram at the last snapshot, for interval diffs.
	attrProbe   AttrProbe
	prevTruth   []uint64
	prevCascade []uint64
}

// New creates a recorder cutting a snapshot every interval cycles for a
// machine with threads hardware threads. interval must be positive.
func New(interval uint64, threads int) *Recorder {
	if interval == 0 {
		panic("telemetry: interval must be positive (0 means disabled: use a nil Recorder)")
	}
	return &Recorder{interval: interval, shards: make([]Shard, threads)}
}

// Interval returns the sampling interval in cycles (0 on a nil recorder).
func (r *Recorder) Interval() uint64 {
	if r == nil {
		return 0
	}
	return r.interval
}

// Shard returns hardware thread hw's counter block (nil on a nil
// recorder, yielding disabled no-op shards downstream).
func (r *Recorder) Shard(hw int) *Shard {
	if r == nil {
		return nil
	}
	return &r.shards[hw]
}

// SetProbe installs the scheduler-state probe.
func (r *Recorder) SetProbe(p Probe) {
	if r == nil {
		return
	}
	r.probe = p
}

// SetQuantumProbe installs the speculative-quantum probe: every snapshot
// from here on carries the interval's quantum grant/tick/rollback deltas.
// Without it (the default, and whenever speculation is off) those fields
// stay zero and timeline outputs are byte-identical to pre-quantum ones.
func (r *Recorder) SetQuantumProbe(p QuantumProbe) {
	if r == nil {
		return
	}
	r.quantumProbe = p
}

// SetPhaseProbe installs the phased-TM mode probe: every snapshot from
// here on carries the interval's mode-transition count and HW/SW/GLOCK
// occupancy split. Without it (the default, and under every non-phased
// policy) those fields stay zero and timeline outputs are byte-identical
// to pre-phase ones.
func (r *Recorder) SetPhaseProbe(p PhaseProbe) {
	if r == nil {
		return
	}
	r.phaseProbe = p
}

// SetAttribution installs the abort-attribution probe: every snapshot
// from here on carries the interval's top conflict pairs and cascade
// histogram. Without it (the default) those fields stay nil and timeline
// outputs are byte-identical to pre-attribution ones.
func (r *Recorder) SetAttribution(p AttrProbe) {
	if r == nil {
		return
	}
	r.attrProbe = p
}

// SetTopology enables per-socket counter breakdowns for a multi-socket
// machine: every snapshot from here on carries a Sockets slice sharded
// by topo.SocketOf. On single-socket topologies it is a no-op, so
// single-socket timelines are identical with or without the call.
func (r *Recorder) SetTopology(topo topology.Topology) {
	if r == nil || topo.Sockets <= 1 {
		return
	}
	r.sockets = topo.Sockets
	r.socketOf = make([]int, len(r.shards))
	for hw := range r.socketOf {
		r.socketOf[hw] = topo.SocketOf(hw)
	}
	r.prevSock = make([]SocketCounters, topo.Sockets)
}

// BeginRun rewinds the interval origin to cycle 0. The engine resets the
// virtual clocks at the start of every Run; cumulative counters carry
// over, so interval diffs stay correct across repeated runs.
func (r *Recorder) BeginRun() {
	if r == nil {
		return
	}
	r.start = 0
}

// OnTick is the engine's tick hook: now is the global virtual time (the
// minimum clock over runnable threads, which is non-decreasing within a
// run). It cuts one snapshot per fully elapsed interval.
func (r *Recorder) OnTick(now uint64) {
	if r == nil {
		return
	}
	for now >= r.start+r.interval {
		r.emit(r.start + r.interval)
	}
}

// Flush closes the timeline at end (the run's makespan): it cuts any
// fully elapsed intervals and then a trailing partial interval. A run
// shorter than one interval therefore still yields one snapshot.
func (r *Recorder) Flush(end uint64) {
	if r == nil {
		return
	}
	r.OnTick(end)
	if end > r.start || len(r.snaps) == 0 {
		r.emit(end)
	}
}

// emit cuts the snapshot [r.start, end).
func (r *Recorder) emit(end uint64) {
	cur := r.sum()
	snap := Snapshot{Index: len(r.snaps), StartCycle: r.start, EndCycle: end}
	for i := range cur.modes {
		snap.Modes[i] = cur.modes[i] - r.prev.modes[i]
		snap.Commits += snap.Modes[i]
	}
	for i := range cur.aborts {
		snap.Aborts[i] = cur.aborts[i] - r.prev.aborts[i]
	}
	snap.Attempts = cur.attempts - r.prev.attempts
	snap.Fallbacks = cur.fallbacks - r.prev.fallbacks
	snap.LockWait = cur.lockWait - r.prev.lockWait
	snap.ParkSkipped = cur.parkSkipped - r.prev.parkSkipped
	snap.BackoffWaits = cur.backoffWaits - r.prev.backoffWaits
	snap.BackoffCycles = cur.backoffCycles - r.prev.backoffCycles
	if r.probe != nil {
		var reuse uint64
		snap.Th1, snap.Th2, snap.SchemePairs, reuse = r.probe()
		snap.SchemeReuse = reuse - r.prevReuse
		r.prevReuse = reuse
	}
	if r.quantumProbe != nil {
		g, t, rb, rt := r.quantumProbe()
		cum := [4]uint64{g, t, rb, rt}
		snap.QuantumGrants = cum[0] - r.prevQuantum[0]
		snap.QuantumTicks = cum[1] - r.prevQuantum[1]
		snap.QuantumRollbacks = cum[2] - r.prevQuantum[2]
		snap.QuantumRollbackTicks = cum[3] - r.prevQuantum[3]
		r.prevQuantum = cum
	}
	if r.phaseProbe != nil {
		tran, occ := r.phaseProbe(end)
		snap.PhaseTransitions = tran - r.prevPhaseTran
		snap.PhaseHWCycles = occ[0] - r.prevPhase[0]
		snap.PhaseSWCycles = occ[1] - r.prevPhase[1]
		snap.PhaseGLOCKCycles = occ[2] - r.prevPhase[2]
		r.prevPhaseTran, r.prevPhase = tran, occ
	}
	if r.attrProbe != nil {
		r.emitAttribution(&snap)
	}
	if r.socketOf != nil {
		curSock := r.sumSockets()
		snap.Sockets = make([]SocketCounters, r.sockets)
		for s := range snap.Sockets {
			snap.Sockets[s] = SocketCounters{
				Socket:   s,
				Commits:  curSock[s].Commits - r.prevSock[s].Commits,
				Attempts: curSock[s].Attempts - r.prevSock[s].Attempts,
				Aborts:   curSock[s].Aborts - r.prevSock[s].Aborts,
				LockWait: curSock[s].LockWait - r.prevSock[s].LockWait,
			}
		}
		r.prevSock = curSock
	}
	r.snaps = append(r.snaps, snap)
	r.prev = cur
	r.start = end
}

// emitAttribution fills the snapshot's conflict-pair and cascade fields
// with the interval's deltas against the attribution probe's cumulative
// views.
func (r *Recorder) emitAttribution(snap *Snapshot) {
	truth, n, cascade := r.attrProbe()
	if r.prevTruth == nil {
		r.prevTruth = make([]uint64, len(truth))
		r.prevCascade = make([]uint64, len(cascade))
	}
	// Top-K conflict edges by interval delta; insertion sort into a fixed
	// K-slot buffer, ties broken by (victim, aborter) for determinism.
	var top [topConflictPairs]PairCount
	used := 0
	for v := 0; v < n; v++ {
		for a := 0; a < n; a++ {
			d := truth[v*n+a] - r.prevTruth[v*n+a]
			if d == 0 {
				continue
			}
			pc := PairCount{Victim: v, Aborter: a, Count: d}
			i := used
			if i < topConflictPairs {
				used++
			} else if top[i-1].Count >= pc.Count {
				continue
			} else {
				i--
			}
			for i > 0 && top[i-1].Count < pc.Count {
				top[i] = top[i-1]
				i--
			}
			top[i] = pc
		}
	}
	if used > 0 {
		snap.ConflictPairs = append([]PairCount(nil), top[:used]...)
	}
	copy(r.prevTruth, truth)

	last := -1
	for d := range cascade {
		if cascade[d]-r.prevCascade[d] > 0 {
			last = d
		}
	}
	if last >= 0 {
		hist := make([]uint64, last+1)
		for d := 0; d <= last; d++ {
			hist[d] = cascade[d] - r.prevCascade[d]
		}
		snap.CascadeHist = hist
	}
	copy(r.prevCascade, cascade)
}

// sumSockets folds the shards into cumulative per-socket totals.
func (r *Recorder) sumSockets() []SocketCounters {
	out := make([]SocketCounters, r.sockets)
	for i := range r.shards {
		s := &r.shards[i]
		sc := &out[r.socketOf[i]]
		for m := range s.Modes {
			sc.Commits += s.Modes[m]
		}
		for c := range s.Aborts {
			sc.Aborts += s.Aborts[c]
		}
		sc.Attempts += s.Attempts
		sc.LockWait += s.LockWait
	}
	return out
}

// sum folds all shards into cumulative totals.
func (r *Recorder) sum() totals {
	var t totals
	for i := range r.shards {
		s := &r.shards[i]
		for m := range s.Modes {
			t.modes[m] += s.Modes[m]
		}
		for c := range s.Aborts {
			t.aborts[c] += s.Aborts[c]
		}
		t.attempts += s.Attempts
		t.fallbacks += s.Fallbacks
		t.lockWait += s.LockWait
		t.parkSkipped += s.ParkSkipped
		t.backoffWaits += s.BackoffWaits
		t.backoffCycles += s.BackoffCycles
	}
	return t
}

// Snapshots returns a copy of the recorded timeline.
func (r *Recorder) Snapshots() []Snapshot {
	if r == nil {
		return nil
	}
	out := make([]Snapshot, len(r.snaps))
	copy(out, r.snaps)
	return out
}
