package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"seer/internal/trace"
)

// Exporters for the interval timeline and the event log. All three are
// deterministic: identical inputs produce byte-identical output, so
// exports double as regression artifacts for same-seed runs.

// CSVHeader returns the column layout of WriteCSV; exported so harness
// exhibits can prefix it with their own key columns.
func CSVHeader() []string {
	cols := []string{"index", "start_cycle", "end_cycle", "commits"}
	for _, m := range ModeNames {
		cols = append(cols, "mode_"+m)
	}
	cols = append(cols, "attempts")
	for _, c := range CauseNames {
		cols = append(cols, "aborts_"+c)
	}
	return append(cols,
		"fallbacks", "lock_wait_cycles", "park_skipped_cycles",
		"backoff_waits", "backoff_cycles",
		"th1", "th2", "scheme_pairs", "scheme_reuse_hits",
		"throughput_per_kcycle", "abort_rate",
		"attr_top_pair", "attr_top_pair_dooms", "cascade_deepest",
		"quantum_grants", "quantum_ticks",
		"quantum_rollbacks", "quantum_rollback_ticks",
		"phase_transitions", "phase_hw_cycles",
		"phase_sw_cycles", "phase_glock_cycles")
}

// CSVRecord renders one snapshot in CSVHeader's column order.
func CSVRecord(s Snapshot) []string {
	rec := []string{
		strconv.Itoa(s.Index),
		strconv.FormatUint(s.StartCycle, 10),
		strconv.FormatUint(s.EndCycle, 10),
		strconv.FormatUint(s.Commits, 10),
	}
	for m := 0; m < NumModes; m++ {
		rec = append(rec, strconv.FormatUint(s.Modes[m], 10))
	}
	rec = append(rec, strconv.FormatUint(s.Attempts, 10))
	for c := 0; c < int(NumCauses); c++ {
		rec = append(rec, strconv.FormatUint(s.Aborts[c], 10))
	}
	rec = append(rec,
		strconv.FormatUint(s.Fallbacks, 10),
		strconv.FormatUint(s.LockWait, 10),
		strconv.FormatUint(s.ParkSkipped, 10),
		strconv.FormatUint(s.BackoffWaits, 10),
		strconv.FormatUint(s.BackoffCycles, 10),
		fmt.Sprintf("%.6f", s.Th1),
		fmt.Sprintf("%.6f", s.Th2),
		strconv.Itoa(s.SchemePairs),
		strconv.FormatUint(s.SchemeReuse, 10),
		fmt.Sprintf("%.6f", s.Throughput()),
		fmt.Sprintf("%.6f", s.AbortRate()),
	)
	// Attribution columns: empty/zero when the subsystem is off.
	topPair, topDooms := "", "0"
	if len(s.ConflictPairs) > 0 {
		topPair = fmt.Sprintf("tx%d<-tx%d", s.ConflictPairs[0].Victim, s.ConflictPairs[0].Aborter)
		topDooms = strconv.FormatUint(s.ConflictPairs[0].Count, 10)
	}
	deepest := ""
	if len(s.CascadeHist) > 0 {
		deepest = strconv.Itoa(len(s.CascadeHist) - 1)
	}
	return append(rec, topPair, topDooms, deepest,
		strconv.FormatUint(s.QuantumGrants, 10),
		strconv.FormatUint(s.QuantumTicks, 10),
		strconv.FormatUint(s.QuantumRollbacks, 10),
		strconv.FormatUint(s.QuantumRollbackTicks, 10),
		strconv.FormatUint(s.PhaseTransitions, 10),
		strconv.FormatUint(s.PhaseHWCycles, 10),
		strconv.FormatUint(s.PhaseSWCycles, 10),
		strconv.FormatUint(s.PhaseGLOCKCycles, 10))
}

// WriteCSV renders the timeline as CSV, one row per interval.
func WriteCSV(w io.Writer, snaps []Snapshot) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(CSVHeader()); err != nil {
		return err
	}
	for _, s := range snaps {
		if err := cw.Write(CSVRecord(s)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSONL renders the timeline as JSON Lines, one snapshot per line.
func WriteJSONL(w io.Writer, snaps []Snapshot) error {
	enc := json.NewEncoder(w)
	for _, s := range snaps {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// array flavour readable by chrome://tracing and Perfetto). Field order
// is fixed by the struct, keeping the export deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace synthesizes a Chrome trace-event JSON document from
// the retained event log: begin→commit/abort windows become duration
// ("X") slices per hardware thread, fall-backs and lock operations become
// instant events, threshold re-tunings become counter ("C") tracks, and
// scheme recomputations become instants carrying the pair count. Virtual
// cycles are mapped 1:1 onto the format's microsecond timestamps.
func WriteChromeTrace(w io.Writer, events []trace.Event) error {
	type openTx struct {
		start uint64
		tx    int16
		live  bool
	}
	open := map[int16]*openTx{}
	out := make([]chromeEvent, 0, len(events))
	for _, e := range events {
		hw := int(e.HW)
		switch e.Kind {
		case trace.EvBegin:
			open[e.HW] = &openTx{start: e.Cycle, tx: e.TxID, live: true}
		case trace.EvCommit, trace.EvAbort:
			name := fmt.Sprintf("tx%d", e.TxID)
			args := map[string]any{"outcome": e.Kind.String()}
			if e.Kind == trace.EvAbort {
				args["status"] = fmt.Sprintf("%#x", e.Detail)
			}
			if o := open[e.HW]; o != nil && o.live && o.tx == e.TxID {
				o.live = false
				out = append(out, chromeEvent{
					Name: name, Ph: "X", Ts: o.start, Dur: e.Cycle - o.start,
					Pid: 0, Tid: hw, Args: args,
				})
			} else {
				// The begin fell out of the ring buffer: keep the outcome
				// as an instant so the tail of the log still renders.
				out = append(out, chromeEvent{
					Name: name, Ph: "i", Ts: e.Cycle, Pid: 0, Tid: hw, S: "t", Args: args,
				})
			}
		case trace.EvFallback:
			out = append(out, chromeEvent{
				Name: "sgl-fallback", Ph: "i", Ts: e.Cycle, Pid: 0, Tid: hw, S: "t",
				Args: map[string]any{"tx": e.TxID},
			})
		case trace.EvLockAcq, trace.EvLockRel:
			name := "lock-release"
			if e.Kind == trace.EvLockAcq {
				name = "lock-acquire"
			}
			kind := "tx"
			if e.Detail2 != 0 {
				kind = "core"
			}
			out = append(out, chromeEvent{
				Name: name, Ph: "i", Ts: e.Cycle, Pid: 0, Tid: hw, S: "t",
				Args: map[string]any{"lock": e.Detail, "kind": kind},
			})
		case trace.EvWait:
			out = append(out, chromeEvent{
				Name: "wait", Ph: "i", Ts: e.Cycle, Pid: 0, Tid: hw, S: "t",
				Args: map[string]any{"tx": e.TxID},
			})
		case trace.EvScheme:
			out = append(out, chromeEvent{
				Name: "scheme-update", Ph: "i", Ts: e.Cycle, Pid: 0, Tid: hw, S: "p",
				Args: map[string]any{"pairs": e.Detail},
			})
		case trace.EvTune:
			out = append(out, chromeEvent{
				Name: "thresholds", Ph: "C", Ts: e.Cycle, Pid: 0, Tid: hw,
				Args: map[string]any{
					"th1": float64(math.Float32frombits(e.Detail)),
					"th2": float64(math.Float32frombits(e.Detail2)),
				},
			})
		case trace.EvPhase:
			// Phased-TM mode transition: Detail is the new mode, Detail2
			// the old one (0=HW, 1=SW, 2=GLOCK). Process-scoped instant so
			// the global mode change reads as a vertical line in Perfetto.
			out = append(out, chromeEvent{
				Name: "phase", Ph: "i", Ts: e.Cycle, Pid: 0, Tid: hw, S: "p",
				Args: map[string]any{"to": e.Detail, "from": e.Detail2},
			})
		case trace.EvDoom:
			// Attribution event from internal/txtrace: Detail is the
			// conflicting line, Detail2 packs the aborter (hw, block).
			out = append(out, chromeEvent{
				Name: "doom", Ph: "i", Ts: e.Cycle, Pid: 0, Tid: hw, S: "t",
				Args: map[string]any{
					"victim_tx":     e.TxID,
					"line":          e.Detail,
					"aborter_hw":    int16(e.Detail2 >> 16),
					"aborter_block": int16(e.Detail2 & 0xFFFF),
				},
			})
		default:
			out = append(out, chromeEvent{
				Name: e.Kind.String(), Ph: "i", Ts: e.Cycle, Pid: 0, Tid: hw, S: "t",
			})
		}
	}
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: out, DisplayTimeUnit: "ns"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
