package tune

import (
	"testing"
	"testing/quick"

	"seer/internal/machine"
)

func newClimber(seed uint64, cfg Config) *HillClimber {
	rng := machine.NewRand(seed)
	return New(DefaultInit(), cfg, &rng)
}

func TestInitialParams(t *testing.T) {
	h := newClimber(1, DefaultConfig())
	p := h.Params()
	if p.Th1 != 0.3 || p.Th2 != 0.8 {
		t.Fatalf("initial params = %+v, want the paper's (0.3, 0.8)", p)
	}
}

func TestParamsStayInRange(t *testing.T) {
	h := newClimber(2, Config{Step: 0.5, JumpProb: 0.2})
	for i := 0; i < 1000; i++ {
		p := h.Params()
		if p.Th1 < 0 || p.Th1 > 1 || p.Th2 < 0 || p.Th2 > 1 {
			t.Fatalf("params out of range at move %d: %+v", i, p)
		}
		h.Feedback(float64(i % 7))
	}
}

// TestClimbsTowardOptimum: on a smooth unimodal objective the climber's
// best point approaches the optimum.
func TestClimbsTowardOptimum(t *testing.T) {
	h := newClimber(3, Config{Step: 0.08, JumpProb: 0})
	objective := func(p Params) float64 {
		// Peak at (0.1, 0.2).
		d1 := p.Th1 - 0.1
		d2 := p.Th2 - 0.2
		return 1 - (d1*d1 + d2*d2)
	}
	for i := 0; i < 400; i++ {
		h.Feedback(objective(h.Params()))
	}
	best, val := h.Best()
	if val < objective(Params{Th1: 0.2, Th2: 0.35}) {
		t.Fatalf("climber stuck: best %+v value %v", best, val)
	}
	if d := (best.Th1-0.1)*(best.Th1-0.1) + (best.Th2-0.2)*(best.Th2-0.2); d > 0.05 {
		t.Fatalf("best %+v too far from optimum (d²=%v)", best, d)
	}
}

// TestKeepsBestUnderNoise: the best point's recorded value never
// decreases.
func TestKeepsBestUnderNoise(t *testing.T) {
	h := newClimber(4, DefaultConfig())
	rng := machine.NewRand(99)
	prevBest := -1.0
	for i := 0; i < 300; i++ {
		h.Feedback(rng.Float64())
		_, v := h.Best()
		if v < prevBest {
			t.Fatalf("best value decreased: %v -> %v", prevBest, v)
		}
		prevBest = v
	}
}

func TestRandomJumpsEscape(t *testing.T) {
	// With jump probability 1 every proposal is a uniform point, so the
	// proposals must spread across the space.
	h := newClimber(5, Config{Step: 0.01, JumpProb: 1})
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		p := h.Params()
		seen[int(p.Th1*4)*5+int(p.Th2*4)] = true
		h.Feedback(0)
	}
	if len(seen) < 8 {
		t.Fatalf("jump proposals cover only %d cells", len(seen))
	}
}

func TestMovesCounter(t *testing.T) {
	h := newClimber(6, DefaultConfig())
	for i := 0; i < 5; i++ {
		h.Feedback(1)
	}
	if h.Moves() != 5 {
		t.Fatalf("Moves = %d, want 5", h.Moves())
	}
}

// TestDeterministicQuick: identical seeds and feedback produce identical
// trajectories.
func TestDeterministicQuick(t *testing.T) {
	f := func(vals []uint8) bool {
		run := func() []Params {
			h := newClimber(7, DefaultConfig())
			var traj []Params
			for _, v := range vals {
				h.Feedback(float64(v))
				traj = append(traj, h.Params())
			}
			return traj
		}
		a, b := run(), run()
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestClampedInit(t *testing.T) {
	rng := machine.NewRand(1)
	h := New(Params{Th1: -3, Th2: 42}, DefaultConfig(), &rng)
	p := h.Params()
	if p.Th1 != 0 || p.Th2 != 1 {
		t.Fatalf("init not clamped: %+v", p)
	}
}

func TestHistoryRecordsTrajectory(t *testing.T) {
	h := newClimber(8, DefaultConfig())
	for i := 0; i < 10; i++ {
		h.Feedback(float64(i))
	}
	hist := h.History()
	if len(hist) != 10 {
		t.Fatalf("history length = %d, want 10", len(hist))
	}
	for i, s := range hist {
		if s.Value != float64(i) {
			t.Fatalf("history[%d].Value = %v, want %d", i, s.Value, i)
		}
	}
	// The cap bounds retention.
	for i := 0; i < 400; i++ {
		h.Feedback(1)
	}
	if got := len(h.History()); got != 256 {
		t.Fatalf("history not capped: %d", got)
	}
}
