// Package tune implements the bi-dimensional stochastic hill climbing that
// Seer uses to self-tune the inference thresholds Θ₁ and Θ₂ online. The
// search space is [0,1]×[0,1]; the feedback signal is the TM throughput of
// the last epoch (commits per cycle, measured with the simulator's virtual
// clock, standing in for the paper's RDTSC measurements). With a small
// probability p the climber jumps to a random point to escape local
// optima, as in the paper (p = 0.1%).
package tune

import "seer/internal/machine"

// Params is a point in the threshold space.
type Params struct {
	Th1 float64 // lower bound on the conjunctive abort probability
	Th2 float64 // percentile cut on the conditional abort probability
}

// DefaultInit returns the paper's initial configuration
// (Θ₁ = 0.3, Θ₂ = 0.8).
func DefaultInit() Params { return Params{Th1: 0.3, Th2: 0.8} }

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func (p Params) clamped() Params {
	return Params{Th1: clamp01(p.Th1), Th2: clamp01(p.Th2)}
}

// Config sets the climber's exploration behaviour.
type Config struct {
	Step     float64 // neighbourhood radius per move
	JumpProb float64 // probability of a random restart per move
}

// DefaultConfig returns the standard settings used in the evaluation
// (step 0.06, jump probability 0.001 as in the paper).
func DefaultConfig() Config {
	return Config{Step: 0.06, JumpProb: 0.001}
}

// Sample is one evaluated point of the search trajectory.
type Sample struct {
	Point Params
	Value float64
}

// historyCap bounds the retained trajectory.
const historyCap = 256

// HillClimber explores the threshold space one epoch at a time. Protocol:
// the TM runtime configures the thresholds from Params(), runs an epoch,
// measures throughput and calls Feedback; Params() then returns the next
// point to evaluate.
type HillClimber struct {
	cfg Config
	rng *machine.Rand

	best      Params  // best point found so far
	bestValue float64 // throughput measured at best
	current   Params  // point currently being evaluated
	evaluated bool    // whether best has a measured value yet
	moves     int
	history   []Sample // most recent evaluated samples
}

// New creates a climber starting at init.
func New(init Params, cfg Config, rng *machine.Rand) *HillClimber {
	return &HillClimber{
		cfg:     cfg,
		rng:     rng,
		best:    init.clamped(),
		current: init.clamped(),
	}
}

// Params returns the thresholds to use for the next epoch.
func (h *HillClimber) Params() Params { return h.current }

// Best returns the best point found so far and its throughput.
func (h *HillClimber) Best() (Params, float64) { return h.best, h.bestValue }

// Moves returns how many feedback-driven moves have occurred (for tests
// and the tuning example).
func (h *HillClimber) Moves() int { return h.moves }

// History returns the most recent evaluated (point, throughput) samples
// in evaluation order (up to an internal cap).
func (h *HillClimber) History() []Sample {
	out := make([]Sample, len(h.history))
	copy(out, h.history)
	return out
}

// Feedback reports the throughput measured for the point returned by the
// last Params() call, and advances the search.
func (h *HillClimber) Feedback(throughput float64) {
	h.moves++
	h.history = append(h.history, Sample{Point: h.current, Value: throughput})
	if len(h.history) > historyCap {
		h.history = h.history[len(h.history)-historyCap:]
	}
	if !h.evaluated {
		// First epoch measured the initial point.
		h.evaluated = true
		h.bestValue = throughput
	} else if throughput > h.bestValue {
		h.best = h.current
		h.bestValue = throughput
	}
	h.current = h.propose()
}

// propose picks the next candidate: a random neighbour of the best point,
// or (with probability JumpProb) a uniformly random point.
func (h *HillClimber) propose() Params {
	if h.rng.Bool(h.cfg.JumpProb) {
		return Params{Th1: h.rng.Float64(), Th2: h.rng.Float64()}
	}
	p := h.best
	// Perturb one or both dimensions by ±step.
	switch h.rng.Intn(3) {
	case 0:
		p.Th1 += h.delta()
	case 1:
		p.Th2 += h.delta()
	default:
		p.Th1 += h.delta()
		p.Th2 += h.delta()
	}
	return p.clamped()
}

func (h *HillClimber) delta() float64 {
	d := h.cfg.Step * h.rng.Float64()
	if h.rng.Bool(0.5) {
		return -d
	}
	return d
}
