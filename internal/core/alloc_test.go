package core

import (
	"testing"

	"seer/internal/htm"
	"seer/internal/machine"
	"seer/internal/mem"
	"seer/internal/topology"
)

// Allocation guards for the inference hot path (the counterpart of the
// HTM-layer guards in internal/htm/alloc_test.go). The measurements run
// inside the engine body after warm-up calls so every reusable buffer is
// at steady-state capacity.

// TestSeerCommitPathZeroAllocs: the per-event monitoring — announcement,
// commit/abort registration with the activeTxs scan, release — must not
// touch the heap in steady state.
func TestSeerCommitPathZeroAllocs(t *testing.T) {
	eng, _, _, s := env(t, 2, staticOptions())
	if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		ts := s.NewThreadState(c)
		event := func(txID int) {
			s.Start(ts, txID, 0)
			s.RegisterCommit(ts, txID)
			s.RegisterAbort(ts, txID)
			s.ReleaseLocks(ts)
			s.Finish(ts)
		}
		event(0) // warm-up
		allocs := testing.AllocsPerRun(100, func() {
			event(1)
			event(2)
		})
		if allocs != 0 {
			t.Errorf("steady-state Seer event path allocates %.1f per run, want 0", allocs)
		}
	}}); err != nil {
		t.Fatal(err)
	}
}

// TestUpdateSchemeZeroAllocs: after the first update has sized the merged
// matrices, the pair bitset and the scheme rows, recomputing the locking
// scheme must be allocation-free — including updates that change which
// pairs are serialized, as long as no row outgrows its high-water mark.
func TestUpdateSchemeZeroAllocs(t *testing.T) {
	eng, _, _, s := env(t, 2, staticOptions())
	if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		ts := s.NewThreadState(c)
		// Warm-up: a dense conflict pattern sizes every row to its maximum.
		for x := 0; x < s.NumTx(); x++ {
			for y := 0; y < s.NumTx(); y++ {
				for i := 0; i < 50; i++ {
					ts.Mats().AddAbort(x, y)
					ts.Mats().IncExec(x)
				}
			}
		}
		s.UpdateScheme(c)
		if s.SchemePairs() == 0 {
			t.Fatal("warm-up scheme is empty; the guard would measure nothing")
		}
		baseline := s.SchemeReuseHits
		allocs := testing.AllocsPerRun(100, func() {
			// Fresh deltas each round keep the drain path non-trivial.
			ts.Mats().AddAbort(0, 1)
			ts.Mats().IncExec(0)
			s.UpdateScheme(c)
		})
		if allocs != 0 {
			t.Errorf("steady-state UpdateScheme allocates %.1f per run, want 0", allocs)
		}
		if s.SchemeReuseHits == baseline {
			t.Errorf("SchemeReuseHits stayed at %d across reusing updates", baseline)
		}
	}}); err != nil {
		t.Fatal(err)
	}
}

// TestAcquireReleaseTxLocksZeroAllocs: taking and releasing a non-empty
// scheme row reuses the held-locks and row-snapshot capacity.
func TestAcquireReleaseTxLocksZeroAllocs(t *testing.T) {
	opts := staticOptions()
	opts.HTMLockAcq = false // sequential acquisition: no HTM warm-up interplay
	eng, _, _, s := env(t, 2, opts)
	if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		ts := s.NewThreadState(c)
		for x := 0; x < s.NumTx(); x++ {
			for y := 0; y < s.NumTx(); y++ {
				for i := 0; i < 50; i++ {
					ts.Mats().AddAbort(x, y)
					ts.Mats().IncExec(x)
				}
			}
		}
		s.UpdateScheme(c)
		cycle := func() {
			s.Start(ts, 0, 0)
			s.AcquireLocks(ts, 0, 0, 1)
			s.ReleaseLocks(ts)
			s.Finish(ts)
		}
		cycle() // warm-up
		if s.LockAcqEvents == 0 {
			t.Fatal("no lock acquisitions; the guard would measure nothing")
		}
		// LockAcqSamples is unbounded by design (it feeds the §5.2 median);
		// presize it so the append inside the loop does not count.
		s.LockAcqSamples = make([]int, 0, 4096)
		allocs := testing.AllocsPerRun(100, func() { cycle() })
		if allocs != 0 {
			t.Errorf("steady-state lock acquire/release allocates %.1f per run, want 0", allocs)
		}
	}}); err != nil {
		t.Fatal(err)
	}
}

// TestSeerPathsZeroAllocs128Threads reruns every steady-state guard
// above on a 4-socket, 128-thread machine, with the measured body on
// the highest thread id — the shape where the multi-word bitsets
// (activeTxs scans, lock rows, pair sets) would first allocate if they
// regressed to anything per-thread-count on the hot path.
func TestSeerPathsZeroAllocs128Threads(t *testing.T) {
	topo := topology.Multi(4, 16, 2)
	opts := staticOptions()
	opts.HTMLockAcq = false
	cfg := machine.Config{Topo: topo, Seed: 11, Cost: machine.DefaultCostModel()}
	eng, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(1 << 12)
	u := htm.New(m, cfg, htm.Config{ReadSetLines: 64, WriteSetLines: 16})
	rng := machine.NewRand(5)
	s := New(3, cfg, m, u, opts, &rng)

	bodies := make([]func(*machine.Ctx), topo.Threads())
	bodies[topo.Threads()-1] = func(c *machine.Ctx) {
		ts := s.NewThreadState(c)
		for x := 0; x < s.NumTx(); x++ {
			for y := 0; y < s.NumTx(); y++ {
				for i := 0; i < 50; i++ {
					ts.Mats().AddAbort(x, y)
					ts.Mats().IncExec(x)
				}
			}
		}
		s.UpdateScheme(c)
		if s.SchemePairs() == 0 {
			t.Error("warm-up scheme is empty; the guard would measure nothing")
			return
		}
		cycle := func() {
			s.Start(ts, 0, 0)
			s.AcquireLocks(ts, 0, 0, 1)
			s.RegisterCommit(ts, 0)
			s.ReleaseLocks(ts)
			s.Finish(ts)
			ts.Mats().AddAbort(0, 1)
			ts.Mats().IncExec(0)
			s.UpdateScheme(c)
		}
		cycle() // warm-up
		s.LockAcqSamples = make([]int, 0, 4096)
		allocs := testing.AllocsPerRun(100, func() { cycle() })
		if allocs != 0 {
			t.Errorf("128-thread steady-state Seer path allocates %.1f per run, want 0", allocs)
		}
	}
	if _, err := eng.Run(bodies); err != nil {
		t.Fatal(err)
	}
}
