package core

import (
	"testing"

	"seer/internal/htm"
	"seer/internal/machine"
	"seer/internal/mem"
)

// benchSeer builds a Seer instance with numTx blocks on an 8-thread
// machine for inference micro-benchmarks.
func benchSeer(b *testing.B, numTx int) (*machine.Engine, *Seer) {
	b.Helper()
	cfg := machine.DefaultConfig()
	eng, err := machine.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	m := mem.New(1 << 14)
	u := htm.New(m, cfg, htm.Config{ReadSetLines: 64, WriteSetLines: 16})
	rng := machine.NewRand(5)
	opts := DefaultOptions()
	opts.HillClimb = false
	return eng, New(numTx, cfg, m, u, opts, &rng)
}

// BenchmarkScanActive measures the per-event monitoring cost (Algorithm 3)
// with a full active-transactions list — the worst case the epoch-stamped
// dedup has to handle.
func BenchmarkScanActive(b *testing.B) {
	eng, s := benchSeer(b, 8)
	if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		ts := s.NewThreadState(c)
		// Populate every other thread's slot so each scan dedups a full list.
		for hw := 1; hw < 8; hw++ {
			s.activeTxs[hw] = int32(hw % s.numTx)
		}
		s.Start(ts, 0, 0)
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			s.scanActive(ts, 0, n%4 == 0)
		}
	}}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkUpdateScheme measures one scheme recomputation (Algorithm 5)
// over dense statistics at steady state, where all scratch is reused.
func BenchmarkUpdateScheme(b *testing.B) {
	eng, s := benchSeer(b, 16)
	if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		ts := s.NewThreadState(c)
		seed := func() {
			for x := 0; x < s.numTx; x++ {
				for y := 0; y < s.numTx; y++ {
					if (x+y)%3 == 0 {
						ts.Mats().AddAbort(x, y)
					} else {
						ts.Mats().AddCommit(x, y)
					}
					ts.Mats().IncExec(x)
				}
			}
		}
		seed()
		s.UpdateScheme(c) // warm-up sizes all rows
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			seed()
			s.UpdateScheme(c)
		}
	}}); err != nil {
		b.Fatal(err)
	}
}
