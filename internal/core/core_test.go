package core

import (
	"testing"

	"seer/internal/htm"
	"seer/internal/machine"
	"seer/internal/mem"
	"seer/internal/spinlock"
	"seer/internal/topology"
	"seer/internal/tune"
)

// env builds a machine + memory + HTM + Seer instance for scheduler-level
// tests.
func env(t *testing.T, threads int, opts Options) (*machine.Engine, *mem.Memory, *htm.Unit, *Seer) {
	t.Helper()
	cfg := machine.Config{Topo: topology.MustFromFlat(threads, (threads+1)/2), Seed: 11, Cost: machine.DefaultCostModel()}
	eng, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(1 << 12)
	u := htm.New(m, cfg, htm.Config{ReadSetLines: 64, WriteSetLines: 16})
	rng := machine.NewRand(5)
	s := New(3, cfg, m, u, opts, &rng)
	return eng, m, u, s
}

func staticOptions() Options {
	o := DefaultOptions()
	o.HillClimb = false
	return o
}

func TestAnnouncement(t *testing.T) {
	eng, _, _, s := env(t, 2, staticOptions())
	if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		ts := s.NewThreadState(c)
		s.Start(ts, 2, 0)
		if got := s.ActiveTxs()[0]; got != 2 {
			t.Errorf("activeTxs[0] = %d, want 2", got)
		}
		s.Finish(ts)
		if got := s.ActiveTxs()[0]; got != NoTx {
			t.Errorf("activeTxs[0] = %d after finish, want NoTx", got)
		}
	}}); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterScansConcurrent(t *testing.T) {
	eng, _, _, s := env(t, 2, staticOptions())
	bodies := []func(*machine.Ctx){
		func(c *machine.Ctx) {
			ts := s.NewThreadState(c)
			s.Start(ts, 0, 0)
			c.Tick(50)
			// Thread 1 announced tx 1 by now; this commit must record it.
			s.RegisterCommit(ts, 0)
			s.RegisterAbort(ts, 0)
			s.Finish(ts)
			if ts.Mats().Commits(0, 1) != 1 {
				t.Errorf("commitStats[0][1] = %d, want 1", ts.Mats().Commits(0, 1))
			}
			if ts.Mats().Aborts(0, 1) != 1 {
				t.Errorf("abortStats[0][1] = %d, want 1", ts.Mats().Aborts(0, 1))
			}
			if ts.Mats().Execs(0) != 2 {
				t.Errorf("executions[0] = %d, want 2", ts.Mats().Execs(0))
			}
		},
		func(c *machine.Ctx) {
			ts := s.NewThreadState(c)
			s.Start(ts, 1, 0)
			c.Tick(1000)
			s.Finish(ts)
		},
	}
	if _, err := eng.Run(bodies); err != nil {
		t.Fatal(err)
	}
}

// TestRegisterDeduplicatesBlocks: several threads running the same block
// count once per event, keeping the estimators valid probabilities.
func TestRegisterDeduplicatesBlocks(t *testing.T) {
	eng, _, _, s := env(t, 4, staticOptions())
	bodies := make([]func(*machine.Ctx), 4)
	bodies[0] = func(c *machine.Ctx) {
		ts := s.NewThreadState(c)
		s.Start(ts, 0, 0)
		c.Tick(100)
		s.RegisterAbort(ts, 0)
		s.Finish(ts)
		if got := ts.Mats().Aborts(0, 1); got != 1 {
			t.Errorf("abortStats[0][1] = %d, want 1 (deduplicated)", got)
		}
	}
	for i := 1; i < 4; i++ {
		bodies[i] = func(c *machine.Ctx) {
			ts := s.NewThreadState(c)
			s.Start(ts, 1, 0) // three threads all running block 1
			c.Tick(1000)
			s.Finish(ts)
		}
	}
	if _, err := eng.Run(bodies); err != nil {
		t.Fatal(err)
	}
}

// TestUpdateSchemeInfersConflict: feed statistics where block 0 aborts
// overwhelmingly with block 1 active, and check the scheme links them
// both ways.
func TestUpdateSchemeInfersConflict(t *testing.T) {
	eng, _, _, s := env(t, 1, staticOptions())
	if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		ts := s.NewThreadState(c)
		for i := 0; i < 100; i++ {
			ts.Mats().IncExec(0)
			ts.Mats().AddAbort(0, 1)
		}
		for i := 0; i < 100; i++ {
			ts.Mats().IncExec(0)
			ts.Mats().AddCommit(0, 2)
		}
		for i := 0; i < 30; i++ {
			// Noise: occasional aborts seen with block 2 active.
			ts.Mats().IncExec(0)
			ts.Mats().AddAbort(0, 2)
		}
		s.UpdateScheme(c)
	}}); err != nil {
		t.Fatal(err)
	}
	scheme := s.Scheme()
	if len(scheme[0]) != 1 || scheme[0][0] != 1 {
		t.Fatalf("scheme[0] = %v, want [1]", scheme[0])
	}
	if len(scheme[1]) != 1 || scheme[1][0] != 0 {
		t.Fatalf("scheme[1] = %v, want [0] (locks are mutual)", scheme[1])
	}
	if len(scheme[2]) != 0 {
		t.Fatalf("scheme[2] = %v, want empty (below thresholds)", scheme[2])
	}
}

// TestUpdateSchemeSelfConflict: a single hot block that conflicts with
// itself gets its own lock (the degenerate single-candidate case).
func TestUpdateSchemeSelfConflict(t *testing.T) {
	eng, _, _, s := env(t, 1, staticOptions())
	if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		ts := s.NewThreadState(c)
		for i := 0; i < 100; i++ {
			ts.Mats().IncExec(0)
			ts.Mats().AddAbort(0, 0)
		}
		for i := 0; i < 50; i++ {
			ts.Mats().IncExec(0)
			ts.Mats().AddCommit(0, 0)
		}
		s.UpdateScheme(c)
	}}); err != nil {
		t.Fatal(err)
	}
	if got := s.Scheme()[0]; len(got) != 1 || got[0] != 0 {
		t.Fatalf("scheme[0] = %v, want [0]", got)
	}
}

// TestUpdateSchemeBelowTh1Empty: rare conflicts stay unserialized.
func TestUpdateSchemeBelowTh1Empty(t *testing.T) {
	eng, _, _, s := env(t, 1, staticOptions())
	if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		ts := s.NewThreadState(c)
		for i := 0; i < 1000; i++ {
			ts.Mats().IncExec(0)
			ts.Mats().AddCommit(0, 1)
		}
		for i := 0; i < 10; i++ { // 1% conjunctive abort probability
			ts.Mats().IncExec(0)
			ts.Mats().AddAbort(0, 1)
		}
		s.UpdateScheme(c)
	}}); err != nil {
		t.Fatal(err)
	}
	for x, row := range s.Scheme() {
		if len(row) != 0 {
			t.Fatalf("scheme[%d] = %v, want empty under 1%% contention", x, row)
		}
	}
}

// TestAcquireReleaseTxLocks: the last-attempt acquisition takes the
// scheme's locks in order and releases them all.
func TestAcquireReleaseTxLocks(t *testing.T) {
	eng, m, _, s := env(t, 1, staticOptions())
	if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		ts := s.NewThreadState(c)
		// Force a scheme where block 0 takes locks 1 and 2.
		for i := 0; i < 100; i++ {
			ts.Mats().IncExec(0)
			ts.Mats().AddAbort(0, 1)
			ts.Mats().AddAbort(0, 2)
		}
		s.UpdateScheme(c)

		s.Start(ts, 0, 0)
		s.AcquireLocks(ts, 0, htm.BitConflict, 1)
		if !ts.AcquiredTxLocks || !ts.HoldsTxLocks() {
			t.Errorf("locks not acquired on the last attempt")
		}
		if !s.TxLock(1).LockedFast(m) || !s.TxLock(2).LockedFast(m) {
			t.Errorf("tx locks not held")
		}
		s.ReleaseLocks(ts)
		if s.TxLock(1).LockedFast(m) || s.TxLock(2).LockedFast(m) {
			t.Errorf("tx locks not released")
		}
		s.Finish(ts)
	}}); err != nil {
		t.Fatal(err)
	}
}

// TestAcquireOnlyOnLastAttempt: locks must not be taken while attempts
// remain.
func TestAcquireOnlyOnLastAttempt(t *testing.T) {
	eng, m, _, s := env(t, 1, staticOptions())
	if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		ts := s.NewThreadState(c)
		for i := 0; i < 100; i++ {
			ts.Mats().IncExec(0)
			ts.Mats().AddAbort(0, 1)
		}
		s.UpdateScheme(c)
		s.Start(ts, 0, 0)
		s.AcquireLocks(ts, 0, htm.BitConflict, 3)
		if ts.HoldsTxLocks() || s.TxLock(1).LockedFast(m) {
			t.Errorf("locks taken with 3 attempts left")
		}
		s.ReleaseLocks(ts)
		s.Finish(ts)
	}}); err != nil {
		t.Fatal(err)
	}
}

// TestCoreLockOnCapacity: a capacity abort acquires the physical core's
// lock; a conflict abort does not.
func TestCoreLockOnCapacity(t *testing.T) {
	eng, m, _, s := env(t, 2, staticOptions())
	if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		ts := s.NewThreadState(c)
		s.Start(ts, 0, 0)
		s.AcquireLocks(ts, 0, htm.BitConflict|htm.BitRetry, 3)
		if ts.AcquiredCoreLock {
			t.Errorf("core lock taken on a conflict abort")
		}
		s.AcquireLocks(ts, 0, htm.BitCapacity, 3)
		if !ts.AcquiredCoreLock {
			t.Errorf("core lock not taken on a capacity abort")
		}
		if !s.CoreLock(0).LockedFast(m) {
			t.Errorf("core 0's lock not held")
		}
		s.ReleaseLocks(ts)
		if s.CoreLock(0).LockedFast(m) {
			t.Errorf("core lock not released")
		}
		s.Finish(ts)
	}}); err != nil {
		t.Fatal(err)
	}
}

// TestVariantGating: disabled options never acquire locks.
func TestVariantGating(t *testing.T) {
	opts := staticOptions()
	opts.TxLocks = false
	opts.CoreLocks = false
	eng, m, _, s := env(t, 1, opts)
	if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		ts := s.NewThreadState(c)
		for i := 0; i < 100; i++ {
			ts.Mats().IncExec(0)
			ts.Mats().AddAbort(0, 1)
		}
		s.UpdateScheme(c)
		s.Start(ts, 0, 0)
		s.AcquireLocks(ts, 0, htm.BitCapacity|htm.BitConflict, 1)
		if ts.HoldsTxLocks() || ts.AcquiredCoreLock {
			t.Errorf("profile-only variant acquired locks")
		}
		if s.TxLock(1).LockedFast(m) || s.CoreLock(0).LockedFast(m) {
			t.Errorf("locks held in memory under profile-only variant")
		}
		s.Finish(ts)
	}}); err != nil {
		t.Fatal(err)
	}
}

// TestWaitLocksCooperates: a thread whose block's lock is held waits
// (bounded) until the holder releases.
func TestWaitLocksCooperates(t *testing.T) {
	eng, m, _, s := env(t, 2, staticOptions())
	sgl := spinlock.New(m)
	var waitedUntil uint64
	bodies := []func(*machine.Ctx){
		func(c *machine.Ctx) {
			// Hold block 0's lock for a while.
			s.TxLock(0).Acquire(c, m)
			c.Tick(500)
			s.TxLock(0).ReleaseOwned(c, m)
		},
		func(c *machine.Ctx) {
			ts := s.NewThreadState(c)
			c.Tick(100)
			s.Start(ts, 0, 0)
			s.WaitLocks(ts, 0, sgl)
			waitedUntil = c.Clock()
			s.Finish(ts)
		},
	}
	if _, err := eng.Run(bodies); err != nil {
		t.Fatal(err)
	}
	if waitedUntil < 500 {
		t.Fatalf("thread did not cooperate with the lock holder (resumed at %d)", waitedUntil)
	}
}

// TestWaitLocksSGLLemmingAvoidance: threads wait out the single-global
// lock before starting.
func TestWaitLocksSGLLemmingAvoidance(t *testing.T) {
	eng, m, _, s := env(t, 2, staticOptions())
	sgl := spinlock.New(m)
	var resumed uint64
	bodies := []func(*machine.Ctx){
		func(c *machine.Ctx) {
			sgl.Acquire(c, m)
			c.Tick(800)
			sgl.Release(c, m)
		},
		func(c *machine.Ctx) {
			ts := s.NewThreadState(c)
			c.Tick(50)
			s.Start(ts, 1, 0)
			s.WaitLocks(ts, 1, sgl)
			resumed = c.Clock()
			s.Finish(ts)
		},
	}
	if _, err := eng.Run(bodies); err != nil {
		t.Fatal(err)
	}
	if resumed < 800 {
		t.Fatalf("thread started under a held SGL (resumed at %d)", resumed)
	}
}

// TestHillClimbAdjustsThresholds: after enough epochs the thresholds move
// away from the initial point.
func TestHillClimbAdjustsThresholds(t *testing.T) {
	opts := DefaultOptions()
	opts.EpochExecs = 10
	eng, _, _, s := env(t, 1, opts)
	if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		ts := s.NewThreadState(c)
		for round := 0; round < 30; round++ {
			for i := 0; i < 12; i++ {
				s.Start(ts, 0, 0)
				s.RegisterCommit(ts, 0)
				s.Finish(ts)
			}
			s.UpdateScheme(c)
			s.maybeTune(c)
			c.Tick(100)
		}
	}}); err != nil {
		t.Fatal(err)
	}
	if s.Tuner() == nil {
		t.Fatalf("tuner missing with HillClimb enabled")
	}
	if s.Tuner().Moves() == 0 {
		t.Fatalf("tuner never received feedback")
	}
	init := tune.DefaultInit()
	th := s.Thresholds()
	if th == init {
		t.Fatalf("thresholds never moved from %+v", init)
	}
}

// TestSchemeRowsSorted: rows come out sorted (deadlock-free acquisition
// order).
func TestSchemeRowsSorted(t *testing.T) {
	eng, _, _, s := env(t, 1, staticOptions())
	if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		ts := s.NewThreadState(c)
		for i := 0; i < 100; i++ {
			ts.Mats().IncExec(1)
			ts.Mats().AddAbort(1, 2)
			ts.Mats().AddAbort(1, 0)
		}
		s.UpdateScheme(c)
	}}); err != nil {
		t.Fatal(err)
	}
	row := s.Scheme()[1]
	for i := 1; i < len(row); i++ {
		if row[i-1] >= row[i] {
			t.Fatalf("scheme row not sorted: %v", row)
		}
	}
}

// TestObjLockStripes: with the object-granular extension, transactions of
// the same block but different objects take different locks.
func TestObjLockStripes(t *testing.T) {
	opts := staticOptions()
	opts.ObjLocks = true
	opts.ObjStripes = 4
	eng, m, _, s := env(t, 1, opts)
	if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		ts := s.NewThreadState(c)
		for i := 0; i < 100; i++ {
			ts.Mats().IncExec(0)
			ts.Mats().AddAbort(0, 0)
		}
		s.UpdateScheme(c)

		// Acquire with object 1, then check that a different object's
		// stripe is (very likely) still free while object 1's is held.
		s.Start(ts, 0, 1)
		s.AcquireLocks(ts, 0, htm.BitConflict, 1)
		if !ts.HoldsTxLocks() {
			t.Fatalf("no stripe lock acquired")
		}
		heldStripes := 0
		for st := 0; st < 4; st++ {
			if s.ObjLock(0, st).LockedFast(m) {
				heldStripes++
			}
		}
		if heldStripes != 1 {
			t.Fatalf("%d stripes held, want exactly 1", heldStripes)
		}
		s.ReleaseLocks(ts)
		for st := 0; st < 4; st++ {
			if s.ObjLock(0, st).LockedFast(m) {
				t.Fatalf("stripe %d not released", st)
			}
		}
		s.Finish(ts)
	}}); err != nil {
		t.Fatal(err)
	}
}

// TestSampledStatsStayUnbiased: with SampleShift the conditional
// probability estimate converges to the same value as full profiling.
func TestSampledStatsStayUnbiased(t *testing.T) {
	run := func(shift uint) float64 {
		opts := staticOptions()
		opts.SampleShift = shift
		eng, _, _, s := env(t, 2, opts)
		var p float64
		if _, err := eng.Run([]func(*machine.Ctx){
			func(c *machine.Ctx) {
				ts := s.NewThreadState(c)
				// 2000 events: 25% aborts with block 1 active.
				for i := 0; i < 2000; i++ {
					s.Start(ts, 0, 0)
					if i%4 == 0 {
						s.RegisterAbort(ts, 0)
					} else {
						s.RegisterCommit(ts, 0)
					}
					s.Finish(ts)
				}
				s.UpdateScheme(c)
				p = s.Merged().CondAbortProb(0, 1)
			},
			func(c *machine.Ctx) {
				ts := s.NewThreadState(c)
				s.Start(ts, 1, 0)
				c.Tick(1 << 22) // stay active throughout
				s.Finish(ts)
			},
		}); err != nil {
			t.Fatal(err)
		}
		return p
	}
	full := run(0)
	sampled := run(2)
	if full < 0.2 || full > 0.3 {
		t.Fatalf("full estimate %v, want ≈0.25", full)
	}
	if sampled < 0.15 || sampled > 0.35 {
		t.Fatalf("sampled estimate %v drifted from ≈0.25 (biased)", sampled)
	}
}

// TestSampledStatsCheaper: sampling reduces the profiling time spent.
func TestSampledStatsCheaper(t *testing.T) {
	run := func(shift uint) uint64 {
		opts := staticOptions()
		opts.SampleShift = shift
		eng, _, _, s := env(t, 1, opts)
		var clock uint64
		if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
			ts := s.NewThreadState(c)
			for i := 0; i < 1000; i++ {
				s.Start(ts, 0, 0)
				s.RegisterCommit(ts, 0)
				s.Finish(ts)
			}
			clock = c.Clock()
		}}); err != nil {
			t.Fatal(err)
		}
		return clock
	}
	if full, sampled := run(0), run(3); sampled >= full {
		t.Fatalf("sampling not cheaper: %d vs %d cycles", sampled, full)
	}
}

// TestPreciseOracleBlamesOnlyConflictor: under the oracle-input variant,
// an abort increments only the true conflictor's pair, not every active
// block.
func TestPreciseOracleBlamesOnlyConflictor(t *testing.T) {
	opts := staticOptions()
	opts.PreciseOracle = true
	eng, m, u, s := env(t, 4, opts)
	a := m.AllocLines(1)
	bodies := []func(*machine.Ctx){
		func(c *machine.Ctx) {
			ts := s.NewThreadState(c)
			s.Start(ts, 0, 0)
			st := u.Run(c, func(tx *htm.Tx) {
				tx.Store(a, 1)
				tx.Work(500) // doomed by thread 1 below
			})
			if !st.Conflict() {
				t.Errorf("expected a conflict abort, got %v", st)
			}
			s.RegisterAbort(ts, 0)
			s.Finish(ts)
			if got := ts.Mats().Aborts(0, 1); got != 1 {
				t.Errorf("abortStats[0][conflictor-block] = %d, want 1", got)
			}
			if got := ts.Mats().Aborts(0, 2); got != 0 {
				t.Errorf("innocent bystander blamed: abortStats[0][2] = %d", got)
			}
		},
		func(c *machine.Ctx) {
			ts := s.NewThreadState(c)
			s.Start(ts, 1, 0) // the actual conflictor runs block 1
			c.Tick(100)
			u.Run(c, func(tx *htm.Tx) { tx.Store(a, 2) })
			// Stay announced while the victim registers its abort (in
			// real runs the conflictor's slot usually still holds its
			// block, or the loss is absorbed statistically).
			c.Tick(3000)
			s.Finish(ts)
		},
		func(c *machine.Ctx) {
			ts := s.NewThreadState(c)
			s.Start(ts, 2, 0) // innocent bystander runs block 2
			c.Tick(2000)
			s.Finish(ts)
		},
	}
	if _, err := eng.Run(bodies); err != nil {
		t.Fatal(err)
	}
}

// TestNoDeadlockUnderLockChurn is a regression stress test for the
// bounded cooperative waits: threads mix capacity-style core-lock
// acquisitions with tx-lock acquisitions and cooperative waits for many
// iterations; the run must terminate (the unbounded-wait variant of
// WAIT-Seer-LOCKS can deadlock a tx-lock holder against a core-lock
// holder).
func TestNoDeadlockUnderLockChurn(t *testing.T) {
	opts := staticOptions()
	eng, m, _, s := env(t, 4, opts)
	sgl := spinlock.New(m)
	bodies := make([]func(*machine.Ctx), 4)
	for i := range bodies {
		id := i
		bodies[i] = func(c *machine.Ctx) {
			ts := s.NewThreadState(c)
			// Seed statistics so every block serializes with every
			// other (worst-case dense scheme).
			if id == 0 {
				for x := 0; x < 3; x++ {
					for y := 0; y < 3; y++ {
						for k := 0; k < 50; k++ {
							ts.Mats().IncExec(x)
							ts.Mats().AddAbort(x, y)
						}
					}
				}
				s.UpdateScheme(c)
			}
			for n := 0; n < 120; n++ {
				tx := (id + n) % 3
				s.Start(ts, tx, uint64(n))
				s.WaitLocks(ts, tx, sgl)
				// Alternate capacity and conflict abort patterns.
				if n%2 == 0 {
					s.AcquireLocks(ts, tx, htm.BitCapacity, 2)
				}
				s.AcquireLocks(ts, tx, htm.BitConflict, 1)
				c.Tick(uint64(5 + c.Rand().Intn(30)))
				s.RegisterCommit(ts, tx)
				s.ReleaseLocks(ts)
				s.Finish(ts)
			}
		}
	}
	// MaxCycles guards the test itself: if the locks deadlock, the engine
	// reports instead of hanging.
	eng2, err := machine.New(machine.Config{
		Topo: topology.SMT2(2), Seed: 11,
		MaxCycles: 1 << 26, Cost: machine.DefaultCostModel(),
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = eng
	if _, err := eng2.Run(bodies); err != nil {
		t.Fatalf("lock churn did not terminate: %v", err)
	}
}
