// Package core implements Seer, the probabilistic transaction scheduler of
// the paper (Algorithms 1–5 and the data structures of Table 2).
//
// Seer compensates for the coarse abort feedback of best-effort HTM: it
// announces running transactions in a global activeTxs array, samples that
// array on every commit/abort into per-thread statistics matrices, and
// periodically turns the merged statistics into a fine-grained dynamic
// locking scheme. A pair of atomic blocks (x, y) is serialized when
//
//	P(x aborts ∩ x‖y) > Θ₁   and   P(x aborts | x‖y) > Θ₂-percentile of
//	                                a Gaussian fitted to row x
//
// in which case x and y acquire each other's transaction lock on their
// last hardware attempt. Core locks additionally serialize hyperthread
// siblings of a physical core when capacity aborts are observed. Θ₁ and
// Θ₂ self-tune via stochastic hill climbing on measured throughput.
package core

import (
	"math"
	"math/bits"

	"seer/internal/htm"
	"seer/internal/machine"
	"seer/internal/mem"
	"seer/internal/spinlock"
	"seer/internal/stats"
	"seer/internal/trace"
	"seer/internal/tune"
)

// NoTx is the empty slot value in the active-transactions array.
const NoTx int32 = -1

// Options selects which of Seer's mechanisms are enabled. The full
// scheduler enables everything; the evaluation's ablation variants
// (Figures 4 and 5) switch mechanisms off cumulatively.
type Options struct {
	TxLocks    bool // acquire per-transaction locks on the last attempt
	CoreLocks  bool // acquire per-core locks on capacity aborts
	HTMLockAcq bool // batch multi-lock acquisition in a hardware transaction
	HillClimb  bool // self-tune Θ₁/Θ₂ (otherwise static thresholds)

	// ObjLocks enables the object-granular locking scheme sketched in
	// the paper's future work (§6): instead of one lock per atomic
	// block, each block owns ObjStripes locks and a transaction takes
	// the stripe selected by the object identifier it passed to
	// AtomicObj. Transactions of conflict-prone blocks that manipulate
	// different objects then proceed in parallel.
	ObjLocks bool
	// ObjStripes is the number of per-block lock stripes (default 8).
	ObjStripes int

	// PreciseOracle feeds the inference with the TRUE conflictor of
	// every conflict abort (via the simulator-only htm.LastConflictor)
	// instead of blaming every concurrently active block. No real HTM
	// can provide this; the variant exists to measure how much of the
	// value of precise feedback Seer's probabilistic filtering recovers
	// (see seerbench -experiment ext).
	PreciseOracle bool

	// SampleShift enables the probabilistic-sampling extension of the
	// paper's future work (§6, citing Dice et al.'s scalable statistics
	// counters): commit/abort events update the statistics matrices
	// with probability 2^-SampleShift instead of always, cutting the
	// monitoring overhead proportionally. The estimators stay unbiased
	// because commits and aborts are sampled at the same rate. 0 keeps
	// the paper's always-on profiling.
	SampleShift uint

	// UpdateEvery is the number of executions between lock-scheme
	// recomputations (the paper recomputes opportunistically while
	// waiting on the fall-back lock; the period bounds staleness when
	// the fall-back is rarely used).
	UpdateEvery uint64
	// EpochExecs is the number of executions per hill-climbing epoch.
	EpochExecs uint64
	// Tuner configures the hill climber.
	Tuner tune.Config
	// Init sets the starting thresholds.
	Init tune.Params
}

// DefaultOptions enables the full Seer scheduler with the paper's
// parameters.
func DefaultOptions() Options {
	return Options{
		TxLocks:     true,
		CoreLocks:   true,
		HTMLockAcq:  true,
		HillClimb:   true,
		UpdateEvery: 768,
		EpochExecs:  3000,
		ObjStripes:  8,
		Tuner:       tune.DefaultConfig(),
		Init:        tune.DefaultInit(),
	}
}

// ProfileOnly returns options where Seer monitors, infers and tunes but
// never acquires a lock — the overhead-measurement variant of Figure 4.
func ProfileOnly() Options {
	o := DefaultOptions()
	o.TxLocks = false
	o.CoreLocks = false
	o.HTMLockAcq = false
	return o
}

// ThreadState is the per-thread metadata of the paper's `thread` variable.
// The TM runtime owns one per worker and passes it to every Seer call.
type ThreadState struct {
	Ctx              *machine.Ctx
	AcquiredTxLocks  bool
	AcquiredCoreLock bool

	// heldTxLocks snapshots the locks actually acquired, so release
	// stays correct even if the scheme is swapped mid-transaction. Its
	// capacity is reused across transactions.
	heldTxLocks []spinlock.Lock

	// obj is the object identifier of the in-flight transaction
	// (AtomicObj), selecting the lock stripe under ObjLocks.
	obj uint64

	mats *stats.Matrices // per-thread commit/abort statistics

	// seen deduplicates atomic blocks within one activeTxs scan. A slot
	// counts as marked when it holds the current epoch, so starting a new
	// scan is one counter increment instead of an O(numTx) clear.
	seen      []uint32
	seenEpoch uint32

	// rowScratch holds the thread's private copy of its scheme row during
	// lock acquisition: the scheme table is rebuilt in place by
	// UpdateScheme, which may run (on thread 0) while this thread is
	// suspended mid-acquisition.
	rowScratch []int
}

// Mats exposes the thread's statistics matrices (tests and inspection).
func (t *ThreadState) Mats() *stats.Matrices { return t.mats }

// HoldsTxLocks reports whether the thread actually holds any transaction
// locks (AcquiredTxLocks is also set when the scheme row was empty, to
// avoid re-running the acquisition on later attempts).
func (t *ThreadState) HoldsTxLocks() bool { return len(t.heldTxLocks) > 0 }

// Seer is the scheduler instance shared by all workers of a system.
type Seer struct {
	numTx int
	mach  machine.Config
	mem   *mem.Memory
	htm   *htm.Unit
	opts  Options

	activeTxs []int32           // one single-writer slot per hardware thread
	threads   []*ThreadState    // all registered thread states
	merged    *stats.Matrices   // global matrices, fed per-thread deltas on update
	scheme    [][]int           // locksToAcquire: row per tx, sorted lock ids
	txLocks   []spinlock.Lock   // one per atomic block
	objLocks  [][]spinlock.Lock // per block × stripe, when ObjLocks is on
	coreLocks []spinlock.Lock   // one per physical core
	tuner     *tune.HillClimber
	th        tune.Params
	trc       *trace.Log // nil disables scheduler event tracing

	// Reusable scratch for UpdateScheme, so the periodic recomputation is
	// allocation-free in steady state. schemeBits is a flat numTx×numTx
	// bitset (schemeWords words per row) of serialized pairs from which
	// the scheme rows are rebuilt in place.
	schemeBits    []uint64
	schemeWords   int
	updRow        []float64
	updCandidates []int
	updCondVals   []float64

	// Bookkeeping for periodic updates and tuning epochs.
	execsSinceUpdate uint64
	epochExecs       uint64
	epochCommits     uint64
	epochStartCycles uint64

	// Accounting for the evaluation (§5.2: fraction of tx locks taken).
	LockAcqEvents  uint64 // times a non-empty tx-lock row was acquired
	LockAcqSamples []int  // row sizes at acquisition time
	SchemeUpdates  uint64
	MultiCASOk     uint64
	MultiCASFail   uint64
	// SchemeReuseHits counts scheme updates that completed without growing
	// any row's capacity — the steady-state, allocation-free case.
	SchemeReuseHits uint64
}

// New creates a Seer instance for numTx atomic blocks on the given
// machine. Locks are allocated from the simulated memory.
func New(numTx int, mach machine.Config, m *mem.Memory, u *htm.Unit, opts Options, rng *machine.Rand) *Seer {
	s := &Seer{
		numTx:     numTx,
		mach:      mach,
		mem:       m,
		htm:       u,
		opts:      opts,
		activeTxs: make([]int32, mach.HWThreads()),
		merged:    stats.NewMatrices(numTx),
		scheme:    make([][]int, numTx),
		txLocks:   make([]spinlock.Lock, numTx),
		coreLocks: make([]spinlock.Lock, mach.PhysCores()),
		th:        opts.Init,

		schemeWords:   (numTx + 63) / 64,
		updRow:        make([]float64, numTx),
		updCandidates: make([]int, 0, numTx),
		updCondVals:   make([]float64, 0, numTx),
	}
	s.schemeBits = make([]uint64, numTx*s.schemeWords)
	for i := range s.activeTxs {
		s.activeTxs[i] = NoTx
	}
	for i := range s.txLocks {
		s.txLocks[i] = spinlock.New(m)
	}
	if opts.ObjLocks {
		if opts.ObjStripes <= 0 {
			opts.ObjStripes = 8
			s.opts.ObjStripes = 8
		}
		s.objLocks = make([][]spinlock.Lock, numTx)
		for i := range s.objLocks {
			s.objLocks[i] = make([]spinlock.Lock, opts.ObjStripes)
			for j := range s.objLocks[i] {
				s.objLocks[i][j] = spinlock.New(m)
			}
		}
	}
	for i := range s.coreLocks {
		s.coreLocks[i] = spinlock.New(m)
	}
	if opts.HillClimb {
		s.tuner = tune.New(opts.Init, opts.Tuner, rng)
		s.th = s.tuner.Params()
	}
	return s
}

// NumTx returns the number of atomic blocks.
func (s *Seer) NumTx() int { return s.numTx }

// SetTrace attaches an event log; scheme updates, threshold re-tunings
// and scheduler lock operations are then recorded on it.
func (s *Seer) SetTrace(l *trace.Log) { s.trc = l }

// SchemePairs returns the number of serialized (x, y) block pairs in the
// current locking scheme, counting each unordered pair once.
func (s *Seer) SchemePairs() int {
	pairs := 0
	for x, row := range s.scheme {
		for _, y := range row {
			if y >= x {
				pairs++
			}
		}
	}
	return pairs
}

// Thresholds returns the current (Θ₁, Θ₂).
func (s *Seer) Thresholds() tune.Params { return s.th }

// Scheme returns the current locksToAcquire table (rows of sorted lock
// ids). The returned slices must not be modified, and are rebuilt in
// place by the next scheme update.
func (s *Seer) Scheme() [][]int { return s.scheme }

// Merged returns the last merged global statistics (for inspection).
func (s *Seer) Merged() *stats.Matrices { return s.merged }

// SnapshotLearned fills dst with the scheduler's current learned
// statistics: the merged global matrices plus every thread's
// not-yet-drained delta, without disturbing either (UpdateScheme drains
// the deltas for real). Read-only introspection for the inference-quality
// accumulator (internal/txtrace); dst must be sized for NumTx blocks.
func (s *Seer) SnapshotLearned(dst *stats.Matrices) {
	dst.Reset()
	dst.MergeFrom(s.merged)
	for _, t := range s.threads {
		dst.MergeFrom(t.mats)
	}
}

// Tuner returns the hill climber, or nil when self-tuning is disabled.
func (s *Seer) Tuner() *tune.HillClimber { return s.tuner }

// NewThreadState registers a worker thread with the scheduler.
func (s *Seer) NewThreadState(ctx *machine.Ctx) *ThreadState {
	t := &ThreadState{Ctx: ctx, mats: stats.NewMatrices(s.numTx), seen: make([]uint32, s.numTx)}
	s.threads = append(s.threads, t)
	return t
}

// --- Algorithm 1/2 fragments: announcement ---

// Start announces txID in the active-transactions list (one plain store;
// the slot is a single-writer multi-reader register) and resets the
// per-transaction lock flags. obj selects the lock stripe when the
// object-granular extension is enabled (pass 0 otherwise).
func (s *Seer) Start(t *ThreadState, txID int, obj uint64) {
	t.AcquiredTxLocks = false
	t.AcquiredCoreLock = false
	t.heldTxLocks = t.heldTxLocks[:0]
	t.obj = obj
	t.Ctx.Tick(t.Ctx.Cost().DirectStore)
	s.activeTxs[t.Ctx.ID()] = int32(txID)
}

// lockFor returns the lock a transaction of block id with t's object
// identifier must take: the block's stripe under ObjLocks, the block
// lock otherwise.
func (s *Seer) lockFor(t *ThreadState, id int) spinlock.Lock {
	if s.opts.ObjLocks {
		stripe := int(mix64(t.obj) % uint64(s.opts.ObjStripes))
		return s.objLocks[id][stripe]
	}
	return s.txLocks[id]
}

// mix64 spreads object identifiers across stripes (SplitMix64 finalizer).
func mix64(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xBF58476D1CE4E5B9
	k ^= k >> 27
	k *= 0x94D049BB133111EB
	k ^= k >> 31
	return k
}

// Finish clears the thread's slot in the active-transactions list.
func (s *Seer) Finish(t *ThreadState) {
	t.Ctx.Tick(t.Ctx.Cost().DirectStore)
	s.activeTxs[t.Ctx.ID()] = NoTx
}

// --- Algorithm 3: statistics registration ---

// scanActive folds the active-transactions list into the per-thread
// matrices, as aborts when abort is set and commits otherwise. One
// scheduling point covers the whole scan: the list is read with plain
// loads, synchronization-free by design.
//
// Each atomic block is counted at most once per event, even when several
// threads are running it concurrently: the paper's Algorithm 5 interprets
// the ratios of these counters as probabilities (P ≤ 1), which only holds
// for 0/1-per-event indicator counts. Per-slot counting would push
// P(x aborts ∩ x‖y) above 1 for any block that often runs on several
// threads, putting it permanently out of reach of the Θ₁ threshold and
// its self-tuning range [0, 1].
//
// This runs on every commit and every abort, so it avoids both an
// O(numTx) clear of the dedup array (epoch stamps instead of booleans)
// and closure indirection for the matrix update (a direct branch on
// abort).
func (s *Seer) scanActive(t *ThreadState, txID int, abort bool) {
	// The execution counters below are shared (thread 0 reads them to
	// trigger scheme updates) and bumped before this event's scheduling
	// point — and the sampled-out path has no scheduling point at all. A
	// speculative quantum must therefore close before they are touched;
	// in practice the preceding commit/abort path always ends in an impure
	// tick, making this a no-op barrier.
	t.Ctx.EndQuantum()
	s.epochExecs++
	s.execsSinceUpdate++
	if s.opts.SampleShift > 0 {
		mask := (uint64(1) << s.opts.SampleShift) - 1
		if t.Ctx.Rand().Uint64()&mask != 0 {
			// Unsampled event: skip the scan (and its cost) entirely.
			return
		}
	}
	t.Ctx.Tick(t.Ctx.Cost().StatsSlot * uint64(len(s.activeTxs)))
	self := t.Ctx.ID()
	t.mats.IncExec(txID)
	t.seenEpoch++
	if t.seenEpoch == 0 {
		// uint32 wraparound: one real clear every 2³²-1 scans keeps stale
		// stamps from a previous epoch cycle from masking slots.
		clear(t.seen)
		t.seenEpoch = 1
	}
	epoch := t.seenEpoch
	for i, a := range s.activeTxs {
		if i != self && a != NoTx && t.seen[a] != epoch {
			t.seen[a] = epoch
			if abort {
				t.mats.AddAbort(txID, int(a))
			} else {
				t.mats.AddCommit(txID, int(a))
			}
		}
	}
}

// RegisterAbort records an abort of txID against all currently active
// transactions — or, under the PreciseOracle variant, against the exact
// conflicting block only.
func (s *Seer) RegisterAbort(t *ThreadState, txID int) {
	if s.opts.PreciseOracle {
		t.Ctx.EndQuantum() // same barrier as scanActive
		s.epochExecs++
		s.execsSinceUpdate++
		t.Ctx.Tick(t.Ctx.Cost().StatsSlot)
		t.mats.IncExec(txID)
		if c := s.htm.LastConflictor(t.Ctx.ID()); c >= 0 {
			if a := s.activeTxs[c]; a != NoTx {
				t.mats.AddAbort(txID, int(a))
			}
		}
		return
	}
	s.scanActive(t, txID, true)
}

// RegisterCommit records a commit of txID against all currently active
// transactions.
func (s *Seer) RegisterCommit(t *ThreadState, txID int) {
	s.scanActive(t, txID, false)
	s.epochCommits++
}

// --- Algorithm 4: lock management ---

// AcquireLocks implements ACQUIRE-Seer-LOCKS: on a capacity abort the
// thread takes its physical core's lock; on the last remaining attempt it
// takes the transaction locks dictated by the current scheme.
func (s *Seer) AcquireLocks(t *ThreadState, txID int, status htm.Status, attemptsLeft int) {
	if s.opts.CoreLocks && status.Capacity() && !t.AcquiredCoreLock {
		core := s.mach.PhysCore(t.Ctx.ID())
		s.coreLocks[core].Acquire(t.Ctx, s.mem)
		t.AcquiredCoreLock = true
		s.trc.Record2(t.Ctx.Clock(), t.Ctx.ID(), trace.EvLockAcq, txID, uint32(core), lockKindCore)
	}
	if s.opts.TxLocks && attemptsLeft == 1 && !t.AcquiredTxLocks {
		s.acquireTxLocks(t, txID)
		t.AcquiredTxLocks = true
	}
}

// acquireTxLocks takes every lock in scheme[txID], in the row's sorted
// order (deadlock freedom). With two or more locks and the HTMLockAcq
// option, a hardware transaction batches the stores as a multi-CAS,
// falling back to sequential blocking acquisition on abort. The acquired
// set is recorded for release.
func (s *Seer) acquireTxLocks(t *ThreadState, txID int) {
	if len(s.scheme[txID]) == 0 {
		return
	}
	// Snapshot the row: the acquisition below yields (lock waits, the
	// multi-CAS transaction), during which thread 0 may rebuild the scheme
	// rows in place. The snapshot reuses the thread's scratch capacity.
	t.rowScratch = append(t.rowScratch[:0], s.scheme[txID]...)
	row := t.rowScratch
	s.LockAcqEvents++
	s.LockAcqSamples = append(s.LockAcqSamples, len(row))
	if s.opts.HTMLockAcq && len(row) >= 2 {
		status := s.htm.Run(t.Ctx, func(tx *htm.Tx) {
			for _, id := range row {
				s.lockFor(t, id).AcquireTx(tx, t.Ctx.ID())
			}
		})
		if status == 0 {
			s.MultiCASOk++
			for _, id := range row {
				t.heldTxLocks = append(t.heldTxLocks, s.lockFor(t, id))
				s.trc.Record2(t.Ctx.Clock(), t.Ctx.ID(), trace.EvLockAcq, txID, uint32(id), lockKindTx)
			}
			return
		}
		s.MultiCASFail++
	}
	for _, id := range row {
		lk := s.lockFor(t, id)
		lk.Acquire(t.Ctx, s.mem)
		t.heldTxLocks = append(t.heldTxLocks, lk)
		s.trc.Record2(t.Ctx.Clock(), t.Ctx.ID(), trace.EvLockAcq, txID, uint32(id), lockKindTx)
	}
}

// lockKind values for the Detail2 payload of EvLockAcq/EvLockRel.
const (
	lockKindTx   uint32 = 0
	lockKindCore uint32 = 1
)

// ReleaseLocks implements RELEASE-Seer-LOCKS.
func (s *Seer) ReleaseLocks(t *ThreadState) {
	if t.AcquiredTxLocks {
		if n := len(t.heldTxLocks); n > 0 {
			// One release event carrying the batch size (the individual
			// ids were recorded at acquisition).
			s.trc.Record2(t.Ctx.Clock(), t.Ctx.ID(), trace.EvLockRel, -1, uint32(n), lockKindTx)
		}
		for _, lk := range t.heldTxLocks {
			lk.ReleaseOwned(t.Ctx, s.mem)
		}
		t.heldTxLocks = t.heldTxLocks[:0]
		t.AcquiredTxLocks = false
	}
	if t.AcquiredCoreLock {
		core := s.mach.PhysCore(t.Ctx.ID())
		s.coreLocks[core].ReleaseOwned(t.Ctx, s.mem)
		t.AcquiredCoreLock = false
		s.trc.Record2(t.Ctx.Clock(), t.Ctx.ID(), trace.EvLockRel, -1, uint32(core), lockKindCore)
	}
}

// WaitLocks implements WAIT-Seer-LOCKS: lemming avoidance on the
// single-global lock (during which thread 0 opportunistically refreshes
// the lock scheme and the tuner), then cooperation with holders of the
// thread's transaction lock and core lock.
func (s *Seer) WaitLocks(t *ThreadState, txID int, sgl spinlock.Lock) {
	if sgl.LockedFast(s.mem) {
		if t.Ctx.ID() == 0 {
			s.UpdateScheme(t.Ctx)
			s.maybeTune(t.Ctx)
		}
		sgl.SpinWhileLocked(t.Ctx, s.mem)
	}
	// Periodic refresh independent of fall-back activity: with Seer the
	// fall-back becomes rare (≈1% of commits), so waiting for it would
	// starve the inference.
	if t.Ctx.ID() == 0 && s.execsSinceUpdate >= s.opts.UpdateEvery {
		s.UpdateScheme(t.Ctx)
		s.maybeTune(t.Ctx)
	}
	// The cooperative waits below are advisory (HTM enforces
	// correctness), so they are bounded: unbounded spinning here can
	// deadlock with a sibling that holds the core lock while waiting for
	// a transaction lock we hold, and vice versa.
	const coopSpinBudget = 256
	if s.opts.TxLocks && !t.AcquiredTxLocks {
		if lk := s.lockFor(t, txID); lk.LockedFast(s.mem) {
			s.trc.Record(t.Ctx.Clock(), t.Ctx.ID(), trace.EvWait, txID, uint32(lockKindTx))
			lk.SpinWhileLockedBounded(t.Ctx, s.mem, coopSpinBudget)
		}
	}
	if s.opts.CoreLocks && !t.AcquiredCoreLock {
		if lk := s.coreLocks[s.mach.PhysCore(t.Ctx.ID())]; lk.LockedFast(s.mem) {
			s.trc.Record(t.Ctx.Clock(), t.Ctx.ID(), trace.EvWait, txID, uint32(lockKindCore))
			lk.SpinWhileLockedBounded(t.Ctx, s.mem, coopSpinBudget)
		}
	}
}

// --- Algorithm 5: devising the locking scheme ---

// UpdateScheme drains the per-thread statistics deltas into the global
// matrices and recomputes the locksToAcquire table using the current
// thresholds. The whole update is one scheduling point whose cost scales
// with the number of pairs.
//
// The recomputation is allocation-free in steady state: the merged
// matrices, the pair bitset and the threshold scratch are reused across
// updates, and the scheme rows are rebuilt in place (growing a row only
// when it serializes more pairs than it ever has). Threads that read a
// row across a scheduling point snapshot it first (see acquireTxLocks).
func (s *Seer) UpdateScheme(ctx *machine.Ctx) {
	cost := ctx.Cost()
	ctx.Tick(cost.UpdateBase + cost.UpdatePair*uint64(s.numTx*s.numTx))
	s.execsSinceUpdate = 0
	s.SchemeUpdates++

	// Per-thread matrices hold only the delta since the previous update:
	// draining them into the persistent global matrices yields the same
	// totals as re-merging full histories, in O(new events) instead of
	// O(all events).
	for _, t := range s.threads {
		s.merged.MergeFrom(t.mats)
		t.mats.Reset()
	}
	merged := s.merged

	nw := s.schemeWords
	clear(s.schemeBits)
	row := s.updRow
	candidates := s.updCandidates[:0]
	condVals := s.updCondVals[:0]
	for x := 0; x < s.numTx; x++ {
		merged.RowCondProbs(x, row)
		// First condition (Θ₁): keep only pairs whose abort∩concurrent
		// events are frequent enough to be worth serializing.
		candidates = candidates[:0]
		condVals = condVals[:0]
		for y := 0; y < s.numTx; y++ {
			if merged.ConjAbortProb(x, y) > s.th.Th1 {
				candidates = append(candidates, y)
				condVals = append(condVals, row[y])
			}
		}
		if len(candidates) == 0 {
			continue
		}
		// Second condition (Θ₂): among the candidates, keep those in the
		// upper tail of the conditional-probability distribution — the
		// paper's device for separating falsely suspected pairs (blamed
		// only because they happened to be running) from real
		// conflictors. The Gaussian is fitted over the candidate set:
		// fitting over all y, as a literal reading of the paper would,
		// lets never-concurrent pairs (P = 0) drag the cut far below
		// every saturated value. A single candidate is degenerate
		// (σ = 0) and is admitted directly — Θ₁ already vouched for it,
		// which is also the only sensible reading for programs with one
		// atomic block.
		cut := stats.GaussianCut(condVals, s.th.Th2)
		_, variance := stats.MeanVar(condVals)
		flat := variance < 1e-12 // indistinguishable candidates: admit all
		for i, y := range candidates {
			if len(candidates) > 1 && !flat && !(condVals[i] > cut) {
				continue
			}
			// x and y contend: they take each other's lock.
			s.schemeBits[x*nw+y/64] |= 1 << (y % 64)
			s.schemeBits[y*nw+x/64] |= 1 << (x % 64)
		}
	}
	s.updCandidates = candidates[:0]
	s.updCondVals = condVals[:0]

	// Rebuild the scheme rows from the bitset. Iterating set bits low to
	// high yields each row already sorted (deadlock freedom needs a global
	// acquisition order). Rows reuse their capacity; each row's swap is
	// atomic under the engine's serialization, and the update as a whole
	// is one scheduling point anyway.
	reused := true
	for x := 0; x < s.numTx; x++ {
		r := s.scheme[x][:0]
		oldCap := cap(r)
		for wi, w := range s.schemeBits[x*nw : (x+1)*nw] {
			for w != 0 {
				r = append(r, wi*64+bits.TrailingZeros64(w))
				w &= w - 1
			}
		}
		if cap(r) != oldCap {
			reused = false
		}
		s.scheme[x] = r
	}
	if reused {
		s.SchemeReuseHits++
	}
	s.trc.Record(ctx.Clock(), ctx.ID(), trace.EvScheme, -1, uint32(s.SchemePairs()))
}

// maybeTune closes a tuning epoch if enough samples accumulated, feeding
// the measured throughput (commits per cycle on the virtual clock) to the
// hill climber and adopting the proposed thresholds.
func (s *Seer) maybeTune(ctx *machine.Ctx) {
	if !s.opts.HillClimb || s.tuner == nil {
		return
	}
	if s.epochExecs < s.opts.EpochExecs {
		return
	}
	now := ctx.Clock()
	elapsed := now - s.epochStartCycles
	if elapsed == 0 {
		return
	}
	throughput := float64(s.epochCommits) / float64(elapsed)
	s.tuner.Feedback(throughput)
	s.th = s.tuner.Params()
	s.trc.Record2(now, ctx.ID(), trace.EvTune, -1,
		math.Float32bits(float32(s.th.Th1)), math.Float32bits(float32(s.th.Th2)))
	s.epochExecs = 0
	s.epochCommits = 0
	s.epochStartCycles = now
}

// ActiveTxs returns a snapshot of the active-transactions list (tests).
func (s *Seer) ActiveTxs() []int32 {
	out := make([]int32, len(s.activeTxs))
	copy(out, s.activeTxs)
	return out
}

// TxLock returns the lock of atomic block id (tests and invariants).
func (s *Seer) TxLock(id int) spinlock.Lock { return s.txLocks[id] }

// CoreLock returns the lock of physical core c (tests and invariants).
func (s *Seer) CoreLock(c int) spinlock.Lock { return s.coreLocks[c] }

// ObjLock returns stripe st of block id's object-granular locks (tests
// and invariants; only valid when ObjLocks is enabled).
func (s *Seer) ObjLock(id, st int) spinlock.Lock { return s.objLocks[id][st] }
