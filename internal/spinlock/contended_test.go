package spinlock

import (
	"testing"

	"seer/internal/machine"
	"seer/internal/mem"
	"seer/internal/topology"
)

// Contended-lock tests: many threads hammering one lock through the
// park/wake path. These run in CI under -race as well; the engine is
// single-goroutine, so a race report here would mean engine state leaked
// across coroutine switches.

func contendedEnv(t *testing.T, threads int) (*machine.Engine, *mem.Memory, Lock) {
	t.Helper()
	cfg := machine.Config{Topo: topology.Flat(threads), Seed: 3, Cost: machine.DefaultCostModel()}
	eng, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(1 << 10)
	return eng, m, New(m)
}

// TestContendedAcquireStorm: every thread loops acquire → critical section
// → release on one lock. Mutual exclusion must hold throughout, every
// thread must make progress, and the schedule must be deterministic.
func TestContendedAcquireStorm(t *testing.T) {
	const threads, iters = 8, 40
	run := func() uint64 {
		eng, m, lk := contendedEnv(t, threads)
		inCrit := 0
		counter := 0
		bodies := make([]func(*machine.Ctx), threads)
		for i := range bodies {
			bodies[i] = func(c *machine.Ctx) {
				for n := 0; n < iters; n++ {
					lk.Acquire(c, m)
					inCrit++
					if inCrit != 1 {
						t.Errorf("mutual exclusion violated: %d threads in critical section", inCrit)
					}
					c.Work(uint64(5 + n%7))
					counter++
					inCrit--
					lk.Release(c, m)
					c.Work(3)
				}
			}
		}
		ms, err := eng.Run(bodies)
		if err != nil {
			t.Fatal(err)
		}
		if counter != threads*iters {
			t.Fatalf("counter = %d, want %d", counter, threads*iters)
		}
		return ms
	}
	first := run()
	if again := run(); again != first {
		t.Fatalf("storm makespan not deterministic: %d vs %d", again, first)
	}
}

// TestContendedWaitersDrainInOrder: several parked waiters woken by one
// release must re-enter the schedule in (cycle, id) order, so the lock is
// handed over deterministically.
func TestContendedWaitersDrainInOrder(t *testing.T) {
	const threads = 6
	eng, m, lk := contendedEnv(t, threads)
	var order []int
	bodies := make([]func(*machine.Ctx), threads)
	bodies[0] = func(c *machine.Ctx) {
		lk.Acquire(c, m)
		c.Work(2000) // hold long enough for every waiter to park
		lk.Release(c, m)
	}
	for i := 1; i < threads; i++ {
		bodies[i] = func(c *machine.Ctx) {
			c.Work(uint64(10 * c.ID())) // stagger the poll trains
			lk.Acquire(c, m)
			order = append(order, c.ID())
			c.Work(10)
			lk.Release(c, m)
		}
	}
	if _, err := eng.Run(bodies); err != nil {
		t.Fatal(err)
	}
	if len(order) != threads-1 {
		t.Fatalf("%d acquisitions, want %d", len(order), threads-1)
	}
	seen := make(map[int]bool)
	for _, id := range order {
		if seen[id] {
			t.Fatalf("thread %d acquired twice: %v", id, order)
		}
		seen[id] = true
	}
}

// TestBoundedWaitFreedEarly: a bounded cooperative wait whose holder
// releases mid-budget must observe the lock free (woken, not timed out).
func TestBoundedWaitFreedEarly(t *testing.T) {
	eng, m, lk := contendedEnv(t, 2)
	var freed bool
	if _, err := eng.Run([]func(*machine.Ctx){
		func(c *machine.Ctx) {
			lk.Acquire(c, m)
			c.Work(700)
			lk.Release(c, m)
		},
		func(c *machine.Ctx) {
			c.Work(1) // let thread 0 take the lock first
			freed = lk.SpinWhileLockedBounded(c, m, 1<<20)
			if c.Clock() > 2000 {
				t.Errorf("waiter resumed at %d, long after the release", c.Clock())
			}
		},
	}); err != nil {
		t.Fatal(err)
	}
	if !freed {
		t.Fatal("bounded wait timed out despite an early release")
	}
}

// TestContendedStormPast64Threads reruns the acquire storm with 96
// threads on a two-socket machine: lock handoff, parking and the
// engine's wake path must stay correct and deterministic when waiter
// ids span multiple words of the scheduler's occupancy bitset.
func TestContendedStormPast64Threads(t *testing.T) {
	const iters = 6
	topo := topology.Multi(2, 24, 2) // 96 threads
	run := func() uint64 {
		cfg := machine.Config{Topo: topo, Seed: 3, Cost: machine.DefaultCostModel()}
		eng, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m := mem.New(1 << 10)
		lk := New(m)
		threads := topo.Threads()
		inCrit := 0
		counter := 0
		bodies := make([]func(*machine.Ctx), threads)
		for i := range bodies {
			bodies[i] = func(c *machine.Ctx) {
				for n := 0; n < iters; n++ {
					lk.Acquire(c, m)
					inCrit++
					if inCrit != 1 {
						t.Errorf("mutual exclusion violated: %d threads in critical section", inCrit)
					}
					c.Work(uint64(5 + n%7))
					counter++
					inCrit--
					lk.Release(c, m)
					c.Work(3)
				}
			}
		}
		ms, err := eng.Run(bodies)
		if err != nil {
			t.Fatal(err)
		}
		if counter != threads*iters {
			t.Fatalf("counter = %d, want %d", counter, threads*iters)
		}
		return ms
	}
	first := run()
	if again := run(); again != first {
		t.Fatalf("96-thread storm makespan not deterministic: %d vs %d", again, first)
	}
}
