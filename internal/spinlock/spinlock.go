// Package spinlock provides test-and-test-and-set spin locks that live in
// the simulated memory. Keeping lock words inside the simulated address
// space is what lets hardware transactions subscribe to them: a
// transaction that reads a lock word adds its cache line to the read set,
// so a later acquisition (a plain store) dooms the transaction — exactly
// the mechanism that makes single-global-lock fall-backs correct on real
// best-effort HTM.
//
// Each lock occupies its own cache line to avoid false conflicts between
// unrelated locks (as the paper's per-transaction and per-core lock arrays
// do in practice).
package spinlock

import (
	"seer/internal/htm"
	"seer/internal/machine"
	"seer/internal/mem"
)

// Lock is a spin lock resident in simulated memory. The word holds 0 when
// free and ownerHW+1 when held.
type Lock struct {
	addr mem.Addr
}

// New allocates a lock on its own cache line.
func New(m *mem.Memory) Lock {
	return Lock{addr: m.AllocLines(1)}
}

// Addr returns the lock word's address (for transactional subscription).
func (l Lock) Addr() mem.Addr { return l.addr }

// Locked reports whether the lock is held, using a non-transactional load
// (one scheduling point).
func (l Lock) Locked(ctx *machine.Ctx, m *mem.Memory) bool {
	ctx.Tick(ctx.Cost().DirectLoad)
	return m.DirectLoad(ctx.ID(), l.addr) != 0
}

// LockedFast reports whether the lock is held without advancing virtual
// time: it models the L1-cached re-read of a lock word a spinning or
// checking thread already holds in shared state, which costs ~1 cycle on
// real hardware. Use it for the cheap pre-checks on hot paths (lemming
// avoidance, Seer's cooperative waits); the ticking variants take over
// once the lock is actually observed held.
func (l Lock) LockedFast(m *mem.Memory) bool {
	return m.Peek(l.addr) != 0
}

// LockedTx reports whether the lock is held from inside a hardware
// transaction, subscribing the transaction to the lock word: a subsequent
// acquisition aborts the transaction.
func (l Lock) LockedTx(t *htm.Tx) bool {
	return t.Load(l.addr) != 0
}

// TryAcquire attempts one compare-and-swap. The load and conditional store
// execute within a single scheduling point, so the CAS is atomic under the
// engine's serialization.
func (l Lock) TryAcquire(ctx *machine.Ctx, m *mem.Memory) bool {
	ctx.Tick(ctx.Cost().LockOp)
	if m.DirectLoad(ctx.ID(), l.addr) != 0 {
		return false
	}
	m.DirectStore(ctx.ID(), l.addr, uint64(ctx.ID())+1)
	return true
}

// Acquire spins (test-and-test-and-set) until the lock is taken.
//
// The spin is event-driven: instead of ticking through every spin quantum,
// a thread that observes the lock busy parks on the lock word
// (machine.Ctx.ParkOn) and is re-inserted into the schedule at its next
// poll boundary after the holder's release. The observable schedule —
// which cycles the lock word is polled at, and in which thread order — is
// identical to the ticking loop's; see DESIGN.md §6d.
func (l Lock) Acquire(ctx *machine.Ctx, m *mem.Memory) {
	// When the engine has lock-word operations installed (the runtime
	// wires DirectLoad/DirectStore and a Peek-based poll evaluator), the
	// whole protocol is delegated to the event loop: every tick, hook and
	// doom lands at the identical schedule position, but the coroutine
	// suspends at most once. See machine.Ctx.AcquireWord.
	if ctx.AcquireWord(uint64(l.addr), uint64(ctx.ID())+1) {
		return
	}
	cost := ctx.Cost()
	for {
		ctx.Tick(cost.DirectLoad)
		if m.DirectLoad(ctx.ID(), l.addr) == 0 {
			if l.TryAcquire(ctx, m) {
				return
			}
			continue
		}
		ctx.ParkOnWord(uint64(l.addr), cost.SpinQuantum+cost.DirectLoad, cost.DirectLoad, 0)
	}
}

// SpinWhileLocked blocks until the lock is observed free, parking between
// poll boundaries like Acquire. It does not acquire the lock; Seer uses it
// to cooperate with lock holders.
func (l Lock) SpinWhileLocked(ctx *machine.Ctx, m *mem.Memory) {
	cost := ctx.Cost()
	for {
		ctx.Tick(cost.DirectLoad)
		if m.DirectLoad(ctx.ID(), l.addr) == 0 {
			return
		}
		ctx.ParkOnWord(uint64(l.addr), cost.SpinQuantum+cost.DirectLoad, cost.DirectLoad, 0)
	}
}

// SpinWhileLockedBounded is SpinWhileLocked with a spin budget. It returns
// true if the lock was observed free, false if the budget ran out. Seer's
// cooperative waits on transaction and core locks are advisory (the HTM
// enforces correctness), so bounding them cannot violate safety — and it
// breaks the wait cycle that two threads holding a transaction lock and a
// core lock while waiting on each other would otherwise form.
//
// The park is bounded by the remaining poll budget: with no release
// forthcoming the engine resumes the thread at its final poll boundary,
// which is exactly where the ticking loop would have given up. The polls
// consumed by a park are recovered from the clock delta, so a wake part
// way through the budget leaves the remaining budget unchanged.
func (l Lock) SpinWhileLockedBounded(ctx *machine.Ctx, m *mem.Memory, maxSpins int) bool {
	cost := ctx.Cost()
	period := cost.SpinQuantum + cost.DirectLoad
	for i := 0; ; {
		ctx.Tick(cost.DirectLoad)
		if m.DirectLoad(ctx.ID(), l.addr) == 0 {
			return true
		}
		if i >= maxSpins {
			return false
		}
		before := ctx.Clock()
		ctx.ParkOnWord(uint64(l.addr), period, cost.DirectLoad, maxSpins-i)
		i += int((ctx.Clock() + cost.DirectLoad - before) / period)
	}
}

// Release frees the lock and wakes any threads parked on it. It panics if
// the caller does not hold it, which would be a bug in the TM runtime.
func (l Lock) Release(ctx *machine.Ctx, m *mem.Memory) {
	ctx.Tick(ctx.Cost().LockOp)
	if owner := m.DirectLoad(ctx.ID(), l.addr); owner != uint64(ctx.ID())+1 {
		panic("spinlock: release by non-owner")
	}
	m.DirectStore(ctx.ID(), l.addr, 0)
	ctx.WakeKey(uint64(l.addr))
}

// AcquireTx writes the lock word from inside a hardware transaction,
// aborting explicitly (code CodeLockBusy) if the lock is held. Seer's
// multi-CAS optimization uses this to batch several lock acquisitions
// into one hardware transaction.
func (l Lock) AcquireTx(t *htm.Tx, ownerHW int) {
	if t.Load(l.addr) != 0 {
		t.Abort(CodeLockBusy)
	}
	t.Store(l.addr, uint64(ownerHW)+1)
}

// ReleaseOwned frees a lock known to be held by ctx's thread without the
// owner check (used when releasing batches acquired via AcquireTx), waking
// any threads parked on it.
func (l Lock) ReleaseOwned(ctx *machine.Ctx, m *mem.Memory) {
	ctx.Tick(ctx.Cost().LockOp)
	m.DirectStore(ctx.ID(), l.addr, 0)
	ctx.WakeKey(uint64(l.addr))
}

// CodeLockBusy is the explicit-abort code meaning "a lock in the batch was
// busy" during transactional multi-lock acquisition.
const CodeLockBusy uint8 = 0xA1

// CodeSGLHeld is the explicit-abort code used by TM runtimes when a
// hardware transaction observes the single-global fall-back lock held.
const CodeSGLHeld uint8 = 0xFF
