package spinlock

import (
	"testing"

	"seer/internal/htm"
	"seer/internal/machine"
	"seer/internal/mem"
	"seer/internal/topology"
)

func env(t *testing.T, threads int) (*machine.Engine, *mem.Memory, *htm.Unit) {
	t.Helper()
	cfg := machine.Config{Topo: topology.Flat(threads), Seed: 7, Cost: machine.DefaultCostModel()}
	eng, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(1 << 10)
	u := htm.New(m, cfg, htm.Config{ReadSetLines: 32, WriteSetLines: 8})
	return eng, m, u
}

func TestAcquireRelease(t *testing.T) {
	eng, m, _ := env(t, 1)
	l := New(m)
	if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		if l.Locked(c, m) || l.LockedFast(m) {
			t.Errorf("fresh lock is held")
		}
		l.Acquire(c, m)
		if !l.Locked(c, m) || !l.LockedFast(m) {
			t.Errorf("acquired lock not held")
		}
		l.Release(c, m)
		if l.LockedFast(m) {
			t.Errorf("released lock still held")
		}
	}}); err != nil {
		t.Fatal(err)
	}
}

func TestTryAcquire(t *testing.T) {
	eng, m, _ := env(t, 2)
	l := New(m)
	results := make([]bool, 2)
	bodies := []func(*machine.Ctx){
		func(c *machine.Ctx) {
			results[0] = l.TryAcquire(c, m)
			c.Tick(1000)
			if results[0] {
				l.Release(c, m)
			}
		},
		func(c *machine.Ctx) {
			c.Tick(100) // arrive while thread 0 holds the lock
			results[1] = l.TryAcquire(c, m)
		},
	}
	if _, err := eng.Run(bodies); err != nil {
		t.Fatal(err)
	}
	if !results[0] || results[1] {
		t.Fatalf("TryAcquire results = %v, want [true false]", results)
	}
}

func TestReleaseByNonOwnerPanics(t *testing.T) {
	eng, m, _ := env(t, 1)
	l := New(m)
	_, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		l.Release(c, m) // never acquired
	}})
	if err == nil {
		t.Fatalf("release by non-owner did not panic")
	}
}

// TestMutualExclusion: N threads incrementing a counter under the lock
// never lose updates.
func TestMutualExclusion(t *testing.T) {
	eng, m, _ := env(t, 4)
	l := New(m)
	counter := m.AllocLines(1)
	const perThread = 50
	bodies := make([]func(*machine.Ctx), 4)
	for i := range bodies {
		bodies[i] = func(c *machine.Ctx) {
			for n := 0; n < perThread; n++ {
				l.Acquire(c, m)
				v := m.DirectLoad(c.ID(), counter)
				c.Tick(5)
				m.DirectStore(c.ID(), counter, v+1)
				l.Release(c, m)
				c.Tick(uint64(c.Rand().Intn(20)))
			}
		}
	}
	if _, err := eng.Run(bodies); err != nil {
		t.Fatal(err)
	}
	if got := m.Peek(counter); got != 4*perThread {
		t.Fatalf("counter = %d, want %d", got, 4*perThread)
	}
}

// TestTransactionSubscription: a transaction that checks the lock aborts
// when the lock is later acquired (the SGL-fallback correctness property).
func TestTransactionSubscription(t *testing.T) {
	eng, m, u := env(t, 2)
	l := New(m)
	data := m.AllocLines(1)
	var txStatus htm.Status
	bodies := []func(*machine.Ctx){
		func(c *machine.Ctx) {
			txStatus = u.Run(c, func(tx *htm.Tx) {
				if l.LockedTx(tx) {
					tx.Abort(CodeSGLHeld)
				}
				tx.Load(data)
				tx.Work(500) // stay inside while thread 1 acquires
			})
		},
		func(c *machine.Ctx) {
			c.Tick(50)
			l.Acquire(c, m)
			c.Tick(10)
			l.Release(c, m)
		},
	}
	if _, err := eng.Run(bodies); err != nil {
		t.Fatal(err)
	}
	if !txStatus.Conflict() {
		t.Fatalf("subscribed transaction survived lock acquisition: %v", txStatus)
	}
}

// TestAcquireTxMultiCAS: batching two lock acquisitions in one hardware
// transaction takes both or neither.
func TestAcquireTxMultiCAS(t *testing.T) {
	eng, m, u := env(t, 1)
	l1, l2 := New(m), New(m)
	if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		st := u.Run(c, func(tx *htm.Tx) {
			l1.AcquireTx(tx, c.ID())
			l2.AcquireTx(tx, c.ID())
		})
		if st != 0 {
			t.Errorf("multi-CAS aborted: %v", st)
		}
		if !l1.LockedFast(m) || !l2.LockedFast(m) {
			t.Errorf("locks not held after multi-CAS")
		}
		l1.ReleaseOwned(c, m)
		l2.ReleaseOwned(c, m)

		// Now hold l2 and verify the batch takes neither.
		l2.Acquire(c, m)
		st = u.Run(c, func(tx *htm.Tx) {
			l1.AcquireTx(tx, c.ID())
			l2.AcquireTx(tx, c.ID()) // busy → explicit abort
		})
		if !st.Explicit() || st.ExplicitCode() != CodeLockBusy {
			t.Errorf("busy multi-CAS status = %v", st)
		}
		if l1.LockedFast(m) {
			t.Errorf("partial multi-CAS left l1 held")
		}
	}}); err != nil {
		t.Fatal(err)
	}
}

func TestSpinWhileLockedBounded(t *testing.T) {
	eng, m, _ := env(t, 2)
	l := New(m)
	var gaveUp bool
	bodies := []func(*machine.Ctx){
		func(c *machine.Ctx) {
			l.Acquire(c, m)
			c.Tick(1 << 20) // hold essentially forever
			l.Release(c, m)
		},
		func(c *machine.Ctx) {
			c.Tick(100)
			gaveUp = !l.SpinWhileLockedBounded(c, m, 16)
		},
	}
	if _, err := eng.Run(bodies); err != nil {
		t.Fatal(err)
	}
	if !gaveUp {
		t.Fatalf("bounded spin did not give up on a long-held lock")
	}
}

func TestLocksOnDistinctLines(t *testing.T) {
	m := mem.New(1 << 10)
	a, b := New(m), New(m)
	if mem.LineOf(a.Addr()) == mem.LineOf(b.Addr()) {
		t.Fatalf("two locks share a cache line (false conflicts)")
	}
}
