package txtrace

import (
	"sort"

	"seer/internal/stats"
)

// InferenceProbe fills dst with a snapshot of the scheduler's learned
// commit/abort matrices (including counts not yet drained into the
// merged view) and returns the live locking scheme — row x lists the
// lock ids block x acquires. The system wires this to
// core.Seer.SnapshotLearned; the collector calls it synchronously from
// the engine goroutine, so no locking is needed.
type InferenceProbe func(dst *stats.Matrices) [][]int

// QualitySnapshot is one point of the inference-quality trajectory:
// Seer's learned locking scheme scored against the ground-truth conflict
// matrix accumulated so far (cumulative, not per-interval — the learner
// itself is cumulative).
type QualitySnapshot struct {
	Index    int    `json:"index"`
	EndCycle uint64 `json:"end_cycle"`
	// TruePairs counts distinct unordered block pairs with at least one
	// ground-truth conflict; PredictedPairs counts pairs covered by the
	// learned scheme (block x acquiring lock y predicts the pair {x,y}).
	TruePairs      int `json:"true_pairs"`
	PredictedPairs int `json:"predicted_pairs"`
	// TP counts predicted pairs that are true.
	TP        int     `json:"tp"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	// RankDivergence is a normalized Spearman footrule distance between
	// the truth ranking and the learned-abort-weight ranking of conflict
	// pairs (0 = identical order, 1 = reversed).
	RankDivergence float64 `json:"rank_divergence"`
	// Attributed is the cumulative count of aborts carrying ground-truth
	// attribution at snapshot time.
	Attributed uint64 `json:"attributed"`
}

// quality is the collector's inference-introspection state.
type quality struct {
	probe    InferenceProbe
	interval uint64
	nextCut  uint64
	learned  *stats.Matrices // scratch, refilled per snapshot
	snaps    []QualitySnapshot
}

// SetProbe installs the scheduler introspection hook and arms snapshot
// cutting. Without a probe the collector accumulates truth but records
// no quality trajectory.
func (c *Collector) SetProbe(p InferenceProbe) {
	if c == nil {
		return
	}
	c.qual.probe = p
	if p != nil && c.qual.learned == nil {
		c.qual.learned = stats.NewMatrices(c.nBlocks)
	}
}

// SetInterval sets the virtual-time period between quality snapshots
// (0 disables periodic cuts; Flush still records a final one).
func (c *Collector) SetInterval(interval uint64) {
	if c == nil {
		return
	}
	c.qual.interval = interval
	c.qual.nextCut = interval
}

// OnTick advances the snapshot clock; the system chains it after the
// telemetry recorder's tick hook.
func (c *Collector) OnTick(now uint64) {
	if c == nil || c.qual.probe == nil || c.qual.interval == 0 {
		return
	}
	for now >= c.qual.nextCut {
		c.cut(c.qual.nextCut)
		c.qual.nextCut += c.qual.interval
	}
}

// Flush records the final quality snapshot at end-of-run.
func (c *Collector) Flush(end uint64) {
	if c == nil || c.qual.probe == nil {
		return
	}
	c.cut(end)
}

// Quality returns the recorded trajectory.
func (c *Collector) Quality() []QualitySnapshot {
	if c == nil {
		return nil
	}
	return c.qual.snaps
}

// pairKey canonicalizes an unordered block pair (x ≤ y).
func pairKey(x, y, n int) int {
	if x > y {
		x, y = y, x
	}
	return x*n + y
}

// cut scores the current learned scheme against the truth accumulated so
// far and appends a snapshot. Runs only when introspection is enabled,
// so it may allocate.
func (c *Collector) cut(endCycle uint64) {
	q := &c.qual
	scheme := q.probe(q.learned)
	n := c.nBlocks

	truth := map[int]uint64{}
	for v := 0; v < n; v++ {
		for a := 0; a < n; a++ {
			if w := c.truth[v*n+a]; w > 0 {
				truth[pairKey(v, a, n)] += w
			}
		}
	}

	// In the paper's scheme, lock ids coincide with block ids: block x
	// acquiring lock y predicts that x conflicts with y.
	predicted := map[int]bool{}
	for x, row := range scheme {
		for _, y := range row {
			if y >= 0 && y < n {
				predicted[pairKey(x, y, n)] = true
			}
		}
	}

	tp := 0
	for k := range predicted {
		if truth[k] > 0 {
			tp++
		}
	}
	snap := QualitySnapshot{
		Index:          len(q.snaps),
		EndCycle:       endCycle,
		TruePairs:      len(truth),
		PredictedPairs: len(predicted),
		TP:             tp,
		Attributed:     c.attributed,
	}
	if len(predicted) > 0 {
		snap.Precision = float64(tp) / float64(len(predicted))
	}
	if len(truth) > 0 {
		snap.Recall = float64(tp) / float64(len(truth))
	}
	snap.RankDivergence = rankDivergence(truth, q.learned, n)
	q.snaps = append(q.snaps, snap)
}

// rankDivergence compares how the ground truth and the learner order the
// conflict pairs by weight: the Spearman footrule distance between the
// two rankings over the union of pairs either side considers conflicting,
// normalized by the maximum footrule ⌊m²/2⌋ (so 0 means the learner has
// internalized the relative importance of conflicts perfectly, even if
// its absolute counts are off).
func rankDivergence(truth map[int]uint64, learned *stats.Matrices, n int) float64 {
	type pw struct {
		key    int
		tw, lw uint64
	}
	byKey := map[int]*pw{}
	for k, w := range truth {
		byKey[k] = &pw{key: k, tw: w}
	}
	for x := 0; x < n; x++ {
		for y := x; y < n; y++ {
			w := learned.Aborts(x, y)
			if y != x {
				w += learned.Aborts(y, x)
			}
			if w == 0 {
				continue
			}
			k := x*n + y
			if p, ok := byKey[k]; ok {
				p.lw = w
			} else {
				byKey[k] = &pw{key: k, lw: w}
			}
		}
	}
	m := len(byKey)
	if m < 2 {
		return 0
	}
	pairs := make([]*pw, 0, m)
	for _, p := range byKey {
		pairs = append(pairs, p)
	}
	// Rank by truth weight, then by learned weight; ties broken by key so
	// both rankings are total orders and the distance is deterministic.
	rankT := make(map[int]int, m)
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].tw != pairs[j].tw {
			return pairs[i].tw > pairs[j].tw
		}
		return pairs[i].key < pairs[j].key
	})
	for i, p := range pairs {
		rankT[p.key] = i
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].lw != pairs[j].lw {
			return pairs[i].lw > pairs[j].lw
		}
		return pairs[i].key < pairs[j].key
	})
	dist := 0
	for i, p := range pairs {
		d := rankT[p.key] - i
		if d < 0 {
			d = -d
		}
		dist += d
	}
	maxDist := m * m / 2
	return float64(dist) / float64(maxDist)
}
