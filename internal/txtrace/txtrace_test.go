package txtrace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"seer/internal/mem"
	"seer/internal/stats"
	"seer/internal/telemetry"
	"seer/internal/trace"
)

// TestCauseMirrorsTelemetry pins the txtrace Cause enum to telemetry's:
// policy code converts between them by integer value, so slot order and
// labels must stay in lockstep.
func TestCauseMirrorsTelemetry(t *testing.T) {
	if int(NumCauses) != int(telemetry.NumCauses) {
		t.Fatalf("NumCauses = %d, telemetry.NumCauses = %d", NumCauses, telemetry.NumCauses)
	}
	for c := Cause(0); c < NumCauses; c++ {
		if CauseNames[c] != telemetry.CauseNames[c] {
			t.Errorf("cause %d: name %q != telemetry %q", c, CauseNames[c], telemetry.CauseNames[c])
		}
	}
}

func TestNilCollectorNoOps(t *testing.T) {
	var c *Collector
	// Every recording method must be callable on nil.
	c.BlockEnter(0, 1)
	c.BlockExit(0)
	c.AttemptBegin(0, 10)
	c.AttemptCommit(0, 20)
	c.AttemptAbort(0, 20, 1, CauseConflict)
	c.Fallback(0, 10, 20)
	c.OnDoom(0, 1, 7)
	c.IgnoreLine(3)
	c.SetTraceLog(nil)
	c.SetProbe(nil)
	c.SetInterval(100)
	c.OnTick(1000)
	c.Flush(1000)
	if c.NumBlocks() != 0 || c.Threads() != 0 || c.SpanCount() != 0 ||
		c.Attributed() != 0 || c.SpansEnabled() {
		t.Error("nil collector must report zero state")
	}
	if c.Spans(0) != nil || c.TruthMatrix() != nil || c.CascadeHist() != nil ||
		c.LineConflicts() != nil || c.Quality() != nil || c.TopPairs(5) != nil ||
		c.TopLines(5) != nil || c.AttrProbe() != nil {
		t.Error("nil collector views must be nil")
	}
	if err := c.WriteExplain(&bytes.Buffer{}, 5); err == nil {
		t.Error("WriteExplain on nil collector must error")
	}
	if err := c.WriteSpansJSONL(&bytes.Buffer{}); err == nil {
		t.Error("WriteSpansJSONL on nil collector must error")
	}
	if err := c.WriteChromeSpans(&bytes.Buffer{}); err == nil {
		t.Error("WriteChromeSpans on nil collector must error")
	}
	if err := c.WriteDOT(&bytes.Buffer{}); err == nil {
		t.Error("WriteDOT on nil collector must error")
	}
}

func TestPackAborterRoundTrip(t *testing.T) {
	cases := []struct{ hw, block int16 }{
		{0, 0}, {1, 2}, {-1, -1}, {127, 255}, {-1, 3}, {5, -1},
	}
	for _, c := range cases {
		hw, block := UnpackAborter(packAborter(c.hw, c.block))
		if hw != c.hw || block != c.block {
			t.Errorf("round trip (%d,%d) -> (%d,%d)", c.hw, c.block, hw, block)
		}
	}
}

// TestSpanLifecycle walks one thread through commit, unattributed abort
// and fallback, checking the retained spans field by field.
func TestSpanLifecycle(t *testing.T) {
	c := NewCollector(3, 2, true)

	c.BlockEnter(0, 2)
	c.AttemptBegin(0, 100)
	c.AttemptAbort(0, 150, 0x2, CauseCapacity) // no OnDoom: unattributed
	c.AttemptBegin(0, 160)
	c.AttemptCommit(0, 200)
	c.BlockExit(0)

	c.BlockEnter(0, 1)
	c.AttemptBegin(0, 300)
	c.AttemptAbort(0, 310, 0x4, CauseExplicit)
	c.Fallback(0, 320, 400)
	c.BlockExit(0)

	spans := c.Spans(0)
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	ab := spans[0]
	if ab.Outcome != OutcomeAbort || ab.Begin != 100 || ab.End != 150 ||
		ab.Block != 2 || ab.Retry != 0 || ab.Status != 0x2 {
		t.Errorf("abort span = %+v", ab)
	}
	if ab.AborterHW != -1 || ab.AborterBlock != -1 || ab.Line != NoLine || ab.Depth != 0 {
		t.Errorf("unattributed abort must carry no attribution: %+v", ab)
	}
	cm := spans[1]
	if cm.Outcome != OutcomeCommit || cm.Begin != 160 || cm.End != 200 || cm.Retry != 1 {
		t.Errorf("commit span = %+v", cm)
	}
	if sp := spans[2]; sp.Block != 1 || sp.Retry != 0 {
		t.Errorf("BlockEnter must reset episode state: %+v", sp)
	}
	fb := spans[3]
	if fb.Outcome != OutcomeFallback || fb.Begin != 320 || fb.End != 400 || fb.Block != 1 {
		t.Errorf("fallback span = %+v", fb)
	}
	if c.SpanCount() != 4 || c.Threads() != 2 {
		t.Errorf("SpanCount=%d Threads=%d", c.SpanCount(), c.Threads())
	}
	// Capacity and explicit aborts land in their cause rows.
	if c.CauseBlock(CauseCapacity, 2) != 1 || c.CauseBlock(CauseExplicit, 1) != 1 {
		t.Errorf("causeBlock: capacity[2]=%d explicit[1]=%d",
			c.CauseBlock(CauseCapacity, 2), c.CauseBlock(CauseExplicit, 1))
	}
}

// TestAttribution drives the doom hook and checks that the victim's abort
// span, the truth matrix, the hot-line ranking and the EvDoom mirror all
// carry the ground truth.
func TestAttribution(t *testing.T) {
	c := NewCollector(4, 2, true)
	log := trace.New(16)
	c.SetTraceLog(log)

	// Thread 1 runs block 3; thread 0's access in block 2 dooms it on
	// line 7.
	c.BlockEnter(0, 2)
	c.BlockEnter(1, 3)
	c.AttemptBegin(1, 100)
	c.OnDoom(1, 0, mem.Line(7))
	c.AttemptAbort(1, 140, 0x1, CauseConflict)

	sp := c.Spans(1)[0]
	if sp.AborterHW != 0 || sp.AborterBlock != 2 || sp.Line != 7 || sp.Depth != 0 {
		t.Errorf("attributed span = %+v", sp)
	}
	if c.Attributed() != 1 {
		t.Errorf("attributed = %d, want 1", c.Attributed())
	}
	if got := c.TruthPair(3, 2); got != 1 {
		t.Errorf("truth[victim=3][aborter=2] = %d, want 1", got)
	}
	if got := c.LineConflicts()[7]; got != 1 {
		t.Errorf("lineConflicts[7] = %d, want 1", got)
	}

	// The attribution is mirrored as one EvDoom event.
	var doom *trace.Event
	for _, e := range log.Events() {
		if e.Kind == trace.EvDoom {
			e := e
			doom = &e
		}
	}
	if doom == nil {
		t.Fatal("no EvDoom event recorded")
	}
	if doom.Detail != 7 {
		t.Errorf("EvDoom Detail (line) = %d, want 7", doom.Detail)
	}
	if hw, block := UnpackAborter(doom.Detail2); hw != 0 || block != 2 {
		t.Errorf("EvDoom aborter = (%d,%d), want (0,2)", hw, block)
	}

	// A doom with no attributable requester (-1) attributes the span but
	// adds nothing to the truth matrix.
	c.AttemptBegin(1, 200)
	c.OnDoom(1, -1, mem.Line(9))
	c.AttemptAbort(1, 220, 0x1, CauseConflict)
	sp = c.Spans(1)[1]
	if sp.AborterHW != -1 || sp.AborterBlock != -1 || sp.Line != 9 {
		t.Errorf("requesterless doom span = %+v", sp)
	}
	sum := uint64(0)
	for _, w := range c.TruthMatrix() {
		sum += w
	}
	if sum != 1 {
		t.Errorf("truth total = %d, want 1 (requesterless doom excluded)", sum)
	}
}

// TestIgnoredLineAndIdleVictim checks the two truth-matrix filters: dooms
// on ignored lines (the SGL word) and dooms of threads outside a
// policy-level attempt (Seer's multi-CAS) attribute spans but never feed
// the conflict matrix.
func TestIgnoredLineAndIdleVictim(t *testing.T) {
	c := NewCollector(2, 2, true)
	c.IgnoreLine(5)

	c.BlockEnter(0, 0)
	c.BlockEnter(1, 1)

	// Doom on the ignored line, victim mid-attempt.
	c.AttemptBegin(1, 10)
	c.OnDoom(1, 0, mem.Line(5))
	c.AttemptAbort(1, 20, 0x1, CauseConflict)
	if sp := c.Spans(1)[0]; sp.Line != 5 {
		t.Errorf("ignored-line doom must still attribute the span: %+v", sp)
	}

	// Doom outside any attempt (victim between attempts).
	c.OnDoom(1, 0, mem.Line(6))

	for _, w := range c.TruthMatrix() {
		if w != 0 {
			t.Fatalf("truth matrix must stay empty, got %v", c.TruthMatrix())
		}
	}
	if len(c.LineConflicts()) != 0 {
		t.Errorf("lineConflicts must stay empty, got %v", c.LineConflicts())
	}
}

// TestCascadeDepth checks the blame chain: when the aborter is itself
// retrying after an abort of depth d, the victim's abort gets depth d+1.
func TestCascadeDepth(t *testing.T) {
	c := NewCollector(2, 3, true)
	c.BlockEnter(0, 0)
	c.BlockEnter(1, 1)
	c.BlockEnter(2, 0)

	// Root abort: thread 0 doomed by thread 1 (which has not aborted).
	c.AttemptBegin(0, 10)
	c.OnDoom(0, 1, mem.Line(3))
	c.AttemptAbort(0, 20, 0x1, CauseConflict)
	if d := c.Spans(0)[0].Depth; d != 0 {
		t.Fatalf("root abort depth = %d, want 0", d)
	}

	// Thread 0 retries and dooms thread 1: depth 1.
	c.AttemptBegin(0, 30)
	c.AttemptBegin(1, 30)
	c.OnDoom(1, 0, mem.Line(3))
	c.AttemptAbort(1, 40, 0x1, CauseConflict)
	if d := c.Spans(1)[0].Depth; d != 1 {
		t.Fatalf("first cascade depth = %d, want 1", d)
	}

	// Thread 1 retries and dooms thread 2: depth 2.
	c.AttemptBegin(1, 50)
	c.AttemptBegin(2, 50)
	c.OnDoom(2, 1, mem.Line(3))
	c.AttemptAbort(2, 60, 0x1, CauseConflict)
	if d := c.Spans(2)[0].Depth; d != 2 {
		t.Fatalf("second cascade depth = %d, want 2", d)
	}

	hist := c.CascadeHist()
	if hist[0] != 1 || hist[1] != 1 || hist[2] != 1 {
		t.Errorf("cascade histogram = %v", hist[:4])
	}

	// A committed episode clears the chain: thread 0 commits, re-enters,
	// and its next doom is a fresh root.
	c.AttemptCommit(0, 70)
	c.BlockExit(0)
	c.BlockEnter(0, 0)
	c.AttemptBegin(2, 80)
	c.OnDoom(2, 0, mem.Line(3))
	c.AttemptAbort(2, 90, 0x1, CauseConflict)
	if d := c.Spans(2)[1].Depth; d != 0 {
		t.Errorf("post-commit doom depth = %d, want 0 (chain reset)", d)
	}
}

// TestQualitySnapshots drives the inference scorer with a synthetic probe
// and checks precision/recall/rank-divergence arithmetic.
func TestQualitySnapshots(t *testing.T) {
	c := NewCollector(3, 2, false)
	c.BlockEnter(0, 0)
	c.BlockEnter(1, 1)

	// Ground truth: pair {0,1} conflicts 3 times.
	for i := 0; i < 3; i++ {
		c.AttemptBegin(1, uint64(10*i))
		c.OnDoom(1, 0, mem.Line(4))
		c.AttemptAbort(1, uint64(10*i+5), 0x1, CauseConflict)
	}

	// The probe predicts {0,1} (true) and {2,2} (false), and reports
	// learned abort weights that rank {0,1} first — matching truth.
	probe := func(dst *stats.Matrices) [][]int {
		dst.Reset()
		for i := 0; i < 5; i++ {
			dst.AddAbort(0, 1)
		}
		dst.AddAbort(2, 2)
		return [][]int{{1}, {}, {2}}
	}
	c.SetProbe(probe)
	c.SetInterval(100)

	// One periodic cut at 100 and 200, then the final flush at 250.
	c.OnTick(205)
	c.Flush(250)

	snaps := c.Quality()
	if len(snaps) != 3 {
		t.Fatalf("got %d snapshots, want 3 (two periodic + flush)", len(snaps))
	}
	if snaps[0].EndCycle != 100 || snaps[1].EndCycle != 200 || snaps[2].EndCycle != 250 {
		t.Errorf("snapshot cycles = %d,%d,%d", snaps[0].EndCycle, snaps[1].EndCycle, snaps[2].EndCycle)
	}
	fin := snaps[2]
	if fin.TruePairs != 1 || fin.PredictedPairs != 2 || fin.TP != 1 {
		t.Errorf("true=%d predicted=%d tp=%d", fin.TruePairs, fin.PredictedPairs, fin.TP)
	}
	if fin.Precision != 0.5 || fin.Recall != 1.0 {
		t.Errorf("precision=%v recall=%v, want 0.5/1.0", fin.Precision, fin.Recall)
	}
	// Two ranked pairs, same order on both sides: divergence 0.
	if fin.RankDivergence != 0 {
		t.Errorf("rank divergence = %v, want 0", fin.RankDivergence)
	}
	if fin.Attributed != 3 {
		t.Errorf("attributed = %d, want 3", fin.Attributed)
	}
}

// TestRankDivergenceReversed checks the normalization: a perfectly
// reversed ranking of m pairs scores 1.
func TestRankDivergenceReversed(t *testing.T) {
	n := 2
	truth := map[int]uint64{
		pairKey(0, 0, n): 10, // truth ranks {0,0} first
		pairKey(0, 1, n): 5,
	}
	learned := stats.NewMatrices(n)
	learned.AddAbort(0, 1) // learner ranks {0,1} first
	learned.AddAbort(0, 1)
	learned.AddAbort(0, 1)
	learned.AddAbort(0, 0)
	if d := rankDivergence(truth, learned, n); d != 1 {
		t.Errorf("reversed ranking divergence = %v, want 1", d)
	}
	// Fewer than two pairs: divergence defined as 0.
	if d := rankDivergence(map[int]uint64{0: 3}, stats.NewMatrices(n), n); d != 0 {
		t.Errorf("single-pair divergence = %v, want 0", d)
	}
}

// TestExporters smoke-tests the three export formats on a tiny attributed
// history: JSONL lines must parse, the Chrome document must be valid JSON,
// and the DOT graph must name the participating blocks.
func TestExporters(t *testing.T) {
	c := NewCollector(3, 2, true)
	c.BlockEnter(0, 0)
	c.BlockEnter(1, 2)
	c.AttemptBegin(1, 100)
	c.OnDoom(1, 0, mem.Line(8))
	c.AttemptAbort(1, 120, 0x1, CauseConflict)
	c.AttemptBegin(1, 130)
	c.AttemptCommit(1, 150)

	var jsonl bytes.Buffer
	if err := c.WriteSpansJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(jsonl.Bytes()))
	lines := 0
	for sc.Scan() {
		lines++
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("JSONL line %d invalid: %v\n%s", lines, err, sc.Text())
		}
		if lines == 1 {
			if m["outcome"] != "abort" || m["line"] != float64(8) || m["aborter_hw"] != float64(0) {
				t.Errorf("abort JSONL = %v", m)
			}
		}
	}
	if lines != 2 {
		t.Errorf("got %d JSONL lines, want 2", lines)
	}

	var chrome bytes.Buffer
	if err := c.WriteChromeSpans(&chrome); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome document invalid: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Errorf("got %d trace events, want 2", len(doc.TraceEvents))
	}

	var dot bytes.Buffer
	if err := c.WriteDOT(&dot); err != nil {
		t.Fatal(err)
	}
	s := dot.String()
	for _, want := range []string{"digraph conflicts", "tx0 [", "tx2 [", "tx0 -> tx2"} {
		if !strings.Contains(s, want) {
			t.Errorf("DOT output missing %q:\n%s", want, s)
		}
	}

	pairs := c.TopPairs(10)
	if len(pairs) != 1 || pairs[0] != (PairCount{Victim: 2, Aborter: 0, Count: 1}) {
		t.Errorf("TopPairs = %v", pairs)
	}
	tl := c.TopLines(10)
	if len(tl) != 1 || tl[0] != (LineCount{Line: 8, Count: 1}) {
		t.Errorf("TopLines = %v", tl)
	}

	var explain bytes.Buffer
	if err := c.WriteExplain(&explain, 5); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"attributed aborts: 1", "tx2", "line 8", "conflict"} {
		if !strings.Contains(explain.String(), want) {
			t.Errorf("explain missing %q:\n%s", want, explain.String())
		}
	}
}

// TestTopPairsOrdering checks the deterministic sort: count descending,
// ties by victim then aborter, truncated at k.
func TestTopPairsOrdering(t *testing.T) {
	c := NewCollector(3, 2, false)
	c.BlockEnter(0, 0)
	doom := func(victimBlock int, times int) {
		c.BlockEnter(1, victimBlock)
		for i := 0; i < times; i++ {
			c.AttemptBegin(1, 0)
			c.OnDoom(1, 0, mem.Line(1))
			c.AttemptAbort(1, 1, 0x1, CauseConflict)
		}
	}
	doom(2, 1)
	doom(1, 3)
	doom(0, 1)

	got := c.TopPairs(0)
	want := []PairCount{
		{Victim: 1, Aborter: 0, Count: 3},
		{Victim: 0, Aborter: 0, Count: 1},
		{Victim: 2, Aborter: 0, Count: 1},
	}
	if len(got) != len(want) {
		t.Fatalf("TopPairs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("TopPairs[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if k2 := c.TopPairs(2); len(k2) != 2 || k2[0] != want[0] {
		t.Errorf("TopPairs(2) = %v", k2)
	}
}
