package txtrace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// WriteSpansJSONL writes every retained attempt span as one JSON object
// per line, ordered by (hardware thread, begin cycle) — the per-thread
// buffers are already chronological. Enabled-only path; allocation is
// fine here.
func (c *Collector) WriteSpansJSONL(w io.Writer) error {
	if c == nil {
		return fmt.Errorf("txtrace: span tracing disabled (set Config.TraceAttempts)")
	}
	bw := bufio.NewWriter(w)
	for hw := range c.shards {
		for _, sp := range c.shards[hw].spans {
			if err := writeSpanJSON(bw, sp); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// writeSpanJSON renders one span; hand-rolled so field order and number
// formatting are stable across Go versions.
func writeSpanJSON(w io.Writer, sp Span) error {
	_, err := fmt.Fprintf(w,
		`{"begin":%d,"end":%d,"hw":%d,"block":%d,"retry":%d,"outcome":%q`,
		sp.Begin, sp.End, sp.HW, sp.Block, sp.Retry, sp.Outcome.String())
	if err != nil {
		return err
	}
	if sp.Outcome == OutcomeAbort {
		if _, err = fmt.Fprintf(w, `,"status":"%#x","depth":%d`, sp.Status, sp.Depth); err != nil {
			return err
		}
		if sp.Line != NoLine {
			if _, err = fmt.Fprintf(w, `,"aborter_hw":%d,"aborter_block":%d,"line":%d`,
				sp.AborterHW, sp.AborterBlock, sp.Line); err != nil {
				return err
			}
		}
	}
	_, err = fmt.Fprintln(w, "}")
	return err
}

// WriteChromeSpans renders the attempt spans as Chrome trace-event
// complete events ("X" phase), one track per hardware thread, loadable
// in chrome://tracing or Perfetto. Abort spans carry the attribution in
// args.
func (c *Collector) WriteChromeSpans(w io.Writer) error {
	if c == nil {
		return fmt.Errorf("txtrace: span tracing disabled (set Config.TraceAttempts)")
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, `{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	for hw := range c.shards {
		for _, sp := range c.shards[hw].spans {
			if !first {
				if _, err := fmt.Fprintln(bw, ","); err != nil {
					return err
				}
			}
			first = false
			dur := sp.End - sp.Begin
			if dur == 0 {
				dur = 1
			}
			_, err := fmt.Fprintf(bw,
				`{"name":"tx%d/%s","cat":"attempt","ph":"X","ts":%d,"dur":%d,"pid":0,"tid":%d,"args":{"retry":%d`,
				sp.Block, sp.Outcome.String(), sp.Begin, dur, sp.HW, sp.Retry)
			if err != nil {
				return err
			}
			if sp.Outcome == OutcomeAbort {
				if _, err = fmt.Fprintf(bw, `,"status":"%#x","depth":%d`, sp.Status, sp.Depth); err != nil {
					return err
				}
				if sp.Line != NoLine {
					if _, err = fmt.Fprintf(bw, `,"aborter_hw":%d,"aborter_block":%d,"line":%d`,
						sp.AborterHW, sp.AborterBlock, sp.Line); err != nil {
						return err
					}
				}
			}
			if _, err = fmt.Fprint(bw, `}}`); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintln(bw, "\n]}"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteDOT renders the ground-truth conflict graph in Graphviz DOT form:
// one node per atomic block that participated in a conflict, one
// directed edge aborter→victim weighted by the doom count. Deterministic
// output (nodes and edges in ascending block order).
func (c *Collector) WriteDOT(w io.Writer) error {
	if c == nil {
		return fmt.Errorf("txtrace: attribution disabled (set Config.TraceAttempts or Config.AttributionCounters)")
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "digraph conflicts {")
	fmt.Fprintln(bw, "  rankdir=LR;")
	fmt.Fprintln(bw, "  node [shape=box];")
	n := c.nBlocks
	used := make([]bool, n)
	var maxW uint64
	for v := 0; v < n; v++ {
		for a := 0; a < n; a++ {
			if w := c.truth[v*n+a]; w > 0 {
				used[v], used[a] = true, true
				if w > maxW {
					maxW = w
				}
			}
		}
	}
	for b := 0; b < n; b++ {
		if used[b] {
			fmt.Fprintf(bw, "  tx%d [label=\"block %d\"];\n", b, b)
		}
	}
	for a := 0; a < n; a++ {
		for v := 0; v < n; v++ {
			w := c.truth[v*n+a]
			if w == 0 {
				continue
			}
			// Pen width scales with relative weight so hot edges pop.
			pw := 1 + 4*float64(w)/float64(maxW)
			fmt.Fprintf(bw, "  tx%d -> tx%d [label=\"%d\", penwidth=%.2f];\n", a, v, w, pw)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// PairCount is one victim←aborter conflict edge with its doom count.
type PairCount struct {
	Victim  int    `json:"victim"`
	Aborter int    `json:"aborter"`
	Count   uint64 `json:"count"`
}

// TopPairs returns the k heaviest ground-truth conflict edges, sorted by
// count descending, then victim, then aborter (deterministic).
func (c *Collector) TopPairs(k int) []PairCount {
	if c == nil {
		return nil
	}
	n := c.nBlocks
	out := make([]PairCount, 0, 8)
	for v := 0; v < n; v++ {
		for a := 0; a < n; a++ {
			if w := c.truth[v*n+a]; w > 0 {
				out = append(out, PairCount{Victim: v, Aborter: a, Count: w})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Victim != out[j].Victim {
			return out[i].Victim < out[j].Victim
		}
		return out[i].Aborter < out[j].Aborter
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// LineCount is one cache line with its conflict (doom) count.
type LineCount struct {
	Line  uint32 `json:"line"`
	Count uint64 `json:"count"`
}

// TopLines returns the k hottest conflicting cache lines, sorted by
// count descending then line ascending (deterministic).
func (c *Collector) TopLines(k int) []LineCount {
	if c == nil {
		return nil
	}
	out := make([]LineCount, 0, len(c.lineConflicts))
	for ln, w := range c.lineConflicts {
		out = append(out, LineCount{Line: ln, Count: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Line < out[j].Line
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
