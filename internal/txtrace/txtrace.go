// Package txtrace is the attempt-level tracing and abort-attribution
// subsystem of the runtime. Where internal/telemetry aggregates interval
// counters and internal/trace retains a bounded event ring, txtrace keeps
// the causal record the paper's authors could never obtain from real TSX
// hardware: for every hardware attempt, a span (begin/end cycle, outcome,
// retry index, fall-back path) carrying ground-truth attribution of the
// abort — the conflicting cache line, the aborter/victim thread pair and
// the atomic-block pair — captured at the instant the memory's conflict
// registry detects the clash, plus the cascade depth when one abort
// triggers follow-on aborts.
//
// On top of the raw spans, the collector accumulates the ground-truth
// block×block conflict matrix and, per metrics interval, compares it with
// the locking scheme Seer inferred from its imprecise feedback (see
// quality.go) — the direct inference-accuracy measurement behind the
// `seerbench -experiment inference` exhibit and `seerstat -explain`.
//
// Discipline mirrors the telemetry shards: a nil *Collector is a valid,
// disabled collector (every method is a no-op, one predictable branch),
// recording never advances the virtual clock — so schedules are
// byte-identical with tracing on or off — and spans append to per-thread
// buffers owned by the single-goroutine engine, so no synchronization is
// needed.
package txtrace

import (
	"seer/internal/mem"
	"seer/internal/trace"
)

// Cause classifies an abort for the attribution counters, mirroring the
// priority order of internal/telemetry's Cause (asserted by tests).
type Cause uint8

// Abort causes.
const (
	CauseConflict Cause = iota
	CauseCapacity
	CauseExplicit
	CauseSpurious
	CauseOther
	NumCauses
)

// CauseNames are the rendering labels per cause slot.
var CauseNames = [NumCauses]string{"conflict", "capacity", "explicit", "spurious", "other"}

// Outcome classifies how an attempt span ended.
type Outcome uint8

// Span outcomes.
const (
	OutcomeCommit   Outcome = iota // hardware transaction committed
	OutcomeAbort                   // hardware transaction aborted
	OutcomeFallback                // single-global-lock software path
)

// String returns the outcome's mnemonic.
func (o Outcome) String() string {
	switch o {
	case OutcomeCommit:
		return "commit"
	case OutcomeAbort:
		return "abort"
	default:
		return "sgl"
	}
}

// NoLine marks a span without an attributed conflict line.
const NoLine = ^uint32(0)

// MaxCascadeDepth caps the cascade-depth histogram; deeper chains fold
// into the last bucket.
const MaxCascadeDepth = 15

// Span is one transaction attempt (or one fall-back execution). Abort
// spans carry the ground-truth attribution captured when the conflict
// registry doomed the victim; AborterHW is -1 for aborts with no
// attributable requester (capacity, spurious, explicit, or a doom issued
// outside any atomic block).
type Span struct {
	Begin uint64 `json:"begin"`
	End   uint64 `json:"end"`
	HW    int16  `json:"hw"`
	Block int16  `json:"block"`
	// Retry is the attempt index within the atomic-block episode
	// (0 = first hardware attempt).
	Retry   uint8   `json:"retry"`
	Outcome Outcome `json:"-"`
	// Status is the raw HTM status word of an abort span (0 otherwise).
	Status uint32 `json:"status,omitempty"`
	// AborterHW/AborterBlock identify the access that doomed this
	// attempt (-1 when unattributed).
	AborterHW    int16 `json:"aborter_hw"`
	AborterBlock int16 `json:"aborter_block"`
	// Line is the conflicting cache line (NoLine when unattributed).
	Line uint32 `json:"line,omitempty"`
	// Depth is the abort's cascade depth: 0 for a root abort, d+1 when
	// the aborter was itself retrying after an abort of depth d.
	Depth uint16 `json:"depth"`
}

// pending is the doom-time attribution parked until the victim observes
// its abort and closes the span (the victim notices asynchronously, at
// its next instruction boundary, so the clash point cannot stamp the
// span's end cycle itself).
type pending struct {
	aborterHW    int16
	aborterBlock int16
	line         uint32
	depth        uint16
	valid        bool
}

// shard is one hardware thread's append-only span buffer.
type shard struct {
	spans []Span
}

// Collector owns the per-thread span shards and every attribution
// accumulator. One per system; all methods are nil-safe.
type Collector struct {
	nBlocks int
	spans   bool // retain full spans (attribution counters are always on)

	shards []shard

	// Per-hardware-thread episode state, written only by the owning
	// thread (and by OnDoom, which the engine serializes like any access).
	block     []int16  // current atomic block, -1 when idle
	retry     []uint8  // attempts issued in the current episode
	begin     []uint64 // begin cycle of the in-flight attempt
	inAttempt []bool   // between AttemptBegin and commit/abort
	aborted   []bool   // aborted at least once in the current episode
	lastDepth []uint16 // cascade depth of the episode's latest abort
	pend      []pending

	// truth is the ground-truth conflict matrix: truth[victim*n+aborter]
	// counts dooms of an attempt of block `victim` by an access of block
	// `aborter`, excluding ignored lines (the SGL word, whose conflicts
	// are fall-back mechanics rather than data conflicts).
	truth []uint64
	// causeBlock[cause*n+block] counts aborts by cause per victim block.
	causeBlock []uint64
	// cascadeHist[d] counts aborts of cascade depth d (capped).
	cascadeHist [MaxCascadeDepth + 1]uint64
	// lineConflicts counts dooms per conflicting cache line.
	lineConflicts map[uint32]uint64
	// attributed counts aborts that consumed a doom-time attribution.
	attributed uint64

	ignored map[uint32]bool // lines excluded from the truth matrix

	trc *trace.Log // optional: attribution mirrored as EvDoom events

	qual quality // inference-quality accumulator (quality.go)
}

// NewCollector creates a collector for nBlocks atomic blocks on a machine
// with threads hardware threads. spans selects full span retention; with
// it false the collector keeps only the attribution counters and the
// conflict matrix (the telemetry-timeline mode).
func NewCollector(nBlocks, threads int, spans bool) *Collector {
	c := &Collector{
		nBlocks:       nBlocks,
		spans:         spans,
		shards:        make([]shard, threads),
		block:         make([]int16, threads),
		retry:         make([]uint8, threads),
		begin:         make([]uint64, threads),
		inAttempt:     make([]bool, threads),
		aborted:       make([]bool, threads),
		lastDepth:     make([]uint16, threads),
		pend:          make([]pending, threads),
		truth:         make([]uint64, nBlocks*nBlocks),
		causeBlock:    make([]uint64, int(NumCauses)*nBlocks),
		lineConflicts: make(map[uint32]uint64),
		ignored:       make(map[uint32]bool),
	}
	for i := range c.block {
		c.block[i] = -1
	}
	return c
}

// NumBlocks returns the number of atomic blocks (0 on a nil collector).
func (c *Collector) NumBlocks() int {
	if c == nil {
		return 0
	}
	return c.nBlocks
}

// SpansEnabled reports whether full span retention is on.
func (c *Collector) SpansEnabled() bool { return c != nil && c.spans }

// IgnoreLine excludes a cache line from the ground-truth conflict matrix
// and the hot-line ranking. The system registers the single-global-lock
// word here: every attempt subscribes to it, so its conflicts describe
// the fall-back protocol, not the workload's data.
func (c *Collector) IgnoreLine(ln uint32) {
	if c == nil {
		return
	}
	c.ignored[ln] = true
}

// SetTraceLog mirrors each consumed attribution into the bounded event
// log as an EvDoom event (Detail = conflicting line, Detail2 = packed
// aborter hw/block).
func (c *Collector) SetTraceLog(l *trace.Log) {
	if c == nil {
		return
	}
	c.trc = l
}

// BlockEnter opens an atomic-block episode for hardware thread hw.
func (c *Collector) BlockEnter(hw, block int) {
	if c == nil {
		return
	}
	c.block[hw] = int16(block)
	c.retry[hw] = 0
	c.aborted[hw] = false
	c.lastDepth[hw] = 0
	c.pend[hw].valid = false
}

// BlockExit closes hw's episode.
func (c *Collector) BlockExit(hw int) {
	if c == nil {
		return
	}
	c.block[hw] = -1
	c.inAttempt[hw] = false
	c.aborted[hw] = false
	c.pend[hw].valid = false
}

// AttemptBegin opens a hardware-attempt span at the given cycle.
func (c *Collector) AttemptBegin(hw int, cycle uint64) {
	if c == nil {
		return
	}
	c.begin[hw] = cycle
	c.inAttempt[hw] = true
	c.pend[hw].valid = false
}

// AttemptCommit closes the in-flight attempt span as a commit.
func (c *Collector) AttemptCommit(hw int, cycle uint64) {
	if c == nil {
		return
	}
	c.inAttempt[hw] = false
	retry := c.retry[hw]
	c.retry[hw]++
	if !c.spans {
		return
	}
	c.shards[hw].spans = append(c.shards[hw].spans, Span{
		Begin: c.begin[hw], End: cycle, HW: int16(hw), Block: c.block[hw],
		Retry: retry, Outcome: OutcomeCommit,
		AborterHW: -1, AborterBlock: -1, Line: NoLine,
	})
}

// AttemptAbort closes the in-flight attempt span as an abort, consuming
// any doom-time attribution parked by OnDoom.
func (c *Collector) AttemptAbort(hw int, cycle uint64, status uint32, cause Cause) {
	if c == nil {
		return
	}
	c.inAttempt[hw] = false
	retry := c.retry[hw]
	c.retry[hw]++
	c.aborted[hw] = true

	sp := Span{
		Begin: c.begin[hw], End: cycle, HW: int16(hw), Block: c.block[hw],
		Retry: retry, Outcome: OutcomeAbort, Status: status,
		AborterHW: -1, AborterBlock: -1, Line: NoLine,
	}
	if p := &c.pend[hw]; p.valid {
		p.valid = false
		sp.AborterHW = p.aborterHW
		sp.AborterBlock = p.aborterBlock
		sp.Line = p.line
		sp.Depth = p.depth
		c.attributed++
		c.trc.Record2(cycle, hw, trace.EvDoom, int(sp.Block), sp.Line,
			packAborter(p.aborterHW, p.aborterBlock))
	}
	c.lastDepth[hw] = sp.Depth
	d := sp.Depth
	if d > MaxCascadeDepth {
		d = MaxCascadeDepth
	}
	c.cascadeHist[d]++
	if b := int(sp.Block); b >= 0 && cause < NumCauses {
		c.causeBlock[int(cause)*c.nBlocks+b]++
	}
	if c.spans {
		c.shards[hw].spans = append(c.shards[hw].spans, sp)
	}
}

// Fallback records one single-global-lock execution as a span covering
// acquisition wait, body and release.
func (c *Collector) Fallback(hw int, begin, end uint64) {
	if c == nil || !c.spans {
		return
	}
	c.shards[hw].spans = append(c.shards[hw].spans, Span{
		Begin: begin, End: end, HW: int16(hw), Block: c.block[hw],
		Retry: c.retry[hw], Outcome: OutcomeFallback,
		AborterHW: -1, AborterBlock: -1, Line: NoLine,
	})
}

// packAborter encodes the aborter for the EvDoom event's second payload.
func packAborter(hw, block int16) uint32 {
	return uint32(uint16(hw))<<16 | uint32(uint16(block))
}

// UnpackAborter decodes an EvDoom Detail2 payload.
func UnpackAborter(d uint32) (hw, block int16) {
	return int16(d >> 16), int16(d & 0xFFFF)
}

// OnDoom is the HTM's doom hook: the access of hardware thread aborter
// has doomed the transaction of hardware thread victim on cache line ln.
// It parks the attribution for the victim's abort span and, when the
// victim is inside a policy-level attempt and the line is not ignored,
// feeds the ground-truth conflict matrix, the hot-line ranking and the
// cascade chain.
func (c *Collector) OnDoom(victim, aborter int, ln mem.Line) {
	if c == nil {
		return
	}
	var aBlock int16 = -1
	var aHW int16 = -1
	depth := uint16(0)
	if aborter >= 0 {
		aHW = int16(aborter)
		aBlock = c.block[aborter]
		if c.aborted[aborter] {
			// The aborter is retrying after its own abort: this doom
			// extends that blame chain.
			depth = c.lastDepth[aborter] + 1
		}
	}
	c.pend[victim] = pending{
		aborterHW: aHW, aborterBlock: aBlock,
		line: uint32(ln), depth: depth, valid: true,
	}
	if !c.inAttempt[victim] || c.ignored[uint32(ln)] {
		// Dooms of scheduler-internal transactions (Seer's multi-CAS lock
		// acquisition) and conflicts on ignored lines attribute the span
		// but do not describe workload data conflicts.
		return
	}
	if v, a := c.block[victim], aBlock; v >= 0 && a >= 0 {
		c.truth[int(v)*c.nBlocks+int(a)]++
	}
	c.lineConflicts[uint32(ln)]++
}

// --- Read-only views (explain, exporters, telemetry probes) ---

// Spans returns hardware thread hw's span buffer (borrowed, not copied).
func (c *Collector) Spans(hw int) []Span {
	if c == nil {
		return nil
	}
	return c.shards[hw].spans
}

// SpanCount returns the total retained spans across threads.
func (c *Collector) SpanCount() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		n += len(c.shards[i].spans)
	}
	return n
}

// Threads returns the number of hardware-thread shards.
func (c *Collector) Threads() int {
	if c == nil {
		return 0
	}
	return len(c.shards)
}

// TruthPair returns the ground-truth conflict count of (victim, aborter).
func (c *Collector) TruthPair(victim, aborter int) uint64 {
	if c == nil {
		return 0
	}
	return c.truth[victim*c.nBlocks+aborter]
}

// TruthMatrix returns the flat victim-major conflict matrix (borrowed).
func (c *Collector) TruthMatrix() []uint64 {
	if c == nil {
		return nil
	}
	return c.truth
}

// CauseBlock returns aborts of the given cause whose victim ran block b.
func (c *Collector) CauseBlock(cause Cause, b int) uint64 {
	if c == nil {
		return 0
	}
	return c.causeBlock[int(cause)*c.nBlocks+b]
}

// CascadeHist returns the cascade-depth histogram (borrowed).
func (c *Collector) CascadeHist() []uint64 {
	if c == nil {
		return nil
	}
	return c.cascadeHist[:]
}

// Attributed returns the number of aborts that carried ground-truth
// attribution.
func (c *Collector) Attributed() uint64 {
	if c == nil {
		return 0
	}
	return c.attributed
}

// LineConflicts returns the per-line doom counts (borrowed map; iterate
// with a deterministic sort).
func (c *Collector) LineConflicts() map[uint32]uint64 {
	if c == nil {
		return nil
	}
	return c.lineConflicts
}

// AttrProbe returns the cumulative-views closure the telemetry recorder
// diffs per interval (assignable to telemetry.AttrProbe; nil on a nil
// collector, which SetAttribution treats as disabled).
func (c *Collector) AttrProbe() func() (truth []uint64, nBlocks int, cascade []uint64) {
	if c == nil {
		return nil
	}
	return func() ([]uint64, int, []uint64) {
		return c.truth, c.nBlocks, c.cascadeHist[:]
	}
}
