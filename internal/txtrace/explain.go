package txtrace

import (
	"fmt"
	"io"
)

// WriteExplain renders the attribution digest behind `seerstat -explain`:
// the top-K aborting block pairs with ground-truth attribution, the
// hottest conflicting cache lines, the per-cause abort counts per block,
// the cascade-depth histogram, and — when inference introspection ran —
// the final precision/recall of Seer's learned locks against truth.
// Output is deterministic for a deterministic run.
func (c *Collector) WriteExplain(w io.Writer, topK int) error {
	if c == nil {
		return fmt.Errorf("txtrace: attribution disabled (set Config.TraceAttempts or Config.AttributionCounters)")
	}
	if topK <= 0 {
		topK = 10
	}

	fmt.Fprintf(w, "attributed aborts: %d\n", c.attributed)

	fmt.Fprintf(w, "top conflicting block pairs (victim <- aborter):\n")
	pairs := c.TopPairs(topK)
	if len(pairs) == 0 {
		fmt.Fprintln(w, "  (none)")
	}
	for _, p := range pairs {
		fmt.Fprintf(w, "  tx%-3d <- tx%-3d  %8d dooms\n", p.Victim, p.Aborter, p.Count)
	}

	fmt.Fprintf(w, "hot conflict lines:\n")
	lines := c.TopLines(topK)
	if len(lines) == 0 {
		fmt.Fprintln(w, "  (none)")
	}
	for _, l := range lines {
		fmt.Fprintf(w, "  line %-8d %8d dooms\n", l.Line, l.Count)
	}

	fmt.Fprintf(w, "aborts by cause x victim block:\n")
	for cause := Cause(0); cause < NumCauses; cause++ {
		var total uint64
		for b := 0; b < c.nBlocks; b++ {
			total += c.causeBlock[int(cause)*c.nBlocks+b]
		}
		if total == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-9s total=%d", CauseNames[cause], total)
		for b := 0; b < c.nBlocks; b++ {
			if v := c.causeBlock[int(cause)*c.nBlocks+b]; v > 0 {
				fmt.Fprintf(w, " tx%d=%d", b, v)
			}
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "cascade depth histogram:\n")
	last := 0
	for d, v := range c.cascadeHist {
		if v > 0 {
			last = d
		}
	}
	for d := 0; d <= last; d++ {
		label := fmt.Sprintf("%d", d)
		if d == MaxCascadeDepth {
			label = fmt.Sprintf("%d+", d)
		}
		fmt.Fprintf(w, "  depth %-3s %8d\n", label, c.cascadeHist[d])
	}

	if snaps := c.Quality(); len(snaps) > 0 {
		fin := snaps[len(snaps)-1]
		fmt.Fprintf(w, "inference quality (final of %d snapshots):\n", len(snaps))
		fmt.Fprintf(w, "  true pairs=%d predicted=%d tp=%d precision=%.3f recall=%.3f rank-divergence=%.3f\n",
			fin.TruePairs, fin.PredictedPairs, fin.TP, fin.Precision, fin.Recall, fin.RankDivergence)
	}
	return nil
}
