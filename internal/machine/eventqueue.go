package machine

import "math/bits"

// event is one pending wakeup in the engine's schedule: thread id resumes
// when the global virtual time reaches cycle.
type event struct {
	cycle uint64
	id    int32
}

// before orders events by (cycle, id): earlier virtual time first, ties
// broken by the lower thread id. The id tie-break is what makes the
// schedule total and therefore the whole simulation deterministic — it
// mirrors the seed engine's linear scan, which resolved equal clocks in
// favor of the lowest index.
func (a event) before(b event) bool {
	return a.cycle < b.cycle || (a.cycle == b.cycle && a.id < b.id)
}

// queueWords is the width of the occupancy bitmask: one bit per
// hardware thread id up to MaxHWThreads.
const queueWords = MaxHWThreads / 64

// groupBits is the log2 of the id-group granularity of the lowest cache
// level: ids are grouped in runs of 8, one occupancy byte per group.
const groupBits = 3

// eventQueue is the scheduler's pending-wakeup set, ordered by
// event.before. The engine queues at most one event per hardware thread
// (its next wakeup, or its park deadline), so the queue is a flat
// per-thread cycle array plus a hierarchical occupancy bitmap with
// cached minima at every level:
//
//   - active[w] has one bit per thread id in [64w, 64w+64); summary has
//     bit w set iff active[w] != 0, so the occupied words are found with
//     TrailingZeros64 hops over one word instead of a scan of all
//     queueWords.
//   - groupMin[g] caches the minimum event among ids [8g, 8g+8), valid
//     while the group's occupancy byte in its active word is nonzero.
//   - wordMin[w] caches the minimum over word w's groups, valid while
//     the summary bit is set; min caches the global minimum.
//
// Removing the minimum — the hot operation of every scheduling step —
// therefore rescans at most the 8 ids of one group, recombines at most
// the 8 group minima of one word, and recombines the ≤ queueWords word
// minima through the summary walk: O(8 + 8 + queueWords) independent of
// how many threads are live. The flat predecessor rescanned every live
// id on every pop, which was the profile's top cost at the 128–256-
// thread scaling shapes.
//
// Every level resolves ties by visiting candidates in ascending id
// order with a strict cycle comparison, so the cached minima always
// carry the lowest id for their cycle — exactly event.before's total
// order, which is what keeps schedules bit-for-bit reproducible.
type eventQueue struct {
	n       int                // number of queued events
	min     event              // cached minimum; valid only while n != 0
	summary uint64             // bit w set iff active[w] != 0
	active  [queueWords]uint64 // bitmask of thread ids with a queued event
	wordMin [queueWords]event  // per-word cached minimum; valid while the summary bit is set
	// groupMin caches per-8-id-group minima; entry g is valid while byte
	// g&7 of active[g>>3] is nonzero.
	groupMin [queueWords << groupBits]event
	cycles   [MaxHWThreads]uint64
}

// empty reports whether no events are queued.
func (q *eventQueue) empty() bool { return q.n == 0 }

// clear discards all queued events.
func (q *eventQueue) clear() {
	q.n = 0
	q.summary = 0
	q.active = [queueWords]uint64{}
}

// groupMask returns the occupancy byte of group g within its active
// word, positioned in place.
func groupMask(g uint32) uint64 {
	return 0xFF << ((g & 7) << 3)
}

// insert adds thread ev.id's wakeup to the bitmap and the group/word min
// caches without touching the global cached minimum or the event count.
func (q *eventQueue) insert(ev event) {
	q.cycles[ev.id] = ev.cycle
	w := uint32(ev.id) >> 6
	g := uint32(ev.id) >> groupBits
	if q.active[w]&groupMask(g) == 0 || ev.before(q.groupMin[g]) {
		q.groupMin[g] = ev
	}
	if q.summary&(1<<w) == 0 {
		q.summary |= 1 << w
		q.wordMin[w] = ev
	} else if ev.before(q.wordMin[w]) {
		q.wordMin[w] = ev
	}
	q.active[w] |= 1 << (uint32(ev.id) & 63)
}

// push inserts thread ev.id's wakeup. The thread must not already have an
// event queued (the engine pops a thread's event before the thread can
// push a new one).
func (q *eventQueue) push(ev event) {
	q.insert(ev)
	if q.n == 0 || ev.before(q.min) {
		q.min = ev
	}
	q.n++
}

// remove deletes thread id's event from the bitmap, keeping the group
// and word min caches valid: a cache is rebuilt only when the removed id
// was its cached minimum (for the pop path that is exactly one group
// rescan and one word recombine). The global minimum is NOT recomputed
// here.
func (q *eventQueue) remove(id int32) {
	w := uint32(id) >> 6
	q.active[w] &^= 1 << (uint32(id) & 63)
	q.n--
	if q.active[w] == 0 {
		q.summary &^= 1 << w
		return
	}
	g := uint32(id) >> groupBits
	if q.active[w]&groupMask(g) != 0 && q.groupMin[g].id == id {
		q.rescanGroup(g)
	}
	if q.wordMin[w].id == id {
		q.rescanWord(w)
	}
}

// rescanGroup recomputes groupMin[g] from the group's live ids. Ids are
// visited in ascending order, so the strict cycle comparison resolves
// ties in favor of the lowest id. The group must be occupied.
func (q *eventQueue) rescanGroup(g uint32) {
	m := (q.active[g>>3] >> ((g & 7) << 3)) & 0xFF
	base := int32(g << groupBits)
	id := base + int32(bits.TrailingZeros64(m))
	best := event{cycle: q.cycles[id], id: id}
	for m &= m - 1; m != 0; m &= m - 1 {
		id = base + int32(bits.TrailingZeros64(m))
		if c := q.cycles[id]; c < best.cycle {
			best = event{cycle: c, id: id}
		}
	}
	q.groupMin[g] = best
}

// rescanWord recomputes wordMin[w] by combining the word's occupied
// group minima, visited in ascending group order (lower groups hold
// lower ids, so the strict cycle comparison keeps event.before's
// tie-break). The word must be occupied, and its group caches valid.
func (q *eventQueue) rescanWord(w uint32) {
	m := q.active[w]
	gbase := w << groupBits
	k := uint32(bits.TrailingZeros64(m)) >> 3
	best := q.groupMin[gbase+k]
	for m &^= 0xFF << (k << 3); m != 0; m &^= 0xFF << (k << 3) {
		k = uint32(bits.TrailingZeros64(m)) >> 3
		if gm := q.groupMin[gbase+k]; gm.cycle < best.cycle {
			best = gm
		}
	}
	q.wordMin[w] = best
}

// combine recomputes the global cached minimum from the per-word minima,
// walking only the occupied words via the summary bitmap — again in
// ascending order with a strict comparison, realizing event.before's
// total order. Must not be called on an empty queue.
func (q *eventQueue) combine() {
	s := q.summary
	w := uint32(bits.TrailingZeros64(s))
	best := q.wordMin[w]
	for s &= s - 1; s != 0; s &= s - 1 {
		w = uint32(bits.TrailingZeros64(s))
		if wm := q.wordMin[w]; wm.cycle < best.cycle {
			best = wm
		}
	}
	q.min = best
}

// pop removes and returns the minimum event. It must not be called on an
// empty queue.
func (q *eventQueue) pop() event {
	top := q.min
	q.remove(top.id)
	if q.n != 0 {
		q.combine()
	}
	return top
}

// replaceMin swaps ev in for the minimum event and returns that minimum.
// The scheduler loop uses it for the common yield: the resumed thread's
// new wakeup goes in as the old minimum comes out. It must not be called
// on an empty queue, and ev must not precede the current minimum (the
// loop handles that case without touching the queue at all).
func (q *eventQueue) replaceMin(ev event) event {
	top := q.min
	q.remove(top.id)
	q.insert(ev)
	q.n++
	q.combine()
	return top
}

// decreaseKey moves thread id's pending event to the earlier cycle. The
// engine's wake path uses it to pull a bounded waiter's deadline event
// forward to the poll boundary computed from a lock release; the new
// cycle must not exceed the event's current one. It panics if no event
// with the given id is queued, which would be an engine bug.
func (q *eventQueue) decreaseKey(id int32, cycle uint64) {
	w := uint32(id) >> 6
	if q.active[w]&(1<<(uint32(id)&63)) == 0 {
		panic("machine: decreaseKey on a thread with no queued event")
	}
	q.cycles[id] = cycle
	ev := event{cycle: cycle, id: id}
	if ev.before(q.groupMin[uint32(id)>>groupBits]) {
		q.groupMin[uint32(id)>>groupBits] = ev
	}
	if ev.before(q.wordMin[w]) {
		q.wordMin[w] = ev
	}
	if ev.before(q.min) {
		q.min = ev
	}
}
