package machine

import "math/bits"

// event is one pending wakeup in the engine's schedule: thread id resumes
// when the global virtual time reaches cycle.
type event struct {
	cycle uint64
	id    int32
}

// before orders events by (cycle, id): earlier virtual time first, ties
// broken by the lower thread id. The id tie-break is what makes the
// schedule total and therefore the whole simulation deterministic — it
// mirrors the seed engine's linear scan, which resolved equal clocks in
// favor of the lowest index.
func (a event) before(b event) bool {
	return a.cycle < b.cycle || (a.cycle == b.cycle && a.id < b.id)
}

// queueWords is the width of the occupancy bitmask: one bit per
// hardware thread id up to MaxHWThreads.
const queueWords = MaxHWThreads / 64

// eventQueue is the scheduler's pending-wakeup set, ordered by
// event.before. The engine queues at most one event per hardware thread
// (its next wakeup, or its park deadline), so the queue is a flat
// per-thread cycle array plus an occupancy bitmask with a cached
// minimum: every mutation is a few word ops, and extraction is one
// branch-light scan of the live ids instead of a binary heap's sift
// (measurably faster at the ≤ 16 live threads of every experiment).
//
// The mask is a multi-word bitset so MaxHWThreads can exceed 64; hi
// tracks the highest word ever occupied this run, so machines that fit
// in one word — every pre-existing exhibit shape — still pay exactly
// the old single-word scan.
type eventQueue struct {
	n      int                // number of queued events
	hi     int                // words [hi:] are known zero; min scan stops there
	min    event              // cached minimum; valid only while n != 0
	active [queueWords]uint64 // bitmask of thread ids with a queued event
	cycles [MaxHWThreads]uint64
}

// empty reports whether no events are queued.
func (q *eventQueue) empty() bool { return q.n == 0 }

// clear discards all queued events.
func (q *eventQueue) clear() {
	q.n = 0
	q.hi = 0
	q.active = [queueWords]uint64{}
}

// push inserts thread ev.id's wakeup. The thread must not already have an
// event queued (the engine pops a thread's event before the thread can
// push a new one).
func (q *eventQueue) push(ev event) {
	q.cycles[ev.id] = ev.cycle
	if q.n == 0 || ev.before(q.min) {
		q.min = ev
	}
	w := int(uint32(ev.id) >> 6)
	q.active[w] |= 1 << (uint32(ev.id) & 63)
	if w >= q.hi {
		q.hi = w + 1
	}
	q.n++
}

// rescan recomputes the cached minimum. Words — and ids within a word —
// are visited in ascending order, so the strict cycle comparison
// resolves ties in favor of the lowest id — exactly event.before's
// order. Must not be called on an empty queue.
func (q *eventQueue) rescan() {
	if q.hi == 1 {
		// Single-word machine (≤ 64 threads, every pre-topology shape):
		// one tight mask scan, no outer loop.
		m := q.active[0]
		id := int32(bits.TrailingZeros64(m))
		best := event{cycle: q.cycles[id], id: id}
		for m &= m - 1; m != 0; m &= m - 1 {
			id = int32(bits.TrailingZeros64(m))
			if c := q.cycles[id]; c < best.cycle {
				best = event{cycle: c, id: id}
			}
		}
		q.min = best
		return
	}
	first := true
	var best event
	for wi := 0; wi < q.hi; wi++ {
		base := int32(wi << 6)
		for m := q.active[wi]; m != 0; m &= m - 1 {
			id := base + int32(bits.TrailingZeros64(m))
			if c := q.cycles[id]; first || c < best.cycle {
				best = event{cycle: c, id: id}
				first = false
			}
		}
	}
	q.min = best
}

// pop removes and returns the minimum event. It must not be called on an
// empty queue.
func (q *eventQueue) pop() event {
	top := q.min
	q.active[uint32(top.id)>>6] &^= 1 << (uint32(top.id) & 63)
	q.n--
	if q.n != 0 {
		q.rescan()
	}
	return top
}

// replaceMin swaps ev in for the minimum event and returns that minimum.
// The scheduler loop uses it for the common yield: the resumed thread's
// new wakeup goes in as the old minimum comes out. It must not be called
// on an empty queue, and ev must not precede the current minimum (the
// loop handles that case without touching the queue at all).
func (q *eventQueue) replaceMin(ev event) event {
	top := q.min
	q.active[uint32(top.id)>>6] &^= 1 << (uint32(top.id) & 63)
	q.cycles[ev.id] = ev.cycle
	w := int(uint32(ev.id) >> 6)
	q.active[w] |= 1 << (uint32(ev.id) & 63)
	if w >= q.hi {
		q.hi = w + 1
	}
	q.rescan()
	return top
}

// decreaseKey moves thread id's pending event to the earlier cycle. The
// engine's wake path uses it to pull a bounded waiter's deadline event
// forward to the poll boundary computed from a lock release; the new
// cycle must not exceed the event's current one. It panics if no event
// with the given id is queued, which would be an engine bug.
func (q *eventQueue) decreaseKey(id int32, cycle uint64) {
	if q.active[uint32(id)>>6]&(1<<(uint32(id)&63)) == 0 {
		panic("machine: decreaseKey on a thread with no queued event")
	}
	q.cycles[id] = cycle
	if ev := (event{cycle: cycle, id: id}); ev.before(q.min) {
		q.min = ev
	}
}
