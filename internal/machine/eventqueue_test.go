package machine

import (
	"sort"
	"testing"
	"testing/quick"
)

// TestEventQueueTieBreak: events with equal wakeup cycles must pop in
// thread-id order — the rule that makes the schedule total and the
// simulation deterministic.
func TestEventQueueTieBreak(t *testing.T) {
	insertions := [][]int32{
		{3, 0, 2, 1},
		{0, 1, 2, 3},
		{3, 2, 1, 0},
		{1, 3, 0, 2},
	}
	for _, ids := range insertions {
		var q eventQueue
		for _, id := range ids {
			q.push(event{cycle: 7, id: id})
		}
		for want := int32(0); want < 4; want++ {
			if got := q.pop(); got.id != want || got.cycle != 7 {
				t.Fatalf("insertion order %v: pop = %+v, want id %d", ids, got, want)
			}
		}
	}
}

// TestEventQueueInterleavedTies mixes cycles and ids: pops must come out
// in (cycle, id) lexicographic order even when pushes interleave with
// pops.
func TestEventQueueInterleavedTies(t *testing.T) {
	var q eventQueue
	q.push(event{cycle: 10, id: 2})
	q.push(event{cycle: 10, id: 1})
	q.push(event{cycle: 5, id: 3})
	if got := q.pop(); got != (event{cycle: 5, id: 3}) {
		t.Fatalf("pop = %+v, want {5 3}", got)
	}
	q.push(event{cycle: 5, id: 0}) // earlier than both queued events
	q.push(event{cycle: 10, id: 3})
	want := []event{{5, 0}, {10, 1}, {10, 2}, {10, 3}}
	for _, w := range want {
		if got := q.pop(); got != w {
			t.Fatalf("pop = %+v, want %+v", got, w)
		}
	}
	if !q.empty() {
		t.Fatalf("queue not empty after draining: %+v", q)
	}
}

// TestEventQueueReplaceMin: the combined swap must return the old minimum
// and leave the queue ordered, including when the incoming event ties an
// existing one.
func TestEventQueueReplaceMin(t *testing.T) {
	var q eventQueue
	q.push(event{cycle: 4, id: 2})
	q.push(event{cycle: 9, id: 1})
	if got := q.replaceMin(event{cycle: 9, id: 0}); got != (event{cycle: 4, id: 2}) {
		t.Fatalf("replaceMin = %+v, want {4 2}", got)
	}
	want := []event{{9, 0}, {9, 1}}
	for _, w := range want {
		if got := q.pop(); got != w {
			t.Fatalf("pop = %+v, want %+v", got, w)
		}
	}
}

// TestEventQueueQuickSorted: for random per-thread cycle assignments (one
// event per thread, as the engine guarantees), popping yields the
// (cycle, id)-sorted order.
func TestEventQueueQuickSorted(t *testing.T) {
	f := func(cycles []uint16) bool {
		n := len(cycles)
		if n > MaxHWThreads {
			n = MaxHWThreads
		}
		var q eventQueue
		evs := make([]event, n)
		for i := 0; i < n; i++ {
			evs[i] = event{cycle: uint64(cycles[i]), id: int32(i)}
			q.push(evs[i])
		}
		sort.Slice(evs, func(i, j int) bool { return evs[i].before(evs[j]) })
		for _, want := range evs {
			if got := q.pop(); got != want {
				return false
			}
		}
		return q.empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEventQueueDecreaseKey: pulling a queued event forward must reorder
// it ahead of events it now precedes.
func TestEventQueueDecreaseKey(t *testing.T) {
	var q eventQueue
	q.push(event{cycle: 50, id: 0})
	q.push(event{cycle: 20, id: 1})
	q.decreaseKey(0, 10)
	if got := q.pop(); got != (event{cycle: 10, id: 0}) {
		t.Fatalf("pop = %+v, want {10 0}", got)
	}
	if got := q.pop(); got != (event{cycle: 20, id: 1}) {
		t.Fatalf("pop = %+v, want {20 1}", got)
	}
}

// TestEngineEqualClockSchedulesLowestID: two threads ticking identical
// costs must strictly alternate starting with thread 0 — the engine-level
// consequence of the queue's tie-breaking rule.
func TestEngineEqualClockSchedulesLowestID(t *testing.T) {
	e := mustEngine(t, Config{HWThreads: 3, PhysCores: 3, Seed: 1, Cost: DefaultCostModel()})
	var order []int
	body := func(id int) func(*Ctx) {
		return func(c *Ctx) {
			for n := 0; n < 4; n++ {
				order = append(order, id)
				c.Tick(10)
			}
		}
	}
	if _, err := e.Run([]func(*Ctx){body(0), body(1), body(2)}); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order[%d] = %d, want %d (full: %v)", i, order[i], want[i], order)
		}
	}
}
