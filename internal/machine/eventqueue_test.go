package machine

import (
	"math/bits"
	"sort"
	"testing"
	"testing/quick"

	"seer/internal/topology"
)

// TestEventQueueTieBreak: events with equal wakeup cycles must pop in
// thread-id order — the rule that makes the schedule total and the
// simulation deterministic.
func TestEventQueueTieBreak(t *testing.T) {
	insertions := [][]int32{
		{3, 0, 2, 1},
		{0, 1, 2, 3},
		{3, 2, 1, 0},
		{1, 3, 0, 2},
	}
	for _, ids := range insertions {
		var q eventQueue
		for _, id := range ids {
			q.push(event{cycle: 7, id: id})
		}
		for want := int32(0); want < 4; want++ {
			if got := q.pop(); got.id != want || got.cycle != 7 {
				t.Fatalf("insertion order %v: pop = %+v, want id %d", ids, got, want)
			}
		}
	}
}

// TestEventQueueInterleavedTies mixes cycles and ids: pops must come out
// in (cycle, id) lexicographic order even when pushes interleave with
// pops.
func TestEventQueueInterleavedTies(t *testing.T) {
	var q eventQueue
	q.push(event{cycle: 10, id: 2})
	q.push(event{cycle: 10, id: 1})
	q.push(event{cycle: 5, id: 3})
	if got := q.pop(); got != (event{cycle: 5, id: 3}) {
		t.Fatalf("pop = %+v, want {5 3}", got)
	}
	q.push(event{cycle: 5, id: 0}) // earlier than both queued events
	q.push(event{cycle: 10, id: 3})
	want := []event{{5, 0}, {10, 1}, {10, 2}, {10, 3}}
	for _, w := range want {
		if got := q.pop(); got != w {
			t.Fatalf("pop = %+v, want %+v", got, w)
		}
	}
	if !q.empty() {
		t.Fatalf("queue not empty after draining: %+v", q)
	}
}

// TestEventQueueReplaceMin: the combined swap must return the old minimum
// and leave the queue ordered, including when the incoming event ties an
// existing one.
func TestEventQueueReplaceMin(t *testing.T) {
	var q eventQueue
	q.push(event{cycle: 4, id: 2})
	q.push(event{cycle: 9, id: 1})
	if got := q.replaceMin(event{cycle: 9, id: 0}); got != (event{cycle: 4, id: 2}) {
		t.Fatalf("replaceMin = %+v, want {4 2}", got)
	}
	want := []event{{9, 0}, {9, 1}}
	for _, w := range want {
		if got := q.pop(); got != w {
			t.Fatalf("pop = %+v, want %+v", got, w)
		}
	}
}

// TestEventQueueQuickSorted: for random per-thread cycle assignments (one
// event per thread, as the engine guarantees), popping yields the
// (cycle, id)-sorted order.
func TestEventQueueQuickSorted(t *testing.T) {
	f := func(cycles []uint16) bool {
		n := len(cycles)
		if n > MaxHWThreads {
			n = MaxHWThreads
		}
		var q eventQueue
		evs := make([]event, n)
		for i := 0; i < n; i++ {
			evs[i] = event{cycle: uint64(cycles[i]), id: int32(i)}
			q.push(evs[i])
		}
		sort.Slice(evs, func(i, j int) bool { return evs[i].before(evs[j]) })
		for _, want := range evs {
			if got := q.pop(); got != want {
				return false
			}
		}
		return q.empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEventQueueDecreaseKey: pulling a queued event forward must reorder
// it ahead of events it now precedes.
func TestEventQueueDecreaseKey(t *testing.T) {
	var q eventQueue
	q.push(event{cycle: 50, id: 0})
	q.push(event{cycle: 20, id: 1})
	q.decreaseKey(0, 10)
	if got := q.pop(); got != (event{cycle: 10, id: 0}) {
		t.Fatalf("pop = %+v, want {10 0}", got)
	}
	if got := q.pop(); got != (event{cycle: 20, id: 1}) {
		t.Fatalf("pop = %+v, want {20 1}", got)
	}
}

// TestEventQueueWide: the multi-word occupancy mask must preserve
// (cycle, id) order for thread ids past the old single-word ceiling —
// 65 ids straddle the first word boundary, 128 and 256 exercise every
// word of the mask, and equal-cycle pushes pin the cross-word id
// tie-break.
func TestEventQueueWide(t *testing.T) {
	for _, n := range []int{65, 128, MaxHWThreads} {
		// Equal cycles: ids must drain in ascending order across words.
		var q eventQueue
		for id := n - 1; id >= 0; id-- {
			q.push(event{cycle: 7, id: int32(id)})
		}
		for want := int32(0); want < int32(n); want++ {
			if got := q.pop(); got != (event{cycle: 7, id: want}) {
				t.Fatalf("n=%d: pop = %+v, want {7 %d}", n, got, want)
			}
		}
		if !q.empty() {
			t.Fatalf("n=%d: queue not empty after draining", n)
		}

		// Distinct cycles arranged so the minimum hops between words:
		// id i sleeps until cycle n-i, so the highest id pops first.
		q.clear()
		for id := 0; id < n; id++ {
			q.push(event{cycle: uint64(n - id), id: int32(id)})
		}
		for want := int32(n - 1); want >= 0; want-- {
			if got := q.pop(); got.id != want {
				t.Fatalf("n=%d: pop id = %d, want %d", n, got.id, want)
			}
		}
	}
}

// TestEventQueueWideQuick: the random one-event-per-thread property at
// full mask width, forcing id assignments beyond 64 so every word of
// the occupancy bitset participates in the rescan.
func TestEventQueueWideQuick(t *testing.T) {
	f := func(cycles [MaxHWThreads]uint16) bool {
		var q eventQueue
		evs := make([]event, len(cycles))
		for i, c := range cycles {
			evs[i] = event{cycle: uint64(c), id: int32(i)}
			q.push(evs[i])
		}
		sort.Slice(evs, func(i, j int) bool { return evs[i].before(evs[j]) })
		for _, want := range evs {
			if got := q.pop(); got != want {
				return false
			}
		}
		return q.empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// checkInvariants asserts every structural invariant of the hierarchical
// queue by brute force: the count matches the occupancy popcount, the
// summary mirrors word occupancy, and each cached minimum (group, word,
// global) equals the (cycle, id) minimum recomputed from scratch over
// its span. Tests call it after every mutation, so any cache that goes
// stale — even transiently — fails at the op that corrupted it.
func checkInvariants(t *testing.T, q *eventQueue) {
	t.Helper()
	total := 0
	for w := uint32(0); w < queueWords; w++ {
		total += bits.OnesCount64(q.active[w])
		if occupied := q.active[w] != 0; occupied != (q.summary&(1<<w) != 0) {
			t.Fatalf("summary bit %d = %v, occupancy = %v", w, !occupied, occupied)
		}
		if q.active[w] == 0 {
			continue
		}
		var wantWord event
		haveWord := false
		for g := w << groupBits; g < (w+1)<<groupBits; g++ {
			gm := q.active[w] & groupMask(g)
			if gm == 0 {
				continue
			}
			var wantGroup event
			haveGroup := false
			for id := int32(g << groupBits); id < int32((g+1)<<groupBits); id++ {
				if q.active[w]&(1<<(uint32(id)&63)) == 0 {
					continue
				}
				ev := event{cycle: q.cycles[id], id: id}
				if !haveGroup || ev.before(wantGroup) {
					wantGroup, haveGroup = ev, true
				}
			}
			if q.groupMin[g] != wantGroup {
				t.Fatalf("groupMin[%d] = %+v, want %+v", g, q.groupMin[g], wantGroup)
			}
			if !haveWord || wantGroup.before(wantWord) {
				wantWord, haveWord = wantGroup, true
			}
		}
		if q.wordMin[w] != wantWord {
			t.Fatalf("wordMin[%d] = %+v, want %+v", w, q.wordMin[w], wantWord)
		}
	}
	if q.n != total {
		t.Fatalf("n = %d, occupancy popcount = %d", q.n, total)
	}
	if q.n == 0 {
		return
	}
	var wantMin event
	have := false
	for w := uint32(0); w < queueWords; w++ {
		if q.active[w] != 0 && (!have || q.wordMin[w].before(wantMin)) {
			wantMin, have = q.wordMin[w], true
		}
	}
	if q.min != wantMin {
		t.Fatalf("min = %+v, want %+v", q.min, wantMin)
	}
}

// TestEventQueueInvariants checks the full invariant set after every
// single mutation of a randomized op mix, at widths chosen to sit on
// both sides of the word and mask boundaries (63/64/65 around the first
// word, 255/256 at the mask edge).
func TestEventQueueInvariants(t *testing.T) {
	for _, n := range []int{63, 64, 65, 128, 255, MaxHWThreads} {
		var q eventQueue
		rng := uint64(0x2545f4914f6cdd1d) ^ uint64(n)
		next := func(mod uint64) uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng % mod
		}
		for id := 0; id < n; id++ {
			q.push(event{cycle: next(97), id: int32(id)})
			checkInvariants(t, &q)
		}
		for step := 0; step < 3*n; step++ {
			switch next(3) {
			case 0:
				got := q.pop()
				checkInvariants(t, &q)
				q.push(event{cycle: got.cycle + 1 + next(50), id: got.id})
			case 1:
				q.replaceMin(event{cycle: q.min.cycle + 1 + next(50), id: q.min.id})
			case 2:
				id := int32(next(uint64(n)))
				floor := q.min.cycle
				if cur := q.cycles[id]; cur > floor {
					q.decreaseKey(id, floor+next(cur-floor))
				}
			}
			checkInvariants(t, &q)
		}
		for !q.empty() {
			q.pop()
			checkInvariants(t, &q)
		}
	}
}

// TestEventQueueWideInterleaved drives a randomized mix of pop,
// replaceMin and decreaseKey against a reference model over widths
// straddling the group, word and mask boundaries — the park/wake
// interleavings the engine generates, at widths where the minimum
// migrates between bitset words. The model is the brute-force linear
// scan of a per-id cycle map.
func TestEventQueueWideInterleaved(t *testing.T) {
	for _, n := range []int{63, 64, 65, 128, 255, MaxHWThreads} {
		var q eventQueue
		model := make(map[int32]uint64, n)
		rng := uint64(0x9e3779b97f4a7c15) ^ uint64(n)
		next := func(mod uint64) uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng % mod
		}
		modelMin := func() event {
			best := event{cycle: ^uint64(0), id: int32(MaxHWThreads)}
			for id, c := range model {
				if ev := (event{cycle: c, id: id}); ev.before(best) {
					best = ev
				}
			}
			return best
		}
		for id := 0; id < n; id++ {
			c := next(64)
			q.push(event{cycle: c, id: int32(id)})
			model[int32(id)] = c
		}
		clock := uint64(0)
		for step := 0; step < 4*n; step++ {
			switch next(3) {
			case 0: // pop, then re-push at a later cycle (a thread yielding)
				want := modelMin()
				got := q.pop()
				if got != want {
					t.Fatalf("n=%d step %d: pop = %+v, want %+v", n, step, got, want)
				}
				clock = got.cycle
				delete(model, got.id)
				ev := event{cycle: clock + 1 + next(40), id: got.id}
				q.push(ev)
				model[ev.id] = ev.cycle
			case 1: // replaceMin: the resumed thread's next wakeup swaps in
				want := modelMin()
				ev := event{cycle: want.cycle + 1 + next(40), id: want.id}
				got := q.replaceMin(ev)
				if got != want {
					t.Fatalf("n=%d step %d: replaceMin = %+v, want %+v", n, step, got, want)
				}
				model[ev.id] = ev.cycle
			case 2: // decreaseKey: a wake pulls a parked deadline forward
				id := int32(next(uint64(n)))
				cur := model[id]
				floor := modelMin().cycle
				if cur <= floor {
					continue
				}
				c := floor + next(cur-floor)
				q.decreaseKey(id, c)
				model[id] = c
			}
		}
		for len(model) > 0 {
			want := modelMin()
			if got := q.pop(); got != want {
				t.Fatalf("n=%d drain: pop = %+v, want %+v", n, got, want)
			}
			delete(model, want.id)
		}
		if !q.empty() {
			t.Fatalf("n=%d: queue not empty after drain", n)
		}
	}
}

// TestEventQueueOpsAllocFree: queue mutations are on the engine's
// per-event hot path and must not allocate, including at full 256-id
// width where the rescan walks all four mask words.
func TestEventQueueOpsAllocFree(t *testing.T) {
	var q eventQueue
	for id := 0; id < MaxHWThreads; id++ {
		q.push(event{cycle: uint64(id % 17), id: int32(id)})
	}
	if avg := testing.AllocsPerRun(200, func() {
		got := q.pop()
		q.push(event{cycle: got.cycle + 13, id: got.id})
		got = q.replaceMin(event{cycle: q.min.cycle + 29, id: q.min.id})
		q.decreaseKey(got.id, got.cycle)
	}); avg != 0 {
		t.Fatalf("queue ops allocate %.1f allocs/op, want 0", avg)
	}
}

// TestEngineEqualClockSchedulesLowestID: two threads ticking identical
// costs must strictly alternate starting with thread 0 — the engine-level
// consequence of the queue's tie-breaking rule.
func TestEngineEqualClockSchedulesLowestID(t *testing.T) {
	e := mustEngine(t, Config{Topo: topology.MustFromFlat(3, 3), Seed: 1, Cost: DefaultCostModel()})
	var order []int
	body := func(id int) func(*Ctx) {
		return func(c *Ctx) {
			for n := 0; n < 4; n++ {
				order = append(order, id)
				c.Tick(10)
			}
		}
	}
	if _, err := e.Run([]func(*Ctx){body(0), body(1), body(2)}); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order[%d] = %d, want %d (full: %v)", i, order[i], want[i], order)
		}
	}
}
