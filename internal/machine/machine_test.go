package machine

import (
	"errors"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"seer/internal/topology"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want error // nil = valid; otherwise the named sentinel to match
	}{
		{"default", DefaultConfig(), nil},
		{"single", Config{Topo: topology.Flat(1)}, nil},
		{"smt4", Config{Topo: topology.Multi(1, 4, 4)}, nil},
		{"multi-socket", Config{Topo: topology.Multi(4, 16, 2)}, nil},
		{"max threads", Config{Topo: topology.Multi(4, 64, 1)}, nil},
		{"zero topology", Config{}, topology.ErrSockets},
		{"zero sockets", Config{Topo: topology.Topology{Sockets: 0, CoresPerSocket: 4, ThreadsPerCore: 2}}, topology.ErrSockets},
		{"zero cores", Config{Topo: topology.Topology{Sockets: 1, CoresPerSocket: 0, ThreadsPerCore: 2}}, topology.ErrCores},
		{"negative cores", Config{Topo: topology.Topology{Sockets: 1, CoresPerSocket: -2, ThreadsPerCore: 2}}, topology.ErrCores},
		{"zero smt", Config{Topo: topology.Topology{Sockets: 1, CoresPerSocket: 4, ThreadsPerCore: 0}}, topology.ErrSMT},
		{"too many threads", Config{Topo: topology.Multi(8, 64, 1)}, ErrTooManyThreads},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.want == nil {
			if err != nil {
				t.Errorf("%s: Validate() = %v, want nil", c.name, err)
			}
			continue
		}
		if !errors.Is(err, c.want) {
			t.Errorf("%s: Validate() = %v, want errors.Is(%v)", c.name, err, c.want)
		}
	}
}

// TestSiblingsPartition: {hw} ∪ Siblings(hw) must partition the hardware
// threads into PhysCores() groups of equal size, with membership symmetric
// and consistent with PhysCore — over flat, 2-way-SMT, 4-way-SMT and
// multi-socket shapes.
func TestSiblingsPartition(t *testing.T) {
	for _, cfg := range []Config{
		{Topo: topology.SMT2(4)},        // the paper's testbed
		{Topo: topology.Multi(1, 4, 4)}, // 16 threads, 4-way SMT
		{Topo: topology.Multi(1, 3, 2)},
		{Topo: topology.Flat(4)},
		{Topo: topology.Flat(1)},
		{Topo: topology.Multi(2, 8, 2)},  // two sockets
		{Topo: topology.Multi(4, 16, 2)}, // the 128-thread scaling shape
		{Topo: topology.Multi(2, 2, 4)},  // multi-socket 4-way SMT
	} {
		n, cores := cfg.HWThreads(), cfg.PhysCores()
		seen := make(map[int]int, n) // thread -> core of its group
		for hw := 0; hw < n; hw++ {
			group := append([]int{hw}, cfg.Siblings(hw)...)
			if want := n / cores; len(group) != want {
				t.Fatalf("%v: group of %d has %d members, want %d", cfg.Topo, hw, len(group), want)
			}
			for _, m := range group {
				if cfg.PhysCore(m) != cfg.PhysCore(hw) {
					t.Fatalf("%v: %d and %d grouped but on cores %d and %d",
						cfg.Topo, hw, m, cfg.PhysCore(hw), cfg.PhysCore(m))
				}
				if prev, ok := seen[m]; ok && prev != cfg.PhysCore(m) {
					t.Fatalf("%v: thread %d assigned to two cores", cfg.Topo, m)
				}
				seen[m] = cfg.PhysCore(m)
			}
			// Siblings on one core must also share a socket.
			for _, m := range group {
				if cfg.Topo.SocketOf(m) != cfg.Topo.SocketOf(hw) {
					t.Fatalf("%v: siblings %d and %d on sockets %d and %d",
						cfg.Topo, hw, m, cfg.Topo.SocketOf(hw), cfg.Topo.SocketOf(m))
				}
			}
			// Symmetry: hw appears in each sibling's group.
			for _, s := range cfg.Siblings(hw) {
				found := false
				for _, back := range cfg.Siblings(s) {
					if back == hw {
						found = true
					}
				}
				if !found {
					t.Fatalf("%v: %d lists sibling %d but not vice versa", cfg.Topo, hw, s)
				}
			}
		}
		if len(seen) != n {
			t.Fatalf("%v: groups cover %d of %d threads", cfg.Topo, len(seen), n)
		}
	}
}

func TestTopology(t *testing.T) {
	cfg := Config{Topo: topology.SMT2(4)}
	// Threads t and t+4 are hyperthread siblings.
	for hw := 0; hw < 8; hw++ {
		want := hw % 4
		if got := cfg.PhysCore(hw); got != want {
			t.Errorf("PhysCore(%d) = %d, want %d", hw, got, want)
		}
	}
	sibs := cfg.Siblings(1)
	if len(sibs) != 1 || sibs[0] != 5 {
		t.Errorf("Siblings(1) = %v, want [5]", sibs)
	}
	sibs = cfg.Siblings(5)
	if len(sibs) != 1 || sibs[0] != 1 {
		t.Errorf("Siblings(5) = %v, want [1]", sibs)
	}
}

func mustEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRunMakespan(t *testing.T) {
	e := mustEngine(t, Config{Topo: topology.MustFromFlat(4, 2), Seed: 1, Cost: DefaultCostModel()})
	bodies := make([]func(*Ctx), 4)
	for i := range bodies {
		n := uint64(i+1) * 100
		bodies[i] = func(c *Ctx) { c.Tick(n) }
	}
	makespan, err := e.Run(bodies)
	if err != nil {
		t.Fatal(err)
	}
	if makespan != 400 {
		t.Fatalf("makespan = %d, want 400", makespan)
	}
}

// TestMinClockInterleaving verifies the engine always runs the thread with
// the smallest clock: a cheap-step thread must interleave many steps
// between an expensive-step thread's steps.
func TestMinClockInterleaving(t *testing.T) {
	e := mustEngine(t, Config{Topo: topology.MustFromFlat(2, 2), Seed: 1, Cost: DefaultCostModel()})
	var order []int
	bodies := []func(*Ctx){
		func(c *Ctx) {
			for i := 0; i < 10; i++ {
				order = append(order, 0)
				c.Tick(10)
			}
		},
		func(c *Ctx) {
			for i := 0; i < 10; i++ {
				order = append(order, 1)
				c.Tick(100)
			}
		},
	}
	if _, err := e.Run(bodies); err != nil {
		t.Fatal(err)
	}
	// Thread 0 (cost 10) must take its 10 steps before thread 1 reaches
	// its second step at clock 100.
	firstOnes := 0
	for i, id := range order {
		if id == 1 {
			firstOnes++
			if firstOnes == 2 {
				if i < 11 {
					t.Fatalf("thread 1 ran its second step too early (position %d): %v", i, order)
				}
				break
			}
		}
	}
}

func TestRunPanicPropagates(t *testing.T) {
	e := mustEngine(t, Config{Topo: topology.MustFromFlat(2, 1), Seed: 1, Cost: DefaultCostModel()})
	bodies := []func(*Ctx){
		func(c *Ctx) { c.Tick(1); panic("boom") },
	}
	if _, err := e.Run(bodies); err == nil {
		t.Fatalf("expected error from panicking body")
	}
}

func TestMaxCyclesLivelock(t *testing.T) {
	e := mustEngine(t, Config{Topo: topology.MustFromFlat(1, 1), Seed: 1, MaxCycles: 1000, Cost: DefaultCostModel()})
	bodies := []func(*Ctx){
		func(c *Ctx) {
			for {
				c.Tick(10)
			}
		},
	}
	_, err := e.Run(bodies)
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
}

func TestTooManyBodies(t *testing.T) {
	e := mustEngine(t, Config{Topo: topology.MustFromFlat(2, 1), Seed: 1, Cost: DefaultCostModel()})
	bodies := make([]func(*Ctx), 3)
	if _, err := e.Run(bodies); err == nil {
		t.Fatalf("expected error for more bodies than threads")
	}
}

func TestNilBodiesStayIdle(t *testing.T) {
	e := mustEngine(t, Config{Topo: topology.MustFromFlat(4, 2), Seed: 1, Cost: DefaultCostModel()})
	ran := false
	bodies := []func(*Ctx){nil, func(c *Ctx) { ran = true; c.Tick(7) }, nil}
	makespan, err := e.Run(bodies)
	if err != nil {
		t.Fatal(err)
	}
	if !ran || makespan != 7 {
		t.Fatalf("ran=%v makespan=%d", ran, makespan)
	}
}

// TestDeterministicSchedule runs the same randomized interleaving twice
// and checks identical traces.
func TestDeterministicSchedule(t *testing.T) {
	trace := func() []int {
		e := mustEngine(t, Config{Topo: topology.MustFromFlat(4, 2), Seed: 99, Cost: DefaultCostModel()})
		var order []int
		bodies := make([]func(*Ctx), 4)
		for i := range bodies {
			id := i
			bodies[i] = func(c *Ctx) {
				for n := 0; n < 50; n++ {
					order = append(order, id)
					c.Tick(uint64(1 + c.Rand().Intn(20)))
				}
			}
		}
		if _, err := e.Run(bodies); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestClockMonotonicQuick: a thread's clock never decreases through any
// sequence of Tick/Advance/Work calls.
func TestClockMonotonicQuick(t *testing.T) {
	f := func(costs []uint16) bool {
		e, err := New(Config{Topo: topology.MustFromFlat(1, 1), Seed: 5, Cost: DefaultCostModel()})
		if err != nil {
			return false
		}
		ok := true
		bodies := []func(*Ctx){func(c *Ctx) {
			prev := c.Clock()
			for i, cost := range costs {
				switch i % 3 {
				case 0:
					c.Tick(uint64(cost))
				case 1:
					c.Advance(uint64(cost))
				default:
					c.Work(uint64(cost % 64))
				}
				if c.Clock() < prev {
					ok = false
				}
				prev = c.Clock()
			}
		}}
		if _, err := e.Run(bodies); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDistribution(t *testing.T) {
	r := NewRand(12345)
	buckets := make([]int, 16)
	const draws = 16000
	for i := 0; i < draws; i++ {
		buckets[r.Intn(16)]++
	}
	for i, n := range buckets {
		if n < draws/16/2 || n > draws/16*2 {
			t.Fatalf("bucket %d has %d of %d draws (poor distribution)", i, n, draws)
		}
	}
	// Float64 stays in [0, 1).
	for i := 0; i < 1000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
	// Bool(0) never, Bool(1) always.
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatalf("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatalf("Bool(1) returned false")
		}
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatalf("zero-seeded Rand is stuck at zero")
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	r := NewRand(1)
	r.Intn(0)
}

func TestEngineReuse(t *testing.T) {
	e := mustEngine(t, Config{Topo: topology.MustFromFlat(2, 1), Seed: 1, Cost: DefaultCostModel()})
	for round := 0; round < 3; round++ {
		makespan, err := e.Run([]func(*Ctx){
			func(c *Ctx) { c.Tick(5) },
			func(c *Ctx) { c.Tick(9) },
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if makespan != 9 {
			t.Fatalf("round %d: makespan = %d, want 9 (clocks must reset)", round, makespan)
		}
	}
}

// TestDrainTerminatesGoroutines: error paths must unwind abandoned
// thread goroutines rather than leak them, and the engine must remain
// usable for a fresh run afterwards.
func TestDrainTerminatesGoroutines(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topo = topology.SMT2(2)
	cfg.MaxCycles = 1000
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spin := func(c *Ctx) {
		for {
			c.Tick(10)
		}
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		if _, err := e.Run([]func(*Ctx){spin, spin, spin, spin}); err != ErrMaxCycles {
			t.Fatalf("run %d: err = %v, want ErrMaxCycles", i, err)
		}
	}
	// Give unwound goroutines a moment to exit before counting.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after 20 aborted runs", before, after)
	}
	// The engine stays usable: a finite body completes normally.
	done := false
	if _, err := e.Run([]func(*Ctx){func(c *Ctx) { c.Tick(5); done = true }}); err != nil {
		t.Fatalf("engine unusable after drain: %v", err)
	}
	if !done {
		t.Fatalf("post-drain run did not execute the body")
	}
}
