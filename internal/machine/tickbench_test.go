package machine

import "testing"

func BenchmarkTick(b *testing.B) {
	cfg := DefaultConfig()
	eng, _ := New(cfg)
	bodies := make([]func(*Ctx), 8)
	per := b.N/8 + 1
	for i := range bodies {
		bodies[i] = func(c *Ctx) {
			for n := 0; n < per; n++ {
				c.Tick(1)
			}
		}
	}
	b.ResetTimer()
	eng.Run(bodies)
}
