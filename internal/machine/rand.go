package machine

// Rand is a small, fast, deterministic PRNG (xorshift64*), embedded per
// hardware thread so that simulated programs are reproducible and never
// touch the global math/rand state.
type Rand struct {
	state uint64
}

// NewRand returns a Rand seeded with the given nonzero state.
func NewRand(seed uint64) Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return Rand{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("machine: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}
