package machine

// event is one pending wakeup in the engine's schedule: thread id resumes
// when the global virtual time reaches cycle.
type event struct {
	cycle uint64
	id    int32
}

// before orders events by (cycle, id): earlier virtual time first, ties
// broken by the lower thread id. The id tie-break is what makes the
// schedule total and therefore the whole simulation deterministic — it
// mirrors the seed engine's linear scan, which resolved equal clocks in
// favor of the lowest index.
func (a event) before(b event) bool {
	return a.cycle < b.cycle || (a.cycle == b.cycle && a.id < b.id)
}

// eventHeap is a binary min-heap of wakeup events, ordered by event.before.
// It is hand-rolled rather than built on container/heap to keep the hot
// path free of interface dispatch: push and pop are the only two
// operations the scheduler loop performs per tick.
type eventHeap []event

// push inserts ev and restores the heap order.
func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].before(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// pop removes and returns the minimum event. It must not be called on an
// empty heap.
func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	*h = s[:last]
	s[:last].siftDown()
	return top
}

// replaceMin swaps ev in for the minimum event and returns that minimum,
// in one sift instead of push's sift-up followed by pop's sift-down. The
// scheduler loop uses it for the common yield: the resumed thread's new
// wakeup goes in as the old minimum comes out. It must not be called on an
// empty heap, and ev must not precede the current minimum (the loop
// handles that case without touching the heap at all).
func (h eventHeap) replaceMin(ev event) event {
	top := h[0]
	h[0] = ev
	h.siftDown()
	return top
}

// siftDown restores the heap order after the root was replaced.
func (s eventHeap) siftDown() {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s) && s[l].before(s[min]) {
			min = l
		}
		if r < len(s) && s[r].before(s[min]) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
}
