package machine

import (
	"errors"
	"testing"

	"seer/internal/topology"
)

// The park/wake tests drive ParkOn/WakeKey directly, with hand-rolled
// poll loops mirroring the spinlock package's shape: poll (Tick(load) +
// check), park on busy, re-poll after the wake. Observation equivalence
// against real spinning is asserted by comparing the exact clocks at
// which polls happen.

const (
	tpPeriod   = 27 // SpinQuantum + DirectLoad of the default cost model
	tpPollCost = 2  // DirectLoad
)

// spinUntil simulates the ticking loop ParkOn replaces: poll every
// tpPeriod cycles until pred() is true, and return the cycle of the
// observing poll.
func spinUntil(c *Ctx, pred func() bool) uint64 {
	for {
		c.Tick(tpPollCost)
		if pred() {
			return c.Clock()
		}
		c.Tick(tpPeriod - tpPollCost)
	}
}

// parkEngine builds an engine with n hardware threads for park tests.
func parkEngine(t *testing.T, n int) *Engine {
	t.Helper()
	cores := n
	return mustEngine(t, Config{Topo: topology.MustFromFlat(n, cores), Seed: 1, Cost: DefaultCostModel()})
}

// parkUntil is the event-driven equivalent: poll once, park on key while
// pred() is false.
func parkUntil(c *Ctx, key uint64, pred func() bool) uint64 {
	for {
		c.Tick(tpPollCost)
		if pred() {
			return c.Clock()
		}
		c.ParkOn(key, tpPeriod, tpPollCost, 0)
	}
}

// TestParkObservationEquivalence: for a range of release cycles, a parked
// waiter must observe the flag at exactly the poll cycle the ticking loop
// observes it at.
func TestParkObservationEquivalence(t *testing.T) {
	for rel := uint64(1); rel < 200; rel += 7 {
		var spinObs, parkObs uint64
		for variant := 0; variant < 2; variant++ {
			eng := parkEngine(t, 2)
			flag := false
			obs := &spinObs
			wait := spinUntil
			if variant == 1 {
				obs = &parkObs
				wait = func(c *Ctx, pred func() bool) uint64 {
					return parkUntil(c, 42, pred)
				}
			}
			if _, err := eng.Run([]func(*Ctx){
				func(c *Ctx) {
					*obs = wait(c, func() bool { return flag })
				},
				func(c *Ctx) {
					c.Tick(rel)
					flag = true
					c.WakeKey(42)
				},
			}); err != nil {
				t.Fatalf("rel=%d variant=%d: %v", rel, variant, err)
			}
		}
		if spinObs != parkObs {
			t.Fatalf("rel=%d: spin observes at %d, park at %d", rel, spinObs, parkObs)
		}
	}
}

// TestParkWakeSameCycleTieBreak: a release at exactly a waiter's poll
// boundary is observable in that slot only by waiters with a higher
// thread id than the releaser (heap order runs the lower id first).
func TestParkWakeSameCycleTieBreak(t *testing.T) {
	// Thread 1 releases at cycle 2+27k (a boundary of thread 0's and
	// thread 2's poll trains, which both start polling at cycle 2).
	rel := uint64(2 + 27*3)
	for variant := 0; variant < 2; variant++ {
		eng := parkEngine(t, 3)
		flag := false
		var lowObs, highObs uint64
		wait := spinUntil
		if variant == 1 {
			wait = func(c *Ctx, pred func() bool) uint64 {
				return parkUntil(c, 7, pred)
			}
		}
		if _, err := eng.Run([]func(*Ctx){
			func(c *Ctx) { lowObs = wait(c, func() bool { return flag }) },
			func(c *Ctx) {
				c.Tick(rel)
				flag = true
				c.WakeKey(7)
			},
			func(c *Ctx) { highObs = wait(c, func() bool { return flag }) },
		}); err != nil {
			t.Fatalf("variant=%d: %v", variant, err)
		}
		// Thread 0 (id below the releaser) polls at rel before the release
		// runs: it cannot observe until the next boundary. Thread 2 polls
		// at rel after the release: it observes in the same slot.
		if lowObs != rel+27 {
			t.Errorf("variant=%d: low-id waiter observed at %d, want %d", variant, lowObs, rel+27)
		}
		if highObs != rel {
			t.Errorf("variant=%d: high-id waiter observed at %d, want %d", variant, highObs, rel)
		}
	}
}

// TestBoundedParkDeadline: with no wake, a bounded park resumes at its
// final poll boundary, exactly where a bounded spin loop gives up.
func TestBoundedParkDeadline(t *testing.T) {
	eng := parkEngine(t, 1)
	const budget = 5
	var polls int
	var gaveUpAt uint64
	if _, err := eng.Run([]func(*Ctx){func(c *Ctx) {
		i := 0
		for {
			c.Tick(tpPollCost)
			polls++
			if i >= budget {
				gaveUpAt = c.Clock()
				return
			}
			before := c.Clock()
			c.ParkOn(99, tpPeriod, tpPollCost, budget-i)
			i += int((c.Clock() + tpPollCost - before) / tpPeriod)
		}
	}}); err != nil {
		t.Fatal(err)
	}
	// First poll at tpPollCost, then budget more boundaries.
	if want := uint64(tpPollCost + budget*tpPeriod); gaveUpAt != want {
		t.Errorf("gave up at cycle %d, want %d", gaveUpAt, want)
	}
	// The park jumps straight to the deadline: exactly two simulated polls.
	if polls != 2 {
		t.Errorf("simulated %d polls, want 2 (first + deadline)", polls)
	}
}

// TestBoundedParkWakeKeepsBudget: a wake partway through a bounded park
// must charge the skipped boundaries against the poll budget.
func TestBoundedParkWakeKeepsBudget(t *testing.T) {
	eng := parkEngine(t, 2)
	const budget = 10
	busy := true
	var gaveUp bool
	var doneAt uint64
	if _, err := eng.Run([]func(*Ctx){
		func(c *Ctx) {
			i := 0
			for {
				c.Tick(tpPollCost)
				if !busy {
					return
				}
				if i >= budget {
					gaveUp = true
					doneAt = c.Clock()
					return
				}
				before := c.Clock()
				c.ParkOn(5, tpPeriod, tpPollCost, budget-i)
				i += int((c.Clock() + tpPollCost - before) / tpPeriod)
			}
		},
		func(c *Ctx) {
			// Wake after ~4 boundaries without freeing the flag: the waiter
			// re-parks with its remaining budget and gives up on schedule.
			c.Tick(tpPollCost + 4*tpPeriod - 3)
			c.WakeKey(5)
		},
	}); err != nil {
		t.Fatal(err)
	}
	if !gaveUp {
		t.Fatal("waiter did not give up")
	}
	if want := uint64(tpPollCost + budget*tpPeriod); doneAt != want {
		t.Errorf("gave up at cycle %d, want %d (budget unaffected by spurious wake)", doneAt, want)
	}
}

// TestParkDeadlock: when every remaining thread parks unboundedly with no
// waker left, Run must fail with ErrDeadlock instead of hanging, and the
// engine must stay reusable.
func TestParkDeadlock(t *testing.T) {
	eng := parkEngine(t, 2)
	_, err := eng.Run([]func(*Ctx){
		func(c *Ctx) {
			c.Tick(tpPollCost)
			c.ParkOn(1, tpPeriod, tpPollCost, 0)
			t.Error("waiter 0 resumed without a wake")
		},
		func(c *Ctx) {
			c.Tick(5)
			c.ParkOn(2, tpPeriod, tpPollCost, 0)
			t.Error("waiter 1 resumed without a wake")
		},
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	// The engine must be immediately reusable after the drain.
	makespan, err := eng.Run([]func(*Ctx){func(c *Ctx) { c.Tick(10) }})
	if err != nil || makespan != 10 {
		t.Fatalf("reuse after deadlock: makespan=%d err=%v", makespan, err)
	}
}

// TestParkSkippedAccounting: the skipped-cycles counter must equal the
// virtual time the waiter did not simulate (park cycle to re-poll start).
func TestParkSkippedAccounting(t *testing.T) {
	eng := parkEngine(t, 2)
	flag := false
	var skipped, parkedAt, resumedAt uint64
	if _, err := eng.Run([]func(*Ctx){
		func(c *Ctx) {
			c.Tick(tpPollCost)
			parkedAt = c.Clock()
			c.ParkOn(3, tpPeriod, tpPollCost, 0)
			resumedAt = c.Clock()
			c.Tick(tpPollCost)
			if !flag {
				t.Error("woken waiter does not observe the flag")
			}
			skipped = c.ParkSkipped()
		},
		func(c *Ctx) {
			c.Tick(500)
			flag = true
			c.WakeKey(3)
		},
	}); err != nil {
		t.Fatal(err)
	}
	if want := resumedAt - parkedAt; skipped != want {
		t.Errorf("ParkSkipped() = %d, want %d", skipped, want)
	}
	if skipped == 0 {
		t.Error("no cycles skipped across a 500-cycle wait")
	}
}

// TestWakeKeyIsSelective: a wake on one key must not disturb threads
// parked on another.
func TestWakeKeyIsSelective(t *testing.T) {
	eng := parkEngine(t, 3)
	_, err := eng.Run([]func(*Ctx){
		func(c *Ctx) {
			c.Tick(tpPollCost)
			c.ParkOn(10, tpPeriod, tpPollCost, 0)
			// Woken by the matching WakeKey(10) below.
		},
		func(c *Ctx) {
			c.Tick(tpPollCost)
			c.ParkOn(11, tpPeriod, tpPollCost, 0)
			t.Error("thread parked on key 11 woken by WakeKey(10)")
		},
		func(c *Ctx) {
			c.Tick(100)
			c.WakeKey(10)
		},
	})
	// Thread 1 stays parked forever once the others finish.
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock for the unwoken key", err)
	}
}

// TestParkedRunsAreDeterministic: repeated runs with parked waiters must
// produce identical makespans (engine reuse resets all park state).
func TestParkedRunsAreDeterministic(t *testing.T) {
	eng := parkEngine(t, 4)
	run := func() uint64 {
		flag := false
		ms, err := eng.Run([]func(*Ctx){
			func(c *Ctx) { parkUntil(c, 1, func() bool { return flag }) },
			func(c *Ctx) { parkUntil(c, 1, func() bool { return flag }) },
			func(c *Ctx) { parkUntil(c, 1, func() bool { return flag }) },
			func(c *Ctx) {
				c.Tick(997)
				flag = true
				c.WakeKey(1)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d makespan %d, want %d", i+1, got, first)
		}
	}
}
