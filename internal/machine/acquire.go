package machine

// Engine-side lock acquisition (DESIGN.md §6j).
//
// At wide shapes the dominant residual coroutine traffic is the
// test-and-test-and-set acquire protocol: a poll tick plus load, then a
// CAS tick plus load-and-store, each tick usually crossing the batch
// horizon because event density leaves no conflict-free window. Per tick
// that is two yield/resume round trips per uncontended acquire — and the
// thread learns nothing at either resume that the engine does not already
// know, because the protocol is a fixed state machine over one simulated
// word.
//
// AcquireWord therefore lets the event loop run the protocol on the
// thread's behalf. The coroutine executes the loop inline (with the exact
// per-tick hook and doom semantics) while its ticks stay below the batch
// horizon; the first tick at or past the horizon suspends it, and from
// then on every protocol step executes inside Engine.Run at the pop of
// the thread's own (cycle, id) event — the same schedule position, the
// same hook firings, the same DirectLoad/DirectStore side effects at the
// same cycles — without resuming the coroutine. A poll that observes the
// word busy parks the thread through the ordinary evaluated-park state
// (see ParkOnWord), so wake-time polls are engine-evaluated too. The
// coroutine resumes exactly once, after the winning store, and AcquireWord
// returns with the lock held.
//
// This is delegation, not speculation: nothing runs ahead of virtual
// time, so no undo log is needed and the observable streams are
// byte-identical to the per-tick engine by construction.

// acquireStep status codes.
const (
	acqDone   = iota // winning store executed; resume the coroutine
	acqQueued        // next protocol tick crossed the horizon; deliver nextCycle
	acqParked        // poll observed the word busy; thread parked on it
)

// SetLockWordOps installs the committed-memory operations the event loop
// uses to execute delegated acquires (Ctx.AcquireWord): load(hw, key)
// performs a non-transactional load of the word key names on behalf of
// hardware thread hw — including its strong-isolation doom side effects —
// and store the matching non-transactional store. The runtime installs
// mem.Memory.DirectLoad/DirectStore on the lock word. Install both before
// Run, together with SetParkPollEvaluator; without them AcquireWord
// reports false and callers fall back to their ticking loop.
func (e *Engine) SetLockWordOps(load func(hw int, key uint64) uint64, store func(hw int, key uint64, v uint64)) {
	e.lockLoad, e.lockStore = load, store
}

// AcquireWord acquires the spin-lock word key names via test-and-test-
// and-set, storing owner on success: the engine-side form of
//
//	for { Tick(pollCost); if load != 0 { park; continue }
//	      Tick(lockOp); if load == 0 { store(owner); return } }
//
// with pollCost/lockOp from the engine's cost model. It reports false —
// having done nothing — when the engine has no lock-word operations
// installed; the caller then runs its own ticking loop. Schedules and all
// observable streams are identical either way.
func (c *Ctx) AcquireWord(key, owner uint64) bool {
	e := c.eng
	if e.lockLoad == nil || e.pollEval == nil {
		return false
	}
	// A suspended delegation leaves the schedule like a park does: any
	// open speculative quantum must replay first.
	c.flushSpec()
	cost := &e.cfg.Cost
	for {
		nc := c.clock + cost.DirectLoad
		if nc >= c.batchLimit {
			c.suspendAcquire(key, owner, nc, false)
			return true
		}
		c.clock = nc
		if hook := e.tickHook; hook != nil {
			hook(nc)
		}
		if e.lockLoad(c.id, key) != 0 {
			// Busy: park on the word. The engine evaluates wake-time
			// polls and continues the protocol itself; this resume is the
			// return from a completed acquire.
			c.acq, c.acqCAS, c.acqKey, c.acqOwner = true, false, key, owner
			c.parkEval = true
			c.parkOn(key, cost.SpinQuantum+cost.DirectLoad, cost.DirectLoad, 0)
			return true
		}
		nc = c.clock + cost.LockOp
		if nc >= c.batchLimit {
			c.suspendAcquire(key, owner, nc, true)
			return true
		}
		c.clock = nc
		if hook := e.tickHook; hook != nil {
			hook(nc)
		}
		if e.lockLoad(c.id, key) == 0 {
			e.lockStore(c.id, key, owner)
			return true
		}
	}
}

// suspendAcquire hands the rest of the protocol to the event loop: the
// pending tick (the poll tick, or with cas the CAS tick) becomes the
// thread's queued event, exactly as the per-tick yield would have queued
// it, and the coroutine stays suspended until the acquire completes.
func (c *Ctx) suspendAcquire(key, owner, nc uint64, cas bool) {
	c.acq, c.acqCAS, c.acqKey, c.acqOwner = true, cas, key, owner
	c.clock = nc
	c.specOn = false
	if !c.yield(nc) {
		panic(errAbandonRun)
	}
	c.checkUnwind()
}

// acquireStep continues thread t's delegated acquire at its popped event:
// the tick at cycle now has already fired its hook (and passed the
// MaxCycles check), so the entry executes that tick's action — the poll
// load, or with t.acqCAS the CAS — and then runs further protocol steps
// inline while their ticks stay below the horizon, firing each tick's
// hook exactly as the coroutine's fast path would. It returns acqDone
// after the winning store (t.acq cleared, coroutine must resume),
// acqQueued with the next tick's cycle when a step crosses the horizon,
// or acqParked after a busy poll parked the thread on the word.
func (e *Engine) acquireStep(t *Ctx, now uint64) (nextCycle uint64, status int) {
	cost := &e.cfg.Cost
	t.clock = now
	cas := t.acqCAS
	for {
		if cas {
			if e.lockLoad(t.id, t.acqKey) == 0 {
				e.lockStore(t.id, t.acqKey, t.acqOwner)
				t.acq = false
				return 0, acqDone
			}
			// Lost the race to another acquirer: back to polling.
			cas = false
		} else {
			if e.lockLoad(t.id, t.acqKey) != 0 {
				t.acqCAS = false
				t.parkKey = t.acqKey
				t.parkPeriod = cost.SpinQuantum + cost.DirectLoad
				t.parkPollCost = cost.DirectLoad
				t.parkPolls = 0
				t.parkEval = true
				t.parked = true
				e.nParked++
				return 0, acqParked
			}
			cas = true
		}
		step := cost.DirectLoad
		if cas {
			step = cost.LockOp
		}
		nc := t.clock + step
		if nc >= e.horizonFor(int32(t.id)) {
			t.acqCAS = cas
			return nc, acqQueued
		}
		t.clock = nc
		if e.tickHook != nil {
			e.tickHook(nc)
		}
	}
}
