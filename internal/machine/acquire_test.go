package machine

import (
	"slices"
	"testing"
)

// The delegated-acquire tests run the same contended lock workload on two
// engines — one with the runtime wiring installed (SetParkPollEvaluator +
// SetLockWordOps, so AcquireWord delegates the TTS protocol to the event
// loop) and one without (AcquireWord reports false and a hand-rolled
// ticking loop mirroring spinlock.Acquire runs instead) — and require the
// full tick-hook stream and every acquire cycle to match exactly. The
// lock word lives in plain test state; both engines' bodies and ops
// close over the same variable.

const (
	taLoad   = 2           // DirectLoad of the default cost model
	taCAS    = 25          // LockOp
	taPeriod = 25 + taLoad // poll period: SpinQuantum + DirectLoad
)

// runAcquireWorkload runs nThreads contenders, each acquiring, holding
// (a per-thread duration) and releasing one lock rounds times. It
// returns the engine's complete tick-hook stream and each thread's
// acquire-completion clocks.
func runAcquireWorkload(t *testing.T, nThreads, rounds int, delegated bool) (hooks []uint64, acqs [][]uint64) {
	t.Helper()
	eng := parkEngine(t, nThreads)
	const key = 99
	var word uint64
	if delegated {
		eng.SetParkPollEvaluator(func(uint64) bool { return word != 0 })
		eng.SetLockWordOps(
			func(_ int, _ uint64) uint64 { return word },
			func(_ int, _ uint64, v uint64) { word = v })
	}
	eng.SetTickHook(func(now uint64) { hooks = append(hooks, now) })
	acqs = make([][]uint64, nThreads)
	bodies := make([]func(*Ctx), nThreads)
	for i := range bodies {
		id := i
		bodies[i] = func(c *Ctx) {
			owner := uint64(c.ID()) + 1
			hold := uint64(5 + 11*id)
			for r := 0; r < rounds; r++ {
				if !c.AcquireWord(key, owner) {
					// The fallback spinlock.Acquire runs when the engine
					// has no lock-word ops: poll tick + load, CAS tick +
					// load-and-store, park on busy.
					for {
						c.Tick(taLoad)
						if word == 0 {
							c.Tick(taCAS)
							if word != 0 {
								continue
							}
							word = owner
							break
						}
						c.ParkOnWord(key, taPeriod, taLoad, 0)
					}
				}
				acqs[id] = append(acqs[id], c.Clock())
				c.Tick(hold)
				c.Tick(taCAS)
				word = 0
				c.WakeKey(key)
			}
		}
	}
	if _, err := eng.Run(bodies); err != nil {
		t.Fatalf("delegated=%v: %v", delegated, err)
	}
	return hooks, acqs
}

// TestDelegatedAcquireEquivalence: for several contention shapes, the
// delegated protocol's observable streams must be identical to the
// ticking loop's.
func TestDelegatedAcquireEquivalence(t *testing.T) {
	for _, shape := range []struct{ n, rounds int }{{1, 3}, {2, 3}, {3, 4}, {8, 3}} {
		refHooks, refAcqs := runAcquireWorkload(t, shape.n, shape.rounds, false)
		gotHooks, gotAcqs := runAcquireWorkload(t, shape.n, shape.rounds, true)
		if !slices.Equal(refHooks, gotHooks) {
			t.Fatalf("n=%d rounds=%d: hook streams differ (%d ticking vs %d delegated)",
				shape.n, shape.rounds, len(refHooks), len(gotHooks))
		}
		for id := range refAcqs {
			if !slices.Equal(refAcqs[id], gotAcqs[id]) {
				t.Fatalf("n=%d rounds=%d thread %d: acquire cycles %v (ticking) vs %v (delegated)",
					shape.n, shape.rounds, id, refAcqs[id], gotAcqs[id])
			}
		}
	}
}

// boundedWait mirrors spinlock.SpinWhileLockedBounded's loop: poll, park
// bounded on busy, give up when the budget runs out. Returns whether the
// word was observed free and the clock of the deciding poll.
func boundedWait(c *Ctx, key uint64, word *uint64, maxSpins int) (bool, uint64) {
	for i := 0; ; {
		c.Tick(taLoad)
		if *word == 0 {
			return true, c.Clock()
		}
		if i >= maxSpins {
			return false, c.Clock()
		}
		before := c.Clock()
		c.ParkOnWord(key, taPeriod, taLoad, maxSpins-i)
		i += int((c.Clock() + taLoad - before) / taPeriod)
	}
}

// TestEvaluatedBoundedParkEquivalence: a bounded park whose wake-time
// polls are engine-evaluated must observe the release — or give up at
// the final poll boundary — at exactly the cycles the unevaluated park
// does, with an identical hook stream. Release cycles sweep across poll
// boundaries and past the budget.
func TestEvaluatedBoundedParkEquivalence(t *testing.T) {
	const key, budget = 7, 5
	for rel := uint64(1); rel < 300; rel += 13 {
		type out struct {
			ok    bool
			at    uint64
			hooks []uint64
		}
		var res [2]out
		for variant := 0; variant < 2; variant++ {
			eng := parkEngine(t, 2)
			word := uint64(1) // pre-held
			if variant == 1 {
				eng.SetParkPollEvaluator(func(uint64) bool { return word != 0 })
			}
			o := &res[variant]
			eng.SetTickHook(func(now uint64) { o.hooks = append(o.hooks, now) })
			if _, err := eng.Run([]func(*Ctx){
				func(c *Ctx) { o.ok, o.at = boundedWait(c, key, &word, budget) },
				func(c *Ctx) {
					c.Tick(rel)
					word = 0
					c.WakeKey(key)
				},
			}); err != nil {
				t.Fatalf("rel=%d variant=%d: %v", rel, variant, err)
			}
		}
		if res[0].ok != res[1].ok || res[0].at != res[1].at {
			t.Fatalf("rel=%d: plain park (ok=%v at %d) vs evaluated park (ok=%v at %d)",
				rel, res[0].ok, res[0].at, res[1].ok, res[1].at)
		}
		if !slices.Equal(res[0].hooks, res[1].hooks) {
			t.Fatalf("rel=%d: hook streams differ (%d plain vs %d evaluated)",
				rel, len(res[0].hooks), len(res[1].hooks))
		}
	}
}
