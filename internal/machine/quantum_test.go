package machine

import (
	"errors"
	"fmt"
	"testing"

	"seer/internal/topology"
)

// quantumRun executes bodies on a fresh engine with the given SpecQuantum
// and returns the observed tick-hook stream and the makespan. The stream
// is the engine's one externally observable schedule: two configurations
// are equivalent iff their streams (and makespans) are byte-identical.
func quantumRun(t *testing.T, spec int, mk func() []func(*Ctx)) ([]uint64, uint64) {
	t.Helper()
	bodies := mk()
	e := mustEngine(t, Config{
		Topo: topology.MustFromFlat(len(bodies), 2), Seed: 7,
		Cost: DefaultCostModel(), SpecQuantum: spec,
	})
	var stream []uint64
	e.SetTickHook(func(now uint64) { stream = append(stream, now) })
	makespan, err := e.Run(bodies)
	if err != nil {
		t.Fatalf("SpecQuantum=%d: %v", spec, err)
	}
	return stream, makespan
}

// mixedBodies is a workload exercising every speculation edge: pure ticks
// that open quanta, impure ticks that close and replay them, PRNG draws
// journaled mid-quantum, a timed park that must flush the journal, and a
// body whose final ticks are pure (trampoline flush).
func mixedBodies(draws []uint64) []func(*Ctx) {
	return []func(*Ctx){
		func(c *Ctx) { // pure/impure interleave with PRNG draws
			for i := 0; i < 40; i++ {
				c.TickPure(3)
				c.TickPure(5)
				draws[0] += c.Rand().Uint64() & 0xFF
				c.Tick(2)
			}
		},
		func(c *Ctx) { // long pure stretches against a slow ticker
			for i := 0; i < 25; i++ {
				for j := 0; j < 10; j++ {
					c.TickPure(4)
				}
				c.Tick(11)
			}
		},
		func(c *Ctx) { // park mid-stream: the journal must flush first
			for i := 0; i < 12; i++ {
				c.TickPure(7)
				c.TickPure(7)
				c.ParkOn(1<<62|uint64(c.ID()), 31, 0, 1)
				draws[2] += c.Rand().Uint64() & 0xFF
			}
		},
		func(c *Ctx) { // body ends on pure ticks: trampoline flush
			for i := 0; i < 30; i++ {
				c.Tick(6)
				c.TickPure(9)
			}
			c.TickPure(100)
		},
	}
}

// TestQuantumDifferentialStream pins the tentpole equivalence claim at the
// engine layer: for any quantum budget, the tick-hook stream, makespan and
// PRNG consumption are byte-identical to the per-tick (SpecQuantum=0)
// engine.
func TestQuantumDifferentialStream(t *testing.T) {
	type result struct {
		stream   []uint64
		makespan uint64
		draws    [4]uint64
	}
	run := func(spec int) result {
		var r result
		draws := make([]uint64, 4)
		r.stream, r.makespan = quantumRun(t, spec, func() []func(*Ctx) { return mixedBodies(draws) })
		copy(r.draws[:], draws)
		return r
	}
	base := run(0)
	if len(base.stream) == 0 {
		t.Fatal("baseline produced no tick events")
	}
	for _, spec := range []int{1, 2, 3, 64, 1024} {
		got := run(spec)
		if got.makespan != base.makespan {
			t.Errorf("SpecQuantum=%d: makespan %d, want %d", spec, got.makespan, base.makespan)
		}
		if got.draws != base.draws {
			t.Errorf("SpecQuantum=%d: PRNG draws %v, want %v", spec, got.draws, base.draws)
		}
		if fmt.Sprint(got.stream) != fmt.Sprint(base.stream) {
			t.Errorf("SpecQuantum=%d: tick stream diverged (len %d vs %d)",
				spec, len(got.stream), len(base.stream))
		}
	}
}

// TestQuantumGrantsAndJournalFull checks the accounting: a long pure
// stretch under a small budget opens several quanta (the journal-full path
// yields and re-opens), and QuantumCounters reflect exactly the deferred
// ticks.
func TestQuantumGrantsAndJournalFull(t *testing.T) {
	mk := func() []func(*Ctx) {
		return []func(*Ctx){
			func(c *Ctx) {
				c.Tick(1)
				for i := 0; i < 20; i++ {
					c.TickPure(10)
				}
				c.Tick(1)
			},
			func(c *Ctx) { c.Tick(5) }, // keeps the horizon finite
		}
	}
	bodies := mk()
	e := mustEngine(t, Config{
		Topo: topology.MustFromFlat(2, 2), Seed: 1,
		Cost: DefaultCostModel(), SpecQuantum: 4,
	})
	if _, err := e.Run(bodies); err != nil {
		t.Fatal(err)
	}
	grants, ticks, rollbacks, rbTicks := e.QuantumCounters()
	if grants == 0 || ticks == 0 {
		t.Fatalf("expected speculation to engage: grants=%d ticks=%d", grants, ticks)
	}
	if ticks > grants*4 {
		t.Fatalf("journal overflow: %d ticks across %d grants of budget 4", ticks, grants)
	}
	if rollbacks != 0 || rbTicks != 0 {
		t.Fatalf("unexpected rollbacks: %d (%d ticks)", rollbacks, rbTicks)
	}
	// The same schedule must fall out of the per-tick engine.
	s0, m0 := quantumRun(t, 0, mk)
	s4, m4 := quantumRun(t, 4, mk)
	if m0 != m4 || fmt.Sprint(s0) != fmt.Sprint(s4) {
		t.Fatalf("journal-full path diverged: makespan %d vs %d, stream lens %d vs %d",
			m4, m0, len(s4), len(s0))
	}
}

// TestQuantumRollback drives the undo log directly: thread 1 interferes
// with thread 0 mid-replay, which must truncate the journal, rewind the
// clock and PRNG to the interference point, and deliver the unwinder
// payload at thread 0's next resume.
func TestQuantumRollback(t *testing.T) {
	sentinel := errors.New("rolled back")
	var (
		ctx0     *Ctx
		got      any
		gotClock uint64
	)
	bodies := []func(*Ctx){
		func(c *Ctx) {
			ctx0 = c
			c.SetUnwinder(func() any { return sentinel })
			defer func() {
				got = recover()
				gotClock = c.Clock()
			}()
			c.Tick(10) // clock 10; horizon moves to thread 1's next event
			_ = c.Rand().Uint64()
			c.TickPure(10) // clock 20: journaled (past the horizon at 15)
			_ = c.Rand().Uint64()
			c.TickPure(10) // clock 30: journaled
			c.Tick(1)      // clock 31: impure, closes the quantum -> replay
			t.Error("thread 0 ran past the rollback point")
		},
		func(c *Ctx) {
			c.Tick(15) // clock 15: pops before thread 0's replay event at 20
			ctx0.Interfere()
			c.Tick(1)
		},
	}
	e := mustEngine(t, Config{
		Topo: topology.MustFromFlat(2, 2), Seed: 3,
		Cost: DefaultCostModel(), SpecQuantum: 8,
	})
	if _, err := e.Run(bodies); err != nil {
		t.Fatal(err)
	}
	if got != sentinel {
		t.Fatalf("recovered %v, want the unwinder sentinel", got)
	}
	if gotClock != 20 {
		t.Fatalf("rolled-back clock = %d, want 20 (the first undelivered journaled tick)", gotClock)
	}
	_, _, rollbacks, rbTicks := e.QuantumCounters()
	if rollbacks != 1 || rbTicks != 2 {
		t.Fatalf("rollbacks=%d rbTicks=%d, want 1 and 2", rollbacks, rbTicks)
	}
}

// TestQuantumRollbackRewindsPRNG reruns the rollback scenario twice and
// checks the draw taken after the rollback equals the draw the same thread
// takes at the same point in a run where speculation never engaged — i.e.
// the PRNG state was truly restored, not merely the clock.
func TestQuantumRollbackRewindsPRNG(t *testing.T) {
	sentinel := errors.New("rolled back")
	run := func(interfere bool) (drawAfter uint64) {
		var ctx0 *Ctx
		bodies := []func(*Ctx){
			func(c *Ctx) {
				ctx0 = c
				c.SetUnwinder(func() any { return sentinel })
				defer func() {
					if interfere {
						recover()
					}
					drawAfter = c.Rand().Uint64()
				}()
				c.Tick(10)
				_ = c.Rand().Uint64()
				c.TickPure(10)
				if !interfere {
					// Mirror the rolled-back run: stop at clock 20 having
					// consumed one draw past the tick to 20.
					return
				}
				_ = c.Rand().Uint64()
				c.TickPure(10)
				c.Tick(1)
			},
			func(c *Ctx) {
				c.Tick(15)
				if interfere {
					ctx0.Interfere()
				}
				c.Tick(1)
			},
		}
		e := mustEngine(t, Config{
			Topo: topology.MustFromFlat(2, 2), Seed: 11,
			Cost: DefaultCostModel(), SpecQuantum: 8,
		})
		if _, err := e.Run(bodies); err != nil {
			t.Fatal(err)
		}
		return drawAfter
	}
	rolled := run(true)
	straight := run(false)
	if rolled != straight {
		t.Fatalf("post-rollback draw %#x != per-tick draw %#x: PRNG not rewound", rolled, straight)
	}
}

// TestQuantumMaxCyclesVerdict pins livelock detection to the per-tick
// schedule: a pure-tick livelock must yield ErrMaxCycles at the same cycle
// whatever the quantum budget (speculation is capped at MaxCycles).
func TestQuantumMaxCyclesVerdict(t *testing.T) {
	mk := func() []func(*Ctx) {
		spin := func(c *Ctx) {
			for {
				c.TickPure(10)
			}
		}
		return []func(*Ctx){spin, spin}
	}
	verdict := func(spec int) uint64 {
		e := mustEngine(t, Config{
			Topo: topology.MustFromFlat(2, 2), Seed: 1, MaxCycles: 1000,
			Cost: DefaultCostModel(), SpecQuantum: spec,
		})
		cycle, err := e.Run(mk())
		if !errors.Is(err, ErrMaxCycles) {
			t.Fatalf("SpecQuantum=%d: err = %v, want ErrMaxCycles", spec, err)
		}
		return cycle
	}
	base := verdict(0)
	for _, spec := range []int{1, 64} {
		if got := verdict(spec); got != base {
			t.Errorf("SpecQuantum=%d: verdict at cycle %d, want %d", spec, got, base)
		}
	}
}

// TestQuantumEngineReuse checks speculation state is fully reset between
// Runs on one engine: a second Run produces the identical stream, and the
// cumulative counters keep growing monotonically.
func TestQuantumEngineReuse(t *testing.T) {
	e := mustEngine(t, Config{
		Topo: topology.MustFromFlat(4, 2), Seed: 7,
		Cost: DefaultCostModel(), SpecQuantum: 16,
	})
	var stream []uint64
	e.SetTickHook(func(now uint64) { stream = append(stream, now) })
	run := func() (string, uint64) {
		stream = stream[:0]
		draws := make([]uint64, 4)
		makespan, err := e.Run(mixedBodies(draws))
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(stream), makespan
	}
	s1, m1 := run()
	_, t1, _, _ := e.QuantumCounters()
	s2, m2 := run()
	_, t2, _, _ := e.QuantumCounters()
	if s1 != s2 || m1 != m2 {
		t.Fatalf("second Run diverged: makespan %d vs %d", m2, m1)
	}
	if t2 <= t1 {
		t.Fatalf("cumulative quantum ticks did not grow across Runs: %d then %d", t1, t2)
	}
}

// allocBodies is a pure/impure workload with no closure state, for the
// allocation guards.
func allocBodies(n int) []func(*Ctx) {
	bodies := make([]func(*Ctx), n)
	for i := range bodies {
		bodies[i] = func(c *Ctx) {
			for k := 0; k < 30; k++ {
				c.TickPure(3)
				c.TickPure(4)
				c.Tick(5)
			}
		}
	}
	return bodies
}

// TestQuantumZeroAlloc verifies the speculation path allocates nothing
// beyond what the per-tick engine allocates: the journal is pre-sized at
// engine construction, so a Run with quanta engaged must cost exactly as
// many allocations as a Run without (the coroutine spawns).
func TestQuantumZeroAlloc(t *testing.T) {
	for _, threads := range []int{8, 128} {
		t.Run(fmt.Sprintf("%dthreads", threads), func(t *testing.T) {
			measure := func(spec int) float64 {
				e := mustEngine(t, Config{
					Topo: topology.MustFromFlat(threads, 2), Seed: 5,
					Cost: DefaultCostModel(), SpecQuantum: spec,
				})
				bodies := allocBodies(threads)
				if _, err := e.Run(bodies); err != nil { // warm-up
					t.Fatal(err)
				}
				return testing.AllocsPerRun(3, func() {
					if _, err := e.Run(bodies); err != nil {
						t.Fatal(err)
					}
				})
			}
			base := measure(0)
			spec := measure(64)
			if spec > base {
				t.Fatalf("quantum path allocates: %.1f allocs/run with speculation, %.1f without", spec, base)
			}
		})
	}
}
