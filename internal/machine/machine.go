// Package machine implements a deterministic virtual-time multicore
// simulator. It is the substrate on which the simulated hardware
// transactional memory (internal/htm) and the Seer scheduler
// (internal/core) run.
//
// The engine hosts N hardware threads, each executing user code in its own
// goroutine. Execution is cooperative: a thread runs exclusively until it
// calls Tick, at which point control returns to the engine, which always
// resumes the runnable thread with the smallest virtual clock (ties broken
// by thread id). Because exactly one thread executes between two scheduling
// points, all simulator state can be manipulated without synchronization,
// and whole runs are reproducible bit-for-bit for a fixed seed.
//
// Virtual time is measured in cycles. Every simulated action has a cost
// from CostModel; a thread's clock advances by that cost at each Tick. The
// makespan of a run is the maximum clock over all threads, which is what
// the benchmark harness uses to compute speedups.
package machine

import (
	"errors"
	"fmt"
)

// CostModel assigns virtual-cycle costs to simulated actions. The absolute
// values are loosely modeled on a Haswell-class core (the paper's testbed);
// only ratios matter for the reproduced results.
type CostModel struct {
	Work        uint64 // one unit of non-memory application work
	TxLoad      uint64 // transactional load (L1 hit + tracking)
	TxStore     uint64 // transactional store (write buffering)
	DirectLoad  uint64 // non-transactional load
	DirectStore uint64 // non-transactional store
	XBegin      uint64 // starting a hardware transaction
	XEnd        uint64 // committing a hardware transaction
	AbortHandle uint64 // pipeline flush + status delivery on abort
	LockOp      uint64 // CAS for acquiring/releasing a lock
	SpinQuantum uint64 // one spin-wait iteration on a held lock
	StatsSlot   uint64 // scanning one activeTxs slot (Seer profiling)
	UpdateBase  uint64 // fixed cost of recomputing the lock scheme
	UpdatePair  uint64 // per-(x,y)-pair cost of recomputing the lock scheme
}

// DefaultCostModel returns the calibrated cost model used throughout the
// evaluation (see EXPERIMENTS.md for the calibration notes).
func DefaultCostModel() CostModel {
	return CostModel{
		Work:        1,
		TxLoad:      2,
		TxStore:     3,
		DirectLoad:  2,
		DirectStore: 3,
		XBegin:      18,
		XEnd:        12,
		AbortHandle: 120,
		LockOp:      25,
		SpinQuantum: 25,
		StatsSlot:   1,
		UpdateBase:  400,
		UpdatePair:  6,
	}
}

// Config describes the simulated machine.
type Config struct {
	HWThreads int   // total hardware threads (virtual cores)
	PhysCores int   // physical cores; HWThreads/PhysCores = SMT ways
	Seed      int64 // seed for all per-thread PRNGs
	MaxCycles uint64
	Cost      CostModel
}

// DefaultConfig mirrors the paper's testbed: a 4-core, 8-hardware-thread
// Haswell Xeon E3-1275.
func DefaultConfig() Config {
	return Config{
		HWThreads: 8,
		PhysCores: 4,
		Seed:      1,
		MaxCycles: 0, // unlimited
		Cost:      DefaultCostModel(),
	}
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	if c.HWThreads <= 0 {
		return fmt.Errorf("machine: HWThreads must be positive, got %d", c.HWThreads)
	}
	if c.HWThreads > 64 {
		return fmt.Errorf("machine: at most 64 hardware threads are supported, got %d", c.HWThreads)
	}
	if c.PhysCores <= 0 {
		return fmt.Errorf("machine: PhysCores must be positive, got %d", c.PhysCores)
	}
	if c.HWThreads%c.PhysCores != 0 {
		return fmt.Errorf("machine: HWThreads (%d) must be a multiple of PhysCores (%d)",
			c.HWThreads, c.PhysCores)
	}
	return nil
}

// PhysCore maps a hardware thread to its physical core. Hardware threads
// t and t+PhysCores are hyperthread siblings sharing one core's L1 cache,
// mirroring the enumeration order of Linux on Intel processors.
func (c Config) PhysCore(hwThread int) int {
	return hwThread % c.PhysCores
}

// Sibling returns the hardware thread ids sharing the physical core of hw
// (excluding hw itself).
func (c Config) Siblings(hw int) []int {
	var sibs []int
	for t := c.PhysCore(hw); t < c.HWThreads; t += c.PhysCores {
		if t != hw {
			sibs = append(sibs, t)
		}
	}
	return sibs
}

// ErrMaxCycles is returned by Engine.Run when a run exceeds
// Config.MaxCycles, which usually indicates a livelock in the simulated
// program.
var ErrMaxCycles = errors.New("machine: run exceeded MaxCycles (livelock?)")

// Ctx is the execution context handed to the code running on one hardware
// thread. All simulated actions go through it.
type Ctx struct {
	id    int
	clock uint64
	rng   Rand
	eng   *Engine

	grant    chan struct{}
	yield    chan struct{}
	finished bool
	aborted  bool
	panicked any
}

// errAbandonRun is the sentinel panic drain uses to unwind thread
// goroutines abandoned on an error path.
var errAbandonRun = errors.New("machine: run abandoned")

// ID returns the hardware thread id (0-based).
func (c *Ctx) ID() int { return c.id }

// Clock returns the thread's current virtual time in cycles.
func (c *Ctx) Clock() uint64 { return c.clock }

// Rand returns the thread's deterministic PRNG.
func (c *Ctx) Rand() *Rand { return &c.rng }

// Machine returns the configuration of the machine this thread runs on.
func (c *Ctx) Machine() Config { return c.eng.cfg }

// Tick advances the thread's virtual clock by cost cycles and yields to
// the engine, which may schedule another thread. Every observable action
// of a simulated thread must pass through Tick: it is both the time
// accounting and the interleaving point.
func (c *Ctx) Tick(cost uint64) {
	c.clock += cost
	c.yield <- struct{}{}
	<-c.grant
	if c.aborted {
		panic(errAbandonRun)
	}
}

// Advance adds cost cycles without yielding. Use only for accounting that
// cannot enable another thread to observe intermediate state.
func (c *Ctx) Advance(cost uint64) { c.clock += cost }

// Work simulates n units of pure computation (no shared-memory effects).
func (c *Ctx) Work(n uint64) {
	c.Tick(n * c.eng.cfg.Cost.Work)
}

// Engine owns the hardware threads and drives the min-clock cooperative
// schedule.
type Engine struct {
	cfg     Config
	threads []*Ctx
	// tickHook, when set, observes the global virtual time (the minimum
	// clock over runnable threads, non-decreasing within a run) once per
	// scheduling step, before the next thread is granted. The telemetry
	// recorder uses it to cut interval snapshots deterministically.
	tickHook func(now uint64)
}

// SetTickHook installs (or clears, with nil) the scheduling-step observer.
// Unset, the loop pays a single nil check per step.
func (e *Engine) SetTickHook(hook func(now uint64)) { e.tickHook = hook }

// New creates an engine for the given machine configuration.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg}
	e.threads = make([]*Ctx, cfg.HWThreads)
	for i := range e.threads {
		e.threads[i] = &Ctx{
			id:    i,
			rng:   NewRand(mix(cfg.Seed, int64(i))),
			eng:   e,
			grant: make(chan struct{}),
			yield: make(chan struct{}),
		}
	}
	return e, nil
}

// Config returns the engine's machine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Thread returns the context of hardware thread i, for inspection by
// simulator components between runs.
func (e *Engine) Thread(i int) *Ctx { return e.threads[i] }

// Run executes one body per hardware thread until all bodies return.
// len(bodies) must be at most the number of hardware threads; threads
// without a body stay idle at clock 0. It returns the makespan (maximum
// final clock). A panic inside a body is recovered and returned as an
// error wrapping the panic value; ErrMaxCycles is returned on livelock.
func (e *Engine) Run(bodies []func(*Ctx)) (makespan uint64, err error) {
	if len(bodies) > len(e.threads) {
		return 0, fmt.Errorf("machine: %d bodies for %d hardware threads",
			len(bodies), len(e.threads))
	}
	active := 0
	for i, body := range bodies {
		if body == nil {
			continue
		}
		t := e.threads[i]
		t.clock = 0
		t.finished = false
		t.aborted = false
		t.panicked = nil
		active++
		go func(t *Ctx, body func(*Ctx)) {
			<-t.grant
			defer func() {
				if r := recover(); r != nil && r != errAbandonRun {
					t.panicked = r
				}
				t.finished = true
				t.yield <- struct{}{}
			}()
			if !t.aborted {
				body(t)
			}
		}(t, body)
	}

	for active > 0 {
		t := e.pickNext(bodies)
		if t == nil {
			break
		}
		if e.tickHook != nil {
			e.tickHook(t.clock)
		}
		if e.cfg.MaxCycles > 0 && t.clock > e.cfg.MaxCycles {
			// Drain every unfinished thread so its goroutine exits
			// rather than leaking, then report the livelock.
			e.drain(bodies)
			return t.clock, ErrMaxCycles
		}
		t.grant <- struct{}{}
		<-t.yield
		if t.finished {
			active--
			if t.panicked != nil {
				e.drain(bodies)
				return t.clock, fmt.Errorf("machine: thread %d panicked: %v", t.id, t.panicked)
			}
		}
	}

	for i, body := range bodies {
		if body == nil {
			continue
		}
		if c := e.threads[i].clock; c > makespan {
			makespan = c
		}
	}
	return makespan, nil
}

// pickNext returns the unfinished thread with the smallest clock.
func (e *Engine) pickNext(bodies []func(*Ctx)) *Ctx {
	var best *Ctx
	for i := range bodies {
		if bodies[i] == nil {
			continue
		}
		t := e.threads[i]
		if t.finished {
			continue
		}
		if best == nil || t.clock < best.clock {
			best = t
		}
	}
	return best
}

// drain terminates all remaining thread goroutines. Called only on the
// error paths: each unfinished goroutine is parked on <-grant (inside
// Tick, or at its initial grant), so setting aborted and granting once
// makes it unwind via the errAbandonRun sentinel panic and signal its
// final yield. No goroutine outlives the run.
func (e *Engine) drain(bodies []func(*Ctx)) {
	for i := range bodies {
		if bodies[i] == nil {
			continue
		}
		t := e.threads[i]
		if t.finished {
			continue
		}
		t.aborted = true
		t.grant <- struct{}{}
		<-t.yield
	}
}

// mix combines a seed and a thread id into a well-spread 64-bit PRNG seed
// (SplitMix64 finalizer).
func mix(seed, id int64) uint64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(id+1)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0x9E3779B97F4A7C15
	}
	return z
}
