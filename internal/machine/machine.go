// Package machine implements a deterministic virtual-time multicore
// simulator. It is the substrate on which the simulated hardware
// transactional memory (internal/htm) and the Seer scheduler
// (internal/core) run.
//
// The engine hosts N hardware threads, each executing user code in a
// resumable execution context (a coroutine). Execution is cooperative: a
// thread runs exclusively until it calls Tick, at which point control
// switches back to the engine's event loop, which always resumes the
// runnable thread with the smallest virtual clock (ties broken by thread
// id) by popping a (wakeup-cycle, thread-id) event from a min-heap.
// Because exactly one thread executes between two scheduling points, all
// simulator state can be manipulated without synchronization, and whole
// runs are reproducible bit-for-bit for a fixed seed.
//
// The scheduler is a single event loop rather than one OS-scheduled
// goroutine per simulated thread: suspending and resuming a context is a
// direct coroutine switch (iter.Pull), not a channel handoff through the
// Go runtime's scheduler, which makes a scheduling step several times
// cheaper and keeps large experiment sweeps CPU-bound on the model rather
// than on synchronization.
//
// Virtual time is measured in cycles. Every simulated action has a cost
// from CostModel; a thread's clock advances by that cost at each Tick. The
// makespan of a run is the maximum clock over all threads, which is what
// the benchmark harness uses to compute speedups.
package machine

import (
	"errors"
	"fmt"
	"iter"

	"seer/internal/topology"
)

// CostModel assigns virtual-cycle costs to simulated actions. The absolute
// values are loosely modeled on a Haswell-class core (the paper's testbed);
// only ratios matter for the reproduced results.
type CostModel struct {
	Work        uint64 // one unit of non-memory application work
	TxLoad      uint64 // transactional load (L1 hit + tracking)
	TxStore     uint64 // transactional store (write buffering)
	DirectLoad  uint64 // non-transactional load
	DirectStore uint64 // non-transactional store
	XBegin      uint64 // starting a hardware transaction
	XEnd        uint64 // committing a hardware transaction
	AbortHandle uint64 // pipeline flush + status delivery on abort
	LockOp      uint64 // CAS for acquiring/releasing a lock
	SpinQuantum uint64 // one spin-wait iteration on a held lock
	StatsSlot   uint64 // scanning one activeTxs slot (Seer profiling)
	UpdateBase  uint64 // fixed cost of recomputing the lock scheme
	UpdatePair  uint64 // per-(x,y)-pair cost of recomputing the lock scheme
	STMBegin    uint64 // starting a software (STM) transaction attempt
	STMCommit   uint64 // software commit: publishing the write buffer
	STMLoad     uint64 // instrumented software transactional load
	STMStore    uint64 // instrumented software transactional store
}

// DefaultCostModel returns the calibrated cost model used throughout the
// evaluation (see EXPERIMENTS.md for the calibration notes).
func DefaultCostModel() CostModel {
	return CostModel{
		Work:        1,
		TxLoad:      2,
		TxStore:     3,
		DirectLoad:  2,
		DirectStore: 3,
		XBegin:      18,
		XEnd:        12,
		AbortHandle: 120,
		LockOp:      25,
		SpinQuantum: 25,
		StatsSlot:   1,
		UpdateBase:  400,
		UpdatePair:  6,
		// Software-mode costs: an STM attempt has no hardware begin/abort
		// machinery but pays per-access instrumentation (ownership
		// acquisition through the conflict registry) and a multi-line
		// commit publish — the classic HTM-vs-STM cost inversion.
		STMBegin:  10,
		STMCommit: 30,
		STMLoad:   6,
		STMStore:  8,
	}
}

// Config describes the simulated machine. The shape — sockets, cores,
// SMT threads — is a first-class topology.Topology value; all thread-
// and core-id arithmetic delegates to it.
type Config struct {
	Topo      topology.Topology // machine shape: sockets × cores × SMT
	Seed      int64             // seed for all per-thread PRNGs
	MaxCycles uint64
	Cost      CostModel
	// SpecQuantum is the speculative multi-tick quantum: the maximum
	// number of pure ticks (Ctx.TickPure) a thread may journal and run
	// past its batch horizon before yielding, with rollback on
	// interference (see quantum.go and DESIGN.md §6i). 0 disables
	// speculation; schedules and all observable streams are identical
	// either way.
	SpecQuantum int
}

// DefaultConfig mirrors the paper's testbed: a 4-core, 8-hardware-thread
// Haswell Xeon E3-1275 (one socket, 2-way SMT).
func DefaultConfig() Config {
	return Config{
		Topo:      topology.SMT2(4),
		Seed:      1,
		MaxCycles: 0, // unlimited
		Cost:      DefaultCostModel(),
	}
}

// MaxHWThreads is the machine-wide hardware-thread ceiling. Occupancy
// masks and per-thread tables throughout the runtime are multi-word
// bitsets dimensioned by topology.MaxThreads; this re-export keeps the
// machine package the authority its callers size against.
const MaxHWThreads = topology.MaxThreads

// ErrTooManyThreads: the topology's thread count exceeds MaxHWThreads.
// Alias of the topology sentinel so callers can match either spelling.
var ErrTooManyThreads = topology.ErrTooManyThreads

// Validate reports whether the configuration is internally consistent.
// Failure modes wrap the topology package's named sentinel errors
// (ErrSockets, ErrCores, ErrSMT, ErrTooManyThreads).
func (c Config) Validate() error {
	if err := c.Topo.Validate(); err != nil {
		return fmt.Errorf("machine: %w", err)
	}
	return nil
}

// HWThreads returns the total hardware thread count.
func (c Config) HWThreads() int { return c.Topo.Threads() }

// PhysCores returns the total physical core count across all sockets.
func (c Config) PhysCores() int { return c.Topo.Cores() }

// PhysCore maps a hardware thread to its global physical core. Hardware
// threads t and t+PhysCores() are hyperthread siblings sharing one
// core's L1 cache, mirroring the enumeration order of Linux on Intel
// processors.
func (c Config) PhysCore(hwThread int) int { return c.Topo.CoreOf(hwThread) }

// Siblings returns the hardware thread ids sharing the physical core of
// hw (excluding hw itself).
func (c Config) Siblings(hw int) []int { return c.Topo.Siblings(hw) }

// ErrMaxCycles is returned by Engine.Run when a run exceeds
// Config.MaxCycles, which usually indicates a livelock in the simulated
// program.
var ErrMaxCycles = errors.New("machine: run exceeded MaxCycles (livelock?)")

// ErrDeadlock is returned by Engine.Run when every remaining thread is
// parked on a wake key and no runnable thread is left to issue a wake —
// the event-driven equivalent of all threads spinning forever on locks
// whose holders are gone.
var ErrDeadlock = errors.New("machine: all remaining threads parked (deadlock)")

// Ctx is the execution context handed to the code running on one hardware
// thread. All simulated actions go through it.
type Ctx struct {
	id    int
	clock uint64
	rng   Rand
	eng   *Engine

	// yield suspends this context and hands (clock) back to the event
	// loop; it reports false when the engine has abandoned the run, in
	// which case the context must unwind. next/stop are the engine-side
	// resume and cancel handles. All three are live only during a Run.
	yield func(uint64) bool
	next  func() (uint64, bool)
	stop  func()

	// batchLimit is the precomputed tick-batch horizon: the first clock
	// value at which this thread must yield to the event loop. While
	// clock < batchLimit the thread is by construction conflict-free —
	// no other thread has a queued event ordered before it, so nothing
	// can doom it, observe it, or be observed by it — and Tick advances
	// through any number of quanta with a single comparison and no heap
	// interaction. The engine recomputes it from (queue min, MaxCycles)
	// before every resume, and WakeKey refreshes it when the running
	// thread re-inserts waiters (see Engine.horizonFor for the exact
	// (cycle, id) tie-break encoding).
	batchLimit uint64

	// Park state (see ParkOn). While parked, clock holds the cycle of the
	// last poll that observed the key busy; the waker fast-forwards it to
	// the first poll boundary scheduled after the wake.
	parked       bool
	parkKey      uint64
	parkPeriod   uint64
	parkPollCost uint64
	parkPolls    int    // remaining poll budget; 0 = unbounded
	parkDeadline uint64 // final-poll cycle for bounded parks
	parkSkipped  uint64 // cumulative virtual cycles fast-forwarded while parked
	// parkEval marks a park whose wake-time polls the engine may evaluate
	// itself through the installed poll evaluator (see ParkOnWord and
	// Engine.SetParkPollEvaluator): a poll that observes the key still
	// busy re-parks without ever resuming the coroutine. pollPending is
	// true between a wake and the delivery of its poll event.
	parkEval    bool
	pollPending bool

	// Delegated-acquire state (see AcquireWord). While acq is true the
	// coroutine is suspended inside AcquireWord and the event loop runs
	// the test-and-test-and-set protocol at the thread's popped events;
	// acqCAS marks the queued event as the CAS tick (else the poll tick).
	acq      bool
	acqCAS   bool
	acqKey   uint64
	acqOwner uint64

	// Speculative-quantum state (see quantum.go). specCap mirrors
	// Config.SpecQuantum; specOn is true while the running thread is
	// deferring pure ticks into the journal; replaying is true while the
	// engine re-delivers journaled ticks as events; specUnwind arms the
	// next resume to panic with the unwinder's payload after a rollback.
	specCap    int
	specOn     bool
	replaying  bool
	specUnwind bool
	spec       specJournal
	unwinder   func() any

	panicked any
}

// errAbandonRun is the sentinel panic a context uses to unwind a body
// abandoned on an error path (yield returned false). It is recovered by
// the context's own trampoline, never seen by user code handlers that
// rethrow foreign panics (e.g. htm.Tx).
var errAbandonRun = errors.New("machine: run abandoned")

// ID returns the hardware thread id (0-based).
func (c *Ctx) ID() int { return c.id }

// Clock returns the thread's current virtual time in cycles.
func (c *Ctx) Clock() uint64 { return c.clock }

// Rand returns the thread's deterministic PRNG.
func (c *Ctx) Rand() *Rand { return &c.rng }

// Machine returns the configuration of the machine this thread runs on.
func (c *Ctx) Machine() Config { return c.eng.cfg }

// Cost returns the machine's cost model without copying the whole Config;
// per-access code holds on to it instead of calling Machine() in a loop.
// The model is immutable for the engine's lifetime.
func (c *Ctx) Cost() *CostModel { return &c.eng.cfg.Cost }

// Tick advances the thread's virtual clock by cost cycles and yields to
// the engine, which may schedule another thread. Every observable action
// of a simulated thread must pass through Tick: it is both the time
// accounting and the interleaving point.
//
// Fast path (tick batching): when the thread's new clock is still below
// its precomputed batch horizon, the engine's loop would push this
// thread's event and immediately pop it again — two coroutine switches
// that cannot change any observable state, since no other thread gets to
// run. In that case Tick performs the engine's per-step work itself (the
// tick hook with exactly the cycle the popped event would have carried)
// and returns without suspending, so a conflict-free context advances
// through arbitrarily many poll quanta per heap interaction at the cost
// of one comparison each. The horizon encodes both the queue minimum
// with the (cycle, id) tie-break and the MaxCycles livelock bound (a
// clock past MaxCycles always takes the yield so the engine loop can
// deliver the verdict); see Engine.horizonFor and DESIGN.md §6h for the
// observation-equivalence argument. This preserves the schedule
// bit-for-bit while eliminating the dominant cost of fine-grained ticks.
func (c *Ctx) Tick(cost uint64) {
	c.clock += cost
	if c.clock < c.batchLimit {
		if hook := c.eng.tickHook; hook != nil {
			hook(c.clock)
		}
		return
	}
	c.specOn = false // an impure tick past the horizon closes any quantum
	if !c.yield(c.clock) {
		panic(errAbandonRun)
	}
	c.checkUnwind()
}

// Advance adds cost cycles without yielding. Use only for accounting that
// cannot enable another thread to observe intermediate state.
func (c *Ctx) Advance(cost uint64) { c.clock += cost }

// ParkOn suspends the thread until another thread calls WakeKey(key),
// replacing a busy-wait loop that polls every period cycles. It is the
// event-driven form of
//
//	for { Tick(period - pollCost); Tick(pollCost); if free { break } }
//
// and must be called right after a poll (a Tick(pollCost) plus load) that
// observed the key busy. The thread is removed from the event heap; a
// subsequent WakeKey computes the first poll boundary
//
//	b = Clock() + k·period  (minimal k ≥ 1 scheduled after the waker)
//
// and re-inserts the thread there with Clock() = b - pollCost, so the
// caller's loop re-executes its polling Tick(pollCost) and observes the
// key at exactly the cycle — and in exactly the heap order — the spin
// loop would have. Virtual-time cost accounting is unchanged: the skipped
// cycles are added in one jump instead of period-sized steps.
//
// maxPolls bounds the wait: after maxPolls further poll boundaries with
// no wake, the thread resumes at the final boundary on its own (the
// bounded variant returns with the key still busy, as a bounded spin loop
// would). maxPolls 0 parks unboundedly; if every remaining thread is
// parked unboundedly, the run fails with ErrDeadlock.
func (c *Ctx) ParkOn(key, period, pollCost uint64, maxPolls int) {
	c.parkEval = false
	c.parkOn(key, period, pollCost, maxPolls)
}

// ParkOnWord is ParkOn for waits whose poll is a plain busy-test of one
// simulated memory word: a Tick(pollCost) followed by a load of key's
// word, with no observable effect beyond the tick when the word is busy
// (the spin-lock polls satisfy this: a busy lock word can have no live
// transactional writer, so the load dooms nobody). Declaring that lets
// the engine evaluate wake-time polls itself through the evaluator
// installed with Engine.SetParkPollEvaluator: a poll that would observe
// the word still busy is replayed by the event loop — hook firings, clock
// and schedule position all identical to the per-tick loop — without the
// two coroutine switches of a resume/re-park round trip. Only a poll that
// observes the word free (or the final boundary of a bounded wait) resumes
// the context, which then re-executes the real poll itself. With no
// evaluator installed it behaves exactly like ParkOn.
func (c *Ctx) ParkOnWord(key, period, pollCost uint64, maxPolls int) {
	c.parkEval = true
	c.parkOn(key, period, pollCost, maxPolls)
}

func (c *Ctx) parkOn(key, period, pollCost uint64, maxPolls int) {
	if period == 0 {
		panic("machine: ParkOn with zero period")
	}
	// A parked thread leaves the schedule entirely, so a speculative
	// journal must be replayed first: parking and replay must never
	// coexist (the wake path assumes the thread has no queued event).
	c.flushSpec()
	c.parkKey = key
	c.parkPeriod = period
	c.parkPollCost = pollCost
	c.parkPolls = maxPolls
	if maxPolls > 0 {
		c.parkDeadline = c.clock + period*uint64(maxPolls)
	}
	c.parked = true
	if !c.yield(c.clock) {
		panic(errAbandonRun)
	}
}

// WakeKey wakes every thread parked on key, scheduling each at its first
// poll boundary ordered after the caller's current position in the
// schedule. The caller is conceptually the thread whose store made the
// key available (a lock release); waiters whose poll would land at the
// caller's exact cycle keep the (cycle, id) tie-break of the event heap.
// With no parked threads the call is one integer compare.
func (c *Ctx) WakeKey(key uint64) {
	e := c.eng
	if e.nParked == 0 {
		return
	}
	for _, t := range e.threads {
		if !t.parked || t.pollPending || t.parkKey != key {
			// A pollPending thread already has its wake's poll event
			// queued; per-tick it would be runnable here, so a second
			// release must not reschedule it.
			continue
		}
		e.wake(t, c.clock, int32(c.id))
	}
	// The re-inserted waiters may now own the queue minimum: shrink the
	// caller's batch horizon so its next Tick yields at the right cycle.
	c.batchLimit = e.horizonFor(int32(c.id))
}

// wake transitions parked thread t back to runnable at its first poll
// boundary scheduled after position (now, wakerID) in the (cycle, id)
// event order.
func (e *Engine) wake(t *Ctx, now uint64, wakerID int32) {
	per := t.parkPeriod
	k := uint64(1)
	if now > t.clock {
		k = (now - t.clock + per - 1) / per // first boundary ≥ now
	}
	b := t.clock + k*per
	if b == now && int32(t.id) < wakerID {
		// A boundary event at the waker's own cycle with a smaller thread
		// id would be ordered before the store that freed the key; the
		// waiter cannot observe it until the next boundary.
		b += per
	}
	t.parkSkipped += (b - t.parkPollCost) - t.clock
	t.clock = b - t.parkPollCost
	if t.parkEval && e.pollEval != nil {
		// Evaluated park: keep the context suspended and queue the poll
		// boundary as an ordinary event. The event loop re-checks the key
		// when the event pops and only resumes the coroutine if the poll
		// would observe it free (see the pollPending branch in Run).
		t.pollPending = true
		if t.parkPolls > 0 {
			if b < t.parkDeadline {
				e.queue.decreaseKey(int32(t.id), b)
			}
		} else {
			e.queue.push(event{cycle: b, id: int32(t.id)})
		}
		return
	}
	t.parked = false
	e.nParked--
	if t.parkPolls > 0 {
		// The bounded waiter's deadline event is queued at ≥ b (the
		// deadline is itself a boundary ordered after the waker, and b is
		// the first such boundary): pull it forward.
		if b < t.parkDeadline {
			e.queue.decreaseKey(int32(t.id), b)
		}
	} else {
		e.queue.push(event{cycle: b, id: int32(t.id)})
	}
}

// ParkSkipped returns the cumulative virtual cycles this thread
// fast-forwarded while parked instead of simulating spin iterations —
// the telemetry layer mirrors interval diffs of this counter.
func (c *Ctx) ParkSkipped() uint64 { return c.parkSkipped }

// Work simulates n units of pure computation (no shared-memory effects) —
// by definition a pure tick, so it is eligible for speculative quanta.
func (c *Ctx) Work(n uint64) {
	c.TickPure(n * c.eng.cfg.Cost.Work)
}

// Engine owns the hardware threads and drives the min-clock cooperative
// schedule from a wakeup-event heap.
type Engine struct {
	cfg     Config
	threads []*Ctx
	// queue holds one (wakeup-cycle, thread-id) event per live context,
	// reused across Runs to stay allocation-free.
	queue eventQueue
	// tickHook, when set, observes the global virtual time (the minimum
	// clock over runnable threads, non-decreasing within a run) once per
	// scheduling step, before the next thread is resumed. The telemetry
	// recorder uses it to cut interval snapshots deterministically.
	tickHook func(now uint64)
	// nParked counts threads currently suspended in ParkOn. It gates
	// WakeKey's scan and distinguishes "all done" from "all deadlocked"
	// when the event heap runs dry.
	nParked int
	// pollEval, when set, reports whether the word a ParkOnWord waiter is
	// parked on is still busy; the event loop uses it to evaluate wake-time
	// polls without resuming the waiter's coroutine. It must be a pure read
	// of committed simulated memory (the runtime installs mem.Memory.Peek).
	pollEval func(key uint64) bool
	// lockLoad/lockStore are the committed-memory word operations backing
	// delegated acquires (Ctx.AcquireWord) — non-transactional load/store
	// with their full strong-isolation doom semantics, executed by the
	// event loop on the acquiring thread's behalf. See SetLockWordOps.
	lockLoad  func(hw int, key uint64) uint64
	lockStore func(hw int, key uint64, v uint64)
	// maxCap is the MaxCycles bound pre-encoded as a batch horizon: the
	// first clock value past the livelock budget (MaxUint64 when the
	// budget is unlimited). Folded into every thread's batchLimit so the
	// Tick fast path is a single comparison.
	maxCap uint64
	// Speculative-quantum totals, accumulated over the engine's lifetime
	// (see Engine.QuantumCounters).
	specGrants        uint64
	specTicks         uint64
	specRollbacks     uint64
	specRollbackTicks uint64
	// running is the context currently resumed inside t.next(), nil
	// between resumes. It lets SpecBarrier reach the speculating thread
	// from hooks (mem.Memory.Peek) that have no Ctx in hand.
	running *Ctx
}

// horizonFor returns the tick-batch horizon for thread id: the first
// clock value at which it must yield to the event loop. While the queue
// is non-empty that is the queue minimum's cycle — exclusive, or
// inclusive when id wins the (cycle, id) tie-break — capped by the
// MaxCycles bound. Tick's strict clock < horizon comparison then
// reproduces exactly the old per-tick test
//
//	(MaxCycles == 0 || clock <= MaxCycles) &&
//	    (queue empty || (clock, id) before queue min)
func (e *Engine) horizonFor(id int32) uint64 {
	lim := e.maxCap
	if q := &e.queue; q.n != 0 {
		h := q.min.cycle
		if id < q.min.id {
			h++ // equal cycles still precede the min: yield one later
		}
		if h < lim {
			lim = h
		}
	}
	return lim
}

// SetTickHook installs (or clears, with nil) the scheduling-step observer.
// Unset, the loop pays a single nil check per step.
func (e *Engine) SetTickHook(hook func(now uint64)) { e.tickHook = hook }

// SetParkPollEvaluator installs (or clears, with nil) the busy predicate
// for evaluated parks (Ctx.ParkOnWord): eval(key) reports whether the word
// the key names is still busy, i.e. whether a poll at the current point in
// the schedule would go back to sleep. It must be a pure read of committed
// simulated state with no side effects — the runtime installs a
// mem.Memory.Peek of the lock word. Install it before Run and leave it in
// place for the engine's lifetime; without one, ParkOnWord degrades to
// ParkOn. Schedules and all observable streams are identical either way.
func (e *Engine) SetParkPollEvaluator(eval func(key uint64) bool) { e.pollEval = eval }

// New creates an engine for the given machine configuration.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, maxCap: ^uint64(0)}
	if cfg.MaxCycles > 0 {
		e.maxCap = cfg.MaxCycles + 1
	}
	e.threads = make([]*Ctx, cfg.HWThreads())
	for i := range e.threads {
		t := &Ctx{
			id:         i,
			rng:        NewRand(mix(cfg.Seed, int64(i))),
			eng:        e,
			batchLimit: e.maxCap,
		}
		if cfg.SpecQuantum > 0 {
			t.specCap = cfg.SpecQuantum
			t.spec.cycles = make([]uint64, cfg.SpecQuantum)
			t.spec.rngs = make([]Rand, cfg.SpecQuantum)
		}
		e.threads[i] = t
	}
	return e, nil
}

// Config returns the engine's machine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Thread returns the context of hardware thread i, for inspection by
// simulator components between runs.
func (e *Engine) Thread(i int) *Ctx { return e.threads[i] }

// start binds body to context t as a fresh coroutine. The coroutine does
// not run until the event loop first resumes it through t.next.
func (t *Ctx) start(body func(*Ctx)) {
	t.next, t.stop = iter.Pull(func(yield func(uint64) bool) {
		t.yield = yield
		defer func() {
			t.yield = nil
			if r := recover(); r != nil && r != errAbandonRun {
				t.panicked = r
			}
		}()
		body(t)
		// A body must not finish with deferred ticks in flight: replay
		// them so the final ticks' hooks fire at their per-tick events
		// before the context is torn down.
		t.flushSpec()
	})
}

// finish releases a context's coroutine handles. stop is idempotent: on a
// context whose body already returned it is a no-op, and on a suspended
// context it resumes it once with yield reporting false, which makes Tick
// unwind the body via the errAbandonRun sentinel.
func (t *Ctx) finish() {
	t.stop()
	t.next, t.stop = nil, nil
}

// Run executes one body per hardware thread until all bodies return.
// len(bodies) must be at most the number of hardware threads; threads
// without a body stay idle at clock 0. It returns the makespan (maximum
// final clock). A panic inside a body is recovered and returned as an
// error wrapping the panic value; ErrMaxCycles is returned on livelock.
func (e *Engine) Run(bodies []func(*Ctx)) (makespan uint64, err error) {
	if len(bodies) > len(e.threads) {
		return 0, fmt.Errorf("machine: %d bodies for %d hardware threads",
			len(bodies), len(e.threads))
	}
	e.queue.clear()
	e.nParked = 0
	for i, body := range bodies {
		if body == nil {
			continue
		}
		t := e.threads[i]
		t.clock = 0
		t.panicked = nil
		t.parked = false
		t.pollPending = false
		t.acq = false
		t.parkSkipped = 0
		t.resetSpec()
		t.start(body)
		e.queue.push(event{cycle: 0, id: int32(i)})
	}

	for !e.queue.empty() {
		ev := e.queue.pop()
		for {
			t := e.threads[ev.id]
			if e.tickHook != nil {
				e.tickHook(ev.cycle)
			}
			if e.cfg.MaxCycles > 0 && ev.cycle > e.cfg.MaxCycles {
				// Unwind every live context so no coroutine outlives the
				// run, then report the livelock.
				e.drain(bodies)
				return ev.cycle, ErrMaxCycles
			}
			runAcq := false
			if t.pollPending {
				// The popped event is an evaluated waiter's wake-time poll
				// boundary. Per-tick the coroutine would resume here, tick
				// through its polling load (firing the hook once more at
				// this same cycle) and, with the word still busy, park
				// again — with no other observable action, because a busy
				// word has no transactional writer to doom. So the engine
				// replays those two steps itself and skips both coroutine
				// switches. The final boundary of a bounded wait always
				// resumes: there the loop gives up busy-or-not.
				t.pollPending = false
				if (t.parkPolls == 0 || ev.cycle < t.parkDeadline) && e.pollEval(t.parkKey) {
					if e.tickHook != nil {
						e.tickHook(ev.cycle)
					}
					t.clock = ev.cycle
					if t.parkPolls > 0 {
						// Re-queue the bounded wait's deadline, exactly as
						// the coroutine's re-park would.
						e.queue.push(event{cycle: t.parkDeadline, id: ev.id})
					}
					break
				}
				// The poll would observe the word free (or this is the
				// final boundary): resume the coroutine so the real load —
				// and its doom semantics on a free word — executes in the
				// context itself. Its clock already sits at the poll's
				// tick start, courtesy of the wake.
				t.parked = false
				e.nParked--
				if t.acq {
					// A delegated acquire's wake: fire the poll tick's
					// hook (the resumed coroutine's Tick would) and run
					// the protocol — the real load included — engine-side.
					if e.tickHook != nil {
						e.tickHook(ev.cycle)
					}
					t.acqCAS = false
					runAcq = true
				}
			} else if t.acq {
				// The popped event is a delegated acquire's own protocol
				// tick; its pop hook above was the tick's hook.
				runAcq = true
			} else if t.parked {
				// A popped event for a still-parked thread is its bounded
				// wait's deadline firing: the final poll boundary arrived
				// with no wake. Fast-forward the clock like a wake would,
				// so the thread re-executes its polling tick at exactly
				// the deadline cycle.
				t.parkSkipped += (ev.cycle - t.parkPollCost) - t.clock
				t.clock = ev.cycle - t.parkPollCost
				t.parked = false
				e.nParked--
			}
			if runAcq {
				nc, status := e.acquireStep(t, ev.cycle)
				if status == acqParked {
					break
				}
				if status == acqQueued {
					nev := event{cycle: nc, id: ev.id}
					if e.queue.empty() || nev.before(e.queue.min) {
						ev = nev
						continue
					}
					ev = e.queue.replaceMin(nev)
					continue
				}
				// acqDone: the winning store executed at the thread's
				// current clock; fall through to the ordinary resume so
				// AcquireWord returns with the lock held.
			}
			if t.replaying {
				if t.spec.next < t.spec.n {
					// The popped event is deferred tick spec.next of t's
					// journal: its hook just fired at exactly the cycle
					// the per-tick engine would have popped — without a
					// coroutine switch. Queue the next deferred tick, or
					// the final resume at the thread's current clock.
					t.spec.next++
					nc := t.clock
					if t.spec.next < t.spec.n {
						nc = t.spec.cycles[t.spec.next]
					}
					nev := event{cycle: nc, id: ev.id}
					if e.queue.empty() || nev.before(e.queue.min) {
						ev = nev
						continue
					}
					ev = e.queue.replaceMin(nev)
					continue
				}
				// Final resume event (or a rollback truncated the journal
				// to this very event): leave replay mode and fall through
				// to the ordinary resume below. If the thread was rolled
				// back, its clock and PRNG already sit at the rewound
				// tick and the resume will unwind (Ctx.checkUnwind).
				t.replaying = false
				t.spec.n, t.spec.next = 0, 0
			}
			t.batchLimit = e.horizonFor(ev.id)
			e.running = t
			clock, ok := t.next()
			e.running = nil
			if !ok {
				// The body returned (or panicked); the context is done
				// and is not re-queued.
				t.finish()
				if t.panicked != nil {
					e.drain(bodies)
					return t.clock, fmt.Errorf("machine: thread %d panicked: %v", t.id, t.panicked)
				}
				break
			}
			if t.parked {
				// The thread suspended in ParkOn: it leaves the schedule
				// until WakeKey re-inserts it. A bounded park keeps a
				// deadline event queued so the wait cannot outlive its
				// poll budget.
				e.nParked++
				if t.parkPolls > 0 {
					e.queue.push(event{cycle: t.parkDeadline, id: ev.id})
				}
				break
			}
			if t.spec.n > 0 {
				// The yield closed a speculative quantum: re-deliver the
				// journaled ticks as ordinary events, in (cycle, id)
				// order, before the world sees this thread again. ParkOn
				// and the coroutine trampoline flush their journals
				// before suspending, so a quantum-closing yield is always
				// a plain runnable yield.
				t.replaying = true
				t.spec.next = 0
				nev := event{cycle: t.spec.cycles[0], id: ev.id}
				if e.queue.empty() || nev.before(e.queue.min) {
					ev = nev
					continue
				}
				ev = e.queue.replaceMin(nev)
				continue
			}
			nev := event{cycle: clock, id: ev.id}
			if e.queue.empty() || nev.before(e.queue.min) {
				// The yielded thread is still the earliest runnable one:
				// resume it directly, no heap traffic. (With MaxCycles
				// unset the thread-side Tick fast path already covers
				// this; the heap check above is what delivers livelock
				// verdicts when it is set.)
				ev = nev
				continue
			}
			// Common yield: the new wakeup goes in as the old minimum
			// comes out, one sift instead of push + pop.
			ev = e.queue.replaceMin(nev)
		}
	}

	if e.nParked > 0 {
		// Every remaining thread is parked with no poll budget and no
		// runnable thread left to wake it.
		for i, body := range bodies {
			if body == nil {
				continue
			}
			if c := e.threads[i].clock; c > makespan {
				makespan = c
			}
		}
		e.drain(bodies)
		return makespan, ErrDeadlock
	}

	for i, body := range bodies {
		if body == nil {
			continue
		}
		t := e.threads[i]
		t.batchLimit = e.maxCap // empty queue: post-run Ticks never yield
		if t.clock > makespan {
			makespan = t.clock
		}
	}
	return makespan, nil
}

// drain unwinds all remaining live contexts. Called only on the error
// paths: contexts suspended inside Tick resume with yield reporting false
// and unwind via the errAbandonRun sentinel; contexts never resumed are
// cancelled before their body starts. Either way the coroutine ends here,
// synchronously, and the engine is immediately reusable.
func (e *Engine) drain(bodies []func(*Ctx)) {
	for i := range bodies {
		if bodies[i] == nil {
			continue
		}
		t := e.threads[i]
		t.parked = false
		t.pollPending = false
		t.acq = false
		t.batchLimit = e.maxCap
		t.resetSpec()
		if t.next != nil {
			t.finish()
		}
	}
	e.queue.clear()
	e.nParked = 0
}

// mix combines a seed and a thread id into a well-spread 64-bit PRNG seed
// (SplitMix64 finalizer).
func mix(seed, id int64) uint64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(id+1)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0x9E3779B97F4A7C15
	}
	return z
}
