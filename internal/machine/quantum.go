package machine

// Speculative multi-tick quanta (DESIGN.md §6i).
//
// The tick-batching fast path (§6h) lets a thread advance only while its
// clock stays strictly below the conflict-free horizon; the first tick at
// or past the horizon still pays a full yield/resume coroutine round-trip,
// and at wide shapes those switches are the dominant engine cost. §6h also
// proved that batching *past* the horizon is unsound in general: an
// earlier-virtual-time thread may doom the batching thread mid-window, and
// the published side effects cannot be taken back.
//
// Quanta recover the opportunity for the subset of ticks where rollback is
// actually possible: PURE ticks (Ctx.TickPure), which advance the clock and
// owe the engine a tick-hook observation but neither read nor write any
// shared simulator state. When a pure tick crosses the horizon and the
// engine has granted a speculative quantum, the tick is not executed
// against the world at all — it is journaled (cycle + PRNG state at entry)
// into a fixed per-thread undo log, and the thread keeps running without
// yielding. The speculation closes at the first impure tick (or park, or
// body return), at which point the thread yields once and the engine
// REPLAYS the journal: each deferred tick becomes an ordinary
// (cycle, id) event that is popped in global (cycle, id) order and fires
// the tick hook exactly as the per-tick engine would have — but without a
// coroutine switch, which is the entire performance win.
//
// If an earlier-virtual-time thread dooms the speculating thread while the
// journal is replaying, Interfere rolls the journal back to the
// interference point: the undelivered ticks are truncated (their hooks
// never fire), the clock and PRNG are restored from the journal entry at
// the replay cursor, and the thread's next resume unwinds through the
// registered unwinder — delivering the abort at exactly the (cycle, id)
// position where the per-tick engine would have delivered it. Every
// observable stream (tick-hook sequence, schedules, PRNG draws, reports)
// is therefore byte-identical to the per-tick engine; see DESIGN.md §6i
// for the full observation-equivalence argument.

// specJournal is the per-thread undo log backing speculative quanta. Both
// arrays are allocated once at engine construction (capacity SpecQuantum),
// so the speculation path performs zero steady-state allocations.
type specJournal struct {
	cycles []uint64 // virtual cycle of each deferred tick, in issue order
	rngs   []Rand   // PRNG state at entry to each deferred tick
	n      int      // deferred ticks currently journaled
	next   int      // replay cursor: deferred ticks already re-delivered
}

// TickPure advances the thread's virtual clock by cost cycles like Tick,
// but declares the tick PURE: it has no effect on any state another
// thread could observe (no memory-registry traffic, no lock words, no
// shared counters) beyond the clock itself and the engine's tick hook.
// Pure ticks are the only ticks eligible for speculative quanta: past the
// batch horizon, with Config.SpecQuantum > 0, the tick is journaled and
// deferred instead of yielding, up to SpecQuantum ticks per quantum.
//
// With SpecQuantum == 0 TickPure is bit-for-bit identical to Tick.
func (c *Ctx) TickPure(cost uint64) {
	c.clock += cost
	if c.clock < c.batchLimit {
		if hook := c.eng.tickHook; hook != nil {
			hook(c.clock)
		}
		return
	}
	if c.specCap > 0 && c.clock < c.eng.maxCap && c.spec.n < c.specCap {
		// Defer the tick into the journal and keep running. The clock
		// guard keeps livelock verdicts on the per-tick schedule: a tick
		// past the MaxCycles budget always yields so the engine loop can
		// deliver ErrMaxCycles at the same event it always did.
		if !c.specOn {
			c.specOn = true
			c.eng.specGrants++
		}
		j := &c.spec
		j.cycles[j.n] = c.clock
		j.rngs[j.n] = c.rng
		j.n++
		c.eng.specTicks++
		return
	}
	c.specOn = false
	if !c.yield(c.clock) {
		panic(errAbandonRun)
	}
	c.checkUnwind()
}

// EndQuantum closes an open speculative quantum, if any: the thread yields
// once and the engine replays the journaled ticks as ordinary events
// before resuming it at the current clock. Callers that are about to make
// a speculated decision irreversible (e.g. deliver a spurious abort drawn
// from the PRNG, or observe a doom flag) must call EndQuantum first, so
// that any rollback triggered during the replay rewinds the decision
// along with the clock and PRNG state.
//
// When the quantum's most recent deferred tick sits exactly at the current
// clock it is un-deferred and becomes the live yield itself — the caller
// is still inside that tick, so the per-tick engine would have made it the
// scheduling point. Without an open quantum the call is a no-op.
func (c *Ctx) EndQuantum() {
	if !c.specOn {
		return
	}
	c.specOn = false
	j := &c.spec
	if j.n > 0 && j.cycles[j.n-1] == c.clock {
		j.n--
		c.eng.specTicks--
	}
	if !c.yield(c.clock) {
		panic(errAbandonRun)
	}
	c.checkUnwind()
}

// Interfere notifies the thread that an earlier-virtual-time action (a
// transaction doom under requester-wins conflict detection) has
// invalidated its speculation. Outside a journal replay this is a no-op:
// the thread's next instruction-boundary check observes the doom exactly
// as in the per-tick engine. Mid-replay, the journal is rolled back to the
// replay cursor — the first deferred tick whose hook has not fired — and
// the thread's clock and PRNG are restored from that entry. The engine's
// next resume of the thread then panics with the registered unwinder's
// payload instead of returning from the tick, delivering the abort at the
// same (cycle, id) position the per-tick schedule delivers it.
func (c *Ctx) Interfere() {
	if !c.replaying || c.spec.next >= c.spec.n {
		return
	}
	j := c.spec.next
	c.eng.specRollbacks++
	c.eng.specRollbackTicks += uint64(c.spec.n - j)
	c.rng = c.spec.rngs[j]
	c.clock = c.spec.cycles[j]
	c.spec.n = j // truncate: the undelivered ticks never happened
	c.specUnwind = true
}

// SetUnwinder installs the payload constructor used to unwind the
// thread's body after a speculative rollback. The HTM registers a
// constructor returning its pre-boxed abort signal, so a rolled-back
// thread aborts through the standard recover path without allocating.
// The constructor runs on the thread's own coroutine, at the tick the
// rollback rewound to.
func (c *Ctx) SetUnwinder(fn func() any) { c.unwinder = fn }

// checkUnwind delivers a pending speculative rollback at the resume point
// of a yield: the registered unwinder builds the panic payload that
// unwinds the thread's body (for the HTM, into its abort recover).
func (c *Ctx) checkUnwind() {
	if !c.specUnwind {
		return
	}
	c.specUnwind = false
	if c.unwinder == nil {
		panic("machine: speculative rollback with no unwinder registered")
	}
	panic(c.unwinder())
}

// flushSpec replays any deferred ticks before a control-flow point the
// journal must not cross (parking, body return). After it returns the
// journal is empty and the thread is positioned at its current clock.
func (c *Ctx) flushSpec() {
	if c.specOn {
		c.EndQuantum()
	}
}

// resetSpec clears all speculation state; called when (re)arming a thread
// for a run and when draining on error paths.
func (c *Ctx) resetSpec() {
	c.specOn = false
	c.replaying = false
	c.specUnwind = false
	c.spec.n = 0
	c.spec.next = 0
}

// SpecBarrier closes the currently running thread's speculative quantum,
// if one is open. It exists for shared reads that have no scheduling point
// of their own — mem.Memory.Peek wires it as its speculation barrier —
// where the reading code holds no Ctx. A speculated read of a lock word
// (spinlock.LockedFast) would observe state from before earlier
// virtual-time threads ran; closing the quantum first replays the journal
// and re-runs the read at its true (cycle, id) position. Outside a resume
// (running == nil) and outside speculation the call is a no-op, so the
// hook is safe for engine- and test-side Peeks.
func (e *Engine) SpecBarrier() {
	if t := e.running; t != nil && t.specOn {
		t.EndQuantum()
	}
}

// QuantumCounters returns the engine-lifetime speculation totals:
// quanta granted, ticks journaled, rollbacks, and ticks discarded by
// rollbacks. Like the HTM counters they accumulate across Runs; callers
// that want per-run numbers diff them.
func (e *Engine) QuantumCounters() (grants, ticks, rollbacks, rollbackTicks uint64) {
	return e.specGrants, e.specTicks, e.specRollbacks, e.specRollbackTicks
}
