package machine

import (
	"sort"
	"testing"
	"testing/quick"
)

// TestEventHeapTieBreak: events with equal wakeup cycles must pop in
// thread-id order — the rule that makes the schedule total and the
// simulation deterministic.
func TestEventHeapTieBreak(t *testing.T) {
	insertions := [][]int32{
		{3, 0, 2, 1},
		{0, 1, 2, 3},
		{3, 2, 1, 0},
		{1, 3, 0, 2},
	}
	for _, ids := range insertions {
		var h eventHeap
		for _, id := range ids {
			h.push(event{cycle: 7, id: id})
		}
		for want := int32(0); want < 4; want++ {
			if got := h.pop(); got.id != want || got.cycle != 7 {
				t.Fatalf("insertion order %v: pop = %+v, want id %d", ids, got, want)
			}
		}
	}
}

// TestEventHeapInterleavedTies mixes cycles and ids: pops must come out in
// (cycle, id) lexicographic order even when pushes interleave with pops.
func TestEventHeapInterleavedTies(t *testing.T) {
	var h eventHeap
	h.push(event{cycle: 10, id: 2})
	h.push(event{cycle: 10, id: 1})
	h.push(event{cycle: 5, id: 3})
	if got := h.pop(); got != (event{cycle: 5, id: 3}) {
		t.Fatalf("pop = %+v, want {5 3}", got)
	}
	h.push(event{cycle: 5, id: 0}) // earlier than both queued events
	h.push(event{cycle: 10, id: 0})
	want := []event{{5, 0}, {10, 0}, {10, 1}, {10, 2}}
	for _, w := range want {
		if got := h.pop(); got != w {
			t.Fatalf("pop = %+v, want %+v", got, w)
		}
	}
	if len(h) != 0 {
		t.Fatalf("heap not empty after draining: %v", h)
	}
}

// TestEventHeapQuickSorted: for random event multisets, popping yields the
// (cycle, id)-sorted order.
func TestEventHeapQuickSorted(t *testing.T) {
	f := func(cycles []uint16, ids []uint8) bool {
		n := len(cycles)
		if len(ids) < n {
			n = len(ids)
		}
		var h eventHeap
		evs := make([]event, n)
		for i := 0; i < n; i++ {
			evs[i] = event{cycle: uint64(cycles[i]), id: int32(ids[i] % MaxHWThreads)}
			h.push(evs[i])
		}
		sort.Slice(evs, func(i, j int) bool { return evs[i].before(evs[j]) })
		for _, want := range evs {
			if got := h.pop(); got != want {
				return false
			}
		}
		return len(h) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineEqualClockSchedulesLowestID: two threads ticking identical
// costs must strictly alternate starting with thread 0 — the engine-level
// consequence of the heap's tie-breaking rule.
func TestEngineEqualClockSchedulesLowestID(t *testing.T) {
	e := mustEngine(t, Config{HWThreads: 3, PhysCores: 3, Seed: 1, Cost: DefaultCostModel()})
	var order []int
	body := func(id int) func(*Ctx) {
		return func(c *Ctx) {
			for n := 0; n < 4; n++ {
				order = append(order, id)
				c.Tick(10)
			}
		}
	}
	if _, err := e.Run([]func(*Ctx){body(0), body(1), body(2)}); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order[%d] = %d, want %d (full: %v)", i, order[i], want[i], order)
		}
	}
}
