package htm

import (
	"testing"

	"seer/internal/mem"
	"seer/internal/topology"
)

func TestWriteBufPutGetOverwrite(t *testing.T) {
	var w writeBuf
	w.begin()
	if _, ok := w.get(17); ok {
		t.Fatalf("empty buffer reported a hit")
	}
	w.put(17, 100)
	w.put(42, 200)
	w.put(17, 101) // overwrite must not add a second entry
	if v, ok := w.get(17); !ok || v != 101 {
		t.Fatalf("get(17) = %d,%v, want 101,true", v, ok)
	}
	if v, ok := w.get(42); !ok || v != 200 {
		t.Fatalf("get(42) = %d,%v, want 200,true", v, ok)
	}
	if _, ok := w.get(43); ok {
		t.Fatalf("miss reported a hit")
	}
	if w.count() != 2 {
		t.Fatalf("count = %d, want 2", w.count())
	}
}

// TestWriteBufEpochInvalidation: begin must make every previous entry
// invisible without clearing slot memory.
func TestWriteBufEpochInvalidation(t *testing.T) {
	var w writeBuf
	w.begin()
	w.put(5, 50)
	w.put(6, 60)
	w.begin()
	if w.count() != 0 {
		t.Fatalf("count after begin = %d, want 0", w.count())
	}
	for _, a := range []mem.Addr{5, 6} {
		if _, ok := w.get(a); ok {
			t.Fatalf("stale entry %d visible after begin", a)
		}
	}
	// A fresh store in the new epoch is independent of the stale slot.
	w.put(5, 55)
	if v, ok := w.get(5); !ok || v != 55 {
		t.Fatalf("get(5) = %d,%v, want 55,true", v, ok)
	}
}

// TestWriteBufGrowthPreservesOrderAndValues: growing past the load factor
// must keep every value and the first-store apply order.
func TestWriteBufGrowthPreservesOrderAndValues(t *testing.T) {
	var w writeBuf
	w.begin()
	const n = 3 * wbInitSlots // forces multiple growths
	for i := 0; i < n; i++ {
		w.put(mem.Addr(i*7+1), uint64(i))
	}
	if w.count() != n {
		t.Fatalf("count = %d, want %d", w.count(), n)
	}
	for i := 0; i < n; i++ {
		if v, ok := w.get(mem.Addr(i*7 + 1)); !ok || v != uint64(i) {
			t.Fatalf("get(%d) = %d,%v, want %d,true", i*7+1, v, ok, i)
		}
	}
	m := mem.New(8 * n)
	m.SetDoomer(nopDoomer{})
	w.apply(m)
	for i := 0; i < n; i++ {
		if got := m.Peek(mem.Addr(i*7 + 1)); got != uint64(i) {
			t.Fatalf("applied word %d = %d, want %d", i*7+1, got, i)
		}
	}
}

// TestWriteBufApplyOrder: the last store to an address wins, and distinct
// addresses are applied in first-store order (observable through a Poke
// trace is overkill — the memory image after apply is what matters, plus
// the recorded order indices must follow insertion).
func TestWriteBufApplyOrder(t *testing.T) {
	var w writeBuf
	w.begin()
	w.put(9, 1)
	w.put(10, 2)
	w.put(9, 3) // overwrite: stays at its first-store position
	if len(w.order) != 2 {
		t.Fatalf("order length = %d, want 2", len(w.order))
	}
	first := w.slots[w.order[0]]
	second := w.slots[w.order[1]]
	if first.addr != 9 || second.addr != 10 {
		t.Fatalf("apply order = [%d %d], want [9 10]", first.addr, second.addr)
	}
	if first.val != 3 {
		t.Fatalf("overwritten value = %d, want 3", first.val)
	}
}

// TestWriteBufEpochWraparound: after 2^32 attempts the epoch stamp wraps;
// the buffer must clear old stamps rather than resurrect ancient entries.
func TestWriteBufEpochWraparound(t *testing.T) {
	var w writeBuf
	w.begin()
	w.put(7, 70)
	w.epoch = ^uint32(0) // jump to the last epoch before wraparound
	w.begin()
	if w.epoch != 1 {
		t.Fatalf("epoch after wraparound = %d, want 1", w.epoch)
	}
	if _, ok := w.get(7); ok {
		t.Fatalf("entry from a pre-wraparound epoch is visible")
	}
	w.put(7, 71)
	if v, ok := w.get(7); !ok || v != 71 {
		t.Fatalf("get(7) = %d,%v, want 71,true", v, ok)
	}
}

// TestWriteBufAddrZero: word address 0 (mem.Nil) is a valid key — slot
// occupancy is epoch-stamped, not sentinel-address based.
func TestWriteBufAddrZero(t *testing.T) {
	var w writeBuf
	w.begin()
	if _, ok := w.get(0); ok {
		t.Fatalf("empty buffer hit on address 0")
	}
	w.put(0, 11)
	if v, ok := w.get(0); !ok || v != 11 {
		t.Fatalf("get(0) = %d,%v, want 11,true", v, ok)
	}
}

// nopDoomer lets writeBuf tests build a Memory without an HTM unit.
type nopDoomer struct{}

func (nopDoomer) DoomReaders(topology.Set, int, mem.Line) {}
func (nopDoomer) DoomWriter(int, int, mem.Line)           {}
