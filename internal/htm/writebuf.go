package htm

import "seer/internal/mem"

// writeBuf is the transactional store buffer: an open-addressed hash table
// from word address to buffered value, with epoch-stamped slot occupancy.
// A slot is live only when its stamp equals the buffer's current epoch, so
// starting a new transaction attempt is O(1): begin bumps the epoch and
// every slot of the previous attempt becomes free without touching memory.
// The backing arrays are owned by one hardware thread's txnState and are
// retained across attempts, which is what makes the committed, uncontended
// transaction path allocation-free in steady state (the table only ever
// allocates when a write set outgrows every previous one on that thread).
//
// order records the slot index of every live entry in first-store order.
// Commit applies the buffer by walking order, giving a deterministic apply
// order (the Go map this replaces iterated in randomized order; with
// distinct keys any order yields the same memory image, but a fixed order
// keeps that property by construction and costs no extra hashing).
type writeBuf struct {
	slots []wbSlot
	order []uint32
	epoch uint32
	mask  uint32
}

// wbSlot is one table entry; live iff epoch matches writeBuf.epoch.
type wbSlot struct {
	addr  mem.Addr
	epoch uint32
	val   uint64
}

// wbInitSlots is the initial table size: at the 1/2 max load factor it
// covers write sets up to 32 words without growing, which is larger than
// the common case across the STAMP workloads.
const wbInitSlots = 64

// begin arms the buffer for a new transaction attempt, invalidating every
// entry of the previous one in O(1).
func (w *writeBuf) begin() {
	if w.slots == nil {
		w.slots = make([]wbSlot, wbInitSlots)
		w.order = make([]uint32, 0, wbInitSlots/2)
		w.mask = wbInitSlots - 1
	}
	w.order = w.order[:0]
	w.epoch++
	if w.epoch == 0 {
		// uint32 wraparound: ancient stamps would become ambiguous, so
		// clear them once every 2^32 attempts.
		for i := range w.slots {
			w.slots[i].epoch = 0
		}
		w.epoch = 1
	}
}

// hash spreads a word address over the table (Knuth multiplicative hash;
// linear probing resolves collisions).
func (w *writeBuf) hash(a mem.Addr) uint32 {
	return (uint32(a) * 2654435761) & w.mask
}

// probe returns the slot index for address a: the live entry holding a, or
// the first free slot on a's probe chain. The ≤1/2 load factor guarantees
// a free slot terminates every chain.
func (w *writeBuf) probe(a mem.Addr) uint32 {
	idx := w.hash(a)
	for {
		s := &w.slots[idx]
		if s.epoch != w.epoch || s.addr == a {
			return idx
		}
		idx = (idx + 1) & w.mask
	}
}

// get returns the buffered value for a, if this attempt stored one.
func (w *writeBuf) get(a mem.Addr) (uint64, bool) {
	if len(w.slots) == 0 {
		return 0, false
	}
	idx := w.hash(a)
	for {
		s := &w.slots[idx]
		if s.epoch != w.epoch {
			return 0, false
		}
		if s.addr == a {
			return s.val, true
		}
		idx = (idx + 1) & w.mask
	}
}

// put buffers a store of v to a, growing the table when the live count
// would exceed half the slots.
func (w *writeBuf) put(a mem.Addr, v uint64) {
	idx := w.probe(a)
	s := &w.slots[idx]
	if s.epoch == w.epoch {
		s.val = v
		return
	}
	if 2*(len(w.order)+1) > len(w.slots) {
		w.grow()
		idx = w.probe(a)
		s = &w.slots[idx]
	}
	s.addr, s.epoch, s.val = a, w.epoch, v
	w.order = append(w.order, idx)
}

// grow doubles the table and rehashes the live entries, preserving their
// first-store order.
func (w *writeBuf) grow() {
	old := w.slots
	w.slots = make([]wbSlot, 2*len(old))
	w.mask = uint32(len(w.slots) - 1)
	for i, oi := range w.order {
		s := old[oi]
		idx := w.probe(s.addr)
		w.slots[idx] = s
		w.order[i] = idx
	}
}

// count returns the number of distinct addresses stored this attempt.
func (w *writeBuf) count() int { return len(w.order) }

// apply pokes every buffered store into memory in first-store order.
func (w *writeBuf) apply(m *mem.Memory) {
	for _, idx := range w.order {
		s := &w.slots[idx]
		m.Poke(s.addr, s.val)
	}
}
