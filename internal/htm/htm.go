// Package htm implements a best-effort hardware transactional memory with
// Intel TSX semantics on top of the simulated machine and memory.
//
// The deliberate fidelity points, which define the problem Seer solves:
//
//   - Abort feedback is coarse: a Status bitmask distinguishes conflict,
//     capacity, explicit and spurious aborts — and nothing else. The HTM
//     never reveals WHICH transaction caused a conflict.
//   - Conflict detection is eager, at cache-line granularity, and
//     requester-wins: an access that conflicts with another transaction's
//     read/write set dooms that transaction (as cache-coherence requests do
//     on real hardware). Doomed transactions notice at their next
//     instruction boundary, mimicking asynchronous aborts.
//   - Strong isolation: non-transactional accesses doom conflicting
//     transactions too (see internal/mem). This is what makes the
//     single-global-lock fall-back correct: transactions read the lock
//     word transactionally, so acquiring it aborts them all.
//   - Capacity is limited by the L1 cache, which hyperthread siblings on
//     one physical core share: while k sibling hardware threads run
//     transactions on a core, each sees only 1/k of the line budget. This
//     is the pathology the paper's core locks address.
//   - No progress guarantee: even a transaction that would succeed can
//     abort spuriously (interrupts etc.), so a software fall-back is
//     mandatory.
package htm

import (
	"fmt"
	"math/bits"

	"seer/internal/machine"
	"seer/internal/mem"
	"seer/internal/topology"
)

// Status is the TSX-style status word returned when a hardware transaction
// aborts. The zero value means "committed".
type Status uint32

// Abort-cause bits, mirroring Intel's _XABORT_* flags.
const (
	BitExplicit Status = 1 << 0 // XAbort was called; code in bits 24-31
	BitRetry    Status = 1 << 1 // the transaction may succeed on retry
	BitConflict Status = 1 << 2 // data conflict with another thread
	BitCapacity Status = 1 << 3 // read/write set exceeded the cache budget
	BitSpurious Status = 1 << 4 // interrupt or other transient condition
)

// ExplicitCode extracts the 8-bit code passed to Tx.Abort.
func (s Status) ExplicitCode() uint8 { return uint8(s >> 24) }

// Conflict reports whether the abort was a data conflict.
func (s Status) Conflict() bool { return s&BitConflict != 0 }

// Capacity reports whether the abort was a capacity overflow.
func (s Status) Capacity() bool { return s&BitCapacity != 0 }

// Explicit reports whether the abort was requested by the program.
func (s Status) Explicit() bool { return s&BitExplicit != 0 }

// String renders the status for logs and test failures.
func (s Status) String() string {
	if s == 0 {
		return "committed"
	}
	out := ""
	add := func(name string) {
		if out != "" {
			out += "|"
		}
		out += name
	}
	if s&BitExplicit != 0 {
		add(fmt.Sprintf("explicit(%d)", s.ExplicitCode()))
	}
	if s&BitRetry != 0 {
		add("retry")
	}
	if s&BitConflict != 0 {
		add("conflict")
	}
	if s&BitCapacity != 0 {
		add("capacity")
	}
	if s&BitSpurious != 0 {
		add("spurious")
	}
	return out
}

// Config sets the capacity and noise parameters of the HTM.
type Config struct {
	// ReadSetLines is the maximum number of cache lines a transaction
	// may read when it has its physical core's L1 to itself
	// (Haswell tracks reads beyond L1, so this is larger than the
	// write-set budget).
	ReadSetLines int
	// WriteSetLines is the maximum number of written cache lines
	// (bounded by L1: 32 KiB / 64 B = 512 on Haswell).
	WriteSetLines int
	// SpuriousProb is the per-access probability of a transient abort.
	SpuriousProb float64
}

// DefaultConfig returns Haswell-like capacities, scaled down so that the
// scaled-down STAMP workloads exercise capacity aborts the way the full
// benchmarks do on real silicon.
func DefaultConfig() Config {
	return Config{
		ReadSetLines:  512,
		WriteSetLines: 64,
		SpuriousProb:  0.00002,
	}
}

// Counters aggregates HTM events for reports and tests.
type Counters struct {
	Commits        uint64
	Aborts         uint64
	ConflictAborts uint64
	CapacityAborts uint64
	ExplicitAborts uint64
	SpuriousAborts uint64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Commits += other.Commits
	c.Aborts += other.Aborts
	c.ConflictAborts += other.ConflictAborts
	c.CapacityAborts += other.CapacityAborts
	c.ExplicitAborts += other.ExplicitAborts
	c.SpuriousAborts += other.SpuriousAborts
}

// txnState is the per-hardware-thread transaction context. All of its
// buffers — the registered-line list, the epoch-stamped write buffer and
// the reusable Tx handle — live for the thread's lifetime and are reused
// across attempts, so a committed transaction allocates nothing.
//
// Read/write-set membership is not tracked here at all: the memory's
// conflict registry (mem.lineState) is the authoritative set
// representation, and RegisterRead/RegisterWrite report exactly when a set
// grows. txnState only keeps the two footprint counters the capacity model
// needs, plus the flat list of registered lines for O(set-size)
// unregistration.
type txnState struct {
	active     bool
	doomed     bool
	doomStatus Status
	doomedBy   int16 // hw thread whose access doomed this txn (-1 unknown)
	// ctx is the machine context of the thread this state belongs to,
	// captured at transaction begin. The doom path uses it to notify the
	// engine's speculative-quantum machinery (machine.Ctx.Interfere) so a
	// victim whose journal is mid-replay rolls back to the interference
	// point instead of publishing speculated ticks.
	ctx         *machine.Ctx
	nReadLines  int        // lines counted against the read budget
	nWriteLines int        // lines counted against the write budget
	lines       []mem.Line // every registered line, for unregistering
	wb          writeBuf   // buffered stores, reused across attempts
	tx          Tx         // reusable per-attempt transaction handle
	// sig is the pre-boxed abort panic payload: every abort panics with
	// &sig, so unwinding a transaction never allocates (panicking with an
	// abortSignal value would box it into the interface on every abort).
	sig abortSignal
}

// reset clears the per-attempt state while keeping every reusable buffer's
// capacity: lines is truncated in place and the write buffer's backing
// arrays stay armed for the next begin().
func (t *txnState) reset() {
	t.active = false
	t.doomed = false
	t.doomStatus = 0
	t.nReadLines = 0
	t.nWriteLines = 0
	t.lines = t.lines[:0]
}

// Unit is the machine's transactional-memory facility: one per simulated
// machine, tracking the in-flight transaction of every hardware thread.
type Unit struct {
	mem  *mem.Memory
	mach machine.Config
	cfg  Config
	txns []txnState
	cnt  []Counters // per hardware thread, hardware (HTM) attempts
	// swCnt mirrors cnt for software-mode (STM) attempts run through
	// RunSW; kept separate so reports can distinguish the two commit
	// protocols. Nil until the first RunSW-capable unit is built — it is
	// always allocated alongside cnt, so indexing is safe whenever cnt is.
	swCnt []Counters
	// coreActive[core] counts the hardware threads of one physical core
	// currently inside a transaction, maintained at transaction begin/end
	// so the capacity model reads it in O(1) instead of scanning the
	// core's siblings on every set growth. Indexed by the topology's
	// global core id.
	coreActive []int16
	// coreOf[hw] is the global physical core of each hardware thread,
	// precomputed so the per-access capacity checks don't re-derive it
	// from the machine configuration. int32 holds any core id the
	// topology ceiling admits (the old int8 silently wrapped past 127
	// cores).
	coreOf []int32
	// lastConflictor[hw] records who doomed hw's latest conflict abort
	// (simulator-only oracle; see LastConflictor).
	lastConflictor []int16
	// doomHook, when set, observes every effective doom with its ground
	// truth: victim, aborter (-1 for non-conflict dooms) and the contended
	// cache line. It is the attribution subsystem's tap (internal/txtrace);
	// like the oracle it is simulator-only and costs one nil check when off.
	doomHook func(victim, aborter int, ln mem.Line)
}

// New creates the HTM unit and installs it as the memory's doomer.
// The machine config must be valid (Validate'd by machine.New): in
// particular its thread count fits machine.MaxHWThreads, which is what
// keeps the precomputed core-id table in range.
func New(m *mem.Memory, mach machine.Config, cfg Config) *Unit {
	return NewRecycled(m, mach, cfg, nil)
}

// Counters returns the summed event counters across hardware threads.
func (u *Unit) Counters() Counters {
	var total Counters
	for i := range u.cnt {
		total.Add(u.cnt[i])
	}
	return total
}

// SWCounters returns the summed software-mode (STM) event counters
// across hardware threads. All zero unless RunSW executed.
func (u *Unit) SWCounters() Counters {
	var total Counters
	for i := range u.swCnt {
		total.Add(u.swCnt[i])
	}
	return total
}

// ThreadCounters returns the event counters of one hardware thread.
func (u *Unit) ThreadCounters(hw int) Counters { return u.cnt[hw] }

// ResetCounters zeroes all event counters.
func (u *Unit) ResetCounters() {
	for i := range u.cnt {
		u.cnt[i] = Counters{}
	}
	for i := range u.swCnt {
		u.swCnt[i] = Counters{}
	}
}

// Active reports whether hardware thread hw is inside a transaction
// (the xtest() analogue at the unit level).
func (u *Unit) Active(hw int) bool { return u.txns[hw].active }

// SetDoomHook installs (or clears, with nil) the doom observer. The hook
// fires once per effective doom — after the victim's registry entries are
// removed, before the victim notices — and must not touch the machine
// clock.
func (u *Unit) SetDoomHook(fn func(victim, aborter int, ln mem.Line)) { u.doomHook = fn }

// --- mem.Doomer implementation ---

// DoomReaders aborts every transaction in the readers set except self.
// The set arrives by value (a snapshot): doom unregisters the victim's
// lines, mutating the very registry entry the caller is iterating.
func (u *Unit) DoomReaders(readers topology.Set, self int, ln mem.Line) {
	for wi, w := range readers.W {
		base := wi << 6
		for w != 0 {
			hw := base + bits.TrailingZeros64(w)
			w &= w - 1
			if hw != self {
				u.doom(hw, BitConflict|BitRetry, self, ln)
			}
		}
	}
}

// DoomWriter aborts the transaction of hardware thread writer unless it is
// self.
func (u *Unit) DoomWriter(writer, self int, ln mem.Line) {
	if writer != self {
		u.doom(writer, BitConflict|BitRetry, self, ln)
	}
}

// LastConflictor returns the hardware thread whose access caused hw's
// most recent conflict abort, or -1.
//
// This is a SIMULATOR-ONLY oracle: no commodity HTM exposes the
// conflicting transaction (that restriction is the whole premise of the
// paper). It exists so the Oracle policy can quantify what precise
// feedback would be worth; Seer never touches it.
func (u *Unit) LastConflictor(hw int) int { return int(u.lastConflictor[hw]) }

// doom marks hw's transaction as aborted and removes its registry entries
// immediately so the conflict state stays consistent; the victim observes
// the doom flag at its next instruction boundary. by records the
// requester for the simulator-only oracle interface; ln is the contended
// cache line, forwarded to the attribution hook.
func (u *Unit) doom(hw int, status Status, by int, ln mem.Line) {
	t := &u.txns[hw]
	if !t.active || t.doomed {
		return
	}
	t.doomed = true
	t.doomStatus |= status
	t.doomedBy = int16(by)
	u.lastConflictor[hw] = int16(by)
	u.mem.Unregister(hw, t.lines)
	t.lines = t.lines[:0]
	t.nReadLines = 0
	t.nWriteLines = 0
	if u.doomHook != nil {
		u.doomHook(hw, by, ln)
	}
	if t.ctx != nil {
		// Requester-wins interference: if the victim is speculating past
		// its batch horizon, roll its journal back to this point so the
		// abort is delivered on the per-tick schedule (no-op otherwise).
		t.ctx.Interfere()
	}
}

// abortSignal is the panic payload used to unwind a transaction body, the
// Go analogue of the setjmp/longjmp behaviour of xbegin.
type abortSignal struct{ status Status }

// Tx is a running hardware transaction bound to one hardware thread. It
// implements the same Load/Store accessor shape as mem.Direct, so workload
// code is oblivious to which path (HTM or fall-back) executes it. The
// struct lives inside its thread's txnState and is reused across attempts.
type Tx struct {
	u    *Unit
	ctx  *machine.Ctx
	cost *machine.CostModel
	st   *txnState // the owning thread's state, cached for the access path
	hw   int
	// Per-attempt execution-mode parameters, set by Run (hardware values)
	// or RunSW (software values) so the shared access path needs no mode
	// branches: loads/stores charge loadCost/storeCost, step draws
	// spurious aborts with probability spurious, and sw disables the L1
	// capacity model (a software transaction's footprint is bounded only
	// by memory).
	sw        bool
	loadCost  uint64
	storeCost uint64
	spurious  float64
}

// activeOnCore counts hardware threads of hw's physical core currently
// running a transaction (including hw itself); the L1 line budget is
// divided by it. The count is maintained incrementally at transaction
// begin/end (see Run), so this is an array read.
func (u *Unit) activeOnCore(hw int) int {
	n := int(u.coreActive[u.coreOf[hw]])
	if n == 0 {
		n = 1
	}
	return n
}

func (u *Unit) readCap(hw int) int  { return max(1, u.cfg.ReadSetLines/u.activeOnCore(hw)) }
func (u *Unit) writeCap(hw int) int { return max(1, u.cfg.WriteSetLines/u.activeOnCore(hw)) }

// step advances virtual time by cost and delivers any pending asynchronous
// abort.
func (t *Tx) step(cost uint64) {
	t.ctx.Tick(cost)
	st := t.st
	if st.doomed {
		st.sig.status = st.doomStatus
		panic(&st.sig)
	}
	if t.spurious > 0 && t.ctx.Rand().Bool(t.spurious) {
		t.u.lastConflictor[t.hw] = -1
		st.sig.status = BitSpurious | BitRetry
		panic(&st.sig)
	}
}

// stepPure is step for ticks with no shared-state side effects (Tx.Work):
// the tick is eligible for a speculative quantum. The two step outcomes
// that make a speculated tick irreversible — observing a pending doom and
// drawing a spurious abort — first close the quantum with EndQuantum, so
// the journal replays (and can still roll back, rewinding the PRNG draw
// along with the clock) before the abort is delivered. With speculation
// disabled this is bit-for-bit identical to step.
func (t *Tx) stepPure(cost uint64) {
	t.ctx.TickPure(cost)
	st := t.st
	if st.doomed {
		t.ctx.EndQuantum()
		st.sig.status = st.doomStatus
		panic(&st.sig)
	}
	if t.spurious > 0 && t.ctx.Rand().Bool(t.spurious) {
		t.ctx.EndQuantum()
		t.u.lastConflictor[t.hw] = -1
		st.sig.status = BitSpurious | BitRetry
		panic(&st.sig)
	}
}

// Load performs a transactional load. The conflict registry doubles as
// the read-set representation: RegisterRead reports whether the set grew,
// so the only per-access bookkeeping is a counter bump and a slice append.
// Cross-socket lines may carry an extra cost (see mem.SetAccessCost).
func (t *Tx) Load(a mem.Addr) uint64 {
	t.step(t.loadCost + t.u.mem.AccessCost(t.hw, a))
	st := t.st
	if v, ok := st.wb.get(a); ok {
		return v
	}
	if grew, ownWrite := t.u.mem.RegisterRead(t.hw, a); grew && !ownWrite {
		st.nReadLines++
		st.lines = append(st.lines, mem.LineOf(a))
		if !t.sw && st.nReadLines > t.u.readCap(t.hw) {
			st.sig.status = BitCapacity
			panic(&st.sig)
		}
	}
	return t.u.mem.Peek(a)
}

// Store performs a transactional (buffered) store.
func (t *Tx) Store(a mem.Addr, v uint64) {
	t.step(t.storeCost + t.u.mem.AccessCost(t.hw, a))
	st := t.st
	if grew, wasReader := t.u.mem.RegisterWrite(t.hw, a); grew {
		st.nWriteLines++
		if !wasReader {
			st.lines = append(st.lines, mem.LineOf(a))
		}
		if !t.sw && st.nWriteLines > t.u.writeCap(t.hw) {
			st.sig.status = BitCapacity
			panic(&st.sig)
		}
	}
	st.wb.put(a, v)
}

// Work simulates n units of in-transaction computation (with abort
// delivery at the instruction boundary, like any other transactional
// step). Pure computation touches no shared simulator state, so its tick
// is speculable: under an open quantum it is journaled instead of
// yielding, and a conflicting access by an earlier-virtual-time thread
// rolls it back (see machine.Ctx.TickPure).
func (t *Tx) Work(n uint64) {
	if n > 0 {
		t.stepPure(n * t.cost.Work)
	}
}

// ThreadID returns the hardware thread running this transaction.
func (t *Tx) ThreadID() int { return t.hw }

// Abort explicitly aborts the transaction with an 8-bit code (the xabort
// analogue). It never returns.
func (t *Tx) Abort(code uint8) {
	t.st.sig.status = BitExplicit | BitRetry | Status(code)<<24
	panic(&t.st.sig)
}

// ReadSetLines and WriteSetLines report the current footprint, for tests.
func (t *Tx) ReadSetLines() int  { return t.st.nReadLines }
func (t *Tx) WriteSetLines() int { return t.st.nWriteLines }

// WriteSetWords reports the number of distinct buffered store addresses,
// for tests.
func (t *Tx) WriteSetWords() int { return t.st.wb.count() }

// Run executes body as one hardware transaction attempt on ctx's thread.
// It returns status 0 if the transaction committed, and the abort status
// otherwise (body side effects are discarded on abort, as the write buffer
// is never applied). Nesting is not supported and panics.
func (u *Unit) Run(ctx *machine.Ctx, body func(*Tx)) (status Status) {
	hw := ctx.ID()
	st := &u.txns[hw]
	if st.active {
		panic("htm: nested hardware transactions are not supported")
	}
	if st.ctx != ctx {
		// First attempt on this (thread, engine) pair: capture the context
		// for doom-time interference delivery and register the rollback
		// unwinder — it rethrows the pre-boxed abort signal, so a
		// speculative rollback aborts through the standard recover path
		// below without allocating. One closure per thread lifetime.
		st.ctx = ctx
		ctx.SetUnwinder(func() any {
			st.sig.status = st.doomStatus
			return &st.sig
		})
	}
	cost := ctx.Cost()
	ctx.Tick(cost.XBegin)
	st.active = true
	u.coreActive[u.coreOf[hw]]++
	st.doomed = false
	st.doomStatus = 0
	st.nReadLines = 0
	st.nWriteLines = 0
	st.lines = st.lines[:0]
	st.wb.begin()

	tx := &st.tx
	tx.u, tx.ctx, tx.cost, tx.st, tx.hw = u, ctx, cost, st, hw
	tx.sw, tx.loadCost, tx.storeCost, tx.spurious = false, cost.TxLoad, cost.TxStore, u.cfg.SpuriousProb
	defer func() {
		if r := recover(); r != nil {
			// An explicit Tx.Abort can fire with a quantum still open (its
			// panic is not a scheduling point); the unwind below touches
			// shared state (coreActive, the conflict registry), so close the
			// quantum first. If the replay discovers a doom that predates
			// the explicit abort, the rollback signal supersedes it — the
			// per-tick engine would have delivered that doom at the
			// journaled tick's boundary check, before control ever reached
			// Abort. All other abort sources — step, stepPure, a speculative
			// rollback — arrive here with the quantum closed (no-op).
			if rb := endQuantumRecover(ctx); rb != nil {
				r = rb
			}
			u.coreActive[u.coreOf[hw]]--
			sig, ok := r.(*abortSignal)
			if !ok {
				st.reset()
				panic(r) // programming error in the body: propagate
			}
			status = sig.status
			if status == 0 {
				// Defensive: an abort must carry a cause.
				status = BitRetry
			}
			u.mem.Unregister(hw, st.lines)
			st.reset()
			u.recordAbort(hw, status)
			ctx.Tick(cost.AbortHandle)
		}
	}()

	body(tx)

	// Commit: one scheduling point, then the write buffer becomes
	// globally visible atomically (single-threaded step).
	tx.step(cost.XEnd)
	st.wb.apply(u.mem)
	u.mem.Unregister(hw, st.lines)
	st.reset()
	u.coreActive[u.coreOf[hw]]--
	u.cnt[hw].Commits++
	return 0
}

// RunSW executes body as one software (STM) transaction attempt on ctx's
// thread — the SW execution mode of the phased-TM runtime. The protocol
// reuses the hardware path's machinery wholesale: per-line ownership is
// acquired through the same conflict registry (so software transactions
// conflict-detect eagerly against hardware transactions, other software
// transactions and direct accesses alike, requester-wins), stores are
// buffered in the same epoch-stamped write buffer and published on commit,
// and aborts unwind through the same pre-boxed panic signal — zero
// steady-state allocations, exactly like Run. The differences are the
// mode parameters: no L1 capacity model (a software footprint is bounded
// only by memory), no spurious aborts, instrumented per-access costs
// (CostModel.STMLoad/STMStore) and a multi-line commit publish cost
// (STMCommit) instead of XEnd. Software attempts do not occupy the
// physical core's speculative L1 state, so they never shrink the capacity
// budget of hardware transactions on sibling hyperthreads.
func (u *Unit) RunSW(ctx *machine.Ctx, body func(*Tx)) (status Status) {
	hw := ctx.ID()
	st := &u.txns[hw]
	if st.active {
		panic("htm: nested transactions are not supported")
	}
	if st.ctx != ctx {
		st.ctx = ctx
		ctx.SetUnwinder(func() any {
			st.sig.status = st.doomStatus
			return &st.sig
		})
	}
	cost := ctx.Cost()
	ctx.Tick(cost.STMBegin)
	st.active = true
	st.doomed = false
	st.doomStatus = 0
	st.nReadLines = 0
	st.nWriteLines = 0
	st.lines = st.lines[:0]
	st.wb.begin()

	tx := &st.tx
	tx.u, tx.ctx, tx.cost, tx.st, tx.hw = u, ctx, cost, st, hw
	tx.sw, tx.loadCost, tx.storeCost, tx.spurious = true, cost.STMLoad, cost.STMStore, 0
	defer func() {
		if r := recover(); r != nil {
			// Same unwind discipline as Run: close any open speculative
			// quantum before touching shared state, then classify.
			if rb := endQuantumRecover(ctx); rb != nil {
				r = rb
			}
			sig, ok := r.(*abortSignal)
			if !ok {
				st.reset()
				panic(r) // programming error in the body: propagate
			}
			status = sig.status
			if status == 0 {
				status = BitRetry
			}
			u.mem.Unregister(hw, st.lines)
			st.reset()
			u.recordAbortSW(hw, status)
			ctx.Tick(cost.AbortHandle)
		}
	}()

	body(tx)

	// Software commit: one scheduling point for the publish, then the
	// write buffer becomes globally visible. The transaction still owns
	// every written line in the registry at this point (a conflicting
	// access would have doomed it), which is what makes the single-step
	// publish atomic with respect to all other execution modes.
	tx.step(cost.STMCommit)
	st.wb.apply(u.mem)
	u.mem.Unregister(hw, st.lines)
	st.reset()
	u.swCnt[hw].Commits++
	return 0
}

// recordAbortSW is recordAbort for software-mode attempts.
func (u *Unit) recordAbortSW(hw int, s Status) {
	c := &u.swCnt[hw]
	c.Aborts++
	switch {
	case s&BitConflict != 0:
		c.ConflictAborts++
	case s&BitCapacity != 0:
		c.CapacityAborts++
	case s&BitExplicit != 0:
		c.ExplicitAborts++
	case s&BitSpurious != 0:
		c.SpuriousAborts++
	}
}

// endQuantumRecover closes an open speculative quantum from inside Run's
// recover block, where the deferred recover has already fired: a rollback
// raised during the replay (machine.Ctx.checkUnwind) must be caught here
// or it would escape Run entirely. It returns the rollback's abort signal,
// nil if the replay completed cleanly, and re-panics anything that is not
// an abort signal (engine teardown's abandon-run sentinel).
func endQuantumRecover(ctx *machine.Ctx) (sig *abortSignal) {
	defer func() {
		if r := recover(); r != nil {
			s, ok := r.(*abortSignal)
			if !ok {
				panic(r)
			}
			sig = s
		}
	}()
	ctx.EndQuantum()
	return nil
}

func (u *Unit) recordAbort(hw int, s Status) {
	c := &u.cnt[hw]
	c.Aborts++
	switch {
	case s&BitConflict != 0:
		c.ConflictAborts++
	case s&BitCapacity != 0:
		c.CapacityAborts++
	case s&BitExplicit != 0:
		c.ExplicitAborts++
	case s&BitSpurious != 0:
		c.SpuriousAborts++
	}
}

// Compile-time check: a hardware transaction satisfies the uniform
// accessor interface, so bodies run unchanged on HTM and fall-back paths.
var _ mem.Access = (*Tx)(nil)
