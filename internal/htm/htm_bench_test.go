package htm

import (
	"testing"

	"seer/internal/machine"
	"seer/internal/mem"
	"seer/internal/topology"
)

// BenchmarkUncontendedTxn measures simulator throughput for small
// conflict-free transactions (the common fast path).
func BenchmarkUncontendedTxn(b *testing.B) {
	cfg := machine.Config{Topo: topology.Flat(1), Seed: 1, Cost: machine.DefaultCostModel()}
	eng, _ := machine.New(cfg)
	m := mem.New(1 << 12)
	u := New(m, cfg, DefaultConfig())
	a := m.AllocLines(1)
	b.ResetTimer()
	eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		for i := 0; i < b.N; i++ {
			u.Run(c, func(tx *Tx) {
				tx.Store(a, tx.Load(a)+1)
			})
		}
	}})
}

// BenchmarkConflictingTxns measures the abort/retry path under two
// threads hammering one line.
func BenchmarkConflictingTxns(b *testing.B) {
	cfg := machine.Config{Topo: topology.Flat(2), Seed: 1, Cost: machine.DefaultCostModel()}
	eng, _ := machine.New(cfg)
	m := mem.New(1 << 12)
	u := New(m, cfg, DefaultConfig())
	a := m.AllocLines(1)
	per := b.N/2 + 1
	body := func(c *machine.Ctx) {
		for i := 0; i < per; i++ {
			for {
				if u.Run(c, func(tx *Tx) {
					v := tx.Load(a)
					tx.Work(20)
					tx.Store(a, v+1)
				}) == 0 {
					break
				}
			}
		}
	}
	b.ResetTimer()
	eng.Run([]func(*machine.Ctx){body, body})
}

// BenchmarkWriteHeavyTxn measures store-dominated transactions: every
// access is a buffered write, so this isolates the write-buffer put path
// and the commit apply loop.
func BenchmarkWriteHeavyTxn(b *testing.B) {
	cfg := machine.Config{Topo: topology.Flat(1), Seed: 1, Cost: machine.DefaultCostModel()}
	eng, _ := machine.New(cfg)
	m := mem.New(1 << 12)
	u := New(m, cfg, DefaultConfig())
	base := m.AllocLines(2)
	b.ReportAllocs()
	b.ResetTimer()
	eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		for i := 0; i < b.N; i++ {
			u.Run(c, func(tx *Tx) {
				for w := 0; w < 16; w++ {
					tx.Store(base+mem.Addr(w), uint64(i))
				}
			})
		}
	}})
}

// BenchmarkLargeWriteSet measures per-access cost with a wide footprint.
func BenchmarkLargeWriteSet(b *testing.B) {
	cfg := machine.Config{Topo: topology.Flat(1), Seed: 1, Cost: machine.DefaultCostModel()}
	eng, _ := machine.New(cfg)
	m := mem.New(1 << 16)
	u := New(m, cfg, Config{ReadSetLines: 4096, WriteSetLines: 512})
	base := m.AllocLines(64)
	b.ResetTimer()
	eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		for i := 0; i < b.N; i++ {
			u.Run(c, func(tx *Tx) {
				for l := 0; l < 32; l++ {
					tx.Store(base+mem.Addr(l*mem.LineWords), uint64(i))
				}
			})
		}
	}})
}
