package htm

import (
	"testing"

	"seer/internal/machine"
	"seer/internal/mem"
	"seer/internal/topology"
)

// env builds a 1-or-more-thread machine with memory and an HTM unit.
func env(t *testing.T, hwThreads, physCores int) (*machine.Engine, *mem.Memory, *Unit) {
	t.Helper()
	cfg := machine.Config{
		Topo: topology.MustFromFlat(hwThreads, physCores),
		Seed: 42,
		Cost: machine.DefaultCostModel(),
	}
	eng, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(1 << 12)
	u := New(m, cfg, Config{ReadSetLines: 64, WriteSetLines: 16, SpuriousProb: 0})
	return eng, m, u
}

func TestCommitAppliesWrites(t *testing.T) {
	eng, m, u := env(t, 1, 1)
	a := m.AllocLines(1)
	if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		status := u.Run(c, func(tx *Tx) {
			tx.Store(a, 7)
			if tx.Load(a) != 7 {
				t.Errorf("transaction does not see its own write")
			}
		})
		if status != 0 {
			t.Errorf("status = %v, want commit", status)
		}
	}}); err != nil {
		t.Fatal(err)
	}
	if m.Peek(a) != 7 {
		t.Fatalf("committed value not applied: %d", m.Peek(a))
	}
	if c := u.Counters(); c.Commits != 1 || c.Aborts != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestExplicitAbortDiscardsWrites(t *testing.T) {
	eng, m, u := env(t, 1, 1)
	a := m.AllocLines(1)
	m.Poke(a, 1)
	if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		status := u.Run(c, func(tx *Tx) {
			tx.Store(a, 99)
			tx.Abort(0x42)
		})
		if !status.Explicit() || status.ExplicitCode() != 0x42 {
			t.Errorf("status = %v, want explicit(0x42)", status)
		}
	}}); err != nil {
		t.Fatal(err)
	}
	if m.Peek(a) != 1 {
		t.Fatalf("aborted write leaked: %d", m.Peek(a))
	}
	if c := u.Counters(); c.ExplicitAborts != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestWriteCapacityAbort(t *testing.T) {
	eng, m, u := env(t, 1, 1)
	base := m.AllocLines(32)
	if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		status := u.Run(c, func(tx *Tx) {
			for i := 0; i < 32; i++ { // write cap is 16 lines
				tx.Store(base+mem.Addr(i*mem.LineWords), 1)
			}
		})
		if !status.Capacity() {
			t.Errorf("status = %v, want capacity", status)
		}
	}}); err != nil {
		t.Fatal(err)
	}
	if c := u.Counters(); c.CapacityAborts != 1 {
		t.Fatalf("counters = %+v", c)
	}
	// All registrations must be cleaned up after the abort.
	for i := 0; i < 32; i++ {
		ln := mem.LineOf(base + mem.Addr(i*mem.LineWords))
		if m.LineWriter(ln) != -1 || !m.LineReaders(ln).Empty() {
			t.Fatalf("line %d not unregistered after abort", ln)
		}
	}
}

func TestReadCapacityAbort(t *testing.T) {
	eng, m, u := env(t, 1, 1)
	base := m.AllocLines(80)
	if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		status := u.Run(c, func(tx *Tx) {
			for i := 0; i < 80; i++ { // read cap is 64 lines
				tx.Load(base + mem.Addr(i*mem.LineWords))
			}
		})
		if !status.Capacity() {
			t.Errorf("status = %v, want capacity", status)
		}
	}}); err != nil {
		t.Fatal(err)
	}
}

// TestSiblingHalvesCapacity: with a hyperthread sibling inside a
// transaction, the effective write budget halves.
func TestSiblingHalvesCapacity(t *testing.T) {
	eng, m, u := env(t, 2, 1) // two hyperthreads on one physical core
	base := m.AllocLines(64)
	sibBase := m.AllocLines(4)
	var status0 Status
	bodies := []func(*machine.Ctx){
		func(c *machine.Ctx) {
			// 12 written lines: under the solo cap (16), over the
			// shared cap (8).
			status0 = u.Run(c, func(tx *Tx) {
				for i := 0; i < 12; i++ {
					tx.Store(base+mem.Addr(i*mem.LineWords), 1)
					tx.Work(20)
				}
			})
		},
		func(c *machine.Ctx) {
			// Sibling stays inside a transaction the whole time.
			u.Run(c, func(tx *Tx) {
				for i := 0; i < 3; i++ {
					tx.Store(sibBase+mem.Addr(i), 1)
					tx.Work(120)
				}
			})
		},
	}
	if _, err := eng.Run(bodies); err != nil {
		t.Fatal(err)
	}
	if !status0.Capacity() {
		t.Fatalf("status0 = %v, want capacity (shared L1 must halve the budget)", status0)
	}
}

// TestConflictRequesterWins: a second writer dooms the first; the doomed
// transaction aborts with a conflict status at its next step.
func TestConflictRequesterWins(t *testing.T) {
	eng, m, u := env(t, 2, 2)
	a := m.AllocLines(1)
	var status0, status1 Status
	bodies := []func(*machine.Ctx){
		func(c *machine.Ctx) {
			status0 = u.Run(c, func(tx *Tx) {
				tx.Store(a, 1) // registers first (thread 0 starts first)
				tx.Work(500)   // long vulnerable window
			})
		},
		func(c *machine.Ctx) {
			c.Tick(100) // start later
			status1 = u.Run(c, func(tx *Tx) {
				tx.Store(a, 2) // dooms thread 0 (requester wins)
			})
		},
	}
	if _, err := eng.Run(bodies); err != nil {
		t.Fatal(err)
	}
	if !status0.Conflict() {
		t.Fatalf("status0 = %v, want conflict", status0)
	}
	if status1 != 0 {
		t.Fatalf("status1 = %v, want commit", status1)
	}
	if m.Peek(a) != 2 {
		t.Fatalf("memory = %d, want the winner's value 2", m.Peek(a))
	}
}

// TestReadersDoNotConflict: concurrent readers of one line all commit.
func TestReadersDoNotConflict(t *testing.T) {
	eng, m, u := env(t, 4, 4)
	a := m.AllocLines(1)
	m.Poke(a, 77)
	statuses := make([]Status, 4)
	bodies := make([]func(*machine.Ctx), 4)
	for i := range bodies {
		idx := i
		bodies[i] = func(c *machine.Ctx) {
			statuses[idx] = u.Run(c, func(tx *Tx) {
				if tx.Load(a) != 77 {
					t.Errorf("reader saw wrong value")
				}
				tx.Work(100)
			})
		}
	}
	if _, err := eng.Run(bodies); err != nil {
		t.Fatal(err)
	}
	for i, s := range statuses {
		if s != 0 {
			t.Fatalf("reader %d aborted: %v", i, s)
		}
	}
}

func TestNestedTransactionPanics(t *testing.T) {
	eng, _, u := env(t, 1, 1)
	_, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		u.Run(c, func(tx *Tx) {
			u.Run(c, func(tx2 *Tx) {})
		})
	}})
	if err == nil {
		t.Fatalf("nested transaction did not panic")
	}
}

func TestBodyPanicPropagates(t *testing.T) {
	eng, _, u := env(t, 1, 1)
	_, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		u.Run(c, func(tx *Tx) { panic("application bug") })
	}})
	if err == nil {
		t.Fatalf("application panic swallowed by the HTM")
	}
}

func TestSpuriousAborts(t *testing.T) {
	cfg := machine.Config{Topo: topology.Flat(1), Seed: 3, Cost: machine.DefaultCostModel()}
	eng, _ := machine.New(cfg)
	m := mem.New(1 << 12)
	u := New(m, cfg, Config{ReadSetLines: 64, WriteSetLines: 16, SpuriousProb: 0.05})
	a := m.AllocLines(1)
	sawSpurious := false
	eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		for i := 0; i < 200; i++ {
			st := u.Run(c, func(tx *Tx) {
				for j := 0; j < 10; j++ {
					tx.Load(a)
				}
			})
			if st&BitSpurious != 0 {
				sawSpurious = true
			}
		}
	}})
	if !sawSpurious {
		t.Fatalf("no spurious aborts at 5%% per access over 2000 accesses")
	}
}

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		0:                      "committed",
		BitConflict | BitRetry: "retry|conflict",
		BitCapacity:            "capacity",
		BitExplicit | 0x42<<24: "explicit(66)",
		BitSpurious:            "spurious",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Status(%#x).String() = %q, want %q", uint32(s), got, want)
		}
	}
}

// TestAbortRollsBackEverything: after an abort no partial state is
// visible and a retry sees the pre-transaction values.
func TestAbortRollsBackEverything(t *testing.T) {
	eng, m, u := env(t, 1, 1)
	a := m.AllocLines(1)
	b := m.AllocLines(1)
	m.Poke(a, 10)
	m.Poke(b, 20)
	if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		u.Run(c, func(tx *Tx) {
			tx.Store(a, 11)
			tx.Store(b, 21)
			tx.Abort(1)
		})
		st := u.Run(c, func(tx *Tx) {
			if tx.Load(a) != 10 || tx.Load(b) != 20 {
				t.Errorf("retry saw partial state: %d %d", tx.Load(a), tx.Load(b))
			}
		})
		if st != 0 {
			t.Errorf("clean retry aborted: %v", st)
		}
	}}); err != nil {
		t.Fatal(err)
	}
}

// TestActiveTracking: Unit.Active reflects in-flight transactions.
func TestActiveTracking(t *testing.T) {
	eng, m, u := env(t, 1, 1)
	a := m.AllocLines(1)
	if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		if u.Active(0) {
			t.Errorf("active before begin")
		}
		u.Run(c, func(tx *Tx) {
			tx.Load(a)
			if !u.Active(0) {
				t.Errorf("not active inside transaction")
			}
		})
		if u.Active(0) {
			t.Errorf("still active after commit")
		}
	}}); err != nil {
		t.Fatal(err)
	}
}

// TestFalseSharing: two threads writing different words of the SAME cache
// line conflict; different lines do not.
func TestFalseSharing(t *testing.T) {
	eng, m, u := env(t, 2, 2)
	line := m.AllocLines(1)
	sep := m.AllocLines(2)
	run := func(a0, a1 mem.Addr) (Status, Status) {
		var s0, s1 Status
		eng.Run([]func(*machine.Ctx){
			func(c *machine.Ctx) {
				s0 = u.Run(c, func(tx *Tx) {
					tx.Store(a0, 1)
					tx.Work(300)
				})
			},
			func(c *machine.Ctx) {
				c.Tick(50)
				s1 = u.Run(c, func(tx *Tx) {
					tx.Store(a1, 2)
					tx.Work(10)
				})
			},
		})
		return s0, s1
	}
	s0, s1 := run(line, line+3) // same line, different words
	if !s0.Conflict() && !s1.Conflict() {
		t.Fatalf("false sharing not detected: %v %v", s0, s1)
	}
	s0, s1 = run(sep, sep+mem.LineWords) // different lines
	if s0 != 0 || s1 != 0 {
		t.Fatalf("independent lines conflicted: %v %v", s0, s1)
	}
}

// TestFourWaySMTQuartersCapacity: with 4 hyperthreads per core all
// transactional, the per-thread budget drops to a quarter.
func TestFourWaySMTQuartersCapacity(t *testing.T) {
	eng, m, u := env(t, 4, 1) // 4 hardware threads on one physical core
	bases := make([]mem.Addr, 4)
	for i := range bases {
		bases[i] = m.AllocLines(8)
	}
	statuses := make([]Status, 4)
	bodies := make([]func(*machine.Ctx), 4)
	for i := range bodies {
		idx := i
		bodies[i] = func(c *machine.Ctx) {
			statuses[idx] = u.Run(c, func(tx *Tx) {
				// 6 written lines: fine solo (cap 16), fine at 2-way
				// (8), over budget at 4-way SMT (4).
				for l := 0; l < 6; l++ {
					tx.Store(bases[idx]+mem.Addr(l*mem.LineWords), 1)
					tx.Work(50)
				}
				tx.Work(200)
			})
		}
	}
	if _, err := eng.Run(bodies); err != nil {
		t.Fatal(err)
	}
	sawCapacity := false
	for _, s := range statuses {
		if s.Capacity() {
			sawCapacity = true
		}
	}
	if !sawCapacity {
		t.Fatalf("no capacity aborts with 4 transactional siblings: %v", statuses)
	}
}

// TestCoreOfWideMachine pins the thread-to-core table on machines with
// more than 127 cores. The table used to be []int8, which silently
// wrapped negative past core 127 and indexed coreActive out of range;
// the guard would have caught that regression the day the topology
// ceiling rose past one word.
func TestCoreOfWideMachine(t *testing.T) {
	shapes := []topology.Topology{
		topology.Flat(256),       // 256 cores, no SMT: coreOf is identity
		topology.Multi(4, 64, 1), // 256 cores across sockets
		topology.Multi(2, 64, 2), // 256 threads on 128 cores, 2-way SMT
		topology.Multi(4, 16, 2), // the scaling exhibit's 128-thread shape
	}
	for _, topo := range shapes {
		cfg := machine.Config{Topo: topo, Seed: 1, Cost: machine.DefaultCostModel()}
		u := New(mem.New(1<<8), cfg, Config{ReadSetLines: 64, WriteSetLines: 16})
		for hw := 0; hw < topo.Threads(); hw++ {
			if got, want := u.coreOf[hw], int32(topo.CoreOf(hw)); got != want {
				t.Fatalf("%v: coreOf[%d] = %d, want %d", topo, hw, got, want)
			}
			if u.coreOf[hw] < 0 || int(u.coreOf[hw]) >= len(u.coreActive) {
				t.Fatalf("%v: coreOf[%d] = %d outside coreActive[0:%d]",
					topo, hw, u.coreOf[hw], len(u.coreActive))
			}
		}
	}
}

// TestHighThreadSiblingCapacity reruns the shared-L1 capacity scenario
// on hyperthread siblings whose ids live past the old 64-thread word:
// on a 2s64c2t machine, threads 10 and 138 share physical core 10.
func TestHighThreadSiblingCapacity(t *testing.T) {
	topo := topology.Multi(2, 64, 2)
	cfg := machine.Config{Topo: topo, Seed: 42, Cost: machine.DefaultCostModel()}
	eng, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(1 << 12)
	u := New(m, cfg, Config{ReadSetLines: 64, WriteSetLines: 16, SpuriousProb: 0})
	lo, hi := 10, 10+topo.Cores() // sibling pair on core 10
	if topo.CoreOf(lo) != topo.CoreOf(hi) || hi < 128 {
		t.Fatalf("test shape broken: %d and %d on cores %d and %d",
			lo, hi, topo.CoreOf(lo), topo.CoreOf(hi))
	}
	base := m.AllocLines(64)
	sibBase := m.AllocLines(4)
	var statusLo Status
	bodies := make([]func(*machine.Ctx), topo.Threads())
	bodies[lo] = func(c *machine.Ctx) {
		// 12 written lines: under the solo cap (16), over the shared cap (8).
		statusLo = u.Run(c, func(tx *Tx) {
			for i := 0; i < 12; i++ {
				tx.Store(base+mem.Addr(i*mem.LineWords), 1)
				tx.Work(20)
			}
		})
	}
	bodies[hi] = func(c *machine.Ctx) {
		u.Run(c, func(tx *Tx) {
			for i := 0; i < 3; i++ {
				tx.Store(sibBase+mem.Addr(i), 1)
				tx.Work(120)
			}
		})
	}
	if _, err := eng.Run(bodies); err != nil {
		t.Fatal(err)
	}
	if !statusLo.Capacity() {
		t.Fatalf("status = %v, want capacity (siblings past id 127 must share the L1 budget)", statusLo)
	}
}

// TestConflictAcrossWordBoundary pins requester-wins conflict detection
// between threads in different words of the reader bitset (ids 3 and
// 200 on a 256-thread machine).
func TestConflictAcrossWordBoundary(t *testing.T) {
	topo := topology.Flat(256)
	cfg := machine.Config{Topo: topo, Seed: 42, Cost: machine.DefaultCostModel()}
	eng, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(1 << 12)
	u := New(m, cfg, Config{ReadSetLines: 64, WriteSetLines: 16, SpuriousProb: 0})
	a := m.AllocLines(1)
	var early, late Status
	bodies := make([]func(*machine.Ctx), topo.Threads())
	bodies[200] = func(c *machine.Ctx) {
		early = u.Run(c, func(tx *Tx) {
			tx.Store(a, 1) // registers first
			tx.Work(500)   // long vulnerable window
		})
	}
	bodies[3] = func(c *machine.Ctx) {
		c.Tick(100) // start later
		late = u.Run(c, func(tx *Tx) {
			tx.Store(a, 2) // dooms thread 200 (requester wins)
		})
	}
	if _, err := eng.Run(bodies); err != nil {
		t.Fatal(err)
	}
	if !early.Conflict() {
		t.Fatalf("early status = %v, want conflict", early)
	}
	if late != 0 {
		t.Fatalf("late status = %v, want commit", late)
	}
	if m.Peek(a) != 2 {
		t.Fatalf("memory = %d, want the winner's value 2", m.Peek(a))
	}
}
