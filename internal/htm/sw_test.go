package htm

import (
	"testing"

	"seer/internal/machine"
	"seer/internal/mem"
	"seer/internal/topology"
)

// TestSWCommitZeroAllocs is the software-commit-path analogue of
// TestCommittedTxnZeroAllocs: a committed STM transaction reuses the
// same per-thread write buffer and line sets as the hardware path, so
// at steady state it must not touch the heap either.
func TestSWCommitZeroAllocs(t *testing.T) {
	cfg := machine.Config{Topo: topology.Flat(1), Seed: 1, Cost: machine.DefaultCostModel()}
	eng, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(1 << 12)
	u := New(m, cfg, Config{ReadSetLines: 64, WriteSetLines: 16, SpuriousProb: 0})
	base := m.AllocLines(4)

	body := func(tx *Tx) {
		for l := 0; l < 4; l++ {
			a := base + mem.Addr(l*mem.LineWords)
			tx.Store(a, tx.Load(a)+1)
		}
		tx.Work(8)
	}
	if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		if st := u.RunSW(c, body); st != 0 {
			t.Errorf("warm-up attempt aborted: %v", st)
		}
		allocs := testing.AllocsPerRun(100, func() {
			if st := u.RunSW(c, body); st != 0 {
				t.Errorf("measured attempt aborted: %v", st)
			}
		})
		if allocs != 0 {
			t.Errorf("committed software transaction allocates %.1f times per run, want 0", allocs)
		}
	}}); err != nil {
		t.Fatal(err)
	}
	if c := u.SWCounters(); c.Commits < 101 {
		t.Errorf("software commits = %d, want >= 101", c.Commits)
	}
	if c := u.Counters(); c.Commits != 0 {
		t.Errorf("hardware commits = %d, want 0 (RunSW must not count as HW)", c.Commits)
	}
}

// TestSWCommitPathMatchesHW is the differential check of the software
// commit protocol: the same deterministic schedule of read-modify-write
// transactions, run once through the hardware path and once through the
// software path on identically initialized memories, must produce
// byte-identical final memory states.
func TestSWCommitPathMatchesHW(t *testing.T) {
	const (
		lines = 8
		iters = 50
		words = 1 << 10
	)
	run := func(sw bool) *mem.Memory {
		cfg := machine.Config{Topo: topology.Flat(2), Seed: 7, Cost: machine.DefaultCostModel()}
		eng, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m := mem.New(words)
		u := New(m, cfg, Config{ReadSetLines: 64, WriteSetLines: 64, SpuriousProb: 0})
		regions := [2]mem.Addr{m.AllocLines(lines), m.AllocLines(lines)}
		for r := 0; r < 2; r++ {
			for l := 0; l < lines; l++ {
				m.Poke(regions[r]+mem.Addr(l*mem.LineWords), uint64(r*100+l))
			}
		}
		bodies := make([]func(*machine.Ctx), 2)
		for id := 0; id < 2; id++ {
			base := regions[id]
			bodies[id] = func(c *machine.Ctx) {
				body := func(tx *Tx) {
					// A chain of dependent read-modify-writes: each line's
					// new value folds in the previous line's, so publish
					// order and read-your-own-writes behavior both matter.
					var carry uint64
					for l := 0; l < lines; l++ {
						a := base + mem.Addr(l*mem.LineWords)
						v := tx.Load(a) + carry + 1
						tx.Store(a, v)
						carry = v % 7
					}
				}
				for n := 0; n < iters; n++ {
					var st Status
					if sw {
						st = u.RunSW(c, body)
					} else {
						st = u.Run(c, body)
					}
					if st != 0 {
						t.Errorf("attempt aborted: %v", st)
					}
					c.Tick(5)
				}
			}
		}
		if _, err := eng.Run(bodies); err != nil {
			t.Fatal(err)
		}
		return m
	}
	hw, sw := run(false), run(true)
	for a := mem.Addr(0); a < words; a++ {
		if hv, sv := hw.Peek(a), sw.Peek(a); hv != sv {
			t.Fatalf("word %d: HW path %d, SW path %d", a, hv, sv)
		}
	}
}

// TestSWNoCapacityLimit: the software path has no L1 footprint model, so
// a write set far beyond the hardware budget commits in SW mode while
// the same body capacity-aborts in HW mode.
func TestSWNoCapacityLimit(t *testing.T) {
	const lines = 96
	cfg := machine.Config{Topo: topology.Flat(1), Seed: 1, Cost: machine.DefaultCostModel()}
	eng, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(1 << 13)
	u := New(m, cfg, Config{ReadSetLines: 512, WriteSetLines: 64, SpuriousProb: 0})
	base := m.AllocLines(lines)

	body := func(tx *Tx) {
		for l := 0; l < lines; l++ {
			a := base + mem.Addr(l*mem.LineWords)
			tx.Store(a, tx.Load(a)+1)
		}
	}
	if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		if st := u.Run(c, body); !st.Capacity() {
			t.Errorf("hardware status = %v, want capacity abort", st)
		}
		if st := u.RunSW(c, body); st != 0 {
			t.Errorf("software status = %v, want commit", st)
		}
	}}); err != nil {
		t.Fatal(err)
	}
	for l := 0; l < lines; l++ {
		if got := m.Peek(base + mem.Addr(l*mem.LineWords)); got != 1 {
			t.Fatalf("line %d = %d, want exactly 1 (HW attempt must not have published)", l, got)
		}
	}
}

// TestSWConflictDetection: software transactions register in the same
// conflict registry as hardware ones, so a cross-mode conflict dooms the
// software reader exactly like a hardware reader (strong isolation holds
// across modes).
func TestSWConflictDetection(t *testing.T) {
	cfg := machine.Config{Topo: topology.Flat(2), Seed: 1, Cost: machine.DefaultCostModel()}
	eng, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(1 << 12)
	u := New(m, cfg, Config{ReadSetLines: 64, WriteSetLines: 16, SpuriousProb: 0})
	base := m.AllocLines(1)
	ln := mem.LineOf(base)

	body := func(tx *Tx) {
		tx.Store(base, 1)
		// A write by hardware thread 1 reaches the registry and dooms
		// this software writer (requester wins); the next step unwinds.
		u.DoomWriter(0, 1, ln)
		tx.Work(8)
	}
	bodies := make([]func(*machine.Ctx), 2)
	bodies[1] = func(c *machine.Ctx) {} // exists only as the doom requester id
	bodies[0] = func(c *machine.Ctx) {
		if st := u.RunSW(c, body); !st.Conflict() {
			t.Errorf("software status = %v, want conflict abort", st)
		}
	}
	if _, err := eng.Run(bodies); err != nil {
		t.Fatal(err)
	}
	if c := u.SWCounters(); c.ConflictAborts != 1 {
		t.Errorf("software conflict aborts = %d, want 1", c.ConflictAborts)
	}
	if got := m.Peek(base); got != 0 {
		t.Fatalf("aborted software store published: word = %d, want 0", got)
	}
}
