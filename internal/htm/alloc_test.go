package htm

import (
	"testing"

	"seer/internal/machine"
	"seer/internal/mem"
	"seer/internal/topology"
)

// TestCommittedTxnZeroAllocs is the regression guard for the allocation-
// free fast path: a committed, uncontended transaction must not touch the
// heap at all. The measurement runs inside the engine body (AllocsPerRun
// suspends and resumes the coroutine freely), after one warm-up attempt so
// the thread's reusable buffers are at steady-state capacity.
func TestCommittedTxnZeroAllocs(t *testing.T) {
	cfg := machine.Config{Topo: topology.Flat(1), Seed: 1, Cost: machine.DefaultCostModel()}
	eng, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(1 << 12)
	u := New(m, cfg, Config{ReadSetLines: 64, WriteSetLines: 16, SpuriousProb: 0})
	base := m.AllocLines(4)

	body := func(tx *Tx) {
		for l := 0; l < 4; l++ {
			a := base + mem.Addr(l*mem.LineWords)
			tx.Store(a, tx.Load(a)+1)
		}
		tx.Work(8)
	}
	if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		if st := u.Run(c, body); st != 0 {
			t.Errorf("warm-up attempt aborted: %v", st)
		}
		allocs := testing.AllocsPerRun(100, func() {
			if st := u.Run(c, body); st != 0 {
				t.Errorf("measured attempt aborted: %v", st)
			}
		})
		if allocs != 0 {
			t.Errorf("committed uncontended transaction allocates %.1f times per run, want 0", allocs)
		}
	}}); err != nil {
		t.Fatal(err)
	}
}

// TestWriteBufReuseAcrossAttempts: the write buffer grows once for a large
// write set, then later attempts — including larger-footprint retries of
// the same shape — reuse the grown table without allocating.
func TestWriteBufReuseAcrossAttempts(t *testing.T) {
	cfg := machine.Config{Topo: topology.Flat(1), Seed: 1, Cost: machine.DefaultCostModel()}
	eng, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(1 << 16)
	u := New(m, cfg, Config{ReadSetLines: 4096, WriteSetLines: 512, SpuriousProb: 0})
	base := m.AllocLines(64)

	// 256 distinct words across 32 lines: well past wbInitSlots, so the
	// first attempt grows the table; the rest must not.
	wide := func(tx *Tx) {
		for l := 0; l < 32; l++ {
			for w := 0; w < 8; w++ {
				tx.Store(base+mem.Addr(l*mem.LineWords+w), uint64(l*8+w))
			}
		}
	}
	if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		if st := u.Run(c, wide); st != 0 {
			t.Errorf("warm-up attempt aborted: %v", st)
		}
		allocs := testing.AllocsPerRun(20, func() {
			if st := u.Run(c, wide); st != 0 {
				t.Errorf("measured attempt aborted: %v", st)
			}
		})
		if allocs != 0 {
			t.Errorf("steady-state wide transaction allocates %.1f times per run, want 0", allocs)
		}
	}}); err != nil {
		t.Fatal(err)
	}
	// The committed values must all have landed.
	for l := 0; l < 32; l++ {
		for w := 0; w < 8; w++ {
			if got := m.Peek(base + mem.Addr(l*mem.LineWords+w)); got != uint64(l*8+w) {
				t.Fatalf("word (%d,%d) = %d, want %d", l, w, got, l*8+w)
			}
		}
	}
}

// TestCommittedTxnZeroAllocs128Threads reruns the committed-transaction
// guard on a 4-socket, 128-thread machine with the transaction on the
// highest thread id: reader-set words, core tables and counters must
// stay allocation-free past the old 64-thread ceiling.
func TestCommittedTxnZeroAllocs128Threads(t *testing.T) {
	topo := topology.Multi(4, 16, 2)
	cfg := machine.Config{Topo: topo, Seed: 1, Cost: machine.DefaultCostModel()}
	eng, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(1 << 12)
	u := New(m, cfg, Config{ReadSetLines: 64, WriteSetLines: 16, SpuriousProb: 0})
	base := m.AllocLines(4)

	body := func(tx *Tx) {
		for l := 0; l < 4; l++ {
			a := base + mem.Addr(l*mem.LineWords)
			tx.Store(a, tx.Load(a)+1)
		}
		tx.Work(8)
	}
	bodies := make([]func(*machine.Ctx), topo.Threads())
	bodies[topo.Threads()-1] = func(c *machine.Ctx) {
		if st := u.Run(c, body); st != 0 {
			t.Errorf("warm-up attempt aborted: %v", st)
		}
		allocs := testing.AllocsPerRun(100, func() {
			if st := u.Run(c, body); st != 0 {
				t.Errorf("measured attempt aborted: %v", st)
			}
		})
		if allocs != 0 {
			t.Errorf("128-thread committed transaction allocates %.1f times per run, want 0", allocs)
		}
	}
	if _, err := eng.Run(bodies); err != nil {
		t.Fatal(err)
	}
}

// TestExplicitAbortZeroAllocs guards the abort unwind path: tx.Abort
// panics with the thread's pre-boxed signal and Run recovers it, so an
// explicitly aborted transaction must be as allocation-free as a commit.
func TestExplicitAbortZeroAllocs(t *testing.T) {
	cfg := machine.Config{Topo: topology.Flat(1), Seed: 1, Cost: machine.DefaultCostModel()}
	eng, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(1 << 12)
	u := New(m, cfg, Config{ReadSetLines: 64, WriteSetLines: 16, SpuriousProb: 0})
	base := m.AllocLines(2)

	body := func(tx *Tx) {
		tx.Store(base, tx.Load(base)+1)
		tx.Work(4)
		tx.Abort(0x42)
	}
	if _, err := eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		if st := u.Run(c, body); !st.Explicit() {
			t.Errorf("warm-up status = %v, want explicit abort", st)
		}
		allocs := testing.AllocsPerRun(100, func() {
			if st := u.Run(c, body); !st.Explicit() {
				t.Errorf("measured status = %v, want explicit abort", st)
			}
		})
		if allocs != 0 {
			t.Errorf("explicit abort allocates %.1f times per run, want 0", allocs)
		}
	}}); err != nil {
		t.Fatal(err)
	}
	if c := u.Counters(); c.ExplicitAborts < 100 {
		t.Errorf("explicit aborts = %d, want >= 100", c.ExplicitAborts)
	}
}

// TestConflictAbortZeroAllocs guards the doomed-transaction unwind with
// no doom hook installed (tracing disabled): the doom is injected through
// the same Doomer entry point the memory's conflict registry uses, the
// victim observes it at its next step and aborts — all without touching
// the heap.
func TestConflictAbortZeroAllocs(t *testing.T) {
	cfg := machine.Config{Topo: topology.Flat(2), Seed: 1, Cost: machine.DefaultCostModel()}
	eng, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(1 << 12)
	u := New(m, cfg, Config{ReadSetLines: 64, WriteSetLines: 16, SpuriousProb: 0})
	base := m.AllocLines(1)
	ln := mem.LineOf(base)

	body := func(tx *Tx) {
		tx.Store(base, 1)
		// A store by hardware thread 1 reaches the registry and dooms this
		// writer (requester wins); the next step notices and unwinds.
		u.DoomWriter(0, 1, ln)
		tx.Work(8)
	}
	bodies := make([]func(*machine.Ctx), 2)
	bodies[1] = func(c *machine.Ctx) {} // thread 1 exists only as the doom requester id
	bodies[0] = func(c *machine.Ctx) {
		if st := u.Run(c, body); !st.Conflict() {
			t.Errorf("warm-up status = %v, want conflict", st)
		}
		allocs := testing.AllocsPerRun(100, func() {
			if st := u.Run(c, body); !st.Conflict() {
				t.Errorf("measured status = %v, want conflict", st)
			}
		})
		if allocs != 0 {
			t.Errorf("conflict abort allocates %.1f times per run, want 0", allocs)
		}
	}
	if _, err := eng.Run(bodies); err != nil {
		t.Fatal(err)
	}
	if c := u.Counters(); c.ConflictAborts < 100 {
		t.Errorf("conflict aborts = %d, want >= 100", c.ConflictAborts)
	}
}
