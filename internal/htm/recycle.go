package htm

import (
	"seer/internal/machine"
	"seer/internal/mem"
)

// Buffers holds a Unit's per-thread state between replica lifetimes: the
// transaction contexts (whose registered-line lists and epoch-stamped
// write buffers are the unit's only growing allocations), the event
// counters and the topology tables. Paired with mem.Buffers it lets the
// harness build one simulator replica per grid worker instead of one per
// cell (see seer.Recycler). The zero value is ready: the first
// NewRecycled allocates.
type Buffers struct {
	txns           []txnState
	cnt            []Counters
	swCnt          []Counters
	coreActive     []int16
	coreOf         []int32
	lastConflictor []int16
}

// NewRecycled creates an HTM unit like New, drawing per-thread state
// from buf when its capacity suffices and allocating otherwise. Recycled
// transaction contexts keep their line-list and write-buffer backing
// arrays (the write buffer's epoch machinery makes stale entries
// unobservable) but are otherwise reset to power-on state, so a recycled
// unit is behaviorally indistinguishable from a fresh one. A nil buf is
// exactly New.
func NewRecycled(m *mem.Memory, mach machine.Config, cfg Config, buf *Buffers) *Unit {
	hw := mach.HWThreads()
	cores := mach.PhysCores()
	u := &Unit{mem: m, mach: mach, cfg: cfg}
	if buf != nil && cap(buf.txns) >= hw && cap(buf.cnt) >= hw &&
		cap(buf.swCnt) >= hw &&
		cap(buf.coreActive) >= cores && cap(buf.coreOf) >= hw &&
		cap(buf.lastConflictor) >= hw {
		u.txns = buf.txns[:hw]
		u.cnt = buf.cnt[:hw]
		u.swCnt = buf.swCnt[:hw]
		u.coreActive = buf.coreActive[:cores]
		u.coreOf = buf.coreOf[:hw]
		u.lastConflictor = buf.lastConflictor[:hw]
		buf.txns, buf.cnt, buf.swCnt = nil, nil, nil
		buf.coreActive, buf.coreOf, buf.lastConflictor = nil, nil, nil
		for i := range u.txns {
			u.txns[i].recycle()
			u.cnt[i] = Counters{}
			u.swCnt[i] = Counters{}
		}
		clear(u.coreActive)
	} else {
		u.txns = make([]txnState, hw)
		u.cnt = make([]Counters, hw)
		u.swCnt = make([]Counters, hw)
		u.coreActive = make([]int16, cores)
		u.coreOf = make([]int32, hw)
		u.lastConflictor = make([]int16, hw)
	}
	for i := 0; i < hw; i++ {
		u.coreOf[i] = int32(mach.PhysCore(i))
		u.lastConflictor[i] = -1
	}
	m.SetDoomer(u)
	return u
}

// recycle resets a transaction context to power-on state while keeping
// its reusable backing arrays: the registered-line list is truncated in
// place and the write buffer's table survives with its epoch counter
// (begin() invalidates all previous entries in O(1)). Everything else —
// flags, counters, the per-attempt Tx handle and the pre-boxed abort
// signal — is cleared, including the stale simulator pointers of the
// previous replica.
func (t *txnState) recycle() {
	lines := t.lines[:0]
	wb := t.wb
	wb.order = wb.order[:0]
	*t = txnState{lines: lines, wb: wb}
}

// Release returns the unit's per-thread state to buf for the next
// replica built on it. The Unit must not be used afterwards.
func (u *Unit) Release(buf *Buffers) {
	if cap(u.txns) > cap(buf.txns) {
		buf.txns = u.txns
		buf.cnt = u.cnt
		buf.swCnt = u.swCnt
		buf.coreActive = u.coreActive
		buf.coreOf = u.coreOf
		buf.lastConflictor = u.lastConflictor
	}
	u.txns, u.cnt, u.swCnt = nil, nil, nil
	u.coreActive, u.coreOf, u.lastConflictor = nil, nil, nil
}
