package topology

import (
	"errors"
	"testing"
)

// FuzzParse: every accepted spec must round-trip through String() to an
// identical Topology and satisfy Validate; every rejected spec must
// fail with one of the package's named sentinel errors, never a bare
// or foreign error.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"1s4c2t", "2s8c2t", "4s16c2t", "1s1c1t", "4s64c1t",
		"", "s", "0s1c1t", "1s01c1t", "9999999999s1c1t", "1s4c2t2s",
		"-1s4c2t", "1s4c2tXYZ", "1 s4c2t",
	} {
		f.Add(seed)
	}
	sentinels := []error{ErrSockets, ErrCores, ErrSMT, ErrTooManyThreads, ErrSyntax}
	f.Fuzz(func(t *testing.T, spec string) {
		topo, err := Parse(spec)
		if err != nil {
			named := false
			for _, s := range sentinels {
				if errors.Is(err, s) {
					named = true
					break
				}
			}
			if !named {
				t.Fatalf("Parse(%q) error %v matches no named sentinel", spec, err)
			}
			return
		}
		if verr := topo.Validate(); verr != nil {
			t.Fatalf("Parse(%q) accepted invalid topology %+v: %v", spec, topo, verr)
		}
		round := topo.String()
		if round != spec {
			t.Fatalf("Parse(%q).String() = %q, not canonical", spec, round)
		}
		back, err := Parse(round)
		if err != nil || back != topo {
			t.Fatalf("round-trip Parse(%q) = %+v, %v; want %+v", round, back, err, topo)
		}
	})
}
