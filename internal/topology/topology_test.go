package topology

import (
	"errors"
	"testing"
)

func TestConstructors(t *testing.T) {
	cases := []struct {
		name           string
		topo           Topology
		threads, cores int
		str            string
	}{
		{"flat4", Flat(4), 4, 4, "1s4c1t"},
		{"smt2x4", SMT2(4), 8, 4, "1s4c2t"},
		{"2s8c2t", Multi(2, 8, 2), 32, 16, "2s8c2t"},
		{"4s16c2t", Multi(4, 16, 2), 128, 64, "4s16c2t"},
		{"4s64c1t", Multi(4, 64, 1), 256, 256, "4s64c1t"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.topo.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if got := c.topo.Threads(); got != c.threads {
				t.Errorf("Threads = %d, want %d", got, c.threads)
			}
			if got := c.topo.Cores(); got != c.cores {
				t.Errorf("Cores = %d, want %d", got, c.cores)
			}
			if got := c.topo.String(); got != c.str {
				t.Errorf("String = %q, want %q", got, c.str)
			}
		})
	}
}

func TestFromFlat(t *testing.T) {
	topo, err := FromFlat(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if topo != SMT2(4) {
		t.Fatalf("FromFlat(8, 4) = %+v, want SMT2(4)", topo)
	}
	// The legacy hw % PhysCores mapping must be preserved exactly.
	for hw := 0; hw < 8; hw++ {
		if got := topo.CoreOf(hw); got != hw%4 {
			t.Errorf("CoreOf(%d) = %d, want %d", hw, got, hw%4)
		}
	}
	for _, bad := range []struct {
		hw, phys int
		want     error
	}{
		{8, 0, ErrCores},
		{8, -1, ErrCores},
		{6, 4, ErrUneven},
		{0, 4, ErrSMT},
		{-4, 4, ErrSMT},
		{512, 2, ErrTooManyThreads},
	} {
		if _, err := FromFlat(bad.hw, bad.phys); !errors.Is(err, bad.want) {
			t.Errorf("FromFlat(%d, %d) = %v, want %v", bad.hw, bad.phys, err, bad.want)
		}
	}
}

func TestValidateSentinels(t *testing.T) {
	for _, c := range []struct {
		topo Topology
		want error
	}{
		{Topology{}, ErrSockets},
		{Topology{Sockets: -1, CoresPerSocket: 4, ThreadsPerCore: 2}, ErrSockets},
		{Topology{Sockets: 1, CoresPerSocket: 0, ThreadsPerCore: 2}, ErrCores},
		{Topology{Sockets: 1, CoresPerSocket: 4, ThreadsPerCore: 0}, ErrSMT},
		{Topology{Sockets: 4, CoresPerSocket: 64, ThreadsPerCore: 2}, ErrTooManyThreads},
	} {
		if err := c.topo.Validate(); !errors.Is(err, c.want) {
			t.Errorf("Validate(%+v) = %v, want %v", c.topo, err, c.want)
		}
	}
}

// TestSiblingsPartition: over any valid shape, "shares a core" must
// partition the thread ids — every thread sees exactly ThreadsPerCore-1
// siblings, all on its own core, and siblinghood is symmetric.
func TestSiblingsPartition(t *testing.T) {
	shapes := []Topology{
		Flat(6),
		SMT2(4),
		Multi(1, 4, 4),  // 4-way SMT
		Multi(2, 8, 2),  // two sockets
		Multi(4, 16, 2), // the 128-thread scaling shape
		Multi(2, 2, 4),  // multi-socket 4-way SMT
	}
	for _, topo := range shapes {
		t.Run(topo.String(), func(t *testing.T) {
			n := topo.Threads()
			for hw := 0; hw < n; hw++ {
				sibs := topo.Siblings(hw)
				if len(sibs) != topo.ThreadsPerCore-1 {
					t.Fatalf("Siblings(%d) = %v, want %d entries", hw, sibs, topo.ThreadsPerCore-1)
				}
				for _, s := range sibs {
					if s == hw {
						t.Fatalf("Siblings(%d) contains itself", hw)
					}
					if topo.CoreOf(s) != topo.CoreOf(hw) {
						t.Fatalf("Siblings(%d) contains %d on core %d, want core %d",
							hw, s, topo.CoreOf(s), topo.CoreOf(hw))
					}
					// Symmetry: hw must appear among s's siblings.
					found := false
					for _, back := range topo.Siblings(s) {
						if back == hw {
							found = true
						}
					}
					if !found {
						t.Fatalf("sibling relation not symmetric between %d and %d", hw, s)
					}
				}
			}
		})
	}
}

// TestSocketOf: global core ids fill sockets in order and every socket
// gets the same number of threads.
func TestSocketOf(t *testing.T) {
	topo := Multi(4, 16, 2)
	perSocket := make([]int, topo.Sockets)
	for hw := 0; hw < topo.Threads(); hw++ {
		s := topo.SocketOf(hw)
		if s < 0 || s >= topo.Sockets {
			t.Fatalf("SocketOf(%d) = %d out of range", hw, s)
		}
		perSocket[s]++
		if want := topo.CoreOf(hw) / topo.CoresPerSocket; s != want {
			t.Fatalf("SocketOf(%d) = %d, want %d", hw, s, want)
		}
	}
	for s, n := range perSocket {
		if n != topo.Threads()/topo.Sockets {
			t.Fatalf("socket %d has %d threads, want %d", s, n, topo.Threads()/topo.Sockets)
		}
	}
}

func TestParse(t *testing.T) {
	for _, c := range []struct {
		spec string
		want Topology
	}{
		{"1s4c1t", Flat(4)},
		{"1s4c2t", SMT2(4)},
		{"2s8c2t", Multi(2, 8, 2)},
		{"4s16c2t", Multi(4, 16, 2)},
	} {
		got, err := Parse(c.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %+v, want %+v", c.spec, got, c.want)
		}
		if got.String() != c.spec {
			t.Errorf("Parse(%q).String() = %q", c.spec, got.String())
		}
	}
	for _, c := range []struct {
		spec string
		want error
	}{
		{"", ErrSyntax},
		{"2s8c", ErrSyntax},
		{"8c2t", ErrSyntax},
		{"2s8c2t ", ErrSyntax},
		{" 2s8c2t", ErrSyntax},
		{"2s8c2tx", ErrSyntax},
		{"s8c2t", ErrSyntax},
		{"2s08c2t", ErrSyntax},
		{"+2s8c2t", ErrSyntax},
		{"2.5s8c2t", ErrSyntax},
		{"0s8c2t", ErrSockets},
		{"1s0c2t", ErrCores},
		{"1s8c0t", ErrSMT},
		{"4s64c2t", ErrTooManyThreads},
	} {
		if _, err := Parse(c.spec); !errors.Is(err, c.want) {
			t.Errorf("Parse(%q) = %v, want %v", c.spec, err, c.want)
		}
	}
}

func TestSet(t *testing.T) {
	var s Set
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("zero Set not empty")
	}
	ids := []int{0, 1, 63, 64, 65, 127, 128, 200, 255}
	for _, id := range ids {
		s.Add(id)
	}
	if s.Count() != len(ids) {
		t.Fatalf("Count = %d, want %d", s.Count(), len(ids))
	}
	for _, id := range ids {
		if !s.Has(id) {
			t.Fatalf("Has(%d) = false after Add", id)
		}
	}
	if s.Has(2) || s.Has(66) || s.Has(129) {
		t.Fatal("Has reports non-members")
	}
	var got []int
	s.ForEach(func(id int) { got = append(got, id) })
	for i, id := range ids {
		if got[i] != id {
			t.Fatalf("ForEach order = %v, want %v", got, ids)
		}
	}
	// Value copies must be independent (doom paths depend on this).
	cp := s
	cp.Remove(64)
	if !s.Has(64) || cp.Has(64) {
		t.Fatal("Set copy not independent of original")
	}
	s.Remove(64)
	s.Remove(0)
	if s.Has(64) || s.Has(0) || s.Count() != len(ids)-2 {
		t.Fatal("Remove failed")
	}
	if !s.Only(65) == (s.Count() == 1) {
		t.Fatal("Only/Count disagree") // sanity; Only is false here
	}
	var one Set
	one.Add(255)
	if !one.Only(255) || one.Only(254) {
		t.Fatal("Only wrong on singleton")
	}
	s.Clear()
	if !s.Empty() {
		t.Fatal("Clear left members")
	}
}
