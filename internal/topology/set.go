package topology

import "math/bits"

// SetWords is the number of 64-bit words in a Set. It is sized by
// MaxThreads so a Set can hold any hardware thread id the machine
// ceiling admits.
const SetWords = MaxThreads / 64

// Set is a fixed-capacity value-type bitset over hardware thread ids
// [0, MaxThreads). It replaces the bare uint64 masks that imposed the
// old 64-thread ceiling. The words are exported so conflict-detection
// hot paths can iterate them with math/bits without a bounds-checked
// accessor per member; Set is a small array, so passing it by value
// copies it — which the doom paths rely on, since they mutate the
// registry entry they are iterating.
type Set struct {
	W [SetWords]uint64
}

// Add inserts id into the set.
func (s *Set) Add(id int) { s.W[uint(id)>>6] |= 1 << (uint(id) & 63) }

// Remove deletes id from the set.
func (s *Set) Remove(id int) { s.W[uint(id)>>6] &^= 1 << (uint(id) & 63) }

// Has reports whether id is in the set.
func (s Set) Has(id int) bool { return s.W[uint(id)>>6]&(1<<(uint(id)&63)) != 0 }

// Empty reports whether the set has no members.
func (s Set) Empty() bool { return s.W == [SetWords]uint64{} }

// Clear removes all members.
func (s *Set) Clear() { s.W = [SetWords]uint64{} }

// Count returns the number of members.
func (s Set) Count() int {
	n := 0
	for _, w := range s.W {
		n += bits.OnesCount64(w)
	}
	return n
}

// Only reports whether id is the set's sole member.
func (s Set) Only(id int) bool {
	var one Set
	one.Add(id)
	return s.W == one.W
}

// ForEach calls fn for every member in ascending id order.
func (s Set) ForEach(fn func(id int)) {
	for wi, w := range s.W {
		base := wi << 6
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}
