// Package topology models the shape of the simulated machine as three
// nested levels: sockets, physical cores per socket, and SMT (hyper-)
// threads per core. Every layer of the simulator that used to reason
// about a flat pair of ints (HWThreads, PhysCores) consumes a Topology
// instead, which is what lets the machine grow past one socket and past
// the old 64-thread uint64-bitmask ceiling.
//
// Hardware thread ids enumerate the machine the way Linux enumerates
// Intel processors: thread t lives on global core t % Cores(), so ids
// 0..Cores()-1 are the first SMT thread of each core and ids
// Cores()..2·Cores()-1 are their siblings. Global core ids fill sockets
// in order: core c lives on socket c / CoresPerSocket. Both mappings are
// pure arithmetic — no tables — so they are cheap enough for conflict-
// detection hot paths.
package topology

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// MaxThreads is the machine-wide hardware-thread ceiling. Occupancy
// masks, reader sets and seen-marks throughout the runtime are
// fixed-size multi-word bitsets dimensioned by this constant.
const MaxThreads = 256

// Topology describes a machine as sockets × cores × SMT threads. The
// zero value is not a valid topology (IsZero reports it); use the
// constructors or Parse, or fill the fields and call Validate.
type Topology struct {
	Sockets        int // physical packages
	CoresPerSocket int // physical cores per socket
	ThreadsPerCore int // SMT ways (1 = no hyperthreading)
}

// Flat returns a single-socket machine with one hardware thread per
// core (no SMT).
func Flat(cores int) Topology {
	return Topology{Sockets: 1, CoresPerSocket: cores, ThreadsPerCore: 1}
}

// SMT2 returns a single-socket machine with 2-way SMT — the shape of
// the paper's 4-core/8-thread Haswell testbed is SMT2(4).
func SMT2(cores int) Topology {
	return Topology{Sockets: 1, CoresPerSocket: cores, ThreadsPerCore: 2}
}

// Multi returns a multi-socket machine.
func Multi(sockets, coresPerSocket, threadsPerCore int) Topology {
	return Topology{Sockets: sockets, CoresPerSocket: coresPerSocket, ThreadsPerCore: threadsPerCore}
}

// FromFlat builds a single-socket topology from the legacy
// (hwThreads, physCores) pair: physCores cores with hwThreads/physCores
// SMT ways each. It preserves the historical thread-to-core mapping
// exactly (thread t on core t % physCores).
func FromFlat(hwThreads, physCores int) (Topology, error) {
	if physCores <= 0 {
		return Topology{}, fmt.Errorf("%w, got %d", ErrCores, physCores)
	}
	if hwThreads%physCores != 0 {
		return Topology{}, fmt.Errorf("%w: %d threads over %d cores",
			ErrUneven, hwThreads, physCores)
	}
	t := Topology{Sockets: 1, CoresPerSocket: physCores, ThreadsPerCore: hwThreads / physCores}
	if err := t.Validate(); err != nil {
		return Topology{}, err
	}
	return t, nil
}

// MustFromFlat is FromFlat for known-good shapes (tests, fixed
// testbeds); it panics on error.
func MustFromFlat(hwThreads, physCores int) Topology {
	t, err := FromFlat(hwThreads, physCores)
	if err != nil {
		panic(err)
	}
	return t
}

// Named topology errors, matchable with errors.Is. Validate and Parse
// wrap each with the offending values.
var (
	// ErrSockets: Sockets is zero or negative.
	ErrSockets = errors.New("topology: Sockets must be positive")
	// ErrCores: CoresPerSocket is zero or negative.
	ErrCores = errors.New("topology: CoresPerSocket must be positive")
	// ErrSMT: ThreadsPerCore is zero or negative.
	ErrSMT = errors.New("topology: ThreadsPerCore must be positive")
	// ErrTooManyThreads: the shape's total thread count exceeds MaxThreads.
	ErrTooManyThreads = errors.New("topology: too many hardware threads")
	// ErrUneven: a legacy (hwThreads, physCores) pair does not spread
	// threads evenly over cores.
	ErrUneven = errors.New("topology: threads must divide evenly over cores")
	// ErrSyntax: a topology spec string is not of the form "2s8c2t".
	ErrSyntax = errors.New("topology: malformed spec, want <sockets>s<cores>c<threads>t (e.g. 2s8c2t)")
)

// Validate reports whether the topology is well-formed: all three
// levels positive and the total thread count within MaxThreads. Each
// failure mode wraps one of the named Err* sentinel errors.
func (t Topology) Validate() error {
	if t.Sockets <= 0 {
		return fmt.Errorf("%w, got %d", ErrSockets, t.Sockets)
	}
	if t.CoresPerSocket <= 0 {
		return fmt.Errorf("%w, got %d", ErrCores, t.CoresPerSocket)
	}
	if t.ThreadsPerCore <= 0 {
		return fmt.Errorf("%w, got %d", ErrSMT, t.ThreadsPerCore)
	}
	if n := t.Threads(); n > MaxThreads {
		return fmt.Errorf("%w: at most %d are supported, got %d",
			ErrTooManyThreads, MaxThreads, n)
	}
	return nil
}

// IsZero reports whether t is the zero value, which config layers use
// as "no topology specified".
func (t Topology) IsZero() bool { return t == Topology{} }

// Threads returns the total hardware thread count.
func (t Topology) Threads() int { return t.Sockets * t.CoresPerSocket * t.ThreadsPerCore }

// Cores returns the total physical core count across all sockets.
func (t Topology) Cores() int { return t.Sockets * t.CoresPerSocket }

// CoreOf maps a hardware thread id to its global physical core id.
// Threads t and t+Cores() are hyperthread siblings sharing one core's
// L1 cache, mirroring the enumeration order of Linux on Intel
// processors (and, at one socket, the legacy hw % PhysCores mapping).
func (t Topology) CoreOf(hw int) int { return hw % t.Cores() }

// SocketOf maps a hardware thread id to its socket id. Global core ids
// fill sockets in order, so this is CoreOf(hw) / CoresPerSocket.
func (t Topology) SocketOf(hw int) int { return t.CoreOf(hw) / t.CoresPerSocket }

// Siblings returns the hardware thread ids sharing the physical core of
// hw, excluding hw itself, in ascending order.
func (t Topology) Siblings(hw int) []int {
	var sibs []int
	for i, n := t.CoreOf(hw), t.Threads(); i < n; i += t.Cores() {
		if i != hw {
			sibs = append(sibs, i)
		}
	}
	return sibs
}

// String renders the topology in the spec form Parse accepts, e.g.
// "2s8c2t". Parse(t.String()) == t for every valid topology.
func (t Topology) String() string {
	return fmt.Sprintf("%ds%dc%dt", t.Sockets, t.CoresPerSocket, t.ThreadsPerCore)
}

// Parse decodes a spec of the form "<sockets>s<cores>c<threads>t" —
// for example "2s8c2t" is two sockets of eight 2-way-SMT cores, a
// 32-thread machine. It is the -topology CLI format. Malformed specs
// return ErrSyntax; well-formed specs describing an invalid shape
// return the corresponding Validate sentinel.
func Parse(spec string) (Topology, error) {
	rest := spec
	field := func(suffix byte) (int, error) {
		i := strings.IndexByte(rest, suffix)
		if i < 0 {
			return 0, fmt.Errorf("%w: %q is missing %q", ErrSyntax, spec, string(suffix))
		}
		digits := rest[:i]
		rest = rest[i+1:]
		// Reject signs, spaces and leading zeros so that String() is the
		// one canonical spelling of every parseable spec.
		if digits == "" || digits[0] == '0' && digits != "0" {
			return 0, fmt.Errorf("%w: bad count %q in %q", ErrSyntax, digits, spec)
		}
		for i := 0; i < len(digits); i++ {
			if digits[i] < '0' || digits[i] > '9' {
				return 0, fmt.Errorf("%w: bad count %q in %q", ErrSyntax, digits, spec)
			}
		}
		n, err := strconv.Atoi(digits)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("%w: bad count %q in %q", ErrSyntax, digits, spec)
		}
		return n, nil
	}
	var t Topology
	var err error
	if t.Sockets, err = field('s'); err != nil {
		return Topology{}, err
	}
	if t.CoresPerSocket, err = field('c'); err != nil {
		return Topology{}, err
	}
	if t.ThreadsPerCore, err = field('t'); err != nil {
		return Topology{}, err
	}
	if rest != "" {
		return Topology{}, fmt.Errorf("%w: trailing %q in %q", ErrSyntax, rest, spec)
	}
	if err := t.Validate(); err != nil {
		return Topology{}, err
	}
	return t, nil
}
