package bench

import (
	"math"
	"sort"
)

// Summary statistics for repeated measurements. Every function is pure
// and treats its input as read-only, so callers can share slices.

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// GeoMean returns the geometric mean of vals, ignoring non-positive
// entries (which would otherwise poison the product). Ratios aggregate
// through here: the geomean of speedups is invariant under inverting the
// baseline.
func GeoMean(vals []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// TrimmedMean sorts a copy of vals, drops ⌊frac·n⌋ entries from each
// end, and returns the arithmetic mean of the rest — the outlier-robust
// aggregate for repeated timing runs. frac is clamped to [0, 0.5); with
// too few samples to trim it degrades to the plain mean.
func TrimmedMean(vals []float64, frac float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	if frac < 0 {
		frac = 0
	}
	if frac >= 0.5 {
		frac = 0.49
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	k := int(frac * float64(len(sorted)))
	if 2*k >= len(sorted) {
		k = (len(sorted) - 1) / 2
	}
	return Mean(sorted[k : len(sorted)-k])
}

// DropWarmup returns vals without its first skip entries (the warm-up
// runs measurements conventionally discard). skip larger than the slice
// yields an empty slice, never a panic.
func DropWarmup(vals []float64, skip int) []float64 {
	if skip <= 0 {
		return vals
	}
	if skip >= len(vals) {
		return vals[len(vals):]
	}
	return vals[skip:]
}
