package bench

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func TestCounters(t *testing.T) {
	var c Counters
	c.RecordCell(3, 100)
	c.RecordCell(2, 50)
	if c.Cells() != 2 || c.Runs() != 5 || c.SimCycles() != 150 {
		t.Fatalf("counters = %d/%d/%d", c.Cells(), c.Runs(), c.SimCycles())
	}
	var nilC *Counters
	nilC.RecordCell(1, 1) // must not panic
	if nilC.Cells() != 0 || nilC.Runs() != 0 || nilC.SimCycles() != 0 {
		t.Fatal("nil counters not inert")
	}
}

func TestCross(t *testing.T) {
	got := Cross(2, 3)
	if len(got) != 6 {
		t.Fatalf("Cross(2,3) has %d cells", len(got))
	}
	if got[0][0] != 0 || got[0][1] != 0 || got[5][0] != 1 || got[5][1] != 2 {
		t.Fatalf("Cross order wrong: %v", got)
	}
	// Row-major: the last dimension varies fastest.
	if got[1][1] != 1 {
		t.Fatalf("Cross not row-major: %v", got)
	}
	if Cross(3, 0) != nil || Cross() == nil {
		t.Fatal("degenerate dims mishandled")
	}
}

func TestStats(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("Mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %v", m)
	}
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("GeoMean = %v", g)
	}
	if g := GeoMean([]float64{-1, 0}); g != 0 {
		t.Fatalf("GeoMean of non-positive = %v", g)
	}
	// 20% trim of 10 values drops the 2 extremes.
	vals := []float64{100, 1, 2, 3, 4, 5, 6, 7, 8, -50}
	if m := TrimmedMean(vals, 0.2); math.Abs(m-4.5) > 1e-12 {
		t.Fatalf("TrimmedMean = %v", m)
	}
	if m := TrimmedMean([]float64{7}, 0.4); m != 7 {
		t.Fatalf("TrimmedMean single = %v", m)
	}
	if m := TrimmedMean(nil, 0.2); m != 0 {
		t.Fatalf("TrimmedMean(nil) = %v", m)
	}
	if got := DropWarmup([]float64{1, 2, 3}, 1); len(got) != 2 || got[0] != 2 {
		t.Fatalf("DropWarmup = %v", got)
	}
	if got := DropWarmup([]float64{1}, 5); len(got) != 0 {
		t.Fatalf("DropWarmup past end = %v", got)
	}
}

func TestReportRoundTripAndCompare(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")

	var c Counters
	c.RecordCell(10, 1000)
	oldRep := Report{GoVersion: "go-test", Runs: 3}
	oldRep.Add("fig3", 100, &c)
	if err := oldRep.WriteFile(oldPath); err != nil {
		t.Fatal(err)
	}
	newRep := Report{GoVersion: "go-test", Runs: 3}
	newRep.Add("fig3", 105, &c)
	newRep.Add("adversarial", 50, &c) // new experiment: listed, not gated
	if err := newRep.WriteFile(newPath); err != nil {
		t.Fatal(err)
	}

	loaded, err := Load(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Experiments) != 1 || loaded.Experiments[0].Name != "fig3" {
		t.Fatalf("round trip lost experiments: %+v", loaded)
	}

	var out strings.Builder
	ok, err := Compare(oldPath, newPath, 0.9, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("compare failed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "new experiment, not compared") {
		t.Fatalf("new experiment not annotated:\n%s", out.String())
	}

	out.Reset()
	ok, err = Compare(oldPath, newPath, 2.0, &out)
	if err != nil || ok {
		t.Fatalf("regression not detected (ok=%v err=%v):\n%s", ok, err, out.String())
	}
}

func TestRatioTableRender(t *testing.T) {
	tbl := RatioTable{
		Title:     "demo",
		RowHeader: "graph",
		Rows:      []string{"ring", "star"},
		Cols:      []string{"RTM", "Seer"},
		Cells:     [][]float64{{1, 2}, {4, math.NaN()}},
		Geomean:   true,
	}
	var b strings.Builder
	tbl.Render(&b)
	got := b.String()
	for _, want := range []string{"demo", "graph", "ring", "star", "geomean", "2.00", "-"} {
		if !strings.Contains(got, want) {
			t.Fatalf("render missing %q:\n%s", want, got)
		}
	}
	var b2 strings.Builder
	tbl.Render(&b2)
	if got != b2.String() {
		t.Fatal("render not deterministic")
	}
}
