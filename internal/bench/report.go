package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
)

// Experiment is the per-experiment slice of a -bench-json report.
type Experiment struct {
	Name      string  `json:"name"`
	WallMS    float64 `json:"wall_ms"`
	Cells     int64   `json:"cells"`
	Runs      int64   `json:"runs"`
	SimCycles uint64  `json:"sim_cycles"`
	CellsPerS float64 `json:"cells_per_sec"`
}

// Report is the top-level -bench-json document.
type Report struct {
	GoVersion   string       `json:"go_version"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Parallel    int          `json:"parallel"`
	Scale       float64      `json:"scale"`
	Runs        int          `json:"runs"`
	Seed        int64        `json:"seed"`
	Experiments []Experiment `json:"experiments"`
	TotalWallMS float64      `json:"total_wall_ms"`
}

// Add appends one experiment's totals, computing its throughput from the
// wall-clock milliseconds.
func (r *Report) Add(name string, wallMS float64, c *Counters) {
	exp := Experiment{
		Name: name, WallMS: wallMS,
		Cells: c.Cells(), Runs: c.Runs(), SimCycles: c.SimCycles(),
	}
	if wallMS > 0 {
		exp.CellsPerS = float64(c.Cells()) / (wallMS / 1000)
	}
	r.Experiments = append(r.Experiments, exp)
	r.TotalWallMS += wallMS
}

// WriteFile renders the report as indented JSON at path.
func (r Report) WriteFile(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// Load reads a -bench-json report back from disk.
func Load(path string) (Report, error) {
	var rep Report
	buf, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(buf, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// Compare loads two -bench-json reports and renders a per-experiment
// throughput comparison (cells/sec ratio new/old) plus the geometric
// mean over experiments present in both. It returns ok = false when the
// geomean falls below threshold — the regression gate CI runs against
// the previous PR's snapshot. Experiments only in the new report are
// listed but not compared, so adding an experiment never breaks the
// gate.
func Compare(oldPath, newPath string, threshold float64, w io.Writer) (ok bool, err error) {
	oldRep, err := Load(oldPath)
	if err != nil {
		return false, err
	}
	newRep, err := Load(newPath)
	if err != nil {
		return false, err
	}
	oldBy := map[string]Experiment{}
	for _, e := range oldRep.Experiments {
		oldBy[e.Name] = e
	}

	fmt.Fprintf(w, "bench compare: %s -> %s (threshold %.2f)\n", oldPath, newPath, threshold)
	fmt.Fprintf(w, "%-12s %14s %14s %8s\n", "experiment", "old cells/s", "new cells/s", "ratio")
	ratios := make([]float64, 0, len(newRep.Experiments))
	for _, ne := range newRep.Experiments {
		oe, found := oldBy[ne.Name]
		if !found {
			fmt.Fprintf(w, "%-12s %14s %14.2f %8s  (new experiment, not compared)\n",
				ne.Name, "-", ne.CellsPerS, "-")
			continue
		}
		if oe.CellsPerS <= 0 || ne.CellsPerS <= 0 {
			fmt.Fprintf(w, "%-12s %14.2f %14.2f %8s  (zero rate, not compared)\n",
				ne.Name, oe.CellsPerS, ne.CellsPerS, "-")
			continue
		}
		ratio := ne.CellsPerS / oe.CellsPerS
		fmt.Fprintf(w, "%-12s %14.2f %14.2f %8.3f\n", ne.Name, oe.CellsPerS, ne.CellsPerS, ratio)
		ratios = append(ratios, ratio)
	}
	if len(ratios) == 0 {
		return false, fmt.Errorf("no experiments in common between %s and %s", oldPath, newPath)
	}
	geomean := GeoMean(ratios)
	fmt.Fprintf(w, "geomean ratio over %d experiments: %.3f\n", len(ratios), geomean)
	if math.IsNaN(geomean) || geomean < threshold {
		fmt.Fprintf(w, "REGRESSION: geomean %.3f below threshold %.2f\n", geomean, threshold)
		return false, nil
	}
	fmt.Fprintf(w, "OK: geomean %.3f within threshold %.2f\n", geomean, threshold)
	return true, nil
}
