// Package bench holds the executor-level measurement plumbing shared by
// the benchmark driver (cmd/seerbench) and the harness: throughput
// counters, summary statistics (warmup trimming, trimmed means, geometric
// means), machine-readable report snapshots with a regression-comparison
// gate, and ratio-table rendering. It sits below the harness in the
// import graph (no simulator dependencies), so every layer can record
// into the same counters.
package bench

import "sync/atomic"

// Counters accumulates executor-level totals across experiments, for the
// machine-readable benchmark output of seerbench -bench-json. All fields
// are updated atomically; a nil *Counters discards everything, so
// recording sites need no guards.
type Counters struct {
	cells     atomic.Int64
	runs      atomic.Int64
	simCycles atomic.Uint64
}

// RecordCell folds one completed measurement cell into the totals: the
// number of repetitions it ran and the virtual cycles they simulated.
func (s *Counters) RecordCell(runs int, simCycles uint64) {
	if s == nil {
		return
	}
	s.cells.Add(1)
	s.runs.Add(int64(runs))
	s.simCycles.Add(simCycles)
}

// Cells returns the number of measurement cells executed so far.
func (s *Counters) Cells() int64 {
	if s == nil {
		return 0
	}
	return s.cells.Load()
}

// Runs returns the number of simulated runs executed so far (cells ×
// repetitions).
func (s *Counters) Runs() int64 {
	if s == nil {
		return 0
	}
	return s.runs.Load()
}

// SimCycles returns the total virtual cycles simulated so far.
func (s *Counters) SimCycles() uint64 {
	if s == nil {
		return 0
	}
	return s.simCycles.Load()
}

// Cross enumerates the cross product of dimension sizes in row-major
// order: Cross(2, 3) yields [0 0], [0 1], [0 2], [1 0], ... — the
// deterministic cell ordering every grid sweep uses. An empty or
// zero-sized dimension yields no cells.
func Cross(dims ...int) [][]int {
	total := 1
	for _, d := range dims {
		if d <= 0 {
			return nil
		}
		total *= d
	}
	out := make([][]int, 0, total)
	idx := make([]int, len(dims))
	for {
		out = append(out, append([]int(nil), idx...))
		i := len(dims) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < dims[i] {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return out
		}
	}
}
