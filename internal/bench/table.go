package bench

import (
	"fmt"
	"io"
)

// RatioTable is a fixed-width rows × columns table of ratios (speedups,
// slowdowns, normalized throughputs) with an optional geomean summary
// row. Rendering is deterministic: identical inputs produce byte-
// identical output, so rendered tables can be pinned as goldens.
type RatioTable struct {
	// Title is printed above the table.
	Title string
	// RowHeader labels the row-name column (e.g. "graph", "workload").
	RowHeader string
	// Rows and Cols name the axes; Cells[r][c] is the value, with NaN
	// rendered as "-" (missing cell).
	Rows, Cols []string
	Cells      [][]float64
	// Geomean, when true, appends a geomean summary row over the data
	// rows (per column, non-positive cells ignored).
	Geomean bool
}

// Render writes the table in the harness' fixed-width exhibit style.
func (t RatioTable) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	fmt.Fprintf(w, "%-14s", t.RowHeader)
	for _, c := range t.Cols {
		fmt.Fprintf(w, " %9s", c)
	}
	fmt.Fprintln(w)
	cell := func(v float64) {
		if v != v { // NaN: missing
			fmt.Fprintf(w, " %9s", "-")
			return
		}
		fmt.Fprintf(w, " %9.2f", v)
	}
	for r, name := range t.Rows {
		fmt.Fprintf(w, "%-14s", name)
		for c := range t.Cols {
			cell(t.Cells[r][c])
		}
		fmt.Fprintln(w)
	}
	if t.Geomean && len(t.Rows) > 1 {
		fmt.Fprintf(w, "%-14s", "geomean")
		for c := range t.Cols {
			col := make([]float64, 0, len(t.Rows))
			for r := range t.Rows {
				if v := t.Cells[r][c]; v == v {
					col = append(col, v)
				}
			}
			cell(GeoMean(col))
		}
		fmt.Fprintln(w)
	}
}
