package plot

import (
	"strings"
	"testing"
)

func render(c *Chart) string {
	var sb strings.Builder
	c.Render(&sb)
	return sb.String()
}

func TestRenderBasics(t *testing.T) {
	c := &Chart{
		Title:  "test chart",
		XLabel: "threads",
		XTicks: []string{"1", "2", "4", "8"},
		Series: []Series{
			{Name: "up", Values: []float64{1, 2, 3, 4}},
			{Name: "down", Values: []float64{4, 3, 2, 1}},
		},
	}
	out := render(c)
	for _, want := range []string{"test chart", "● up", "▲ down", "[x: threads]", "└"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Rising series: its marker appears on the top row at the right side
	// and the bottom row at the left.
	lines := strings.Split(out, "\n")
	top, bottom := lines[1], lines[16]
	if !strings.Contains(top, "●") && !strings.Contains(top, "▲") {
		t.Fatalf("no marker on the top row:\n%s", out)
	}
	if !strings.Contains(bottom, "●") && !strings.Contains(bottom, "▲") {
		t.Fatalf("no marker on the bottom row:\n%s", out)
	}
}

func TestRenderFlatSeries(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "flat", Values: []float64{2, 2, 2}}}}
	out := render(c)
	if !strings.Contains(out, "●") {
		t.Fatalf("flat series rendered nothing:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	c := &Chart{Series: nil}
	out := render(c)
	if out == "" {
		t.Fatalf("empty chart rendered nothing at all")
	}
}

func TestRenderSinglePoint(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "pt", Values: []float64{5}}}}
	out := render(c)
	if !strings.Contains(out, "●") {
		t.Fatalf("single point missing:\n%s", out)
	}
}

func TestAxisLabels(t *testing.T) {
	c := &Chart{
		XTicks: []string{"1t", "8t"},
		Series: []Series{{Name: "s", Values: []float64{0, 10}}},
	}
	out := render(c)
	if !strings.Contains(out, "10.0") || !strings.Contains(out, "0.0") {
		t.Fatalf("y-axis bounds missing:\n%s", out)
	}
	if !strings.Contains(out, "1t") || !strings.Contains(out, "8t") {
		t.Fatalf("x ticks missing:\n%s", out)
	}
}

func TestManySeriesMarkersCycle(t *testing.T) {
	var series []Series
	for i := 0; i < 10; i++ {
		series = append(series, Series{Name: "s", Values: []float64{float64(i)}})
	}
	c := &Chart{Series: series}
	out := render(c)
	if !strings.Contains(out, "●") || !strings.Contains(out, "○") {
		t.Fatalf("markers did not cycle:\n%s", out)
	}
}
