// Package plot renders small multi-series line charts as Unicode text,
// so seerbench can show the paper's figures directly in a terminal
// without any plotting dependency.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line.
type Series struct {
	Name   string
	Values []float64
}

// Chart is a fixed-size character canvas with labeled axes.
type Chart struct {
	Title  string
	XLabel string
	// XTicks labels the sample positions (e.g. thread counts).
	XTicks []string
	Width  int // plot-area columns (default 56)
	Height int // plot-area rows (default 16)
	Series []Series
}

// markers distinguish the series; assigned in order.
var markers = []rune{'●', '▲', '■', '◆', '○', '△', '□', '◇'}

// Render writes the chart to w.
func (c *Chart) Render(w io.Writer) {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 56
	}
	if height <= 0 {
		height = 16
	}
	lo, hi := c.bounds()
	if hi == lo {
		hi = lo + 1
	}
	// Round the axis outward to friendlier numbers.
	lo = math.Floor(lo*2) / 2
	hi = math.Ceil(hi*2) / 2

	canvas := make([][]rune, height)
	for r := range canvas {
		canvas[r] = make([]rune, width)
		for x := range canvas[r] {
			canvas[r][x] = ' '
		}
	}
	n := c.samples()
	xFor := func(i int) int {
		if n == 1 {
			return 0
		}
		return i * (width - 1) / (n - 1)
	}
	yFor := func(v float64) int {
		f := (v - lo) / (hi - lo)
		r := int(math.Round(f * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r > height-1 {
			r = height - 1
		}
		return height - 1 - r
	}
	// Light connecting dots, then markers on top.
	for si, s := range c.Series {
		marker := markers[si%len(markers)]
		prevX, prevY := -1, -1
		for i, v := range s.Values {
			if i >= n {
				break
			}
			x, y := xFor(i), yFor(v)
			if prevX >= 0 {
				steps := x - prevX
				for dx := 1; dx < steps; dx++ {
					ix := prevX + dx
					iy := prevY + (y-prevY)*dx/steps
					if canvas[iy][ix] == ' ' {
						canvas[iy][ix] = '·'
					}
				}
			}
			canvas[y][x] = marker
			prevX, prevY = x, y
		}
	}

	if c.Title != "" {
		fmt.Fprintf(w, "%s\n", c.Title)
	}
	for r := 0; r < height; r++ {
		label := ""
		switch r {
		case 0:
			label = trimNum(hi)
		case height - 1:
			label = trimNum(lo)
		case (height - 1) / 2:
			label = trimNum((hi + lo) / 2)
		}
		fmt.Fprintf(w, "%6s ┤%s\n", label, string(canvas[r]))
	}
	fmt.Fprintf(w, "%6s └%s\n", "", strings.Repeat("─", width))
	fmt.Fprintf(w, "%7s%s\n", "", c.xAxis(width, n))
	legend := make([]string, 0, len(c.Series))
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(w, "%7s%s", "", strings.Join(legend, "   "))
	if c.XLabel != "" {
		fmt.Fprintf(w, "   [x: %s]", c.XLabel)
	}
	fmt.Fprintln(w)
}

// bounds returns the min/max over every series value.
func (c *Chart) bounds() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, v := range s.Values {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		return 0, 1
	}
	return lo, hi
}

// samples returns the longest series length.
func (c *Chart) samples() int {
	n := 0
	for _, s := range c.Series {
		if len(s.Values) > n {
			n = len(s.Values)
		}
	}
	if n == 0 {
		n = 1
	}
	return n
}

// xAxis spreads the tick labels across the plot width.
func (c *Chart) xAxis(width, n int) string {
	out := make([]rune, width)
	for i := range out {
		out[i] = ' '
	}
	for i, t := range c.XTicks {
		if i >= n {
			break
		}
		x := 0
		if n > 1 {
			x = i * (width - 1) / (n - 1)
		}
		// Shift left so the whole label fits inside the plot width.
		if x+len(t) > width {
			x = width - len(t)
		}
		for j, r := range t {
			p := x + j
			if p >= 0 && p < width {
				out[p] = r
			}
		}
	}
	return string(out)
}

func trimNum(v float64) string {
	s := fmt.Sprintf("%.1f", v)
	return s
}

// sparks are the eight-level bar glyphs used by Sparkline.
var sparks = []rune{'▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'}

// Sparkline renders vals as a one-line bar chart of at most width glyphs,
// scaled to the series' own min..max. Series longer than width are
// bucketed by averaging consecutive values, so long timelines compress to
// a fixed-width overview. An empty series yields an empty string.
func Sparkline(vals []float64, width int) string {
	if len(vals) == 0 || width <= 0 {
		return ""
	}
	if len(vals) > width {
		vals = bucket(vals, width)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	out := make([]rune, len(vals))
	for i, v := range vals {
		level := 0
		if hi > lo {
			level = int((v - lo) / (hi - lo) * float64(len(sparks)-1))
		}
		if level < 0 {
			level = 0
		}
		if level > len(sparks)-1 {
			level = len(sparks) - 1
		}
		out[i] = sparks[level]
	}
	return string(out)
}

// bucket averages vals down to n entries.
func bucket(vals []float64, n int) []float64 {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		start := i * len(vals) / n
		end := (i + 1) * len(vals) / n
		if end <= start {
			end = start + 1
		}
		sum := 0.0
		for _, v := range vals[start:end] {
			sum += v
		}
		out[i] = sum / float64(end-start)
	}
	return out
}
