package policy

import (
	"seer/internal/mem"
	"seer/internal/spinlock"
)

// Oracle is a precise-feedback scheduler in the spirit of CAR-STM and
// Steal-on-Abort: an aborted transaction is serialized *behind the exact
// transaction that aborted it* — it waits until that thread's current
// hardware transaction finishes before retrying.
//
// No commodity HTM can implement this (the abort feedback never names the
// conflictor — the premise of the paper); the policy exists because the
// simulator can cheat and reveal the true conflictor (htm.LastConflictor).
// Comparing Oracle against Seer quantifies how much of the value of
// precise feedback Seer's probabilistic inference recovers from coarse
// feedback alone.
type Oracle struct {
	SGL         spinlock.Lock
	MaxAttempts int
	// WaitBudget bounds the spin on the conflictor (advisory wait).
	WaitBudget int
}

// NewOracle builds the oracle policy with the standard retry budget.
func NewOracle(sgl spinlock.Lock, maxAttempts int) *Oracle {
	return &Oracle{SGL: sgl, MaxAttempts: maxAttempts, WaitBudget: 256}
}

// Name implements Policy.
func (p *Oracle) Name() string { return "Oracle" }

// Run implements Policy.
func (p *Oracle) Run(t *Thread, txID int, obj uint64, body func(mem.Access)) {
	t.curTx = txID
	for attempts := p.MaxAttempts; attempts > 0; attempts-- {
		if p.SGL.LockedFast(t.Mem) {
			spinSGL(t, p.SGL)
		}
		status := attempt(t, p.SGL, body)
		if status == 0 {
			t.commit(ModeHTM)
			return
		}
		if status.Conflict() {
			// Precise feedback: wait for the exact conflictor's
			// transaction to complete before retrying (Steal-on-Abort's
			// serialize-after-enemy, adapted to threads that own their
			// own work).
			if c := t.HTM.LastConflictor(t.Ctx.ID()); c >= 0 {
				cost := t.Ctx.Cost().SpinQuantum
				for i := 0; i < p.WaitBudget && t.HTM.Active(c); i++ {
					t.Ctx.Tick(cost)
				}
			}
		}
	}
	runSGL(t, p.SGL, body)
}
