package policy

import (
	"testing"

	"seer/internal/core"
	"seer/internal/htm"
	"seer/internal/machine"
	"seer/internal/mem"
	"seer/internal/spinlock"
	"seer/internal/telemetry"
	"seer/internal/topology"
)

// rig bundles a machine with all runtime pieces for policy tests.
type rig struct {
	eng *machine.Engine
	m   *mem.Memory
	u   *htm.Unit
	sgl spinlock.Lock
	cfg machine.Config
}

func newRig(t *testing.T, threads int) *rig {
	t.Helper()
	cfg := machine.Config{Topo: topology.MustFromFlat(threads, (threads+1)/2), Seed: 17, Cost: machine.DefaultCostModel()}
	eng, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(1 << 14)
	u := htm.New(m, cfg, htm.Config{ReadSetLines: 64, WriteSetLines: 16})
	return &rig{eng: eng, m: m, u: u, sgl: spinlock.New(m), cfg: cfg}
}

// runCounter has each thread increment a shared counter ops times under
// the given policy, returning the merged mode counts.
func (r *rig) runCounter(t *testing.T, pol Policy, threads, ops int) ModeCounts {
	t.Helper()
	counter := r.m.AllocLines(1)
	var total ModeCounts
	threadsSlice := make([]*Thread, threads)
	bodies := make([]func(*machine.Ctx), threads)
	for i := range bodies {
		idx := i
		bodies[i] = func(c *machine.Ctx) {
			th := NewThread(c, r.m, r.u)
			threadsSlice[idx] = th
			if sp, ok := pol.(*Seer); ok {
				th.Seer = sp.Sched.NewThreadState(c)
			}
			for n := 0; n < ops; n++ {
				pol.Run(th, 0, 0, func(a mem.Access) {
					a.Store(counter, a.Load(counter)+1)
					a.Work(20)
				})
				c.Work(uint64(5 + c.Rand().Intn(10)))
			}
		}
	}
	if _, err := r.eng.Run(bodies); err != nil {
		t.Fatal(err)
	}
	if got := r.m.Peek(counter); got != uint64(threads*ops) {
		t.Fatalf("%s: counter = %d, want %d (atomicity broken)", pol.Name(), got, threads*ops)
	}
	for _, th := range threadsSlice {
		total.Add(th.Modes)
	}
	if got := total.Total(); got != uint64(threads*ops) {
		t.Fatalf("%s: mode total = %d, want %d", pol.Name(), got, threads*ops)
	}
	return total
}

func TestHLEAtomicity(t *testing.T) {
	r := newRig(t, 4)
	modes := r.runCounter(t, &HLE{SGL: r.sgl}, 4, 100)
	if modes[ModeHTM]+modes[ModeSGL] != modes.Total() {
		t.Fatalf("HLE used unexpected modes: %v", modes)
	}
}

func TestRTMAtomicity(t *testing.T) {
	r := newRig(t, 4)
	modes := r.runCounter(t, &RTM{SGL: r.sgl, MaxAttempts: 5}, 4, 100)
	if modes[ModeHTMAux] != 0 || modes[ModeHTMTx] != 0 {
		t.Fatalf("RTM used lock modes: %v", modes)
	}
}

func TestSCMAtomicity(t *testing.T) {
	r := newRig(t, 4)
	modes := r.runCounter(t, &SCM{SGL: r.sgl, Aux: spinlock.New(r.m), MaxAttempts: 5}, 4, 100)
	// Under this contention SCM must commit at least some transactions
	// under the auxiliary lock.
	if modes[ModeHTMAux] == 0 {
		t.Logf("note: no aux-lock commits under this contention: %v", modes)
	}
	if modes[ModeHTMTx] != 0 || modes[ModeHTMCore] != 0 {
		t.Fatalf("SCM used Seer modes: %v", modes)
	}
}

func newSeerPolicy(r *rig, opts core.Options) *Seer {
	rng := machine.NewRand(33)
	sched := core.New(1, r.cfg, r.m, r.u, opts, &rng)
	return &Seer{SGL: r.sgl, MaxAttempts: 5, Sched: sched}
}

func TestSeerAtomicity(t *testing.T) {
	r := newRig(t, 4)
	opts := core.DefaultOptions()
	opts.UpdateEvery = 50
	modes := r.runCounter(t, newSeerPolicy(r, opts), 4, 100)
	if modes[ModeHTMAux] != 0 {
		t.Fatalf("Seer used SCM's aux mode: %v", modes)
	}
}

func TestSeerProfileOnlyNeverLocks(t *testing.T) {
	r := newRig(t, 4)
	opts := core.ProfileOnly()
	opts.UpdateEvery = 50
	modes := r.runCounter(t, newSeerPolicy(r, opts), 4, 100)
	if modes[ModeHTMTx] != 0 || modes[ModeHTMCore] != 0 || modes[ModeHTMTxCore] != 0 {
		t.Fatalf("profile-only Seer acquired locks: %v", modes)
	}
}

// TestHLELemming: once contention makes HLE's single attempt fail, it
// must show a much larger SGL share than RTM on the same workload.
func TestHLELemming(t *testing.T) {
	r1 := newRig(t, 8)
	hle := r1.runCounter(t, &HLE{SGL: r1.sgl}, 8, 80)
	r2 := newRig(t, 8)
	rtm := r2.runCounter(t, &RTM{SGL: r2.sgl, MaxAttempts: 5}, 8, 80)
	if hle.Fraction(ModeSGL) <= rtm.Fraction(ModeSGL) {
		t.Fatalf("HLE SGL share (%.2f) not above RTM's (%.2f): no lemming effect",
			hle.Fraction(ModeSGL), rtm.Fraction(ModeSGL))
	}
}

// TestSGLPathRunsOnce: a body observed on the fall-back path runs exactly
// once there (no retries under the lock).
func TestSGLPathRunsOnce(t *testing.T) {
	r := newRig(t, 1)
	pol := &RTM{SGL: r.sgl, MaxAttempts: 2}
	counter := r.m.AllocLines(1)
	execs := 0
	if _, err := r.eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		th := NewThread(c, r.m, r.u)
		pol.Run(th, 0, 0, func(a mem.Access) {
			execs++
			// Force hardware aborts so the fall-back path is taken:
			// writing 32 lines exceeds the 16-line budget.
			if _, isTx := a.(*htm.Tx); isTx {
				base := counter
				for i := 0; i < 32; i++ {
					a.Store(base+mem.Addr(i%8), 1)
					base += mem.LineWords
				}
			} else {
				a.Store(counter, a.Load(counter)+1)
			}
		})
	}}); err != nil {
		t.Fatal(err)
	}
	if execs != 3 { // 2 hardware attempts + 1 SGL execution
		t.Fatalf("body executed %d times, want 3", execs)
	}
	if r.m.Peek(counter) != 1 {
		t.Fatalf("SGL execution effect wrong: %d", r.m.Peek(counter))
	}
}

// TestModeString covers the Table 3 labels.
func TestModeString(t *testing.T) {
	want := map[Mode]string{
		ModeHTM:       "HTM no locks",
		ModeHTMAux:    "HTM + Aux lock",
		ModeHTMTx:     "HTM + Tx Locks",
		ModeHTMCore:   "HTM + Core Locks",
		ModeHTMTxCore: "HTM + Tx + Core Locks",
		ModeSGL:       "SGL fall-back",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), m.String(), s)
		}
	}
	if Mode(99).String() == "" {
		t.Errorf("unknown mode must still render")
	}
}

func TestModeCountsHelpers(t *testing.T) {
	var mc ModeCounts
	mc[ModeHTM] = 3
	mc[ModeSGL] = 1
	if mc.Total() != 4 {
		t.Fatalf("Total = %d", mc.Total())
	}
	if f := mc.Fraction(ModeSGL); f != 0.25 {
		t.Fatalf("Fraction = %v", f)
	}
	var other ModeCounts
	other[ModeHTM] = 2
	mc.Add(other)
	if mc[ModeHTM] != 5 {
		t.Fatalf("Add failed: %v", mc)
	}
	var empty ModeCounts
	if empty.Fraction(ModeHTM) != 0 {
		t.Fatalf("empty Fraction must be 0")
	}
}

// TestSequentialPolicy: no hardware transactions, no locks.
func TestSequentialPolicy(t *testing.T) {
	r := newRig(t, 1)
	r.runCounter(t, &Sequential{}, 1, 50)
	if c := r.u.Counters(); c.Commits != 0 && c.Aborts != 0 {
		t.Fatalf("sequential policy used the HTM: %+v", c)
	}
}

// TestSeerCoreLockOnCapacityWorkload: a capacity-heavy workload under
// Seer must commit some transactions holding core locks.
func TestSeerCoreLockOnCapacityWorkload(t *testing.T) {
	r := newRig(t, 2) // hyperthread siblings on one core
	opts := core.DefaultOptions()
	opts.UpdateEvery = 50
	pol := newSeerPolicy(r, opts)
	regions := []mem.Addr{r.m.AllocLines(12), r.m.AllocLines(12)}
	var modes ModeCounts
	threads := make([]*Thread, 2)
	bodies := make([]func(*machine.Ctx), 2)
	for i := range bodies {
		idx := i
		bodies[i] = func(c *machine.Ctx) {
			th := NewThread(c, r.m, r.u)
			th.Seer = pol.Sched.NewThreadState(c)
			threads[idx] = th
			region := regions[idx] // disjoint: no data conflicts
			for n := 0; n < 60; n++ {
				pol.Run(th, 0, 0, func(a mem.Access) {
					// 12 lines: under the solo budget (16), above the
					// shared one (8).
					for l := 0; l < 12; l++ {
						addr := region + mem.Addr(l*mem.LineWords)
						a.Store(addr, a.Load(addr)+1)
					}
				})
				c.Work(10)
			}
		}
	}
	if _, err := r.eng.Run(bodies); err != nil {
		t.Fatal(err)
	}
	for _, th := range threads {
		modes.Add(th.Modes)
	}
	coreLocked := modes[ModeHTMCore] + modes[ModeHTMTxCore]
	if coreLocked == 0 {
		t.Fatalf("no core-locked commits despite capacity pressure: %v", modes)
	}
}

// TestATSAtomicityAndAdaptation: ATS preserves atomicity and its
// contention-intensity signal triggers serial dispatch under load.
func TestATSAtomicityAndAdaptation(t *testing.T) {
	r := newRig(t, 8)
	pol := NewATS(r.sgl, spinlock.New(r.m), 5, 8)
	modes := r.runCounter(t, pol, 8, 80)
	if modes[ModeHTMAux] == 0 {
		t.Fatalf("ATS never serialized under 8-thread contention: %v", modes)
	}
	// CI values must be valid EMA outputs.
	for hw := 0; hw < 8; hw++ {
		if ci := pol.CI(hw); ci < 0 || ci > 1 {
			t.Fatalf("CI(%d) = %v out of range", hw, ci)
		}
	}
}

// TestATSStaysConcurrentWhenCalm: with no contention the dispatch lock is
// never taken.
func TestATSStaysConcurrentWhenCalm(t *testing.T) {
	r := newRig(t, 4)
	pol := NewATS(r.sgl, spinlock.New(r.m), 5, 4)
	regions := make([]mem.Addr, 4)
	for i := range regions {
		regions[i] = r.m.AllocLines(1)
	}
	threads := make([]*Thread, 4)
	bodies := make([]func(*machine.Ctx), 4)
	for i := range bodies {
		idx := i
		bodies[i] = func(c *machine.Ctx) {
			th := NewThread(c, r.m, r.u)
			threads[idx] = th
			region := regions[idx] // disjoint: conflict-free
			for n := 0; n < 50; n++ {
				pol.Run(th, 0, 0, func(a mem.Access) {
					a.Store(region, a.Load(region)+1)
				})
				c.Work(20)
			}
		}
	}
	if _, err := r.eng.Run(bodies); err != nil {
		t.Fatal(err)
	}
	var modes ModeCounts
	for _, th := range threads {
		modes.Add(th.Modes)
	}
	if modes[ModeHTMAux] != 0 || modes[ModeSGL] != 0 {
		t.Fatalf("calm workload triggered serialization: %v", modes)
	}
}

// TestOracleAtomicityAndWaiting: the oracle policy preserves atomicity
// and, with precise feedback, must not fall back more often than RTM on
// the same contended workload.
func TestOracleAtomicityAndWaiting(t *testing.T) {
	r1 := newRig(t, 8)
	oracle := r1.runCounter(t, NewOracle(r1.sgl, 5), 8, 80)
	r2 := newRig(t, 8)
	rtm := r2.runCounter(t, &RTM{SGL: r2.sgl, MaxAttempts: 5}, 8, 80)
	// On a single saturated counter there is no parallelism for precise
	// feedback to save, so allow statistical noise; the oracle must just
	// not be materially worse.
	if oracle.Fraction(ModeSGL) > rtm.Fraction(ModeSGL)+0.05 {
		t.Fatalf("oracle fell back materially more than RTM: %.2f vs %.2f",
			oracle.Fraction(ModeSGL), rtm.Fraction(ModeSGL))
	}
}

// TestLastConflictorExposed: the HTM names the dooming thread after a
// conflict abort (simulator-only oracle interface).
func TestLastConflictorExposed(t *testing.T) {
	r := newRig(t, 2)
	a := r.m.AllocLines(1)
	var conflictor int
	bodies := []func(*machine.Ctx){
		func(c *machine.Ctx) {
			st := r.u.Run(c, func(tx *htm.Tx) {
				tx.Store(a, 1)
				tx.Work(400)
			})
			if st.Conflict() {
				conflictor = r.u.LastConflictor(0)
			} else {
				conflictor = -2
			}
		},
		func(c *machine.Ctx) {
			c.Tick(80)
			r.u.Run(c, func(tx *htm.Tx) { tx.Store(a, 2) })
		},
	}
	if _, err := r.eng.Run(bodies); err != nil {
		t.Fatal(err)
	}
	if conflictor != 1 {
		t.Fatalf("LastConflictor = %d, want 1", conflictor)
	}
}

// TestTelemetryModeAlignment: telemetry mirrors the Mode indices (it sits
// below policy in the import graph); the slots must stay in lockstep.
func TestTelemetryModeAlignment(t *testing.T) {
	pairs := [][2]int{
		{int(ModeHTM), telemetry.ModeHTM},
		{int(ModeHTMAux), telemetry.ModeHTMAux},
		{int(ModeHTMTx), telemetry.ModeHTMTx},
		{int(ModeHTMCore), telemetry.ModeHTMCore},
		{int(ModeHTMTxCore), telemetry.ModeHTMTxCore},
		{int(ModeSGL), telemetry.ModeSGL},
		{int(ModeSTM), telemetry.ModeSTM},
		{int(NumModes), telemetry.NumModes},
	}
	for _, p := range pairs {
		if p[0] != p[1] {
			t.Fatalf("mode index drift: policy=%d telemetry=%d", p[0], p[1])
		}
	}
	if int(NumModes) > telemetry.MaxModes {
		t.Fatalf("NumModes %d exceeds telemetry.MaxModes %d", NumModes, telemetry.MaxModes)
	}
}

// TestShardCountsCommitsAndAborts: a policy wired to a telemetry shard
// must mirror its Modes histogram and attempt/abort accounting into it.
func TestShardCountsCommitsAndAborts(t *testing.T) {
	r := newRig(t, 4)
	rec := telemetry.New(1<<16, 4)
	pol := &RTM{SGL: r.sgl, MaxAttempts: 5}
	counter := r.m.AllocLines(1)
	threadsSlice := make([]*Thread, 4)
	bodies := make([]func(*machine.Ctx), 4)
	for i := range bodies {
		idx := i
		bodies[i] = func(c *machine.Ctx) {
			th := NewThread(c, r.m, r.u)
			th.Tel = rec.Shard(c.ID())
			threadsSlice[idx] = th
			for n := 0; n < 40; n++ {
				pol.Run(th, 0, 0, func(a mem.Access) {
					a.Store(counter, a.Load(counter)+1)
					a.Work(20)
				})
			}
		}
	}
	if _, err := r.eng.Run(bodies); err != nil {
		t.Fatal(err)
	}
	var modes ModeCounts
	var attempts, fallbacks uint64
	for _, th := range threadsSlice {
		modes.Add(th.Modes)
		attempts += th.Attempts
		fallbacks += th.Fallbacks
	}
	var telModes, telAttempts, telAborts, telFallbacks uint64
	for i := 0; i < 4; i++ {
		s := rec.Shard(i)
		for _, m := range s.Modes {
			telModes += m
		}
		for _, a := range s.Aborts {
			telAborts += a
		}
		telAttempts += s.Attempts
		telFallbacks += s.Fallbacks
	}
	if telModes != modes.Total() {
		t.Fatalf("telemetry commits %d != thread commits %d", telModes, modes.Total())
	}
	if telAttempts != attempts {
		t.Fatalf("telemetry attempts %d != thread attempts %d", telAttempts, attempts)
	}
	if telFallbacks != fallbacks {
		t.Fatalf("telemetry fallbacks %d != thread fallbacks %d", telFallbacks, fallbacks)
	}
	// Every attempt either committed in hardware or aborted.
	hwCommits := telModes - telFallbacks
	if telAttempts != hwCommits+telAborts {
		t.Fatalf("attempts %d != hw commits %d + aborts %d", telAttempts, hwCommits, telAborts)
	}
}
