package policy

import (
	"seer/internal/mem"
	"seer/internal/spinlock"
)

// Backoff implements randomized exponential backoff, the contention
// manager whose competitive bounds Alistarh et al. analyze in "The
// Transactional Conflict Problem": an aborted transaction waits a random
// number of cycles drawn uniformly from a per-thread window before
// retrying in hardware; the window doubles on every abort (up to a cap)
// and halves on every commit (down to a floor). It sits between blind
// retry (RTM) and precise serialization (Seer/Oracle): no conflict
// information is used, only the abort signal itself, yet the randomized
// waits de-synchronize conflicting threads with high probability.
//
// The wait is a bounded park on a per-thread key disjoint from every
// lock-word address, so the engine fast-forwards the virtual clock in one
// jump instead of simulating spin iterations, and no WakeKey can resume
// the thread early. Waits draw from the thread's deterministic PRNG
// stream, so schedules — and the telemetry timeline — stay bit-for-bit
// reproducible for a fixed seed.
type Backoff struct {
	SGL         spinlock.Lock
	MaxAttempts int
	// MinWindow and MaxWindow bound the per-thread backoff window in
	// cycles. The window never exceeds MaxWindow (the property tests pin
	// this) and never shrinks below MinWindow.
	MinWindow, MaxWindow uint64

	win    []uint64 // per hardware thread: current window (cycles)
	maxWin []uint64 // per hardware thread: high-water window
	waits  []uint64 // per hardware thread: completed backoff waits
	cycles []uint64 // per hardware thread: total cycles waited
}

// Default window bounds: one cache-miss-ish minimum up to roughly the
// cost of a few contended transactions.
const (
	DefaultMinWindow = 64
	DefaultMaxWindow = 16384
)

// backoffKeyBase tags park keys used for backoff waits. Lock parking
// keys are simulated-memory word addresses, which are always far below
// 1<<63, so no spinlock release's WakeKey can ever match a backoff key
// and cut a wait short.
const backoffKeyBase = uint64(1) << 63

// NewBackoff builds a Backoff policy with the default window bounds for
// a machine with hwThreads hardware threads.
func NewBackoff(sgl spinlock.Lock, maxAttempts, hwThreads int) *Backoff {
	p := &Backoff{
		SGL:         sgl,
		MaxAttempts: maxAttempts,
		MinWindow:   DefaultMinWindow,
		MaxWindow:   DefaultMaxWindow,
		win:         make([]uint64, hwThreads),
		maxWin:      make([]uint64, hwThreads),
		waits:       make([]uint64, hwThreads),
		cycles:      make([]uint64, hwThreads),
	}
	for i := range p.win {
		p.win[i] = p.MinWindow
		p.maxWin[i] = p.MinWindow
	}
	return p
}

// Name implements Policy.
func (p *Backoff) Name() string { return "Backoff" }

// Window returns a thread's current backoff window in cycles (for tests
// and reports).
func (p *Backoff) Window(hw int) uint64 { return p.win[hw] }

// Stats aggregates the per-thread counters: completed backoff waits,
// total cycles waited, and the largest window any thread reached.
func (p *Backoff) Stats() (waits, cycles, maxWindow uint64) {
	for i := range p.win {
		waits += p.waits[i]
		cycles += p.cycles[i]
		if p.maxWin[i] > maxWindow {
			maxWindow = p.maxWin[i]
		}
	}
	return waits, cycles, maxWindow
}

// grow doubles a thread's window after an abort, saturating at MaxWindow.
func (p *Backoff) grow(hw int) {
	w := p.win[hw] * 2
	if w > p.MaxWindow {
		w = p.MaxWindow
	}
	p.win[hw] = w
	if w > p.maxWin[hw] {
		p.maxWin[hw] = w
	}
}

// shrink halves a thread's window after a commit, flooring at MinWindow.
func (p *Backoff) shrink(hw int) {
	w := p.win[hw] / 2
	if w < p.MinWindow {
		w = p.MinWindow
	}
	p.win[hw] = w
}

// wait parks the thread for a uniform random draw from [1, window]
// cycles. The bounded park (maxPolls 1, no poller cost) resumes at
// exactly clock+d with no waker involved — a pure timed sleep whose
// skipped cycles the engine accounts like any parked lock wait.
func (p *Backoff) wait(t *Thread, hw int) {
	d := 1 + t.Ctx.Rand().Uint64()%p.win[hw]
	t.Ctx.ParkOn(backoffKeyBase|uint64(hw), d, 0, 1)
	p.waits[hw]++
	p.cycles[hw] += d
	t.Tel.AddBackoff(d)
}

// Run implements Policy: the RTM retry loop with a randomized
// exponential-backoff wait between hardware attempts.
func (p *Backoff) Run(t *Thread, txID int, obj uint64, body func(mem.Access)) {
	t.curTx = txID
	hw := t.Ctx.ID()
	for attempts := p.MaxAttempts; attempts > 0; attempts-- {
		if p.SGL.LockedFast(t.Mem) {
			spinSGL(t, p.SGL)
		}
		if attempt(t, p.SGL, body) == 0 {
			p.shrink(hw)
			t.commit(ModeHTM)
			return
		}
		p.grow(hw)
		if attempts > 1 {
			p.wait(t, hw)
		}
	}
	runSGL(t, p.SGL, body)
}
