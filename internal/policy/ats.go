package policy

import (
	"seer/internal/mem"
	"seer/internal/spinlock"
)

// ATS implements Adaptive Transaction Scheduling (Yoo & Lee, SPAA 2008),
// the one prior scheduler that — like Seer — needs no precise conflict
// feedback. Each thread maintains a contention intensity CI as an
// exponential moving average of its abort outcomes; when CI exceeds a
// threshold, the thread dispatches its transactions serially through a
// central scheduling lock. The paper classifies ATS as coarse-grained:
// one contention signal and one lock, so it alternates between full
// serialization and full concurrency. It is provided as an additional
// baseline beyond the paper's HLE/RTM/SCM trio.
type ATS struct {
	SGL         spinlock.Lock
	Sched       spinlock.Lock // central dispatch lock
	MaxAttempts int
	// Alpha is the CI smoothing factor (0.75 in the original paper);
	// Threshold is the serialization trigger (0.5).
	Alpha     float64
	Threshold float64

	ci []float64 // per hardware thread contention intensity
}

// NewATS builds an ATS policy with the original paper's parameters.
func NewATS(sgl, sched spinlock.Lock, maxAttempts, hwThreads int) *ATS {
	return &ATS{
		SGL:         sgl,
		Sched:       sched,
		MaxAttempts: maxAttempts,
		Alpha:       0.75,
		Threshold:   0.5,
		ci:          make([]float64, hwThreads),
	}
}

// Name implements Policy.
func (p *ATS) Name() string { return "ATS" }

// CI returns a thread's current contention intensity (for tests).
func (p *ATS) CI(hw int) float64 { return p.ci[hw] }

func (p *ATS) observe(hw int, aborted bool) {
	if aborted {
		p.ci[hw] = p.Alpha*p.ci[hw] + (1 - p.Alpha)
	} else {
		p.ci[hw] = p.Alpha * p.ci[hw]
	}
}

// Run implements Policy.
func (p *ATS) Run(t *Thread, txID int, obj uint64, body func(mem.Access)) {
	t.curTx = txID
	hw := t.Ctx.ID()
	serialized := false
	if p.ci[hw] > p.Threshold {
		// High contention: dispatch serially through the central lock.
		start, skipped := t.lockWaitBegin()
		p.Sched.Acquire(t.Ctx, t.Mem)
		t.lockWaitEnd(start, skipped)
		serialized = true
	}
	defer func() {
		if serialized {
			p.Sched.ReleaseOwned(t.Ctx, t.Mem)
		}
	}()

	for attempts := p.MaxAttempts; attempts > 0; attempts-- {
		if p.SGL.LockedFast(t.Mem) {
			spinSGL(t, p.SGL)
		}
		if attempt(t, p.SGL, body) == 0 {
			p.observe(hw, false)
			if serialized {
				t.commit(ModeHTMAux)
			} else {
				t.commit(ModeHTM)
			}
			return
		}
		p.observe(hw, true)
		// A thread that crosses the threshold mid-transaction joins the
		// serial queue before retrying, as in the original design.
		if !serialized && p.ci[hw] > p.Threshold {
			start, skipped := t.lockWaitBegin()
			p.Sched.Acquire(t.Ctx, t.Mem)
			t.lockWaitEnd(start, skipped)
			serialized = true
		}
	}
	if serialized {
		p.Sched.ReleaseOwned(t.Ctx, t.Mem)
		serialized = false
	}
	runSGL(t, p.SGL, body)
}
