// Package policy implements the software side of the TM runtime: the
// retry loop around hardware transactions and the fall-back management.
// It provides the four approaches compared in the paper's evaluation —
// HLE, RTM, SCM and Seer — plus the Seer ablation variants used by
// Figures 4 and 5, all over a uniform interface so the benchmark harness
// and the public API can swap them freely.
//
// A transaction body is written against mem.Access and is executed either
// inside a hardware transaction (htm.Tx) or, on the fall-back path, with
// direct accesses while holding the single-global lock (mem.Direct); the
// body must therefore be idempotent up to its memory writes, like any
// HTM+SGL critical section.
package policy

import (
	"fmt"

	"seer/internal/core"
	"seer/internal/htm"
	"seer/internal/machine"
	"seer/internal/mem"
	"seer/internal/spinlock"
	"seer/internal/telemetry"
	"seer/internal/trace"
	"seer/internal/txtrace"
)

// Mode classifies how a transaction finally committed; the breakdown of
// Table 3 is a histogram over these.
type Mode int

// Transaction commit modes.
const (
	ModeHTM       Mode = iota // hardware transaction, no auxiliary locks
	ModeHTMAux                // hardware transaction under SCM's auxiliary lock
	ModeHTMTx                 // hardware transaction holding Seer tx locks
	ModeHTMCore               // hardware transaction holding a Seer core lock
	ModeHTMTxCore             // hardware transaction holding both kinds
	ModeSGL                   // single-global-lock software fall-back
	ModeSTM                   // software (STM) commit path of the phased runtime
	NumModes
)

// String returns the Table 3 row label of the mode.
func (m Mode) String() string {
	switch m {
	case ModeHTM:
		return "HTM no locks"
	case ModeHTMAux:
		return "HTM + Aux lock"
	case ModeHTMTx:
		return "HTM + Tx Locks"
	case ModeHTMCore:
		return "HTM + Core Locks"
	case ModeHTMTxCore:
		return "HTM + Tx + Core Locks"
	case ModeSGL:
		return "SGL fall-back"
	case ModeSTM:
		return "STM sw-mode"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ModeCounts is a histogram of commit modes.
type ModeCounts [NumModes]uint64

// Total returns the number of committed transactions across modes.
func (mc *ModeCounts) Total() uint64 {
	var t uint64
	for _, v := range mc {
		t += v
	}
	return t
}

// Add accumulates other into mc.
func (mc *ModeCounts) Add(other ModeCounts) {
	for i := range mc {
		mc[i] += other[i]
	}
}

// Fraction returns mode m's share of all commits, in [0, 1].
func (mc *ModeCounts) Fraction(m Mode) float64 {
	t := mc.Total()
	if t == 0 {
		return 0
	}
	return float64(mc[m]) / float64(t)
}

// Thread is the per-worker runtime state shared by all policies.
type Thread struct {
	Ctx    *machine.Ctx
	Mem    *mem.Memory
	HTM    *htm.Unit
	Direct *mem.Direct
	Modes  ModeCounts
	Trace  *trace.Log         // nil disables event tracing
	Tel    *telemetry.Shard   // nil disables interval metrics
	Spans  *txtrace.Collector // nil disables attempt tracing/attribution

	Seer      *core.ThreadState // non-nil only under the Seer policy
	Attempts  uint64            // hardware attempts issued
	Fallbacks uint64            // SGL acquisitions
	curTx     int               // txID of the in-flight Run, for tracing
}

// lockWaitBegin samples the clock and the engine's park counter before a
// lock wait; lockWaitEnd charges the elapsed cycles to the thread's
// lock-wait telemetry and mirrors how many of them were fast-forwarded by
// parking rather than simulated spin iterations.
func (t *Thread) lockWaitBegin() (startClock, startSkipped uint64) {
	return t.Ctx.Clock(), t.Ctx.ParkSkipped()
}

func (t *Thread) lockWaitEnd(startClock, startSkipped uint64) {
	t.Tel.AddLockWait(t.Ctx.Clock() - startClock)
	t.Tel.AddParkSkipped(t.Ctx.ParkSkipped() - startSkipped)
}

// commit records a committed transaction in mode m, in both the
// end-of-run histogram and the interval telemetry.
func (t *Thread) commit(m Mode) {
	t.Modes[m]++
	t.Tel.IncMode(int(m))
}

// abortCause maps an HTM status to telemetry's cause breakdown, with the
// same priority order as htm's own counters.
func abortCause(s htm.Status) telemetry.Cause {
	switch {
	case s.Conflict():
		return telemetry.CauseConflict
	case s.Capacity():
		return telemetry.CauseCapacity
	case s.Explicit():
		return telemetry.CauseExplicit
	case s&htm.BitSpurious != 0:
		return telemetry.CauseSpurious
	default:
		return telemetry.CauseOther
	}
}

// NewThread builds the runtime state for ctx's hardware thread.
func NewThread(ctx *machine.Ctx, m *mem.Memory, u *htm.Unit) *Thread {
	cost := ctx.Machine().Cost
	d := mem.NewDirect(m, ctx.ID(), ctx.Tick, cost.DirectLoad, cost.DirectStore, cost.Work)
	// Direct Work is pure computation: route it through TickPure so
	// fall-back and sequential compute stretches can run under a
	// speculative quantum (loads/stores keep the impure tick).
	d.SetWorkTick(ctx.TickPure)
	return &Thread{
		Ctx:    ctx,
		Mem:    m,
		HTM:    u,
		Direct: d,
	}
}

// Policy runs transaction bodies to completion under some scheduling
// discipline.
type Policy interface {
	// Name identifies the policy in reports ("HLE", "RTM", ...).
	Name() string
	// Run executes body atomically for atomic block txID on t's thread,
	// retrying as the policy dictates, and records the commit mode. obj
	// is the object identifier used by Seer's object-granular locking
	// extension; other policies ignore it (pass 0 when unknown).
	Run(t *Thread, txID int, obj uint64, body func(mem.Access))
}

// attempt runs body once as a hardware transaction that first subscribes
// to the single-global lock (aborting explicitly if it is held, to stay
// correct with respect to the fall-back path).
func attempt(t *Thread, sgl spinlock.Lock, body func(mem.Access)) htm.Status {
	t.Attempts++
	t.Tel.IncAttempt()
	t.Trace.Record(t.Ctx.Clock(), t.Ctx.ID(), trace.EvBegin, t.curTx, 0)
	t.Spans.AttemptBegin(t.Ctx.ID(), t.Ctx.Clock())
	status := t.HTM.Run(t.Ctx, func(tx *htm.Tx) {
		if sgl.LockedTx(tx) {
			tx.Abort(spinlock.CodeSGLHeld)
		}
		body(tx)
	})
	if status == 0 {
		t.Trace.Record(t.Ctx.Clock(), t.Ctx.ID(), trace.EvCommit, t.curTx, 0)
		t.Spans.AttemptCommit(t.Ctx.ID(), t.Ctx.Clock())
	} else {
		t.Tel.IncAbort(abortCause(status))
		t.Trace.Record(t.Ctx.Clock(), t.Ctx.ID(), trace.EvAbort, t.curTx, uint32(status))
		t.Spans.AttemptAbort(t.Ctx.ID(), t.Ctx.Clock(), uint32(status), txtrace.Cause(abortCause(status)))
	}
	return status
}

// runSGL executes body under the single-global lock on the software path.
func runSGL(t *Thread, sgl spinlock.Lock, body func(mem.Access)) {
	t.Trace.Record(t.Ctx.Clock(), t.Ctx.ID(), trace.EvFallback, t.curTx, 0)
	begin := t.Ctx.Clock()
	start, skipped := t.lockWaitBegin()
	sgl.Acquire(t.Ctx, t.Mem)
	t.lockWaitEnd(start, skipped)
	body(t.Direct)
	sgl.Release(t.Ctx, t.Mem)
	t.Fallbacks++
	t.Tel.IncFallback()
	t.commit(ModeSGL)
	t.Spans.Fallback(t.Ctx.ID(), begin, t.Ctx.Clock())
}

// spinSGL waits out a held single-global lock (lemming avoidance),
// charging the spin to the thread's lock-wait telemetry.
func spinSGL(t *Thread, sgl spinlock.Lock) {
	t.Trace.Record(t.Ctx.Clock(), t.Ctx.ID(), trace.EvWait, t.curTx, 0)
	start, skipped := t.lockWaitBegin()
	sgl.SpinWhileLocked(t.Ctx, t.Mem)
	t.lockWaitEnd(start, skipped)
}

// --- HLE ---

// HLE models hardware lock elision: a single hardware attempt per
// acquisition and no software contention management, so it suffers the
// lemming effect — once the elided lock is taken, waiting threads abort
// and acquire it in turn, convoying the system onto the lock.
type HLE struct {
	SGL spinlock.Lock
}

// Name implements Policy.
func (p *HLE) Name() string { return "HLE" }

// Run implements Policy.
func (p *HLE) Run(t *Thread, txID int, obj uint64, body func(mem.Access)) {
	t.curTx = txID
	// An elided spinlock acquisition spins until the lock is observed
	// free, then elides — one speculative attempt (the hardware's retry
	// budget is minimal and not software-controlled). Any abort falls
	// back to acquiring the lock for real, which in turn aborts every
	// concurrent elision: the lemming cascade.
	if p.SGL.LockedFast(t.Mem) {
		spinSGL(t, p.SGL)
	}
	if attempt(t, p.SGL, body) == 0 {
		t.commit(ModeHTM)
		return
	}
	runSGL(t, p.SGL, body)
}

// --- RTM ---

// RTM is the standard software retry loop used with Intel TSX: up to
// MaxAttempts hardware attempts, waiting for the single-global lock to be
// free before each (lemming avoidance), then the SGL fall-back. With its
// single lock and global contention response this is the ATS-like
// baseline of the paper.
type RTM struct {
	SGL         spinlock.Lock
	MaxAttempts int
}

// Name implements Policy.
func (p *RTM) Name() string { return "RTM" }

// Run implements Policy.
func (p *RTM) Run(t *Thread, txID int, obj uint64, body func(mem.Access)) {
	t.curTx = txID
	for attempts := p.MaxAttempts; attempts > 0; attempts-- {
		if p.SGL.LockedFast(t.Mem) {
			spinSGL(t, p.SGL)
		}
		if attempt(t, p.SGL, body) == 0 {
			t.commit(ModeHTM)
			return
		}
	}
	runSGL(t, p.SGL, body)
}

// --- SCM ---

// SCM implements Software-assisted Conflict Management (Afek et al.,
// PODC 2014): a transaction that aborts acquires an auxiliary lock before
// retrying in hardware, so at most one previously-aborted transaction runs
// at a time, curing the lemming effect at the cost of serializing all
// restarting transactions behind one lock.
type SCM struct {
	SGL         spinlock.Lock
	Aux         spinlock.Lock
	MaxAttempts int
}

// Name implements Policy.
func (p *SCM) Name() string { return "SCM" }

// Run implements Policy.
func (p *SCM) Run(t *Thread, txID int, obj uint64, body func(mem.Access)) {
	t.curTx = txID
	holdingAux := false
	defer func() {
		if holdingAux {
			p.Aux.ReleaseOwned(t.Ctx, t.Mem)
		}
	}()
	for attempts := p.MaxAttempts; attempts > 0; attempts-- {
		if p.SGL.LockedFast(t.Mem) {
			spinSGL(t, p.SGL)
		}
		if attempt(t, p.SGL, body) == 0 {
			if holdingAux {
				p.Aux.ReleaseOwned(t.Ctx, t.Mem)
				holdingAux = false
				t.commit(ModeHTMAux)
			} else {
				t.commit(ModeHTM)
			}
			return
		}
		if !holdingAux && attempts > 1 {
			start, skipped := t.lockWaitBegin()
			p.Aux.Acquire(t.Ctx, t.Mem)
			t.lockWaitEnd(start, skipped)
			holdingAux = true
		}
	}
	if holdingAux {
		p.Aux.ReleaseOwned(t.Ctx, t.Mem)
		holdingAux = false
	}
	runSGL(t, p.SGL, body)
}

// --- Seer ---

// Seer drives the scheduler of internal/core through the retry loop of
// the paper's Algorithms 1 and 2.
type Seer struct {
	SGL         spinlock.Lock
	MaxAttempts int
	Sched       *core.Seer
}

// Name implements Policy.
func (p *Seer) Name() string { return "Seer" }

// Run implements Policy.
func (p *Seer) Run(t *Thread, txID int, obj uint64, body func(mem.Access)) {
	t.curTx = txID
	ts := t.Seer
	p.Sched.Start(ts, txID, obj)
	attempts := p.MaxAttempts
	for {
		waitStart, waitSkipped := t.lockWaitBegin()
		p.Sched.WaitLocks(ts, txID, p.SGL)
		t.lockWaitEnd(waitStart, waitSkipped)
		status := attempt(t, p.SGL, body)
		if status == 0 {
			p.Sched.RegisterCommit(ts, txID)
			t.commit(seerMode(ts))
			p.Sched.ReleaseLocks(ts)
			p.Sched.Finish(ts)
			return
		}
		p.Sched.RegisterAbort(ts, txID)
		attempts--
		if attempts == 0 {
			p.Sched.ReleaseLocks(ts)
			runSGL(t, p.SGL, body)
			p.Sched.Finish(ts)
			return
		}
		acqStart, acqSkipped := t.lockWaitBegin()
		p.Sched.AcquireLocks(ts, txID, status, attempts)
		t.lockWaitEnd(acqStart, acqSkipped)
	}
}

// seerMode classifies a hardware commit by the Seer locks held.
func seerMode(ts *core.ThreadState) Mode {
	switch {
	case ts.HoldsTxLocks() && ts.AcquiredCoreLock:
		return ModeHTMTxCore
	case ts.HoldsTxLocks():
		return ModeHTMTx
	case ts.AcquiredCoreLock:
		return ModeHTMCore
	default:
		return ModeHTM
	}
}

// --- Sequential baseline ---

// Sequential executes bodies directly with no transactions or locks; the
// harness uses it single-threaded as the paper's "sequential
// non-instrumented" speedup baseline.
type Sequential struct{}

// Name implements Policy.
func (p *Sequential) Name() string { return "seq" }

// Run implements Policy.
func (p *Sequential) Run(t *Thread, txID int, obj uint64, body func(mem.Access)) {
	t.commit(ModeHTM) // counted as plain executions
	body(t.Direct)
}
