package policy

import (
	"testing"
	"testing/quick"

	"seer/internal/machine"
	"seer/internal/mem"
	"seer/internal/spinlock"
)

// TestBackoffAtomicity: the backoff policy preserves atomicity and uses
// only the two RTM modes (plain hardware commits and SGL fall-backs —
// backoff never takes scheduler locks).
func TestBackoffAtomicity(t *testing.T) {
	r := newRig(t, 4)
	pol := NewBackoff(r.sgl, 5, 4)
	modes := r.runCounter(t, pol, 4, 100)
	if modes[ModeHTMAux] != 0 || modes[ModeHTMTx] != 0 || modes[ModeHTMCore] != 0 {
		t.Fatalf("Backoff used lock modes: %v", modes)
	}
	waits, cycles, maxWin := pol.Stats()
	if waits == 0 || cycles == 0 {
		t.Fatalf("no backoff waits under 4-thread contention: waits=%d cycles=%d", waits, cycles)
	}
	if cycles < waits { // every wait is at least one cycle
		t.Fatalf("cycles %d < waits %d", cycles, waits)
	}
	if maxWin > pol.MaxWindow {
		t.Fatalf("high-water window %d exceeds cap %d", maxWin, pol.MaxWindow)
	}
}

// TestBackoffWindowBounds is the property test for the window dynamics:
// under any sequence of grows (aborts) and shrinks (commits) the window
// stays within [MinWindow, MaxWindow], the high-water mark never exceeds
// the cap, and a shrink never increases the window.
func TestBackoffWindowBounds(t *testing.T) {
	prop := func(ops []bool) bool {
		p := NewBackoff(spinlock.Lock{}, 5, 1)
		for _, growOp := range ops {
			before := p.Window(0)
			if growOp {
				p.grow(0)
			} else {
				p.shrink(0)
				if p.Window(0) > before {
					return false
				}
			}
			w := p.Window(0)
			if w < p.MinWindow || w > p.MaxWindow {
				return false
			}
			if p.maxWin[0] > p.MaxWindow {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestBackoffWindowSaturatesAndFloors: the window saturates exactly at
// the cap under repeated aborts and floors exactly at the minimum under
// repeated commits.
func TestBackoffWindowSaturatesAndFloors(t *testing.T) {
	p := NewBackoff(spinlock.Lock{}, 5, 1)
	for i := 0; i < 64; i++ {
		p.grow(0)
	}
	if p.Window(0) != p.MaxWindow {
		t.Fatalf("window %d after 64 grows, want cap %d", p.Window(0), p.MaxWindow)
	}
	for i := 0; i < 64; i++ {
		p.shrink(0)
	}
	if p.Window(0) != p.MinWindow {
		t.Fatalf("window %d after 64 shrinks, want floor %d", p.Window(0), p.MinWindow)
	}
}

// TestBackoffShrinksAfterCommit: a committing transaction halves the
// thread's window (down to the floor) — the policy must not stay maximally
// backed off once contention clears.
func TestBackoffShrinksAfterCommit(t *testing.T) {
	r := newRig(t, 1)
	pol := NewBackoff(r.sgl, 5, 1)
	counter := r.m.AllocLines(1)
	pol.win[0] = pol.MaxWindow // as if deeply backed off
	if _, err := r.eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		th := NewThread(c, r.m, r.u)
		pol.Run(th, 0, 0, func(a mem.Access) {
			a.Store(counter, a.Load(counter)+1)
		})
	}}); err != nil {
		t.Fatal(err)
	}
	if got, want := pol.Window(0), pol.MaxWindow/2; got != want {
		t.Fatalf("window after commit = %d, want %d", got, want)
	}
}

// TestBackoffDeterminism: two systems with identical seeds produce
// identical backoff counters — the waits draw only from the per-thread
// deterministic PRNG streams.
func TestBackoffDeterminism(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		r := newRig(t, 4)
		pol := NewBackoff(r.sgl, 5, 4)
		r.runCounter(t, pol, 4, 100)
		return pol.Stats()
	}
	w1, c1, m1 := run()
	w2, c2, m2 := run()
	if w1 != w2 || c1 != c2 || m1 != m2 {
		t.Fatalf("backoff counters diverged across same-seed runs: (%d,%d,%d) vs (%d,%d,%d)",
			w1, c1, m1, w2, c2, m2)
	}
}

// TestBackoffCommitPathZeroAllocs: the uncontended commit path — attempt,
// shrink, commit — must not touch the heap in steady state.
func TestBackoffCommitPathZeroAllocs(t *testing.T) {
	r := newRig(t, 1)
	pol := NewBackoff(r.sgl, 5, 1)
	counter := r.m.AllocLines(1)
	if _, err := r.eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		th := NewThread(c, r.m, r.u)
		body := func(a mem.Access) {
			a.Store(counter, a.Load(counter)+1)
		}
		pol.Run(th, 0, 0, body) // warm-up
		allocs := testing.AllocsPerRun(100, func() {
			pol.Run(th, 0, 0, body)
		})
		if allocs != 0 {
			t.Errorf("steady-state Backoff commit path allocates %.1f per run, want 0", allocs)
		}
	}}); err != nil {
		t.Fatal(err)
	}
}

// TestBackoffAbortPathZeroAllocs: the abort path — grow, randomized
// bounded park, retry, SGL fall-back — must not touch the heap in steady
// state either. Capacity aborts (32 lines against a 16-line write budget)
// force every attempt down the wait path.
func TestBackoffAbortPathZeroAllocs(t *testing.T) {
	r := newRig(t, 1)
	pol := NewBackoff(r.sgl, 3, 1)
	region := r.m.AllocLines(40)
	if _, err := r.eng.Run([]func(*machine.Ctx){func(c *machine.Ctx) {
		th := NewThread(c, r.m, r.u)
		body := func(a mem.Access) {
			base := region
			for i := 0; i < 32; i++ {
				a.Store(base, 1)
				base += mem.LineWords
			}
		}
		pol.Run(th, 0, 0, body) // warm-up sizes the event queue
		waits0, _, _ := pol.Stats()
		if waits0 == 0 {
			t.Fatal("warm-up issued no backoff waits; the guard would measure nothing")
		}
		allocs := testing.AllocsPerRun(100, func() {
			pol.Run(th, 0, 0, body)
		})
		if allocs != 0 {
			t.Errorf("steady-state Backoff abort path allocates %.1f per run, want 0", allocs)
		}
	}}); err != nil {
		t.Fatal(err)
	}
}
