package policy

import (
	"fmt"

	"seer/internal/htm"
	"seer/internal/mem"
	"seer/internal/spinlock"
	"seer/internal/trace"
	"seer/internal/txtrace"
)

// PhaseMode is the global execution mode of the phased-TM runtime, in the
// spirit of PhTM-Star's mode indicator: all threads consult one mode word
// and follow its current phase.
type PhaseMode int

// Phases. The numeric values are the trace.EvPhase payload encoding and
// the telemetry occupancy slots, so they must stay stable.
const (
	PhaseHW    PhaseMode = iota // hardware attempts with SGL fall-back
	PhaseSW                     // software (STM) commit path
	PhaseGLOCK                  // single-global-lock serialization
	PhaseCount
)

// String returns the phase mnemonic.
func (m PhaseMode) String() string {
	switch m {
	case PhaseHW:
		return "HW"
	case PhaseSW:
		return "SW"
	case PhaseGLOCK:
		return "GLOCK"
	default:
		return fmt.Sprintf("Phase(%d)", int(m))
	}
}

// DefaultSWRuns is the deferral persistence: how many software-mode
// completions a capacity-deferred thread performs before its deferral is
// considered drained. Values above one are the hysteresis that keeps a
// capacity-bound block in SW mode across its next few executions (it
// would almost certainly capacity-abort again) instead of ping-ponging
// HW → capacity abort → SW on every single execution.
const DefaultSWRuns = 4

// Phased is the phased-TM policy ("PhTM"): a PhTM-Star-style global mode
// word with HW ↔ SW ↔ GLOCK transitions driven by deferred/undeferred
// counters.
//
//   - In HW mode it behaves like RTM: up to MaxAttempts hardware attempts
//     with lemming avoidance, then the SGL (bracketed by GLOCK
//     transitions). A capacity abort, however, does not burn retries on
//     an attempt that cannot ever fit — it defers the thread to SW mode
//     (deferred count++, mode → SW).
//   - In SW mode every thread runs the software commit path (htm.RunSW):
//     slower per access but with no footprint limit and no global
//     serialization, so disjoint capacity-bound blocks commit
//     concurrently where an SGL fall-back would serialize the machine.
//     Each software completion by a deferred thread drains its deferral
//     budget; when the global deferred count reaches zero the mode
//     returns to HW (undeferred).
//   - GLOCK is entered only when a thread exhausts its retry budget on
//     data conflicts (HW or SW); it brackets the single-global-lock
//     acquisition so mode occupancy accounts for serialized stretches.
//
// All mode decisions read and write plain fields between scheduling
// points of the single-goroutine engine, at deterministic virtual-time
// points — schedules and reports are byte-identical for a fixed seed.
// Unlike real PhTM, the mode word is pure scheduling policy, not a
// correctness mechanism: hardware and software transactions share the
// conflict registry, so cross-mode conflicts are detected physically and
// any interleaving of modes is serializable (see DESIGN.md §6k).
type Phased struct {
	SGL         spinlock.Lock
	MaxAttempts int
	SWRuns      int // deferral persistence (hysteresis), ≥ 1

	mode        PhaseMode
	deferred    int   // threads currently holding a deferral
	deferBudget []int // per-hw remaining SW completions of its deferral
	glockDepth  int   // threads inside the GLOCK bracket

	// Cumulative statistics for reports and the telemetry phase probe.
	deferrals   uint64
	undeferrals uint64
	transitions uint64
	swAttempts  uint64
	swCommits   uint64
	swAborts    uint64
	occupancy   [PhaseCount]uint64
	lastSwitch  uint64
}

// NewPhased builds the phased policy for a machine with hwThreads
// hardware threads.
func NewPhased(sgl spinlock.Lock, maxAttempts, hwThreads int) *Phased {
	return &Phased{
		SGL:         sgl,
		MaxAttempts: maxAttempts,
		SWRuns:      DefaultSWRuns,
		deferBudget: make([]int, hwThreads),
	}
}

// Name implements Policy.
func (p *Phased) Name() string { return "PhTM" }

// Mode returns the current global execution mode.
func (p *Phased) Mode() PhaseMode { return p.mode }

// PhasedStats is the end-of-run snapshot of the phased runtime's counters.
type PhasedStats struct {
	Deferrals   uint64 // capacity aborts routed to SW mode
	Undeferrals uint64 // deferrals drained (budget exhausted)
	Transitions uint64 // global mode-word changes
	SWAttempts  uint64 // software attempts issued
	SWCommits   uint64 // software commits
	SWAborts    uint64 // software aborts (conflict or SGL subscription)
	// Occupancy is the virtual-cycle split across phases, with the
	// still-open phase segment credited up to the given makespan.
	Occupancy [PhaseCount]uint64
}

// Stats reports the cumulative counters as of virtual time makespan.
func (p *Phased) Stats(makespan uint64) PhasedStats {
	_, occ := p.PhaseCounters(makespan)
	return PhasedStats{
		Deferrals:   p.deferrals,
		Undeferrals: p.undeferrals,
		Transitions: p.transitions,
		SWAttempts:  p.swAttempts,
		SWCommits:   p.swCommits,
		SWAborts:    p.swAborts,
		Occupancy:   occ,
	}
}

// PhaseCounters is the telemetry phase probe (telemetry.PhaseProbe): the
// cumulative transition count and per-phase occupancy as of virtual time
// now, with the open segment credited to the current phase.
func (p *Phased) PhaseCounters(now uint64) (transitions uint64, occupancy [PhaseCount]uint64) {
	occupancy = p.occupancy
	if now > p.lastSwitch {
		occupancy[p.mode] += now - p.lastSwitch
	}
	return p.transitions, occupancy
}

// setMode advances the global mode word at the current virtual time,
// crediting the elapsed segment to the outgoing phase and recording the
// transition in the event log. The clamp (now > lastSwitch) keeps the
// accounting monotone across repeated Runs, whose clocks restart at zero.
func (p *Phased) setMode(t *Thread, m PhaseMode) {
	if m == p.mode {
		return
	}
	now := t.Ctx.Clock()
	if now > p.lastSwitch {
		p.occupancy[p.mode] += now - p.lastSwitch
	}
	p.lastSwitch = now
	old := p.mode
	p.mode = m
	p.transitions++
	t.Trace.Record2(now, t.Ctx.ID(), trace.EvPhase, -1, uint32(m), uint32(old))
}

// Run implements Policy.
func (p *Phased) Run(t *Thread, txID int, obj uint64, body func(mem.Access)) {
	t.curTx = txID
	for {
		// Dispatch on the mode word. While GLOCK is held the run keeps
		// its deferral-driven routing: deferred work stays software.
		if p.mode == PhaseSW || (p.mode == PhaseGLOCK && p.deferred > 0) {
			if p.runSW(t, body) {
				return
			}
		} else if p.runHW(t, body) {
			return
		}
	}
}

// runHW is the hardware phase: an RTM-style retry loop, except that a
// capacity abort defers the thread to SW mode instead of burning the
// remaining retries on a footprint that can never fit. Returns true when
// body committed; false means the caller must redispatch (the mode moved
// to SW).
func (p *Phased) runHW(t *Thread, body func(mem.Access)) bool {
	for attempts := p.MaxAttempts; attempts > 0; attempts-- {
		if p.SGL.LockedFast(t.Mem) {
			spinSGL(t, p.SGL)
		}
		status := attempt(t, p.SGL, body)
		if status == 0 {
			t.commit(ModeHTM)
			return true
		}
		if status.Capacity() {
			p.deferToSW(t)
			return false
		}
	}
	p.runGlock(t, body)
	return true
}

// runSW is the software phase: up to MaxAttempts STM attempts, then the
// GLOCK bracket. Returns true when body committed; false means the mode
// returned to HW before a commit and the caller must redispatch.
func (p *Phased) runSW(t *Thread, body func(mem.Access)) bool {
	hw := t.Ctx.ID()
	for attempts := p.MaxAttempts; attempts > 0; attempts-- {
		if p.SGL.LockedFast(t.Mem) {
			spinSGL(t, p.SGL)
		}
		status := p.swAttempt(t, body)
		if status == 0 {
			t.commit(ModeSTM)
			p.swDone(t, hw)
			return true
		}
		if p.mode == PhaseHW {
			// Undeferred while we were aborting: rejoin the HW phase.
			return false
		}
	}
	p.runGlock(t, body)
	p.swDone(t, hw) // a serialized commit drains the deferral too
	return true
}

// deferToSW routes a capacity-aborting thread to the software phase:
// its deferral budget is (re)armed and the global mode word moves to SW.
func (p *Phased) deferToSW(t *Thread) {
	hw := t.Ctx.ID()
	if p.deferBudget[hw] == 0 {
		p.deferred++
	}
	p.deferrals++
	p.deferBudget[hw] = p.SWRuns
	if p.mode == PhaseHW {
		p.setMode(t, PhaseSW)
	}
}

// swDone accounts one software-phase completion (STM or GLOCK commit) by
// hw: a deferred thread drains one unit of its budget, and when the last
// deferral drains the mode word returns to HW.
func (p *Phased) swDone(t *Thread, hw int) {
	if p.deferBudget[hw] == 0 {
		return
	}
	p.deferBudget[hw]--
	if p.deferBudget[hw] > 0 {
		return
	}
	p.deferred--
	p.undeferrals++
	if p.deferred == 0 && p.mode == PhaseSW {
		p.setMode(t, PhaseHW)
	}
}

// runGlock serializes body on the single global lock, bracketed by GLOCK
// transitions so mode occupancy accounts for the serialized stretch. The
// depth counter keeps the mode word in GLOCK while any thread is queued
// on or holding the lock through this path.
func (p *Phased) runGlock(t *Thread, body func(mem.Access)) {
	if p.glockDepth == 0 {
		p.setMode(t, PhaseGLOCK)
	}
	p.glockDepth++
	runSGL(t, p.SGL, body)
	p.glockDepth--
	if p.glockDepth == 0 && p.mode == PhaseGLOCK {
		if p.deferred > 0 {
			p.setMode(t, PhaseSW)
		} else {
			p.setMode(t, PhaseHW)
		}
	}
}

// swAttempt runs body once on the software commit path, subscribed to the
// single-global lock exactly like a hardware attempt (a software
// transaction must not commit while an SGL holder is mid-critical-
// section; loading the lock word registers it, so the holder's release
// store dooms the subscriber — the same strong-isolation argument as the
// hardware path).
func (p *Phased) swAttempt(t *Thread, body func(mem.Access)) htm.Status {
	p.swAttempts++
	t.Tel.IncAttempt()
	t.Trace.Record(t.Ctx.Clock(), t.Ctx.ID(), trace.EvBegin, t.curTx, 0)
	t.Spans.AttemptBegin(t.Ctx.ID(), t.Ctx.Clock())
	status := t.HTM.RunSW(t.Ctx, func(tx *htm.Tx) {
		if p.SGL.LockedTx(tx) {
			tx.Abort(spinlock.CodeSGLHeld)
		}
		body(tx)
	})
	if status == 0 {
		p.swCommits++
		t.Trace.Record(t.Ctx.Clock(), t.Ctx.ID(), trace.EvCommit, t.curTx, 0)
		t.Spans.AttemptCommit(t.Ctx.ID(), t.Ctx.Clock())
	} else {
		p.swAborts++
		t.Tel.IncAbort(abortCause(status))
		t.Trace.Record(t.Ctx.Clock(), t.Ctx.ID(), trace.EvAbort, t.curTx, uint32(status))
		t.Spans.AttemptAbort(t.Ctx.ID(), t.Ctx.Clock(), uint32(status), txtrace.Cause(abortCause(status)))
	}
	return status
}
