// Package stats implements the commit/abort statistics that feed Seer's
// probabilistic inference: per-thread matrices counting, for every pair of
// atomic blocks (x, y), how often x committed or aborted while y was
// observed running concurrently, plus the probability machinery of the
// paper's Algorithm 5 (conditional and conjunctive abort probabilities and
// the Gaussian percentile cut-off).
package stats

import (
	"fmt"
	"math"
)

// Matrices holds the abort/commit co-occurrence counts for one thread (or,
// after merging, for the whole program). Entry (x, y) counts events of
// transaction x in which transaction y was seen in the active-transactions
// list.
//
// The three count arrays are views into one backing buffer, so Reset and
// MergeFrom — both on Seer's periodic scheme-update path — are a single
// clear/loop over contiguous memory.
type Matrices struct {
	n       int
	buf     []uint64 // commits ‖ aborts ‖ execs, 2n²+n words
	commits []uint64
	aborts  []uint64
	execs   []uint64
}

// NewMatrices creates zeroed matrices for n atomic blocks.
func NewMatrices(n int) *Matrices {
	if n <= 0 {
		panic("stats: NewMatrices with non-positive n")
	}
	buf := make([]uint64, 2*n*n+n)
	return &Matrices{
		n:       n,
		buf:     buf,
		commits: buf[: n*n : n*n],
		aborts:  buf[n*n : 2*n*n : 2*n*n],
		execs:   buf[2*n*n:],
	}
}

// N returns the number of atomic blocks.
func (m *Matrices) N() int { return m.n }

// AddCommit records that x committed while y was active.
func (m *Matrices) AddCommit(x, y int) { m.commits[x*m.n+y]++ }

// AddAbort records that x aborted while y was active.
func (m *Matrices) AddAbort(x, y int) { m.aborts[x*m.n+y]++ }

// IncExec records one execution (commit or abort) of x.
func (m *Matrices) IncExec(x int) { m.execs[x]++ }

// Commits returns commitStats[x][y].
func (m *Matrices) Commits(x, y int) uint64 { return m.commits[x*m.n+y] }

// Aborts returns abortStats[x][y].
func (m *Matrices) Aborts(x, y int) uint64 { return m.aborts[x*m.n+y] }

// Execs returns executions[x].
func (m *Matrices) Execs(x int) uint64 { return m.execs[x] }

// TotalExecs returns the sum of executions over all atomic blocks.
func (m *Matrices) TotalExecs() uint64 {
	var t uint64
	for _, e := range m.execs {
		t += e
	}
	return t
}

// MergeFrom adds src's counts into m. Both must have the same dimension.
// It is one fused loop over the contiguous backing buffers.
func (m *Matrices) MergeFrom(src *Matrices) {
	if src.n != m.n {
		panic(fmt.Sprintf("stats: merging %d-block matrices into %d-block matrices", src.n, m.n))
	}
	sb := src.buf
	for i := range m.buf {
		m.buf[i] += sb[i]
	}
}

// Reset zeroes all counts.
func (m *Matrices) Reset() {
	clear(m.buf)
}

// Clone returns a deep copy.
func (m *Matrices) Clone() *Matrices {
	c := NewMatrices(m.n)
	copy(c.buf, m.buf)
	return c
}

// CondAbortProb returns P(x aborts | x ‖ y) = a/(a+c), the probability
// that x aborts given y was running concurrently. It is 0 when x and y
// were never observed concurrent.
func (m *Matrices) CondAbortProb(x, y int) float64 {
	a := float64(m.aborts[x*m.n+y])
	c := float64(m.commits[x*m.n+y])
	if a+c == 0 {
		return 0
	}
	return a / (a + c)
}

// ConjAbortProb returns P(x aborts ∩ x ‖ y) = a / executions[x], the
// probability that an execution of x both aborts and has y concurrent.
func (m *Matrices) ConjAbortProb(x, y int) float64 {
	e := float64(m.execs[x])
	if e == 0 {
		return 0
	}
	return float64(m.aborts[x*m.n+y]) / e
}

// RowCondProbs fills dst (length n) with P(x aborts | x ‖ y) for all y.
func (m *Matrices) RowCondProbs(x int, dst []float64) {
	for y := 0; y < m.n; y++ {
		dst[y] = m.CondAbortProb(x, y)
	}
}

// MeanVar returns the mean and (population) variance of vals.
func MeanVar(vals []float64) (mean, variance float64) {
	if len(vals) == 0 {
		return 0, 0
	}
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	for _, v := range vals {
		d := v - mean
		variance += d * d
	}
	variance /= float64(len(vals))
	return mean, variance
}

// Probit returns the p-th quantile of the standard normal distribution
// (the inverse CDF), clamped to finite values at the extremes.
func Probit(p float64) float64 {
	switch {
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	}
	return math.Sqrt2 * math.Erfinv(2*p-1)
}

// GaussianCut returns the Θ₂-th percentile of a Gaussian fitted to vals
// (mean + stddev·probit(Θ₂)), the cut-off of the paper's Algorithm 5: only
// conditional abort probabilities in the tail above this value indicate a
// real conflictor rather than probing noise.
func GaussianCut(vals []float64, th2 float64) float64 {
	mean, variance := MeanVar(vals)
	return mean + math.Sqrt(variance)*Probit(th2)
}
