package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMatricesBasics(t *testing.T) {
	m := NewMatrices(3)
	if m.N() != 3 {
		t.Fatalf("N = %d", m.N())
	}
	m.AddCommit(0, 1)
	m.AddCommit(0, 1)
	m.AddAbort(0, 1)
	m.IncExec(0)
	m.IncExec(0)
	m.IncExec(0)
	if m.Commits(0, 1) != 2 || m.Aborts(0, 1) != 1 || m.Execs(0) != 3 {
		t.Fatalf("counts wrong: c=%d a=%d e=%d", m.Commits(0, 1), m.Aborts(0, 1), m.Execs(0))
	}
	if m.TotalExecs() != 3 {
		t.Fatalf("TotalExecs = %d", m.TotalExecs())
	}
}

func TestCondAbortProb(t *testing.T) {
	m := NewMatrices(2)
	if p := m.CondAbortProb(0, 1); p != 0 {
		t.Fatalf("empty cond prob = %v, want 0", p)
	}
	m.AddAbort(0, 1)
	m.AddAbort(0, 1)
	m.AddAbort(0, 1)
	m.AddCommit(0, 1)
	if p := m.CondAbortProb(0, 1); math.Abs(p-0.75) > 1e-12 {
		t.Fatalf("cond prob = %v, want 0.75", p)
	}
}

func TestConjAbortProb(t *testing.T) {
	m := NewMatrices(2)
	if p := m.ConjAbortProb(0, 1); p != 0 {
		t.Fatalf("empty conj prob = %v", p)
	}
	for i := 0; i < 10; i++ {
		m.IncExec(0)
	}
	m.AddAbort(0, 1)
	m.AddAbort(0, 1)
	if p := m.ConjAbortProb(0, 1); math.Abs(p-0.2) > 1e-12 {
		t.Fatalf("conj prob = %v, want 0.2", p)
	}
}

func TestMergeAndReset(t *testing.T) {
	a := NewMatrices(2)
	b := NewMatrices(2)
	a.AddCommit(1, 0)
	a.IncExec(1)
	b.AddCommit(1, 0)
	b.AddAbort(0, 1)
	b.IncExec(0)
	a.MergeFrom(b)
	if a.Commits(1, 0) != 2 || a.Aborts(0, 1) != 1 || a.Execs(0) != 1 || a.Execs(1) != 1 {
		t.Fatalf("merge wrong: %d %d %d %d", a.Commits(1, 0), a.Aborts(0, 1), a.Execs(0), a.Execs(1))
	}
	a.Reset()
	if a.TotalExecs() != 0 || a.Commits(1, 0) != 0 {
		t.Fatalf("reset incomplete")
	}
}

func TestMergeDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewMatrices(2).MergeFrom(NewMatrices(3))
}

func TestClone(t *testing.T) {
	a := NewMatrices(2)
	a.AddAbort(0, 0)
	c := a.Clone()
	c.AddAbort(0, 0)
	if a.Aborts(0, 0) != 1 || c.Aborts(0, 0) != 2 {
		t.Fatalf("clone shares storage")
	}
}

func TestMeanVar(t *testing.T) {
	mean, variance := MeanVar([]float64{1, 2, 3, 4})
	if math.Abs(mean-2.5) > 1e-12 || math.Abs(variance-1.25) > 1e-12 {
		t.Fatalf("MeanVar = %v, %v", mean, variance)
	}
	mean, variance = MeanVar(nil)
	if mean != 0 || variance != 0 {
		t.Fatalf("MeanVar(nil) = %v, %v", mean, variance)
	}
}

func TestProbit(t *testing.T) {
	// Standard normal quantiles.
	cases := map[float64]float64{
		0.5:    0,
		0.8413: 1.0,
		0.9772: 2.0,
		0.1587: -1.0,
	}
	for p, want := range cases {
		if got := Probit(p); math.Abs(got-want) > 0.01 {
			t.Errorf("Probit(%v) = %v, want %v", p, got, want)
		}
	}
	if !math.IsInf(Probit(0), -1) || !math.IsInf(Probit(1), 1) {
		t.Fatalf("Probit at the extremes must be infinite")
	}
}

func TestProbitMonotonicQuick(t *testing.T) {
	f := func(a, b uint16) bool {
		p1 := float64(a%1000)/1000.0*0.998 + 0.001
		p2 := float64(b%1000)/1000.0*0.998 + 0.001
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Probit(p1) <= Probit(p2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGaussianCut(t *testing.T) {
	vals := []float64{0.1, 0.1, 0.1, 0.9}
	// At the 50th percentile the cut is the mean.
	if got := GaussianCut(vals, 0.5); math.Abs(got-0.3) > 1e-9 {
		t.Fatalf("median cut = %v, want 0.3", got)
	}
	// Higher percentiles raise the cut.
	if GaussianCut(vals, 0.9) <= GaussianCut(vals, 0.5) {
		t.Fatalf("cut not increasing in Th2")
	}
	// Zero variance: cut equals the mean for any percentile.
	flat := []float64{0.4, 0.4, 0.4}
	if got := GaussianCut(flat, 0.8); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("flat cut = %v, want 0.4", got)
	}
}

// TestGaussianCutSeparatesTail: the paper's core filtering property — a
// clearly higher conditional probability survives the cut while the noise
// floor does not.
func TestGaussianCutSeparatesTail(t *testing.T) {
	vals := []float64{0.10, 0.12, 0.11, 0.09, 0.95}
	cut := GaussianCut(vals, 0.8)
	if !(0.95 > cut) {
		t.Fatalf("true conflictor (0.95) below cut %v", cut)
	}
	for _, v := range vals[:4] {
		if v > cut {
			t.Fatalf("noise value %v above cut %v", v, cut)
		}
	}
}

// TestProbabilitiesStayInRangeQuick: with 0/1-per-event counting the
// estimators remain valid probabilities.
func TestProbabilitiesStayInRangeQuick(t *testing.T) {
	f := func(events []uint16) bool {
		m := NewMatrices(4)
		for _, e := range events {
			x := int(e % 4)
			y := int(e/4) % 4
			m.IncExec(x)
			if e%2 == 0 {
				m.AddAbort(x, y)
			} else {
				m.AddCommit(x, y)
			}
		}
		for x := 0; x < 4; x++ {
			for y := 0; y < 4; y++ {
				c := m.CondAbortProb(x, y)
				j := m.ConjAbortProb(x, y)
				if c < 0 || c > 1 || j < 0 || j > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRowCondProbs(t *testing.T) {
	m := NewMatrices(3)
	m.AddAbort(1, 0)
	m.AddCommit(1, 0)
	m.AddAbort(1, 2)
	dst := make([]float64, 3)
	m.RowCondProbs(1, dst)
	if dst[0] != 0.5 || dst[1] != 0 || dst[2] != 1 {
		t.Fatalf("row = %v", dst)
	}
}
