package stats

import "testing"

// BenchmarkMergeFrom measures draining one per-thread delta into the
// global matrices (the per-update cost of UpdateScheme's merge, fused
// over the single backing buffer).
func BenchmarkMergeFrom(b *testing.B) {
	const n = 16
	dst := NewMatrices(n)
	src := NewMatrices(n)
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			src.AddCommit(x, y)
			src.AddAbort(y, x)
		}
		src.IncExec(x)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.MergeFrom(src)
	}
}

// BenchmarkRowCondProbs measures filling one row of conditional abort
// probabilities (the inner loop of Algorithm 5's Θ₂ filter).
func BenchmarkRowCondProbs(b *testing.B) {
	const n = 16
	m := NewMatrices(n)
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if (x+y)%3 == 0 {
				m.AddAbort(x, y)
			}
			m.AddCommit(x, y)
		}
	}
	dst := make([]float64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RowCondProbs(i%n, dst)
	}
}
