package harness

import (
	"fmt"
	"io"

	"seer"
)

// The scaling exhibit is not a paper figure: the paper's testbed stops at
// one 4-core/8-thread socket, and its Figure 3 curves stop with it. This
// exhibit asks what the reproduced policies do when the machine itself
// grows — it sweeps the topology axis from the paper's socket up to a
// 4-socket, 64-core, 128-thread machine, running every worker the shape
// admits. It exists to exercise the first-class topology model end to
// end: multi-word scheduler masks, reader sets past 64 ids, per-core
// capacity sharing at high thread ids, and the cross-socket access
// penalty on the memory hot path.

// ScalingShapes is the topology axis of the scaling exhibit: the paper's
// 8-thread socket, then doubling through 2 and 4 sockets to 128 threads.
var ScalingShapes = []seer.Topology{
	{Sockets: 1, CoresPerSocket: 4, ThreadsPerCore: 2},  // 1s4c2t: the paper's testbed
	{Sockets: 1, CoresPerSocket: 8, ThreadsPerCore: 2},  // 1s8c2t: 16 threads
	{Sockets: 2, CoresPerSocket: 8, ThreadsPerCore: 2},  // 2s8c2t: 32 threads
	{Sockets: 2, CoresPerSocket: 16, ThreadsPerCore: 2}, // 2s16c2t: 64 threads
	{Sockets: 4, CoresPerSocket: 16, ThreadsPerCore: 2}, // 4s16c2t: 128 threads
}

// ScalingPolicies are the policies compared across shapes: the hardware
// retry baseline and the paper's scheduler.
var ScalingPolicies = []seer.PolicyKind{seer.PolicyRTM, seer.PolicySeer}

// ScalingRemotePenalty is the per-access cycle surcharge used by the
// exhibit's NUMA sensitivity rows: every load or store to a cache line
// homed on another socket costs this much extra (see
// seer.Config.RemoteAccessCost). Against the calibrated 2-cycle load /
// 3-cycle store this triples the cost of a remote access — about the
// local-to-remote latency ratio of a real multi-socket machine.
const ScalingRemotePenalty = 4

// ScalingData holds speedups indexed [workload][policy][shapeIdx], plus
// the NUMA sensitivity column at the largest shape.
type ScalingData struct {
	Workloads []string
	Policies  []seer.PolicyKind
	Shapes    []seer.Topology
	// Speedup[workload][policy][shapeIdx] vs the sequential baseline.
	Speedup map[string]map[seer.PolicyKind][]float64
	// Geomean[policy][shapeIdx] aggregates across workloads.
	Geomean map[seer.PolicyKind][]float64
	// RemoteSpeedup[workload] is Seer at the largest shape with
	// ScalingRemotePenalty charged on cross-socket accesses; compare with
	// Speedup[workload][PolicySeer][len(Shapes)-1] for the NUMA cost.
	RemoteSpeedup map[string]float64
}

// Scaling runs every workload under ScalingPolicies across
// ScalingShapes, with as many workers as each shape has hardware
// threads, and reports speedup over the sequential baseline. A final
// per-workload cell reruns Seer on the largest shape with the
// cross-socket access penalty enabled.
func Scaling(opt Options, workloads []string, progress io.Writer) (*ScalingData, error) {
	opt = opt.normalized()
	// The shape axis is the experiment; a global -topology override would
	// silently turn the sweep into one repeated shape.
	opt.Topology = seer.Topology{}
	if workloads == nil {
		workloads = opt.suite()
	}
	data := &ScalingData{
		Workloads:     append([]string{}, workloads...),
		Policies:      ScalingPolicies,
		Shapes:        ScalingShapes,
		Speedup:       map[string]map[seer.PolicyKind][]float64{},
		Geomean:       map[seer.PolicyKind][]float64{},
		RemoteSpeedup: map[string]float64{},
	}
	// Grid: per workload, the sequential baseline, then (policy × shape),
	// then the penalized Seer cell. RunGrid's ordered callback sees the
	// baseline before any cell that divides by it.
	type cell struct {
		wl     string
		pol    seer.PolicyKind
		si     int  // shape index; -1 marks the baseline cell
		remote bool // the NUMA sensitivity cell
	}
	var specs []Spec
	var cells []cell
	largest := ScalingShapes[len(ScalingShapes)-1]
	for _, wl := range workloads {
		specs = append(specs, Spec{
			Workload: wl, Scale: opt.Scale,
			Policy: seer.PolicySeq, Threads: 1, Runs: opt.Runs, Seed: opt.Seed,
		})
		cells = append(cells, cell{wl: wl, si: -1})
		for _, pol := range ScalingPolicies {
			for si, shape := range ScalingShapes {
				specs = append(specs, Spec{
					Workload: wl, Scale: opt.Scale, Policy: pol,
					Threads: shape.Threads(), Runs: opt.Runs, Seed: opt.Seed,
					Topology: shape,
				})
				cells = append(cells, cell{wl: wl, pol: pol, si: si})
			}
		}
		specs = append(specs, Spec{
			Workload: wl, Scale: opt.Scale, Policy: seer.PolicySeer,
			Threads: largest.Threads(), Runs: opt.Runs, Seed: opt.Seed,
			Topology: largest, RemoteAccessCost: ScalingRemotePenalty,
		})
		cells = append(cells, cell{wl: wl, remote: true})
	}
	baselines := map[string]float64{}
	_, err := RunGrid(opt, specs, func(i int, res Result) {
		c := cells[i]
		switch {
		case c.si < 0 && !c.remote:
			baselines[c.wl] = res.MeanMakespan
			data.Speedup[c.wl] = map[seer.PolicyKind][]float64{}
		case c.remote:
			data.RemoteSpeedup[c.wl] = Speedup(baselines[c.wl], res)
			if progress != nil {
				fmt.Fprintf(progress, "scaling %-14s done\n", c.wl)
			}
		default:
			if c.si == 0 {
				data.Speedup[c.wl][c.pol] = make([]float64, len(ScalingShapes))
			}
			data.Speedup[c.wl][c.pol][c.si] = Speedup(baselines[c.wl], res)
		}
	})
	if err != nil {
		return nil, err
	}
	for _, pol := range ScalingPolicies {
		gm := make([]float64, len(ScalingShapes))
		for si := range ScalingShapes {
			vals := make([]float64, 0, len(workloads))
			for _, wl := range workloads {
				vals = append(vals, data.Speedup[wl][pol][si])
			}
			gm[si] = GeoMean(vals)
		}
		data.Geomean[pol] = gm
	}
	return data, nil
}

// shapeLabel renders one column header, e.g. "2s8c2t(32)".
func shapeLabel(t seer.Topology) string {
	return fmt.Sprintf("%s(%d)", t, t.Threads())
}

// Render writes the scaling tables as text.
func (d *ScalingData) Render(w io.Writer) {
	fmt.Fprintf(w, "\nscaling: speedup vs sequential across machine shapes (workers = hardware threads)\n")
	fmt.Fprintf(w, "%-14s %-6s", "workload", "policy")
	for _, shape := range d.Shapes {
		fmt.Fprintf(w, " %12s", shapeLabel(shape))
	}
	fmt.Fprintln(w)
	row := func(name string, pol seer.PolicyKind, vals []float64) {
		fmt.Fprintf(w, "%-14s %-6s", name, pol)
		for _, v := range vals {
			fmt.Fprintf(w, " %12.2f", v)
		}
		fmt.Fprintln(w)
	}
	for _, wl := range d.Workloads {
		for _, pol := range d.Policies {
			row(wl, pol, d.Speedup[wl][pol])
		}
	}
	for _, pol := range d.Policies {
		row("geomean", pol, d.Geomean[pol])
	}

	largest := d.Shapes[len(d.Shapes)-1]
	fmt.Fprintf(w, "\nNUMA sensitivity: seer at %s with a %d-cycle cross-socket access penalty\n",
		shapeLabel(largest), ScalingRemotePenalty)
	fmt.Fprintf(w, "%-14s %12s %12s %8s\n", "workload", "uniform", "penalized", "ratio")
	for _, wl := range d.Workloads {
		uniform := d.Speedup[wl][seer.PolicySeer][len(d.Shapes)-1]
		penalized := d.RemoteSpeedup[wl]
		ratio := 0.0
		if uniform > 0 {
			ratio = penalized / uniform
		}
		fmt.Fprintf(w, "%-14s %12.2f %12.2f %8.2f\n", wl, uniform, penalized, ratio)
	}
}
