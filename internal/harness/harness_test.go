package harness

import (
	"math"
	"strings"
	"testing"

	"seer"
	"seer/internal/stamp"
)

func TestRunOneBasic(t *testing.T) {
	res, err := RunOne(Spec{
		Workload: "ssca2", Scale: 0.1, Policy: seer.PolicyRTM,
		Threads: 4, Runs: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 2 {
		t.Fatalf("reports = %d, want 2", len(res.Reports))
	}
	if res.MeanMakespan <= 0 {
		t.Fatalf("mean makespan = %v", res.MeanMakespan)
	}
	var pctSum float64
	for _, p := range res.MeanModePct {
		pctSum += p
	}
	if math.Abs(pctSum-100) > 0.5 {
		t.Fatalf("mode percentages sum to %v", pctSum)
	}
}

func TestRunOneUnknownWorkload(t *testing.T) {
	if _, err := RunOne(Spec{Workload: "nope", Policy: seer.PolicyRTM, Threads: 1}); err == nil {
		t.Fatalf("unknown workload accepted")
	}
}

func TestSequentialBaselinePositive(t *testing.T) {
	base, err := SequentialBaseline("kmeans-low", 0.1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if base <= 0 {
		t.Fatalf("baseline = %v", base)
	}
}

func TestSpeedupDefinition(t *testing.T) {
	r := Result{MeanMakespan: 50}
	if got := Speedup(100, r); got != 2 {
		t.Fatalf("Speedup = %v, want 2", got)
	}
	if got := Speedup(100, Result{}); got != 0 {
		t.Fatalf("zero-makespan speedup = %v, want 0", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean = %v, want 2", got)
	}
	if got := GeoMean([]float64{2, 0, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("GeoMean with zero = %v, want 4 (zeros skipped)", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Fatalf("GeoMean(nil) = %v", got)
	}
}

func TestSeerVariantsOrdering(t *testing.T) {
	vs := SeerVariants()
	names := make([]string, len(vs))
	for i, v := range vs {
		names[i] = v.Name
	}
	want := []string{"profile-only", "+tx-locks", "+core-locks", "+htm-locks", "+hill-climbing", "core-locks-only"}
	if len(names) != len(want) {
		t.Fatalf("variants = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("variants = %v, want %v", names, want)
		}
	}
	// Cumulative property: each step only enables more mechanisms.
	if vs[0].Opts.TxLocks || vs[0].Opts.CoreLocks || vs[0].Opts.HTMLockAcq || vs[0].Opts.HillClimb {
		t.Fatalf("profile-only variant has mechanisms enabled")
	}
	full := vs[4].Opts
	if !(full.TxLocks && full.CoreLocks && full.HTMLockAcq && full.HillClimb) {
		t.Fatalf("full variant missing mechanisms: %+v", full)
	}
	co := vs[5].Opts
	if co.TxLocks || !co.CoreLocks {
		t.Fatalf("core-locks-only wrong: %+v", co)
	}
}

func TestMachineConstantsMatchPaper(t *testing.T) {
	if MachineHWThreads != 8 || MachinePhysCores != 4 {
		t.Fatalf("testbed is %d threads / %d cores, paper used 8/4",
			MachineHWThreads, MachinePhysCores)
	}
}

// TestFig3SmallGrid runs a miniature Figure 3 end to end and checks the
// data structure and rendering.
func TestFig3SmallGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid in -short mode")
	}
	old := Fig3Threads
	Fig3Threads = []int{1, 4}
	defer func() { Fig3Threads = old }()
	d, err := Fig3(Options{Scale: 0.08, Runs: 1, Seed: 5}, []string{"ssca2"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range Fig3Policies {
		series := d.Speedup["ssca2"][pol]
		if len(series) != 2 {
			t.Fatalf("%s series = %v", pol, series)
		}
		for _, v := range series {
			if v <= 0 {
				t.Fatalf("%s has non-positive speedup: %v", pol, series)
			}
		}
		if d.Geomean[pol][1] <= 0 {
			t.Fatalf("geomean missing for %s", pol)
		}
	}
	var sb strings.Builder
	d.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "ssca2") || !strings.Contains(out, "geometric mean") {
		t.Fatalf("render missing sections:\n%s", out)
	}
}

// TestTable3Small checks the breakdown sums to ~100% per cell.
func TestTable3Small(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid in -short mode")
	}
	old := Table3Threads
	Table3Threads = []int{4}
	defer func() { Table3Threads = old }()
	d, err := Table3(Options{Scale: 0.08, Runs: 1, Seed: 5}, []string{"ssca2", "kmeans-high"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range Fig3Policies {
		var sum float64
		for m := 0; m < int(seer.NumModes); m++ {
			sum += d.Pct[pol][0][m]
		}
		if math.Abs(sum-100) > 0.5 {
			t.Fatalf("%s breakdown sums to %v", pol, sum)
		}
	}
	var sb strings.Builder
	d.Render(&sb)
	if !strings.Contains(sb.String(), "Table 3") {
		t.Fatalf("render missing title")
	}
}

// TestFig4Small checks relative speeds are near 1 (profiling is cheap).
func TestFig4Small(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid in -short mode")
	}
	old := Fig3Threads
	Fig3Threads = []int{2}
	defer func() { Fig3Threads = old }()
	d, err := Fig4(Options{Scale: 0.08, Runs: 1, Seed: 5}, []string{"hashmap"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rel := d.PerWorkload["hashmap"][0]
	if rel < 0.7 || rel > 1.3 {
		t.Fatalf("hashmap profiling overhead out of range: %v", rel)
	}
	var sb strings.Builder
	d.Render(&sb)
	if !strings.Contains(sb.String(), "Figure 4") {
		t.Fatalf("render missing title")
	}
}

// TestFig5Small checks the ablation runs and renders.
func TestFig5Small(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid in -short mode")
	}
	old := Table3Threads
	Table3Threads = []int{4}
	defer func() { Table3Threads = old }()
	d, err := Fig5(Options{Scale: 0.08, Runs: 1, Seed: 5}, []string{"kmeans-high"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Variants) != 6 {
		t.Fatalf("variants = %v", d.Variants)
	}
	base := d.Speedup["kmeans-high"]["profile-only"][0]
	if math.Abs(base-1) > 1e-9 {
		t.Fatalf("profile-only vs itself = %v, want 1", base)
	}
	var sb strings.Builder
	d.Render(&sb)
	if !strings.Contains(sb.String(), "Figure 5") {
		t.Fatalf("render missing title")
	}
}

// TestLockFracSmall checks the §5.2 statistic extraction.
func TestLockFracSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid in -short mode")
	}
	d, err := LockFrac(Options{Scale: 0.08, Runs: 1, Seed: 5}, []string{"intruder"})
	if err != nil {
		t.Fatal(err)
	}
	e := d.PerWorkload["intruder"]
	if e.MedianFrac < 0 || e.MedianFrac > 1 {
		t.Fatalf("median lock fraction = %v", e.MedianFrac)
	}
	var sb strings.Builder
	d.Render(&sb)
	if !strings.Contains(sb.String(), "granularity") {
		t.Fatalf("render missing title")
	}
}

// TestDeterministicResults: same Spec twice gives identical makespans.
func TestDeterministicResults(t *testing.T) {
	spec := Spec{Workload: "vacation-low", Scale: 0.08, Policy: seer.PolicySeer, Threads: 6, Runs: 1, Seed: 9}
	a, err := RunOne(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOne(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanMakespan != b.MeanMakespan {
		t.Fatalf("nondeterministic: %v vs %v", a.MeanMakespan, b.MeanMakespan)
	}
}

// TestCSVExports: every exhibit writes parseable CSV with the right
// header and row counts.
func TestCSVExports(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid in -short mode")
	}
	oldT := Fig3Threads
	Fig3Threads = []int{2}
	defer func() { Fig3Threads = oldT }()

	d3, err := Fig3(Options{Scale: 0.08, Runs: 1, Seed: 5}, []string{"ssca2"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := d3.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(strings.TrimSpace(sb.String()), "\n")
	// header + (1 workload + geomean) × 4 policies × 1 thread count
	if want := 1 + 2*4; len(rows) != want {
		t.Fatalf("fig3 csv rows = %d, want %d:\n%s", len(rows), want, sb.String())
	}
	if !strings.HasPrefix(rows[0], "exhibit,workload,policy,threads,speedup") {
		t.Fatalf("fig3 csv header = %q", rows[0])
	}
	for _, r := range rows[1:] {
		if len(strings.Split(r, ",")) != 5 {
			t.Fatalf("malformed row %q", r)
		}
	}

	oldTT := Table3Threads
	Table3Threads = []int{2}
	defer func() { Table3Threads = oldTT }()
	dt, err := Table3(Options{Scale: 0.08, Runs: 1, Seed: 5}, []string{"ssca2"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := dt.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows = strings.Split(strings.TrimSpace(sb.String()), "\n")
	if want := 1 + 4*1*int(seer.NumModes); len(rows) != want {
		t.Fatalf("table3 csv rows = %d, want %d", len(rows), want)
	}
}

// TestAttemptsSweepSmall runs the retry-budget ablation on one workload.
func TestAttemptsSweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid in -short mode")
	}
	old := AttemptBudgets
	AttemptBudgets = []int{1, 5}
	defer func() { AttemptBudgets = old }()
	d, err := Attempts(Options{Scale: 0.08, Runs: 1, Seed: 5}, []string{"vacation-high"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range d.Policies {
		for bi, v := range d.Throughput[pol] {
			if v <= 0 {
				t.Fatalf("%s budget %d: throughput %v", pol, d.Budgets[bi], v)
			}
		}
	}
	var sb strings.Builder
	d.Render(&sb)
	if !strings.Contains(sb.String(), "Retry-budget") {
		t.Fatalf("render missing title")
	}
}

// TestOrderingRobustToCostModel: the reproduction's conclusions are about
// orderings, not absolute cycle counts — so the headline ordering
// (Seer > RTM on vacation-high at 8 threads) must survive ±33%
// perturbations of the HTM entry/exit costs.
func TestOrderingRobustToCostModel(t *testing.T) {
	if testing.Short() {
		t.Skip("slow robustness sweep")
	}
	run := func(pol seer.PolicyKind, beginCost, endCost uint64) float64 {
		wl, err := stamp.New("vacation-high", 0.4)
		if err != nil {
			t.Fatal(err)
		}
		cfg := seer.DefaultConfig()
		cfg.Threads = 8
		cfg.HWThreads = MachineHWThreads
		cfg.PhysCores = MachinePhysCores
		cfg.Policy = pol
		cfg.Seed = 2
		cfg.NumAtomicBlocks = wl.NumAtomicBlocks()
		cfg.MemWords = wl.MemWords() + (1 << 14)
		cfg.MaxCycles = 1 << 36
		cfg.Cost.XBegin = beginCost
		cfg.Cost.XEnd = endCost
		sys, err := seer.NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wl.Setup(sys)
		rep, err := sys.Run(wl.Workers(8))
		if err != nil {
			t.Fatal(err)
		}
		if err := wl.Validate(sys); err != nil {
			t.Fatal(err)
		}
		return rep.Throughput()
	}
	for _, costs := range [][2]uint64{{12, 8}, {18, 12}, {24, 16}} {
		rtm := run(seer.PolicyRTM, costs[0], costs[1])
		srr := run(seer.PolicySeer, costs[0], costs[1])
		if srr <= rtm {
			t.Errorf("ordering flipped at XBegin=%d/XEnd=%d: Seer %.2f <= RTM %.2f",
				costs[0], costs[1], srr, rtm)
		}
	}
}
