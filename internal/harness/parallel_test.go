package harness

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"seer"
)

// gridSpecs returns a small mixed grid that exercises several policies
// and thread counts cheaply.
func gridSpecs() []Spec {
	var specs []Spec
	for _, pol := range []seer.PolicyKind{seer.PolicyRTM, seer.PolicySeer} {
		for _, th := range []int{1, 2, 4} {
			specs = append(specs, Spec{
				Workload: "hashmap", Scale: 0.05, Policy: pol,
				Threads: th, Runs: 1, Seed: 7,
			})
		}
	}
	return specs
}

// TestRunGridParallelMatchesSequential: results and the streamed progress
// transcript must be identical at any worker count.
func TestRunGridParallelMatchesSequential(t *testing.T) {
	specs := gridSpecs()
	run := func(parallel int) ([]Result, string) {
		var log strings.Builder
		res, err := RunGrid(Options{Parallel: parallel}, specs, func(i int, r Result) {
			fmt.Fprintf(&log, "%d:%s/%d=%d\n", i, r.Spec.Policy, r.Spec.Threads, r.Reports[0].MakespanCycles)
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return res, log.String()
	}
	seqRes, seqLog := run(1)
	for _, workers := range []int{2, 4, -1} {
		parRes, parLog := run(workers)
		if !reflect.DeepEqual(seqRes, parRes) {
			t.Fatalf("parallel=%d results differ from sequential", workers)
		}
		if parLog != seqLog {
			t.Fatalf("parallel=%d progress transcript differs:\nseq:\n%s\npar:\n%s", workers, seqLog, parLog)
		}
	}
	// The transcript must also be in index order with every cell present.
	for i := range specs {
		if !strings.Contains(seqLog, fmt.Sprintf("%d:", i)) {
			t.Fatalf("cell %d missing from transcript:\n%s", i, seqLog)
		}
	}
}

// TestRunGridStats: the executor counters must add up the same way at any
// width.
func TestRunGridStats(t *testing.T) {
	specs := gridSpecs()
	count := func(parallel int) (int64, int64, uint64) {
		stats := &BenchStats{}
		if _, err := RunGrid(Options{Parallel: parallel, Stats: stats}, specs, nil); err != nil {
			t.Fatal(err)
		}
		return stats.Cells(), stats.Runs(), stats.SimCycles()
	}
	c1, r1, s1 := count(1)
	c4, r4, s4 := count(4)
	if c1 != int64(len(specs)) || r1 != int64(len(specs)) {
		t.Fatalf("sequential stats: cells=%d runs=%d, want %d each", c1, r1, len(specs))
	}
	if s1 == 0 {
		t.Fatalf("no simulated cycles recorded")
	}
	if c1 != c4 || r1 != r4 || s1 != s4 {
		t.Fatalf("stats differ by width: (%d,%d,%d) vs (%d,%d,%d)", c1, r1, s1, c4, r4, s4)
	}
}

// TestRunGridRecycledReplicasMatchFresh: RunGrid builds each cell on its
// worker's recycled simulator replica; RunOne builds a fresh system every
// time. On a wide multi-socket shape — where the auto heuristic shards
// the conflict registry and the recycled buffers span multi-word reader
// sets — both paths must produce identical Results. Run under -race this
// also proves no engine state crosses worker goroutines.
func TestRunGridRecycledReplicasMatchFresh(t *testing.T) {
	wide := seer.Topology{Sockets: 2, CoresPerSocket: 8, ThreadsPerCore: 2}
	var specs []Spec
	for _, pol := range []seer.PolicyKind{seer.PolicyRTM, seer.PolicySeer} {
		for _, th := range []int{8, 32} {
			specs = append(specs, Spec{
				Workload: "hashmap", Scale: 0.05, Policy: pol,
				Threads: th, Runs: 2, Seed: 11, Topology: wide,
			})
		}
	}
	fresh := make([]Result, len(specs))
	for i, sp := range specs {
		res, err := RunOne(sp)
		if err != nil {
			t.Fatalf("fresh cell %d: %v", i, err)
		}
		fresh[i] = res
	}
	for _, workers := range []int{1, 4} {
		got, err := RunGrid(Options{Parallel: workers}, specs, nil)
		if err != nil {
			t.Fatalf("parallel=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(fresh, got) {
			t.Fatalf("parallel=%d: recycled-replica results differ from fresh systems", workers)
		}
	}
}

// TestRunGridFirstErrorByIndex: with several failing cells, the reported
// error must be the lowest-indexed one regardless of completion order.
func TestRunGridFirstErrorByIndex(t *testing.T) {
	specs := []Spec{
		{Workload: "hashmap", Scale: 0.05, Policy: seer.PolicyRTM, Threads: 1, Runs: 1, Seed: 1},
		{Workload: "no-such-workload-a", Scale: 0.05, Policy: seer.PolicyRTM, Threads: 1, Runs: 1, Seed: 1},
		{Workload: "no-such-workload-b", Scale: 0.05, Policy: seer.PolicyRTM, Threads: 1, Runs: 1, Seed: 1},
	}
	for _, workers := range []int{1, 3} {
		_, err := RunGrid(Options{Parallel: workers}, specs, nil)
		if err == nil || !strings.Contains(err.Error(), "no-such-workload-a") {
			t.Fatalf("parallel=%d: err = %v, want first failing index (workload a)", workers, err)
		}
	}
}
