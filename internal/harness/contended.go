package harness

import (
	"fmt"
	"io"

	"seer"
)

// The contended exhibit is not a paper figure: it is a stress view of the
// single-global-lock path under maximal contention, added alongside the
// event-driven lock parking work. HLE at 8 threads issues one hardware
// attempt per transaction and then serializes everything through the SGL,
// so nearly all progress flows through the spinlock park/wake machinery.
// The table reports how much virtual lock-wait time each workload spends
// and what fraction of it the engine fast-forwarded instead of simulating
// poll by poll.

// ContendedRow is one workload's row of the contended-SGL exhibit.
type ContendedRow struct {
	MakespanCycles uint64
	SGLPct         float64
	LockWaitCycles uint64
	ParkSkipped    uint64
}

// ContendedData holds the contended-SGL stress results per workload.
type ContendedData struct {
	Workloads []string
	Rows      map[string]ContendedRow
}

// contendedInterval is the telemetry period used to total lock-wait and
// park-skip cycles; coarse on purpose, the exhibit only needs the sums.
const contendedInterval = 1 << 16

// Contended runs every workload under HLE at 8 threads — the maximally
// contended configuration — and reports SGL usage, lock-wait cycles and
// the parked (fast-forwarded) share of that wait.
func Contended(opt Options, workloads []string, progress io.Writer) (*ContendedData, error) {
	opt = opt.normalized()
	if workloads == nil {
		workloads = opt.suite()
	}
	data := &ContendedData{
		Workloads: append([]string{}, workloads...),
		Rows:      map[string]ContendedRow{},
	}
	specs := make([]Spec, len(workloads))
	for i, wl := range workloads {
		specs[i] = Spec{
			Workload: wl, Scale: opt.Scale, Policy: seer.PolicyHLE,
			Threads: 8, Runs: opt.Runs, Seed: opt.Seed,
			MetricsInterval: contendedInterval,
		}
	}
	_, err := RunGrid(opt, specs, func(i int, res Result) {
		var row ContendedRow
		for _, rep := range res.Reports {
			row.MakespanCycles += rep.MakespanCycles
			row.SGLPct += rep.ModeFractions()[seer.ModeSGL]
			for _, snap := range rep.Timeline {
				row.LockWaitCycles += snap.LockWait
				row.ParkSkipped += snap.ParkSkipped
			}
		}
		n := uint64(len(res.Reports))
		row.MakespanCycles /= n
		row.SGLPct /= float64(n)
		row.LockWaitCycles /= n
		row.ParkSkipped /= n
		data.Rows[workloads[i]] = row
		if progress != nil {
			fmt.Fprintf(progress, "contended %s done\n", workloads[i])
		}
	})
	if err != nil {
		return nil, err
	}
	return data, nil
}

// Render writes the contended-SGL table as text.
func (d *ContendedData) Render(w io.Writer) {
	fmt.Fprintf(w, "\ncontended SGL stress: HLE at 8 threads\n")
	fmt.Fprintf(w, "%-14s %14s %8s %14s %14s %8s\n",
		"workload", "makespan", "SGL%", "lockWait", "parkSkipped", "skip%")
	for _, wl := range d.Workloads {
		r := d.Rows[wl]
		skipPct := 0.0
		if r.LockWaitCycles > 0 {
			skipPct = 100 * float64(r.ParkSkipped) / float64(r.LockWaitCycles)
		}
		fmt.Fprintf(w, "%-14s %14d %8.2f %14d %14d %8.2f\n",
			wl, r.MakespanCycles, r.SGLPct, r.LockWaitCycles, r.ParkSkipped, skipPct)
	}
}
