package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"seer"
	"seer/internal/core"
	"seer/internal/plot"
	"seer/internal/stamp"
)

// Options configures an experiment sweep.
type Options struct {
	Scale float64
	Runs  int
	Seed  int64
	// Parallel is the worker-pool width used to fan independent grid
	// cells across real CPUs: 0 or 1 runs sequentially, N > 1 uses N
	// workers, negative uses one worker per available CPU. Results and
	// rendered output are bit-identical at any width (see RunGrid).
	Parallel int
	// Stats, when non-nil, accumulates executor-level counters (cells,
	// runs, simulated cycles) across experiments; seerbench -bench-json
	// reads them back.
	Stats *BenchStats
	// Topology, when non-zero, replaces the default 8-thread testbed for
	// every grid cell that does not pin its own shape (the seerbench
	// -topology flag). Cells whose thread count exceeds the shape fail
	// with a config error rather than silently resizing.
	Topology seer.Topology
	// FullSuite widens the default workload set from stamp.Suite to
	// stamp.FullSuite (adds bayes and labyrinth) in every experiment
	// that was not given an explicit list (the seerbench -full-suite
	// flag). Explicit workload arguments are unaffected.
	FullSuite bool
	// RegistryShards sets the conflict registry's shard count for every
	// grid cell that does not pin its own (the seerbench -registry-shards
	// flag; 0 = auto by machine shape). Pure data layout: results are
	// bit-identical at any count.
	RegistryShards int
	// Quantum sets the speculative-quantum budget for every grid cell
	// that does not pin its own (the seerbench -quantum flag; 0 = library
	// default, -1 = speculation off, K > 0 = quanta of up to K pure
	// ticks). Pure engine mechanics: results are bit-identical at any
	// setting.
	Quantum int
}

// suite resolves the default workload list for experiments that were not
// handed an explicit one.
func (o Options) suite() []string {
	if o.FullSuite {
		return append([]string{}, stamp.FullSuite...)
	}
	return Suite()
}

// DefaultOptions returns full-scale settings (Figure 3 at scale 1 takes
// on the order of a minute of wall-clock time per policy).
func DefaultOptions() Options {
	return Options{Scale: 1.0, Runs: 3, Seed: 1}
}

func (o Options) normalized() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Runs <= 0 {
		o.Runs = 1
	}
	return o
}

// Fig3Policies are the approaches compared in Figure 3.
var Fig3Policies = []seer.PolicyKind{seer.PolicyHLE, seer.PolicyRTM, seer.PolicySCM, seer.PolicySeer}

// AllPolicies adds the extension baselines (ATS and the simulator-only
// Oracle) to the paper's four.
var AllPolicies = []seer.PolicyKind{
	seer.PolicyHLE, seer.PolicyRTM, seer.PolicySCM,
	seer.PolicyATS, seer.PolicyOracle, seer.PolicySeer,
}

// Fig3Threads is the thread axis of Figure 3.
var Fig3Threads = []int{1, 2, 3, 4, 5, 6, 7, 8}

// Fig3Data holds speedups indexed [workload][policy][threadIdx].
type Fig3Data struct {
	Workloads []string
	Policies  []seer.PolicyKind
	Threads   []int
	Speedup   map[string]map[seer.PolicyKind][]float64
	// Geomean aggregates across workloads: [policy][threadIdx].
	Geomean map[seer.PolicyKind][]float64
}

// Fig3 reproduces Figure 3: speedup over the sequential uninstrumented
// run for every benchmark, policy and thread count, plus the geometric
// mean (Figure 3i).
func Fig3(opt Options, workloads []string, progress io.Writer) (*Fig3Data, error) {
	return Fig3With(opt, workloads, Fig3Policies, progress)
}

// Fig3With is Fig3 over an explicit policy set (e.g. AllPolicies, to
// include the ATS and Oracle baselines).
func Fig3With(opt Options, workloads []string, policies []seer.PolicyKind, progress io.Writer) (*Fig3Data, error) {
	opt = opt.normalized()
	if workloads == nil {
		workloads = opt.suite()
	}
	if policies == nil {
		policies = Fig3Policies
	}
	data := &Fig3Data{
		Workloads: workloads,
		Policies:  policies,
		Threads:   Fig3Threads,
		Speedup:   map[string]map[seer.PolicyKind][]float64{},
		Geomean:   map[seer.PolicyKind][]float64{},
	}
	// Grid: per workload, one sequential-baseline cell followed by the
	// (policy × threads) cells. The ordered progress callback sees the
	// baseline before any cell that divides by it.
	type cell struct {
		wl  string
		pol seer.PolicyKind
		ti  int // thread index; -1 marks the baseline cell
	}
	var specs []Spec
	var cells []cell
	for _, wl := range workloads {
		specs = append(specs, Spec{
			Workload: wl, Scale: opt.Scale,
			Policy: seer.PolicySeq, Threads: 1, Runs: opt.Runs, Seed: opt.Seed,
		})
		cells = append(cells, cell{wl: wl, ti: -1})
		for _, pol := range policies {
			for ti, th := range Fig3Threads {
				specs = append(specs, Spec{
					Workload: wl, Scale: opt.Scale, Policy: pol,
					Threads: th, Runs: opt.Runs, Seed: opt.Seed,
				})
				cells = append(cells, cell{wl: wl, pol: pol, ti: ti})
			}
		}
	}
	baselines := map[string]float64{}
	_, err := RunGrid(opt, specs, func(i int, res Result) {
		c := cells[i]
		if c.ti < 0 {
			baselines[c.wl] = res.MeanMakespan
			data.Speedup[c.wl] = map[seer.PolicyKind][]float64{}
			return
		}
		if c.ti == 0 {
			data.Speedup[c.wl][c.pol] = make([]float64, len(Fig3Threads))
		}
		data.Speedup[c.wl][c.pol][c.ti] = Speedup(baselines[c.wl], res)
		if c.ti == len(Fig3Threads)-1 && progress != nil {
			fmt.Fprintf(progress, "fig3 %-14s %-5s %v\n", c.wl, c.pol, fmtSeries(data.Speedup[c.wl][c.pol]))
		}
	})
	if err != nil {
		return nil, err
	}
	for _, pol := range policies {
		gm := make([]float64, len(Fig3Threads))
		for ti := range Fig3Threads {
			vals := make([]float64, 0, len(workloads))
			for _, wl := range workloads {
				vals = append(vals, data.Speedup[wl][pol][ti])
			}
			gm[ti] = GeoMean(vals)
		}
		data.Geomean[pol] = gm
	}
	return data, nil
}

// Plot renders the Figure 3 panels as terminal line charts.
func (d *Fig3Data) Plot(w io.Writer) {
	ticks := make([]string, len(d.Threads))
	for i, th := range d.Threads {
		ticks[i] = fmt.Sprintf("%d", th)
	}
	panel := func(title string, series map[seer.PolicyKind][]float64) {
		c := plot.Chart{Title: title, XLabel: "threads", XTicks: ticks}
		for _, pol := range d.Policies {
			c.Series = append(c.Series, plot.Series{Name: string(pol), Values: series[pol]})
		}
		fmt.Fprintln(w)
		c.Render(w)
	}
	for _, wl := range d.Workloads {
		panel("Figure 3: "+wl+" — speedup vs sequential", d.Speedup[wl])
	}
	panel("Figure 3i: geometric mean", d.Geomean)
}

// Render writes the Figure 3 panels as text tables.
func (d *Fig3Data) Render(w io.Writer) {
	for _, wl := range d.Workloads {
		fmt.Fprintf(w, "\nFigure 3: %s — speedup vs sequential\n", wl)
		renderSeriesTable(w, d.Threads, d.Policies, d.Speedup[wl])
	}
	fmt.Fprintf(w, "\nFigure 3i: geometric mean across %d benchmarks\n", len(d.Workloads))
	renderSeriesTable(w, d.Threads, d.Policies, d.Geomean)
}

// Table3Data holds the mode breakdown: [policy][threads] → mode
// percentages averaged across the suite.
type Table3Data struct {
	Policies []seer.PolicyKind
	Threads  []int
	// Pct[policy][threadIdx][mode] in percent.
	Pct map[seer.PolicyKind][][seer.NumModes]float64
}

// Table3Threads is the thread axis of Table 3.
var Table3Threads = []int{2, 4, 6, 8}

// Table3 reproduces Table 3: the percentage of transactions committed in
// each mode, averaged across the STAMP suite.
func Table3(opt Options, workloads []string, progress io.Writer) (*Table3Data, error) {
	opt = opt.normalized()
	if workloads == nil {
		workloads = opt.suite()
	}
	data := &Table3Data{
		Policies: Fig3Policies,
		Threads:  Table3Threads,
		Pct:      map[seer.PolicyKind][][seer.NumModes]float64{},
	}
	type cell struct {
		pol  seer.PolicyKind
		ti   int
		last bool // last workload of the (pol, ti) block
	}
	var specs []Spec
	var cells []cell
	for _, pol := range Fig3Policies {
		data.Pct[pol] = make([][seer.NumModes]float64, len(Table3Threads))
		for ti, th := range Table3Threads {
			for wi, wl := range workloads {
				specs = append(specs, Spec{
					Workload: wl, Scale: opt.Scale, Policy: pol,
					Threads: th, Runs: opt.Runs, Seed: opt.Seed,
				})
				cells = append(cells, cell{pol: pol, ti: ti, last: wi == len(workloads)-1})
			}
		}
	}
	var sum [seer.NumModes]float64
	_, err := RunGrid(opt, specs, func(i int, res Result) {
		c := cells[i]
		for m := range sum {
			sum[m] += res.MeanModePct[m]
		}
		if !c.last {
			return
		}
		for m := range sum {
			sum[m] /= float64(len(workloads))
		}
		data.Pct[c.pol][c.ti] = sum
		sum = [seer.NumModes]float64{}
		if progress != nil {
			fmt.Fprintf(progress, "table3 %-5s %dt done\n", c.pol, Table3Threads[c.ti])
		}
	})
	if err != nil {
		return nil, err
	}
	return data, nil
}

// Render writes Table 3 as text.
func (d *Table3Data) Render(w io.Writer) {
	fmt.Fprintf(w, "\nTable 3: transaction-mode breakdown (%% of commits, averaged across STAMP)\n")
	fmt.Fprintf(w, "%-8s %-22s", "Variant", "Transaction Mode")
	for _, th := range d.Threads {
		fmt.Fprintf(w, " %5dt", th)
	}
	fmt.Fprintln(w)
	for _, pol := range d.Policies {
		for m := seer.Mode(0); m < seer.NumModes; m++ {
			// Skip rows that are identically zero for this policy.
			nonzero := false
			for ti := range d.Threads {
				if d.Pct[pol][ti][m] >= 0.05 {
					nonzero = true
				}
			}
			if !nonzero {
				continue
			}
			fmt.Fprintf(w, "%-8s %-22s", pol, m.String())
			for ti := range d.Threads {
				fmt.Fprintf(w, " %6.1f", d.Pct[pol][ti][m])
			}
			fmt.Fprintln(w)
		}
	}
}

// Fig4Data holds the overhead study: profile-only Seer vs RTM.
type Fig4Data struct {
	Threads []int
	// Relative[threadIdx] is geomean(makespan_RTM / makespan_profileOnly)
	// across the workloads: 1.0 means no overhead, 0.95 means 5% slower.
	Relative []float64
	// PerWorkload[wl][threadIdx] for detailed inspection.
	PerWorkload map[string][]float64
}

// Fig4 reproduces Figure 4: the slowdown of Seer with all monitoring,
// inference and self-tuning active but no lock ever acquired, relative to
// RTM. The paper reports a mean below 5% and a maximum of 8%; the
// low-contention hashmap stays within 4%.
func Fig4(opt Options, workloads []string, progress io.Writer) (*Fig4Data, error) {
	opt = opt.normalized()
	if workloads == nil {
		workloads = append(opt.suite(), "hashmap")
	}
	profOpts := profileOnlyOpts()
	data := &Fig4Data{
		Threads:     Fig3Threads,
		Relative:    make([]float64, len(Fig3Threads)),
		PerWorkload: map[string][]float64{},
	}
	// Grid: per (workload, threads), an RTM cell immediately followed by
	// its profile-only partner; the ordered callback pairs them up.
	type cell struct {
		wl  string
		ti  int
		rtm bool
	}
	var specs []Spec
	var cells []cell
	for _, wl := range workloads {
		data.PerWorkload[wl] = make([]float64, len(Fig3Threads))
		for ti, th := range Fig3Threads {
			specs = append(specs, Spec{
				Workload: wl, Scale: opt.Scale, Policy: seer.PolicyRTM,
				Threads: th, Runs: opt.Runs, Seed: opt.Seed,
			})
			cells = append(cells, cell{wl: wl, ti: ti, rtm: true})
			specs = append(specs, Spec{
				Workload: wl, Scale: opt.Scale, Policy: seer.PolicySeer,
				SeerOpts: &profOpts,
				Threads:  th, Runs: opt.Runs, Seed: opt.Seed,
			})
			cells = append(cells, cell{wl: wl, ti: ti})
		}
	}
	var rtmMakespan float64
	_, err := RunGrid(opt, specs, func(i int, res Result) {
		c := cells[i]
		if c.rtm {
			rtmMakespan = res.MeanMakespan
			return
		}
		rel := data.PerWorkload[c.wl]
		rel[c.ti] = rtmMakespan / res.MeanMakespan
		if c.ti == len(Fig3Threads)-1 && progress != nil {
			fmt.Fprintf(progress, "fig4 %-14s %v\n", c.wl, fmtSeries(rel))
		}
	})
	if err != nil {
		return nil, err
	}
	for ti := range Fig3Threads {
		vals := make([]float64, 0, len(workloads))
		for _, wl := range workloads {
			vals = append(vals, data.PerWorkload[wl][ti])
		}
		data.Relative[ti] = GeoMean(vals)
	}
	return data, nil
}

// Render writes Figure 4 as text.
func (d *Fig4Data) Render(w io.Writer) {
	fmt.Fprintf(w, "\nFigure 4: Seer profiling overhead (speedup of profile-only Seer relative to RTM; 1.00 = free)\n")
	fmt.Fprintf(w, "%-14s", "workload")
	for _, th := range d.Threads {
		fmt.Fprintf(w, " %5dt", th)
	}
	fmt.Fprintln(w)
	for _, wl := range sortedKeys(d.PerWorkload) {
		fmt.Fprintf(w, "%-14s", wl)
		for _, v := range d.PerWorkload[wl] {
			fmt.Fprintf(w, " %6.3f", v)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-14s", "geomean")
	for _, v := range d.Relative {
		fmt.Fprintf(w, " %6.3f", v)
	}
	fmt.Fprintln(w)
}

// Fig5Data holds the cumulative ablation.
type Fig5Data struct {
	Workloads []string
	Variants  []string
	Threads   []int
	// Speedup[wl][variant][threadIdx], relative to the profile-only
	// variant at the same thread count (as in the paper's Figure 5).
	Speedup map[string]map[string][]float64
	// Geomean[variant][threadIdx].
	Geomean map[string][]float64
}

// Fig5 reproduces Figure 5: the speedup contributed by each Seer
// mechanism, cumulatively enabled over the profile-only baseline, plus
// the core-locks-only variant of the §5.3 discussion.
func Fig5(opt Options, workloads []string, progress io.Writer) (*Fig5Data, error) {
	opt = opt.normalized()
	if workloads == nil {
		workloads = opt.suite()
	}
	variants := SeerVariants()
	data := &Fig5Data{
		Workloads: workloads,
		Threads:   Table3Threads,
		Speedup:   map[string]map[string][]float64{},
		Geomean:   map[string][]float64{},
	}
	for _, v := range variants {
		data.Variants = append(data.Variants, v.Name)
	}
	// Grid: per workload, the profile-only variant's cells come first and
	// double as the baseline — a fixed seed makes re-running the identical
	// spec pointless, so the old separate baseline sweep is folded away.
	specs, cells := variantGrid(opt, workloads, data.Threads, variants)
	base := make([]float64, len(data.Threads))
	_, err := RunGrid(opt, specs, func(i int, res Result) {
		c := cells[i]
		if c.vi == 0 {
			base[c.ti] = res.MeanMakespan
		}
		if c.ti == 0 {
			if data.Speedup[c.wl] == nil {
				data.Speedup[c.wl] = map[string][]float64{}
			}
			data.Speedup[c.wl][c.name] = make([]float64, len(data.Threads))
		}
		series := data.Speedup[c.wl][c.name]
		series[c.ti] = base[c.ti] / res.MeanMakespan
		if c.ti == len(data.Threads)-1 && progress != nil {
			fmt.Fprintf(progress, "fig5 %-14s %-16s %v\n", c.wl, c.name, fmtSeries(series))
		}
	})
	if err != nil {
		return nil, err
	}
	for _, v := range data.Variants {
		gm := make([]float64, len(data.Threads))
		for ti := range data.Threads {
			vals := make([]float64, 0, len(workloads))
			for _, wl := range workloads {
				vals = append(vals, data.Speedup[wl][v][ti])
			}
			gm[ti] = GeoMean(vals)
		}
		data.Geomean[v] = gm
	}
	return data, nil
}

// Render writes Figure 5 as text.
func (d *Fig5Data) Render(w io.Writer) {
	fmt.Fprintf(w, "\nFigure 5: cumulative contribution of Seer's mechanisms (speedup vs profile-only)\n")
	for _, wl := range append(append([]string{}, d.Workloads...), "geomean") {
		fmt.Fprintf(w, "%-14s", wl)
		for _, th := range d.Threads {
			fmt.Fprintf(w, " %6dt", th)
		}
		fmt.Fprintln(w)
		for _, v := range d.Variants {
			var series []float64
			if wl == "geomean" {
				series = d.Geomean[v]
			} else {
				series = d.Speedup[wl][v]
			}
			fmt.Fprintf(w, "  %-16s", v)
			for _, s := range series {
				fmt.Fprintf(w, " %6.2f", s)
			}
			fmt.Fprintln(w)
		}
	}
}

// variantCell locates one (workload, variant, thread) measurement in a
// variant grid.
type variantCell struct {
	wl   string
	name string
	vi   int
	ti   int
}

// variantGrid enumerates the (workload × variant × thread) cells of a
// Seer-variant ablation. Variant 0 comes first within each workload so
// its results can serve as the baseline in RunGrid's ordered callback.
func variantGrid(opt Options, workloads []string, threads []int, variants []struct {
	Name string
	Opts seer.SeerOptions
}) ([]Spec, []variantCell) {
	var specs []Spec
	var cells []variantCell
	for _, wl := range workloads {
		for vi, v := range variants {
			opts := v.Opts
			for ti, th := range threads {
				specs = append(specs, Spec{
					Workload: wl, Scale: opt.Scale, Policy: seer.PolicySeer,
					SeerOpts: &opts, Threads: th, Runs: opt.Runs, Seed: opt.Seed,
				})
				cells = append(cells, variantCell{wl: wl, name: v.Name, vi: vi, ti: ti})
			}
		}
	}
	return specs, cells
}

// LockFracData summarizes the §5.2 fine-granularity statistic.
type LockFracData struct {
	PerWorkload map[string]struct {
		MedianFrac float64
		AcqEvents  uint64
		SGLPct     float64
	}
}

// LockFrac measures, per workload at 8 threads, the median fraction of
// transaction locks acquired when any are (§5.2 reports <23% in half the
// cases) and the SGL usage.
func LockFrac(opt Options, workloads []string) (*LockFracData, error) {
	opt = opt.normalized()
	if workloads == nil {
		workloads = opt.suite()
	}
	data := &LockFracData{PerWorkload: map[string]struct {
		MedianFrac float64
		AcqEvents  uint64
		SGLPct     float64
	}{}}
	specs := make([]Spec, len(workloads))
	for i, wl := range workloads {
		specs[i] = Spec{
			Workload: wl, Scale: opt.Scale, Policy: seer.PolicySeer,
			Threads: 8, Runs: opt.Runs, Seed: opt.Seed,
		}
	}
	_, err := RunGrid(opt, specs, func(i int, res Result) {
		var entry struct {
			MedianFrac float64
			AcqEvents  uint64
			SGLPct     float64
		}
		for _, rep := range res.Reports {
			if rep.Seer != nil {
				entry.MedianFrac += rep.Seer.LockFracMedian
				entry.AcqEvents += rep.Seer.LockAcqEvents
			}
			entry.SGLPct += rep.ModeFractions()[seer.ModeSGL]
		}
		n := float64(len(res.Reports))
		entry.MedianFrac /= n
		entry.SGLPct /= n
		data.PerWorkload[workloads[i]] = entry
	})
	if err != nil {
		return nil, err
	}
	return data, nil
}

// Render writes the lock-fraction summary as text.
func (d *LockFracData) Render(w io.Writer) {
	fmt.Fprintf(w, "\n§5.2: tx-lock granularity at 8 threads\n")
	fmt.Fprintf(w, "%-14s %12s %12s %8s\n", "workload", "medianFrac", "acqEvents", "SGL%")
	for _, wl := range sortedKeys(d.PerWorkload) {
		e := d.PerWorkload[wl]
		fmt.Fprintf(w, "%-14s %12.2f %12d %8.2f\n", wl, e.MedianFrac, e.AcqEvents, e.SGLPct)
	}
}

// Suite returns the Figure 3 workload list.
func Suite() []string { return append([]string{}, stamp.Suite...) }

// profileOnlyOpts returns the no-lock Seer variant used by Figure 4.
func profileOnlyOpts() seer.SeerOptions { return core.ProfileOnly() }

// sortedKeys returns the map's keys in sorted order, for stable rendering.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// helpers

func fmtSeries(s []float64) string {
	parts := make([]string, len(s))
	for i, v := range s {
		parts[i] = fmt.Sprintf("%.2f", v)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func renderSeriesTable(w io.Writer, threads []int, policies []seer.PolicyKind, series map[seer.PolicyKind][]float64) {
	fmt.Fprintf(w, "%-6s", "")
	for _, th := range threads {
		fmt.Fprintf(w, " %5dt", th)
	}
	fmt.Fprintln(w)
	for _, pol := range policies {
		fmt.Fprintf(w, "%-6s", pol)
		for _, v := range series[pol] {
			fmt.Fprintf(w, " %6.2f", v)
		}
		fmt.Fprintln(w)
	}
}
