package harness

import (
	"fmt"
	"io"

	"seer"
	"seer/internal/plot"
)

// The inference exhibit is the measurement the paper's authors could not
// produce on real TSX hardware: because the simulator knows the ground
// truth of every conflict abort (which line, which aborter, which block
// pair), it can score the locking scheme Seer infers from imprecise
// commit/abort statistics directly against the true conflict graph —
// precision, recall and rank divergence as functions of virtual time.

// InferenceEntry is one workload's inference-quality trajectory under
// the Seer policy.
type InferenceEntry struct {
	Workload string
	Report   seer.Report
}

// InferenceData holds the inference exhibit.
type InferenceData struct {
	Interval uint64
	Entries  []InferenceEntry
}

// Inference runs each workload once under Seer at 8 threads with the
// attribution counters on and collects the quality trajectories.
// interval 0 selects DefaultMetricsInterval.
func Inference(opt Options, workloads []string, interval uint64, progress io.Writer) (*InferenceData, error) {
	opt = opt.normalized()
	if workloads == nil {
		workloads = opt.suite()
	}
	if interval == 0 {
		interval = DefaultMetricsInterval
	}
	data := &InferenceData{Interval: interval}
	specs := make([]Spec, 0, len(workloads))
	for _, wl := range workloads {
		specs = append(specs, Spec{
			Workload: wl, Scale: opt.Scale, Policy: seer.PolicySeer,
			Threads: MachineHWThreads, Runs: 1, Seed: opt.Seed,
			MetricsInterval: interval, Inference: true,
		})
	}
	_, err := RunGrid(opt, specs, func(i int, res Result) {
		sp := specs[i]
		rep := res.Reports[0]
		data.Entries = append(data.Entries, InferenceEntry{Workload: sp.Workload, Report: rep})
		if progress != nil {
			fmt.Fprintf(progress, "inference %-14s %d snapshots\n", sp.Workload, len(rep.Inference))
		}
	})
	if err != nil {
		return nil, err
	}
	return data, nil
}

// Render writes one block per workload: precision/recall sparklines over
// virtual time plus the final quality figures.
func (d *InferenceData) Render(w io.Writer) {
	fmt.Fprintf(w, "\nInference quality: Seer's learned locks vs. ground-truth conflicts (interval = %d cycles, 8 threads)\n", d.Interval)
	const width = 48
	for _, e := range d.Entries {
		snaps := e.Report.Inference
		if len(snaps) == 0 {
			fmt.Fprintf(w, "%-14s no snapshots\n", e.Workload)
			continue
		}
		prec := make([]float64, len(snaps))
		rec := make([]float64, len(snaps))
		for i, q := range snaps {
			prec[i] = q.Precision
			rec[i] = q.Recall
		}
		fin := snaps[len(snaps)-1]
		fmt.Fprintf(w, "%s: %d snapshots, %d attributed aborts\n", e.Workload, len(snaps), fin.Attributed)
		fmt.Fprintf(w, "  precision   %s  [final %.3f]\n", plot.Sparkline(prec, width), fin.Precision)
		fmt.Fprintf(w, "  recall      %s  [final %.3f]\n", plot.Sparkline(rec, width), fin.Recall)
		fmt.Fprintf(w, "  final: true=%d predicted=%d tp=%d rank-divergence=%.3f\n",
			fin.TruePairs, fin.PredictedPairs, fin.TP, fin.RankDivergence)
	}
}
