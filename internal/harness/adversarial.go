package harness

import (
	"fmt"
	"io"

	"seer"
	"seer/internal/bench"
	"seer/internal/plot"

	// Register the adv-* conflict-graph workloads.
	_ "seer/internal/adversary"
)

// The adversarial exhibit runs the worst-case conflict graphs of the
// transactional conflict problem (ring, star, bipartite hot-spot,
// clique, and a phase-shifting mix) under every contention-management
// approach, normalizing throughput against blind retry (RTM). The
// phase-shift timeline then shows the structural weakness of learned
// scheduling: Seer's scheme quality (precision/recall against the
// txtrace ground truth) collapses when the conflict graph flips mid-run
// and recovers only as new statistics drown out the stale ones, while
// randomized backoff — which learns nothing — is unaffected.

// AdversarialGraphs is the exhibit's graph-family axis.
var AdversarialGraphs = []string{
	"adv-ring", "adv-star", "adv-bipartite", "adv-clique", "adv-phase",
}

// AdversarialPolicies spans blind retry, randomized backoff, serializing
// fall-backs, and the precise schedulers.
var AdversarialPolicies = []seer.PolicyKind{
	seer.PolicyRTM, seer.PolicyBackoff, seer.PolicySCM,
	seer.PolicyATS, seer.PolicyOracle, seer.PolicySeer,
}

// AdversarialData holds the exhibit: absolute throughput per (graph,
// policy) cell, plus the phase-shift trajectories.
type AdversarialData struct {
	Graphs   []string
	Policies []seer.PolicyKind
	// Throughput[graphIdx][polIdx] is the trimmed-mean commits/kcycle
	// over runs at 8 threads.
	Throughput [][]float64
	// Backoff[graphIdx] is the backoff counter report of the Backoff
	// cell (nil when the policy is absent from Policies).
	Backoff []*seer.BackoffReport

	// Phase-shift timeline (adv-phase): Seer's inference quality and
	// Backoff's interval throughput across the conflict-graph flip.
	Interval     uint64
	SeerPhase    seer.Report
	BackoffPhase seer.Report
}

// Adversarial runs the (graph × policy) grid at 8 threads plus the two
// phase-shift timeline cells. The timeline cells run at 4x the grid
// scale with a fine default interval (1<<12 cycles when interval is 0)
// so the trajectory spans many snapshots on both sides of the flip even
// at exhibit scales.
func Adversarial(opt Options, workloads []string, interval uint64, progress io.Writer) (*AdversarialData, error) {
	opt = opt.normalized()
	if workloads == nil {
		workloads = append([]string{}, AdversarialGraphs...)
	}
	if interval == 0 {
		interval = 1 << 12
	}
	phaseScale := opt.Scale * 4
	pols := AdversarialPolicies
	data := &AdversarialData{
		Graphs:     workloads,
		Policies:   pols,
		Throughput: make([][]float64, len(workloads)),
		Backoff:    make([]*seer.BackoffReport, len(workloads)),
		Interval:   interval,
	}
	for g := range data.Throughput {
		data.Throughput[g] = make([]float64, len(pols))
	}

	// One grid: the (graph × policy) cells followed by the two timeline
	// cells, so a single -parallel pool covers everything.
	var specs []Spec
	cells := bench.Cross(len(workloads), len(pols))
	for _, c := range cells {
		specs = append(specs, Spec{
			Workload: workloads[c[0]], Scale: opt.Scale, Policy: pols[c[1]],
			Threads: MachineHWThreads, Runs: opt.Runs, Seed: opt.Seed,
		})
	}
	seerPhaseIdx := len(specs)
	specs = append(specs, Spec{
		Workload: "adv-phase", Scale: phaseScale, Policy: seer.PolicySeer,
		Threads: MachineHWThreads, Runs: 1, Seed: opt.Seed,
		MetricsInterval: interval, Inference: true,
	})
	backoffPhaseIdx := len(specs)
	specs = append(specs, Spec{
		Workload: "adv-phase", Scale: phaseScale, Policy: seer.PolicyBackoff,
		Threads: MachineHWThreads, Runs: 1, Seed: opt.Seed,
		MetricsInterval: interval,
	})

	_, err := RunGrid(opt, specs, func(i int, res Result) {
		switch {
		case i < seerPhaseIdx:
			c := cells[i]
			vals := make([]float64, len(res.Reports))
			for r, rep := range res.Reports {
				vals[r] = rep.Throughput()
			}
			data.Throughput[c[0]][c[1]] = bench.TrimmedMean(vals, 0.2)
			if res.Spec.Policy == seer.PolicyBackoff {
				data.Backoff[c[0]] = res.Reports[len(res.Reports)-1].Backoff
			}
			if progress != nil {
				fmt.Fprintf(progress, "adversarial %-14s %-8s %.3f commits/kcycle\n",
					res.Spec.Workload, res.Spec.Policy, data.Throughput[c[0]][c[1]])
			}
		case i == seerPhaseIdx:
			data.SeerPhase = res.Reports[0]
		case i == backoffPhaseIdx:
			data.BackoffPhase = res.Reports[0]
		}
	})
	if err != nil {
		return nil, err
	}
	return data, nil
}

// polIdx returns the index of pol in d.Policies, or -1.
func (d *AdversarialData) polIdx(pol seer.PolicyKind) int {
	for i, p := range d.Policies {
		if p == pol {
			return i
		}
	}
	return -1
}

// Render writes the throughput and RTM-normalized tables, the backoff
// counters, and the phase-shift timeline.
func (d *AdversarialData) Render(w io.Writer) {
	cols := make([]string, len(d.Policies))
	for i, p := range d.Policies {
		cols[i] = string(p)
	}
	abs := bench.RatioTable{
		Title:     "\nAdversarial conflict graphs: throughput (commits/kcycle) at 8 threads",
		RowHeader: "graph",
		Rows:      d.Graphs, Cols: cols, Cells: d.Throughput,
	}
	abs.Render(w)

	if base := d.polIdx(seer.PolicyRTM); base >= 0 {
		rel := make([][]float64, len(d.Graphs))
		for g := range d.Graphs {
			rel[g] = make([]float64, len(d.Policies))
			for p := range d.Policies {
				if d.Throughput[g][base] > 0 {
					rel[g][p] = d.Throughput[g][p] / d.Throughput[g][base]
				}
			}
		}
		tbl := bench.RatioTable{
			Title:     "\nSpeedup over blind retry (RTM = 1.00)",
			RowHeader: "graph",
			Rows:      d.Graphs, Cols: cols, Cells: rel,
			Geomean: true,
		}
		tbl.Render(w)
	}

	fmt.Fprintf(w, "\nBackoff window dynamics per graph\n")
	for g, name := range d.Graphs {
		if br := d.Backoff[g]; br != nil {
			fmt.Fprintf(w, "%-14s waits=%d cycles=%d maxwindow=%d\n",
				name, br.Waits, br.Cycles, br.MaxWindow)
		}
	}

	const width = 48
	fmt.Fprintf(w, "\nPhase shift (adv-phase): conflict graph flips at the midpoint (interval = %d cycles)\n", d.Interval)
	if snaps := d.SeerPhase.Inference; len(snaps) > 0 {
		prec := make([]float64, len(snaps))
		rec := make([]float64, len(snaps))
		for i, q := range snaps {
			prec[i] = q.Precision
			rec[i] = q.Recall
		}
		fin := snaps[len(snaps)-1]
		fmt.Fprintf(w, "Seer scheme quality across the flip (%d snapshots)\n", len(snaps))
		fmt.Fprintf(w, "  precision   %s  [final %.3f]\n", plot.Sparkline(prec, width), fin.Precision)
		fmt.Fprintf(w, "  recall      %s  [final %.3f]\n", plot.Sparkline(rec, width), fin.Recall)
	}
	if tl := d.BackoffPhase.Timeline; len(tl) > 0 {
		vals := make([]float64, len(tl))
		for i, s := range tl {
			vals[i] = s.Throughput()
		}
		fmt.Fprintf(w, "Backoff interval throughput across the flip (%d intervals)\n", len(tl))
		fmt.Fprintf(w, "  commits/kc  %s\n", plot.Sparkline(vals, width))
		if br := d.BackoffPhase.Backoff; br != nil {
			fmt.Fprintf(w, "  backoff waits=%d cycles=%d maxwindow=%d\n",
				br.Waits, br.Cycles, br.MaxWindow)
		}
	}
}
