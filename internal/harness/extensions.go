package harness

import (
	"fmt"
	"io"

	"seer"
	"seer/internal/core"
)

// ExtData holds the future-work extension study: the paper's §6 sketches
// object-granular locks and sampled statistics; this experiment measures
// both against the stock scheduler.
type ExtData struct {
	Workloads []string
	Threads   []int
	// Speedup[wl][variant][threadIdx], relative to stock full Seer.
	Speedup  map[string]map[string][]float64
	Variants []string
	Geomean  map[string][]float64
}

// extVariants returns the extension configurations measured against the
// stock scheduler.
func extVariants() []struct {
	Name string
	Opts seer.SeerOptions
} {
	stock := core.DefaultOptions()

	obj := stock
	obj.ObjLocks = true
	obj.ObjStripes = 8

	sampled := stock
	sampled.SampleShift = 2 // profile 1 event in 4

	both := obj
	both.SampleShift = 2

	oracle := stock
	oracle.PreciseOracle = true

	return []struct {
		Name string
		Opts seer.SeerOptions
	}{
		{"stock", stock},
		{"+obj-locks", obj},
		{"+sampling/4", sampled},
		{"+both", both},
		{"oracle-input", oracle},
	}
}

// Extensions measures the §6 future-work extensions. Workloads that pass
// object identifiers (kmeans does) exercise the stripe locks; all
// workloads exercise sampling.
func Extensions(opt Options, workloads []string, progress io.Writer) (*ExtData, error) {
	opt = opt.normalized()
	if workloads == nil {
		workloads = opt.suite()
	}
	variants := extVariants()
	data := &ExtData{
		Workloads: workloads,
		Threads:   Table3Threads,
		Speedup:   map[string]map[string][]float64{},
		Geomean:   map[string][]float64{},
	}
	for _, v := range variants {
		data.Variants = append(data.Variants, v.Name)
	}
	// Grid: the stock variant's cells come first per workload and double
	// as the baseline (fixed seeds make a separate baseline sweep a
	// duplicate of variant 0).
	specs, cells := variantGrid(opt, workloads, data.Threads, variants)
	base := make([]float64, len(data.Threads))
	_, err := RunGrid(opt, specs, func(i int, res Result) {
		c := cells[i]
		if c.vi == 0 {
			base[c.ti] = res.MeanMakespan
		}
		if c.ti == 0 {
			if data.Speedup[c.wl] == nil {
				data.Speedup[c.wl] = map[string][]float64{}
			}
			data.Speedup[c.wl][c.name] = make([]float64, len(data.Threads))
		}
		series := data.Speedup[c.wl][c.name]
		series[c.ti] = base[c.ti] / res.MeanMakespan
		if c.ti == len(data.Threads)-1 && progress != nil {
			fmt.Fprintf(progress, "ext %-14s %-12s %v\n", c.wl, c.name, fmtSeries(series))
		}
	})
	if err != nil {
		return nil, err
	}
	for _, v := range data.Variants {
		gm := make([]float64, len(data.Threads))
		for ti := range data.Threads {
			vals := make([]float64, 0, len(workloads))
			for _, wl := range workloads {
				vals = append(vals, data.Speedup[wl][v][ti])
			}
			gm[ti] = GeoMean(vals)
		}
		data.Geomean[v] = gm
	}
	return data, nil
}

// Render writes the extension study as text.
func (d *ExtData) Render(w io.Writer) {
	fmt.Fprintf(w, "\nExtensions (§6 future work): speedup vs stock Seer\n")
	for _, wl := range append(append([]string{}, d.Workloads...), "geomean") {
		fmt.Fprintf(w, "%-14s", wl)
		for _, th := range d.Threads {
			fmt.Fprintf(w, " %6dt", th)
		}
		fmt.Fprintln(w)
		for _, v := range d.Variants {
			var series []float64
			if wl == "geomean" {
				series = d.Geomean[v]
			} else {
				series = d.Speedup[wl][v]
			}
			fmt.Fprintf(w, "  %-12s", v)
			for _, s := range series {
				fmt.Fprintf(w, " %6.2f", s)
			}
			fmt.Fprintln(w)
		}
	}
}
