package harness

import (
	"runtime"
	"sync"
	"sync/atomic"

	"seer"
	"seer/internal/bench"
)

// The experiment grids are embarrassingly parallel: every Spec builds its
// own simulated machine from its own seed, shares no mutable state with
// any other cell, and produces a deterministic Result. RunGrid is the one
// fan-out point all exhibits go through, so a single -parallel flag
// accelerates every experiment while keeping output bit-identical to a
// sequential sweep.

// BenchStats is the executor counter set of seerbench -bench-json; the
// implementation lives in internal/bench so layers below the harness can
// record into the same counters.
type BenchStats = bench.Counters

// record folds one completed cell into the totals (nil-safe).
func record(s *BenchStats, res Result) {
	var cycles uint64
	for _, rep := range res.Reports {
		cycles += rep.MakespanCycles
	}
	s.RecordCell(len(res.Reports), cycles)
}

// Workers resolves the executor width: 0 and 1 mean sequential, negative
// means one worker per available CPU, and anything larger is clamped to
// the number of cells by RunGrid.
func (o Options) workers() int {
	if o.Parallel < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if o.Parallel == 0 {
		return 1
	}
	return o.Parallel
}

// RunGrid executes the specs as independent cells on a worker pool of
// opt.Parallel goroutines and returns the results indexed like specs.
//
// Determinism: every cell's Result depends only on its Spec (fresh system,
// fresh seed, no shared state), so the returned slice is identical
// whatever the worker count or completion order. The progress callback is
// invoked in strictly increasing index order — a cell's callback fires
// only once all lower-indexed cells have completed — so streamed progress
// output is also byte-identical with and without parallelism.
//
// On error, the first failing index (not the first to fail in wall-clock
// order) determines the returned error, again for determinism.
func RunGrid(opt Options, specs []Spec, progress func(i int, res Result)) ([]Result, error) {
	if !opt.Topology.IsZero() || opt.RegistryShards != 0 || opt.Quantum != 0 {
		specs = append([]Spec(nil), specs...)
		for i := range specs {
			if !opt.Topology.IsZero() && specs[i].Topology.IsZero() {
				specs[i].Topology = opt.Topology
			}
			if opt.RegistryShards != 0 && specs[i].RegistryShards == 0 {
				specs[i].RegistryShards = opt.RegistryShards
			}
			if opt.Quantum != 0 && specs[i].Quantum == 0 {
				specs[i].Quantum = opt.Quantum
			}
		}
	}
	results := make([]Result, len(specs))
	errs := make([]error, len(specs))
	workers := opt.workers()
	if workers > len(specs) {
		workers = len(specs)
	}

	if workers <= 1 {
		rec := new(seer.Recycler)
		for i, sp := range specs {
			res, err := runOneWith(sp, rec)
			if err != nil {
				return results, err
			}
			record(opt.Stats, res)
			results[i] = res
			if progress != nil {
				progress(i, res)
			}
		}
		return results, nil
	}

	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		mu      sync.Mutex // guards done/emitted and orders progress calls
		done    = make([]bool, len(specs))
		emitted int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns a full simulator replica: every cell it
			// runs is built on its private recycled buffers, so no
			// mutable engine state — not even a freed buffer — crosses
			// worker goroutines, and the multi-megabyte per-cell state
			// is allocated once per worker rather than once per cell.
			rec := new(seer.Recycler)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				res, err := runOneWith(specs[i], rec)
				results[i], errs[i] = res, err
				if err == nil {
					record(opt.Stats, res)
				}
				mu.Lock()
				done[i] = true
				for emitted < len(specs) && done[emitted] {
					if errs[emitted] == nil && progress != nil {
						progress(emitted, results[emitted])
					}
					emitted++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
