// Package harness drives the paper's evaluation: it runs (workload ×
// policy × thread-count) grids on the simulated machine, averages over
// repetitions, computes speedups against the sequential uninstrumented
// baseline, and renders the tables and figures of the paper as text.
package harness

import (
	"fmt"

	"seer"
	"seer/internal/bench"
	"seer/internal/core"
	"seer/internal/stamp"
)

// MachineHWThreads and MachinePhysCores pin the simulated testbed to the
// paper's: a 4-core, 8-hardware-thread processor. Thread counts 1–4 land
// on distinct physical cores; 5–8 start doubling up hyperthread siblings
// (worker i runs on hardware thread i, and threads t, t+4 share a core).
const (
	MachineHWThreads = 8
	MachinePhysCores = 4
)

// Spec describes one measurement cell.
type Spec struct {
	Workload string
	Scale    float64
	Policy   seer.PolicyKind
	// SeerOpts overrides the scheduler options (nil = core defaults);
	// used for the Figure 4/5 variants.
	SeerOpts *seer.SeerOptions
	// MaxAttempts overrides the hardware retry budget (0 = the paper's 5).
	MaxAttempts int
	Threads     int
	Runs        int
	Seed        int64
	// MetricsInterval enables the telemetry timeline on every run of
	// this cell (cycles per snapshot; 0 = disabled). The snapshots are
	// attached to each Report in Result.Reports.
	MetricsInterval uint64
	// Topology, when non-zero, replaces the default 8-thread testbed
	// shape for this cell (the scaling experiment sweeps it).
	Topology seer.Topology
	// RemoteAccessCost charges extra cycles for cross-socket accesses on
	// multi-socket topologies (see seer.Config.RemoteAccessCost).
	RemoteAccessCost uint64
	// Inference enables the abort-attribution counters and, under the
	// Seer policy, the inference-quality trajectory in Report.Inference
	// (see seer.Config.AttributionCounters).
	Inference bool
	// RegistryShards sets the conflict registry's shard count for this
	// cell (0 = auto by machine shape; see seer.Config.RegistryShards).
	// Pure data layout — results are identical at any count.
	RegistryShards int
	// Quantum sets the speculative-quantum budget for this cell: 0 keeps
	// the library default (seer.DefaultSpeculativeQuantum), -1 disables
	// speculation, and any positive K grants quanta of up to K pure
	// ticks. Pure engine mechanics — results are identical at any
	// setting (the quantum on/off CI gate pins this).
	Quantum int
}

// Result aggregates the repetitions of one Spec.
type Result struct {
	Spec    Spec
	Reports []seer.Report
	// MeanMakespan is the arithmetic mean of makespans over runs.
	MeanMakespan float64
	// MeanModePct averages the Table 3 percentage breakdown.
	MeanModePct [seer.NumModes]float64
}

// RunOne executes one Spec on a fresh simulator.
func RunOne(spec Spec) (Result, error) { return runOneWith(spec, nil) }

// runOneWith executes one Spec, building each run's simulator replica on
// rec's buffers when rec is non-nil (the per-worker replica path of
// RunGrid). Results are identical either way: a recycled replica is
// reset to power-on state before use.
func runOneWith(spec Spec, rec *seer.Recycler) (Result, error) {
	if spec.Runs <= 0 {
		spec.Runs = 1
	}
	res := Result{Spec: spec}
	for run := 0; run < spec.Runs; run++ {
		rep, err := runOnce(spec, spec.Seed+int64(run)*7919, rec)
		if err != nil {
			return res, fmt.Errorf("%s/%s/%dt run %d: %w",
				spec.Workload, spec.Policy, spec.Threads, run, err)
		}
		res.Reports = append(res.Reports, rep)
		res.MeanMakespan += float64(rep.MakespanCycles)
		pct := rep.ModeFractions()
		for i := range pct {
			res.MeanModePct[i] += pct[i]
		}
	}
	res.MeanMakespan /= float64(spec.Runs)
	for i := range res.MeanModePct {
		res.MeanModePct[i] /= float64(spec.Runs)
	}
	return res, nil
}

// runOnce builds a system and workload, runs, and validates. With a
// recycler the system is a replica built on the caller's reusable
// buffers, returned to it after validation.
func runOnce(spec Spec, seed int64, rec *seer.Recycler) (seer.Report, error) {
	wl, err := stamp.New(spec.Workload, spec.Scale)
	if err != nil {
		return seer.Report{}, err
	}
	cfg := seer.DefaultConfig()
	cfg.Threads = spec.Threads
	if spec.Topology.IsZero() {
		cfg.HWThreads = MachineHWThreads
		cfg.PhysCores = MachinePhysCores
		if spec.Threads > MachineHWThreads {
			cfg.HWThreads = spec.Threads
		}
	} else {
		cfg.Topology = spec.Topology
		cfg.RemoteAccessCost = spec.RemoteAccessCost
	}
	cfg.Seed = seed
	cfg.Policy = spec.Policy
	cfg.NumAtomicBlocks = wl.NumAtomicBlocks()
	cfg.MemWords = wl.MemWords() + (1 << 14)
	if !spec.Topology.IsZero() {
		// Wide machines grow per-thread state in simulated memory (arena
		// shard lines and slack chunks, thread-stat lines); extra words
		// only extend the address space, they never shift the layout.
		cfg.MemWords += spec.Topology.Threads() * 2048
	}
	cfg.MaxCycles = 1 << 36 // livelock guard
	if spec.MaxAttempts > 0 {
		cfg.MaxAttempts = spec.MaxAttempts
	}
	if spec.SeerOpts != nil {
		cfg.Seer = *spec.SeerOpts
	} else {
		cfg.Seer = core.DefaultOptions()
	}
	cfg.MetricsInterval = spec.MetricsInterval
	cfg.AttributionCounters = spec.Inference
	cfg.RegistryShards = spec.RegistryShards
	switch {
	case spec.Quantum < 0:
		cfg.SpeculativeQuantum = 0
	case spec.Quantum > 0:
		cfg.SpeculativeQuantum = spec.Quantum
	}
	cfg.Recycler = rec
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		return seer.Report{}, err
	}
	if err := wl.Setup(sys); err != nil {
		return seer.Report{}, fmt.Errorf("setup failed: %w", err)
	}
	rep, err := sys.Run(wl.Workers(spec.Threads))
	if err != nil {
		return seer.Report{}, err
	}
	if err := wl.Validate(sys); err != nil {
		return seer.Report{}, fmt.Errorf("validation failed: %w", err)
	}
	sys.Release()
	return rep, nil
}

// SequentialBaseline measures the uninstrumented single-thread makespan
// of a workload (the denominator of every speedup in Figure 3).
func SequentialBaseline(workload string, scale float64, runs int, seed int64) (float64, error) {
	res, err := RunOne(Spec{
		Workload: workload, Scale: scale,
		Policy: seer.PolicySeq, Threads: 1, Runs: runs, Seed: seed,
	})
	if err != nil {
		return 0, err
	}
	return res.MeanMakespan, nil
}

// Speedup converts a Result to a speedup given the sequential baseline
// makespan.
func Speedup(baseline float64, r Result) float64 {
	if r.MeanMakespan == 0 {
		return 0
	}
	return baseline / r.MeanMakespan
}

// GeoMean returns the geometric mean of vals (ignoring non-positive
// entries, which would otherwise poison the product). It delegates to
// the shared implementation in internal/bench.
func GeoMean(vals []float64) float64 { return bench.GeoMean(vals) }

// SeerVariants returns the cumulative option sets of Figure 5, in
// presentation order, plus the core-locks-only variant discussed in §5.3.
func SeerVariants() []struct {
	Name string
	Opts seer.SeerOptions
} {
	base := core.DefaultOptions()
	off := base
	off.TxLocks, off.CoreLocks, off.HTMLockAcq, off.HillClimb = false, false, false, false

	tx := off
	tx.TxLocks = true

	txCore := tx
	txCore.CoreLocks = true

	txCoreCAS := txCore
	txCoreCAS.HTMLockAcq = true

	full := txCoreCAS
	full.HillClimb = true

	coreOnly := off
	coreOnly.CoreLocks = true

	return []struct {
		Name string
		Opts seer.SeerOptions
	}{
		{"profile-only", off},
		{"+tx-locks", tx},
		{"+core-locks", txCore},
		{"+htm-locks", txCoreCAS},
		{"+hill-climbing", full},
		{"core-locks-only", coreOnly},
	}
}
