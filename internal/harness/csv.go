package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"seer"
)

// WriteCSV renders experiment data as CSV for downstream plotting. Each
// exhibit writes its own column layout; all include a leading "exhibit"
// column so several can share one file.

// WriteCSV writes Figure 3 speedups, one row per
// (workload, policy, threads) cell.
func (d *Fig3Data) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"exhibit", "workload", "policy", "threads", "speedup"}); err != nil {
		return err
	}
	emit := func(wl string, series map[seer.PolicyKind][]float64) error {
		for _, pol := range d.Policies {
			for ti, th := range d.Threads {
				rec := []string{"fig3", wl, string(pol),
					strconv.Itoa(th), formatFloat(series[pol][ti])}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, wl := range d.Workloads {
		if err := emit(wl, d.Speedup[wl]); err != nil {
			return err
		}
	}
	if err := emit("geomean", d.Geomean); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV writes Table 3 percentages, one row per
// (policy, threads, mode).
func (d *Table3Data) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"exhibit", "policy", "threads", "mode", "percent"}); err != nil {
		return err
	}
	for _, pol := range d.Policies {
		for ti, th := range d.Threads {
			for m := seer.Mode(0); m < seer.NumModes; m++ {
				rec := []string{"table3", string(pol), strconv.Itoa(th),
					m.String(), formatFloat(d.Pct[pol][ti][m])}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV writes Figure 4 relative speeds, one row per
// (workload, threads).
func (d *Fig4Data) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"exhibit", "workload", "threads", "relative_speed"}); err != nil {
		return err
	}
	for wl, series := range d.PerWorkload {
		for ti, th := range d.Threads {
			if err := cw.Write([]string{"fig4", wl, strconv.Itoa(th), formatFloat(series[ti])}); err != nil {
				return err
			}
		}
	}
	for ti, th := range d.Threads {
		if err := cw.Write([]string{"fig4", "geomean", strconv.Itoa(th), formatFloat(d.Relative[ti])}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV writes Figure 5 speedups, one row per
// (workload, variant, threads).
func (d *Fig5Data) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"exhibit", "workload", "variant", "threads", "speedup_vs_profile_only"}); err != nil {
		return err
	}
	emit := func(wl string, series map[string][]float64) error {
		for _, v := range d.Variants {
			for ti, th := range d.Threads {
				if err := cw.Write([]string{"fig5", wl, v, strconv.Itoa(th), formatFloat(series[v][ti])}); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, wl := range d.Workloads {
		if err := emit(wl, d.Speedup[wl]); err != nil {
			return err
		}
	}
	if err := emit("geomean", d.Geomean); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string {
	return fmt.Sprintf("%.4f", v)
}
