package harness

import (
	"encoding/csv"
	"fmt"
	"io"

	"seer"
	"seer/internal/plot"
	"seer/internal/telemetry"
)

// The timeline exhibit goes beyond the paper's end-of-run aggregates: it
// records how throughput, the abort mix and Seer's control state (Θ₁/Θ₂,
// locking-scheme size) evolve over virtual time within a run, which is
// the signal the self-tuning machinery actually acts on.

// DefaultMetricsInterval is the snapshot period used when the caller
// passes 0: coarse enough to keep timelines small at scale 1, fine
// enough to resolve the hill climber's epochs.
const DefaultMetricsInterval uint64 = 1 << 16

// TimelineEntry is the timeline of one (workload, policy) run.
type TimelineEntry struct {
	Workload string
	Policy   seer.PolicyKind
	Report   seer.Report
}

// TimelineData holds the timeline exhibit.
type TimelineData struct {
	Interval uint64
	Entries  []TimelineEntry
}

// Timelines runs each (workload × policy) cell once at 8 threads with
// interval metrics enabled and collects the per-interval series. interval
// 0 selects DefaultMetricsInterval.
func Timelines(opt Options, workloads []string, policies []seer.PolicyKind, interval uint64, progress io.Writer) (*TimelineData, error) {
	opt = opt.normalized()
	if workloads == nil {
		workloads = opt.suite()
	}
	if policies == nil {
		policies = []seer.PolicyKind{seer.PolicyRTM, seer.PolicySeer}
	}
	if interval == 0 {
		interval = DefaultMetricsInterval
	}
	data := &TimelineData{Interval: interval}
	var specs []Spec
	for _, wl := range workloads {
		for _, pol := range policies {
			specs = append(specs, Spec{
				Workload: wl, Scale: opt.Scale, Policy: pol,
				Threads: MachineHWThreads, Runs: 1, Seed: opt.Seed,
				MetricsInterval: interval,
			})
		}
	}
	_, err := RunGrid(opt, specs, func(i int, res Result) {
		sp := specs[i]
		rep := res.Reports[0]
		data.Entries = append(data.Entries, TimelineEntry{Workload: sp.Workload, Policy: sp.Policy, Report: rep})
		if progress != nil {
			fmt.Fprintf(progress, "timeline %-14s %-6s %d intervals\n", sp.Workload, sp.Policy, len(rep.Timeline))
		}
	})
	if err != nil {
		return nil, err
	}
	return data, nil
}

// Render writes one sparkline block per entry.
func (d *TimelineData) Render(w io.Writer) {
	fmt.Fprintf(w, "\nTimelines: per-interval dynamics (interval = %d cycles, 8 threads)\n", d.Interval)
	for _, e := range d.Entries {
		RenderTimeline(w, fmt.Sprintf("%s/%s", e.Workload, e.Policy), e.Report.Timeline)
	}
}

// RenderTimeline writes a compact sparkline view of one timeline: the
// per-interval throughput and abort rate, and — when the Seer scheduler
// ran — the Θ₁/Θ₂ trajectory and the locking scheme's pair count.
func RenderTimeline(w io.Writer, title string, snaps []seer.Snapshot) {
	const width = 64
	if len(snaps) == 0 {
		fmt.Fprintf(w, "%s: no timeline (MetricsInterval disabled?)\n", title)
		return
	}
	thr := make([]float64, len(snaps))
	abr := make([]float64, len(snaps))
	th1 := make([]float64, len(snaps))
	th2 := make([]float64, len(snaps))
	pairs := make([]float64, len(snaps))
	var thrMin, thrMax float64
	seerRun := false
	for i, s := range snaps {
		thr[i] = s.Throughput()
		abr[i] = s.AbortRate()
		th1[i] = s.Th1
		th2[i] = s.Th2
		pairs[i] = float64(s.SchemePairs)
		if i == 0 || thr[i] < thrMin {
			thrMin = thr[i]
		}
		if thr[i] > thrMax {
			thrMax = thr[i]
		}
		if s.Th1 != 0 || s.Th2 != 0 || s.SchemePairs != 0 {
			seerRun = true
		}
	}
	fmt.Fprintf(w, "%s: %d intervals\n", title, len(snaps))
	fmt.Fprintf(w, "  throughput  %s  [%.3f..%.3f commits/kcycle]\n", plot.Sparkline(thr, width), thrMin, thrMax)
	fmt.Fprintf(w, "  abort rate  %s  [last %.2f]\n", plot.Sparkline(abr, width), abr[len(abr)-1])
	if seerRun {
		fmt.Fprintf(w, "  Θ1 walk     %s  [%.3f → %.3f]\n", plot.Sparkline(th1, width), th1[0], th1[len(th1)-1])
		fmt.Fprintf(w, "  Θ2 walk     %s  [%.3f → %.3f]\n", plot.Sparkline(th2, width), th2[0], th2[len(th2)-1])
		fmt.Fprintf(w, "  scheme prs  %s  [last %.0f]\n", plot.Sparkline(pairs, width), pairs[len(pairs)-1])
	}
}

// WriteCSV writes the exhibit as CSV, one row per (workload, policy,
// interval), prefixed with the shared "exhibit" column so it can share a
// file with the other exhibits.
func (d *TimelineData) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"exhibit", "workload", "policy"}, telemetry.CSVHeader()...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, e := range d.Entries {
		for _, s := range e.Report.Timeline {
			rec := append([]string{"timeline", e.Workload, string(e.Policy)}, telemetry.CSVRecord(s)...)
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
