package harness

import (
	"fmt"
	"io"

	"seer"
)

// AttemptsData holds the retry-budget ablation: the paper adopts Intel's
// recommended 5 hardware attempts for STAMP; this experiment sweeps the
// budget to show how sensitive each policy is to it.
type AttemptsData struct {
	Budgets  []int
	Policies []seer.PolicyKind
	// Throughput[policy][budgetIdx] is the geomean commits/kcycle
	// across the workloads at 8 threads.
	Throughput map[seer.PolicyKind][]float64
}

// AttemptBudgets is the swept axis.
var AttemptBudgets = []int{1, 2, 3, 5, 8, 12}

// Attempts sweeps the hardware retry budget at 8 threads.
func Attempts(opt Options, workloads []string, progress io.Writer) (*AttemptsData, error) {
	opt = opt.normalized()
	if workloads == nil {
		workloads = opt.suite()
	}
	policies := []seer.PolicyKind{seer.PolicyRTM, seer.PolicySCM, seer.PolicySeer}
	data := &AttemptsData{
		Budgets:    AttemptBudgets,
		Policies:   policies,
		Throughput: map[seer.PolicyKind][]float64{},
	}
	type cell struct {
		pol  seer.PolicyKind
		bi   int
		last bool // last workload of the (pol, budget) block
	}
	var specs []Spec
	var cells []cell
	for _, pol := range policies {
		data.Throughput[pol] = make([]float64, len(AttemptBudgets))
		for bi, budget := range AttemptBudgets {
			for wi, wl := range workloads {
				specs = append(specs, Spec{
					Workload: wl, Scale: opt.Scale, Policy: pol,
					MaxAttempts: budget,
					Threads:     8, Runs: opt.Runs, Seed: opt.Seed,
				})
				cells = append(cells, cell{pol: pol, bi: bi, last: wi == len(workloads)-1})
			}
		}
	}
	vals := make([]float64, 0, len(workloads))
	_, err := RunGrid(opt, specs, func(i int, res Result) {
		c := cells[i]
		var tp float64
		for _, rep := range res.Reports {
			tp += rep.Throughput()
		}
		vals = append(vals, tp/float64(len(res.Reports)))
		if !c.last {
			return
		}
		data.Throughput[c.pol][c.bi] = GeoMean(vals)
		vals = vals[:0]
		if progress != nil {
			fmt.Fprintf(progress, "attempts %-5s budget=%-2d %.3f\n", c.pol, AttemptBudgets[c.bi], data.Throughput[c.pol][c.bi])
		}
	})
	if err != nil {
		return nil, err
	}
	return data, nil
}

// Render writes the ablation as text.
func (d *AttemptsData) Render(w io.Writer) {
	fmt.Fprintf(w, "\nRetry-budget ablation: geomean throughput (commits/kcycle) at 8 threads\n")
	fmt.Fprintf(w, "%-6s", "")
	for _, b := range d.Budgets {
		fmt.Fprintf(w, " %6d", b)
	}
	fmt.Fprintln(w)
	for _, pol := range d.Policies {
		fmt.Fprintf(w, "%-6s", pol)
		for _, v := range d.Throughput[pol] {
			fmt.Fprintf(w, " %6.2f", v)
		}
		fmt.Fprintln(w)
	}
}
