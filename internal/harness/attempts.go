package harness

import (
	"fmt"
	"io"

	"seer"
)

// AttemptsData holds the retry-budget ablation: the paper adopts Intel's
// recommended 5 hardware attempts for STAMP; this experiment sweeps the
// budget to show how sensitive each policy is to it.
type AttemptsData struct {
	Budgets  []int
	Policies []seer.PolicyKind
	// Throughput[policy][budgetIdx] is the geomean commits/kcycle
	// across the workloads at 8 threads.
	Throughput map[seer.PolicyKind][]float64
}

// AttemptBudgets is the swept axis.
var AttemptBudgets = []int{1, 2, 3, 5, 8, 12}

// Attempts sweeps the hardware retry budget at 8 threads.
func Attempts(opt Options, workloads []string, progress io.Writer) (*AttemptsData, error) {
	opt = opt.normalized()
	if workloads == nil {
		workloads = Suite()
	}
	policies := []seer.PolicyKind{seer.PolicyRTM, seer.PolicySCM, seer.PolicySeer}
	data := &AttemptsData{
		Budgets:    AttemptBudgets,
		Policies:   policies,
		Throughput: map[seer.PolicyKind][]float64{},
	}
	for _, pol := range policies {
		series := make([]float64, len(AttemptBudgets))
		for bi, budget := range AttemptBudgets {
			vals := make([]float64, 0, len(workloads))
			for _, wl := range workloads {
				res, err := RunOne(Spec{
					Workload: wl, Scale: opt.Scale, Policy: pol,
					MaxAttempts: budget,
					Threads:     8, Runs: opt.Runs, Seed: opt.Seed,
				})
				if err != nil {
					return nil, err
				}
				var tp float64
				for _, rep := range res.Reports {
					tp += rep.Throughput()
				}
				vals = append(vals, tp/float64(len(res.Reports)))
			}
			series[bi] = GeoMean(vals)
			if progress != nil {
				fmt.Fprintf(progress, "attempts %-5s budget=%-2d %.3f\n", pol, budget, series[bi])
			}
		}
		data.Throughput[pol] = series
	}
	return data, nil
}

// Render writes the ablation as text.
func (d *AttemptsData) Render(w io.Writer) {
	fmt.Fprintf(w, "\nRetry-budget ablation: geomean throughput (commits/kcycle) at 8 threads\n")
	fmt.Fprintf(w, "%-6s", "")
	for _, b := range d.Budgets {
		fmt.Fprintf(w, " %6d", b)
	}
	fmt.Fprintln(w)
	for _, pol := range d.Policies {
		fmt.Fprintf(w, "%-6s", pol)
		for _, v := range d.Throughput[pol] {
			fmt.Fprintf(w, " %6.2f", v)
		}
		fmt.Fprintln(w)
	}
}
