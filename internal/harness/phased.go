package harness

import (
	"fmt"
	"io"

	"seer"
	"seer/internal/bench"
	"seer/internal/stamp"
)

// The phased exhibit compares the phased runtime ("PhTM") against blind
// retry (RTM), serializing contention management (SCM) and the learned
// scheduler (Seer) across the STAMP suite plus a capacity-bound
// microbenchmark whose every atomic block overflows the hardware write
// budget. On the suite the phased runtime should track RTM (the mode
// word stays in HW); on the capacity-bound workload HTM-only policies
// serialize the machine through the single global lock, while PhTM
// commits the disjoint footprints concurrently on its software path —
// the PhTM-Star argument, visible as a lower SGL share and higher
// throughput.

// PhasedWorkloads is the exhibit's workload axis: the paper suite plus
// the capacity-bound microbenchmark.
var PhasedWorkloads = append(append([]string{}, stamp.Suite...), "capbound")

// PhasedPolicies spans blind retry, serializing CM, the learned
// scheduler, and the phased runtime.
var PhasedPolicies = []seer.PolicyKind{
	seer.PolicyRTM, seer.PolicySCM, seer.PolicySeer, seer.PolicyPhased,
}

// PhasedData holds the exhibit: absolute throughput, per-cell global-
// lock and software-mode commit shares, and the PhTM cell's runtime
// digest per workload.
type PhasedData struct {
	Workloads []string
	Policies  []seer.PolicyKind
	// Throughput[wlIdx][polIdx] is the trimmed-mean commits/kcycle over
	// runs at 8 threads.
	Throughput [][]float64
	// SGLShare[wlIdx][polIdx] is the percentage of commits that went
	// through the single global lock (the serialization measure).
	SGLShare [][]float64
	// SWShare[wlIdx][polIdx] is the percentage of commits on the
	// software path (nonzero only in the PhTM column).
	SWShare [][]float64
	// Phased[wlIdx] is the PhTM cell's mode-word digest.
	Phased []*seer.PhasedReport
}

// Phased runs the (workload × policy) grid at 8 threads.
func Phased(opt Options, workloads []string, progress io.Writer) (*PhasedData, error) {
	opt = opt.normalized()
	if workloads == nil {
		workloads = append([]string{}, PhasedWorkloads...)
	}
	pols := PhasedPolicies
	data := &PhasedData{
		Workloads:  workloads,
		Policies:   pols,
		Throughput: make([][]float64, len(workloads)),
		SGLShare:   make([][]float64, len(workloads)),
		SWShare:    make([][]float64, len(workloads)),
		Phased:     make([]*seer.PhasedReport, len(workloads)),
	}
	for g := range data.Throughput {
		data.Throughput[g] = make([]float64, len(pols))
		data.SGLShare[g] = make([]float64, len(pols))
		data.SWShare[g] = make([]float64, len(pols))
	}

	var specs []Spec
	cells := bench.Cross(len(workloads), len(pols))
	for _, c := range cells {
		specs = append(specs, Spec{
			Workload: workloads[c[0]], Scale: opt.Scale, Policy: pols[c[1]],
			Threads: MachineHWThreads, Runs: opt.Runs, Seed: opt.Seed,
		})
	}
	_, err := RunGrid(opt, specs, func(i int, res Result) {
		c := cells[i]
		vals := make([]float64, len(res.Reports))
		for r, rep := range res.Reports {
			vals[r] = rep.Throughput()
		}
		data.Throughput[c[0]][c[1]] = bench.TrimmedMean(vals, 0.2)
		last := res.Reports[len(res.Reports)-1]
		if commits := last.Commits(); commits > 0 {
			data.SGLShare[c[0]][c[1]] = 100 * float64(last.Modes[seer.ModeSGL]) / float64(commits)
			data.SWShare[c[0]][c[1]] = 100 * float64(last.Modes[seer.ModeSTM]) / float64(commits)
		}
		if res.Spec.Policy == seer.PolicyPhased {
			data.Phased[c[0]] = last.Phased
		}
		if progress != nil {
			fmt.Fprintf(progress, "phased %-14s %-8s %.3f commits/kcycle (SGL %.1f%%)\n",
				res.Spec.Workload, res.Spec.Policy,
				data.Throughput[c[0]][c[1]], data.SGLShare[c[0]][c[1]])
		}
	})
	if err != nil {
		return nil, err
	}
	return data, nil
}

// polIdx returns the index of pol in d.Policies, or -1.
func (d *PhasedData) polIdx(pol seer.PolicyKind) int {
	for i, p := range d.Policies {
		if p == pol {
			return i
		}
	}
	return -1
}

// Render writes the throughput, speedup, and serialization tables plus
// the PhTM mode-word digest per workload.
func (d *PhasedData) Render(w io.Writer) {
	cols := make([]string, len(d.Policies))
	for i, p := range d.Policies {
		cols[i] = string(p)
	}
	abs := bench.RatioTable{
		Title:     "\nPhased TM: throughput (commits/kcycle) at 8 threads",
		RowHeader: "workload",
		Rows:      d.Workloads, Cols: cols, Cells: d.Throughput,
	}
	abs.Render(w)

	if base := d.polIdx(seer.PolicyRTM); base >= 0 {
		rel := make([][]float64, len(d.Workloads))
		for g := range d.Workloads {
			rel[g] = make([]float64, len(d.Policies))
			for p := range d.Policies {
				if d.Throughput[g][base] > 0 {
					rel[g][p] = d.Throughput[g][p] / d.Throughput[g][base]
				}
			}
		}
		tbl := bench.RatioTable{
			Title:     "\nSpeedup over blind retry (RTM = 1.00)",
			RowHeader: "workload",
			Rows:      d.Workloads, Cols: cols, Cells: rel,
			Geomean: true,
		}
		tbl.Render(w)
	}

	sgl := bench.RatioTable{
		Title:     "\nGlobal-lock serialization: % of commits through the SGL",
		RowHeader: "workload",
		Rows:      d.Workloads, Cols: cols, Cells: d.SGLShare,
	}
	sgl.Render(w)

	fmt.Fprintf(w, "\nPhTM mode-word digest per workload\n")
	for g, name := range d.Workloads {
		pr := d.Phased[g]
		if pr == nil {
			continue
		}
		pi := d.polIdx(seer.PolicyPhased)
		sw := 0.0
		if pi >= 0 {
			sw = d.SWShare[g][pi]
		}
		total := pr.ModeCycles[0] + pr.ModeCycles[1] + pr.ModeCycles[2]
		occ := [3]float64{}
		if total > 0 {
			for i := range occ {
				occ[i] = 100 * float64(pr.ModeCycles[i]) / float64(total)
			}
		}
		fmt.Fprintf(w, "%-14s sw-commits=%5.1f%% deferrals=%d undeferrals=%d transitions=%d occupancy hw=%.1f%% sw=%.1f%% glock=%.1f%%\n",
			name, sw, pr.Deferrals, pr.Undeferrals, pr.Transitions,
			occ[0], occ[1], occ[2])
	}
}
