package tmds

import (
	"seer/internal/mem"
)

// Heap is a binary min-heap of (priority, value) pairs in simulated
// memory — the analogue of STAMP's pqueue (labyrinth orders its routing
// requests by estimated length; yada orders bad triangles by angle).
//
// Layout:
//
//	header (1 line): [0] size, [1] capacity
//	slots: capacity pairs of words [priority, value]
type Heap struct {
	header mem.Addr
	slots  mem.Addr
	cap    uint64
}

const (
	heapOffSize = 0
	heapOffCap  = 1
)

// NewHeap builds an empty heap holding up to capacity entries.
func NewHeap(m *mem.Memory, capacity int) *Heap {
	if capacity < 1 {
		panic("tmds: NewHeap needs capacity >= 1")
	}
	h := &Heap{cap: uint64(capacity)}
	h.header = m.AllocLines(1)
	h.slots = m.AllocAligned(2 * capacity)
	m.Poke(h.header+heapOffSize, 0)
	m.Poke(h.header+heapOffCap, uint64(capacity))
	return h
}

func (h *Heap) prioAddr(i uint64) mem.Addr { return h.slots + mem.Addr(2*i) }
func (h *Heap) valAddr(i uint64) mem.Addr  { return h.slots + mem.Addr(2*i+1) }

// Len returns the number of stored entries.
func (h *Heap) Len(acc mem.Access) int {
	return int(acc.Load(h.header + heapOffSize))
}

// Push inserts (prio, val); it reports false when the heap is full.
func (h *Heap) Push(acc mem.Access, prio, val uint64) bool {
	n := acc.Load(h.header + heapOffSize)
	if n >= h.cap {
		return false
	}
	// Sift up.
	i := n
	for i > 0 {
		parent := (i - 1) / 2
		pp := acc.Load(h.prioAddr(parent))
		if pp <= prio {
			break
		}
		acc.Store(h.prioAddr(i), pp)
		acc.Store(h.valAddr(i), acc.Load(h.valAddr(parent)))
		i = parent
	}
	acc.Store(h.prioAddr(i), prio)
	acc.Store(h.valAddr(i), val)
	acc.Store(h.header+heapOffSize, n+1)
	return true
}

// Pop removes and returns the minimum-priority entry; ok is false when
// the heap is empty.
func (h *Heap) Pop(acc mem.Access) (prio, val uint64, ok bool) {
	n := acc.Load(h.header + heapOffSize)
	if n == 0 {
		return 0, 0, false
	}
	prio = acc.Load(h.prioAddr(0))
	val = acc.Load(h.valAddr(0))
	n--
	acc.Store(h.header+heapOffSize, n)
	if n == 0 {
		return prio, val, true
	}
	// Move the last entry to the root and sift down.
	lp := acc.Load(h.prioAddr(n))
	lv := acc.Load(h.valAddr(n))
	i := uint64(0)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		sp := lp
		if l < n {
			if p := acc.Load(h.prioAddr(l)); p < sp {
				smallest, sp = l, p
			}
		}
		if r < n {
			if p := acc.Load(h.prioAddr(r)); p < sp {
				smallest, sp = r, p
			}
		}
		if smallest == i {
			break
		}
		acc.Store(h.prioAddr(i), sp)
		acc.Store(h.valAddr(i), acc.Load(h.valAddr(smallest)))
		i = smallest
	}
	acc.Store(h.prioAddr(i), lp)
	acc.Store(h.valAddr(i), lv)
	return prio, val, true
}

// Min returns the minimum entry without removing it.
func (h *Heap) Min(acc mem.Access) (prio, val uint64, ok bool) {
	if acc.Load(h.header+heapOffSize) == 0 {
		return 0, 0, false
	}
	return acc.Load(h.prioAddr(0)), acc.Load(h.valAddr(0)), true
}
