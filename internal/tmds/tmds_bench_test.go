package tmds

import (
	"testing"

	"seer/internal/mem"
)

func benchEnv(words int) (*mem.Memory, rawAccess, *Arena) {
	m := mem.New(words)
	return m, rawAccess{m}, NewArena(m, words/2, 1)
}

func BenchmarkHashMapPut(b *testing.B) {
	m, acc, arena := benchEnv(1 << 22)
	h := NewHashMap(m, 4096, arena)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Put(acc, uint64(i%100000), uint64(i))
	}
}

func BenchmarkHashMapGet(b *testing.B) {
	m, acc, arena := benchEnv(1 << 22)
	h := NewHashMap(m, 4096, arena)
	for k := uint64(0); k < 10000; k++ {
		h.Put(acc, k, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Get(acc, uint64(i%10000))
	}
}

func BenchmarkRBTreeInsert(b *testing.B) {
	m, acc, arena := benchEnv(1 << 24)
	tr := NewRBTree(m, arena)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(acc, uint64(i%100000), uint64(i))
	}
}

func BenchmarkRBTreeGet(b *testing.B) {
	m, acc, arena := benchEnv(1 << 24)
	tr := NewRBTree(m, arena)
	for k := uint64(0); k < 10000; k++ {
		tr.Insert(acc, k, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(acc, uint64(i%10000))
	}
}

func BenchmarkQueuePushPop(b *testing.B) {
	m, acc, _ := benchEnv(1 << 16)
	q := NewQueue(m, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(acc, uint64(i))
		q.Pop(acc)
	}
}

func BenchmarkArenaAlloc(b *testing.B) {
	m, acc, _ := benchEnv(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%1000 == 0 {
			// Fresh arena periodically so the benchmark never exhausts.
			_, acc2, arena := benchEnv(1 << 16)
			_ = m
			acc = acc2
			benchArena = arena
		}
		benchArena.Alloc(acc, 3)
	}
}

var benchArena *Arena

func init() {
	_, _, benchArena = benchEnv(1 << 16)
}
