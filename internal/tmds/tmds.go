// Package tmds provides transactional data structures laid out in the
// simulated memory: a hash set/map, a sorted linked list, a red-black
// tree, a FIFO queue and padded accumulator arrays. All operations are
// expressed against mem.Access, so the same code runs inside hardware
// transactions and on the single-global-lock fall-back path.
//
// The STAMP-style workloads (internal/stamp) are built from these, the
// same way the original C benchmarks are built from libtm's collections.
//
// Layout conventions: every structure stores its header on a dedicated
// cache line (AllocLines) to avoid false sharing between structure
// metadata and unrelated allocations; node layouts are documented per
// type. Allocation happens at setup time or through the Arena, a
// transaction-safe allocator sharded per hardware thread.
package tmds

import (
	"seer/internal/mem"
)

// arenaShards is the minimum per-thread shard-table size (matches
// the machine package's 64-thread limit).
const arenaShards = 64

// arenaChunk is the number of words a shard grabs from the master cursor
// at a time. Refills are rare, so the master line is touched too
// infrequently to become a conflict hotspot — the simulated analogue of a
// thread-caching malloc, which the C STAMP benchmarks rely on.
const arenaChunk = 512

// ChunkWords is the arena refill granularity in words; workload sizing
// uses it to budget per-thread slack on large machines.
const ChunkWords = arenaChunk

// Arena is a transactional allocator. Each hardware thread bump-allocates
// from a private chunk (its shard line holds [cursor, chunkEnd]); when a
// chunk runs out the shard refills from the shared master cursor. All
// cursors live in simulated memory, so allocations made inside aborted
// transactions are rolled back with the rest of the write set.
type Arena struct {
	master  mem.Addr // line: [0] master cursor
	shards  mem.Addr // one line per hardware thread: [0] cursor, [1] end
	nshards int
	limit   mem.Addr
}

// NewArena carves a transactional arena of size words out of m, serving
// hardware threads [0, threads). The shard table is never smaller than
// the legacy 64 lines, which pins the memory layout — and therefore the
// line-sharing pattern — of every pre-topology machine shape.
func NewArena(m *mem.Memory, size, threads int) *Arena {
	a := &Arena{nshards: threads}
	if a.nshards < arenaShards {
		a.nshards = arenaShards
	}
	a.master = m.AllocLines(1)
	a.shards = m.AllocLines(a.nshards)
	base := m.AllocAligned(size)
	m.Poke(a.master, uint64(base))
	a.limit = base + mem.Addr(size)
	return a
}

// shardAddr returns the shard line of the accessor's hardware thread.
func (a *Arena) shardAddr(acc mem.Access) mem.Addr {
	tid := acc.ThreadID()
	if tid < 0 || tid >= a.nshards {
		tid = 0
	}
	return a.shards + mem.Addr(tid)*mem.LineWords
}

// Alloc reserves n words from the accessor thread's shard, refilling from
// the master cursor when the private chunk is exhausted. It panics when
// the arena is out of memory (workloads are sized up front, as in STAMP).
func (a *Arena) Alloc(acc mem.Access, n int) mem.Addr {
	return a.alloc(acc, n, false)
}

// AllocAligned reserves n words starting at a cache-line boundary.
func (a *Arena) AllocAligned(acc mem.Access, n int) mem.Addr {
	return a.alloc(acc, n, true)
}

func (a *Arena) alloc(acc mem.Access, n int, aligned bool) mem.Addr {
	if n <= 0 {
		panic("tmds: arena Alloc with non-positive size")
	}
	shard := a.shardAddr(acc)
	cur := mem.Addr(acc.Load(shard))
	end := mem.Addr(acc.Load(shard + 1))
	if aligned {
		if rem := cur % mem.LineWords; rem != 0 {
			cur += mem.LineWords - rem
		}
	}
	if cur == 0 || cur+mem.Addr(n) > end {
		cur, end = a.refill(acc, n, aligned)
	}
	acc.Store(shard, uint64(cur)+uint64(n))
	acc.Store(shard+1, uint64(end))
	return cur
}

// refill grabs a fresh chunk (at least n words, line-aligned) from the
// master cursor.
func (a *Arena) refill(acc mem.Access, n int, aligned bool) (cur, end mem.Addr) {
	want := arenaChunk
	if n > want {
		want = n
	}
	m := mem.Addr(acc.Load(a.master))
	if rem := m % mem.LineWords; rem != 0 {
		m += mem.LineWords - rem
	}
	if m+mem.Addr(want) > a.limit {
		// Shrink to what is left, if that still fits the request.
		if m+mem.Addr(n) > a.limit {
			panic("tmds: arena exhausted")
		}
		want = int(a.limit - m)
	}
	acc.Store(a.master, uint64(m)+uint64(want))
	_ = aligned // m is line-aligned already
	return m, m + mem.Addr(want)
}

// Remaining returns the unchunked words left in the arena (shard-private
// leftovers are not counted).
func (a *Arena) Remaining(acc mem.Access) int {
	return int(a.limit) - int(acc.Load(a.master))
}

// Hash mixes a 64-bit key (SplitMix64 finalizer), used by the hash
// structures for bucket selection.
func Hash(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xBF58476D1CE4E5B9
	k ^= k >> 27
	k *= 0x94D049BB133111EB
	k ^= k >> 31
	return k
}
