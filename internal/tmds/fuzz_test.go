package tmds_test

import (
	"fmt"
	"sort"
	"testing"

	"seer"
	"seer/internal/mem"
	"seer/internal/tmds"
)

// The fuzz targets execute the transactional data structures the way the
// workloads do — inside atomic blocks under the full Seer policy, with
// concurrent reader threads forcing aborts and retries — and then differ
// the final state against a plain Go map driven by the same operation
// sequence. Any divergence (lost update, resurrecting delete, broken
// rebalancing) is a serializability or structure bug.

// peekAccess is a direct accessor over the simulated memory for
// single-threaded verification outside a run.
type peekAccess struct{ m *mem.Memory }

func (p peekAccess) Load(a mem.Addr) uint64     { return p.m.Peek(a) }
func (p peekAccess) Store(a mem.Addr, v uint64) { p.m.Poke(a, v) }
func (p peekAccess) Work(n uint64)              {}
func (p peekAccess) ThreadID() int              { return 0 }

// fuzzOp is one decoded mutation/lookup.
type fuzzOp struct {
	kind byte // 0 put, 1 delete, 2 get, 3 contains
	key  uint64
	val  uint64
}

// decodeOps maps fuzz bytes onto operations over a 16-key space. The
// sequence is capped so a single case stays cheap; the small keyspace
// maximizes key collisions, which is where the structure logic lives.
func decodeOps(data []byte) []fuzzOp {
	if len(data) > 256 {
		data = data[:256]
	}
	ops := make([]fuzzOp, len(data))
	for i, b := range data {
		ops[i] = fuzzOp{
			kind: b & 3,
			key:  uint64((b >> 2) & 15),
			val:  uint64(i)*2654435761 + 1,
		}
	}
	return ops
}

// structOps adapts one data structure to the generic fuzz harness.
type structOps struct {
	put      func(a seer.Access, k, v uint64)
	del      func(a seer.Access, k uint64)
	get      func(a seer.Access, k uint64) (uint64, bool)
	contains func(a seer.Access, k uint64) bool
	keys     func(a seer.Access) []uint64
	// check returns a non-empty diagnostic when a structural invariant
	// is violated (nil when the structure has none to check).
	check func(a seer.Access) string
}

// runStructFuzz drives ops through the structure under PolicySeer with
// two concurrent read-only threads, then verifies the recorded lookup
// results and the final state against a Go map model.
func runStructFuzz(t *testing.T, data []byte, build func(sys *seer.System) structOps) {
	t.Helper()
	ops := decodeOps(data)

	cfg := seer.DefaultConfig()
	cfg.Policy = seer.PolicySeer
	cfg.Threads = 3
	cfg.HWThreads = 4
	cfg.PhysCores = 2
	cfg.Seed = 7
	cfg.NumAtomicBlocks = 2
	cfg.MemWords = 1 << 17
	cfg.MaxCycles = 1 << 28
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := build(sys)

	// Thread 0 is the only mutator, so the model evolves in its program
	// order; expectations for every lookup can be computed up front.
	model := map[uint64]uint64{}
	expVal := make([]uint64, len(ops))
	expOk := make([]bool, len(ops))
	for i, op := range ops {
		switch op.kind {
		case 0:
			model[op.key] = op.val
		case 1:
			delete(model, op.key)
		case 2, 3:
			v, ok := model[op.key]
			expVal[i], expOk[i] = v, ok
		}
	}
	gotVal := make([]uint64, len(ops))
	gotOk := make([]bool, len(ops))

	workers := make([]seer.Worker, cfg.Threads)
	workers[0] = func(th *seer.Thread) {
		for i, op := range ops {
			i, op := i, op
			th.Atomic(0, func(a seer.Access) {
				switch op.kind {
				case 0:
					s.put(a, op.key, op.val)
				case 1:
					s.del(a, op.key)
				case 2:
					gotVal[i], gotOk[i] = s.get(a, op.key)
				case 3:
					gotOk[i] = s.contains(a, op.key)
					gotVal[i] = 0
				}
			})
			th.Work(10)
		}
	}
	for w := 1; w < cfg.Threads; w++ {
		probe := uint64(w)
		workers[w] = func(th *seer.Thread) {
			for n := 0; n < len(ops); n++ {
				k := (probe + uint64(n)) % 16
				th.Atomic(1, func(a seer.Access) {
					_ = s.contains(a, k)
					if v, ok := s.get(a, k); ok {
						_ = v
					}
				})
				th.Work(25)
			}
		}
	}
	if _, err := sys.Run(workers); err != nil {
		t.Fatalf("run: %v", err)
	}

	for i, op := range ops {
		if op.kind == 2 && (gotVal[i] != expVal[i] || gotOk[i] != expOk[i]) {
			t.Fatalf("op %d: Get(%d) = (%d,%v), model says (%d,%v)", i, op.key, gotVal[i], gotOk[i], expVal[i], expOk[i])
		}
		if op.kind == 3 && gotOk[i] != expOk[i] {
			t.Fatalf("op %d: Contains(%d) = %v, model says %v", i, op.key, gotOk[i], expOk[i])
		}
	}

	acc := peekAccess{sys.Memory()}
	if s.check != nil {
		if msg := s.check(acc); msg != "" {
			t.Fatalf("invariant violated: %s", msg)
		}
	}
	want := make([]uint64, 0, len(model))
	for k := range model {
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	got := s.keys(acc)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != len(want) {
		t.Fatalf("final keys = %v, model = %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("final keys = %v, model = %v", got, want)
		}
	}
	for k, v := range model {
		if gv, ok := s.get(acc, k); !ok || gv != v {
			t.Fatalf("final Get(%d) = (%d,%v), model says (%d,true)", k, gv, ok, v)
		}
	}
}

// fuzzCorpus seeds each target with characteristic shapes: empty, single
// op, put/delete churn on one key, and a mixed burst over the keyspace.
func fuzzCorpus(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x04, 0x05, 0x04, 0x05, 0x06, 0x07})
	burst := make([]byte, 96)
	for i := range burst {
		burst[i] = byte(i*37 + 11)
	}
	f.Add(burst)
}

func FuzzHashMap(f *testing.F) {
	fuzzCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		runStructFuzz(t, data, func(sys *seer.System) structOps {
			arena := tmds.NewArena(sys.Memory(), 1<<14, sys.HWThreads())
			h := tmds.NewHashMap(sys.Memory(), 8, arena)
			return structOps{
				put:      func(a seer.Access, k, v uint64) { h.Put(a, k, v) },
				del:      func(a seer.Access, k uint64) { h.Delete(a, k) },
				get:      h.Get,
				contains: h.Contains,
				keys:     func(a seer.Access) []uint64 { return h.Keys(a, nil) },
			}
		})
	})
}

func FuzzRBTree(f *testing.F) {
	fuzzCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		runStructFuzz(t, data, func(sys *seer.System) structOps {
			arena := tmds.NewArena(sys.Memory(), 1<<14, sys.HWThreads())
			tree := tmds.NewRBTree(sys.Memory(), arena)
			return structOps{
				put:      func(a seer.Access, k, v uint64) { tree.Insert(a, k, v) },
				del:      func(a seer.Access, k uint64) { tree.Delete(a, k) },
				get:      tree.Get,
				contains: tree.Contains,
				keys:     func(a seer.Access) []uint64 { return tree.Keys(a, nil) },
				check:    tree.CheckInvariants,
			}
		})
	})
}

func FuzzSortedList(f *testing.F) {
	fuzzCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		runStructFuzz(t, data, func(sys *seer.System) structOps {
			arena := tmds.NewArena(sys.Memory(), 1<<14, sys.HWThreads())
			list := tmds.NewSortedList(sys.Memory(), arena)
			return structOps{
				put:      func(a seer.Access, k, v uint64) { list.Insert(a, k, v) },
				del:      func(a seer.Access, k uint64) { list.Delete(a, k) },
				get:      list.Get,
				contains: list.Contains,
				keys:     func(a seer.Access) []uint64 { return list.Keys(a, nil) },
				check: func(a seer.Access) string {
					ks := list.Keys(a, nil)
					for i := 1; i < len(ks); i++ {
						if ks[i-1] >= ks[i] {
							return fmt.Sprintf("list out of order at %d: %v", i, ks)
						}
					}
					return ""
				},
			}
		})
	})
}
