package tmds

import (
	"seer/internal/mem"
)

// Queue is a bounded FIFO ring buffer in simulated memory, the analogue
// of STAMP's queue used by intruder for its packet streams.
//
// Layout: the head and tail indices live on separate cache lines (like
// the padded head/tail of any serious concurrent ring buffer), so
// producers and consumers conflict only through genuinely shared slots.
//
//	head line: [0] head index
//	tail line: [0] tail index, [1] capacity
//	slots: capacity words (line-aligned)
//
// head == tail means empty; the buffer keeps one slot free to distinguish
// full from empty.
type Queue struct {
	head  mem.Addr
	tail  mem.Addr
	slots mem.Addr
	cap   uint64
}

// NewQueue builds an empty queue holding up to capacity-1 values.
func NewQueue(m *mem.Memory, capacity int) *Queue {
	if capacity < 2 {
		panic("tmds: NewQueue needs capacity >= 2")
	}
	q := &Queue{cap: uint64(capacity)}
	q.head = m.AllocLines(1)
	q.tail = m.AllocLines(1)
	q.slots = m.AllocAligned(capacity)
	m.Poke(q.head, 0)
	m.Poke(q.tail, 0)
	m.Poke(q.tail+1, uint64(capacity))
	return q
}

// Push appends v; it reports false when the queue is full.
func (q *Queue) Push(acc mem.Access, v uint64) bool {
	tail := acc.Load(q.tail)
	next := (tail + 1) % q.cap
	if next == acc.Load(q.head) {
		return false
	}
	acc.Store(q.slots+mem.Addr(tail), v)
	acc.Store(q.tail, next)
	return true
}

// Pop removes and returns the oldest value; ok is false when empty.
func (q *Queue) Pop(acc mem.Access) (v uint64, ok bool) {
	head := acc.Load(q.head)
	if head == acc.Load(q.tail) {
		return 0, false
	}
	v = acc.Load(q.slots + mem.Addr(head))
	acc.Store(q.head, (head+1)%q.cap)
	return v, true
}

// Len returns the number of queued values.
func (q *Queue) Len(acc mem.Access) int {
	head := acc.Load(q.head)
	tail := acc.Load(q.tail)
	return int((tail + q.cap - head) % q.cap)
}

// Empty reports whether the queue holds no values.
func (q *Queue) Empty(acc mem.Access) bool {
	return acc.Load(q.head) == acc.Load(q.tail)
}

// Counters is an array of line-padded accumulators (one value per cache
// line), the layout kmeans uses for its per-cluster statistics so that
// unrelated clusters do not false-share.
type Counters struct {
	base   mem.Addr
	n      int
	stride mem.Addr
}

// NewCounters allocates n padded counters initialized to zero.
func NewCounters(m *mem.Memory, n int) *Counters {
	c := &Counters{n: n, stride: mem.LineWords}
	c.base = m.AllocLines(n)
	return c
}

// NewDenseCounters allocates n unpadded (densely packed) counters — the
// false-sharing-prone layout, available to workloads that want conflict
// pressure on purpose.
func NewDenseCounters(m *mem.Memory, n int) *Counters {
	c := &Counters{n: n, stride: 1}
	c.base = m.AllocAligned(n)
	return c
}

// Addr returns the address of counter i, so workloads can combine counter
// updates with other transactional accesses.
func (c *Counters) Addr(i int) mem.Addr {
	if i < 0 || i >= c.n {
		panic("tmds: counter index out of range")
	}
	return c.base + mem.Addr(i)*c.stride
}

// Get returns counter i.
func (c *Counters) Get(acc mem.Access, i int) uint64 { return acc.Load(c.Addr(i)) }

// Add increments counter i by delta.
func (c *Counters) Add(acc mem.Access, i int, delta uint64) {
	a := c.Addr(i)
	acc.Store(a, acc.Load(a)+delta)
}

// N returns the number of counters.
func (c *Counters) N() int { return c.n }
