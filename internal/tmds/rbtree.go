package tmds

import (
	"seer/internal/mem"
)

// RBTree is a red-black tree keyed by uint64 in simulated memory — the
// analogue of STAMP's rbtree used for vacation's reservation tables.
//
// Node layout (one cache line each, to mirror the allocation behaviour of
// the C benchmarks and bound false sharing):
//
//	[0] key  [1] value  [2] left  [3] right  [4] parent  [5] color
//
// The tree header holds the root pointer on its own line. Addresses use
// mem.Nil (0) as the null pointer; the color of "nil" is black by
// definition and is never stored.
type RBTree struct {
	root  mem.Addr // address of the word holding the root node address
	arena *Arena
}

const (
	rbKey    = 0
	rbVal    = 1
	rbLeft   = 2
	rbRight  = 3
	rbParent = 4
	rbColor  = 5
	rbSize   = 8 // padded to one line

	red   = 0
	black = 1
)

// NewRBTree builds an empty tree; nodes come from arena.
func NewRBTree(m *mem.Memory, arena *Arena) *RBTree {
	t := &RBTree{arena: arena}
	t.root = m.AllocLines(1)
	m.Poke(t.root, uint64(mem.Nil))
	return t
}

func (t *RBTree) getRoot(acc mem.Access) mem.Addr    { return mem.Addr(acc.Load(t.root)) }
func (t *RBTree) setRoot(acc mem.Access, n mem.Addr) { acc.Store(t.root, uint64(n)) }

func key(acc mem.Access, n mem.Addr) uint64      { return acc.Load(n + rbKey) }
func left(acc mem.Access, n mem.Addr) mem.Addr   { return mem.Addr(acc.Load(n + rbLeft)) }
func right(acc mem.Access, n mem.Addr) mem.Addr  { return mem.Addr(acc.Load(n + rbRight)) }
func parent(acc mem.Access, n mem.Addr) mem.Addr { return mem.Addr(acc.Load(n + rbParent)) }
func setLeft(acc mem.Access, n, v mem.Addr)      { acc.Store(n+rbLeft, uint64(v)) }
func setRight(acc mem.Access, n, v mem.Addr)     { acc.Store(n+rbRight, uint64(v)) }
func setParent(acc mem.Access, n, v mem.Addr)    { acc.Store(n+rbParent, uint64(v)) }

// color of mem.Nil is black.
func color(acc mem.Access, n mem.Addr) uint64 {
	if n == mem.Nil {
		return black
	}
	return acc.Load(n + rbColor)
}

func setColor(acc mem.Access, n mem.Addr, c uint64) {
	if n != mem.Nil {
		acc.Store(n+rbColor, c)
	}
}

// Get returns the value stored under k.
func (t *RBTree) Get(acc mem.Access, k uint64) (uint64, bool) {
	n := t.getRoot(acc)
	for n != mem.Nil {
		nk := key(acc, n)
		switch {
		case k < nk:
			n = left(acc, n)
		case k > nk:
			n = right(acc, n)
		default:
			return acc.Load(n + rbVal), true
		}
	}
	return 0, false
}

// Contains reports whether k is present.
func (t *RBTree) Contains(acc mem.Access, k uint64) bool {
	_, ok := t.Get(acc, k)
	return ok
}

// Update overwrites the value of an existing key, reporting whether the
// key was found.
func (t *RBTree) Update(acc mem.Access, k, v uint64) bool {
	n := t.getRoot(acc)
	for n != mem.Nil {
		nk := key(acc, n)
		switch {
		case k < nk:
			n = left(acc, n)
		case k > nk:
			n = right(acc, n)
		default:
			acc.Store(n+rbVal, v)
			return true
		}
	}
	return false
}

// Insert adds k → v, reporting whether k was newly inserted (false means
// the value was updated in place).
func (t *RBTree) Insert(acc mem.Access, k, v uint64) bool {
	var p mem.Addr = mem.Nil
	n := t.getRoot(acc)
	for n != mem.Nil {
		p = n
		nk := key(acc, n)
		switch {
		case k < nk:
			n = left(acc, n)
		case k > nk:
			n = right(acc, n)
		default:
			acc.Store(n+rbVal, v)
			return false
		}
	}
	fresh := t.arena.AllocAligned(acc, rbSize)
	acc.Store(fresh+rbKey, k)
	acc.Store(fresh+rbVal, v)
	acc.Store(fresh+rbLeft, uint64(mem.Nil))
	acc.Store(fresh+rbRight, uint64(mem.Nil))
	acc.Store(fresh+rbParent, uint64(p))
	acc.Store(fresh+rbColor, red)
	if p == mem.Nil {
		t.setRoot(acc, fresh)
	} else if k < key(acc, p) {
		setLeft(acc, p, fresh)
	} else {
		setRight(acc, p, fresh)
	}
	t.insertFixup(acc, fresh)
	return true
}

func (t *RBTree) rotateLeft(acc mem.Access, x mem.Addr) {
	y := right(acc, x)
	yl := left(acc, y)
	setRight(acc, x, yl)
	if yl != mem.Nil {
		setParent(acc, yl, x)
	}
	xp := parent(acc, x)
	setParent(acc, y, xp)
	if xp == mem.Nil {
		t.setRoot(acc, y)
	} else if x == left(acc, xp) {
		setLeft(acc, xp, y)
	} else {
		setRight(acc, xp, y)
	}
	setLeft(acc, y, x)
	setParent(acc, x, y)
}

func (t *RBTree) rotateRight(acc mem.Access, x mem.Addr) {
	y := left(acc, x)
	yr := right(acc, y)
	setLeft(acc, x, yr)
	if yr != mem.Nil {
		setParent(acc, yr, x)
	}
	xp := parent(acc, x)
	setParent(acc, y, xp)
	if xp == mem.Nil {
		t.setRoot(acc, y)
	} else if x == right(acc, xp) {
		setRight(acc, xp, y)
	} else {
		setLeft(acc, xp, y)
	}
	setRight(acc, y, x)
	setParent(acc, x, y)
}

func (t *RBTree) insertFixup(acc mem.Access, z mem.Addr) {
	for {
		p := parent(acc, z)
		if p == mem.Nil || color(acc, p) == black {
			break
		}
		g := parent(acc, p)
		if p == left(acc, g) {
			u := right(acc, g)
			if color(acc, u) == red {
				setColor(acc, p, black)
				setColor(acc, u, black)
				setColor(acc, g, red)
				z = g
				continue
			}
			if z == right(acc, p) {
				z = p
				t.rotateLeft(acc, z)
				p = parent(acc, z)
				g = parent(acc, p)
			}
			setColor(acc, p, black)
			setColor(acc, g, red)
			t.rotateRight(acc, g)
		} else {
			u := left(acc, g)
			if color(acc, u) == red {
				setColor(acc, p, black)
				setColor(acc, u, black)
				setColor(acc, g, red)
				z = g
				continue
			}
			if z == left(acc, p) {
				z = p
				t.rotateRight(acc, z)
				p = parent(acc, z)
				g = parent(acc, p)
			}
			setColor(acc, p, black)
			setColor(acc, g, red)
			t.rotateLeft(acc, g)
		}
	}
	setColor(acc, t.getRoot(acc), black)
}

// minimum returns the leftmost node of the subtree rooted at n.
func minimum(acc mem.Access, n mem.Addr) mem.Addr {
	for {
		l := left(acc, n)
		if l == mem.Nil {
			return n
		}
		n = l
	}
}

// transplant replaces subtree u by subtree v (v may be Nil; CLRS-style
// with explicit parent tracking instead of a sentinel).
func (t *RBTree) transplant(acc mem.Access, u, v mem.Addr) {
	up := parent(acc, u)
	if up == mem.Nil {
		t.setRoot(acc, v)
	} else if u == left(acc, up) {
		setLeft(acc, up, v)
	} else {
		setRight(acc, up, v)
	}
	if v != mem.Nil {
		setParent(acc, v, up)
	}
}

// Delete removes k, reporting whether it was present. Nodes are unlinked,
// not reclaimed.
func (t *RBTree) Delete(acc mem.Access, k uint64) bool {
	z := t.getRoot(acc)
	for z != mem.Nil {
		zk := key(acc, z)
		if k < zk {
			z = left(acc, z)
		} else if k > zk {
			z = right(acc, z)
		} else {
			break
		}
	}
	if z == mem.Nil {
		return false
	}

	y := z
	yOrigColor := color(acc, y)
	var x, xParent mem.Addr
	if left(acc, z) == mem.Nil {
		x = right(acc, z)
		xParent = parent(acc, z)
		t.transplant(acc, z, x)
	} else if right(acc, z) == mem.Nil {
		x = left(acc, z)
		xParent = parent(acc, z)
		t.transplant(acc, z, x)
	} else {
		y = minimum(acc, right(acc, z))
		yOrigColor = color(acc, y)
		x = right(acc, y)
		if parent(acc, y) == z {
			xParent = y
		} else {
			xParent = parent(acc, y)
			t.transplant(acc, y, x)
			zr := right(acc, z)
			setRight(acc, y, zr)
			setParent(acc, zr, y)
		}
		t.transplant(acc, z, y)
		zl := left(acc, z)
		setLeft(acc, y, zl)
		setParent(acc, zl, y)
		setColor(acc, y, color(acc, z))
	}
	if yOrigColor == black {
		t.deleteFixup(acc, x, xParent)
	}
	return true
}

// deleteFixup restores red-black properties after deletion; x may be Nil,
// so its parent is tracked explicitly.
func (t *RBTree) deleteFixup(acc mem.Access, x, xParent mem.Addr) {
	for x != t.getRoot(acc) && color(acc, x) == black {
		if xParent == mem.Nil {
			break
		}
		if x == left(acc, xParent) {
			w := right(acc, xParent)
			if color(acc, w) == red {
				setColor(acc, w, black)
				setColor(acc, xParent, red)
				t.rotateLeft(acc, xParent)
				w = right(acc, xParent)
			}
			if color(acc, left(acc, w)) == black && color(acc, right(acc, w)) == black {
				setColor(acc, w, red)
				x = xParent
				xParent = parent(acc, x)
			} else {
				if color(acc, right(acc, w)) == black {
					setColor(acc, left(acc, w), black)
					setColor(acc, w, red)
					t.rotateRight(acc, w)
					w = right(acc, xParent)
				}
				setColor(acc, w, color(acc, xParent))
				setColor(acc, xParent, black)
				setColor(acc, right(acc, w), black)
				t.rotateLeft(acc, xParent)
				x = t.getRoot(acc)
				xParent = mem.Nil
			}
		} else {
			w := left(acc, xParent)
			if color(acc, w) == red {
				setColor(acc, w, black)
				setColor(acc, xParent, red)
				t.rotateRight(acc, xParent)
				w = left(acc, xParent)
			}
			if color(acc, right(acc, w)) == black && color(acc, left(acc, w)) == black {
				setColor(acc, w, red)
				x = xParent
				xParent = parent(acc, x)
			} else {
				if color(acc, left(acc, w)) == black {
					setColor(acc, right(acc, w), black)
					setColor(acc, w, red)
					t.rotateLeft(acc, w)
					w = left(acc, xParent)
				}
				setColor(acc, w, color(acc, xParent))
				setColor(acc, xParent, black)
				setColor(acc, left(acc, w), black)
				t.rotateRight(acc, xParent)
				x = t.getRoot(acc)
				xParent = mem.Nil
			}
		}
	}
	setColor(acc, x, black)
}

// Len counts the stored keys (validation helper; full walk).
func (t *RBTree) Len(acc mem.Access) int {
	return t.countFrom(acc, t.getRoot(acc))
}

func (t *RBTree) countFrom(acc mem.Access, n mem.Addr) int {
	if n == mem.Nil {
		return 0
	}
	return 1 + t.countFrom(acc, left(acc, n)) + t.countFrom(acc, right(acc, n))
}

// Keys appends all keys in ascending order (validation helper).
func (t *RBTree) Keys(acc mem.Access, dst []uint64) []uint64 {
	return t.keysFrom(acc, t.getRoot(acc), dst)
}

func (t *RBTree) keysFrom(acc mem.Access, n mem.Addr, dst []uint64) []uint64 {
	if n == mem.Nil {
		return dst
	}
	dst = t.keysFrom(acc, left(acc, n), dst)
	dst = append(dst, key(acc, n))
	return t.keysFrom(acc, right(acc, n), dst)
}

// CheckInvariants verifies the red-black properties (root black, no red
// node with a red child, equal black height on every path, BST ordering)
// and returns a descriptive error string ("" if valid). Test helper.
func (t *RBTree) CheckInvariants(acc mem.Access) string {
	root := t.getRoot(acc)
	if root == mem.Nil {
		return ""
	}
	if color(acc, root) != black {
		return "root is red"
	}
	_, msg := t.check(acc, root, 0, ^uint64(0), true)
	return msg
}

// check returns (blackHeight, problem) for the subtree at n, validating
// keys within (lo, hi) bounds; useLo/hi encoded via sentinel handling.
func (t *RBTree) check(acc mem.Access, n mem.Addr, lo, hi uint64, loOpen bool) (int, string) {
	if n == mem.Nil {
		return 1, ""
	}
	k := key(acc, n)
	if !loOpen && k <= lo {
		return 0, "BST order violated (left bound)"
	}
	if k >= hi && hi != ^uint64(0) {
		return 0, "BST order violated (right bound)"
	}
	c := color(acc, n)
	l, r := left(acc, n), right(acc, n)
	if c == red {
		if color(acc, l) == red || color(acc, r) == red {
			return 0, "red node with red child"
		}
	}
	if l != mem.Nil && parent(acc, l) != n {
		return 0, "left child has wrong parent"
	}
	if r != mem.Nil && parent(acc, r) != n {
		return 0, "right child has wrong parent"
	}
	lh, msg := t.check(acc, l, lo, k, loOpen)
	if msg != "" {
		return 0, msg
	}
	rh, msg := t.check(acc, r, k, hi, false)
	if msg != "" {
		return 0, msg
	}
	if lh != rh {
		return 0, "black height mismatch"
	}
	if c == black {
		lh++
	}
	return lh, ""
}
