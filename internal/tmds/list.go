package tmds

import (
	"seer/internal/mem"
)

// SortedList is an ascending singly-linked list of (key, value) pairs in
// simulated memory, with a sentinel head node. Node layout matches the
// hash map's: [key, value, next].
type SortedList struct {
	head  mem.Addr // sentinel node
	arena *Arena
}

// NewSortedList builds an empty list; nodes come from arena.
func NewSortedList(m *mem.Memory, arena *Arena) *SortedList {
	l := &SortedList{arena: arena}
	l.head = m.AllocAligned(nodeSize)
	m.Poke(l.head+nodeKey, 0)
	m.Poke(l.head+nodeNext, uint64(mem.Nil))
	return l
}

// locate returns the last node with key < target and its successor.
func (l *SortedList) locate(acc mem.Access, key uint64) (prev, cur mem.Addr) {
	prev = l.head
	cur = mem.Addr(acc.Load(prev + nodeNext))
	for cur != mem.Nil && acc.Load(cur+nodeKey) < key {
		prev = cur
		cur = mem.Addr(acc.Load(cur + nodeNext))
	}
	return prev, cur
}

// Insert adds key → value, reporting whether key was newly inserted
// (false means the value was updated in place).
func (l *SortedList) Insert(acc mem.Access, key, value uint64) bool {
	prev, cur := l.locate(acc, key)
	if cur != mem.Nil && acc.Load(cur+nodeKey) == key {
		acc.Store(cur+nodeVal, value)
		return false
	}
	fresh := l.arena.Alloc(acc, nodeSize)
	acc.Store(fresh+nodeKey, key)
	acc.Store(fresh+nodeVal, value)
	acc.Store(fresh+nodeNext, uint64(cur))
	acc.Store(prev+nodeNext, uint64(fresh))
	return true
}

// Get returns the value stored under key.
func (l *SortedList) Get(acc mem.Access, key uint64) (uint64, bool) {
	_, cur := l.locate(acc, key)
	if cur != mem.Nil && acc.Load(cur+nodeKey) == key {
		return acc.Load(cur + nodeVal), true
	}
	return 0, false
}

// Contains reports whether key is present.
func (l *SortedList) Contains(acc mem.Access, key uint64) bool {
	_, ok := l.Get(acc, key)
	return ok
}

// Delete removes key, reporting whether it was present.
func (l *SortedList) Delete(acc mem.Access, key uint64) bool {
	prev, cur := l.locate(acc, key)
	if cur == mem.Nil || acc.Load(cur+nodeKey) != key {
		return false
	}
	acc.Store(prev+nodeNext, acc.Load(cur+nodeNext))
	return true
}

// Len counts the elements (validation helper).
func (l *SortedList) Len(acc mem.Access) int {
	n := 0
	for cur := mem.Addr(acc.Load(l.head + nodeNext)); cur != mem.Nil; cur = mem.Addr(acc.Load(cur + nodeNext)) {
		n++
	}
	return n
}

// Keys appends all keys in order to dst (validation helper).
func (l *SortedList) Keys(acc mem.Access, dst []uint64) []uint64 {
	for cur := mem.Addr(acc.Load(l.head + nodeNext)); cur != mem.Nil; cur = mem.Addr(acc.Load(cur + nodeNext)) {
		dst = append(dst, acc.Load(cur+nodeKey))
	}
	return dst
}
