package tmds

import (
	"sort"
	"testing"
	"testing/quick"

	"seer/internal/mem"
)

// rawAccess is a no-frills accessor over a Memory for single-threaded
// data-structure testing (no HTM, no virtual time).
type rawAccess struct{ m *mem.Memory }

func (r rawAccess) Load(a mem.Addr) uint64     { return r.m.Peek(a) }
func (r rawAccess) Store(a mem.Addr, v uint64) { r.m.Poke(a, v) }
func (r rawAccess) Work(n uint64)              {}
func (r rawAccess) ThreadID() int              { return 0 }

func testEnv(words int) (*mem.Memory, rawAccess, *Arena) {
	m := mem.New(words)
	arena := NewArena(m, words/2, 1)
	return m, rawAccess{m}, arena
}

func TestArenaAlloc(t *testing.T) {
	m, acc, arena := testEnv(1 << 12)
	a := arena.Alloc(acc, 3)
	b := arena.Alloc(acc, 5)
	if b != a+3 {
		t.Fatalf("bump allocation not contiguous: %d then %d", a, b)
	}
	c := arena.AllocAligned(acc, 4)
	if c%mem.LineWords != 0 {
		t.Fatalf("AllocAligned returned unaligned address %d", c)
	}
	if arena.Remaining(acc) <= 0 {
		t.Fatalf("arena should have room left")
	}
	_ = m
}

func TestArenaExhaustionPanics(t *testing.T) {
	_, acc, arena := testEnv(1 << 12)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on arena exhaustion")
		}
	}()
	for {
		arena.Alloc(acc, 64)
	}
}

func TestHashMapBasic(t *testing.T) {
	m, acc, arena := testEnv(1 << 14)
	h := NewHashMap(m, 16, arena)
	if h.Size(acc) != 0 {
		t.Fatalf("new map not empty")
	}
	if !h.Put(acc, 42, 1) {
		t.Fatalf("Put of new key returned false")
	}
	if h.Put(acc, 42, 2) {
		t.Fatalf("Put of existing key returned true")
	}
	if v, ok := h.Get(acc, 42); !ok || v != 2 {
		t.Fatalf("Get(42) = %d,%v; want 2,true", v, ok)
	}
	if h.Contains(acc, 43) {
		t.Fatalf("Contains(43) on empty key")
	}
	if !h.PutIfAbsent(acc, 43, 7) || h.PutIfAbsent(acc, 43, 8) {
		t.Fatalf("PutIfAbsent semantics broken")
	}
	if v, _ := h.Get(acc, 43); v != 7 {
		t.Fatalf("PutIfAbsent overwrote: got %d", v)
	}
	if h.Size(acc) != 2 {
		t.Fatalf("size = %d, want 2", h.Size(acc))
	}
	if !h.Delete(acc, 42) || h.Delete(acc, 42) {
		t.Fatalf("Delete semantics broken")
	}
	if h.Size(acc) != 1 {
		t.Fatalf("size after delete = %d, want 1", h.Size(acc))
	}
}

func TestHashMapCollisions(t *testing.T) {
	m, acc, arena := testEnv(1 << 16)
	h := NewHashMap(m, 1, arena) // all keys collide
	for k := uint64(0); k < 100; k++ {
		if !h.Put(acc, k, k*10) {
			t.Fatalf("Put(%d) failed", k)
		}
	}
	for k := uint64(0); k < 100; k++ {
		if v, ok := h.Get(acc, k); !ok || v != k*10 {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
	// Delete every even key from the single chain.
	for k := uint64(0); k < 100; k += 2 {
		if !h.Delete(acc, k) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	for k := uint64(0); k < 100; k++ {
		want := k%2 == 1
		if got := h.Contains(acc, k); got != want {
			t.Fatalf("Contains(%d) = %v, want %v", k, got, want)
		}
	}
}

// TestHashMapQuickVsModel drives the map with random operation sequences
// and checks it against Go's native map.
func TestHashMapQuickVsModel(t *testing.T) {
	f := func(ops []uint16) bool {
		m, acc, arena := testEnv(1 << 18)
		h := NewHashMap(m, 8, arena)
		model := map[uint64]uint64{}
		for i, op := range ops {
			k := uint64(op % 64)
			v := uint64(i)
			switch op % 3 {
			case 0:
				got := h.Put(acc, k, v)
				_, existed := model[k]
				model[k] = v
				if got == existed {
					return false
				}
			case 1:
				got := h.Delete(acc, k)
				_, existed := model[k]
				delete(model, k)
				if got != existed {
					return false
				}
			case 2:
				gv, gok := h.Get(acc, k)
				wv, wok := model[k]
				if gok != wok || (gok && gv != wv) {
					return false
				}
			}
			if h.Size(acc) != uint64(len(model)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedListBasic(t *testing.T) {
	m, acc, arena := testEnv(1 << 14)
	l := NewSortedList(m, arena)
	for _, k := range []uint64{5, 1, 9, 3, 7} {
		if !l.Insert(acc, k, k+100) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	if l.Insert(acc, 5, 500) {
		t.Fatalf("re-Insert(5) reported new")
	}
	keys := l.Keys(acc, nil)
	want := []uint64{1, 3, 5, 7, 9}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
	if v, ok := l.Get(acc, 5); !ok || v != 500 {
		t.Fatalf("Get(5) = %d,%v", v, ok)
	}
	if !l.Delete(acc, 1) || !l.Delete(acc, 9) || l.Delete(acc, 2) {
		t.Fatalf("Delete semantics broken")
	}
	if l.Len(acc) != 3 {
		t.Fatalf("Len = %d, want 3", l.Len(acc))
	}
}

// TestSortedListQuickSortedInvariant checks that keys remain sorted and
// duplicate-free under random insert/delete mixes.
func TestSortedListQuickSortedInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		m, acc, arena := testEnv(1 << 18)
		l := NewSortedList(m, arena)
		model := map[uint64]bool{}
		for _, op := range ops {
			k := uint64(op%128) + 1
			if op%2 == 0 {
				l.Insert(acc, k, k)
				model[k] = true
			} else {
				got := l.Delete(acc, k)
				if got != model[k] {
					return false
				}
				delete(model, k)
			}
		}
		keys := l.Keys(acc, nil)
		if len(keys) != len(model) {
			return false
		}
		if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
			return false
		}
		for _, k := range keys {
			if !model[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRBTreeBasic(t *testing.T) {
	m, acc, arena := testEnv(1 << 16)
	tr := NewRBTree(m, arena)
	for _, k := range []uint64{50, 20, 80, 10, 30, 70, 90, 25, 35} {
		if !tr.Insert(acc, k, k*2) {
			t.Fatalf("Insert(%d) failed", k)
		}
		if msg := tr.CheckInvariants(acc); msg != "" {
			t.Fatalf("after Insert(%d): %s", k, msg)
		}
	}
	if tr.Insert(acc, 50, 999) {
		t.Fatalf("duplicate insert reported new")
	}
	if v, ok := tr.Get(acc, 50); !ok || v != 999 {
		t.Fatalf("Get(50) = %d,%v", v, ok)
	}
	if !tr.Update(acc, 30, 1) || tr.Update(acc, 31, 1) {
		t.Fatalf("Update semantics broken")
	}
	if tr.Len(acc) != 9 {
		t.Fatalf("Len = %d, want 9", tr.Len(acc))
	}
	for _, k := range []uint64{20, 50, 10, 90} {
		if !tr.Delete(acc, k) {
			t.Fatalf("Delete(%d) failed", k)
		}
		if msg := tr.CheckInvariants(acc); msg != "" {
			t.Fatalf("after Delete(%d): %s", k, msg)
		}
	}
	if tr.Delete(acc, 20) {
		t.Fatalf("double delete succeeded")
	}
	keys := tr.Keys(acc, nil)
	want := []uint64{25, 30, 35, 70, 80}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
}

// TestRBTreeQuickInvariants drives the tree with random operations and
// revalidates the red-black invariants and a model map after each.
func TestRBTreeQuickInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		m, acc, arena := testEnv(1 << 20)
		tr := NewRBTree(m, arena)
		model := map[uint64]uint64{}
		for i, op := range ops {
			k := uint64(op % 96)
			switch op % 2 {
			case 0:
				tr.Insert(acc, k, uint64(i))
				model[k] = uint64(i)
			case 1:
				got := tr.Delete(acc, k)
				_, existed := model[k]
				if got != existed {
					return false
				}
				delete(model, k)
			}
			if msg := tr.CheckInvariants(acc); msg != "" {
				t.Logf("invariant violated: %s", msg)
				return false
			}
		}
		if tr.Len(acc) != len(model) {
			return false
		}
		for k, v := range model {
			gv, ok := tr.Get(acc, k)
			if !ok || gv != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRBTreeAscendingDescendingInserts(t *testing.T) {
	m, acc, arena := testEnv(1 << 20)
	tr := NewRBTree(m, arena)
	for k := uint64(1); k <= 200; k++ {
		tr.Insert(acc, k, k)
	}
	for k := uint64(400); k >= 300; k-- {
		tr.Insert(acc, k, k)
	}
	if msg := tr.CheckInvariants(acc); msg != "" {
		t.Fatalf("invariants: %s", msg)
	}
	if tr.Len(acc) != 301 {
		t.Fatalf("Len = %d, want 301", tr.Len(acc))
	}
}

func TestQueueFIFO(t *testing.T) {
	m, _, _ := testEnv(1 << 12)
	acc := rawAccess{m}
	q := NewQueue(m, 8)
	if !q.Empty(acc) {
		t.Fatalf("new queue not empty")
	}
	for i := uint64(1); i <= 7; i++ {
		if !q.Push(acc, i) {
			t.Fatalf("Push(%d) failed", i)
		}
	}
	if q.Push(acc, 99) {
		t.Fatalf("Push succeeded on full queue")
	}
	if q.Len(acc) != 7 {
		t.Fatalf("Len = %d, want 7", q.Len(acc))
	}
	for i := uint64(1); i <= 7; i++ {
		v, ok := q.Pop(acc)
		if !ok || v != i {
			t.Fatalf("Pop = %d,%v; want %d,true", v, ok, i)
		}
	}
	if _, ok := q.Pop(acc); ok {
		t.Fatalf("Pop succeeded on empty queue")
	}
}

func TestQueueWraparound(t *testing.T) {
	m, _, _ := testEnv(1 << 12)
	acc := rawAccess{m}
	q := NewQueue(m, 4)
	next := uint64(0)
	expect := uint64(0)
	for round := 0; round < 20; round++ {
		for q.Push(acc, next) {
			next++
		}
		v, ok := q.Pop(acc)
		if !ok || v != expect {
			t.Fatalf("round %d: Pop = %d,%v; want %d", round, v, ok, expect)
		}
		expect++
	}
}

func TestCountersPaddedAndDense(t *testing.T) {
	m, _, _ := testEnv(1 << 12)
	acc := rawAccess{m}
	p := NewCounters(m, 4)
	d := NewDenseCounters(m, 4)
	if mem.LineOf(p.Addr(0)) == mem.LineOf(p.Addr(1)) {
		t.Fatalf("padded counters share a cache line")
	}
	if mem.LineOf(d.Addr(0)) != mem.LineOf(d.Addr(1)) {
		t.Fatalf("dense counters do not share a cache line")
	}
	for i := 0; i < 4; i++ {
		p.Add(acc, i, uint64(i)+1)
		d.Add(acc, i, uint64(i)+10)
	}
	for i := 0; i < 4; i++ {
		if p.Get(acc, i) != uint64(i)+1 {
			t.Fatalf("padded counter %d = %d", i, p.Get(acc, i))
		}
		if d.Get(acc, i) != uint64(i)+10 {
			t.Fatalf("dense counter %d = %d", i, d.Get(acc, i))
		}
	}
	if p.N() != 4 || d.N() != 4 {
		t.Fatalf("N() wrong")
	}
}

func TestHashDistribution(t *testing.T) {
	seen := map[uint64]bool{}
	for k := uint64(0); k < 1000; k++ {
		seen[Hash(k)%64] = true
	}
	if len(seen) < 60 {
		t.Fatalf("Hash covers only %d/64 buckets over 1000 keys", len(seen))
	}
}

func TestHeapOrdering(t *testing.T) {
	m, acc, _ := testEnv(1 << 12)
	h := NewHeap(m, 64)
	if h.Len(acc) != 0 {
		t.Fatalf("new heap not empty")
	}
	if _, _, ok := h.Pop(acc); ok {
		t.Fatalf("Pop on empty heap succeeded")
	}
	prios := []uint64{9, 3, 7, 1, 8, 3, 0, 12}
	for i, p := range prios {
		if !h.Push(acc, p, uint64(i)) {
			t.Fatalf("Push(%d) failed", p)
		}
	}
	if p, _, _ := h.Min(acc); p != 0 {
		t.Fatalf("Min = %d, want 0", p)
	}
	last := uint64(0)
	for range prios {
		p, _, ok := h.Pop(acc)
		if !ok {
			t.Fatalf("heap emptied early")
		}
		if p < last {
			t.Fatalf("heap order violated: %d after %d", p, last)
		}
		last = p
	}
	if h.Len(acc) != 0 {
		t.Fatalf("heap not empty after draining")
	}
}

func TestHeapCapacity(t *testing.T) {
	m, acc, _ := testEnv(1 << 12)
	h := NewHeap(m, 2)
	if !h.Push(acc, 1, 1) || !h.Push(acc, 2, 2) {
		t.Fatalf("pushes within capacity failed")
	}
	if h.Push(acc, 3, 3) {
		t.Fatalf("push beyond capacity succeeded")
	}
}

// TestHeapQuickVsSort: popping everything yields the sorted priorities.
func TestHeapQuickVsSort(t *testing.T) {
	f := func(prios []uint16) bool {
		if len(prios) > 200 {
			prios = prios[:200]
		}
		m, acc, _ := testEnv(1 << 14)
		h := NewHeap(m, len(prios)+1)
		model := make([]uint64, 0, len(prios))
		for i, p := range prios {
			h.Push(acc, uint64(p), uint64(i))
			model = append(model, uint64(p))
		}
		sort.Slice(model, func(i, j int) bool { return model[i] < model[j] })
		for _, want := range model {
			got, _, ok := h.Pop(acc)
			if !ok || got != want {
				return false
			}
		}
		_, _, ok := h.Pop(acc)
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
