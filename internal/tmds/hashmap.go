package tmds

import (
	"seer/internal/mem"
)

// HashMap is a chained hash map from uint64 keys to uint64 values in
// simulated memory. Buckets are head pointers in a line-aligned array;
// nodes are three words: [key, value, next].
//
// Layout:
//
//	header (1 line): [0] bucket-array base, [1] nBuckets
//	buckets: nBuckets words of node addresses (0 = empty)
//	nodes (from arena): [key][value][next]
type HashMap struct {
	header   mem.Addr
	buckets  mem.Addr
	nBuckets uint64
	arena    *Arena
}

const (
	hmOffBase = 0
	hmOffN    = 1

	nodeKey  = 0
	nodeVal  = 1
	nodeNext = 2
	nodeSize = 3
)

// NewHashMap builds an empty map with nBuckets chains, allocating nodes
// from arena.
func NewHashMap(m *mem.Memory, nBuckets int, arena *Arena) *HashMap {
	if nBuckets <= 0 {
		panic("tmds: NewHashMap with non-positive buckets")
	}
	h := &HashMap{nBuckets: uint64(nBuckets), arena: arena}
	h.header = m.AllocLines(1)
	h.buckets = m.AllocAligned(nBuckets)
	m.Poke(h.header+hmOffBase, uint64(h.buckets))
	m.Poke(h.header+hmOffN, uint64(nBuckets))
	return h
}

// bucketAddr returns the address of key's bucket head pointer.
func (h *HashMap) bucketAddr(key uint64) mem.Addr {
	return h.buckets + mem.Addr(Hash(key)%h.nBuckets)
}

// Get returns the value stored for key.
func (h *HashMap) Get(acc mem.Access, key uint64) (uint64, bool) {
	node := mem.Addr(acc.Load(h.bucketAddr(key)))
	for node != mem.Nil {
		if acc.Load(node+nodeKey) == key {
			return acc.Load(node + nodeVal), true
		}
		node = mem.Addr(acc.Load(node + nodeNext))
	}
	return 0, false
}

// Contains reports whether key is present.
func (h *HashMap) Contains(acc mem.Access, key uint64) bool {
	_, ok := h.Get(acc, key)
	return ok
}

// Put inserts or updates key → value; it reports whether the key was
// newly inserted.
func (h *HashMap) Put(acc mem.Access, key, value uint64) bool {
	ba := h.bucketAddr(key)
	node := mem.Addr(acc.Load(ba))
	for n := node; n != mem.Nil; n = mem.Addr(acc.Load(n + nodeNext)) {
		if acc.Load(n+nodeKey) == key {
			acc.Store(n+nodeVal, value)
			return false
		}
	}
	fresh := h.arena.Alloc(acc, nodeSize)
	acc.Store(fresh+nodeKey, key)
	acc.Store(fresh+nodeVal, value)
	acc.Store(fresh+nodeNext, uint64(node))
	acc.Store(ba, uint64(fresh))
	return true
}

// PutIfAbsent inserts key → value only when key is absent; it reports
// whether the insert happened.
func (h *HashMap) PutIfAbsent(acc mem.Access, key, value uint64) bool {
	ba := h.bucketAddr(key)
	head := mem.Addr(acc.Load(ba))
	for n := head; n != mem.Nil; n = mem.Addr(acc.Load(n + nodeNext)) {
		if acc.Load(n+nodeKey) == key {
			return false
		}
	}
	fresh := h.arena.Alloc(acc, nodeSize)
	acc.Store(fresh+nodeKey, key)
	acc.Store(fresh+nodeVal, value)
	acc.Store(fresh+nodeNext, uint64(head))
	acc.Store(ba, uint64(fresh))
	return true
}

// Delete removes key, reporting whether it was present. Nodes are
// unlinked, not reclaimed (STAMP's collections behave the same within a
// run).
func (h *HashMap) Delete(acc mem.Access, key uint64) bool {
	ba := h.bucketAddr(key)
	prev := mem.Nil
	node := mem.Addr(acc.Load(ba))
	for node != mem.Nil {
		next := mem.Addr(acc.Load(node + nodeNext))
		if acc.Load(node+nodeKey) == key {
			if prev == mem.Nil {
				acc.Store(ba, uint64(next))
			} else {
				acc.Store(prev+nodeNext, uint64(next))
			}
			return true
		}
		prev = node
		node = next
	}
	return false
}

// Size counts the stored keys by walking every chain. It exists for
// setup and validation; maintaining a shared size word transactionally
// would put a global hotspot into every insert and delete (the original
// STAMP collections avoid one for the same reason).
func (h *HashMap) Size(acc mem.Access) uint64 {
	var n uint64
	for b := uint64(0); b < h.nBuckets; b++ {
		node := mem.Addr(acc.Load(h.buckets + mem.Addr(b)))
		for node != mem.Nil {
			n++
			node = mem.Addr(acc.Load(node + nodeNext))
		}
	}
	return n
}

// Keys appends every stored key to dst (test/validation helper; walks the
// whole table).
func (h *HashMap) Keys(acc mem.Access, dst []uint64) []uint64 {
	for b := uint64(0); b < h.nBuckets; b++ {
		node := mem.Addr(acc.Load(h.buckets + mem.Addr(b)))
		for node != mem.Nil {
			dst = append(dst, acc.Load(node+nodeKey))
			node = mem.Addr(acc.Load(node + nodeNext))
		}
	}
	return dst
}
