// Package seer is a reproduction of "Seer: Probabilistic Scheduling for
// Hardware Transactional Memory" (Diegues, Romano, Garbatov — SPAA 2015)
// as a self-contained Go library.
//
// Because Go exposes no HTM intrinsics, the library runs transactional
// programs on a deterministic virtual-time multicore simulator with a
// best-effort, TSX-semantics hardware transactional memory (see DESIGN.md
// for the substitution argument). On top of that substrate it provides
// the paper's Seer scheduler and the HLE/RTM/SCM baselines it is evaluated
// against, the STAMP-style workloads of the evaluation, and a harness that
// regenerates every table and figure.
//
// # Quick start
//
//	cfg := seer.DefaultConfig()
//	cfg.Policy = seer.PolicySeer
//	cfg.NumAtomicBlocks = 1
//	sys, err := seer.NewSystem(cfg)
//	// allocate shared state in simulated memory
//	counter := sys.AllocAligned(1)
//	workers := make([]seer.Worker, 4)
//	for i := range workers {
//		workers[i] = func(t *seer.Thread) {
//			for n := 0; n < 1000; n++ {
//				t.Atomic(0, func(a seer.Access) {
//					a.Store(counter, a.Load(counter)+1)
//				})
//			}
//		}
//	}
//	rep, err := sys.Run(workers)
//	// sys.Peek(counter) == 4000; rep.MakespanCycles is the virtual time
package seer

import (
	"errors"
	"fmt"

	"seer/internal/core"
	"seer/internal/htm"
	"seer/internal/machine"
	"seer/internal/mem"
	"seer/internal/policy"
	"seer/internal/spinlock"
	"seer/internal/stats"
	"seer/internal/telemetry"
	"seer/internal/topology"
	"seer/internal/trace"
	"seer/internal/txtrace"
)

// Re-exported substrate types, so programs written against the public API
// never import internal packages.
type (
	// Addr is a word address in simulated memory.
	Addr = mem.Addr
	// Access is the accessor passed to transaction bodies; it is backed
	// by a hardware transaction or, on the fall-back path, by direct
	// memory accesses under the single-global lock.
	Access = mem.Access
	// Rand is the deterministic per-thread pseudo-random generator.
	Rand = machine.Rand
	// CostModel assigns virtual-cycle costs to simulated actions.
	CostModel = machine.CostModel
	// HTMConfig sets capacity and noise parameters of the simulated HTM.
	HTMConfig = htm.Config
	// HTMCounters aggregates commit/abort events by cause.
	HTMCounters = htm.Counters
	// SeerOptions selects which Seer mechanisms are active.
	SeerOptions = core.Options
	// Mode classifies how a transaction committed (Table 3 rows).
	Mode = policy.Mode
	// ModeCounts is a histogram over commit modes.
	ModeCounts = policy.ModeCounts
	// Snapshot is one interval of the telemetry timeline
	// (Report.Timeline; enabled by Config.MetricsInterval).
	Snapshot = telemetry.Snapshot
	// TraceEvent is one entry of the bounded runtime event log
	// (enabled by Config.TraceEvents).
	TraceEvent = trace.Event
	// AttemptSpan is one transaction attempt with ground-truth abort
	// attribution (enabled by Config.TraceAttempts).
	AttemptSpan = txtrace.Span
	// InferenceSnapshot is one point of the Seer inference-quality
	// trajectory: the learned locking scheme scored against the
	// ground-truth conflict matrix (Report.Inference).
	InferenceSnapshot = txtrace.QualitySnapshot
	// Topology describes the machine shape as sockets × physical cores
	// × SMT threads (see Config.Topology).
	Topology = topology.Topology
)

// ParseTopology decodes a "<sockets>s<cores>c<threads>t" spec, e.g.
// "2s8c2t" — the format of the -topology CLI flags.
func ParseTopology(spec string) (Topology, error) { return topology.Parse(spec) }

// MaxHWThreads is the ceiling on a topology's total hardware threads.
const MaxHWThreads = machine.MaxHWThreads

// NilAddr is the null simulated-memory address.
const NilAddr = mem.Nil

// Commit-mode values (re-exported from the runtime).
const (
	ModeHTM       = policy.ModeHTM
	ModeHTMAux    = policy.ModeHTMAux
	ModeHTMTx     = policy.ModeHTMTx
	ModeHTMCore   = policy.ModeHTMCore
	ModeHTMTxCore = policy.ModeHTMTxCore
	ModeSGL       = policy.ModeSGL
	ModeSTM       = policy.ModeSTM
	NumModes      = policy.NumModes
)

// PolicyKind selects the TM runtime scheduling policy.
type PolicyKind string

// Available policies. The Seer variants beyond PolicySeer exist for the
// evaluation's overhead and ablation studies (Figures 4 and 5).
const (
	// PolicyHLE models hardware lock elision: one hardware attempt and
	// no contention management (lemming prone).
	PolicyHLE PolicyKind = "HLE"
	// PolicyRTM is the standard retry loop with lemming avoidance and a
	// single-global-lock fall-back (the ATS-like baseline).
	PolicyRTM PolicyKind = "RTM"
	// PolicySCM serializes restarting transactions on one auxiliary
	// lock (Software-assisted Conflict Management).
	PolicySCM PolicyKind = "SCM"
	// PolicyBackoff is randomized exponential backoff: an aborted
	// transaction sleeps a uniform draw from a per-thread window that
	// doubles on abort and halves on commit — the contention manager
	// whose competitive bounds Alistarh et al. prove in "The
	// Transactional Conflict Problem". It uses no conflict information,
	// sitting between blind retry (RTM) and precise serialization
	// (Seer/Oracle).
	PolicyBackoff PolicyKind = "Backoff"
	// PolicySeer is the full Seer scheduler.
	PolicySeer PolicyKind = "Seer"
	// PolicyPhased is the phased-TM runtime ("PhTM"): a PhTM-Star-style
	// global mode word (HW / SW / GLOCK) with deferred/undeferred
	// transition counters. Capacity-aborting blocks are deferred to a
	// software (STM) commit path built on the conflict registry instead
	// of serializing the machine on the global lock; conflict-aborting
	// blocks go through the usual retry machinery.
	PolicyPhased PolicyKind = "PhTM"
	// PolicyATS is Adaptive Transaction Scheduling (Yoo & Lee, SPAA'08):
	// a per-thread contention-intensity signal gating one central
	// dispatch lock — the coarse-grained imprecise-information scheduler
	// of the paper's Table 1, provided as an extra baseline.
	PolicyATS PolicyKind = "ATS"
	// PolicyOracle serializes an aborted transaction behind its exact
	// conflictor using the simulator's omniscient feedback — an upper
	// bound no real HTM can implement (see policy.Oracle). Comparing it
	// with PolicySeer measures how much of the value of precise
	// feedback Seer's inference recovers.
	PolicyOracle PolicyKind = "Oracle"
	// PolicySeq executes bodies directly with no synchronization; used
	// single-threaded as the speedup baseline.
	PolicySeq PolicyKind = "seq"
)

// Config describes a simulated system: machine, HTM, memory and policy.
type Config struct {
	// Threads is the number of worker (= hardware) threads to use.
	Threads int
	// PhysCores is the number of physical cores; hardware threads t and
	// t+PhysCores are hyperthread siblings. Must divide HWThreads.
	// Ignored when Topology is set.
	PhysCores int
	// HWThreads is the machine's total hardware thread count; it
	// defaults to max(Threads, 2*PhysCores handled automatically).
	// Ignored when Topology is set.
	HWThreads int
	// Topology, when non-zero, pins the full machine shape — sockets,
	// physical cores per socket, SMT threads per core — and overrides
	// the flat PhysCores/HWThreads pair. Build one with the topology
	// constructors via ParseTopology ("2s8c2t") or a Topology literal.
	Topology Topology
	// RemoteAccessCost, with a multi-socket Topology, adds this many
	// virtual cycles to every load and store that touches a cache line
	// homed on a different socket than the accessing thread (lines are
	// interleaved across sockets by line index). 0, or a single-socket
	// machine, models uniform memory — the pre-topology behaviour.
	RemoteAccessCost uint64
	// Seed drives every pseudo-random choice in the run.
	Seed int64
	// MemWords sizes the simulated memory.
	MemWords int
	// NumAtomicBlocks is the number of distinct atomic blocks (static
	// transactions) the program contains; Seer allocates one lock and
	// one statistics row per block.
	NumAtomicBlocks int
	// MaxAttempts is the hardware retry budget before the fall-back
	// (5 in the paper's evaluation).
	MaxAttempts int
	// Policy selects the TM runtime.
	Policy PolicyKind
	// Seer configures the Seer scheduler (ignored by other policies).
	Seer SeerOptions
	// HTM sets the simulated HTM's capacities and noise.
	HTM HTMConfig
	// Cost is the virtual-time cost model.
	Cost CostModel
	// MaxCycles aborts runaway runs (0 = unlimited).
	MaxCycles uint64
	// TraceEvents enables the bounded event log, retaining the most
	// recent N runtime events (begins, commits, aborts, fall-backs).
	// 0 disables tracing.
	TraceEvents int
	// MetricsInterval enables the telemetry timeline: every
	// MetricsInterval virtual cycles, the runtime cuts a snapshot of
	// per-interval throughput, abort mix, commit modes, lock waits and
	// the scheduler's Θ/locking-scheme state into Report.Timeline.
	// Sampling is driven by the deterministic virtual clock, so the
	// timeline is reproducible for a fixed seed. 0 disables it at zero
	// hot-path cost.
	MetricsInterval uint64
	// TraceAttempts enables attempt-level span tracing with ground-truth
	// abort attribution: every hardware attempt and fall-back becomes a
	// span recording begin/end cycle, outcome, retry index and — for
	// aborts — the conflicting cache line, the aborter thread and the
	// atomic-block pair, information real HTM never exposes. Spans go to
	// per-thread append-only buffers; recording never advances the
	// virtual clock, so schedules are identical with tracing on or off,
	// and disabling it (the default) keeps the hot path allocation-free.
	TraceAttempts bool
	// AttributionCounters enables the abort-attribution accumulators
	// (ground-truth conflict matrix, aborts by cause × block, cascade
	// depth histogram, hot conflict lines) without retaining per-attempt
	// spans — the cheap mode the telemetry timeline and `seerstat
	// -explain` use. Implied by TraceAttempts.
	AttributionCounters bool
	// SpeculativeQuantum bounds the engine's speculative multi-tick
	// quanta: the maximum number of pure compute ticks a thread may run
	// past its conflict-free horizon without yielding, journaled in a
	// per-thread undo log and rolled back if an earlier-virtual-time
	// thread dooms the speculating transaction (DESIGN.md §6i). Pure
	// scheduling mechanics: schedules, reports and telemetry are
	// byte-for-byte identical at any setting. 0 disables speculation;
	// DefaultConfig enables it at DefaultSpeculativeQuantum. Negative
	// values are rejected by Validate.
	SpeculativeQuantum int
	// RegistryShards splits the conflict registry's line-state table into
	// cache-line-padded shards indexed by a line hash, so the registry
	// entries of adjacent hot lines stop sharing hardware cache lines.
	// 0 picks automatically from the machine shape (flat for ≤ 64
	// hardware threads, spread for wider machines); explicit values are
	// rounded to a power of two and clamped to [1, mem.MaxRegistryShards].
	// Pure data layout: schedules are bit-for-bit identical at any count.
	RegistryShards int
	// Recycler, when non-nil, supplies the large simulator buffers
	// (simulated memory words, registry line states, per-thread HTM
	// contexts) from a previous System built with the same Recycler, and
	// receives them back from System.Release. The harness keeps one per
	// grid worker so replicas are rebuilt without reallocating
	// multi-megabyte state per cell. A Recycler must only ever be used
	// from one goroutine at a time.
	Recycler *Recycler
}

// Recycler carries reusable simulator buffers between System lifetimes
// (see Config.Recycler). The zero value is ready to use.
type Recycler struct {
	mem mem.Buffers
	htm htm.Buffers
}

// registryShards resolves Config.RegistryShards for a machine with hw
// hardware threads: explicit values win; auto (0) keeps the flat table
// on narrow machines and spreads one shard per 16 hardware threads on
// the wide shapes where the scaling exhibits run.
func (c Config) registryShards(hw int) int {
	if c.RegistryShards != 0 {
		return c.RegistryShards
	}
	if hw <= 64 {
		return 1
	}
	return hw / 16
}

// DefaultSpeculativeQuantum is the speculative multi-tick quantum used by
// DefaultConfig: deep enough to cover the long conflict-free compute
// stretches of the STAMP-style workloads, small enough that a rollback
// discards bounded work and the per-thread journal stays cache-resident
// (two words per entry).
const DefaultSpeculativeQuantum = 64

// DefaultConfig mirrors the paper's testbed: 8 hardware threads on 4
// physical cores, 5 hardware attempts, full Seer options.
func DefaultConfig() Config {
	return Config{
		Threads:            8,
		PhysCores:          4,
		Seed:               1,
		MemWords:           1 << 20,
		NumAtomicBlocks:    1,
		MaxAttempts:        5,
		Policy:             PolicySeer,
		Seer:               core.DefaultOptions(),
		HTM:                htm.DefaultConfig(),
		Cost:               machine.DefaultCostModel(),
		MaxCycles:          0,
		SpeculativeQuantum: DefaultSpeculativeQuantum,
	}
}

// Named configuration errors, matchable with errors.Is. Validate (and
// therefore NewSystem) wraps these with the offending value.
var (
	ErrThreads         = errors.New("seer: Threads must be positive")
	ErrNumAtomicBlocks = errors.New("seer: NumAtomicBlocks must be positive")
	ErrMaxAttempts     = errors.New("seer: MaxAttempts must be positive")
	ErrHWThreads       = errors.New("seer: HWThreads < Threads")
	ErrPolicy          = errors.New("seer: unknown policy")
	ErrQuantum         = errors.New("seer: SpeculativeQuantum must be non-negative")
	ErrRegistryShards  = errors.New("seer: RegistryShards must be non-negative")
)

// valid reports whether p names a registered policy.
func (p PolicyKind) valid() bool {
	switch p {
	case PolicyHLE, PolicyRTM, PolicySCM, PolicyBackoff, PolicyATS, PolicyOracle, PolicySeer, PolicyPhased, PolicySeq:
		return true
	}
	return false
}

// machineTopology resolves the machine shape. An explicit Topology wins;
// otherwise the legacy flat pair is resolved as before: HWThreads falls
// back to Threads, PhysCores to one hardware thread per core, and the
// thread count is rounded up to a multiple of the physical cores (idle
// hardware threads are harmless).
func (c Config) machineTopology() (topology.Topology, error) {
	if !c.Topology.IsZero() {
		return c.Topology, c.Topology.Validate()
	}
	hw := c.HWThreads
	if hw == 0 {
		hw = c.Threads
	}
	phys := c.PhysCores
	if phys == 0 {
		phys = hw
	}
	if phys > 0 && hw%phys != 0 {
		hw += phys - hw%phys
	}
	return topology.FromFlat(hw, phys)
}

// Validate checks the configuration without building a system. All
// violations are reported as wrapped named errors (ErrThreads,
// ErrNumAtomicBlocks, ErrMaxAttempts, ErrHWThreads, ErrPolicy, or the
// topology package's sentinels for machine-shape violations), so callers
// can match with errors.Is.
func (c Config) Validate() error {
	if c.Threads <= 0 {
		return fmt.Errorf("%w, got %d", ErrThreads, c.Threads)
	}
	if c.NumAtomicBlocks <= 0 {
		return fmt.Errorf("%w, got %d", ErrNumAtomicBlocks, c.NumAtomicBlocks)
	}
	if c.MaxAttempts <= 0 {
		return fmt.Errorf("%w, got %d", ErrMaxAttempts, c.MaxAttempts)
	}
	if c.Topology.IsZero() && c.HWThreads != 0 && c.HWThreads < c.Threads {
		return fmt.Errorf("%w: %d < %d", ErrHWThreads, c.HWThreads, c.Threads)
	}
	if !c.Policy.valid() {
		return fmt.Errorf("%w %q", ErrPolicy, c.Policy)
	}
	if c.SpeculativeQuantum < 0 {
		return fmt.Errorf("%w, got %d", ErrQuantum, c.SpeculativeQuantum)
	}
	if c.RegistryShards < 0 {
		return fmt.Errorf("%w, got %d", ErrRegistryShards, c.RegistryShards)
	}
	topo, err := c.machineTopology()
	if err != nil {
		return err
	}
	if !c.Topology.IsZero() && topo.Threads() < c.Threads {
		return fmt.Errorf("%w: topology %s has %d < %d", ErrHWThreads,
			topo, topo.Threads(), c.Threads)
	}
	mach := machine.Config{
		Topo:        topo,
		Seed:        c.Seed,
		MaxCycles:   c.MaxCycles,
		Cost:        c.Cost,
		SpecQuantum: c.SpeculativeQuantum,
	}
	return mach.Validate()
}

// Worker is the code run by one thread of the simulated program.
type Worker func(*Thread)

// System is one simulated machine plus TM runtime, ready to run a
// transactional program.
type System struct {
	cfg   Config
	eng   *machine.Engine
	mem   *mem.Memory
	htm   *htm.Unit
	sgl   spinlock.Lock
	sched *core.Seer // nil unless the policy is Seer
	pol   policy.Policy
	trc   *trace.Log
	tel   *telemetry.Recorder // nil unless Config.MetricsInterval > 0
	txc   *txtrace.Collector  // nil unless TraceAttempts/AttributionCounters
}

// NewSystem builds a system from cfg. The returned system is single-use
// per Run for meaningful statistics, though repeated Runs are allowed and
// accumulate counters.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	topo, err := cfg.machineTopology()
	if err != nil {
		return nil, err
	}
	hw := topo.Threads()
	mach := machine.Config{
		Topo:        topo,
		Seed:        cfg.Seed,
		MaxCycles:   cfg.MaxCycles,
		Cost:        cfg.Cost,
		SpecQuantum: cfg.SpeculativeQuantum,
	}
	eng, err := machine.New(mach)
	if err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, eng: eng}
	if cfg.TraceEvents > 0 {
		s.trc = trace.New(cfg.TraceEvents)
	}
	var memBuf *mem.Buffers
	var htmBuf *htm.Buffers
	if r := cfg.Recycler; r != nil {
		memBuf, htmBuf = &r.mem, &r.htm
	}
	s.mem = mem.NewRecycled(cfg.MemWords, cfg.registryShards(hw), memBuf)
	// Spin-lock waiters park on their lock word (machine.Ctx.ParkOnWord);
	// the engine evaluates their wake-time polls against committed memory
	// so a poll that would observe the word still busy re-parks without a
	// coroutine round trip. Peek is the required pure read: a busy lock
	// word can have no live transactional writer (AcquireTx aborts before
	// storing, and any direct store dooms writers first), so the per-tick
	// poll's DirectLoad could not have doomed anyone either.
	m := s.mem
	eng.SetParkPollEvaluator(func(key uint64) bool { return m.Peek(mem.Addr(key)) != 0 })
	// Delegated acquires additionally need the real load/store on the lock
	// word — dooms included — so the engine-side protocol is byte-identical
	// to the coroutine's (machine.Ctx.AcquireWord).
	eng.SetLockWordOps(
		func(hw int, key uint64) uint64 { return m.DirectLoad(hw, mem.Addr(key)) },
		func(hw int, key uint64, v uint64) { m.DirectStore(hw, mem.Addr(key), v) })
	if cfg.SpeculativeQuantum > 0 {
		// Peek (the one tickless shared read — spinlock.LockedFast funnels
		// through it) must close an open speculative quantum before reading,
		// or a speculated poll would see lock words from before earlier
		// virtual-time threads ran. See machine.Engine.SpecBarrier.
		s.mem.SetSpecBarrier(eng.SpecBarrier)
	}
	if cfg.RemoteAccessCost > 0 && topo.Sockets > 1 {
		// NUMA model: cache lines are interleaved across sockets by line
		// index; touching a line homed on another socket costs extra
		// cycles. Pure in (hw, line), so determinism is preserved.
		t, penalty := topo, cfg.RemoteAccessCost
		s.mem.SetAccessCost(func(hw int, ln mem.Line) uint64 {
			if int(ln)%t.Sockets == t.SocketOf(hw) {
				return 0
			}
			return penalty
		})
	}
	s.htm = htm.NewRecycled(s.mem, mach, cfg.HTM, htmBuf)
	s.sgl = spinlock.New(s.mem)

	switch cfg.Policy {
	case PolicyHLE:
		s.pol = &policy.HLE{SGL: s.sgl}
	case PolicyRTM:
		s.pol = &policy.RTM{SGL: s.sgl, MaxAttempts: cfg.MaxAttempts}
	case PolicySCM:
		s.pol = &policy.SCM{SGL: s.sgl, Aux: spinlock.New(s.mem), MaxAttempts: cfg.MaxAttempts}
	case PolicyBackoff:
		s.pol = policy.NewBackoff(s.sgl, cfg.MaxAttempts, hw)
	case PolicyATS:
		s.pol = policy.NewATS(s.sgl, spinlock.New(s.mem), cfg.MaxAttempts, hw)
	case PolicyOracle:
		s.pol = policy.NewOracle(s.sgl, cfg.MaxAttempts)
	case PolicySeer:
		rng := machine.NewRand(uint64(cfg.Seed)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03)
		s.sched = core.New(cfg.NumAtomicBlocks, mach, s.mem, s.htm, cfg.Seer, &rng)
		s.pol = &policy.Seer{SGL: s.sgl, MaxAttempts: cfg.MaxAttempts, Sched: s.sched}
	case PolicyPhased:
		s.pol = policy.NewPhased(s.sgl, cfg.MaxAttempts, hw)
	case PolicySeq:
		s.pol = &policy.Sequential{}
	default:
		return nil, fmt.Errorf("seer: unknown policy %q", cfg.Policy)
	}
	if s.sched != nil {
		s.sched.SetTrace(s.trc)
	}
	if cfg.MetricsInterval > 0 {
		s.tel = telemetry.New(cfg.MetricsInterval, hw)
		if topo.Sockets > 1 {
			s.tel.SetTopology(topo)
		}
		if sched := s.sched; sched != nil {
			s.tel.SetProbe(func() (float64, float64, int, uint64) {
				th := sched.Thresholds()
				return th.Th1, th.Th2, sched.SchemePairs(), sched.SchemeReuseHits
			})
		}
		if cfg.SpeculativeQuantum > 0 {
			s.tel.SetQuantumProbe(eng.QuantumCounters)
		}
		if pp, ok := s.pol.(*policy.Phased); ok {
			s.tel.SetPhaseProbe(pp.PhaseCounters)
		}
	}
	if cfg.TraceAttempts || cfg.AttributionCounters {
		s.txc = txtrace.NewCollector(cfg.NumAtomicBlocks, hw, cfg.TraceAttempts)
		// Conflicts on the single-global-lock word are fall-back protocol
		// mechanics, not workload data conflicts: keep them out of the
		// ground-truth matrix (spans still carry their attribution).
		s.txc.IgnoreLine(uint32(mem.LineOf(s.sgl.Addr())))
		s.txc.SetTraceLog(s.trc)
		s.htm.SetDoomHook(s.txc.OnDoom)
		if sched := s.sched; sched != nil {
			s.txc.SetProbe(func(dst *stats.Matrices) [][]int {
				sched.SnapshotLearned(dst)
				return sched.Scheme()
			})
			interval := cfg.MetricsInterval
			if interval == 0 {
				interval = 1 << 16
			}
			s.txc.SetInterval(interval)
		}
		s.tel.SetAttribution(s.txc.AttrProbe())
	}
	// The engine holds a single tick hook; chain telemetry and the
	// inference-quality snapshots when both are live.
	switch {
	case s.tel != nil && s.txc != nil:
		tel, txc := s.tel, s.txc
		s.eng.SetTickHook(func(now uint64) {
			tel.OnTick(now)
			txc.OnTick(now)
		})
	case s.tel != nil:
		s.eng.SetTickHook(s.tel.OnTick)
	case s.txc != nil:
		s.eng.SetTickHook(s.txc.OnTick)
	}
	return s, nil
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// HWThreads returns the simulated machine's resolved hardware thread
// count (after topology defaults are applied).
func (s *System) HWThreads() int { return s.eng.Config().HWThreads() }

// Topology returns the simulated machine's resolved shape.
func (s *System) Topology() Topology { return s.eng.Config().Topo }

// PolicyName returns the active policy's name.
func (s *System) PolicyName() string { return s.pol.Name() }

// Scheduler exposes the Seer scheduler for inspection (nil for other
// policies).
func (s *System) Scheduler() *core.Seer { return s.sched }

// Trace returns the event log (nil unless Config.TraceEvents > 0).
func (s *System) Trace() *trace.Log { return s.trc }

// Telemetry returns the interval-metrics recorder (nil unless
// Config.MetricsInterval > 0). The recorder accumulates across repeated
// Runs; Report.Timeline carries the snapshots cut so far.
func (s *System) Telemetry() *telemetry.Recorder { return s.tel }

// TraceEvents returns the retained runtime events in chronological order
// (nil unless Config.TraceEvents > 0).
func (s *System) TraceEvents() []TraceEvent { return s.trc.Events() }

// TxTrace returns the attempt-tracing/attribution collector (nil unless
// Config.TraceAttempts or Config.AttributionCounters is set). Use it for
// span/DOT/explain exports after a run.
func (s *System) TxTrace() *txtrace.Collector { return s.txc }

// Alloc reserves n words of simulated memory.
func (s *System) Alloc(n int) Addr { return s.mem.Alloc(n) }

// AllocAligned reserves n words starting at a cache-line boundary.
func (s *System) AllocAligned(n int) Addr { return s.mem.AllocAligned(n) }

// AllocLines reserves n whole cache lines.
func (s *System) AllocLines(n int) Addr { return s.mem.AllocLines(n) }

// FreeWords returns the remaining unallocated simulated memory.
func (s *System) FreeWords() int { return s.mem.Free() }

// Peek reads simulated memory outside a run (setup and verification).
func (s *System) Peek(a Addr) uint64 { return s.mem.Peek(a) }

// Poke writes simulated memory outside a run (setup and verification).
func (s *System) Poke(a Addr, v uint64) { s.mem.Poke(a, v) }

// Memory exposes the raw simulated memory for substrate-level code
// (internal data structures, harness checks).
func (s *System) Memory() *mem.Memory { return s.mem }

// Release returns the system's large buffers to the Recycler it was
// built with (a no-op without one), making them available to the next
// System built on that Recycler. The system must not be used afterwards.
func (s *System) Release() {
	if r := s.cfg.Recycler; r != nil {
		s.mem.Release(&r.mem)
		s.htm.Release(&r.htm)
	}
}

// Run executes the workers (one per hardware thread, worker i on thread
// i) until all return, and reports the run. It is an error to pass more
// workers than configured threads.
func (s *System) Run(workers []Worker) (Report, error) {
	if len(workers) > s.cfg.Threads {
		return Report{}, fmt.Errorf("seer: %d workers for %d threads", len(workers), s.cfg.Threads)
	}
	threads := make([]*policy.Thread, len(workers))
	bodies := make([]func(*machine.Ctx), len(workers))
	for i, w := range workers {
		if w == nil {
			continue
		}
		worker := w
		idx := i
		bodies[i] = func(ctx *machine.Ctx) {
			pt := policy.NewThread(ctx, s.mem, s.htm)
			pt.Trace = s.trc
			pt.Tel = s.tel.Shard(ctx.ID())
			pt.Spans = s.txc
			if s.sched != nil {
				pt.Seer = s.sched.NewThreadState(ctx)
			}
			threads[idx] = pt
			worker(&Thread{sys: s, pt: pt})
		}
	}
	s.tel.BeginRun()
	makespan, err := s.eng.Run(bodies)
	if err != nil {
		return Report{}, err
	}
	return s.buildReport(makespan, threads), nil
}
