package seer

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"seer/internal/policy"
	"seer/internal/telemetry"
	"seer/internal/tune"
)

// Report summarizes one System.Run.
type Report struct {
	Policy  string
	Threads int

	// MakespanCycles is the maximum final virtual clock over all worker
	// threads — the run's duration in simulated time.
	MakespanCycles uint64
	// Modes is the commit-mode histogram summed over threads (Table 3).
	Modes ModeCounts
	// HTM aggregates hardware commit/abort events by cause.
	HTM HTMCounters
	// HWAttempts is the number of hardware transactions issued;
	// Fallbacks counts single-global-lock acquisitions.
	HWAttempts uint64
	Fallbacks  uint64

	// Seer holds scheduler internals when the Seer policy ran.
	Seer *SeerReport

	// Backoff holds the randomized-backoff counters when the Backoff
	// policy ran (nil otherwise).
	Backoff *BackoffReport

	// Phased holds the phased-TM runtime's mode-word statistics when the
	// Phased policy ran (nil otherwise).
	Phased *PhasedReport

	// Quantum holds the engine's speculative-quantum counters when
	// Config.SpeculativeQuantum > 0 (nil otherwise). Like the HTM
	// counters they accumulate across Runs on one System. The counters
	// are engine diagnostics, not simulated-machine state: they are
	// deliberately excluded from Summary, whose digest is invariant
	// across SpeculativeQuantum settings (the determinism goldens and
	// the differential fuzz target rely on that).
	Quantum *QuantumReport

	// Timeline is the interval-metrics series cut by the telemetry
	// recorder (nil unless Config.MetricsInterval > 0). Snapshots from
	// repeated Runs on one System accumulate.
	Timeline []Snapshot

	// Inference is the Seer inference-quality trajectory: the learned
	// locking scheme scored against the ground-truth conflict matrix at
	// each metrics interval (nil unless attribution is on and the Seer
	// policy ran; see Config.TraceAttempts/AttributionCounters).
	Inference []InferenceSnapshot
}

// SeerReport captures the scheduler state at the end of a run.
type SeerReport struct {
	Thresholds    tune.Params
	SchemeUpdates uint64
	MultiCASOk    uint64
	MultiCASFail  uint64
	// LockAcqEvents counts transactions that acquired a non-empty
	// tx-lock set; LockFracMedian is the median fraction of all tx
	// locks acquired in those events (the §5.2 "<23% in 50% of cases"
	// statistic).
	LockAcqEvents  uint64
	LockFracMedian float64
	// SchemeRows is the final locksToAcquire table (row per atomic
	// block, sorted lock ids).
	SchemeRows [][]int
}

// BackoffReport captures the Backoff policy's counters at the end of a
// run: how many randomized sleeps were issued, their total virtual-cycle
// cost, and the largest window any thread reached (bounded by the
// configured cap).
type BackoffReport struct {
	Waits     uint64
	Cycles    uint64
	MaxWindow uint64
}

// PhasedReport captures the phased-TM runtime's counters at the end of a
// run: how often capacity aborts deferred work to the software commit
// path, the software attempt/commit/abort volume, the global mode word's
// transition count and how the makespan split across the HW/SW/GLOCK
// phases.
type PhasedReport struct {
	Deferrals   uint64
	Undeferrals uint64
	Transitions uint64
	SWAttempts  uint64
	SWCommits   uint64
	SWAborts    uint64
	// ModeCycles is the virtual-cycle occupancy per phase, indexed
	// HW=0, SW=1, GLOCK=2 (policy.PhaseHW/PhaseSW/PhaseGLOCK).
	ModeCycles [3]uint64
	// STM aggregates the software commit path's event counters by cause
	// (the SW-mode analogue of Report.HTM).
	STM HTMCounters
}

// QuantumReport captures the engine's speculative-quantum activity:
// quanta granted, pure ticks journaled, rollbacks, and journaled ticks
// discarded by rollbacks (see machine.Engine.QuantumCounters).
type QuantumReport struct {
	Grants        uint64
	Ticks         uint64
	Rollbacks     uint64
	RollbackTicks uint64
}

// Commits returns the total committed atomic blocks.
func (r Report) Commits() uint64 { return r.Modes.Total() }

// Throughput returns commits per 1000 virtual cycles.
func (r Report) Throughput() float64 {
	if r.MakespanCycles == 0 {
		return 0
	}
	return 1000 * float64(r.Commits()) / float64(r.MakespanCycles)
}

// AbortRate returns hardware aborts per issued hardware transaction.
func (r Report) AbortRate() float64 {
	if r.HWAttempts == 0 {
		return 0
	}
	return float64(r.HTM.Aborts) / float64(r.HWAttempts)
}

// ModeFractions returns the Table 3 style percentage per mode.
func (r Report) ModeFractions() [NumModes]float64 {
	var out [NumModes]float64
	total := r.Modes.Total()
	if total == 0 {
		return out
	}
	for i := range out {
		out[i] = 100 * float64(r.Modes[i]) / float64(total)
	}
	return out
}

// String renders a human-readable summary.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s @ %d threads: %d commits in %d cycles (%.3f commits/kcycle, abort rate %.2f)\n",
		r.Policy, r.Threads, r.Commits(), r.MakespanCycles, r.Throughput(), r.AbortRate())
	fr := r.ModeFractions()
	for m := Mode(0); m < NumModes; m++ {
		if r.Modes[m] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-22s %6.2f%%\n", m.String(), fr[m])
	}
	if r.Seer != nil {
		fmt.Fprintf(&b, "  seer: Th1=%.3f Th2=%.3f updates=%d multiCAS=%d/%d lockAcq=%d medianLockFrac=%.2f\n",
			r.Seer.Thresholds.Th1, r.Seer.Thresholds.Th2, r.Seer.SchemeUpdates,
			r.Seer.MultiCASOk, r.Seer.MultiCASOk+r.Seer.MultiCASFail,
			r.Seer.LockAcqEvents, r.Seer.LockFracMedian)
	}
	if r.Backoff != nil {
		fmt.Fprintf(&b, "  backoff: waits=%d cycles=%d maxWindow=%d\n",
			r.Backoff.Waits, r.Backoff.Cycles, r.Backoff.MaxWindow)
	}
	if p := r.Phased; p != nil {
		fmt.Fprintf(&b, "  phased: deferrals=%d undeferrals=%d transitions=%d sw %d/%d committed\n",
			p.Deferrals, p.Undeferrals, p.Transitions, p.SWCommits, p.SWAttempts)
		total := p.ModeCycles[0] + p.ModeCycles[1] + p.ModeCycles[2]
		if total > 0 {
			fmt.Fprintf(&b, "  phase occupancy: HW %.1f%% SW %.1f%% GLOCK %.1f%%\n",
				100*float64(p.ModeCycles[0])/float64(total),
				100*float64(p.ModeCycles[1])/float64(total),
				100*float64(p.ModeCycles[2])/float64(total))
		}
	}
	if q := r.Quantum; q != nil && q.Grants > 0 {
		fmt.Fprintf(&b, "  quantum: grants=%d ticks=%d rollbacks=%d rolledback=%d\n",
			q.Grants, q.Ticks, q.Rollbacks, q.RollbackTicks)
	}
	return b.String()
}

// Summary renders a canonical, deterministic digest of the report: every
// counter the runtime maintains, in a fixed order and fixed formatting.
// Two runs of the same Config and seed must produce byte-identical
// summaries — the determinism golden test and `seerstat -summary` are
// built on this. Unlike String, zero counters are printed, so the digest
// shape is independent of which events happened to occur.
func (r Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy=%s threads=%d\n", r.Policy, r.Threads)
	fmt.Fprintf(&b, "makespan=%d commits=%d\n", r.MakespanCycles, r.Commits())
	for m := Mode(0); m < NumModes; m++ {
		// The STM mode line appears only when the Phased policy ran, so
		// digests of every other policy are unchanged (the Backoff-line
		// precedent below).
		if m == ModeSTM && r.Phased == nil {
			continue
		}
		fmt.Fprintf(&b, "mode[%s]=%d\n", m.String(), r.Modes[m])
	}
	fmt.Fprintf(&b, "htm commits=%d aborts=%d conflict=%d capacity=%d explicit=%d spurious=%d\n",
		r.HTM.Commits, r.HTM.Aborts, r.HTM.ConflictAborts, r.HTM.CapacityAborts,
		r.HTM.ExplicitAborts, r.HTM.SpuriousAborts)
	fmt.Fprintf(&b, "hwattempts=%d fallbacks=%d\n", r.HWAttempts, r.Fallbacks)
	if r.Seer != nil {
		fmt.Fprintf(&b, "seer th1=%.6f th2=%.6f updates=%d multicas=%d/%d lockacq=%d medianfrac=%.6f\n",
			r.Seer.Thresholds.Th1, r.Seer.Thresholds.Th2, r.Seer.SchemeUpdates,
			r.Seer.MultiCASOk, r.Seer.MultiCASFail, r.Seer.LockAcqEvents, r.Seer.LockFracMedian)
		for i, row := range r.Seer.SchemeRows {
			fmt.Fprintf(&b, "scheme[%d]=%v\n", i, row)
		}
	}
	// The backoff line appears only when the Backoff policy ran, so
	// digests of every other policy are unchanged.
	if r.Backoff != nil {
		fmt.Fprintf(&b, "backoff waits=%d cycles=%d maxwindow=%d\n",
			r.Backoff.Waits, r.Backoff.Cycles, r.Backoff.MaxWindow)
	}
	// Phased lines appear only when the Phased policy ran, so digests of
	// every other policy are unchanged.
	if p := r.Phased; p != nil {
		fmt.Fprintf(&b, "phased deferrals=%d undeferrals=%d transitions=%d\n",
			p.Deferrals, p.Undeferrals, p.Transitions)
		fmt.Fprintf(&b, "phased sw attempts=%d commits=%d aborts=%d conflict=%d explicit=%d\n",
			p.SWAttempts, p.SWCommits, p.SWAborts, p.STM.ConflictAborts, p.STM.ExplicitAborts)
		fmt.Fprintf(&b, "phased cycles hw=%d sw=%d glock=%d\n",
			p.ModeCycles[0], p.ModeCycles[1], p.ModeCycles[2])
	}
	fmt.Fprintf(&b, "timeline intervals=%d\n", len(r.Timeline))
	for _, s := range r.Timeline {
		fmt.Fprintf(&b, "interval[%d] %d..%d commits=%d attempts=%d aborts=%v fallbacks=%d lockwait=%d modes=%v\n",
			s.Index, s.StartCycle, s.EndCycle, s.Commits, s.Attempts, s.Aborts, s.Fallbacks, s.LockWait, s.Modes)
	}
	// Inference lines appear only when attribution ran, so digests of
	// runs with tracing disabled are unchanged.
	for _, q := range r.Inference {
		fmt.Fprintf(&b, "inference[%d] end=%d true=%d predicted=%d tp=%d precision=%.6f recall=%.6f rankdiv=%.6f attributed=%d\n",
			q.Index, q.EndCycle, q.TruePairs, q.PredictedPairs, q.TP, q.Precision, q.Recall, q.RankDivergence, q.Attributed)
	}
	return b.String()
}

// WriteTimelineCSV renders Report.Timeline as CSV, one row per interval.
func (r Report) WriteTimelineCSV(w io.Writer) error {
	return telemetry.WriteCSV(w, r.Timeline)
}

// WriteTimelineJSONL renders Report.Timeline as JSON Lines.
func (r Report) WriteTimelineJSONL(w io.Writer) error {
	return telemetry.WriteJSONL(w, r.Timeline)
}

// WriteChromeTrace synthesizes a Chrome trace-event JSON document
// (loadable in chrome://tracing or Perfetto) from the system's retained
// event log. It requires Config.TraceEvents > 0.
func (s *System) WriteChromeTrace(w io.Writer) error {
	if s.trc == nil {
		return fmt.Errorf("seer: tracing disabled (set Config.TraceEvents)")
	}
	return telemetry.WriteChromeTrace(w, s.trc.Events())
}

// buildReport assembles the Report after a run.
func (s *System) buildReport(makespan uint64, threads []*policy.Thread) Report {
	r := Report{
		Policy:         s.pol.Name(),
		Threads:        s.cfg.Threads,
		MakespanCycles: makespan,
		HTM:            s.htm.Counters(),
	}
	for _, t := range threads {
		if t == nil {
			continue
		}
		r.Modes.Add(t.Modes)
		r.HWAttempts += t.Attempts
		r.Fallbacks += t.Fallbacks
	}
	if s.sched != nil {
		sr := &SeerReport{
			Thresholds:    s.sched.Thresholds(),
			SchemeUpdates: s.sched.SchemeUpdates,
			MultiCASOk:    s.sched.MultiCASOk,
			MultiCASFail:  s.sched.MultiCASFail,
			LockAcqEvents: s.sched.LockAcqEvents,
			SchemeRows:    s.sched.Scheme(),
		}
		if n := len(s.sched.LockAcqSamples); n > 0 {
			sizes := make([]int, n)
			copy(sizes, s.sched.LockAcqSamples)
			sort.Ints(sizes)
			median := sizes[n/2]
			sr.LockFracMedian = float64(median) / float64(s.sched.NumTx())
		}
		r.Seer = sr
	}
	if bp, ok := s.pol.(*policy.Backoff); ok {
		br := &BackoffReport{}
		br.Waits, br.Cycles, br.MaxWindow = bp.Stats()
		r.Backoff = br
	}
	if pp, ok := s.pol.(*policy.Phased); ok {
		st := pp.Stats(makespan)
		r.Phased = &PhasedReport{
			Deferrals:   st.Deferrals,
			Undeferrals: st.Undeferrals,
			Transitions: st.Transitions,
			SWAttempts:  st.SWAttempts,
			SWCommits:   st.SWCommits,
			SWAborts:    st.SWAborts,
			ModeCycles:  st.Occupancy,
			STM:         s.htm.SWCounters(),
		}
	}
	if s.cfg.SpeculativeQuantum > 0 {
		qr := &QuantumReport{}
		qr.Grants, qr.Ticks, qr.Rollbacks, qr.RollbackTicks = s.eng.QuantumCounters()
		r.Quantum = qr
	}
	if s.tel != nil {
		s.tel.Flush(makespan)
		r.Timeline = s.tel.Snapshots()
	}
	if s.txc != nil {
		s.txc.Flush(makespan)
		r.Inference = s.txc.Quality()
	}
	return r
}
