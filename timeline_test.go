package seer_test

import (
	"bytes"
	"strings"
	"testing"

	"seer"
)

// buildTimelineSystem constructs a contended counter workload with
// interval metrics (and optionally tracing) enabled.
func buildTimelineSystem(t *testing.T, pol seer.PolicyKind, interval uint64, traceN int) (*seer.System, []seer.Worker) {
	t.Helper()
	cfg := seer.DefaultConfig()
	cfg.Policy = pol
	cfg.Threads = 4
	cfg.PhysCores = 2
	cfg.NumAtomicBlocks = 1
	cfg.MemWords = 1 << 14
	cfg.MaxCycles = 1 << 32
	cfg.MetricsInterval = interval
	cfg.TraceEvents = traceN
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	counter := sys.AllocAligned(1)
	workers := make([]seer.Worker, cfg.Threads)
	for i := range workers {
		workers[i] = func(th *seer.Thread) {
			for n := 0; n < 300; n++ {
				th.Atomic(0, func(a seer.Access) {
					a.Store(counter, a.Load(counter)+1)
					a.Work(10)
				})
				th.Work(5)
			}
		}
	}
	return sys, workers
}

// TestTimelineInvariants: with MetricsInterval set, the Timeline is
// non-empty, contiguous, closed at the makespan, and its commit total
// matches the report's.
func TestTimelineInvariants(t *testing.T) {
	sys, workers := buildTimelineSystem(t, seer.PolicySeer, 2048, 0)
	rep, err := sys.Run(workers)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Timeline) == 0 {
		t.Fatalf("Timeline empty with MetricsInterval set")
	}
	var commits uint64
	for i, s := range rep.Timeline {
		if s.Index != i {
			t.Fatalf("snapshot %d has index %d", i, s.Index)
		}
		if i > 0 && s.StartCycle != rep.Timeline[i-1].EndCycle {
			t.Fatalf("gap between snapshots %d and %d", i-1, i)
		}
		commits += s.Commits
	}
	if first := rep.Timeline[0]; first.StartCycle != 0 {
		t.Fatalf("timeline starts at %d, want 0", first.StartCycle)
	}
	if last := rep.Timeline[len(rep.Timeline)-1]; last.EndCycle != rep.MakespanCycles {
		t.Fatalf("timeline ends at %d, makespan is %d", last.EndCycle, rep.MakespanCycles)
	}
	if commits != rep.Commits() {
		t.Fatalf("timeline commits %d != report commits %d", commits, rep.Commits())
	}
	// Under Seer the probe must report live thresholds.
	for _, s := range rep.Timeline {
		if s.Th1 == 0 || s.Th2 == 0 {
			t.Fatalf("Seer snapshot missing threshold probe: %+v", s)
		}
	}
	if sys.Telemetry() == nil {
		t.Fatalf("Telemetry() nil with MetricsInterval set")
	}
}

// TestTimelineShortRun: a run far shorter than the interval still yields
// exactly one (partial) snapshot.
func TestTimelineShortRun(t *testing.T) {
	sys, workers := buildTimelineSystem(t, seer.PolicyRTM, 1<<40, 0)
	rep, err := sys.Run(workers)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Timeline) != 1 {
		t.Fatalf("snapshots = %d, want 1", len(rep.Timeline))
	}
	s := rep.Timeline[0]
	if s.StartCycle != 0 || s.EndCycle != rep.MakespanCycles || s.Commits != rep.Commits() {
		t.Fatalf("partial snapshot wrong: %+v (makespan %d)", s, rep.MakespanCycles)
	}
}

// TestTimelineDisabled: MetricsInterval 0 must leave the telemetry layer
// entirely absent.
func TestTimelineDisabled(t *testing.T) {
	sys, workers := buildTimelineSystem(t, seer.PolicyRTM, 0, 0)
	rep, err := sys.Run(workers)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Timeline != nil {
		t.Fatalf("Timeline non-nil with metrics disabled")
	}
	if sys.Telemetry() != nil {
		t.Fatalf("Telemetry() non-nil with metrics disabled")
	}
}

// TestTimelineExportsDeterministic: two same-seed runs must export
// byte-identical CSV, JSONL and Chrome trace documents.
func TestTimelineExportsDeterministic(t *testing.T) {
	exports := func() (csv, jsonl, chrome string) {
		sys, workers := buildTimelineSystem(t, seer.PolicySeer, 2048, 4096)
		rep, err := sys.Run(workers)
		if err != nil {
			t.Fatal(err)
		}
		var b1, b2, b3 bytes.Buffer
		if err := rep.WriteTimelineCSV(&b1); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteTimelineJSONL(&b2); err != nil {
			t.Fatal(err)
		}
		if err := sys.WriteChromeTrace(&b3); err != nil {
			t.Fatal(err)
		}
		return b1.String(), b2.String(), b3.String()
	}
	csv1, jsonl1, chrome1 := exports()
	csv2, jsonl2, chrome2 := exports()
	if csv1 != csv2 {
		t.Fatalf("CSV export not deterministic")
	}
	if jsonl1 != jsonl2 {
		t.Fatalf("JSONL export not deterministic")
	}
	if chrome1 != chrome2 {
		t.Fatalf("Chrome trace export not deterministic")
	}
	if lines := strings.Count(csv1, "\n"); lines < 2 {
		t.Fatalf("CSV export trivially small: %d lines", lines)
	}
	if !strings.Contains(chrome1, `"traceEvents"`) || !strings.Contains(chrome1, `"ph":"X"`) {
		t.Fatalf("Chrome trace missing duration events:\n%.300s", chrome1)
	}
}

// TestChromeTraceRequiresTracing: synthesizing a Chrome trace without an
// event log is an error, not silence.
func TestChromeTraceRequiresTracing(t *testing.T) {
	sys, workers := buildTimelineSystem(t, seer.PolicyRTM, 0, 0)
	if _, err := sys.Run(workers); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := sys.WriteChromeTrace(&b); err == nil {
		t.Fatalf("WriteChromeTrace succeeded without tracing")
	}
}

// TestTraceEventsAccessor: the public TraceEvents accessor mirrors the
// retained event log.
func TestTraceEventsAccessor(t *testing.T) {
	sys, workers := buildTimelineSystem(t, seer.PolicyRTM, 0, 256)
	if _, err := sys.Run(workers); err != nil {
		t.Fatal(err)
	}
	evs := sys.TraceEvents()
	if len(evs) == 0 {
		t.Fatalf("TraceEvents empty with tracing enabled")
	}
	sysOff, workersOff := buildTimelineSystem(t, seer.PolicyRTM, 0, 0)
	if _, err := sysOff.Run(workersOff); err != nil {
		t.Fatal(err)
	}
	if sysOff.TraceEvents() != nil {
		t.Fatalf("TraceEvents non-nil with tracing disabled")
	}
}

// BenchmarkMetricsOverhead compares a run with telemetry disabled against
// one with interval metrics enabled. The disabled case must add no
// allocations on the hot path (the nil-shard no-op convention).
func BenchmarkMetricsOverhead(b *testing.B) {
	for _, bc := range []struct {
		name     string
		interval uint64
	}{
		{"disabled", 0},
		{"interval4k", 4096},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := seer.DefaultConfig()
				cfg.Policy = seer.PolicyRTM
				cfg.Threads = 4
				cfg.PhysCores = 2
				cfg.NumAtomicBlocks = 1
				cfg.MemWords = 1 << 14
				cfg.MaxCycles = 1 << 32
				cfg.MetricsInterval = bc.interval
				sys, err := seer.NewSystem(cfg)
				if err != nil {
					b.Fatal(err)
				}
				counter := sys.AllocAligned(1)
				workers := make([]seer.Worker, cfg.Threads)
				for w := range workers {
					workers[w] = func(th *seer.Thread) {
						for n := 0; n < 200; n++ {
							th.Atomic(0, func(a seer.Access) {
								a.Store(counter, a.Load(counter)+1)
								a.Work(10)
							})
							th.Work(5)
						}
					}
				}
				if _, err := sys.Run(workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
