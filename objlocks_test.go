package seer_test

import (
	"testing"

	"seer"
)

// runClusters runs a kmeans-like workload (8 threads folding points into
// 6 cluster accumulators) under Seer with or without the object-granular
// locking extension, returning the report.
func runClusters(t *testing.T, objLocks bool, seed int64) seer.Report {
	t.Helper()
	cfg := seer.DefaultConfig()
	cfg.Policy = seer.PolicySeer
	cfg.Threads = 8
	cfg.PhysCores = 4
	cfg.NumAtomicBlocks = 1
	cfg.MemWords = 1 << 13
	cfg.Seed = seed
	cfg.Seer.ObjLocks = objLocks
	cfg.Seer.ObjStripes = 8
	cfg.Seer.UpdateEvery = 200
	cfg.MaxCycles = 1 << 33
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const nClusters = 6
	clusters := sys.AllocLines(nClusters)
	workers := make([]seer.Worker, 8)
	for w := range workers {
		workers[w] = func(th *seer.Thread) {
			rng := th.Rand()
			for n := 0; n < 250; n++ {
				c := rng.Intn(nClusters)
				base := clusters + seer.Addr(c*8)
				th.AtomicObj(0, uint64(c), func(a seer.Access) {
					v := a.Load(base)
					a.Work(90)
					a.Store(base, v+1)
				})
				th.Work(uint64(10 + rng.Intn(11)))
			}
		}
	}
	rep, err := sys.Run(workers)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for c := 0; c < nClusters; c++ {
		total += sys.Peek(clusters + seer.Addr(c*8))
	}
	if total != 8*250 {
		t.Fatalf("lost updates: %d != %d", total, 8*250)
	}
	return rep
}

// TestObjLocksPreserveAtomicity: the extension must not break
// correctness.
func TestObjLocksPreserveAtomicity(t *testing.T) {
	runClusters(t, true, 3)
}

// TestObjLocksOutperformBlockLocks: with per-cluster stripes, serialized
// transactions of different clusters proceed in parallel, so the
// extension should not be slower — and usually faster — than whole-block
// locks on this workload (averaged over seeds to damp scheduling noise).
func TestObjLocksOutperformBlockLocks(t *testing.T) {
	var block, obj uint64
	for seed := int64(1); seed <= 3; seed++ {
		block += runClusters(t, false, seed).MakespanCycles
		obj += runClusters(t, true, seed).MakespanCycles
	}
	if float64(obj) > 1.1*float64(block) {
		t.Fatalf("object-granular locks slower: %d vs %d cycles", obj, block)
	}
	t.Logf("block-lock makespan %d, object-lock makespan %d (%.2fx)",
		block, obj, float64(block)/float64(obj))
}
