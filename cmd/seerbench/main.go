// Command seerbench regenerates the tables and figures of the paper's
// evaluation on the simulated machine.
//
// Usage:
//
//	seerbench -experiment fig3|table3|fig4|fig5|lockfrac|ext|attempts|contended|scaling|inference|adversarial|phased|fullsuite|all [flags]
//	seerbench -compare old.json new.json [-compare-threshold f]
//
// The contended experiment is a stress view of the SGL park/wake path
// (HLE at 8 threads), the scaling experiment sweeps machine shapes from
// the paper's 8-thread socket up to a 4-socket, 128-thread box, the
// inference experiment scores Seer's learned locking scheme against the
// simulator's ground-truth conflict matrix (precision/recall over
// virtual time), the adversarial experiment runs synthetic worst-case
// conflict graphs (ring, star, bipartite, clique, phase-shift) under
// every contention manager, the phased experiment compares the phased
// runtime (PhTM, with its software commit path) against RTM/SCM/Seer on
// the suite plus a capacity-bound microbenchmark, and fullsuite runs
// Figure 3 over the opt-in bayes/labyrinth workloads; none is part of
// "all", which regenerates only the paper's exhibits.
//
// The second form compares two -bench-json snapshots (per-experiment
// cells/sec ratio and geomean) and exits nonzero when the geomean falls
// below -compare-threshold — the CI bench regression gate.
//
// Flags:
//
//	-scale f     workload scale factor (default 1.0; smaller is faster)
//	-runs n      repetitions per cell (default 3)
//	-seed n      base seed (default 1)
//	-workloads s comma-separated subset (default: the full STAMP suite)
//	-full-suite  widen the default workload set with bayes and labyrinth
//	-parallel n  run n grid cells concurrently (-1 = one per CPU; output
//	             is byte-identical to a sequential run at any width)
//	-topology s  run every cell on this machine shape instead of the
//	             paper's 1s4c2t testbed (spec form <sockets>s<cores>c<threads>t,
//	             e.g. 2s8c2t; cells needing more threads than the shape
//	             offers fail). scaling ignores it: it sweeps its own shapes.
//	-registry-shards n  conflict-registry shard count per cell (0 = auto
//	             by machine shape; results identical at any count)
//	-quantum k   speculative-quantum depth per cell (0 = library default,
//	             -1 = off; results identical at any setting)
//	-bench-json f write executor timing/throughput stats to f as JSON
//	-cpuprofile f write a pprof CPU profile of the run to f
//	-memprofile f write a pprof heap profile (taken at exit, after a GC) to f
//	-v           stream per-cell progress to stderr
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"seer"
	"seer/internal/bench"
	"seer/internal/harness"
)

// experimentNames lists every runnable -experiment value, in the order
// the doc comment presents them; "unknown experiment" errors and the
// -experiment flag help enumerate it so typos are self-correcting.
var experimentNames = []string{
	"fig3", "table3", "fig4", "fig5", "lockfrac", "ext", "attempts",
	"timeline", "inference", "contended", "scaling", "adversarial",
	"phased", "fullsuite", "all",
}

func main() {
	var (
		experiment = flag.String("experiment", "all", strings.Join(experimentNames, "|"))
		scale      = flag.Float64("scale", 1.0, "workload scale factor")
		runs       = flag.Int("runs", 3, "repetitions per measurement")
		seed       = flag.Int64("seed", 1, "base PRNG seed")
		workloads  = flag.String("workloads", "", "comma-separated workload subset")
		verbose    = flag.Bool("v", false, "stream per-cell progress to stderr")
		csvPath    = flag.String("csv", "", "also write machine-readable results to this CSV file")
		allPol     = flag.Bool("allpolicies", false, "fig3: include the ATS and Oracle extension baselines")
		plotOut    = flag.Bool("plot", false, "fig3: render terminal line charts instead of tables")
		interval   = flag.Uint64("metrics-interval", 0, "timeline: snapshot period in cycles (0 = default)")
		parallel   = flag.Int("parallel", 0, "concurrent grid cells (0/1 = sequential, -1 = one per CPU)")
		topoSpec   = flag.String("topology", "", "machine shape for every cell, e.g. 2s8c2t (default: the paper's 1s4c2t testbed)")
		benchJSON  = flag.String("bench-json", "", "write executor timing stats to this JSON file")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
		fullSuite  = flag.Bool("full-suite", false, "widen the default workload set with bayes and labyrinth")
		regShards  = flag.Int("registry-shards", 0, "conflict-registry shard count per cell (0 = auto by machine shape; results identical at any count)")
		quantum    = flag.Int("quantum", 0, "speculative-quantum budget per cell (0 = library default, -1 = off, K > 0 = up to K pure ticks; results identical at any setting)")
		compareOld = flag.String("compare", "", "compare this old -bench-json snapshot against the new one given as a positional argument, then exit (nonzero on regression)")
		compareTh  = flag.Float64("compare-threshold", 0.9, "compare: fail when the cells/sec geomean ratio new/old falls below this")
	)
	flag.Parse()

	if *compareOld != "" {
		// seerbench -compare old.json new.json: pure file comparison, no
		// simulation. Exit 1 on regression so CI can gate on it.
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "seerbench: -compare OLD.json needs exactly one positional argument (NEW.json)")
			os.Exit(2)
		}
		ok, err := bench.Compare(*compareOld, flag.Arg(0), *compareTh, os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seerbench: %v\n", err)
			os.Exit(2)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}

	// fail stops an in-flight CPU profile (StopCPUProfile is a no-op when
	// none is running) so partial profiles are flushed, then exits.
	fail := func(err error) {
		pprof.StopCPUProfile()
		fmt.Fprintf(os.Stderr, "seerbench: %v\n", err)
		os.Exit(1)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
	}

	opt := harness.Options{Scale: *scale, Runs: *runs, Seed: *seed, Parallel: *parallel,
		FullSuite: *fullSuite, RegistryShards: *regShards, Quantum: *quantum}
	if *topoSpec != "" {
		topo, err := seer.ParseTopology(*topoSpec)
		if err != nil {
			fail(err)
		}
		opt.Topology = topo
	}
	var wls []string
	if *workloads != "" {
		wls = strings.Split(*workloads, ",")
	}
	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}

	var csvOut *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		csvOut = f
	}
	maybeCSV := func(write func(io.Writer) error) error {
		if csvOut == nil {
			return nil
		}
		return write(csvOut)
	}

	run := func(name string) error {
		switch name {
		case "fig3":
			pols := harness.Fig3Policies
			if *allPol {
				pols = harness.AllPolicies
			}
			d, err := harness.Fig3With(opt, wls, pols, progress)
			if err != nil {
				return err
			}
			if *plotOut {
				d.Plot(os.Stdout)
			} else {
				d.Render(os.Stdout)
			}
			if err := maybeCSV(d.WriteCSV); err != nil {
				return err
			}
		case "table3":
			d, err := harness.Table3(opt, wls, progress)
			if err != nil {
				return err
			}
			d.Render(os.Stdout)
			if err := maybeCSV(d.WriteCSV); err != nil {
				return err
			}
		case "fig4":
			d, err := harness.Fig4(opt, wls, progress)
			if err != nil {
				return err
			}
			d.Render(os.Stdout)
			if err := maybeCSV(d.WriteCSV); err != nil {
				return err
			}
		case "fig5":
			d, err := harness.Fig5(opt, wls, progress)
			if err != nil {
				return err
			}
			d.Render(os.Stdout)
			if err := maybeCSV(d.WriteCSV); err != nil {
				return err
			}
		case "contended":
			d, err := harness.Contended(opt, wls, progress)
			if err != nil {
				return err
			}
			d.Render(os.Stdout)
		case "scaling":
			d, err := harness.Scaling(opt, wls, progress)
			if err != nil {
				return err
			}
			d.Render(os.Stdout)
		case "lockfrac":
			d, err := harness.LockFrac(opt, wls)
			if err != nil {
				return err
			}
			d.Render(os.Stdout)
		case "ext":
			d, err := harness.Extensions(opt, wls, progress)
			if err != nil {
				return err
			}
			d.Render(os.Stdout)
		case "attempts":
			d, err := harness.Attempts(opt, wls, progress)
			if err != nil {
				return err
			}
			d.Render(os.Stdout)
		case "timeline":
			d, err := harness.Timelines(opt, wls, nil, *interval, progress)
			if err != nil {
				return err
			}
			d.Render(os.Stdout)
			if err := maybeCSV(d.WriteCSV); err != nil {
				return err
			}
		case "inference":
			d, err := harness.Inference(opt, wls, *interval, progress)
			if err != nil {
				return err
			}
			d.Render(os.Stdout)
		case "adversarial":
			d, err := harness.Adversarial(opt, wls, *interval, progress)
			if err != nil {
				return err
			}
			d.Render(os.Stdout)
		case "phased":
			d, err := harness.Phased(opt, wls, progress)
			if err != nil {
				return err
			}
			d.Render(os.Stdout)
		case "fullsuite":
			// Figure 3 restricted to the opt-in workloads, over the full
			// policy set — the bayes/labyrinth companion to fig3.
			d, err := harness.Fig3With(opt, []string{"bayes", "labyrinth"}, harness.AllPolicies, progress)
			if err != nil {
				return err
			}
			d.Render(os.Stdout)
			if err := maybeCSV(d.WriteCSV); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown experiment %q (have %s)", name, strings.Join(experimentNames, "|"))
		}
		return nil
	}

	names := []string{*experiment}
	if *experiment == "all" {
		names = []string{"fig3", "table3", "fig4", "fig5", "lockfrac", "ext", "attempts", "timeline"}
	}
	report := bench.Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Parallel:   *parallel,
		Scale:      *scale,
		Runs:       *runs,
		Seed:       *seed,
	}
	for _, name := range names {
		stats := &harness.BenchStats{}
		opt.Stats = stats
		start := time.Now()
		if err := run(name); err != nil {
			fail(err)
		}
		report.Add(name, float64(time.Since(start).Nanoseconds())/1e6, stats)
	}
	if *benchJSON != "" {
		if err := report.WriteFile(*benchJSON); err != nil {
			fail(err)
		}
	}
	pprof.StopCPUProfile()
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fail(err)
		}
		runtime.GC() // report live heap, not transient garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
		f.Close()
	}
}
