// Command seerbench regenerates the tables and figures of the paper's
// evaluation on the simulated machine.
//
// Usage:
//
//	seerbench -experiment fig3|table3|fig4|fig5|lockfrac|ext|attempts|all [flags]
//
// Flags:
//
//	-scale f     workload scale factor (default 1.0; smaller is faster)
//	-runs n      repetitions per cell (default 3)
//	-seed n      base seed (default 1)
//	-workloads s comma-separated subset (default: the full STAMP suite)
//	-v           stream per-cell progress to stderr
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"seer/internal/harness"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig3|table3|fig4|fig5|lockfrac|ext|attempts|timeline|all")
		scale      = flag.Float64("scale", 1.0, "workload scale factor")
		runs       = flag.Int("runs", 3, "repetitions per measurement")
		seed       = flag.Int64("seed", 1, "base PRNG seed")
		workloads  = flag.String("workloads", "", "comma-separated workload subset")
		verbose    = flag.Bool("v", false, "stream per-cell progress to stderr")
		csvPath    = flag.String("csv", "", "also write machine-readable results to this CSV file")
		allPol     = flag.Bool("allpolicies", false, "fig3: include the ATS and Oracle extension baselines")
		plotOut    = flag.Bool("plot", false, "fig3: render terminal line charts instead of tables")
		interval   = flag.Uint64("metrics-interval", 0, "timeline: snapshot period in cycles (0 = default)")
	)
	flag.Parse()

	opt := harness.Options{Scale: *scale, Runs: *runs, Seed: *seed}
	var wls []string
	if *workloads != "" {
		wls = strings.Split(*workloads, ",")
	}
	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}

	var csvOut *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seerbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		csvOut = f
	}
	maybeCSV := func(write func(io.Writer) error) error {
		if csvOut == nil {
			return nil
		}
		return write(csvOut)
	}

	run := func(name string) error {
		switch name {
		case "fig3":
			pols := harness.Fig3Policies
			if *allPol {
				pols = harness.AllPolicies
			}
			d, err := harness.Fig3With(opt, wls, pols, progress)
			if err != nil {
				return err
			}
			if *plotOut {
				d.Plot(os.Stdout)
			} else {
				d.Render(os.Stdout)
			}
			if err := maybeCSV(d.WriteCSV); err != nil {
				return err
			}
		case "table3":
			d, err := harness.Table3(opt, wls, progress)
			if err != nil {
				return err
			}
			d.Render(os.Stdout)
			if err := maybeCSV(d.WriteCSV); err != nil {
				return err
			}
		case "fig4":
			d, err := harness.Fig4(opt, wls, progress)
			if err != nil {
				return err
			}
			d.Render(os.Stdout)
			if err := maybeCSV(d.WriteCSV); err != nil {
				return err
			}
		case "fig5":
			d, err := harness.Fig5(opt, wls, progress)
			if err != nil {
				return err
			}
			d.Render(os.Stdout)
			if err := maybeCSV(d.WriteCSV); err != nil {
				return err
			}
		case "lockfrac":
			d, err := harness.LockFrac(opt, wls)
			if err != nil {
				return err
			}
			d.Render(os.Stdout)
		case "ext":
			d, err := harness.Extensions(opt, wls, progress)
			if err != nil {
				return err
			}
			d.Render(os.Stdout)
		case "attempts":
			d, err := harness.Attempts(opt, wls, progress)
			if err != nil {
				return err
			}
			d.Render(os.Stdout)
		case "timeline":
			d, err := harness.Timelines(opt, wls, nil, *interval, progress)
			if err != nil {
				return err
			}
			d.Render(os.Stdout)
			if err := maybeCSV(d.WriteCSV); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	names := []string{*experiment}
	if *experiment == "all" {
		names = []string{"fig3", "table3", "fig4", "fig5", "lockfrac", "ext", "attempts", "timeline"}
	}
	for _, name := range names {
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "seerbench: %v\n", err)
			os.Exit(1)
		}
	}
}
