package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
)

// compareBench loads two -bench-json reports and renders a per-experiment
// throughput comparison (cells/sec ratio new/old) plus the geometric mean
// over experiments present in both. It returns ok = false when the
// geomean falls below threshold — the regression gate CI runs against the
// previous PR's snapshot, replacing the eyeball check that almost missed
// an earlier geomean dip.
func compareBench(oldPath, newPath string, threshold float64, w io.Writer) (ok bool, err error) {
	oldRep, err := loadBenchReport(oldPath)
	if err != nil {
		return false, err
	}
	newRep, err := loadBenchReport(newPath)
	if err != nil {
		return false, err
	}
	oldBy := map[string]benchExperiment{}
	for _, e := range oldRep.Experiments {
		oldBy[e.Name] = e
	}

	fmt.Fprintf(w, "bench compare: %s -> %s (threshold %.2f)\n", oldPath, newPath, threshold)
	fmt.Fprintf(w, "%-12s %14s %14s %8s\n", "experiment", "old cells/s", "new cells/s", "ratio")
	logSum, n := 0.0, 0
	for _, ne := range newRep.Experiments {
		oe, found := oldBy[ne.Name]
		if !found {
			fmt.Fprintf(w, "%-12s %14s %14.2f %8s  (new experiment, not compared)\n",
				ne.Name, "-", ne.CellsPerS, "-")
			continue
		}
		if oe.CellsPerS <= 0 || ne.CellsPerS <= 0 {
			fmt.Fprintf(w, "%-12s %14.2f %14.2f %8s  (zero rate, not compared)\n",
				ne.Name, oe.CellsPerS, ne.CellsPerS, "-")
			continue
		}
		ratio := ne.CellsPerS / oe.CellsPerS
		fmt.Fprintf(w, "%-12s %14.2f %14.2f %8.3f\n", ne.Name, oe.CellsPerS, ne.CellsPerS, ratio)
		logSum += math.Log(ratio)
		n++
	}
	if n == 0 {
		return false, fmt.Errorf("no experiments in common between %s and %s", oldPath, newPath)
	}
	geomean := math.Exp(logSum / float64(n))
	fmt.Fprintf(w, "geomean ratio over %d experiments: %.3f\n", n, geomean)
	if geomean < threshold {
		fmt.Fprintf(w, "REGRESSION: geomean %.3f below threshold %.2f\n", geomean, threshold)
		return false, nil
	}
	fmt.Fprintf(w, "OK: geomean %.3f within threshold %.2f\n", geomean, threshold)
	return true, nil
}

func loadBenchReport(path string) (benchReport, error) {
	var rep benchReport
	buf, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(buf, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}
