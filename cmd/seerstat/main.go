// Command seerstat runs one workload under the Seer policy and dumps the
// scheduler's internals: the merged conflict statistics, the inferred
// locking scheme, threshold trajectory, lock-acquisition accounting and
// the commit-mode breakdown. It is the debugging/inspection companion of
// seerbench.
//
// Usage:
//
//	seerstat -workload intruder -threads 8 -scale 0.5 [-policy Seer]
//	seerstat -workload intruder -threads 32 -topology 2s8c2t [-remote-cost n]
//	seerstat -workload intruder -explain
//	seerstat -workload hashmap -spans-jsonl spans.jsonl -spans-chrome spans.json -conflict-dot graph.dot
//
// -explain enables the ground-truth abort-attribution subsystem and
// prints the conflict digest real hardware cannot produce: the top
// aborting block pairs (victim ← aborter), the hottest conflicting cache
// lines, abort cascade depths and — under the Seer policy — the
// inference-quality trajectory of the learned locks against the true
// conflict graph. The spans/DOT flags export per-attempt spans (JSONL or
// Chrome trace-event) and the weighted conflict graph (Graphviz).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"seer"
	"seer/internal/harness"
	"seer/internal/plot"
	"seer/internal/stamp"
	"seer/internal/trace"
)

// renderEngineCounters appends the engine-efficiency lines to a rendered
// timeline: lock-wait cycles the event loop fast-forwarded by parking
// waiters, and scheme updates that reused all row capacity. These quantify
// simulator-side savings (host time, allocations), not modeled behavior,
// so they live here rather than in the shared exhibit renderer.
func renderEngineCounters(snaps []seer.Snapshot) {
	if len(snaps) == 0 {
		return
	}
	const width = 64
	parked := make([]float64, len(snaps))
	var totalParked, totalWait, totalReuse uint64
	var totalGrants, totalQTicks, totalRollbacks, totalRbTicks uint64
	anyReuse := false
	for i, s := range snaps {
		parked[i] = float64(s.ParkSkipped)
		totalParked += s.ParkSkipped
		totalWait += s.LockWait
		totalReuse += s.SchemeReuse
		if s.SchemeReuse != 0 {
			anyReuse = true
		}
		totalGrants += s.QuantumGrants
		totalQTicks += s.QuantumTicks
		totalRollbacks += s.QuantumRollbacks
		totalRbTicks += s.QuantumRollbackTicks
	}
	frac := 0.0
	if totalWait > 0 {
		frac = 100 * float64(totalParked) / float64(totalWait)
	}
	fmt.Printf("  park skip   %s  [%d cycles, %.1f%% of lock wait]\n",
		plot.Sparkline(parked, width), totalParked, frac)
	if anyReuse {
		fmt.Printf("  scheme reuse: %d updates reused all row capacity\n", totalReuse)
	}
	if totalGrants > 0 {
		fmt.Printf("  quantum: %d grants deferred %d ticks (%.1f/grant), %d rollbacks discarded %d\n",
			totalGrants, totalQTicks, float64(totalQTicks)/float64(totalGrants),
			totalRollbacks, totalRbTicks)
	}
}

// renderModeTimeline renders the phased runtime's per-interval mode
// occupancy as sparklines — the share of each interval's virtual cycles
// spent in the HW, SW and GLOCK phases — plus the mode-word transition
// count. Intervals without phase data (every non-phased policy) render
// nothing.
func renderModeTimeline(snaps []seer.Snapshot) {
	const width = 64
	var transitions uint64
	hw := make([]float64, len(snaps))
	sw := make([]float64, len(snaps))
	gl := make([]float64, len(snaps))
	any := false
	for i, s := range snaps {
		transitions += s.PhaseTransitions
		total := s.PhaseHWCycles + s.PhaseSWCycles + s.PhaseGLOCKCycles
		if total == 0 {
			continue
		}
		any = true
		hw[i] = 100 * float64(s.PhaseHWCycles) / float64(total)
		sw[i] = 100 * float64(s.PhaseSWCycles) / float64(total)
		gl[i] = 100 * float64(s.PhaseGLOCKCycles) / float64(total)
	}
	if !any {
		return
	}
	fmt.Printf("\nPhased mode timeline (%% of interval cycles per phase):\n")
	fmt.Printf("  HW          %s\n", plot.Sparkline(hw, width))
	fmt.Printf("  SW          %s\n", plot.Sparkline(sw, width))
	fmt.Printf("  GLOCK       %s\n", plot.Sparkline(gl, width))
	fmt.Printf("  transitions %d\n", transitions)
}

// jsonOut is the machine-readable shape of a seerstat run.
type jsonOut struct {
	Policy         string             `json:"policy"`
	Threads        int                `json:"threads"`
	MakespanCycles uint64             `json:"makespan_cycles"`
	Commits        uint64             `json:"commits"`
	Throughput     float64            `json:"commits_per_kcycle"`
	AbortRate      float64            `json:"abort_rate"`
	Modes          map[string]float64 `json:"mode_percent"`
	HTM            seer.HTMCounters   `json:"htm"`
	Seer           *seerJSON          `json:"seer,omitempty"`
	Timeline       []seer.Snapshot    `json:"timeline,omitempty"`
}

type seerJSON struct {
	Th1           float64     `json:"th1"`
	Th2           float64     `json:"th2"`
	SchemeUpdates uint64      `json:"scheme_updates"`
	Scheme        [][]int     `json:"locks_to_acquire"`
	CondProbs     [][]float64 `json:"cond_abort_probs"`
	ConjProbs     [][]float64 `json:"conj_abort_probs"`
}

// emitJSON writes the run's state to stdout as one JSON document.
func emitJSON(sys *seer.System, rep seer.Report) {
	out := jsonOut{
		Policy:         rep.Policy,
		Threads:        rep.Threads,
		MakespanCycles: rep.MakespanCycles,
		Commits:        rep.Commits(),
		Throughput:     rep.Throughput(),
		AbortRate:      rep.AbortRate(),
		Modes:          map[string]float64{},
		HTM:            rep.HTM,
	}
	fr := rep.ModeFractions()
	for m := seer.Mode(0); m < seer.NumModes; m++ {
		if fr[m] > 0 {
			out.Modes[m.String()] = fr[m]
		}
	}
	if sched := sys.Scheduler(); sched != nil {
		th := sched.Thresholds()
		merged := sched.Merged()
		n := sched.NumTx()
		sj := &seerJSON{
			Th1: th.Th1, Th2: th.Th2,
			SchemeUpdates: sched.SchemeUpdates,
			Scheme:        sched.Scheme(),
		}
		for x := 0; x < n; x++ {
			cond := make([]float64, n)
			conj := make([]float64, n)
			for y := 0; y < n; y++ {
				cond[y] = merged.CondAbortProb(x, y)
				conj[y] = merged.ConjAbortProb(x, y)
			}
			sj.CondProbs = append(sj.CondProbs, cond)
			sj.ConjProbs = append(sj.ConjProbs, conj)
		}
		out.Seer = sj
	}
	out.Timeline = rep.Timeline
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "seerstat: %v\n", err)
		os.Exit(1)
	}
}

func main() {
	var (
		workload   = flag.String("workload", "intruder", "workload name")
		threads    = flag.Int("threads", 8, "worker threads")
		scale      = flag.Float64("scale", 0.5, "workload scale")
		seed       = flag.Int64("seed", 1, "PRNG seed")
		policy     = flag.String("policy", "Seer", "policy (HLE|RTM|SCM|ATS|Seer|PhTM|seq)")
		topoSpec   = flag.String("topology", "", "machine shape, e.g. 2s8c2t (default: the paper's 1s4c2t testbed)")
		remoteCost = flag.Uint64("remote-cost", 0, "extra cycles per cross-socket access on multi-socket shapes")
		traceN     = flag.Int("trace", 0, "dump the last N runtime events")
		kindsSpec  = flag.String("trace-kinds", "", "comma-separated event kinds to dump (e.g. abort,lock+); empty = all")
		asJSON     = flag.Bool("json", false, "emit the report and inference state as JSON")
		summary    = flag.Bool("summary", false, "print the canonical deterministic report digest and exit")
		timeline   = flag.Bool("timeline", false, "render the per-interval metrics timeline (sparklines)")
		interval   = flag.Uint64("metrics-interval", 0, "telemetry snapshot period in cycles (0 = harness default when -timeline/-timeline-* set, else disabled)")
		csvPath    = flag.String("timeline-csv", "", "write the timeline as CSV to FILE")
		jsonlPath  = flag.String("timeline-jsonl", "", "write the timeline as JSON Lines to FILE")
		chromePath = flag.String("chrome-trace", "", "write a Chrome trace-event JSON document to FILE (enables tracing)")
		explain    = flag.Bool("explain", false, "print the abort-attribution digest: top conflicting block pairs, hot lines, cascade depths, inference quality")
		explainK   = flag.Int("explain-top", 10, "explain: number of pairs/lines to list")
		spansJSONL = flag.String("spans-jsonl", "", "write per-attempt spans as JSON Lines to FILE (enables span tracing)")
		spansChrom = flag.String("spans-chrome", "", "write per-attempt spans as a Chrome trace-event document to FILE (enables span tracing)")
		dotPath    = flag.String("conflict-dot", "", "write the ground-truth conflict graph as Graphviz DOT to FILE (enables attribution)")
		quantum    = flag.Int("quantum", 0, "speculative-quantum budget (0 = library default, -1 = off, K > 0 = up to K pure ticks; all outputs identical at any setting)")
	)
	flag.Parse()

	kinds, err := trace.ParseKinds(*kindsSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "seerstat: %v\n", err)
		os.Exit(1)
	}

	wl, err := stamp.New(*workload, *scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "seerstat: %v\n", err)
		os.Exit(1)
	}
	cfg := seer.DefaultConfig()
	cfg.Threads = *threads
	if *topoSpec != "" {
		topo, err := seer.ParseTopology(*topoSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seerstat: %v\n", err)
			os.Exit(1)
		}
		cfg.Topology = topo
		cfg.RemoteAccessCost = *remoteCost
	} else {
		cfg.HWThreads = harness.MachineHWThreads
		cfg.PhysCores = harness.MachinePhysCores
	}
	cfg.Seed = *seed
	cfg.Policy = seer.PolicyKind(*policy)
	cfg.NumAtomicBlocks = wl.NumAtomicBlocks()
	cfg.MemWords = wl.MemWords() + (1 << 14)
	cfg.MaxCycles = 1 << 36
	cfg.TraceEvents = *traceN
	if *chromePath != "" && cfg.TraceEvents == 0 {
		cfg.TraceEvents = 1 << 16
	}
	needTimeline := *timeline || *csvPath != "" || *jsonlPath != ""
	cfg.MetricsInterval = *interval
	if cfg.MetricsInterval == 0 && needTimeline {
		cfg.MetricsInterval = harness.DefaultMetricsInterval
	}
	cfg.TraceAttempts = *spansJSONL != "" || *spansChrom != ""
	cfg.AttributionCounters = *explain || *dotPath != ""
	switch {
	case *quantum < 0:
		cfg.SpeculativeQuantum = 0
	case *quantum > 0:
		cfg.SpeculativeQuantum = *quantum
	}
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "seerstat: %v\n", err)
		os.Exit(1)
	}
	if err := wl.Setup(sys); err != nil {
		fmt.Fprintf(os.Stderr, "seerstat: setup: %v\n", err)
		os.Exit(1)
	}
	rep, err := sys.Run(wl.Workers(*threads))
	if err != nil {
		fmt.Fprintf(os.Stderr, "seerstat: run: %v\n", err)
		os.Exit(1)
	}
	if err := wl.Validate(sys); err != nil {
		fmt.Fprintf(os.Stderr, "seerstat: validation: %v\n", err)
		os.Exit(1)
	}

	writeFile := func(path string, render func(w *os.File) error) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seerstat: %v\n", err)
			os.Exit(1)
		}
		if err := render(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "seerstat: %s: %v\n", path, err)
			os.Exit(1)
		}
	}
	writeFile(*csvPath, func(f *os.File) error { return rep.WriteTimelineCSV(f) })
	writeFile(*jsonlPath, func(f *os.File) error { return rep.WriteTimelineJSONL(f) })
	writeFile(*chromePath, func(f *os.File) error { return sys.WriteChromeTrace(f) })
	writeFile(*spansJSONL, func(f *os.File) error { return sys.TxTrace().WriteSpansJSONL(f) })
	writeFile(*spansChrom, func(f *os.File) error { return sys.TxTrace().WriteChromeSpans(f) })
	writeFile(*dotPath, func(f *os.File) error { return sys.TxTrace().WriteDOT(f) })

	if *summary {
		fmt.Print(rep.Summary())
		return
	}
	if *asJSON {
		emitJSON(sys, rep)
		return
	}

	fmt.Print(rep.String())
	fmt.Printf("HTM: commits=%d aborts=%d (conflict=%d capacity=%d explicit=%d spurious=%d) attempts=%d fallbacks=%d\n",
		rep.HTM.Commits, rep.HTM.Aborts, rep.HTM.ConflictAborts, rep.HTM.CapacityAborts,
		rep.HTM.ExplicitAborts, rep.HTM.SpuriousAborts, rep.HWAttempts, rep.Fallbacks)

	if *timeline {
		fmt.Printf("\nTimeline (interval = %d cycles):\n", cfg.MetricsInterval)
		harness.RenderTimeline(os.Stdout, fmt.Sprintf("%s/%s", *workload, rep.Policy), rep.Timeline)
		renderEngineCounters(rep.Timeline)
		renderModeTimeline(rep.Timeline)
	}

	if *explain {
		fmt.Println()
		if err := sys.TxTrace().WriteExplain(os.Stdout, *explainK); err != nil {
			fmt.Fprintf(os.Stderr, "seerstat: explain: %v\n", err)
			os.Exit(1)
		}
		if snaps := rep.Inference; len(snaps) > 0 {
			const width = 48
			prec := make([]float64, len(snaps))
			rec := make([]float64, len(snaps))
			for i, q := range snaps {
				prec[i] = q.Precision
				rec[i] = q.Recall
			}
			fin := snaps[len(snaps)-1]
			fmt.Printf("\nInference-quality trajectory (%d snapshots):\n", len(snaps))
			fmt.Printf("  precision   %s  [final %.3f]\n", plot.Sparkline(prec, width), fin.Precision)
			fmt.Printf("  recall      %s  [final %.3f]\n", plot.Sparkline(rec, width), fin.Recall)
		}
	}

	sched := sys.Scheduler()
	if sched == nil {
		return
	}
	n := sched.NumTx()
	merged := sched.Merged()
	fmt.Printf("\nConflict statistics (merged; rows = aborting tx, cols = concurrently active tx):\n")
	fmt.Printf("%-4s %10s", "tx", "execs")
	for y := 0; y < n; y++ {
		fmt.Printf("  a[%d]/c[%d]   ", y, y)
	}
	fmt.Printf("\n")
	for x := 0; x < n; x++ {
		fmt.Printf("T%-3d %10d", x, merged.Execs(x))
		for y := 0; y < n; y++ {
			fmt.Printf(" %6d/%-6d", merged.Aborts(x, y), merged.Commits(x, y))
		}
		fmt.Printf("\n")
	}
	fmt.Printf("\nConditional abort probabilities P(x aborts | x‖y):\n")
	for x := 0; x < n; x++ {
		fmt.Printf("T%-3d", x)
		for y := 0; y < n; y++ {
			fmt.Printf(" %6.3f", merged.CondAbortProb(x, y))
		}
		fmt.Printf("  | conj:")
		for y := 0; y < n; y++ {
			fmt.Printf(" %6.3f", merged.ConjAbortProb(x, y))
		}
		fmt.Printf("\n")
	}
	fmt.Printf("\nLocking scheme (locksToAcquire):\n")
	for x, row := range sched.Scheme() {
		fmt.Printf("T%-3d -> %v\n", x, row)
	}
	th := sched.Thresholds()
	fmt.Printf("\nThresholds: Th1=%.3f Th2=%.3f  scheme updates=%d\n", th.Th1, th.Th2, sched.SchemeUpdates)
	fmt.Printf("Lock acquisitions: %d (multiCAS ok=%d fail=%d)\n",
		sched.LockAcqEvents, sched.MultiCASOk, sched.MultiCASFail)

	if *traceN > 0 {
		fmt.Printf("\nLast %d runtime events (%s):\n", *traceN, sys.Trace().FormatSummary())
		sys.Trace().Dump(os.Stdout, kinds)
	}
}
