package seer_test

import (
	"testing"

	"seer"
	"seer/internal/trace"
)

// runCounter runs nThreads workers each incrementing a shared counter
// opsPerThread times under the given policy and returns the report.
func runCounter(t *testing.T, pol seer.PolicyKind, nThreads, opsPerThread int) (seer.Report, *seer.System, seer.Addr) {
	t.Helper()
	cfg := seer.DefaultConfig()
	cfg.Policy = pol
	cfg.Threads = nThreads
	cfg.PhysCores = (nThreads + 1) / 2
	if cfg.PhysCores == 0 {
		cfg.PhysCores = 1
	}
	cfg.NumAtomicBlocks = 1
	cfg.MemWords = 1 << 14
	cfg.MaxCycles = 1 << 32
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	counter := sys.AllocAligned(1)
	workers := make([]seer.Worker, nThreads)
	for i := range workers {
		workers[i] = func(th *seer.Thread) {
			for n := 0; n < opsPerThread; n++ {
				th.Atomic(0, func(a seer.Access) {
					a.Store(counter, a.Load(counter)+1)
				})
				th.Work(5)
			}
		}
	}
	rep, err := sys.Run(workers)
	if err != nil {
		t.Fatalf("Run(%s): %v", pol, err)
	}
	return rep, sys, counter
}

// TestCounterAtomicity checks, for every policy, that concurrent
// increments never lose updates: the HTM plus fall-back must serialize
// them.
func TestCounterAtomicity(t *testing.T) {
	for _, pol := range []seer.PolicyKind{seer.PolicyHLE, seer.PolicyRTM, seer.PolicySCM, seer.PolicySeer} {
		pol := pol
		t.Run(string(pol), func(t *testing.T) {
			const threads, ops = 8, 400
			rep, sys, counter := runCounter(t, pol, threads, ops)
			got := sys.Peek(counter)
			want := uint64(threads * ops)
			if got != want {
				t.Fatalf("%s: counter = %d, want %d (lost updates)", pol, got, want)
			}
			if rep.Commits() != want {
				t.Fatalf("%s: commits = %d, want %d", pol, rep.Commits(), want)
			}
			if rep.MakespanCycles == 0 {
				t.Fatalf("%s: zero makespan", pol)
			}
		})
	}
}

// TestSequentialBaseline checks the uninstrumented sequential policy.
func TestSequentialBaseline(t *testing.T) {
	rep, sys, counter := runCounter(t, seer.PolicySeq, 1, 500)
	if got := sys.Peek(counter); got != 500 {
		t.Fatalf("counter = %d, want 500", got)
	}
	if rep.HTM.Commits != 0 {
		t.Fatalf("sequential run used hardware transactions: %+v", rep.HTM)
	}
}

// TestDeterminism verifies that two identical runs produce bit-identical
// reports — the foundational property of the virtual-time engine.
func TestDeterminism(t *testing.T) {
	rep1, _, _ := runCounter(t, seer.PolicySeer, 6, 300)
	rep2, _, _ := runCounter(t, seer.PolicySeer, 6, 300)
	if rep1.MakespanCycles != rep2.MakespanCycles {
		t.Fatalf("makespan differs: %d vs %d", rep1.MakespanCycles, rep2.MakespanCycles)
	}
	if rep1.HTM != rep2.HTM {
		t.Fatalf("HTM counters differ: %+v vs %+v", rep1.HTM, rep2.HTM)
	}
	if rep1.Modes != rep2.Modes {
		t.Fatalf("mode counts differ: %v vs %v", rep1.Modes, rep2.Modes)
	}
}

// TestContentionSerializes checks that with heavy conflicts the system
// still makes progress and commits everything.
func TestContentionSerializes(t *testing.T) {
	cfg := seer.DefaultConfig()
	cfg.Policy = seer.PolicySeer
	cfg.Threads = 8
	cfg.PhysCores = 4
	cfg.NumAtomicBlocks = 2
	cfg.MemWords = 1 << 14
	cfg.MaxCycles = 1 << 33
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := sys.AllocAligned(1)
	b := sys.AllocAligned(1)
	workers := make([]seer.Worker, 8)
	for i := range workers {
		id := i
		workers[i] = func(th *seer.Thread) {
			for n := 0; n < 200; n++ {
				if id%2 == 0 {
					th.Atomic(0, func(ac seer.Access) {
						v := ac.Load(a)
						ac.Store(b, ac.Load(b)+v+1)
						ac.Store(a, v+1)
					})
				} else {
					th.Atomic(1, func(ac seer.Access) {
						v := ac.Load(b)
						ac.Store(a, ac.Load(a)+1)
						ac.Store(b, v+1)
					})
				}
			}
		}
	}
	rep, err := sys.Run(workers)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sys.Peek(a), uint64(8*200/2*2); got != want {
		t.Fatalf("a = %d, want %d", got, want)
	}
	if rep.Commits() != 8*200 {
		t.Fatalf("commits = %d, want %d", rep.Commits(), 8*200)
	}
}

// TestTraceViaPublicAPI: enabling TraceEvents yields a chronological
// event log with matched begins and outcomes.
func TestTraceViaPublicAPI(t *testing.T) {
	cfg := seer.DefaultConfig()
	cfg.Policy = seer.PolicyRTM
	cfg.Threads = 2
	cfg.NumAtomicBlocks = 1
	cfg.MemWords = 1 << 12
	cfg.TraceEvents = 4096
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counter := sys.AllocAligned(1)
	workers := make([]seer.Worker, 2)
	for i := range workers {
		workers[i] = func(th *seer.Thread) {
			for n := 0; n < 50; n++ {
				th.Atomic(0, func(a seer.Access) {
					a.Store(counter, a.Load(counter)+1)
				})
			}
		}
	}
	if _, err := sys.Run(workers); err != nil {
		t.Fatal(err)
	}
	log := sys.Trace()
	if log == nil || log.Total() == 0 {
		t.Fatalf("trace empty")
	}
	sum := log.Summary()
	begins := sum[trace.EvBegin]
	outcomes := sum[trace.EvCommit] + sum[trace.EvAbort]
	if begins == 0 || begins != outcomes {
		t.Fatalf("begins=%d outcomes=%d (every attempt needs an outcome)", begins, outcomes)
	}
	evs := log.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Cycle < evs[i-1].Cycle {
			t.Fatalf("trace not chronological at %d", i)
		}
	}
}
