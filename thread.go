package seer

import (
	"seer/internal/policy"
)

// Thread is the handle a Worker uses to interact with the simulated
// machine: executing atomic blocks, doing plain work, and accessing
// memory non-transactionally between transactions.
type Thread struct {
	sys *System
	pt  *policy.Thread
}

// ID returns the hardware thread id this worker runs on.
func (t *Thread) ID() int { return t.pt.Ctx.ID() }

// Clock returns the thread's current virtual time in cycles.
func (t *Thread) Clock() uint64 { return t.pt.Ctx.Clock() }

// Rand returns the thread's deterministic PRNG.
func (t *Thread) Rand() *Rand { return t.pt.Ctx.Rand() }

// Work simulates n units of pure computation.
func (t *Thread) Work(n uint64) { t.pt.Ctx.Work(n) }

// Atomic executes body atomically under the system's policy. txID names
// the atomic block (a static program location in the paper's model) and
// must be in [0, Config.NumAtomicBlocks). The body may run several times
// (hardware retries) and must confine its side effects to Access
// operations; on the fall-back path it runs exactly once under the
// single-global lock.
func (t *Thread) Atomic(txID int, body func(Access)) {
	t.AtomicObj(txID, 0, body)
}

// AtomicObj is Atomic with an object identifier, enabling the
// object-granular locking extension (SeerOptions.ObjLocks): when the
// scheduler serializes this atomic block, only transactions touching the
// same object (stripe) wait on each other. Pass the natural identity of
// the datum the block manipulates — a key, a cluster index, a node id.
func (t *Thread) AtomicObj(txID int, objID uint64, body func(Access)) {
	if txID < 0 || txID >= t.sys.cfg.NumAtomicBlocks {
		panic("seer: txID out of range for configured NumAtomicBlocks")
	}
	hw := t.pt.Ctx.ID()
	t.pt.Spans.BlockEnter(hw, txID)
	t.sys.pol.Run(t.pt, txID, objID, body)
	t.pt.Spans.BlockExit(hw)
}

// Direct returns the thread's non-transactional accessor. Use it only for
// data not concurrently accessed inside transactions, or for racy-by-
// design reads (it preserves the HTM's strong isolation: direct stores
// abort conflicting transactions).
func (t *Thread) Direct() Access { return t.pt.Direct }

// Modes returns the commit-mode histogram accumulated by this thread.
func (t *Thread) Modes() ModeCounts { return t.pt.Modes }
