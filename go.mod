module seer

go 1.22
