module seer

go 1.23
