package seer_test

import (
	"strings"
	"testing"

	"seer"
	"seer/internal/stamp"
)

// runCapBound executes the capacity-bound stamp workload (every atomic
// block's write set overflows the hardware budget) under the given
// policy and returns the report, failing the test on any validation
// error.
func runCapBound(t *testing.T, pol seer.PolicyKind) seer.Report {
	t.Helper()
	wl, err := stamp.New("capbound", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := seer.DefaultConfig()
	cfg.Policy = pol
	cfg.Threads = 8
	cfg.HWThreads = 8
	cfg.PhysCores = 4
	cfg.Seed = 3
	cfg.NumAtomicBlocks = wl.NumAtomicBlocks()
	cfg.MemWords = wl.MemWords()
	cfg.MaxCycles = 1 << 33
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := wl.Setup(sys); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(wl.Workers(cfg.Threads))
	if err != nil {
		t.Fatal(err)
	}
	if err := wl.Validate(sys); err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestPhasedCapacityBound is the headline phased-TM claim as a unit
// test: on a capacity-bound workload with disjoint per-thread footprints
// the phased runtime commits in software mode, transitions its mode
// word, serializes strictly less than RTM's lock fall-back, and
// finishes faster than full serialization.
func TestPhasedCapacityBound(t *testing.T) {
	rtm := runCapBound(t, seer.PolicyRTM)
	ph := runCapBound(t, seer.PolicyPhased)

	if ph.Phased == nil {
		t.Fatal("PolicyPhased report has no Phased section")
	}
	if ph.Phased.SWCommits == 0 {
		t.Fatal("no software commits on a capacity-bound workload")
	}
	if ph.Phased.Deferrals == 0 || ph.Phased.Transitions == 0 {
		t.Fatalf("mode word never moved: deferrals=%d transitions=%d",
			ph.Phased.Deferrals, ph.Phased.Transitions)
	}
	if ph.Modes[seer.ModeSTM] == 0 {
		t.Fatal("no commits recorded in the STM mode slot")
	}
	if ph.Phased.ModeCycles[1] == 0 {
		t.Fatal("zero cycles attributed to the SW phase")
	}
	// RTM can only commit these blocks through the single global lock;
	// the phased runtime must serialize strictly less and, because the
	// per-thread regions are disjoint, finish strictly sooner.
	if rtm.Fallbacks == 0 {
		t.Fatal("RTM baseline committed without the lock — workload is not capacity-bound")
	}
	if ph.Fallbacks >= rtm.Fallbacks {
		t.Fatalf("phased fallbacks %d >= RTM fallbacks %d", ph.Fallbacks, rtm.Fallbacks)
	}
	if ph.MakespanCycles >= rtm.MakespanCycles {
		t.Fatalf("phased makespan %d >= RTM makespan %d (software mode should beat serialization)",
			ph.MakespanCycles, rtm.MakespanCycles)
	}
}

// TestPhasedSTMModeLineConditional pins the report-digest byte-identity
// contract: the mode[STM sw-mode] summary line exists exactly when the
// Phased policy ran, so every other policy's digest — and therefore the
// determinism golden — is unchanged by the phased-TM layer.
func TestPhasedSTMModeLineConditional(t *testing.T) {
	rtm := runCapBound(t, seer.PolicyRTM)
	ph := runCapBound(t, seer.PolicyPhased)
	const line = "mode[STM sw-mode]="
	if s := rtm.Summary(); strings.Contains(s, line) {
		t.Fatalf("RTM summary mentions the STM mode:\n%s", s)
	}
	if s := ph.Summary(); !strings.Contains(s, line) {
		t.Fatalf("PhTM summary lacks the STM mode line:\n%s", s)
	}
}
