package seer_test

import (
	"testing"
	"testing/quick"

	"seer"
)

// TestBankTransferConservation is the classic TM serializability check:
// random transfers between accounts must conserve the total balance under
// every policy, at every thread count, for random parameters.
func TestBankTransferConservation(t *testing.T) {
	for _, pol := range []seer.PolicyKind{seer.PolicyHLE, seer.PolicyRTM, seer.PolicySCM, seer.PolicySeer} {
		pol := pol
		t.Run(string(pol), func(t *testing.T) {
			f := func(seed int64, nAccounts8 uint8, threads8 uint8) bool {
				nAccounts := int(nAccounts8%16) + 2
				threads := int(threads8%8) + 1
				cfg := seer.DefaultConfig()
				cfg.Policy = pol
				cfg.Threads = threads
				cfg.HWThreads = 8
				cfg.PhysCores = 4
				cfg.Seed = seed
				cfg.NumAtomicBlocks = 2
				cfg.MemWords = 1 << 14
				cfg.MaxCycles = 1 << 32
				sys, err := seer.NewSystem(cfg)
				if err != nil {
					t.Fatal(err)
				}
				accounts := sys.AllocLines(nAccounts)
				const initial = 1000
				for i := 0; i < nAccounts; i++ {
					sys.Poke(accounts+seer.Addr(i*8), initial)
				}
				workers := make([]seer.Worker, threads)
				for w := range workers {
					workers[w] = func(th *seer.Thread) {
						rng := th.Rand()
						for n := 0; n < 60; n++ {
							from := rng.Intn(nAccounts)
							to := rng.Intn(nAccounts)
							amount := uint64(rng.Intn(50))
							if rng.Bool(0.8) {
								th.Atomic(0, func(a seer.Access) {
									fa := accounts + seer.Addr(from*8)
									ta := accounts + seer.Addr(to*8)
									bal := a.Load(fa)
									if bal >= amount {
										a.Store(fa, bal-amount)
										a.Store(ta, a.Load(ta)+amount)
									}
								})
							} else {
								// Audit: sum all accounts (read-only).
								th.Atomic(1, func(a seer.Access) {
									var sum uint64
									for i := 0; i < nAccounts; i++ {
										sum += a.Load(accounts + seer.Addr(i*8))
									}
									_ = sum
								})
							}
						}
					}
				}
				if _, err := sys.Run(workers); err != nil {
					t.Fatal(err)
				}
				var total uint64
				for i := 0; i < nAccounts; i++ {
					total += sys.Peek(accounts + seer.Addr(i*8))
				}
				return total == uint64(nAccounts)*initial
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestReadOnlyAuditsSeeConsistentSnapshots: an auditor transaction
// summing two accounts while transfer transactions move money between
// them must always observe the invariant total — transactions are atomic,
// never partially visible.
func TestReadOnlyAuditsSeeConsistentSnapshots(t *testing.T) {
	cfg := seer.DefaultConfig()
	cfg.Policy = seer.PolicySeer
	cfg.Threads = 4
	cfg.NumAtomicBlocks = 2
	cfg.MemWords = 1 << 12
	cfg.MaxCycles = 1 << 32
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a1 := sys.AllocLines(1)
	a2 := sys.AllocLines(1)
	sys.Poke(a1, 500)
	sys.Poke(a2, 500)
	violations := 0
	workers := make([]seer.Worker, 4)
	for w := range workers {
		id := w
		workers[w] = func(th *seer.Thread) {
			rng := th.Rand()
			for n := 0; n < 150; n++ {
				if id < 2 {
					amount := uint64(rng.Intn(100))
					th.Atomic(0, func(a seer.Access) {
						b1 := a.Load(a1)
						if b1 >= amount {
							a.Store(a1, b1-amount)
							a.Store(a2, a.Load(a2)+amount)
						} else {
							b2 := a.Load(a2)
							a.Store(a2, 0)
							a.Store(a1, b1+b2)
						}
					})
				} else {
					var sum uint64
					th.Atomic(1, func(a seer.Access) {
						sum = a.Load(a1) + a.Load(a2)
					})
					if sum != 1000 {
						violations++ // assign-only accounting is unsafe
						// inside bodies; counting here (outside) is not:
						// sum carries the committed execution's value.
					}
				}
			}
		}
	}
	if _, err := sys.Run(workers); err != nil {
		t.Fatal(err)
	}
	if violations > 0 {
		t.Fatalf("%d audits observed torn state", violations)
	}
}

// TestConfigValidation covers the public constructor's error paths.
func TestConfigValidation(t *testing.T) {
	base := seer.DefaultConfig()
	cases := []struct {
		name   string
		mutate func(*seer.Config)
	}{
		{"zero threads", func(c *seer.Config) { c.Threads = 0 }},
		{"zero blocks", func(c *seer.Config) { c.NumAtomicBlocks = 0 }},
		{"zero attempts", func(c *seer.Config) { c.MaxAttempts = 0 }},
		{"hwthreads below threads", func(c *seer.Config) { c.Threads = 8; c.HWThreads = 4 }},
		{"unknown policy", func(c *seer.Config) { c.Policy = "Bogus" }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if _, err := seer.NewSystem(cfg); err == nil {
			t.Errorf("%s: NewSystem accepted invalid config", tc.name)
		}
	}
}

// TestTxIDRangeChecked: out-of-range atomic block ids panic loudly
// instead of corrupting the scheduler's tables.
func TestTxIDRangeChecked(t *testing.T) {
	cfg := seer.DefaultConfig()
	cfg.Threads = 1
	cfg.NumAtomicBlocks = 2
	cfg.MemWords = 1 << 10
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Run([]seer.Worker{func(th *seer.Thread) {
		th.Atomic(2, func(a seer.Access) {})
	}})
	if err == nil {
		t.Fatalf("out-of-range txID did not error")
	}
}

// TestWorkerCountChecked: more workers than threads is an error.
func TestWorkerCountChecked(t *testing.T) {
	cfg := seer.DefaultConfig()
	cfg.Threads = 2
	cfg.MemWords = 1 << 10
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(make([]seer.Worker, 3)); err == nil {
		t.Fatalf("oversubscription not rejected")
	}
}

// TestReportContents: the report carries coherent counters.
func TestReportContents(t *testing.T) {
	rep, _, _ := runCounter(t, seer.PolicySeer, 4, 200)
	if rep.Policy != "Seer" || rep.Threads != 4 {
		t.Fatalf("report header wrong: %+v", rep)
	}
	if rep.Commits() != 800 {
		t.Fatalf("commits = %d", rep.Commits())
	}
	if rep.Throughput() <= 0 {
		t.Fatalf("throughput = %v", rep.Throughput())
	}
	if rep.HWAttempts < rep.HTM.Commits {
		t.Fatalf("attempts (%d) < hardware commits (%d)", rep.HWAttempts, rep.HTM.Commits)
	}
	if rep.Seer == nil {
		t.Fatalf("Seer policy report missing scheduler section")
	}
	if rep.String() == "" {
		t.Fatalf("empty String()")
	}
	fr := rep.ModeFractions()
	var sum float64
	for _, f := range fr {
		sum += f
	}
	if sum < 99.9 || sum > 100.1 {
		t.Fatalf("mode fractions sum to %v", sum)
	}
}

// TestHyperthreadCapacityPenalty: the same capacity-heavy workload
// commits via fall-back more often when the two workers share a physical
// core than when they have one each.
func TestHyperthreadCapacityPenalty(t *testing.T) {
	run := func(physCores int) seer.Report {
		cfg := seer.DefaultConfig()
		cfg.Policy = seer.PolicyRTM
		cfg.Threads = 2
		cfg.HWThreads = 2
		cfg.PhysCores = physCores
		cfg.NumAtomicBlocks = 1
		cfg.MemWords = 1 << 14
		cfg.HTM.WriteSetLines = 16
		cfg.MaxCycles = 1 << 32
		sys, err := seer.NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		regions := []seer.Addr{sys.AllocLines(12), sys.AllocLines(12)}
		workers := make([]seer.Worker, 2)
		for w := range workers {
			region := regions[w]
			workers[w] = func(th *seer.Thread) {
				for n := 0; n < 100; n++ {
					th.Atomic(0, func(a seer.Access) {
						for l := 0; l < 12; l++ {
							addr := region + seer.Addr(l*8)
							a.Store(addr, a.Load(addr)+1)
						}
					})
					th.Work(10)
				}
			}
		}
		rep, err := sys.Run(workers)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	shared := run(1)   // both workers on one physical core
	separate := run(2) // one worker per core
	if shared.HTM.CapacityAborts <= separate.HTM.CapacityAborts {
		t.Fatalf("shared-core capacity aborts (%d) not above separate-core (%d)",
			shared.HTM.CapacityAborts, separate.HTM.CapacityAborts)
	}
}
