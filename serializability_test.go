package seer_test

import (
	"errors"
	"testing"
	"testing/quick"

	"seer"
	"seer/internal/adversary"
)

// TestBankTransferConservation is the classic TM serializability check:
// random transfers between accounts must conserve the total balance under
// every policy, at every thread count, for random parameters.
func TestBankTransferConservation(t *testing.T) {
	for _, pol := range []seer.PolicyKind{seer.PolicyHLE, seer.PolicyRTM, seer.PolicyBackoff, seer.PolicySCM, seer.PolicySeer, seer.PolicyPhased} {
		pol := pol
		t.Run(string(pol), func(t *testing.T) {
			f := func(seed int64, nAccounts8 uint8, threads8 uint8) bool {
				nAccounts := int(nAccounts8%16) + 2
				threads := int(threads8%8) + 1
				cfg := seer.DefaultConfig()
				cfg.Policy = pol
				cfg.Threads = threads
				cfg.HWThreads = 8
				cfg.PhysCores = 4
				cfg.Seed = seed
				cfg.NumAtomicBlocks = 2
				cfg.MemWords = 1 << 14
				cfg.MaxCycles = 1 << 32
				sys, err := seer.NewSystem(cfg)
				if err != nil {
					t.Fatal(err)
				}
				accounts := sys.AllocLines(nAccounts)
				const initial = 1000
				for i := 0; i < nAccounts; i++ {
					sys.Poke(accounts+seer.Addr(i*8), initial)
				}
				workers := make([]seer.Worker, threads)
				for w := range workers {
					workers[w] = func(th *seer.Thread) {
						rng := th.Rand()
						for n := 0; n < 60; n++ {
							from := rng.Intn(nAccounts)
							to := rng.Intn(nAccounts)
							amount := uint64(rng.Intn(50))
							if rng.Bool(0.8) {
								th.Atomic(0, func(a seer.Access) {
									fa := accounts + seer.Addr(from*8)
									ta := accounts + seer.Addr(to*8)
									bal := a.Load(fa)
									if bal >= amount {
										a.Store(fa, bal-amount)
										a.Store(ta, a.Load(ta)+amount)
									}
								})
							} else {
								// Audit: sum all accounts (read-only).
								th.Atomic(1, func(a seer.Access) {
									var sum uint64
									for i := 0; i < nAccounts; i++ {
										sum += a.Load(accounts + seer.Addr(i*8))
									}
									_ = sum
								})
							}
						}
					}
				}
				if _, err := sys.Run(workers); err != nil {
					t.Fatal(err)
				}
				var total uint64
				for i := 0; i < nAccounts; i++ {
					total += sys.Peek(accounts + seer.Addr(i*8))
				}
				return total == uint64(nAccounts)*initial
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestReadOnlyAuditsSeeConsistentSnapshots: an auditor transaction
// summing two accounts while transfer transactions move money between
// them must always observe the invariant total — transactions are atomic,
// never partially visible.
func TestReadOnlyAuditsSeeConsistentSnapshots(t *testing.T) {
	cfg := seer.DefaultConfig()
	cfg.Policy = seer.PolicySeer
	cfg.Threads = 4
	cfg.NumAtomicBlocks = 2
	cfg.MemWords = 1 << 12
	cfg.MaxCycles = 1 << 32
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a1 := sys.AllocLines(1)
	a2 := sys.AllocLines(1)
	sys.Poke(a1, 500)
	sys.Poke(a2, 500)
	violations := 0
	workers := make([]seer.Worker, 4)
	for w := range workers {
		id := w
		workers[w] = func(th *seer.Thread) {
			rng := th.Rand()
			for n := 0; n < 150; n++ {
				if id < 2 {
					amount := uint64(rng.Intn(100))
					th.Atomic(0, func(a seer.Access) {
						b1 := a.Load(a1)
						if b1 >= amount {
							a.Store(a1, b1-amount)
							a.Store(a2, a.Load(a2)+amount)
						} else {
							b2 := a.Load(a2)
							a.Store(a2, 0)
							a.Store(a1, b1+b2)
						}
					})
				} else {
					var sum uint64
					th.Atomic(1, func(a seer.Access) {
						sum = a.Load(a1) + a.Load(a2)
					})
					if sum != 1000 {
						violations++ // assign-only accounting is unsafe
						// inside bodies; counting here (outside) is not:
						// sum carries the committed execution's value.
					}
				}
			}
		}
	}
	if _, err := sys.Run(workers); err != nil {
		t.Fatal(err)
	}
	if violations > 0 {
		t.Fatalf("%d audits observed torn state", violations)
	}
}

// TestCapacityAbortConservation: when every transaction's footprint
// exceeds the HTM write-set budget, hardware attempts must capacity-abort
// and the runtime must push all commits through the fall-back paths
// (SGL, or Seer's tx/core locks) without losing atomicity. Each committed
// transaction increments every line of a shared region by one, so after
// the run every line must equal the total committed count.
func TestCapacityAbortConservation(t *testing.T) {
	const lines = 8
	for _, pol := range []seer.PolicyKind{seer.PolicyHLE, seer.PolicyRTM, seer.PolicyBackoff, seer.PolicySCM, seer.PolicyATS, seer.PolicyOracle, seer.PolicySeer, seer.PolicyPhased} {
		pol := pol
		t.Run(string(pol), func(t *testing.T) {
			f := func(seed int64, threads8 uint8) bool {
				threads := int(threads8%4) + 2
				cfg := seer.DefaultConfig()
				cfg.Policy = pol
				cfg.Threads = threads
				cfg.HWThreads = 8
				cfg.PhysCores = 4
				cfg.Seed = seed
				cfg.NumAtomicBlocks = 1
				cfg.MemWords = 1 << 14
				cfg.HTM.WriteSetLines = lines / 2 // footprint is 2x the budget
				cfg.MaxCycles = 1 << 32
				sys, err := seer.NewSystem(cfg)
				if err != nil {
					t.Fatal(err)
				}
				region := sys.AllocLines(lines)
				const iters = 30
				workers := make([]seer.Worker, threads)
				for w := range workers {
					workers[w] = func(th *seer.Thread) {
						for n := 0; n < iters; n++ {
							th.Atomic(0, func(a seer.Access) {
								for l := 0; l < lines; l++ {
									addr := region + seer.Addr(l*8)
									a.Store(addr, a.Load(addr)+1)
								}
							})
							th.Work(15)
						}
					}
				}
				rep, err := sys.Run(workers)
				if err != nil {
					t.Fatal(err)
				}
				if rep.HTM.CapacityAborts == 0 {
					t.Fatalf("%s: no capacity aborts despite oversized footprint", pol)
				}
				want := uint64(threads * iters)
				for l := 0; l < lines; l++ {
					if got := sys.Peek(region + seer.Addr(l*8)); got != want {
						t.Fatalf("%s: line %d = %d, want %d (lost or duplicated increments)", pol, l, got, want)
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAdversarialConservation runs the synthetic worst-case conflict
// graphs under every retry policy, twice per graph: once with the
// default HTM budget and once with a write-set budget small enough that
// every transaction capacity-aborts and must commit through a fall-back
// path. The workload's own Validate checks conservation — every block
// counter and edge counter must account for exactly the operations the
// committed transactions performed, so lost or duplicated commits fail
// loudly whichever path they took.
func TestAdversarialConservation(t *testing.T) {
	graphs := []adversary.Graph{
		adversary.Ring(6), adversary.Star(6), adversary.Clique(4), adversary.PhaseShift(6),
	}
	policies := []seer.PolicyKind{
		seer.PolicyHLE, seer.PolicyRTM, seer.PolicyBackoff,
		seer.PolicySCM, seer.PolicyATS, seer.PolicyOracle, seer.PolicySeer,
	}
	for _, g := range graphs {
		for _, pol := range policies {
			for _, squeeze := range []bool{false, true} {
				g, pol, squeeze := g, pol, squeeze
				name := g.Name + "/" + string(pol)
				if squeeze {
					name += "/capacity"
				}
				t.Run(name, func(t *testing.T) {
					wl := adversary.New(g, 400)
					cfg := seer.DefaultConfig()
					cfg.Policy = pol
					cfg.Threads = 4
					cfg.HWThreads = 8
					cfg.PhysCores = 4
					cfg.Seed = 7
					cfg.NumAtomicBlocks = wl.NumAtomicBlocks()
					cfg.MemWords = wl.MemWords() + (1 << 14)
					cfg.MaxCycles = 1 << 33
					if squeeze {
						// Every body writes a block line, its incident edge
						// lines and two stat lines; one write line of budget
						// guarantees a capacity abort on each attempt.
						cfg.HTM.WriteSetLines = 1
					}
					sys, err := seer.NewSystem(cfg)
					if err != nil {
						t.Fatal(err)
					}
					if err := wl.Setup(sys); err != nil {
						t.Fatal(err)
					}
					rep, err := sys.Run(wl.Workers(cfg.Threads))
					if err != nil {
						t.Fatal(err)
					}
					if err := wl.Validate(sys); err != nil {
						t.Fatalf("%s under %s: %v", g.Name, pol, err)
					}
					if squeeze {
						if rep.HTM.CapacityAborts == 0 {
							t.Fatalf("no capacity aborts despite one-line write budget")
						}
						if rep.Modes[seer.ModeHTM] != 0 && pol != seer.PolicySeer && pol != seer.PolicyOracle {
							t.Fatalf("pure-HTM commits (%d) despite oversized footprint", rep.Modes[seer.ModeHTM])
						}
					}
				})
			}
		}
	}
}

// TestMixedBlockConservation runs four distinct atomic blocks — two
// intra-half transfer blocks, one cross-half block and a read-only global
// audit — concurrently. With NumAtomicBlocks > 2 Seer's pairwise
// statistics and locking scheme get distinct rows per block; whatever
// scheme it infers, money must be conserved and every audit must observe
// the full total.
func TestMixedBlockConservation(t *testing.T) {
	for _, pol := range []seer.PolicyKind{seer.PolicyRTM, seer.PolicySeer} {
		pol := pol
		t.Run(string(pol), func(t *testing.T) {
			f := func(seed int64, threads8 uint8) bool {
				threads := int(threads8%6) + 2
				const nAccounts = 8 // two halves of 4
				const initial = 1000
				cfg := seer.DefaultConfig()
				cfg.Policy = pol
				cfg.Threads = threads
				cfg.HWThreads = 8
				cfg.PhysCores = 4
				cfg.Seed = seed
				cfg.NumAtomicBlocks = 4
				cfg.MemWords = 1 << 14
				cfg.MaxCycles = 1 << 32
				sys, err := seer.NewSystem(cfg)
				if err != nil {
					t.Fatal(err)
				}
				accounts := sys.AllocLines(nAccounts)
				addr := func(i int) seer.Addr { return accounts + seer.Addr(i*8) }
				for i := 0; i < nAccounts; i++ {
					sys.Poke(addr(i), initial)
				}
				transfer := func(a seer.Access, from, to int, amount uint64) {
					bal := a.Load(addr(from))
					if bal >= amount {
						a.Store(addr(from), bal-amount)
						a.Store(addr(to), a.Load(addr(to))+amount)
					}
				}
				torn := make([]int, threads)
				workers := make([]seer.Worker, threads)
				for w := range workers {
					id := w
					workers[w] = func(th *seer.Thread) {
						rng := th.Rand()
						for n := 0; n < 60; n++ {
							amount := uint64(rng.Intn(40))
							switch rng.Intn(4) {
							case 0: // lower half only
								th.Atomic(0, func(a seer.Access) {
									transfer(a, rng.Intn(4), rng.Intn(4), amount)
								})
							case 1: // upper half only
								th.Atomic(1, func(a seer.Access) {
									transfer(a, 4+rng.Intn(4), 4+rng.Intn(4), amount)
								})
							case 2: // across the halves
								th.Atomic(2, func(a seer.Access) {
									transfer(a, rng.Intn(4), 4+rng.Intn(4), amount)
								})
							default: // global audit
								var sum uint64
								th.Atomic(3, func(a seer.Access) {
									sum = 0
									for i := 0; i < nAccounts; i++ {
										sum += a.Load(addr(i))
									}
								})
								if sum != nAccounts*initial {
									torn[id]++
								}
							}
						}
					}
				}
				if _, err := sys.Run(workers); err != nil {
					t.Fatal(err)
				}
				for id, v := range torn {
					if v > 0 {
						t.Fatalf("%s: thread %d saw %d torn audits", pol, id, v)
					}
				}
				var total uint64
				for i := 0; i < nAccounts; i++ {
					total += sys.Peek(addr(i))
				}
				return total == nAccounts*initial
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConfigValidation covers the public constructor's error paths; each
// violation must map to its named sentinel so callers can errors.Is.
func TestConfigValidation(t *testing.T) {
	base := seer.DefaultConfig()
	cases := []struct {
		name   string
		mutate func(*seer.Config)
		want   error
	}{
		{"zero threads", func(c *seer.Config) { c.Threads = 0 }, seer.ErrThreads},
		{"negative threads", func(c *seer.Config) { c.Threads = -3 }, seer.ErrThreads},
		{"zero blocks", func(c *seer.Config) { c.NumAtomicBlocks = 0 }, seer.ErrNumAtomicBlocks},
		{"zero attempts", func(c *seer.Config) { c.MaxAttempts = 0 }, seer.ErrMaxAttempts},
		{"hwthreads below threads", func(c *seer.Config) { c.Threads = 8; c.HWThreads = 4 }, seer.ErrHWThreads},
		{"negative registry shards", func(c *seer.Config) { c.RegistryShards = -1 }, seer.ErrRegistryShards},
		{"unknown policy", func(c *seer.Config) { c.Policy = "Bogus" }, seer.ErrPolicy},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if err := cfg.Validate(); !errors.Is(err, tc.want) {
			t.Errorf("%s: Validate = %v, want %v", tc.name, err, tc.want)
		}
		if _, err := seer.NewSystem(cfg); !errors.Is(err, tc.want) {
			t.Errorf("%s: NewSystem = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestDefaultConfigInvariants pins the paper's testbed shape: the default
// configuration must validate as-is and encode 8 hyperthreads on 4 cores
// with Intel's recommended 5-attempt retry budget and full Seer options.
func TestDefaultConfigInvariants(t *testing.T) {
	cfg := seer.DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("DefaultConfig does not validate: %v", err)
	}
	if cfg.Threads != 8 || cfg.PhysCores != 4 {
		t.Fatalf("testbed shape = %d threads / %d cores, want 8/4", cfg.Threads, cfg.PhysCores)
	}
	if cfg.MaxAttempts != 5 {
		t.Fatalf("MaxAttempts = %d, want the paper's 5", cfg.MaxAttempts)
	}
	if cfg.Policy != seer.PolicySeer {
		t.Fatalf("default policy = %s, want Seer", cfg.Policy)
	}
	if cfg.NumAtomicBlocks <= 0 || cfg.MemWords <= 0 {
		t.Fatalf("degenerate defaults: blocks=%d memwords=%d", cfg.NumAtomicBlocks, cfg.MemWords)
	}
	if cfg.MaxCycles != 0 {
		t.Fatalf("MaxCycles = %d, want unlimited default", cfg.MaxCycles)
	}
	// A default system must actually build and run.
	if _, err := seer.NewSystem(cfg); err != nil {
		t.Fatalf("NewSystem(DefaultConfig) failed: %v", err)
	}
}

// TestTxIDRangeChecked: out-of-range atomic block ids panic loudly
// instead of corrupting the scheduler's tables.
func TestTxIDRangeChecked(t *testing.T) {
	cfg := seer.DefaultConfig()
	cfg.Threads = 1
	cfg.NumAtomicBlocks = 2
	cfg.MemWords = 1 << 10
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Run([]seer.Worker{func(th *seer.Thread) {
		th.Atomic(2, func(a seer.Access) {})
	}})
	if err == nil {
		t.Fatalf("out-of-range txID did not error")
	}
}

// TestWorkerCountChecked: more workers than threads is an error.
func TestWorkerCountChecked(t *testing.T) {
	cfg := seer.DefaultConfig()
	cfg.Threads = 2
	cfg.MemWords = 1 << 10
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(make([]seer.Worker, 3)); err == nil {
		t.Fatalf("oversubscription not rejected")
	}
}

// TestReportContents: the report carries coherent counters.
func TestReportContents(t *testing.T) {
	rep, _, _ := runCounter(t, seer.PolicySeer, 4, 200)
	if rep.Policy != "Seer" || rep.Threads != 4 {
		t.Fatalf("report header wrong: %+v", rep)
	}
	if rep.Commits() != 800 {
		t.Fatalf("commits = %d", rep.Commits())
	}
	if rep.Throughput() <= 0 {
		t.Fatalf("throughput = %v", rep.Throughput())
	}
	if rep.HWAttempts < rep.HTM.Commits {
		t.Fatalf("attempts (%d) < hardware commits (%d)", rep.HWAttempts, rep.HTM.Commits)
	}
	if rep.Seer == nil {
		t.Fatalf("Seer policy report missing scheduler section")
	}
	if rep.String() == "" {
		t.Fatalf("empty String()")
	}
	fr := rep.ModeFractions()
	var sum float64
	for _, f := range fr {
		sum += f
	}
	if sum < 99.9 || sum > 100.1 {
		t.Fatalf("mode fractions sum to %v", sum)
	}
}

// TestHyperthreadCapacityPenalty: the same capacity-heavy workload
// commits via fall-back more often when the two workers share a physical
// core than when they have one each.
func TestHyperthreadCapacityPenalty(t *testing.T) {
	run := func(physCores int) seer.Report {
		cfg := seer.DefaultConfig()
		cfg.Policy = seer.PolicyRTM
		cfg.Threads = 2
		cfg.HWThreads = 2
		cfg.PhysCores = physCores
		cfg.NumAtomicBlocks = 1
		cfg.MemWords = 1 << 14
		cfg.HTM.WriteSetLines = 16
		cfg.MaxCycles = 1 << 32
		sys, err := seer.NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		regions := []seer.Addr{sys.AllocLines(12), sys.AllocLines(12)}
		workers := make([]seer.Worker, 2)
		for w := range workers {
			region := regions[w]
			workers[w] = func(th *seer.Thread) {
				for n := 0; n < 100; n++ {
					th.Atomic(0, func(a seer.Access) {
						for l := 0; l < 12; l++ {
							addr := region + seer.Addr(l*8)
							a.Store(addr, a.Load(addr)+1)
						}
					})
					th.Work(10)
				}
			}
		}
		rep, err := sys.Run(workers)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	shared := run(1)   // both workers on one physical core
	separate := run(2) // one worker per core
	if shared.HTM.CapacityAborts <= separate.HTM.CapacityAborts {
		t.Fatalf("shared-core capacity aborts (%d) not above separate-core (%d)",
			shared.HTM.CapacityAborts, separate.HTM.CapacityAborts)
	}
}
