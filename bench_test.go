package seer_test

// The benchmarks in this file regenerate the paper's tables and figures
// through the testing.B interface, one benchmark family per exhibit:
//
//	BenchmarkFig3/<workload>/<policy>/<threads>t  — Figure 3 speedup points
//	BenchmarkTable3/<policy>/<threads>t           — Table 3 mode breakdowns
//	BenchmarkFig4/<workload>                      — Figure 4 profiling overhead
//	BenchmarkFig5/<variant>                       — Figure 5 cumulative ablation
//	BenchmarkLockFrac                             — §5.2 lock-granularity stat
//
// Each benchmark reports the simulated metrics through b.ReportMetric:
// speedup (vs the sequential uninstrumented baseline), SGL percentage and
// abort rate. Wall-clock ns/op measures the simulator, not the modeled
// machine, and is meaningful only as "how long the experiment takes".
//
// The full-resolution experiment driver is cmd/seerbench; these benches
// run at a reduced scale so `go test -bench=.` finishes in minutes.

import (
	"fmt"
	"testing"

	"seer"
	"seer/internal/harness"
)

// benchScale keeps `go test -bench=.` fast; cmd/seerbench uses 1.0.
const benchScale = 0.25

// baselines caches sequential makespans per workload.
var baselines = map[string]float64{}

func baseline(b *testing.B, workload string) float64 {
	if v, ok := baselines[workload]; ok {
		return v
	}
	v, err := harness.SequentialBaseline(workload, benchScale, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	baselines[workload] = v
	return v
}

func runCell(b *testing.B, spec harness.Spec) harness.Result {
	b.Helper()
	res, err := harness.RunOne(spec)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig3 regenerates the Figure 3 grid: speedup over sequential
// for each benchmark × policy × thread count.
func BenchmarkFig3(b *testing.B) {
	threads := []int{1, 2, 4, 6, 8}
	for _, wl := range harness.Suite() {
		for _, pol := range harness.Fig3Policies {
			for _, th := range threads {
				name := fmt.Sprintf("%s/%s/%dt", wl, pol, th)
				b.Run(name, func(b *testing.B) {
					base := baseline(b, wl)
					var res harness.Result
					for i := 0; i < b.N; i++ {
						res = runCell(b, harness.Spec{
							Workload: wl, Scale: benchScale, Policy: pol,
							Threads: th, Runs: 1, Seed: int64(i + 1),
						})
					}
					b.ReportMetric(harness.Speedup(base, res), "speedup")
					b.ReportMetric(res.MeanModePct[seer.ModeSGL], "sgl%")
				})
			}
		}
	}
}

// BenchmarkTable3 regenerates the Table 3 rows: the commit-mode breakdown
// averaged across the STAMP suite.
func BenchmarkTable3(b *testing.B) {
	for _, pol := range harness.Fig3Policies {
		for _, th := range harness.Table3Threads {
			b.Run(fmt.Sprintf("%s/%dt", pol, th), func(b *testing.B) {
				var sgl, htmOnly, locked float64
				for i := 0; i < b.N; i++ {
					sgl, htmOnly, locked = 0, 0, 0
					for _, wl := range harness.Suite() {
						res := runCell(b, harness.Spec{
							Workload: wl, Scale: benchScale, Policy: pol,
							Threads: th, Runs: 1, Seed: int64(i + 1),
						})
						sgl += res.MeanModePct[seer.ModeSGL]
						htmOnly += res.MeanModePct[seer.ModeHTM]
						locked += res.MeanModePct[seer.ModeHTMAux] +
							res.MeanModePct[seer.ModeHTMTx] +
							res.MeanModePct[seer.ModeHTMCore] +
							res.MeanModePct[seer.ModeHTMTxCore]
					}
				}
				n := float64(len(harness.Suite()))
				b.ReportMetric(htmOnly/n, "htm%")
				b.ReportMetric(locked/n, "locked%")
				b.ReportMetric(sgl/n, "sgl%")
			})
		}
	}
}

// BenchmarkFig4 regenerates the Figure 4 overhead study: profile-only
// Seer relative to RTM (1.0 = free; the paper reports ≥0.92 everywhere).
func BenchmarkFig4(b *testing.B) {
	profOpts := seer.DefaultConfig().Seer
	profOpts.TxLocks = false
	profOpts.CoreLocks = false
	profOpts.HTMLockAcq = false
	workloads := append(harness.Suite(), "hashmap")
	for _, wl := range workloads {
		b.Run(wl, func(b *testing.B) {
			var rel float64
			for i := 0; i < b.N; i++ {
				rtm := runCell(b, harness.Spec{
					Workload: wl, Scale: benchScale, Policy: seer.PolicyRTM,
					Threads: 8, Runs: 1, Seed: int64(i + 1),
				})
				opts := profOpts
				prof := runCell(b, harness.Spec{
					Workload: wl, Scale: benchScale, Policy: seer.PolicySeer,
					SeerOpts: &opts, Threads: 8, Runs: 1, Seed: int64(i + 1),
				})
				rel = rtm.MeanMakespan / prof.MeanMakespan
			}
			b.ReportMetric(rel, "rel_speed")
		})
	}
}

// BenchmarkFig5 regenerates the Figure 5 ablation: each cumulative Seer
// variant's geometric-mean speedup over the profile-only baseline at 8
// threads.
func BenchmarkFig5(b *testing.B) {
	variants := harness.SeerVariants()
	for _, v := range variants {
		v := v
		b.Run(v.Name, func(b *testing.B) {
			var gm float64
			for i := 0; i < b.N; i++ {
				var speedups []float64
				for _, wl := range harness.Suite() {
					baseOpts := variants[0].Opts
					base := runCell(b, harness.Spec{
						Workload: wl, Scale: benchScale, Policy: seer.PolicySeer,
						SeerOpts: &baseOpts, Threads: 8, Runs: 1, Seed: int64(i + 1),
					})
					opts := v.Opts
					res := runCell(b, harness.Spec{
						Workload: wl, Scale: benchScale, Policy: seer.PolicySeer,
						SeerOpts: &opts, Threads: 8, Runs: 1, Seed: int64(i + 1),
					})
					speedups = append(speedups, base.MeanMakespan/res.MeanMakespan)
				}
				gm = harness.GeoMean(speedups)
			}
			b.ReportMetric(gm, "vs_profile")
		})
	}
}

// BenchmarkLockFrac reproduces the §5.2 statistic: the median fraction of
// transaction locks acquired when Seer takes any, at 8 threads.
func BenchmarkLockFrac(b *testing.B) {
	var medians []float64
	for i := 0; i < b.N; i++ {
		medians = medians[:0]
		for _, wl := range harness.Suite() {
			res := runCell(b, harness.Spec{
				Workload: wl, Scale: benchScale, Policy: seer.PolicySeer,
				Threads: 8, Runs: 1, Seed: int64(i + 1),
			})
			rep := res.Reports[0]
			if rep.Seer != nil && rep.Seer.LockAcqEvents > 0 {
				medians = append(medians, rep.Seer.LockFracMedian)
			}
		}
	}
	var sum float64
	for _, m := range medians {
		sum += m
	}
	if len(medians) > 0 {
		b.ReportMetric(sum/float64(len(medians)), "median_lock_frac")
	}
}

// BenchmarkContendedSGL measures the simulator on a maximally contended
// cell: HLE at 8 threads funnels nearly every transaction through the
// single global lock, so run time is dominated by the spinlock park/wake
// path. Reports the parked share of lock-wait virtual time.
func BenchmarkContendedSGL(b *testing.B) {
	var lockWait, parkSkipped uint64
	for i := 0; i < b.N; i++ {
		res := runCell(b, harness.Spec{
			Workload: "intruder", Scale: benchScale, Policy: seer.PolicyHLE,
			Threads: 8, Runs: 1, Seed: int64(i + 1),
			MetricsInterval: 1 << 16,
		})
		lockWait, parkSkipped = 0, 0
		for _, snap := range res.Reports[0].Timeline {
			lockWait += snap.LockWait
			parkSkipped += snap.ParkSkipped
		}
	}
	if lockWait > 0 {
		b.ReportMetric(100*float64(parkSkipped)/float64(lockWait), "park_skip_%")
	}
}

// BenchmarkEngineTick measures the simulator's own speed: virtual-time
// scheduling points per second on this host.
func BenchmarkEngineTick(b *testing.B) {
	cfg := seer.DefaultConfig()
	cfg.Threads = 8
	cfg.NumAtomicBlocks = 1
	cfg.MemWords = 1 << 12
	cfg.Policy = seer.PolicySeq
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		b.Fatal(err)
	}
	per := b.N/8 + 1
	workers := make([]seer.Worker, 8)
	for i := range workers {
		workers[i] = func(t *seer.Thread) {
			for n := 0; n < per; n++ {
				t.Work(1)
			}
		}
	}
	b.ResetTimer()
	if _, err := sys.Run(workers); err != nil {
		b.Fatal(err)
	}
}
