package seer_test

import (
	"testing"

	"seer"
)

// fuzzPolicies is the rotation the quantum fuzzer draws from: every policy
// with a hardware path (speculative quanta never engage under PolicySeq's
// single thread, but it is kept as a degenerate case).
var fuzzPolicies = []seer.PolicyKind{
	seer.PolicyHLE, seer.PolicyRTM, seer.PolicySCM, seer.PolicyATS,
	seer.PolicyOracle, seer.PolicySeer, seer.PolicyBackoff, seer.PolicySeq,
}

// quantumFuzzRun executes one randomized contended workload under the
// given speculative-quantum budget and returns the canonical report
// digest. The digest (Report.Summary) deliberately excludes the quantum
// diagnostic counters, so it must be byte-identical across budgets.
func quantumFuzzRun(t *testing.T, pol seer.PolicyKind, seed int64, threads, slots, iters, quantum int) string {
	t.Helper()
	cfg := seer.DefaultConfig()
	cfg.Policy = pol
	cfg.Threads = threads
	cfg.HWThreads = 8
	cfg.PhysCores = 4
	if threads > 8 {
		cfg.HWThreads = threads
		cfg.PhysCores = (threads + 1) / 2
	}
	cfg.Seed = seed
	cfg.NumAtomicBlocks = 2
	cfg.MemWords = 1 << 16
	cfg.MetricsInterval = 1 << 14
	cfg.MaxCycles = 1 << 32
	cfg.SpeculativeQuantum = quantum
	if pol == seer.PolicySeq {
		cfg.Threads = 1
		threads = 1
	}
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem(%s, quantum=%d): %v", pol, quantum, err)
	}
	arr := sys.AllocAligned(slots)
	sums := sys.AllocAligned(threads)
	workers := make([]seer.Worker, threads)
	for i := range workers {
		id := i
		workers[i] = func(th *seer.Thread) {
			for n := 0; n < iters; n++ {
				th.Atomic(0, func(a seer.Access) {
					from := arr + seer.Addr(th.Rand().Intn(slots))
					to := arr + seer.Addr(th.Rand().Intn(slots))
					v := a.Load(from)
					a.Store(from, v-1)
					a.Store(to, a.Load(to)+1)
					a.Work(uint64(1 + n%7)) // in-txn pure ticks: speculable
				})
				th.Work(uint64(5 + id)) // between-txn pure ticks: speculable
				th.Atomic(1, func(a seer.Access) {
					var sum uint64
					for k := 0; k < slots/4; k++ {
						sum += a.Load(arr + seer.Addr((id*slots/4+k)%slots))
					}
					a.Store(sums+seer.Addr(id), sum)
				})
			}
		}
	}
	rep, err := sys.Run(workers)
	if err != nil {
		t.Fatalf("Run(%s, quantum=%d): %v", pol, quantum, err)
	}
	return rep.Summary()
}

// FuzzQuantumRollback is the differential fuzzer for the speculative
// quantum engine: whatever the seed, policy, contention shape and quantum
// budget, the canonical report digest — makespan, commit modes, abort
// causes, every telemetry interval — must be byte-identical to the
// per-tick (SpeculativeQuantum=0) run. Any divergence means a speculated
// tick leaked an observation past the undo log (exactly the bug class the
// mem.Peek speculation barrier exists for), so the digest comparison is
// the whole oracle.
func FuzzQuantumRollback(f *testing.F) {
	f.Add(int64(42), uint8(4), uint8(5), uint8(16), uint8(40), uint16(64))
	f.Add(int64(1), uint8(8), uint8(1), uint8(8), uint8(25), uint16(1))
	f.Add(int64(7), uint8(2), uint8(3), uint8(32), uint8(60), uint16(7))
	f.Add(int64(99), uint8(6), uint8(6), uint8(12), uint8(30), uint16(1024))
	f.Fuzz(func(t *testing.T, seed int64, threads, polIdx, slots, iters uint8, quantum uint16) {
		pol := fuzzPolicies[int(polIdx)%len(fuzzPolicies)]
		nThreads := 1 + int(threads)%8
		nSlots := 4 * (1 + int(slots)%8) // 4..32, multiple of 4 for the scan block
		nIters := 1 + int(iters)%60
		k := 1 + int(quantum)%2048
		base := quantumFuzzRun(t, pol, seed, nThreads, nSlots, nIters, 0)
		spec := quantumFuzzRun(t, pol, seed, nThreads, nSlots, nIters, k)
		if base != spec {
			t.Fatalf("%s seed=%d threads=%d slots=%d iters=%d: quantum=%d digest diverged from per-tick run\n--- per-tick ---\n%s--- quantum ---\n%s",
				pol, seed, nThreads, nSlots, nIters, k, base, spec)
		}
	})
}
