package seer_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"seer/internal/harness"
)

// TestExhibitGoldens regenerates every seerbench exhibit at a reduced
// scale and compares the rendered text byte-for-byte against checked-in
// goldens. It is the regression net for "perf changes must not move the
// science": any scheduling, inference or rendering change that alters an
// exhibit fails here with a diffable artifact.
//
// The sweep simulates a few hundred million cycles, so it only runs when
// SEER_EXHIBITS=1 is set (CI has a dedicated job). Regenerate after an
// intentional change with:
//
//	SEER_EXHIBITS=1 go test -run TestExhibitGoldens -update
func TestExhibitGoldens(t *testing.T) {
	if os.Getenv("SEER_EXHIBITS") == "" {
		t.Skip("set SEER_EXHIBITS=1 to run the exhibit regression sweep")
	}
	// Parallel fan-out is byte-identical to sequential (see RunGrid), so
	// using every CPU here does not weaken the byte-for-byte guarantee.
	opt := harness.Options{Scale: 0.05, Runs: 1, Seed: 1, Parallel: -1}

	exhibits := []struct {
		name   string
		render func(opt harness.Options) (string, error)
	}{
		{"fig3", func(opt harness.Options) (string, error) {
			d, err := harness.Fig3With(opt, nil, harness.Fig3Policies, nil)
			if err != nil {
				return "", err
			}
			var buf bytes.Buffer
			d.Render(&buf)
			return buf.String(), nil
		}},
		{"table3", func(opt harness.Options) (string, error) {
			d, err := harness.Table3(opt, nil, nil)
			if err != nil {
				return "", err
			}
			var buf bytes.Buffer
			d.Render(&buf)
			return buf.String(), nil
		}},
		{"fig4", func(opt harness.Options) (string, error) {
			d, err := harness.Fig4(opt, nil, nil)
			if err != nil {
				return "", err
			}
			var buf bytes.Buffer
			d.Render(&buf)
			return buf.String(), nil
		}},
		{"fig5", func(opt harness.Options) (string, error) {
			d, err := harness.Fig5(opt, nil, nil)
			if err != nil {
				return "", err
			}
			var buf bytes.Buffer
			d.Render(&buf)
			return buf.String(), nil
		}},
		{"lockfrac", func(opt harness.Options) (string, error) {
			d, err := harness.LockFrac(opt, nil)
			if err != nil {
				return "", err
			}
			var buf bytes.Buffer
			d.Render(&buf)
			return buf.String(), nil
		}},
		{"ext", func(opt harness.Options) (string, error) {
			d, err := harness.Extensions(opt, nil, nil)
			if err != nil {
				return "", err
			}
			var buf bytes.Buffer
			d.Render(&buf)
			return buf.String(), nil
		}},
		{"attempts", func(opt harness.Options) (string, error) {
			d, err := harness.Attempts(opt, nil, nil)
			if err != nil {
				return "", err
			}
			var buf bytes.Buffer
			d.Render(&buf)
			return buf.String(), nil
		}},
		{"timeline", func(opt harness.Options) (string, error) {
			d, err := harness.Timelines(opt, nil, nil, 0, nil)
			if err != nil {
				return "", err
			}
			var buf bytes.Buffer
			d.Render(&buf)
			return buf.String(), nil
		}},
		{"contended", func(opt harness.Options) (string, error) {
			d, err := harness.Contended(opt, nil, nil)
			if err != nil {
				return "", err
			}
			var buf bytes.Buffer
			d.Render(&buf)
			return buf.String(), nil
		}},
		{"scaling", func(opt harness.Options) (string, error) {
			d, err := harness.Scaling(opt, nil, nil)
			if err != nil {
				return "", err
			}
			var buf bytes.Buffer
			d.Render(&buf)
			return buf.String(), nil
		}},
		{"inference", func(opt harness.Options) (string, error) {
			d, err := harness.Inference(opt, nil, 0, nil)
			if err != nil {
				return "", err
			}
			var buf bytes.Buffer
			d.Render(&buf)
			return buf.String(), nil
		}},
		{"adversarial", func(opt harness.Options) (string, error) {
			d, err := harness.Adversarial(opt, nil, 0, nil)
			if err != nil {
				return "", err
			}
			var buf bytes.Buffer
			d.Render(&buf)
			return buf.String(), nil
		}},
		{"phased", func(opt harness.Options) (string, error) {
			d, err := harness.Phased(opt, nil, nil)
			if err != nil {
				return "", err
			}
			var buf bytes.Buffer
			d.Render(&buf)
			return buf.String(), nil
		}},
		{"fullsuite", func(opt harness.Options) (string, error) {
			// The opt-in workloads through the fig3 pipeline over the full
			// policy set (the seerbench -experiment fullsuite exhibit).
			d, err := harness.Fig3With(opt, []string{"bayes", "labyrinth"}, harness.AllPolicies, nil)
			if err != nil {
				return "", err
			}
			var buf bytes.Buffer
			d.Render(&buf)
			return buf.String(), nil
		}},
	}

	for _, ex := range exhibits {
		ex := ex
		t.Run(ex.name, func(t *testing.T) {
			got, err := ex.render(opt)
			if err != nil {
				t.Fatalf("%s: %v", ex.name, err)
			}
			path := filepath.Join("testdata", "exhibits", ex.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				dump := filepath.Join(t.TempDir(), ex.name+".got")
				os.WriteFile(dump, []byte(got), 0o644)
				t.Errorf("%s output differs from %s (got written to %s)", ex.name, path, dump)
			}
		})
	}
}
