package seer_test

import (
	"strings"
	"testing"

	"seer"
)

// TestThreadAccessors covers the Thread handle's surface.
func TestThreadAccessors(t *testing.T) {
	cfg := seer.DefaultConfig()
	cfg.Policy = seer.PolicyRTM
	cfg.Threads = 2
	cfg.NumAtomicBlocks = 1
	cfg.MemWords = 1 << 12
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cell := sys.AllocAligned(1)
	ids := make([]int, 2)
	workers := make([]seer.Worker, 2)
	for i := range workers {
		idx := i
		workers[i] = func(th *seer.Thread) {
			ids[idx] = th.ID()
			before := th.Clock()
			th.Work(25)
			if th.Clock() < before+25 {
				t.Errorf("Work did not advance the clock")
			}
			if th.Rand() == nil {
				t.Errorf("nil Rand")
			}
			// Direct access outside transactions.
			d := th.Direct()
			d.Store(cell+seer.Addr(idx), 7)
			if d.Load(cell+seer.Addr(idx)) != 7 {
				t.Errorf("direct store/load roundtrip failed")
			}
			if d.ThreadID() != th.ID() {
				t.Errorf("Direct thread id mismatch")
			}
			th.Atomic(0, func(a seer.Access) { a.Work(1) })
			modes := th.Modes()
			if modes.Total() != 1 {
				t.Errorf("mode histogram = %v", modes)
			}
		}
	}
	if _, err := sys.Run(workers); err != nil {
		t.Fatal(err)
	}
	if ids[0] != 0 || ids[1] != 1 {
		t.Fatalf("worker ids = %v", ids)
	}
}

// TestHWThreadsRounding: HWThreads is rounded up to a multiple of
// PhysCores rather than rejected.
func TestHWThreadsRounding(t *testing.T) {
	cfg := seer.DefaultConfig()
	cfg.Threads = 5
	cfg.HWThreads = 5
	cfg.PhysCores = 4
	cfg.MemWords = 1 << 12
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(make([]seer.Worker, 0)); err != nil {
		t.Fatal(err)
	}
}

// TestRepeatedRunsAccumulate: a second Run on the same system works and
// the HTM counters accumulate (documented behaviour).
func TestRepeatedRunsAccumulate(t *testing.T) {
	cfg := seer.DefaultConfig()
	cfg.Policy = seer.PolicyRTM
	cfg.Threads = 1
	cfg.NumAtomicBlocks = 1
	cfg.MemWords = 1 << 12
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cell := sys.AllocAligned(1)
	worker := []seer.Worker{func(th *seer.Thread) {
		for n := 0; n < 10; n++ {
			th.Atomic(0, func(a seer.Access) { a.Store(cell, a.Load(cell)+1) })
		}
	}}
	r1, err := sys.Run(worker)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sys.Run(worker)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Peek(cell) != 20 {
		t.Fatalf("cell = %d, want 20", sys.Peek(cell))
	}
	if r2.HTM.Commits <= r1.HTM.Commits {
		t.Fatalf("counters did not accumulate: %d then %d", r1.HTM.Commits, r2.HTM.Commits)
	}
}

// TestPolicyNames: every public policy constructs and self-identifies.
func TestPolicyNames(t *testing.T) {
	for _, pol := range []seer.PolicyKind{
		seer.PolicyHLE, seer.PolicyRTM, seer.PolicySCM,
		seer.PolicyATS, seer.PolicyOracle, seer.PolicySeer, seer.PolicySeq,
	} {
		cfg := seer.DefaultConfig()
		cfg.Policy = pol
		cfg.Threads = 1
		cfg.MemWords = 1 << 10
		sys, err := seer.NewSystem(cfg)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if got := sys.PolicyName(); got != string(pol) {
			t.Fatalf("PolicyName = %q, want %q", got, pol)
		}
		if (pol == seer.PolicySeer) != (sys.Scheduler() != nil) {
			t.Fatalf("%s: scheduler presence wrong", pol)
		}
	}
}

// TestLivelockGuardSurfaced: MaxCycles violations come back as errors,
// not hangs.
func TestLivelockGuardSurfaced(t *testing.T) {
	cfg := seer.DefaultConfig()
	cfg.Policy = seer.PolicySeq
	cfg.Threads = 1
	cfg.MemWords = 1 << 10
	cfg.MaxCycles = 500
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Run([]seer.Worker{func(th *seer.Thread) {
		for {
			th.Work(10)
		}
	}})
	if err == nil || !strings.Contains(err.Error(), "MaxCycles") {
		t.Fatalf("livelock not surfaced: %v", err)
	}
}

// TestMemoryHelpers: allocation helpers and bounds.
func TestMemoryHelpers(t *testing.T) {
	cfg := seer.DefaultConfig()
	cfg.Threads = 1
	cfg.MemWords = 1 << 10
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	free := sys.FreeWords()
	a := sys.Alloc(3)
	if sys.FreeWords() != free-3 {
		t.Fatalf("FreeWords did not shrink")
	}
	b := sys.AllocLines(2)
	if b%8 != 0 {
		t.Fatalf("AllocLines misaligned: %d", b)
	}
	c := sys.AllocAligned(5)
	if c%8 != 0 {
		t.Fatalf("AllocAligned misaligned: %d", c)
	}
	sys.Poke(a, 11)
	if sys.Peek(a) != 11 {
		t.Fatalf("Peek/Poke roundtrip failed")
	}
	if seer.NilAddr != 0 {
		t.Fatalf("NilAddr = %d", seer.NilAddr)
	}
}

// TestWorkerPanicSurfaces: an application panic inside a worker comes
// back as an error naming the thread.
func TestWorkerPanicSurfaces(t *testing.T) {
	cfg := seer.DefaultConfig()
	cfg.Policy = seer.PolicySeq
	cfg.Threads = 1
	cfg.MemWords = 1 << 10
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Run([]seer.Worker{func(th *seer.Thread) {
		th.Work(1)
		panic("application bug")
	}})
	if err == nil || !strings.Contains(err.Error(), "application bug") {
		t.Fatalf("panic not surfaced: %v", err)
	}
}
