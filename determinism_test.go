package seer_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"seer"
)

var updateGolden = flag.Bool("update", false, "regenerate testdata golden files")

// detPolicies is every policy the runtime registers; each must be
// bit-for-bit reproducible for a fixed seed.
var detPolicies = []seer.PolicyKind{
	seer.PolicyHLE, seer.PolicyRTM, seer.PolicySCM,
	seer.PolicyATS, seer.PolicyOracle, seer.PolicySeer, seer.PolicySeq,
	// Backoff and Phased are appended last (in introduction order) so
	// the golden sections of the older policies stay byte-identical
	// across the PRs that introduced them.
	seer.PolicyBackoff,
	seer.PolicyPhased,
}

// detConfig is the fixed configuration of the golden run: 4 workers on a
// hyperthreaded 8-thread/4-core machine, two atomic blocks, telemetry on.
func detConfig(pol seer.PolicyKind) seer.Config {
	cfg := seer.DefaultConfig()
	cfg.Policy = pol
	cfg.Threads = 4
	cfg.HWThreads = 8
	cfg.PhysCores = 4
	cfg.Seed = 42
	cfg.NumAtomicBlocks = 2
	cfg.MemWords = 1 << 16
	cfg.MetricsInterval = 1 << 15
	cfg.MaxCycles = 1 << 32
	if pol == seer.PolicySeq {
		// Sequential runs unsynchronized; it is the single-thread baseline.
		cfg.Threads = 1
	}
	return cfg
}

// detRun builds a fresh system, runs a small two-block contended workload
// and returns the canonical Report digest.
func detRun(t *testing.T, pol seer.PolicyKind) string {
	return detRunWith(t, detConfig(pol))
}

// detRunWith is detRun on an explicit configuration, so variants can
// perturb implementation knobs that must not change results.
func detRunWith(t *testing.T, cfg seer.Config) string {
	t.Helper()
	pol := cfg.Policy
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		t.Fatalf("%s: NewSystem: %v", pol, err)
	}
	const slots = 32
	arr := sys.AllocAligned(slots)
	sums := sys.AllocAligned(cfg.Threads)
	workers := make([]seer.Worker, cfg.Threads)
	for i := range workers {
		id := i
		workers[i] = func(th *seer.Thread) {
			for n := 0; n < 200; n++ {
				// Block 0: transfer between two random slots (writes, conflicts).
				th.Atomic(0, func(a seer.Access) {
					from := arr + seer.Addr(th.Rand().Intn(slots))
					to := arr + seer.Addr(th.Rand().Intn(slots))
					v := a.Load(from)
					a.Store(from, v-1)
					a.Store(to, a.Load(to)+1)
				})
				th.Work(20)
				// Block 1: scan a stripe and publish the sum (read mostly).
				th.Atomic(1, func(a seer.Access) {
					var sum uint64
					for k := 0; k < slots/4; k++ {
						sum += a.Load(arr + seer.Addr((id*slots/4+k)%slots))
					}
					a.Store(sums+seer.Addr(id), sum)
				})
			}
		}
	}
	rep, err := sys.Run(workers)
	if err != nil {
		t.Fatalf("%s: Run: %v", pol, err)
	}
	sys.Release() // hand buffers back when cfg carries a recycler
	return rep.Summary()
}

// TestDeterminismShardAndRecyclerInvariant: the conflict-registry shard
// count is pure data layout and a recycled simulator replica is reset to
// power-on state, so neither knob may move a single byte of the report —
// including on a wide multi-socket shape where the auto heuristic picks
// several shards. The recycler leg reuses one buffer set across every
// policy and repetition, exactly like a RunGrid worker.
func TestDeterminismShardAndRecyclerInvariant(t *testing.T) {
	rec := &seer.Recycler{}
	for _, pol := range []seer.PolicyKind{seer.PolicyRTM, seer.PolicySeer} {
		base := detRun(t, pol)
		for _, shards := range []int{1, 2, 8} {
			cfg := detConfig(pol)
			cfg.RegistryShards = shards
			if got := detRunWith(t, cfg); got != base {
				t.Fatalf("%s: shards=%d report differs from default:\n--- default ---\n%s--- sharded ---\n%s",
					pol, shards, base, got)
			}
			cfg.Recycler = rec
			if got := detRunWith(t, cfg); got != base {
				t.Fatalf("%s: shards=%d recycled replica differs from fresh system:\n--- fresh ---\n%s--- recycled ---\n%s",
					pol, shards, base, got)
			}
		}
	}
}

// TestDeterminismQuantumInvariant: the speculative-quantum budget is pure
// engine mechanics — the undo log replays or rolls back every deferred
// tick at its per-tick (cycle, id) position — so no budget may move a
// single byte of the report. The golden run itself executes at the
// library default (speculation on), so this test is what pins the
// per-tick baseline: budget 0 disables speculation entirely.
func TestDeterminismQuantumInvariant(t *testing.T) {
	for _, pol := range detPolicies {
		base := detRun(t, pol) // DefaultSpeculativeQuantum
		for _, k := range []int{0, 1, 7, 1024} {
			cfg := detConfig(pol)
			cfg.SpeculativeQuantum = k
			if got := detRunWith(t, cfg); got != base {
				t.Fatalf("%s: SpeculativeQuantum=%d report differs from default:\n--- default ---\n%s--- quantum=%d ---\n%s",
					pol, k, base, k, got)
			}
		}
	}
}

// TestDeterminismGolden runs every policy three times on identical
// configurations and seeds. Each repetition must produce a byte-identical
// Report.Summary, and the concatenated per-policy digests must match the
// checked-in golden file (regenerate with `go test -run Golden -update .`).
func TestDeterminismGolden(t *testing.T) {
	var all strings.Builder
	for _, pol := range detPolicies {
		first := detRun(t, pol)
		for rep := 1; rep < 3; rep++ {
			if again := detRun(t, pol); again != first {
				t.Fatalf("%s: repetition %d differs from first run:\n--- first ---\n%s--- rep %d ---\n%s",
					pol, rep, first, rep, again)
			}
		}
		fmt.Fprintf(&all, "==== %s ====\n%s", pol, first)
	}
	golden := filepath.Join("testdata", "determinism.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(all.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run Golden -update .`): %v", err)
	}
	if got := all.String(); got != string(want) {
		t.Fatalf("summaries diverge from %s — if the change is intentional, regenerate with -update.\n--- got ---\n%s\n--- want ---\n%s",
			golden, got, want)
	}
}
