// tuning: watch Seer's stochastic hill climber adapt the inference
// thresholds Θ₁/Θ₂ online. The workload alternates between a contended
// phase (where aggressive serialization pays) and a calm phase (where any
// serialization is pure loss); the tuner's trajectory and the resulting
// lock scheme are printed after each phase.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"seer"
)

const (
	nThreads = 8
	slots    = 4
)

func main() {
	cfg := seer.DefaultConfig()
	cfg.Policy = seer.PolicySeer
	cfg.Threads = nThreads
	cfg.PhysCores = 4
	cfg.NumAtomicBlocks = 2
	cfg.MemWords = 1 << 14
	cfg.Seer.EpochExecs = 600 // faster epochs: this demo is short
	cfg.Seer.UpdateEvery = 200
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	hot := sys.AllocLines(slots)
	cold := sys.AllocLines(256)

	phase := func(contended bool, opsPerThread int) seer.Report {
		workers := make([]seer.Worker, nThreads)
		for w := range workers {
			workers[w] = func(t *seer.Thread) {
				rng := t.Rand()
				for n := 0; n < opsPerThread; n++ {
					if contended {
						s := rng.Intn(slots)
						t.Atomic(0, func(a seer.Access) {
							addr := hot + seer.Addr(s*8)
							v := a.Load(addr)
							a.Work(120)
							a.Store(addr, v+1)
						})
					} else {
						c := rng.Intn(256)
						t.Atomic(1, func(a seer.Access) {
							addr := cold + seer.Addr(c*8)
							a.Store(addr, a.Load(addr)+1)
							a.Work(40)
						})
					}
					t.Work(uint64(5 + rng.Intn(11)))
				}
			}
		}
		rep, err := sys.Run(workers)
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	fmt.Println("Phase 1: contended (4 hot slots, long transactions)")
	rep := phase(true, 700)
	show(sys, rep)

	fmt.Println("\nPhase 2: calm (256 cold slots)")
	rep = phase(false, 700)
	show(sys, rep)

	fmt.Println("\nPhase 3: contended again")
	rep = phase(true, 700)
	show(sys, rep)
}

func show(sys *seer.System, rep seer.Report) {
	s := rep.Seer
	fmt.Printf("  thresholds now Θ₁=%.3f Θ₂=%.3f after %d scheme updates\n",
		s.Thresholds.Th1, s.Thresholds.Th2, s.SchemeUpdates)
	fmt.Printf("  scheme: hot->%v cold->%v  lock acquisitions so far: %d\n",
		s.SchemeRows[0], s.SchemeRows[1], s.LockAcqEvents)
	fmt.Printf("  modes: HTM %.1f%%  +locks %.1f%%  SGL %.1f%%\n",
		rep.ModeFractions()[seer.ModeHTM],
		rep.ModeFractions()[seer.ModeHTMTx]+rep.ModeFractions()[seer.ModeHTMTxCore]+rep.ModeFractions()[seer.ModeHTMCore],
		rep.ModeFractions()[seer.ModeSGL])
	if tuner := sys.Scheduler().Tuner(); tuner != nil {
		best, val := tuner.Best()
		fmt.Printf("  tuner: %d moves, best (%.2f, %.2f) at %.4f commits/cycle\n",
			tuner.Moves(), best.Th1, best.Th2, val)
	}
}
