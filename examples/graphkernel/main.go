// graphkernel: an SSCA2-style concurrent graph construction sweep — tiny
// transactions appending edges to per-node adjacency records — run at
// 1..8 threads under every policy. The point of this example is the
// regime where scheduling barely matters: transactions are minimal and
// conflicts rare, so all retry-based policies scale near-linearly while
// HLE's lemming effect still caps it. This mirrors Figure 3e of the
// paper.
//
//	go run ./examples/graphkernel
package main

import (
	"fmt"
	"log"

	"seer"
)

const (
	nNodes    = 2048
	adjCap    = 6
	totalEdge = 8000
)

func run(policy seer.PolicyKind, threads int) seer.Report {
	cfg := seer.DefaultConfig()
	cfg.Policy = policy
	cfg.Threads = threads
	cfg.HWThreads = 8
	cfg.PhysCores = 4
	cfg.NumAtomicBlocks = 1
	cfg.MemWords = nNodes*8 + (1 << 12)
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	adj := sys.AllocLines(nNodes)
	node := func(n int) seer.Addr { return adj + seer.Addr(n*8) }

	per := totalEdge / threads
	workers := make([]seer.Worker, threads)
	for w := range workers {
		extra := 0
		if w < totalEdge%threads {
			extra = 1
		}
		count := per + extra
		workers[w] = func(t *seer.Thread) {
			rng := t.Rand()
			for e := 0; e < count; e++ {
				src := rng.Intn(nNodes)
				dst := uint64(rng.Intn(nNodes))
				base := node(src)
				t.Atomic(0, func(a seer.Access) {
					deg := a.Load(base)
					a.Store(base+1+seer.Addr(deg%adjCap), dst)
					a.Store(base, deg+1)
					a.Work(15)
				})
				t.Work(uint64(100 + rng.Intn(40)))
			}
		}
	}
	rep, err := sys.Run(workers)
	if err != nil {
		log.Fatal(err)
	}
	// Validate: total degree equals the number of inserted edges.
	var degrees uint64
	for n := 0; n < nNodes; n++ {
		degrees += sys.Peek(node(n))
	}
	if degrees != totalEdge {
		log.Fatalf("%s@%d: degree sum %d != %d edges", policy, threads, degrees, totalEdge)
	}
	return rep
}

func main() {
	fmt.Println("SSCA2-style graph construction: speedup vs 1-thread uninstrumented run")
	baseline := run(seer.PolicySeq, 1).MakespanCycles
	fmt.Printf("%-6s", "")
	for th := 1; th <= 8; th++ {
		fmt.Printf(" %5dt", th)
	}
	fmt.Println()
	for _, pol := range []seer.PolicyKind{seer.PolicyHLE, seer.PolicyRTM, seer.PolicySCM, seer.PolicySeer} {
		fmt.Printf("%-6s", pol)
		for th := 1; th <= 8; th++ {
			rep := run(pol, th)
			fmt.Printf(" %6.2f", float64(baseline)/float64(rep.MakespanCycles))
		}
		fmt.Println()
	}
}
