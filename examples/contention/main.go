// contention: sweep the per-block hot-set size of a synthetic workload
// with THREE independent hotspots (plus a cold block) and chart how each
// policy copes at 8 threads. The sweep exposes the granularity argument
// directly: plain RTM storms on every hotspot; SCM funnels all three
// hotspots through its single auxiliary lock; Seer gives each block its
// own inferred lock, so the three serialized streams still run against
// each other in parallel.
//
//	go run ./examples/contention
package main

import (
	"fmt"
	"log"
	"os"

	"seer"
	"seer/internal/plot"
	"seer/internal/stamp"
)

var hotSizes = []int{4, 8, 16, 32, 128, 512}

func run(policy seer.PolicyKind, hot int) float64 {
	wl := &stamp.Synth{
		Blocks:     4,
		Share:      []float64{0.3, 0.3, 0.3, 0.1},
		HotLines:   []int{hot, hot, hot, 512},
		ReadLines:  []int{4, 4, 4, 1},
		WriteLines: []int{1, 1, 1, 1},
		TxWork:     []uint64{110, 110, 110, 40},
		GapWork:    8,
		TotalOps:   3200,
	}
	cfg := seer.DefaultConfig()
	cfg.Policy = policy
	cfg.Threads = 8
	cfg.PhysCores = 4
	cfg.NumAtomicBlocks = wl.NumAtomicBlocks()
	cfg.MemWords = wl.MemWords() + (1 << 14)
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := wl.Setup(sys); err != nil {
		log.Fatal(err)
	}
	rep, err := sys.Run(wl.Workers(8))
	if err != nil {
		log.Fatal(err)
	}
	if err := wl.Validate(sys); err != nil {
		log.Fatal(err)
	}
	return rep.Throughput()
}

func main() {
	fmt.Println("Sweeping the hot-set size (8 threads, 3 independent hotspots): throughput in commits/kcycle")
	policies := []seer.PolicyKind{seer.PolicyRTM, seer.PolicySCM, seer.PolicySeer}
	chart := plot.Chart{
		Title:  "throughput vs hot-set size",
		XLabel: "hot lines",
	}
	for _, h := range hotSizes {
		chart.XTicks = append(chart.XTicks, fmt.Sprint(h))
	}
	for _, pol := range policies {
		series := plot.Series{Name: string(pol)}
		for _, hot := range hotSizes {
			series.Values = append(series.Values, run(pol, hot))
		}
		chart.Series = append(chart.Series, series)
		fmt.Printf("%-5s", pol)
		for _, v := range series.Values {
			fmt.Printf(" %7.2f", v)
		}
		fmt.Println()
	}
	fmt.Println()
	chart.Render(os.Stdout)
}
