// kvstore: a transactional key-value store with three operation types
// (point reads, read-modify-writes, and bulk range sums) served by 8
// threads over the simulated HTM. It prints the commit-mode breakdown and
// the conflict relations Seer inferred between the three atomic blocks —
// the bulk scans are the ones that collide with the writers, and the
// scheduler discovers that on its own.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"

	"seer"
)

const (
	nThreads = 8
	nKeys    = 256
	hotKeys  = 24 // writers and scans concentrate here
	ops      = 600
)

// Atomic blocks.
const (
	txGet  = 0
	txPut  = 1
	txScan = 2
)

func main() {
	cfg := seer.DefaultConfig()
	cfg.Policy = seer.PolicySeer
	cfg.Threads = nThreads
	cfg.PhysCores = 4
	cfg.NumAtomicBlocks = 3
	cfg.MemWords = 1 << 16
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// One line per key: [0] value, [1] version.
	table := sys.AllocLines(nKeys)
	keyAddr := func(k int) seer.Addr { return table + seer.Addr(k*8) }
	for k := 0; k < nKeys; k++ {
		sys.Poke(keyAddr(k), uint64(k))
	}

	workers := make([]seer.Worker, nThreads)
	for w := range workers {
		workers[w] = func(t *seer.Thread) {
			rng := t.Rand()
			for n := 0; n < ops; n++ {
				switch r := rng.Intn(100); {
				case r < 55:
					// Point read anywhere in the table.
					k := rng.Intn(nKeys)
					t.Atomic(txGet, func(a seer.Access) {
						_ = a.Load(keyAddr(k))
						a.Work(30)
					})
				case r < 85:
					// Read-modify-write on the hot range.
					k := rng.Intn(hotKeys)
					t.Atomic(txPut, func(a seer.Access) {
						v := a.Load(keyAddr(k))
						a.Work(60) // value (de)serialization
						a.Store(keyAddr(k), v+1)
						a.Store(keyAddr(k)+1, a.Load(keyAddr(k)+1)+1)
					})
				default:
					// Range sum across the hot keys: a long read-only
					// transaction every writer can invalidate.
					t.Atomic(txScan, func(a seer.Access) {
						var sum uint64
						for k := 0; k < hotKeys; k++ {
							sum += a.Load(keyAddr(k))
						}
						a.Work(90)
						_ = sum
					})
				}
				t.Work(uint64(5 + rng.Intn(11)))
			}
		}
	}

	rep, err := sys.Run(workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.String())
	fmt.Printf("HTM events: %d commits, %d aborts (%d conflict / %d capacity)\n",
		rep.HTM.Commits, rep.HTM.Aborts, rep.HTM.ConflictAborts, rep.HTM.CapacityAborts)

	names := []string{"get", "put", "scan"}
	fmt.Println("\nInferred conflict relations (locksToAcquire, final state):")
	allEmpty := true
	for id, row := range rep.Seer.SchemeRows {
		fmt.Printf("  %-5s -> %v\n", names[id], row)
		if len(row) > 0 {
			allEmpty = false
		}
	}
	if allEmpty && rep.Seer.LockAcqEvents > 0 {
		fmt.Printf("  (the scheme is dynamic: it engaged %d times while contention was live\n"+
			"   and drained once the serialization had calmed the conflicts down)\n",
			rep.Seer.LockAcqEvents)
	}
	sched := sys.Scheduler()
	merged := sched.Merged()
	fmt.Println("\nConditional abort probabilities P(x aborts | x‖y):")
	fmt.Printf("%8s %8s %8s %8s\n", "", "get", "put", "scan")
	for x := 0; x < 3; x++ {
		fmt.Printf("%8s", names[x])
		for y := 0; y < 3; y++ {
			fmt.Printf(" %8.3f", merged.CondAbortProb(x, y))
		}
		fmt.Println()
	}
}
