// Quickstart: a payment-processing workload with two kinds of atomic
// blocks — hot inter-bank settlements that conflict constantly, and
// independent per-customer ledger updates that almost never do. Under
// plain RTM, settlements exhaust their hardware retries and grab the
// single-global lock, stalling every customer update too. Seer infers
// that only settlements conflict (with each other) and serializes just
// them through one fine-grained lock, letting customer traffic run.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"seer"
)

const (
	nThreads    = 8
	nSettlement = 20  // settlements sample 4 of these: heavy partial overlap
	nCustomers  = 512 // cold accounts: updates almost never collide
	opsPerThr   = 400
	initial     = 10_000
)

// Atomic-block ids (the "static transactions" Seer reasons about).
const (
	txSettle = 0
	txLedger = 1
)

func run(policy seer.PolicyKind) seer.Report {
	cfg := seer.DefaultConfig()
	cfg.Policy = policy
	cfg.Threads = nThreads
	cfg.PhysCores = 4
	cfg.NumAtomicBlocks = 2
	cfg.MemWords = 1 << 16
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	settle := sys.AllocLines(nSettlement)
	ledger := sys.AllocLines(nCustomers)
	settleAcct := func(i int) seer.Addr { return settle + seer.Addr(i*8) }
	custAcct := func(i int) seer.Addr { return ledger + seer.Addr(i*8) }
	for i := 0; i < nSettlement; i++ {
		sys.Poke(settleAcct(i), initial)
	}

	workers := make([]seer.Worker, nThreads)
	for w := range workers {
		workers[w] = func(t *seer.Thread) {
			rng := t.Rand()
			for n := 0; n < opsPerThr; n++ {
				if rng.Bool(0.9) {
					// Hot: sample four settlement accounts, move money
					// out of the richest. Reads happen up front, the
					// write at the end — the read set is live for the
					// whole transaction (as in any real reservation).
					var picks [4]int
					for i := range picks {
						picks[i] = rng.Intn(nSettlement)
					}
					to := rng.Intn(nSettlement)
					amount := uint64(rng.Intn(50))
					t.Atomic(txSettle, func(a seer.Access) {
						best, bestBal := picks[0], uint64(0)
						for _, p := range picks {
							if bal := a.Load(settleAcct(p)); bal > bestBal {
								best, bestBal = p, bal
							}
						}
						a.Work(110) // netting, compliance checks
						if bestBal >= amount {
							a.Store(settleAcct(best), bestBal-amount)
							a.Store(settleAcct(to), a.Load(settleAcct(to))+amount)
						}
					})
				} else {
					// Cold: update one customer's ledger entry.
					c := rng.Intn(nCustomers)
					t.Atomic(txLedger, func(a seer.Access) {
						v := a.Load(custAcct(c))
						a.Work(60) // interest accrual
						a.Store(custAcct(c), v+1)
					})
				}
				t.Work(uint64(5 + rng.Intn(11)))
			}
		}
	}

	rep, err := sys.Run(workers)
	if err != nil {
		log.Fatal(err)
	}

	// Money is conserved under every policy — atomicity is the HTM's
	// job; Seer only schedules.
	var total uint64
	for i := 0; i < nSettlement; i++ {
		total += sys.Peek(settleAcct(i))
	}
	if total != nSettlement*initial {
		log.Fatalf("%s lost money: %d != %d", policy, total, nSettlement*initial)
	}
	return rep
}

func main() {
	fmt.Println("Payment processing: 8 threads, hot settlements (90%) + cold ledger updates (10%)")
	rtm := run(seer.PolicyRTM)
	srr := run(seer.PolicySeer)
	for _, rep := range []seer.Report{rtm, srr} {
		fmt.Printf("\n%s", rep.String())
	}
	fmt.Printf("\nSeer speedup over RTM: %.2fx (virtual makespan %d vs %d cycles)\n",
		float64(rtm.MakespanCycles)/float64(srr.MakespanCycles),
		srr.MakespanCycles, rtm.MakespanCycles)
	if s := srr.Seer; s != nil {
		fmt.Printf("Inferred lock scheme: settle->%v ledger->%v\n",
			s.SchemeRows[txSettle], s.SchemeRows[txLedger])
	}
}
