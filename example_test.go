package seer_test

import (
	"fmt"

	"seer"
)

// ExampleSystem_Run builds a 4-thread system and counts atomically.
func ExampleSystem_Run() {
	cfg := seer.DefaultConfig()
	cfg.Policy = seer.PolicySeer
	cfg.Threads = 4
	cfg.PhysCores = 2
	cfg.NumAtomicBlocks = 1
	cfg.MemWords = 1 << 12
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	counter := sys.AllocAligned(1)
	workers := make([]seer.Worker, 4)
	for i := range workers {
		workers[i] = func(t *seer.Thread) {
			for n := 0; n < 250; n++ {
				t.Atomic(0, func(a seer.Access) {
					a.Store(counter, a.Load(counter)+1)
				})
			}
		}
	}
	if _, err := sys.Run(workers); err != nil {
		panic(err)
	}
	fmt.Println(sys.Peek(counter))
	// Output: 1000
}

// ExampleThread_AtomicObj uses object identities so the scheduler's
// object-granular extension can serialize per object.
func ExampleThread_AtomicObj() {
	cfg := seer.DefaultConfig()
	cfg.Threads = 2
	cfg.PhysCores = 1
	cfg.NumAtomicBlocks = 1
	cfg.MemWords = 1 << 12
	cfg.Seer.ObjLocks = true
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	buckets := sys.AllocLines(4)
	workers := make([]seer.Worker, 2)
	for i := range workers {
		workers[i] = func(t *seer.Thread) {
			rng := t.Rand()
			for n := 0; n < 100; n++ {
				b := rng.Intn(4)
				addr := buckets + seer.Addr(b*8)
				t.AtomicObj(0, uint64(b), func(a seer.Access) {
					a.Store(addr, a.Load(addr)+1)
				})
			}
		}
	}
	if _, err := sys.Run(workers); err != nil {
		panic(err)
	}
	var total uint64
	for b := 0; b < 4; b++ {
		total += sys.Peek(buckets + seer.Addr(b*8))
	}
	fmt.Println(total)
	// Output: 200
}

// ExampleReport_Throughput reads metrics off a finished run.
func ExampleReport_Throughput() {
	cfg := seer.DefaultConfig()
	cfg.Policy = seer.PolicySeq
	cfg.Threads = 1
	cfg.MemWords = 1 << 10
	sys, err := seer.NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	cell := sys.AllocAligned(1)
	rep, err := sys.Run([]seer.Worker{func(t *seer.Thread) {
		for n := 0; n < 10; n++ {
			t.Atomic(0, func(a seer.Access) { a.Store(cell, a.Load(cell)+1) })
		}
	}})
	if err != nil {
		panic(err)
	}
	fmt.Println(rep.Commits(), rep.Throughput() > 0)
	// Output: 10 true
}
